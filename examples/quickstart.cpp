// Quickstart: the EC-Store public API in one minute.
//
// Stores blocks across an in-process 8-site cluster with RS(2,2) erasure
// coding, reads them back through the cost-model access planner, and
// shows that any two chunk failures are survivable while storing only
// 2x the data (vs 3x for replication with the same fault tolerance).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "core/local_store.h"

int main() {
  using namespace ecstore;

  // 1. Configure EC-Store: RS(2,2) with the cost-model read optimizer.
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcC);
  config.num_sites = 8;
  config.seed = 2024;
  LocalECStore store(config);

  // 2. Put a few blocks. Each is encoded into k + r = 4 chunks placed on
  //    4 distinct sites; any 2 chunks reconstruct the block.
  for (BlockId id = 0; id < 4; ++id) {
    std::string payload = "block #" + std::to_string(id) +
                          " — erasure coded, fault tolerant, 2x storage";
    payload.resize(1000, '.');
    store.Put(id, std::span<const std::uint8_t>(
                      reinterpret_cast<const std::uint8_t*>(payload.data()),
                      payload.size()));
  }
  std::printf("stored 4 blocks of 1000 B as %llu B of chunks (%.1fx overhead)\n",
              static_cast<unsigned long long>(store.TotalStoredBytes()),
              static_cast<double>(store.TotalStoredBytes()) / 4000.0);

  // 3. Multi-block read through one cost-optimized access plan.
  const std::vector<BlockId> request = {0, 1, 2, 3};
  const auto blocks = store.MultiGet(request);
  std::printf("multiget returned %zu blocks; block 0 starts with: %.9s\n",
              blocks.size(), reinterpret_cast<const char*>(blocks[0].data()));

  // 4. Fault tolerance: kill r = 2 of block 0's chunk sites and read on.
  const BlockInfo& info = store.state().GetBlock(0);
  store.FailSite(info.locations[0].site);
  store.FailSite(info.locations[1].site);
  const auto degraded = store.Get(0);
  std::printf("degraded read after 2 site failures: %s (%zu bytes)\n",
              degraded == blocks[0] ? "intact" : "CORRUPT", degraded.size());

  // 5. Repair: rebuild the lost chunks elsewhere, restoring full strength.
  const auto rebuilt = store.RepairSite(info.locations[0].site);
  std::printf("repair reconstructed %llu chunk(s); block 0 now has %zu "
              "available chunks\n",
              static_cast<unsigned long long>(rebuilt),
              store.state().AvailableLocations(0).size());
  return 0;
}
