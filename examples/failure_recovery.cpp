// Failure and repair walkthrough (paper Sections V-C, VI-C4): sites fail,
// reads degrade gracefully through RS decoding, the repair service waits
// out transient outages and then reconstructs lost chunks elsewhere.
//
// Build & run:  ./build/examples/failure_recovery
#include <cstdio>

#include "core/local_store.h"
#include "core/repair.h"
#include "core/sim_store.h"

int main() {
  using namespace ecstore;

  std::printf("== Part 1: degraded reads on the real-bytes store ==\n");
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcC);
  config.num_sites = 10;
  config.seed = 5;
  LocalECStore store(config);

  Rng rng(1);
  std::vector<std::vector<std::uint8_t>> originals;
  for (BlockId id = 0; id < 50; ++id) {
    std::vector<std::uint8_t> data(4096);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextBounded(256));
    store.Put(id, data);
    originals.push_back(std::move(data));
  }

  store.FailSite(2);
  store.FailSite(7);
  int intact = 0;
  for (BlockId id = 0; id < 50; ++id) {
    intact += (store.Get(id) == originals[id]);
  }
  std::printf("2 of 10 sites down: %d/50 blocks readable and intact "
              "(r = 2 fault tolerance)\n", intact);

  const auto rebuilt = store.RepairSite(2) + store.RepairSite(7);
  std::printf("repair rebuilt %llu chunks from surviving chunks; every block "
              "again has 4 available chunks\n",
              static_cast<unsigned long long>(rebuilt));

  // A further double failure after repair is still survivable.
  store.FailSite(0);
  store.FailSite(1);
  intact = 0;
  for (BlockId id = 0; id < 50; ++id) intact += (store.Get(id) == originals[id]);
  std::printf("after repair + 2 MORE failures: %d/50 blocks still intact\n\n",
              intact);

  std::printf("== Part 2: automatic repair service on the simulated cluster ==\n");
  ECStoreConfig sim_config = ECStoreConfig::ForTechnique(Technique::kEcC);
  sim_config.num_sites = 10;
  sim_config.repair_wait = 30 * kSecond;  // Scaled from the paper's 15 min.
  sim_config.repair_poll_interval = 2 * kSecond;
  SimECStore sim(sim_config);
  sim.LoadBlocks(0, 100, 100 * 1024);

  RepairService repair(&sim, [&](SiteId site, std::uint64_t chunks) {
    std::printf("  t=%.0fs: repair service rebuilt %llu chunks lost with "
                "site %u\n", ToMillis(sim.queue().Now()) / 1000,
                static_cast<unsigned long long>(chunks), site);
  });
  sim.Start();
  repair.Start();

  sim.queue().RunUntil(5 * kSecond);
  std::printf("  t=5s: site 3 fails (transient) — recovers before the grace "
              "period ends\n");
  sim.FailSite(3);
  sim.queue().RunUntil(20 * kSecond);
  sim.RecoverSite(3);

  sim.queue().RunUntil(40 * kSecond);
  std::printf("  t=40s: site 6 fails permanently\n");
  sim.FailSite(6);
  sim.queue().RunUntil(120 * kSecond);

  std::printf("  repair total: %llu chunks (site 3's transient outage "
              "correctly triggered no repair)\n",
              static_cast<unsigned long long>(repair.chunks_rebuilt()));
  return 0;
}
