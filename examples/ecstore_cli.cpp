// ecstore_cli: a small interactive/scripted shell over the real-bytes
// LocalECStore — handy for poking at encoding, placement, movement,
// failure, and repair behaviour without writing code.
//
//   ./build/examples/ecstore_cli [--sites=8] [--technique=EC+C+M] [--calibrate]
//
// Commands (also via stdin pipes for scripting):
//   put <id> <text...>     store a block
//   get <id>               read a block back
//   rm <id>                delete a block
//   ls                     list blocks and their chunk sites
//   sites                  per-site chunk counts / bytes
//   fail <site> | heal <site>
//   repair <site>          rebuild chunks lost with a failed site
//   move                   run one chunk-mover round
//   stats                  co-access and storage statistics
//   help | quit
#include <cstdio>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "common/flags.h"
#include "core/calibrate.h"
#include "core/local_store.h"

namespace {

using namespace ecstore;

void PrintHelp() {
  std::printf(
      "commands: put <id> <text> | get <id> | rm <id> | ls | sites |\n"
      "          fail <site> | heal <site> | repair <site> | move |\n"
      "          stats | help | quit\n");
}

void List(const LocalECStore& store) {
  const ClusterState& state = store.state();
  std::printf("%zu blocks, %llu bytes encoded\n", state.num_blocks(),
              static_cast<unsigned long long>(store.TotalStoredBytes()));
  // Collect block ids via site inventories (ClusterState is keyed by id).
  std::set<BlockId> ids;
  for (SiteId j = 0; j < state.num_sites(); ++j) {
    for (BlockId b : state.BlocksWithChunkAt(j)) ids.insert(b);
  }
  for (BlockId id : ids) {
    const BlockInfo& info = state.GetBlock(id);
    std::printf("  block %-8llu %7llu B  sites:",
                static_cast<unsigned long long>(id),
                static_cast<unsigned long long>(info.block_bytes));
    for (const ChunkLocation& loc : info.locations) {
      std::printf(" %u%s", loc.site,
                  state.IsSiteAvailable(loc.site) ? "" : "(down)");
    }
    std::printf("\n");
  }
}

void Sites(const LocalECStore& store) {
  const ClusterState& state = store.state();
  std::printf("%-6s %-6s %-10s %-6s\n", "site", "up", "bytes", "chunks");
  for (SiteId j = 0; j < state.num_sites(); ++j) {
    std::printf("%-6u %-6s %-10llu %-6llu\n", j,
                state.IsSiteAvailable(j) ? "yes" : "NO",
                static_cast<unsigned long long>(state.site_bytes()[j]),
                static_cast<unsigned long long>(state.site_chunk_counts()[j]));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  ECStoreConfig config = ECStoreConfig::ForTechnique(
      ParseTechnique(flags.GetString("technique", "EC+C+M")));
  config.num_sites = static_cast<std::size_t>(flags.GetInt("sites", 8));
  config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  if (flags.GetBool("calibrate", false)) {
    // Replace the canned simulator decode-cost constants with throughput
    // measured on this machine's GF kernels.
    const CodingCalibration cal = CalibrateCodingCosts(config);
    std::printf(
        "calibrated coding costs (kernel=%s): encode %.3g B/ms, "
        "decode %.3g B/ms, reassemble %.3g B/ms\n",
        cal.kernel.c_str(), cal.encode_bytes_per_ms, cal.decode_bytes_per_ms,
        cal.reassemble_bytes_per_ms);
  }
  LocalECStore store(config);

  std::printf("ec-store cli — %s over %zu sites (RS(%u,%u)); 'help' for "
              "commands\n",
              TechniqueName(config.technique).c_str(), config.num_sites,
              config.k, config.r);

  std::string line;
  while (std::printf("> "), std::fflush(stdout), std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    try {
      if (cmd == "quit" || cmd == "exit") break;
      if (cmd == "help") {
        PrintHelp();
      } else if (cmd == "put") {
        BlockId id;
        in >> id;
        std::string text;
        std::getline(in, text);
        if (!text.empty() && text.front() == ' ') text.erase(0, 1);
        store.Put(id, std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(text.data()),
                          text.size()));
        const BlockInfo& info = store.state().GetBlock(id);
        std::printf("stored %zu bytes as %zu chunks on sites:", text.size(),
                    info.locations.size());
        for (const ChunkLocation& loc : info.locations) {
          std::printf(" %u", loc.site);
        }
        std::printf("\n");
      } else if (cmd == "get") {
        BlockId id;
        in >> id;
        const auto data = store.Get(id);
        std::printf("%zu bytes: %.*s\n", data.size(),
                    static_cast<int>(std::min<std::size_t>(data.size(), 120)),
                    reinterpret_cast<const char*>(data.data()));
      } else if (cmd == "rm") {
        BlockId id;
        in >> id;
        std::printf(store.Remove(id) ? "deleted\n" : "no such block\n");
      } else if (cmd == "ls") {
        List(store);
      } else if (cmd == "sites") {
        Sites(store);
      } else if (cmd == "fail") {
        SiteId site;
        in >> site;
        store.FailSite(site);
        std::printf("site %u failed; reads now route around it\n", site);
      } else if (cmd == "heal") {
        SiteId site;
        in >> site;
        store.RecoverSite(site);
        std::printf("site %u recovered\n", site);
      } else if (cmd == "repair") {
        SiteId site;
        in >> site;
        const auto rebuilt = store.RepairSite(site);
        std::printf("rebuilt %llu chunks elsewhere\n",
                    static_cast<unsigned long long>(rebuilt));
      } else if (cmd == "move") {
        if (const auto plan = store.RunMovementRound()) {
          std::printf("moved a chunk of block %llu from site %u to %u "
                      "(score %.3f)\n",
                      static_cast<unsigned long long>(plan->block),
                      plan->source, plan->destination, plan->score);
        } else {
          std::printf("no beneficial movement found\n");
        }
      } else if (cmd == "stats") {
        std::printf("blocks=%zu encoded_bytes=%llu windowed_requests=%zu "
                    "tracked_blocks=%zu\n",
                    store.state().num_blocks(),
                    static_cast<unsigned long long>(store.TotalStoredBytes()),
                    store.co_access().requests_in_window(),
                    store.co_access().distinct_blocks_tracked());
      } else {
        std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}
