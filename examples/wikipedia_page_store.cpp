// Wikipedia-style image store over the real-bytes LocalECStore: pages of
// images are stored as erasure-coded blocks, whole pages are fetched via
// co-planned multigets, and the chunk mover co-locates images that the
// same page always pulls together — the paper's motivating application.
//
// Build & run:  ./build/examples/wikipedia_page_store
#include <cstdio>
#include <numeric>

#include "core/local_store.h"
#include "workload/workload.h"

int main() {
  using namespace ecstore;

  // A small statistical twin of the Wikipedia trace (Section VI-B).
  WikipediaWorkload::Params wp;
  wp.num_pages = 40;
  wp.size_min_bytes = 8 * 1024;     // Keep the demo's memory modest.
  wp.size_max_bytes = 256 * 1024;
  WikipediaWorkload trace(wp);

  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcCM);
  config.num_sites = 12;
  config.seed = 99;
  LocalECStore store(config);

  // Store every image with synthetic contents derived from its id.
  Rng rng(1);
  std::uint64_t total_bytes = 0;
  for (const BlockSpec& image : trace.Blocks()) {
    std::vector<std::uint8_t> payload(image.bytes);
    for (std::size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<std::uint8_t>((image.id * 131 + i) & 0xFF);
    }
    store.Put(image.id, payload);
    total_bytes += image.bytes;
  }
  std::printf("stored %zu images (%.1f MB original, %.1f MB encoded, %.2fx)\n",
              trace.Blocks().size(), total_bytes / 1048576.0,
              store.TotalStoredBytes() / 1048576.0,
              static_cast<double>(store.TotalStoredBytes()) /
                  static_cast<double>(total_bytes));
  std::printf("median images/page %.0f, median image %.0f KB\n\n",
              trace.MedianImagesPerPage(), trace.MedianImageBytes() / 1024);

  // Browse: fetch pages with Zipf popularity; every multiget verifies.
  const auto sites_for_page = [&](const std::vector<BlockId>& page) {
    std::vector<bool> used(store.state().num_sites(), false);
    const DemandResult dr = BuildDemands(store.state(), page, 0);
    // Count sites in the optimal co-planned access.
    const auto plan = IlpPlan(dr.demands, CostParams::Homogeneous(
                                              store.state().num_sites(), 5.0, 1e-5));
    std::size_t count = 0;
    for (const ChunkRead& read : plan->reads) {
      if (!used[read.site]) {
        used[read.site] = true;
        ++count;
      }
    }
    return count;
  };

  const auto& hot_page = trace.page(0);
  const std::size_t sites_before = sites_for_page(hot_page);

  Rng browse_rng(2);
  std::uint64_t bytes_served = 0;
  for (int i = 0; i < 400; ++i) {
    const std::vector<BlockId> page = trace.NextRequest(browse_rng);
    const auto images = store.MultiGet(page);
    for (const auto& img : images) bytes_served += img.size();
    if (i % 10 == 0) (void)store.RunMovementRound();
  }
  const std::size_t sites_after = sites_for_page(hot_page);

  std::printf("served 400 page loads (%.1f MB of images, all verified "
              "decodable)\n",
              bytes_served / 1048576.0);
  std::printf("hottest page spans %zu sites before movement, %zu after\n",
              sites_before, sites_after);
  std::printf("\nthe mover co-locates images that appear on the same page, so "
              "page loads touch fewer sites and dodge stragglers.\n");
  return 0;
}
