// YCSB-E scan demo on the simulated cluster: runs two techniques (plain
// erasure coding vs the full EC-Store strategy stack) through the same
// scan workload and prints the latency breakdowns side by side — a
// miniature of the paper's Fig. 4b experiment.
//
// Build & run:  ./build/examples/ycsb_scan_demo [--clients=24 ...]
#include <cstdio>

#include "common/flags.h"
#include "core/sim_store.h"
#include "workload/driver.h"
#include "workload/workload.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  const Flags flags(argc, argv);

  YcsbEWorkload::Params wp;
  wp.num_blocks = static_cast<std::uint64_t>(flags.GetInt("blocks", 5000));
  wp.block_bytes = 100 * 1024;

  std::printf("YCSB-E scan demo: %llu blocks x 100 KB, uniform warm-up then "
              "power-law scans\n\n",
              static_cast<unsigned long long>(wp.num_blocks));
  std::printf("%-10s %12s %12s %12s %10s\n", "technique", "mean(ms)", "p95(ms)",
              "p99(ms)", "req/s");

  for (Technique t : {Technique::kEc, Technique::kEcCM}) {
    ECStoreConfig config = ECStoreConfig::ForTechnique(t);
    config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 7));
    config.mover_chunks_per_sec = 8;
    SimECStore store(config);

    YcsbEWorkload workload(wp);
    for (const BlockSpec& b : workload.Blocks()) store.LoadBlock(b.id, b.bytes);

    ClosedLoopDriver::Params dp;
    dp.clients = static_cast<std::uint32_t>(flags.GetInt("clients", 24));
    dp.warmup = FromSeconds(flags.GetDouble("warmup", 15));
    dp.measure = FromSeconds(flags.GetDouble("measure", 30));
    ClosedLoopDriver driver(&store, &workload, dp);
    driver.Run();

    const PhaseMetrics& m = driver.metrics();
    std::printf("%-10s %12.1f %12.1f %12.1f %10.0f\n", TechniqueName(t).c_str(),
                ToMillis(static_cast<SimTime>(m.total.Mean())),
                ToMillis(m.total.Percentile(95)), ToMillis(m.total.Percentile(99)),
                static_cast<double>(m.requests) / flags.GetDouble("measure", 30));
  }
  std::printf("\nEC+C+M should show lower mean and tail latency: the cost\n"
              "model avoids overloaded sites and the mover co-locates blocks\n"
              "that the scans retrieve together.\n");
  return 0;
}
