#!/bin/bash
# Supplementary experiment runs appended after the main suite:
# - Section VI-C3's 10 KB block-size variant (same binary as Fig 4e)
# - the remaining ablation sweeps (the plain run covers --sweep=w2)
set -u
echo "##### bench_fig4e_ycsb1mb --block-bytes=10240 (Section VI-C3, 10 KB blocks)"
build/bench/bench_fig4e_ycsb1mb --block-bytes=10240 --blocks=20000 \
  --scan-length=19 --disk-mb=140 --site-concurrency=6 --runs=2
echo
for sweep in rate delta cache tier k hetero; do
  echo "##### bench_ablation --sweep=$sweep"
  build/bench/bench_ablation --sweep=$sweep
  echo
done
echo "##### EXTRA SUITE COMPLETE"
