#!/usr/bin/env python3
"""Renders the RESULTS section of EXPERIMENTS.md from bench_output.txt.

Usage: tools/summarize_results.py bench_output.txt EXPERIMENTS.md

Copies each benchmark's printed tables verbatim (they are already the
paper-comparable artifact) under per-experiment headings, between the
RESULTS:BEGIN / RESULTS:END markers.
"""
import re
import sys


TITLES = {
    "bench_fig1_breakdown": "Fig. 1 — R vs EC breakdown under skew",
    "bench_fig4a_timeline": "Fig. 4a — response time over time",
    "bench_fig4b_ycsb100k": "Fig. 4b — YCSB-E breakdown, 100 KB blocks",
    "bench_fig4c_tail": "Fig. 4c — tail latency CDF (YCSB-E 100 KB)",
    "bench_fig4d_site_io": "Fig. 4d — per-site read I/O",
    "bench_fig4e_ycsb1mb": "Fig. 4e — YCSB-E breakdown, large blocks",
    "bench_fig4f_failures": "Fig. 4f — response time with failed sites",
    "bench_fig4g_wikipedia": "Fig. 4g — Wikipedia trace breakdown",
    "bench_fig4h_wiki_tail": "Fig. 4h — Wikipedia tail latency CDF",
    "bench_table2_imbalance": "Table II — I/O load-imbalance lambda",
    "bench_table3_resources": "Table III — control-plane resource usage",
    "bench_ablation": "Ablation sweeps",
    "bench_micro_erasure": "Micro: GF(2^8) + Reed-Solomon throughput",
    "bench_micro_planner": "Micro: access-plan generation",
    "bench_micro_stats": "Micro: statistics service",
}


def main() -> None:
    bench_path, doc_path = sys.argv[1], sys.argv[2]
    with open(bench_path) as f:
        text = f.read()

    sections = []
    for raw in text.split("##### ")[1:]:
        header, _, body = raw.partition("\n")
        name = header.strip().split("/")[-1].split()[0]
        title = TITLES.get(name, name)
        extra = header.strip().split(" ", 1)[1] if " " in header.strip() else ""
        body = body.strip()
        if not body or name == "SUITE":
            continue
        sections.append(f"### {title}\n\n" +
                        (f"`{extra}`\n\n" if extra else "") +
                        "```\n" + body + "\n```\n")

    rendered = "\n".join(sections)
    with open(doc_path) as f:
        doc = f.read()
    doc = re.sub(
        r"<!-- RESULTS:BEGIN -->.*<!-- RESULTS:END -->",
        "<!-- RESULTS:BEGIN -->\n" + rendered + "<!-- RESULTS:END -->",
        doc,
        flags=re.S,
    )
    with open(doc_path, "w") as f:
        f.write(doc)
    print(f"wrote {len(sections)} result sections into {doc_path}")


if __name__ == "__main__":
    main()
