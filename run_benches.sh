#!/bin/bash
# Runs every benchmark binary, recording combined output.
#
# Erasure micro-benchmark JSON snapshots (for before/after kernel work):
#   ./run_benches.sh erasure-json [label]   # writes bench_results/erasure_<label>.json
#   ./run_benches.sh erasure-compare A B    # prints bytes/s ratios of two snapshots
# Planner micro-benchmark snapshots (for before/after plan-path work —
# greedy/ILP/plan-cache latency):
#   ./run_benches.sh planner-json [label]   # writes bench_results/planner_<label>.json
#   ./run_benches.sh planner-compare A B    # prints time-per-op ratios
# Failure bench with online repair (off in the default suite, matching the
# paper) plus robustness counters for trending:
#   ./run_benches.sh failures-repair [label]
#     # writes bench_results/failures_repair_<label>.json
# Codec-family repair sweep (DESIGN.md §11): one failed site under online
# repair per family, reporting repair bytes-on-wire (RS full-k vs LRC
# local-group vs piggyback half-chunks):
#   ./run_benches.sh failures-codecs [label]
#     # writes bench_results/failures_codecs_<label>.json
# Sharded control-plane MultiGet scaling snapshot (DESIGN.md §10):
#   ./run_benches.sh scale-json [label]     # writes bench_results/scale_<label>.json
# Latency-tier sweep (DESIGN.md §12): decoded-block cache + λ prefetch +
# hybrid redundancy over the Wikipedia trace at equal storage, reporting
# p99 per configuration and the improvement over the no-cache baseline:
#   ./run_benches.sh cache-json [label]     # writes bench_results/cache_<label>.json
# Overload-control snapshot (DESIGN.md §14): goodput + admitted p99 at
# ~2x saturation, uncontrolled vs admission+breakers+brownout+deadline:
#   ./run_benches.sh overload-json [label]  # writes bench_results/overload_<label>.json
# Extra flags after the label pass through to the bench, e.g.
#   ./run_benches.sh scale-json big --blocks=1000000 --threads=1,8,16,32
# The label defaults to the current git short SHA (plus -dirty when the
# tree has uncommitted changes). Pin a GF kernel path for a snapshot with
# ECSTORE_GF_KERNEL=scalar|ssse3|avx2.
set -u

erasure_json() {
  local label="${1:-}"
  if [ -z "$label" ]; then
    label="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
    if ! git diff --quiet 2>/dev/null; then label="${label}-dirty"; fi
  fi
  mkdir -p bench_results
  local out="bench_results/erasure_${label}.json"
  build/bench/bench_micro_erasure \
    --benchmark_format=json --benchmark_out="$out" \
    --benchmark_min_time=0.2 >/dev/null
  echo "wrote $out"
}

erasure_compare() {
  python3 - "$1" "$2" <<'EOF'
import json, sys

def load(path):
    with open(path) as f:
        data = json.load(f)
    return {b["name"]: b for b in data.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}

before, after = load(sys.argv[1]), load(sys.argv[2])
print(f"{'benchmark':44s} {'before':>12s} {'after':>12s} {'speedup':>8s}")
for name in before:
    if name not in after:
        continue
    b = before[name].get("bytes_per_second")
    a = after[name].get("bytes_per_second")
    if not b or not a:
        continue
    print(f"{name:44s} {b/1e9:9.2f}G/s {a/1e9:9.2f}G/s {a/b:7.2f}x")
EOF
}

planner_json() {
  local label="${1:-}"
  if [ -z "$label" ]; then
    label="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
    if ! git diff --quiet 2>/dev/null; then label="${label}-dirty"; fi
  fi
  mkdir -p bench_results
  local out="bench_results/planner_${label}.json"
  build/bench/bench_micro_planner \
    --benchmark_format=json --benchmark_out="$out" \
    --benchmark_min_time=0.2 >/dev/null
  echo "wrote $out"
}

planner_compare() {
  # Planner benches report latency, not throughput: compare real_time
  # per op (lower is better; ratio < 1 means the plan path got faster).
  python3 - "$1" "$2" <<'EOF'
import json, sys

def load(path):
    with open(path) as f:
        data = json.load(f)
    return {b["name"]: b for b in data.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}

NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

def time_ns(bench):
    t = bench.get("real_time")
    return None if t is None else t * NS.get(bench.get("time_unit", "ns"), 1.0)

def fmt(ns):
    if ns >= 1e6:
        return f"{ns/1e6:9.2f}ms"
    if ns >= 1e3:
        return f"{ns/1e3:9.2f}us"
    return f"{ns:9.1f}ns"

before, after = load(sys.argv[1]), load(sys.argv[2])
print(f"{'benchmark':52s} {'before':>11s} {'after':>11s} {'after/before':>13s}")
for name in before:
    if name not in after:
        continue
    b, a = time_ns(before[name]), time_ns(after[name])
    if not b or not a:
        continue
    print(f"{name:52s} {fmt(b)} {fmt(a)} {a/b:12.2f}x")
EOF
}

scale_json() {
  local label="${1:-}"
  if [ -z "$label" ]; then
    label="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
    if ! git diff --quiet 2>/dev/null; then label="${label}-dirty"; fi
  fi
  shift $(( $# > 0 ? 1 : 0 ))
  mkdir -p bench_results
  local out="bench_results/scale_${label}.json"
  build/bench/bench_scale_multiget --json="$out" "$@"
}

cache_json() {
  local label="${1:-}"
  if [ -z "$label" ]; then
    label="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
    if ! git diff --quiet 2>/dev/null; then label="${label}-dirty"; fi
  fi
  shift $(( $# > 0 ? 1 : 0 ))
  mkdir -p bench_results
  local out="bench_results/cache_${label}.json"
  build/bench/bench_cache_sweep --json="$out" "$@"
}

overload_json() {
  local label="${1:-}"
  if [ -z "$label" ]; then
    label="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
    if ! git diff --quiet 2>/dev/null; then label="${label}-dirty"; fi
  fi
  shift $(( $# > 0 ? 1 : 0 ))
  mkdir -p bench_results
  local out="bench_results/overload_${label}.json"
  build/bench/bench_overload --json="$out" "$@"
}

failures_repair() {
  local label="${1:-}"
  if [ -z "$label" ]; then
    label="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
    if ! git diff --quiet 2>/dev/null; then label="${label}-dirty"; fi
  fi
  mkdir -p bench_results
  local out="bench_results/failures_repair_${label}.json"
  build/bench/bench_fig4f_failures --repair --usage-json="$out"
}

failures_codecs() {
  local label="${1:-}"
  if [ -z "$label" ]; then
    label="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
    if ! git diff --quiet 2>/dev/null; then label="${label}-dirty"; fi
  fi
  shift $(( $# > 0 ? 1 : 0 ))
  mkdir -p bench_results
  local out="bench_results/failures_codecs_${label}.json"
  build/bench/bench_fig4f_failures --repair --max-failures=1 \
    --codecs="rs(6,3),lrc(6,2,2),pb(6,3)" --json="$out" "$@"
}

case "${1:-}" in
  failures-repair)
    failures_repair "${2:-}"
    exit $?
    ;;
  failures-codecs)
    failures_codecs "${2:-}" "${@:3}"
    exit $?
    ;;
  scale-json)
    scale_json "${2:-}" "${@:3}"
    exit $?
    ;;
  cache-json)
    cache_json "${2:-}" "${@:3}"
    exit $?
    ;;
  overload-json)
    overload_json "${2:-}" "${@:3}"
    exit $?
    ;;
  erasure-json)
    erasure_json "${2:-}"
    exit $?
    ;;
  erasure-compare)
    if [ $# -lt 3 ]; then
      echo "usage: $0 erasure-compare <before.json> <after.json>" >&2
      exit 2
    fi
    erasure_compare "$2" "$3"
    exit $?
    ;;
  planner-json)
    planner_json "${2:-}"
    exit $?
    ;;
  planner-compare)
    if [ $# -lt 3 ]; then
      echo "usage: $0 planner-compare <before.json> <after.json>" >&2
      exit 2
    fi
    planner_compare "$2" "$3"
    exit $?
    ;;
esac

for b in build/bench/bench_*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "##### $b"
    "$b"
    echo
  fi
done
echo "##### SUITE COMPLETE"
