#!/bin/bash
# Runs every benchmark binary, recording combined output.
for b in build/bench/bench_*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "##### $b"
    "$b"
    echo
  fi
done
echo "##### SUITE COMPLETE"
