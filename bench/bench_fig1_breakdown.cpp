// Fig. 1: response-time breakdown of replication vs baseline erasure
// coding under skewed access to 100 KB blocks (paper values, ms:
// R = 1.6 + 0.8 + 20.9 + 0.0 = 23.3; EC = 1.9 + 0.9 + 31.9 + 0.8 = 35.5).
// Data retrieval must dominate both bars, with EC's retrieval the larger.
#include <cstdio>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  const ExperimentParams params = ExperimentParams::FromFlags(flags);

  std::printf("Fig 1 — R vs EC breakdown under skewed access (%s)\n",
              params.Describe().c_str());

  const std::vector<Technique> techniques = {Technique::kReplication,
                                             Technique::kEc};
  std::vector<AggregateBreakdown> rows;
  for (Technique t : techniques) rows.push_back(RunSeeds(t, params));

  PrintBreakdownTable("Fig 1 — response time breakdown", techniques, rows);

  const double r_total = rows[0].total.Mean();
  const double ec_total = rows[1].total.Mean();
  const double r_ret = rows[0].retrieval.Mean();
  const double ec_ret = rows[1].retrieval.Mean();
  std::printf("\nShape checks (paper: retrieval dominates; EC slower than R):\n");
  std::printf("  retrieval share   R: %.0f%%   EC: %.0f%%  (paper: 90%%, 90%%)\n",
              100 * r_ret / r_total, 100 * ec_ret / ec_total);
  std::printf("  EC/R total ratio: %.2f            (paper: 35.5/23.3 = 1.52)\n",
              ec_total / r_total);
  std::printf("  storage overhead: R stores 50%% more than EC at equal fault "
              "tolerance (3x vs 2x)\n");
  std::printf("\nPaper reference (ms): R = 1.6/0.8/20.9/0.0, EC = 1.9/0.9/31.9/0.8\n");
  return 0;
}
