// Fig. 4g: Wikipedia image-trace breakdown (paper totals, ms: R 139,
// EC 190, EC+LB 148, EC+C 159, EC+C+M 126, EC+C+M+LB 109). The workload
// mixes power-law image sizes and page sizes; EC+C+M beats EC by ~40%,
// R by ~20%, and EC+LB by ~17%.
#include <cstdio>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  ExperimentParams params = ExperimentParams::FromFlags(flags);
  params.workload = "wiki";

  std::printf("Fig 4g — Wikipedia trace breakdown (%s)\n",
              params.Describe().c_str());

  const auto techniques = TechniquesFromFlags(flags);
  std::vector<AggregateBreakdown> rows;
  for (Technique t : techniques) {
    rows.push_back(RunSeeds(t, params));
    std::printf("  done %-10s total=%s ms\n", TechniqueName(t).c_str(),
                WithCi(rows.back().total).c_str());
  }
  PrintBreakdownTable("Fig 4g — response time breakdown (Wikipedia trace)",
                      techniques, rows);
  std::printf("\nPaper reference totals (ms): R 139, EC 190, EC+LB 148, "
              "EC+C 159, EC+C+M 126, EC+C+M+LB 109\n");
  return 0;
}
