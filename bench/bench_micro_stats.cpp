// Micro-benchmarks for the statistics service: co-access tracking
// (window update + lambda queries) and the LP/ILP substrate, validating
// that per-request statistics stay far below request latency.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "lp/ilp.h"
#include "stats/co_access.h"
#include "stats/load_tracker.h"

namespace ecstore {
namespace {

void BM_CoAccessRecord(benchmark::State& state) {
  // Steady-state window update with the paper's parameters: 5000-request
  // window, ~10-block requests.
  const std::size_t request_size = static_cast<std::size_t>(state.range(0));
  CoAccessTracker tracker(5000);
  Rng rng(1);
  std::vector<BlockId> request(request_size);
  for (auto _ : state) {
    for (auto& b : request) b = rng.NextBounded(100000);
    tracker.RecordRequest(request);
  }
}
BENCHMARK(BM_CoAccessRecord)->Arg(2)->Arg(10)->Arg(20)->Unit(benchmark::kMicrosecond);

void BM_CoAccessLambda(benchmark::State& state) {
  CoAccessTracker tracker(5000);
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    std::vector<BlockId> req;
    for (int j = 0; j < 10; ++j) req.push_back(rng.NextBounded(1000));
    tracker.RecordRequest(req);
  }
  for (auto _ : state) {
    const double l = tracker.Lambda(rng.NextBounded(1000), rng.NextBounded(1000));
    benchmark::DoNotOptimize(l);
  }
}
BENCHMARK(BM_CoAccessLambda);

void BM_CoAccessPartners(benchmark::State& state) {
  CoAccessTracker tracker(5000);
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    std::vector<BlockId> req;
    for (int j = 0; j < 10; ++j) req.push_back(rng.NextBounded(1000));
    tracker.RecordRequest(req);
  }
  for (auto _ : state) {
    auto partners = tracker.Partners(rng.NextBounded(1000), 10);
    benchmark::DoNotOptimize(partners.data());
  }
}
BENCHMARK(BM_CoAccessPartners)->Unit(benchmark::kMicrosecond);

void BM_CandidateSampling(benchmark::State& state) {
  CoAccessTracker tracker(5000);
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    std::vector<BlockId> req;
    for (int j = 0; j < 10; ++j) req.push_back(rng.NextBounded(10000));
    tracker.RecordRequest(req);
  }
  for (auto _ : state) {
    auto candidates = tracker.SampleCandidateBlocks(rng, 8);
    benchmark::DoNotOptimize(candidates.data());
  }
}
BENCHMARK(BM_CandidateSampling)->Unit(benchmark::kMicrosecond);

void BM_LoadTrackerReport(benchmark::State& state) {
  LoadTracker tracker(32);
  Rng rng(5);
  SiteId j = 0;
  for (auto _ : state) {
    tracker.RecordReport(j, rng.NextDouble(), rng.NextDouble() * 1e8, 100);
    j = (j + 1) % 32;
  }
}
BENCHMARK(BM_LoadTrackerReport);

void BM_SimplexSolve(benchmark::State& state) {
  // LP of the access-plan shape: B blocks x 32 sites.
  const int blocks = static_cast<int>(state.range(0));
  Rng rng(6);
  lp::IlpProblem ilp;
  std::vector<std::vector<std::size_t>> block_vars(blocks);
  for (int b = 0; b < blocks; ++b) {
    for (int c = 0; c < 4; ++c) {
      block_vars[b].push_back(ilp.AddBinaryVariable(0.36));
    }
  }
  for (int b = 0; b < blocks; ++b) {
    lp::Constraint cons;
    for (auto v : block_vars[b]) cons.terms.push_back({v, 1.0});
    cons.relation = lp::Relation::kGreaterEq;
    cons.rhs = 2.0;
    ilp.lp.AddConstraint(std::move(cons));
  }
  for (auto _ : state) {
    auto sol = lp::SolveLp(ilp.lp);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_SimplexSolve)->Arg(2)->Arg(10)->Arg(20)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace ecstore

BENCHMARK_MAIN();
