// Micro-benchmarks for the chunk read optimizer: ILP vs greedy vs
// exhaustive plan generation, and the plan-cache hit path.
//
// These validate the paper's Section V-B1 narrative quantitatively: the
// ILP solve is orders of magnitude slower than a cache lookup or the
// greedy fallback — which is precisely why the plan cache exists.
#include <benchmark/benchmark.h>

#include "cluster/state.h"
#include "common/rng.h"
#include "core/control_plane.h"
#include "placement/plan_cache.h"
#include "placement/planner.h"

namespace ecstore {
namespace {

struct Scenario {
  ClusterState state;
  std::vector<BlockId> query;
  DemandResult demands;
  CostParams params;

  Scenario(std::size_t sites, std::size_t blocks, std::uint64_t seed)
      : state(sites), params(CostParams::Homogeneous(sites, 5.0, 7.15e-6)) {
    Rng rng(seed);
    for (BlockId b = 0; b < blocks; ++b) {
      state.AddBlock(b, 100 * 1024, 50 * 1024, 2, 2, state.PickRandomSites(rng, 4));
      query.push_back(b);
    }
    for (std::size_t j = 0; j < sites; ++j) {
      params.site_overhead_ms[j] = 1.0 + rng.NextDouble() * 9.0;
    }
    demands = BuildDemands(state, query, 0);
  }
};

void BM_IlpPlan(benchmark::State& state) {
  Scenario s(32, static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    auto plan = IlpPlan(s.demands.demands, s.params);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_IlpPlan)->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMicrosecond);

void BM_GreedyPlan(benchmark::State& state) {
  Scenario s(32, static_cast<std::size_t>(state.range(0)), 2);
  Rng rng(3);
  for (auto _ : state) {
    auto plan = GreedyPlan(s.demands.demands, s.params, rng);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_GreedyPlan)->Arg(1)->Arg(10)->Arg(20)->Unit(benchmark::kMicrosecond);

void BM_RandomPlan(benchmark::State& state) {
  Scenario s(32, static_cast<std::size_t>(state.range(0)), 4);
  Rng rng(5);
  for (auto _ : state) {
    auto plan = RandomPlan(s.demands.demands, rng);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_RandomPlan)->Arg(10)->Unit(benchmark::kMicrosecond);

void BM_ExhaustivePlanPair(benchmark::State& state) {
  // The mover's inner loop: pairwise exhaustive optimum (36 combos).
  Scenario s(32, 2, 6);
  for (auto _ : state) {
    auto plan = ExhaustivePlan(s.demands.demands, s.params);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ExhaustivePlanPair)->Unit(benchmark::kMicrosecond);

void BM_PlanCacheHit(benchmark::State& state) {
  Scenario s(32, 10, 7);
  PlanCache cache;
  auto plan = IlpPlan(s.demands.demands, s.params);
  cache.Insert(s.query, 0, *plan);
  for (auto _ : state) {
    auto hit = cache.Lookup(s.query, 0);
    benchmark::DoNotOptimize(hit);
  }
}
BENCHMARK(BM_PlanCacheHit)->Unit(benchmark::kMicrosecond);

/// The full shared request-path decision (ControlPlane::SelectAccessPlan)
/// when the cache is warm: superset lookup + validation against the live
/// state. This is what every embodiment pays per request at steady state.
void BM_ControlPlaneCacheHit(benchmark::State& state) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcC);
  config.num_sites = 32;
  ClusterState cluster(config.num_sites);
  Rng rng(10);
  std::vector<BlockId> query;
  for (BlockId b = 0; b < 10; ++b) {
    cluster.AddBlock(b, 100 * 1024, 50 * 1024, 2, 2,
                     cluster.PickRandomSites(rng, 4));
    query.push_back(b);
  }
  std::deque<ControlPlane::Deferred> deferred;
  ControlPlane cp(&config, &cluster, &rng,
                  [&](ControlPlane::Deferred w) { deferred.push_back(std::move(w)); });
  DemandResult dr = BuildDemands(cluster, query, config.EffectiveDelta());
  // Warm: two misses queue the background solve, draining installs it.
  (void)cp.SelectAccessPlan(query, dr.demands, config.EffectiveDelta());
  (void)cp.SelectAccessPlan(query, dr.demands, config.EffectiveDelta());
  while (!deferred.empty()) {
    auto work = std::move(deferred.front());
    deferred.pop_front();
    work();
  }
  for (auto _ : state) {
    auto decision = cp.SelectAccessPlan(query, dr.demands, config.EffectiveDelta());
    benchmark::DoNotOptimize(decision);
  }
  state.counters["hit_rate"] = cp.plan_cache().HitRate();
}
BENCHMARK(BM_ControlPlaneCacheHit)->Unit(benchmark::kMicrosecond);

/// The miss path: greedy fallback + background-ILP enqueue bookkeeping
/// (every query set is fresh, so nothing ever hits).
void BM_ControlPlaneGreedyMiss(benchmark::State& state) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcC);
  config.num_sites = 32;
  ClusterState cluster(config.num_sites);
  Rng rng(11);
  const std::size_t kBlocks = 4096;
  for (BlockId b = 0; b < kBlocks; ++b) {
    cluster.AddBlock(b, 100 * 1024, 50 * 1024, 2, 2,
                     cluster.PickRandomSites(rng, 4));
  }
  std::deque<ControlPlane::Deferred> deferred;
  ControlPlane cp(&config, &cluster, &rng,
                  [&](ControlPlane::Deferred w) { deferred.push_back(std::move(w)); });
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::vector<BlockId> query = {i % kBlocks, (i + 1) % kBlocks};
    DemandResult dr = BuildDemands(cluster, query, config.EffectiveDelta());
    auto decision = cp.SelectAccessPlan(query, dr.demands, config.EffectiveDelta());
    benchmark::DoNotOptimize(decision);
    i += 2;
  }
  // The queued solves are deliberately not drained: the miss path cost
  // must exclude ILP work, which is the whole point of the design.
  state.counters["hit_rate"] = cp.plan_cache().HitRate();
}
BENCHMARK(BM_ControlPlaneGreedyMiss)->Unit(benchmark::kMicrosecond);

void BM_PlanCacheInsertInvalidate(benchmark::State& state) {
  Scenario s(32, 10, 8);
  PlanCache cache;
  Rng rng(9);
  const auto plan = GreedyPlan(s.demands.demands, s.params, rng);
  std::uint64_t i = 0;
  for (auto _ : state) {
    std::vector<BlockId> key = {i % 100, (i % 100) + 1};
    cache.Insert(key, 0, plan);
    if (i % 10 == 9) cache.InvalidateBlock(i % 100);
    ++i;
  }
}
BENCHMARK(BM_PlanCacheInsertInvalidate)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace ecstore

BENCHMARK_MAIN();
