// Cache/hybrid-redundancy sweep over the Wikipedia trace (the Fig. 4g/4h
// scenario): the same workload runs with the latency tier (DESIGN.md §12)
// progressively enabled, at equal storage — the replica promoter's extra
// bytes stay under --replica-budget, and the decoded-block cache is
// client memory, not cluster storage. Reports the fig4g-style mean and
// fig4h-style tail percentiles per configuration plus the tier's own
// counters, and the headline p99 improvement of the fully-enabled row
// over the no-cache baseline.
//
// Flags: harness flags (--pages, --clients, --runs, ...) plus
//   --techniques=EC+C+M+LB   techniques to sweep (default: EC+C+M+LB)
//   --cache-mb=128           cache capacity for the cached rows
//   --replica-budget=64      hybrid-redundancy budget for the +hybrid row
//   --think-ms=1000          mean client think time; with --clients this
//                            fixes the offered load so cache savings
//                            drain the site queues instead of vanishing
//                            into closed-loop throughput (0 = the
//                            saturation loop, where the p99 cannot move)
//   --json=PATH              writes {"bench":"cache_sweep","rows":[...]}
//
// Default operating point: 200 clients x 1 s think ≈ 200 req/s offered,
// ~90% of the baseline's saturation throughput at the default cluster —
// high enough that queueing dominates the baseline tail, low enough that
// the cached rows run unsaturated.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace {

using namespace ecstore;
using namespace ecstore::bench;

struct Row {
  std::string label;
  double cache_mb = 0;
  bool prefetch = false;
  double replica_budget_mb = 0;
  double mean_ms = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double hit_rate = 0;  // block-cache hits / (hits + misses)
  ControlPlaneUsage usage;
};

Row RunConfig(Technique t, const ExperimentParams& base, std::string label,
              double cache_mb, bool prefetch, double replica_budget_mb) {
  ExperimentParams p = base;
  p.cache_mb = cache_mb;
  p.prefetch = prefetch;
  p.replica_budget_mb = replica_budget_mb;

  Histogram merged;
  std::vector<RunResult> runs = RunSeedsRaw(t, p);
  for (const RunResult& r : runs) merged.Merge(r.metrics.total);

  Row row;
  row.label = std::move(label);
  row.cache_mb = cache_mb;
  row.prefetch = prefetch;
  row.replica_budget_mb = replica_budget_mb;
  row.mean_ms = ToMillis(static_cast<SimTime>(merged.Mean()));
  row.p50_ms = ToMillis(merged.Percentile(50));
  row.p99_ms = ToMillis(merged.Percentile(99));
  row.usage = SumUsage(runs);
  const double lookups =
      static_cast<double>(row.usage.cache_hits + row.usage.cache_misses);
  row.hit_rate =
      lookups > 0 ? static_cast<double>(row.usage.cache_hits) / lookups : 0;
  return row;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\"bench\":\"cache_sweep\",\"rows\":[");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "%s{\"label\":\"%s\",\"cache_mb\":%.1f,\"prefetch\":%s,"
        "\"replica_budget_mb\":%.1f,\"mean_ms\":%.2f,\"p50_ms\":%.2f,"
        "\"p99_ms\":%.2f,\"cache_hit_rate\":%.4f,"
        "\"cache_hits\":%llu,\"cache_misses\":%llu,\"cache_evictions\":%llu,"
        "\"prefetch_issued\":%llu,\"prefetch_hits\":%llu,"
        "\"cache_bytes\":%llu,\"blocks_promoted\":%llu,"
        "\"blocks_demoted\":%llu,\"replica_extra_bytes\":%llu}",
        i ? "," : "", r.label.c_str(), r.cache_mb, r.prefetch ? "true" : "false",
        r.replica_budget_mb, r.mean_ms, r.p50_ms, r.p99_ms, r.hit_rate,
        static_cast<unsigned long long>(r.usage.cache_hits),
        static_cast<unsigned long long>(r.usage.cache_misses),
        static_cast<unsigned long long>(r.usage.cache_evictions),
        static_cast<unsigned long long>(r.usage.prefetch_issued),
        static_cast<unsigned long long>(r.usage.prefetch_hits),
        static_cast<unsigned long long>(r.usage.cache_bytes),
        static_cast<unsigned long long>(r.usage.blocks_promoted),
        static_cast<unsigned long long>(r.usage.blocks_demoted),
        static_cast<unsigned long long>(r.usage.replica_extra_bytes));
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  ExperimentParams params = ExperimentParams::FromFlags(flags);
  params.workload = "wiki";
  // Default to a fixed offered load near the baseline's capacity: under
  // the zero-think saturation loop every byte the cache saves is
  // immediately re-spent by the closed-loop clients, so site queues —
  // and thus the p99 — never move no matter the hit rate.
  if (!flags.Has("think-ms")) params.think_ms = 1000.0;
  if (!flags.Has("clients")) params.clients = 200;

  const double cache_mb = flags.GetDouble("cache-mb", 128.0);
  const double budget_mb = flags.GetDouble("replica-budget", 64.0);
  std::vector<Technique> techniques = {Technique::kEcCMLb};
  if (flags.Has("techniques")) techniques = TechniquesFromFlags(flags);

  std::printf("Cache sweep — Wikipedia trace (%s)\n\n",
              params.Describe().c_str());
  std::printf("%-32s %10s %10s %10s %7s %10s %9s\n", "config", "mean(ms)",
              "p50(ms)", "p99(ms)", "hit%", "promoted", "extra MB");

  std::vector<Row> rows;
  for (Technique t : techniques) {
    const std::string tech = TechniqueName(t);
    std::vector<Row> sweep;
    sweep.push_back(RunConfig(t, params, tech + "/baseline", 0, false, 0));
    sweep.push_back(
        RunConfig(t, params, tech + "/+cache", cache_mb, false, 0));
    sweep.push_back(RunConfig(t, params, tech + "/+cache+prefetch", cache_mb,
                              true, 0));
    sweep.push_back(RunConfig(t, params, tech + "/+cache+prefetch+hybrid",
                              cache_mb, true, budget_mb));
    for (const Row& r : sweep) {
      std::printf("%-32s %10.1f %10.1f %10.1f %6.1f%% %10llu %9.1f\n",
                  r.label.c_str(), r.mean_ms, r.p50_ms, r.p99_ms,
                  100 * r.hit_rate,
                  static_cast<unsigned long long>(r.usage.blocks_promoted),
                  static_cast<double>(r.usage.replica_extra_bytes) /
                      (1024.0 * 1024.0));
    }
    // Headline: the fully-enabled tier versus the no-cache baseline on the
    // same technique, same workload, same storage budget.
    const Row& base = sweep.front();
    const Row& full = sweep.back();
    if (base.p99_ms > 0) {
      std::printf("\n%s p99 improvement (+cache+prefetch+hybrid vs baseline): "
                  "%.1f%%\n\n",
                  tech.c_str(), 100 * (base.p99_ms - full.p99_ms) / base.p99_ms);
    }
    rows.insert(rows.end(), sweep.begin(), sweep.end());
  }

  if (flags.Has("json")) {
    WriteJson(flags.GetString("json", "cache_sweep.json"), rows);
  }
  return 0;
}
