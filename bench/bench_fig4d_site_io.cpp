// Fig. 4d: read I/O (MB/s) per site during the measurement interval.
// The paper plots all 32 sites for R, EC, EC+LB, EC+C, EC+C+M,
// EC+C+M+LB, showing (a) late binding reads the most data and (b) the
// cost-model techniques flatten the per-site distribution.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  const ExperimentParams params = ExperimentParams::FromFlags(flags);

  std::printf("Fig 4d — per-site read I/O, YCSB-E 100 KB (%s)\n",
              params.Describe().c_str());

  const auto techniques = TechniquesFromFlags(flags);

  // Per technique: mean MB/s per site across seeds, sorted descending so
  // the shape (flat vs skewed) is visible in text form.
  std::vector<std::vector<double>> rates(techniques.size());
  std::vector<double> totals(techniques.size(), 0);
  for (std::size_t i = 0; i < techniques.size(); ++i) {
    std::vector<double> sum(params.num_sites, 0);
    std::uint32_t seeds = 0;
    for (const RunResult& r : RunSeedsRaw(techniques[i], params)) {
      for (std::size_t j = 0; j < params.num_sites; ++j) {
        const double bytes = static_cast<double>(r.site_bytes_end[j]) -
                             static_cast<double>(r.site_bytes_start[j]);
        sum[j] += bytes / r.measure_seconds / (1024.0 * 1024.0);
      }
      ++seeds;
    }
    for (double& v : sum) v /= seeds;
    totals[i] = 0;
    for (double v : sum) totals[i] += v;
    std::sort(sum.rbegin(), sum.rend());
    rates[i] = std::move(sum);
    std::printf("  done %-10s total=%.1f MB/s across sites\n",
                TechniqueName(techniques[i]).c_str(), totals[i]);
  }

  std::printf("\nFig 4d — read MB/s by site (sorted descending)\n");
  std::printf("%-6s", "site");
  for (Technique t : techniques) std::printf(" %10s", TechniqueName(t).c_str());
  std::printf("\n");
  for (std::size_t j = 0; j < params.num_sites; ++j) {
    std::printf("%-6zu", j + 1);
    for (std::size_t i = 0; i < techniques.size(); ++i) {
      std::printf(" %10.2f", rates[i][j]);
    }
    std::printf("\n");
  }

  std::printf("\nAggregate read volume relative to EC:\n");
  for (std::size_t i = 0; i < techniques.size(); ++i) {
    std::printf("  %-10s %.2fx\n", TechniqueName(techniques[i]).c_str(),
                totals[i] / totals[1 < techniques.size() ? 1 : 0]);
  }
  std::printf("\nPaper shape: EC+LB reads the most data (delta extra chunks); "
              "EC+C/EC+C+M flatten the per-site curve vs EC's skew.\n");
  return 0;
}
