// Straggler bench for the real-bytes data plane: EC vs EC+LB MultiGet
// latency under injected jitter and random stragglers (core/data_plane.h).
//
// This is the paper's late-binding claim demonstrated on actual chunk
// fetches rather than in the simulator: with delta extra fetches in
// flight, a straggling site loses the first-k race instead of gating the
// request, so the EC+LB tail (p99) sits well below plain EC's.
//
// Flags: --sites --blocks --block-bytes --requests --batch --seed
//        --base-ms --jitter-ms --straggler-prob --straggler-factor
#include <cstdio>
#include <chrono>
#include <vector>

#include "common/flags.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/local_store.h"

namespace {

using namespace ecstore;
using Clock = std::chrono::steady_clock;

struct Scenario {
  std::size_t num_sites = 12;
  std::uint64_t num_blocks = 64;
  std::size_t block_bytes = 64 * 1024;
  int requests = 400;
  std::size_t batch = 3;
  std::uint64_t seed = 1;
  DataPlaneParams data_plane;
};

Histogram RunTechnique(Technique technique, const Scenario& s) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(technique);
  config.num_sites = s.num_sites;
  config.seed = s.seed;
  config.data_plane = s.data_plane;
  LocalECStore store(config);

  Rng rng(s.seed + 77);
  for (BlockId id = 0; id < s.num_blocks; ++id) {
    std::vector<std::uint8_t> block(s.block_bytes);
    for (auto& b : block) b = static_cast<std::uint8_t>(rng.NextBounded(256));
    store.Put(id, block);
  }

  // Closed loop, Zipf-free: uniform batches keep both techniques on
  // identical access distributions so the tail difference is pure
  // late-binding effect.
  Histogram latency_us;
  Rng req_rng(s.seed + 1234);
  for (int i = 0; i < s.requests; ++i) {
    std::vector<BlockId> ids;
    for (std::size_t b = 0; b < s.batch; ++b) {
      ids.push_back(req_rng.NextBounded(s.num_blocks));
    }
    const auto start = Clock::now();
    (void)store.MultiGet(ids);
    latency_us.Record(std::chrono::duration_cast<std::chrono::microseconds>(
                          Clock::now() - start)
                          .count());
  }
  return latency_us;
}

void PrintRow(const char* name, const Histogram& h) {
  std::printf("%-8s %8.2f %8.2f %8.2f %8.2f %8.2f\n", name, h.Mean() / 1000.0,
              h.Percentile(50) / 1000.0, h.Percentile(95) / 1000.0,
              h.Percentile(99) / 1000.0, static_cast<double>(h.max()) / 1000.0);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  Scenario s;
  s.num_sites = static_cast<std::size_t>(flags.GetInt("sites", 12));
  s.num_blocks = static_cast<std::uint64_t>(flags.GetInt("blocks", 64));
  s.block_bytes = static_cast<std::size_t>(
      flags.GetInt("block-bytes", 64 * 1024));
  s.requests = static_cast<int>(flags.GetInt("requests", 400));
  s.batch = static_cast<std::size_t>(flags.GetInt("batch", 3));
  s.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  s.data_plane.base_latency_ms = flags.GetDouble("base-ms", 0.2);
  s.data_plane.jitter_ms = flags.GetDouble("jitter-ms", 0.3);
  s.data_plane.straggler_probability = flags.GetDouble("straggler-prob", 0.02);
  s.data_plane.straggler_factor = flags.GetDouble("straggler-factor", 20.0);
  s.data_plane.seed = s.seed + 9;

  std::printf(
      "Local data-plane straggler bench — %zu sites, %llu blocks x %zu KB, "
      "%d requests x %zu blocks\n"
      "injected latency: base %.2f ms + U(0,%.2f) ms, straggler p=%.3f "
      "factor=%.0fx\n\n",
      s.num_sites, static_cast<unsigned long long>(s.num_blocks),
      s.block_bytes / 1024, s.requests, s.batch,
      s.data_plane.base_latency_ms, s.data_plane.jitter_ms,
      s.data_plane.straggler_probability, s.data_plane.straggler_factor);

  std::printf("%-8s %8s %8s %8s %8s %8s\n", "tech", "mean", "p50", "p95",
              "p99", "max");
  const Histogram ec = RunTechnique(Technique::kEc, s);
  PrintRow("EC", ec);
  const Histogram lb = RunTechnique(Technique::kEcLb, s);
  PrintRow("EC+LB", lb);

  const double ec_p99 = static_cast<double>(ec.Percentile(99));
  const double lb_p99 = static_cast<double>(lb.Percentile(99));
  std::printf("\nEC+LB p99 / EC p99 = %.2f  (late binding races out "
              "stragglers; expect < 1)\n",
              ec_p99 > 0 ? lb_p99 / ec_p99 : 0.0);
  return 0;
}
