// MultiGet scaling bench for the sharded control plane (DESIGN.md §10):
// closed-loop readers hammer one LocalECStore and we report throughput
// and latency percentiles per thread count, for shards=1 (the pre-shard
// lock model collapsed into a single shard) versus shards=N.
//
// The data plane injects no latency and the chunk fetch is a memcpy, so
// contention on control-plane locks — metadata stripes, per-shard stats
// and plan cache — dominates; the speedup at T threads is the sharding
// win, not an I/O artifact. On a many-core box run with paper-ish scale:
//
//   bench_scale_multiget --blocks=1000000 --threads=1,8,16,32
//       --shards=16 --ilp-threads=2 --measure=10
//
// Defaults are CI-sized (small corpus, short windows) so the default
// run_benches.sh sweep stays fast.
//
// Flags: --sites --blocks --block-bytes --batch --shards --ilp-threads
//        --threads=1,2,4 --warmup --measure --seed --zipf
//        --json=PATH (writes {"bench":"scale_multiget","rows":[...]})
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "core/local_store.h"

namespace {

using namespace ecstore;
using Clock = std::chrono::steady_clock;

struct Scenario {
  std::size_t num_sites = 16;
  std::uint64_t num_blocks = 4096;
  std::size_t block_bytes = 4096;
  std::size_t batch = 4;
  std::size_t shards = 8;
  std::size_t ilp_threads = 1;
  double warmup_s = 0.2;
  double measure_s = 1.0;
  std::uint64_t seed = 1;
  double zipf = 0.99;
  std::vector<int> thread_counts = {1, 2, 4};
};

struct Row {
  std::string label;
  int threads = 0;
  std::size_t shards = 0;
  double throughput = 0;  // requests/s
  double p50_us = 0;
  double p99_us = 0;
  double cache_hit_rate = 0;
};

// Zipf sampler over [0, n) via the rejection-free approximation used by
// YCSB: power-law CDF inversion. Good enough for a contention bench.
BlockId ZipfDraw(Rng& rng, std::uint64_t n, double theta) {
  if (theta <= 0) return rng.NextBounded(n);
  const double u = rng.NextDouble();
  const double x = std::pow(u, 1.0 / (1.0 - theta * 0.5));
  auto id = static_cast<BlockId>(x * static_cast<double>(n));
  return id >= n ? n - 1 : id;
}

std::unique_ptr<LocalECStore> MakeStore(const Scenario& s, std::size_t shards) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(Technique::kEcC);
  config.num_sites = s.num_sites;
  config.seed = s.seed;
  config.control_plane_shards = shards;
  config.ilp_executor_threads = shards > 1 ? s.ilp_threads : 0;
  auto store = std::make_unique<LocalECStore>(config);

  Rng fill(s.seed + 77);
  std::vector<std::uint8_t> block(s.block_bytes);
  for (BlockId id = 0; id < s.num_blocks; ++id) {
    for (auto& b : block) b = static_cast<std::uint8_t>(fill.NextBounded(256));
    store->Put(id, block);
  }
  return store;
}

Row RunOne(const Scenario& s, std::size_t shards, int threads) {
  auto store = MakeStore(s, shards);

  std::atomic<bool> warm{true};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> done{0};
  std::vector<Histogram> latencies(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(s.seed + 1000 + static_cast<std::uint64_t>(t));
      std::vector<BlockId> ids(s.batch);
      while (!stop.load(std::memory_order_relaxed)) {
        // YCSB-E-style scan: Zipf-popular start, contiguous range. Scan
        // starts recur, so the plan cache sees hits and the per-shard
        // lookup path (not just the greedy fallback) is what scales.
        const BlockId scan_start = ZipfDraw(rng, s.num_blocks, s.zipf);
        for (std::size_t i = 0; i < ids.size(); ++i) {
          ids[i] = (scan_start + i) % s.num_blocks;
        }
        const auto start = Clock::now();
        (void)store->MultiGet(ids);
        const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                            Clock::now() - start)
                            .count();
        if (!warm.load(std::memory_order_relaxed)) {
          latencies[t].Record(us);
          done.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::duration<double>(s.warmup_s));
  warm.store(false);
  const auto measure_start = Clock::now();
  std::this_thread::sleep_for(std::chrono::duration<double>(s.measure_s));
  stop.store(true);
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - measure_start).count();

  Histogram merged;
  for (const auto& h : latencies) merged.Merge(h);

  const auto totals = store->control_plane().CacheTotals();
  const double lookups = static_cast<double>(totals.hits + totals.misses);

  Row row;
  row.label = "shards=" + std::to_string(shards) +
              "/threads=" + std::to_string(threads);
  row.threads = threads;
  row.shards = shards;
  row.throughput =
      elapsed > 0 ? static_cast<double>(done.load()) / elapsed : 0;
  row.p50_us = static_cast<double>(merged.Percentile(50));
  row.p99_us = static_cast<double>(merged.Percentile(99));
  row.cache_hit_rate =
      lookups > 0 ? static_cast<double>(totals.hits) / lookups : 0;
  return row;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\"bench\":\"scale_multiget\",\"rows\":[");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "%s{\"label\":\"%s\",\"threads\":%d,\"shards\":%zu,"
                 "\"throughput_rps\":%.1f,\"p50_us\":%.1f,\"p99_us\":%.1f,"
                 "\"cache_hit_rate\":%.4f}",
                 i ? "," : "", r.label.c_str(), r.threads, r.shards,
                 r.throughput, r.p50_us, r.p99_us, r.cache_hit_rate);
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

std::vector<int> ParseThreadList(const std::string& spec) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string tok =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(std::max(1, std::atoi(tok.c_str())));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  Scenario s;
  s.num_sites = static_cast<std::size_t>(flags.GetInt("sites", 16));
  s.num_blocks = static_cast<std::uint64_t>(flags.GetInt("blocks", 4096));
  s.block_bytes =
      static_cast<std::size_t>(flags.GetInt("block-bytes", 4096));
  s.batch = static_cast<std::size_t>(flags.GetInt("batch", 4));
  s.shards = static_cast<std::size_t>(flags.GetInt("shards", 8));
  s.ilp_threads = static_cast<std::size_t>(flags.GetInt("ilp-threads", 1));
  s.warmup_s = flags.GetDouble("warmup", 0.2);
  s.measure_s = flags.GetDouble("measure", 1.0);
  s.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  s.zipf = flags.GetDouble("zipf", 0.99);
  s.thread_counts = ParseThreadList(flags.GetString("threads", "1,2,4"));

  std::printf(
      "MultiGet scaling — sites=%zu blocks=%llu x %zuB batch=%zu "
      "shards=%zu ilp-threads=%zu warmup=%.1fs measure=%.1fs\n\n",
      s.num_sites, static_cast<unsigned long long>(s.num_blocks),
      s.block_bytes, s.batch, s.shards, s.ilp_threads, s.warmup_s,
      s.measure_s);
  std::printf("%-24s %12s %10s %10s %8s\n", "config", "reqs/s", "p50(us)",
              "p99(us)", "hit%");

  std::vector<Row> rows;
  for (const std::size_t shards : {std::size_t{1}, s.shards}) {
    double base_throughput = 0;
    for (const int threads : s.thread_counts) {
      const Row row = RunOne(s, shards, threads);
      if (threads == s.thread_counts.front()) base_throughput = row.throughput;
      const double scale =
          base_throughput > 0 ? row.throughput / base_throughput : 0;
      std::printf("%-24s %12.0f %10.1f %10.1f %7.1f%%  (%.2fx vs T%d)\n",
                  row.label.c_str(), row.throughput, row.p50_us, row.p99_us,
                  100 * row.cache_hit_rate, scale, s.thread_counts.front());
      rows.push_back(row);
    }
    if (shards == s.shards) break;  // shards may equal 1; avoid repeat.
  }

  // Headline ratio: best sharded throughput over single-shard at the same
  // (largest) thread count.
  const int top_threads = s.thread_counts.back();
  double single = 0, sharded = 0;
  for (const Row& r : rows) {
    if (r.threads != top_threads) continue;
    if (r.shards == 1) single = r.throughput;
    if (r.shards == s.shards) sharded = r.throughput;
  }
  if (single > 0 && sharded > 0 && s.shards != 1) {
    std::printf("\nshards=%zu / shards=1 throughput at %d threads: %.2fx\n",
                s.shards, top_threads, sharded / single);
  }

  if (flags.Has("json")) {
    WriteJson(flags.GetString("json", "scale_multiget.json"), rows);
  }
  return 0;
}
