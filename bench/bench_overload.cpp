// Overload-control bench (DESIGN.md §14): goodput and admitted-tail
// latency at ~2x the store's saturation throughput, with and without the
// overload subsystem (admission + breakers + brownout + deadlines).
//
// Method: a short zero-think closed-loop calibration run measures the
// saturation throughput T_sat and the unloaded mean service time. The
// main runs then offer `--overload-factor` x T_sat through think-time
// clients and compare:
//   uncontrolled  — no overload features; every request is served, the
//                   site queues grow, and "goodput" counts only the
//                   requests that happened to finish inside the deadline
//                   budget (a late answer is a useless answer);
//   controlled    — admission gate + per-site breakers + brownout ladder
//                   + end-to-end deadline. Excess requests shed in
//                   ~shed_penalty_ms; admitted ones run on short queues.
//
// The interesting comparison is goodput (in-deadline completions/s) and
// the p99 of *admitted* requests — overload control trades refused
// requests for the admitted ones actually meeting their budget.
//
// Flags: harness flags (--sites, --blocks, --clients, --runs, ...) plus
//   --overload-factor=2.0    offered load as a multiple of T_sat
//   --deadline-ms=0          per-request budget; 0 derives one from the
//                            calibrated mean (3x unloaded mean service)
//   --admission-in-flight=0  admitted-concurrency cap; 0 derives it from
//                            the calibration client count
//   --strict                 enforce the acceptance bars (goodput >= 1.5x
//                            uncontrolled, admitted p99 <= 0.5x) and exit
//                            non-zero when they fail
//   --json=PATH              writes {"bench":"overload","rows":[...]}
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace {

using namespace ecstore;
using namespace ecstore::bench;

struct Row {
  std::string label;
  double offered_rps = 0;    // think-time offered load
  double goodput_rps = 0;    // ok completions inside the deadline, per second
  double admitted_p99_ms = 0;
  double mean_ms = 0;        // mean of admitted, in-histogram requests
  double mean_shed_ms = 0;   // mean shed turnaround (0 when none shed)
  std::uint64_t requests = 0;
  std::uint64_t sheds = 0;
  std::uint64_t deadline_hits = 0;
  std::uint64_t failures = 0;
  ControlPlaneUsage usage;
};

Row RunConfig(const ExperimentParams& p, std::string label, double offered_rps,
              double deadline_ms) {
  std::vector<RunResult> runs = RunSeedsRaw(Technique::kEcCMLb, p);
  Histogram merged;
  Row row;
  row.label = std::move(label);
  row.offered_rps = offered_rps;
  double measure_s = 0;
  for (const RunResult& r : runs) {
    merged.Merge(r.metrics.total);
    row.requests += r.metrics.requests;
    row.sheds += r.metrics.sheds;
    row.deadline_hits += r.metrics.deadline_hits;
    row.failures += r.metrics.failures;
    row.mean_shed_ms += r.metrics.MeanShedMs() * static_cast<double>(r.metrics.sheds);
    measure_s += r.measure_seconds;
  }
  if (row.sheds) row.mean_shed_ms /= static_cast<double>(row.sheds);
  row.usage = SumUsage(runs);
  row.mean_ms = ToMillis(static_cast<SimTime>(merged.Mean()));
  row.admitted_p99_ms = ToMillis(merged.Percentile(99));
  // Goodput: completions whose end-to-end time fit the budget. The
  // controlled rows enforce this in-store (deadline hits never reach the
  // histogram); the uncontrolled row is classified post-hoc so both are
  // judged by the same yardstick.
  const double in_deadline =
      static_cast<double>(merged.count()) *
      (1.0 - merged.FractionAbove(FromMillis(deadline_ms)));
  row.goodput_rps = measure_s > 0 ? in_deadline / measure_s : 0;
  return row;
}

void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\"bench\":\"overload\",\"rows\":[");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        f,
        "%s{\"label\":\"%s\",\"offered_rps\":%.1f,\"goodput_rps\":%.1f,"
        "\"admitted_p99_ms\":%.2f,\"mean_ms\":%.2f,\"mean_shed_ms\":%.4f,"
        "\"requests\":%llu,\"sheds\":%llu,\"deadline_hits\":%llu,"
        "\"failures\":%llu,\"requests_shed\":%llu,\"deadline_exceeded\":%llu,"
        "\"breaker_opens\":%llu,\"breaker_half_open_probes\":%llu,"
        "\"brownout_level\":%llu,\"expired_jobs_cancelled\":%llu}",
        i ? "," : "", r.label.c_str(), r.offered_rps, r.goodput_rps,
        r.admitted_p99_ms, r.mean_ms, r.mean_shed_ms,
        static_cast<unsigned long long>(r.requests),
        static_cast<unsigned long long>(r.sheds),
        static_cast<unsigned long long>(r.deadline_hits),
        static_cast<unsigned long long>(r.failures),
        static_cast<unsigned long long>(r.usage.requests_shed),
        static_cast<unsigned long long>(r.usage.deadline_exceeded),
        static_cast<unsigned long long>(r.usage.breaker_opens),
        static_cast<unsigned long long>(r.usage.breaker_half_open_probes),
        static_cast<unsigned long long>(r.usage.brownout_level),
        static_cast<unsigned long long>(r.usage.expired_jobs_cancelled));
  }
  std::fprintf(f, "]}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  ExperimentParams params = ExperimentParams::FromFlags(flags);
  // Scaled-down defaults so the bench (3 full runs) finishes in seconds.
  if (!flags.Has("runs")) params.runs = 1;
  if (!flags.Has("warmup")) params.warmup_s = 5;
  if (!flags.Has("measure")) params.measure_s = 15;
  if (!flags.Has("sites")) params.num_sites = 16;
  if (!flags.Has("blocks")) params.num_blocks = 4000;
  const double factor = flags.GetDouble("overload-factor", 2.0);
  const bool strict = flags.GetBool("strict", false);

  // --- Calibration: zero-think saturation throughput and unloaded mean.
  ExperimentParams calib = params;
  calib.think_ms = 0;
  calib.runs = 1;
  calib.deadline_ms = 0;
  calib.admission = calib.breakers = calib.brownout = false;
  const RunResult cal = RunOnce(Technique::kEcCMLb, calib, calib.base_seed);
  const double t_sat =
      static_cast<double>(cal.metrics.total.count()) / cal.measure_seconds;
  const double mean_service_ms =
      ToMillis(static_cast<SimTime>(cal.metrics.total.Mean()));
  if (t_sat <= 0) {
    std::fprintf(stderr, "calibration produced no completions\n");
    return 1;
  }

  const double offered_rps = factor * t_sat;
  double deadline_ms = params.deadline_ms;
  // 3x the unloaded mean: comfortably met on short queues (the admitted
  // cap pins the controlled run near calibration latency) and badly
  // missed once uncontrolled queues stack tens of requests deep.
  if (deadline_ms <= 0) deadline_ms = std::max(3.0 * mean_service_ms, 5.0);
  std::uint32_t in_flight = flags.Has("admission-in-flight")
                                ? params.admission_max_in_flight
                                : calib.clients;

  // Offered load through think-time clients, think sized to the rate.
  // The client pool is much larger than the saturation concurrency so the
  // closed loop approximates an open arrival process: response-time
  // growth barely dents the arrival rate, and an uncontrolled store
  // genuinely drowns instead of self-throttling.
  ExperimentParams loaded = params;
  if (!flags.Has("clients")) loaded.clients = 10 * calib.clients;
  loaded.think_ms = 1000.0 * static_cast<double>(loaded.clients) / offered_rps;

  std::printf("Overload bench — %s\n", params.Describe().c_str());
  std::printf(
      "calibration: T_sat=%.0f req/s, unloaded mean=%.2f ms; offering "
      "%.1fx (%.0f req/s) via %u clients, deadline=%.1f ms, "
      "admitted in-flight cap=%u\n\n",
      t_sat, mean_service_ms, factor, offered_rps, loaded.clients, deadline_ms,
      in_flight);

  ExperimentParams uncontrolled = loaded;
  uncontrolled.deadline_ms = 0;
  uncontrolled.admission = uncontrolled.breakers = uncontrolled.brownout = false;

  ExperimentParams controlled = loaded;
  controlled.deadline_ms = deadline_ms;
  controlled.admission = true;
  controlled.breakers = true;
  controlled.brownout = true;
  controlled.admission_max_in_flight = in_flight;

  std::vector<Row> rows;
  rows.push_back(
      RunConfig(uncontrolled, "uncontrolled", offered_rps, deadline_ms));
  rows.push_back(RunConfig(controlled, "controlled", offered_rps, deadline_ms));

  std::printf("%-14s %10s %12s %12s %10s %12s %8s %10s\n", "config",
              "offered/s", "goodput/s", "adm p99(ms)", "mean(ms)", "shed(ms)",
              "sheds", "ddl hits");
  for (const Row& r : rows) {
    std::printf("%-14s %10.0f %12.1f %12.2f %10.2f %12.4f %8llu %10llu\n",
                r.label.c_str(), r.offered_rps, r.goodput_rps,
                r.admitted_p99_ms, r.mean_ms, r.mean_shed_ms,
                static_cast<unsigned long long>(r.sheds),
                static_cast<unsigned long long>(r.deadline_hits));
  }

  const Row& un = rows[0];
  const Row& ctl = rows[1];
  const double goodput_ratio =
      un.goodput_rps > 0 ? ctl.goodput_rps / un.goodput_rps : 0;
  const double p99_ratio =
      un.admitted_p99_ms > 0 ? ctl.admitted_p99_ms / un.admitted_p99_ms : 0;
  std::printf(
      "\ncontrolled vs uncontrolled: goodput %.2fx, admitted p99 %.2fx, "
      "mean shed %.4f ms (%.1f%% of unloaded mean service)\n",
      goodput_ratio, p99_ratio, ctl.mean_shed_ms,
      mean_service_ms > 0 ? 100.0 * ctl.mean_shed_ms / mean_service_ms : 0);

  if (flags.Has("json")) {
    WriteJson(flags.GetString("json", "overload.json"), rows);
  }

  // Counter sanity — always enforced: the controlled run at 2x saturation
  // must actually shed, and every overload counter must flow through
  // Usage(). (Breaker counters only move when a site degrades, so only
  // their *plumbing* is checked here; the chaos storm exercises them.)
  bool ok = true;
  if (ctl.usage.requests_shed == 0 || ctl.sheds == 0) {
    std::fprintf(stderr, "FAIL: controlled run at %.1fx saturation shed "
                         "nothing (requests_shed=%llu driver sheds=%llu)\n",
                 factor, static_cast<unsigned long long>(ctl.usage.requests_shed),
                 static_cast<unsigned long long>(ctl.sheds));
    ok = false;
  }
  if (ctl.sheds && mean_service_ms > 0 &&
      ctl.mean_shed_ms > 0.1 * mean_service_ms) {
    std::fprintf(stderr, "FAIL: sheds are not fast-fail: %.4f ms vs 10%% of "
                         "mean service %.4f ms\n",
                 ctl.mean_shed_ms, 0.1 * mean_service_ms);
    ok = false;
  }
  if (strict) {
    if (goodput_ratio < 1.5) {
      std::fprintf(stderr, "FAIL(strict): goodput ratio %.2f < 1.5\n",
                   goodput_ratio);
      ok = false;
    }
    if (p99_ratio > 0.5) {
      std::fprintf(stderr, "FAIL(strict): admitted p99 ratio %.2f > 0.5\n",
                   p99_ratio);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
