#include "bench/harness.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/repair.h"

namespace ecstore::bench {

ExperimentParams ExperimentParams::FromFlags(const Flags& flags) {
  // Benches stream progress lines; line-buffer stdout so redirected runs
  // (tee, CI logs) show progress as it happens.
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  ExperimentParams p;
  p.num_sites = static_cast<std::size_t>(flags.GetInt("sites", p.num_sites));
  p.num_blocks = static_cast<std::uint64_t>(flags.GetInt("blocks", p.num_blocks));
  p.block_bytes =
      static_cast<std::uint64_t>(flags.GetInt("block-bytes", p.block_bytes));
  p.clients = static_cast<std::uint32_t>(flags.GetInt("clients", p.clients));
  p.warmup_s = flags.GetDouble("warmup", p.warmup_s);
  p.measure_s = flags.GetDouble("measure", p.measure_s);
  p.zipf_exponent = flags.GetDouble("zipf", p.zipf_exponent);
  p.max_scan_length =
      static_cast<std::uint32_t>(flags.GetInt("scan-length", p.max_scan_length));
  p.runs = static_cast<std::uint32_t>(flags.GetInt("runs", p.runs));
  p.base_seed = static_cast<std::uint64_t>(flags.GetInt("seed", p.base_seed));
  p.workload = flags.GetString("workload", p.workload);
  p.wiki_pages = static_cast<std::uint64_t>(flags.GetInt("pages", p.wiki_pages));
  p.flash_fraction = flags.GetDouble("flash-fraction", p.flash_fraction);
  p.flash_hot_blocks =
      static_cast<std::uint64_t>(flags.GetInt("flash-hot", p.flash_hot_blocks));
  p.flash_period =
      static_cast<std::uint64_t>(flags.GetInt("flash-period", p.flash_period));
  p.flash_duty = flags.GetDouble("flash-duty", p.flash_duty);
  p.tail_weight = flags.GetDouble("tail-weight", p.tail_weight);
  p.adaptive_delta = flags.GetBool("adaptive-delta", p.adaptive_delta);
  p.stall_prob = flags.GetDouble("stall-prob", p.stall_prob);
  p.stall_mult = flags.GetDouble("stall-mult", p.stall_mult);
  p.mover_rate = flags.GetDouble("mover-rate", p.mover_rate);
  p.mover_w1 = flags.GetDouble("w1", p.mover_w1);
  p.mover_w2 = flags.GetDouble("w2", p.mover_w2);
  p.late_binding_delta =
      static_cast<std::uint32_t>(flags.GetInt("delta", p.late_binding_delta));
  p.disk_mb_per_sec = flags.GetDouble("disk-mb", p.disk_mb_per_sec);
  p.site_concurrency =
      static_cast<std::uint32_t>(flags.GetInt("site-concurrency", p.site_concurrency));
  p.k = static_cast<std::uint32_t>(flags.GetInt("k", p.k));
  p.r = static_cast<std::uint32_t>(flags.GetInt("r", p.r));
  p.codec = flags.GetString("codec", p.codec);
  p.slow_sites = static_cast<std::uint32_t>(flags.GetInt("slow-sites", p.slow_sites));
  p.slow_factor = flags.GetDouble("slow-factor", p.slow_factor);
  p.enable_repair = flags.GetBool("repair", p.enable_repair);
  p.repair_wait_s = flags.GetDouble("repair-wait", p.repair_wait_s);
  p.cache_mb = flags.GetDouble("cache-mb", p.cache_mb);
  p.prefetch = flags.GetBool("prefetch", p.prefetch);
  p.replica_budget_mb = flags.GetDouble("replica-budget", p.replica_budget_mb);
  p.think_ms = flags.GetDouble("think-ms", p.think_ms);
  p.deadline_ms = flags.GetDouble("deadline-ms", p.deadline_ms);
  p.admission = flags.GetBool("admission", p.admission);
  p.breakers = flags.GetBool("breakers", p.breakers);
  p.brownout = flags.GetBool("brownout", p.brownout);
  p.admission_max_in_flight = static_cast<std::uint32_t>(
      flags.GetInt("admission-in-flight", p.admission_max_in_flight));
  p.breaker_p99_ms = flags.GetDouble("breaker-p99-ms", p.breaker_p99_ms);
  return p;
}

std::string ExperimentParams::Describe() const {
  std::ostringstream os;
  os << "sites=" << num_sites << " clients=" << clients;
  if (workload == "wiki") {
    os << " workload=wikipedia pages=" << wiki_pages;
  } else if (workload == "flash") {
    os << " workload=flash blocks=" << num_blocks << " hot=" << flash_hot_blocks
       << " frac=" << flash_fraction << " duty=" << flash_duty;
  } else {
    os << " workload=ycsb-e blocks=" << num_blocks
       << " block=" << block_bytes / 1024 << "KB zipf=" << zipf_exponent;
  }
  os << " warmup=" << warmup_s << "s measure=" << measure_s << "s runs=" << runs;
  if (!codec.empty()) os << " codec=" << codec;
  if (tail_weight > 0) os << " tail-weight=" << tail_weight;
  if (adaptive_delta) os << " adaptive-delta";
  if (stall_prob >= 0) os << " stall-prob=" << stall_prob;
  if (stall_mult >= 0) os << " stall-mult=" << stall_mult;
  if (cache_mb > 0) {
    os << " cache=" << cache_mb << "MB" << (prefetch ? "+prefetch" : "");
  }
  if (replica_budget_mb > 0) os << " replica-budget=" << replica_budget_mb << "MB";
  if (think_ms > 0) os << " think=" << think_ms << "ms";
  if (deadline_ms > 0) os << " deadline=" << deadline_ms << "ms";
  if (admission) os << " admission";
  if (breakers) os << " breakers";
  if (brownout) os << " brownout";
  return os.str();
}

namespace {

std::unique_ptr<WorkloadGenerator> MakeWorkload(const ExperimentParams& p,
                                                std::uint64_t seed) {
  if (p.workload == "wiki") {
    WikipediaWorkload::Params wp;
    wp.num_pages = p.wiki_pages;
    wp.seed = seed ^ 0x77696B69;
    return std::make_unique<WikipediaWorkload>(wp);
  }
  if (p.workload == "flash") {
    FlashCrowdWorkload::Params fp;
    fp.num_blocks = p.num_blocks;
    fp.block_bytes = p.block_bytes;
    fp.max_scan_length = p.max_scan_length;
    fp.zipf_exponent = p.zipf_exponent;
    fp.flash_fraction = p.flash_fraction;
    fp.hot_blocks = p.flash_hot_blocks;
    fp.period_requests = p.flash_period;
    fp.flash_duty = p.flash_duty;
    return std::make_unique<FlashCrowdWorkload>(fp);
  }
  if (p.workload != "ycsb") {
    throw std::invalid_argument("unknown workload: " + p.workload);
  }
  YcsbEWorkload::Params yp;
  yp.num_blocks = p.num_blocks;
  yp.block_bytes = p.block_bytes;
  yp.max_scan_length = p.max_scan_length;
  yp.zipf_exponent = p.zipf_exponent;
  return std::make_unique<YcsbEWorkload>(yp);
}

}  // namespace

RunResult RunOnce(Technique technique, const ExperimentParams& params,
                  std::uint64_t seed, const StoreSetupHook& setup) {
  ECStoreConfig config = ECStoreConfig::ForTechnique(technique);
  config.num_sites = params.num_sites;
  config.seed = seed;
  config.mover_chunks_per_sec = params.mover_rate;
  config.mover.w1 = params.mover_w1;
  config.mover.w2 = params.mover_w2;
  config.late_binding_delta = params.late_binding_delta;
  if (params.disable_plan_cache) config.plan_cache_capacity = 1;
  config.site.disk_bytes_per_sec = params.disk_mb_per_sec * 1024 * 1024;
  config.site.concurrency = params.site_concurrency;
  if (params.stall_prob >= 0) config.site.stall_probability = params.stall_prob;
  if (params.stall_mult >= 0) config.site.stall_multiplier = params.stall_mult;
  config.tail_weight = params.tail_weight;
  config.adaptive_delta = params.adaptive_delta;
  config.k = params.k;
  config.r = params.r;
  if (!params.codec.empty()) {
    const CodecSpec spec = ParseCodecSpec(params.codec);
    config.codec_family = spec.family;
    config.k = spec.k;
    config.r = spec.r;
    config.codec_locals = spec.l;
  }
  for (std::uint32_t s = 0; s < params.slow_sites; ++s) {
    config.slow_sites.push_back(static_cast<SiteId>(s * 5 % params.num_sites));
  }
  config.slow_factor = params.slow_factor;
  if (params.enable_repair) config.repair_wait = FromSeconds(params.repair_wait_s);
  config.cache_capacity_bytes =
      static_cast<std::uint64_t>(params.cache_mb * 1024 * 1024);
  config.cache_prefetch = params.prefetch;
  config.replica_budget_bytes =
      static_cast<std::uint64_t>(params.replica_budget_mb * 1024 * 1024);
  config.overload.deadline_ms = params.deadline_ms;
  config.overload.admission = params.admission;
  config.overload.breakers = params.breakers;
  config.overload.brownout = params.brownout;
  config.overload.admission_max_in_flight = params.admission_max_in_flight;
  config.overload.breaker_p99_ms = params.breaker_p99_ms;

  SimECStore store(config);
  auto workload = MakeWorkload(params, seed);
  for (const BlockSpec& b : workload->Blocks()) store.LoadBlock(b.id, b.bytes);

  if (setup) setup(store);

  std::unique_ptr<RepairService> repair;
  if (params.enable_repair) {
    repair = std::make_unique<RepairService>(&store);
    repair->Start();
  }

  ClosedLoopDriver::Params dp;
  dp.clients = params.clients;
  dp.warmup = FromSeconds(params.warmup_s);
  dp.measure = FromSeconds(params.measure_s);
  dp.think = FromMillis(params.think_ms);
  ClosedLoopDriver driver(&store, workload.get(), dp);
  driver.Run();

  RunResult result;
  result.metrics = driver.metrics();
  result.timeline = driver.Timeline();
  result.site_bytes_start = driver.measure_start_bytes();
  result.site_bytes_end = store.SiteBytesRead();
  result.imbalance_lambda = store.ImbalanceLambda(result.site_bytes_start);
  result.cache_hit_rate =
      result.metrics.cache_lookups
          ? static_cast<double>(result.metrics.cache_hits) /
                static_cast<double>(result.metrics.cache_lookups)
          : 0.0;
  result.usage = store.Usage();
  result.measure_seconds = params.measure_s;
  result.requests = result.metrics.requests;
  return result;
}

std::vector<RunResult> RunSeedsRaw(Technique technique,
                                   const ExperimentParams& params,
                                   const StoreSetupHook& setup) {
  std::vector<RunResult> results;
  results.reserve(params.runs);
  for (std::uint32_t run = 0; run < params.runs; ++run) {
    results.push_back(RunOnce(technique, params, params.base_seed + run, setup));
  }
  return results;
}

AggregateBreakdown RunSeeds(Technique technique, const ExperimentParams& params,
                            const StoreSetupHook& setup) {
  return Aggregate(RunSeedsRaw(technique, params, setup));
}

AggregateBreakdown Aggregate(const std::vector<RunResult>& runs) {
  AggregateBreakdown agg;
  for (const RunResult& r : runs) {
    agg.total.Add(r.metrics.total.Mean() / kMillisecond);
    agg.metadata.Add(r.metrics.metadata.Mean() / kMillisecond);
    agg.planning.Add(r.metrics.planning.Mean() / kMillisecond);
    agg.retrieval.Add(r.metrics.retrieval.Mean() / kMillisecond);
    agg.decode.Add(r.metrics.decode.Mean() / kMillisecond);
    agg.imbalance.Add(r.imbalance_lambda);
    agg.cache_hit_rate.Add(r.cache_hit_rate);
    agg.throughput.Add(static_cast<double>(r.requests) / r.measure_seconds);
    agg.sites_per_request.Add(r.metrics.sites_per_request.Mean());
  }
  return agg;
}

ControlPlaneUsage SumUsage(const std::vector<RunResult>& runs) {
  ControlPlaneUsage sum;
  for (const RunResult& r : runs) {
    sum.degraded_reads += r.usage.degraded_reads;
    sum.retried_fetches += r.usage.retried_fetches;
    sum.cancelled_fetch_jobs += r.usage.cancelled_fetch_jobs;
    sum.checksum_failures += r.usage.checksum_failures;
    sum.chunks_scrubbed += r.usage.chunks_scrubbed;
    sum.chunks_repaired += r.usage.chunks_repaired;
    sum.sites_marked_dead += r.usage.sites_marked_dead;
    sum.repair_bytes_read += r.usage.repair_bytes_read;
    sum.repair_chunks_read += r.usage.repair_chunks_read;
    sum.cache_hits += r.usage.cache_hits;
    sum.cache_misses += r.usage.cache_misses;
    sum.cache_evictions += r.usage.cache_evictions;
    sum.cache_invalidations += r.usage.cache_invalidations;
    sum.prefetch_issued += r.usage.prefetch_issued;
    sum.prefetch_hits += r.usage.prefetch_hits;
    sum.cache_bytes += r.usage.cache_bytes;
    sum.blocks_promoted += r.usage.blocks_promoted;
    sum.blocks_demoted += r.usage.blocks_demoted;
    sum.replica_extra_bytes += r.usage.replica_extra_bytes;
    sum.requests_shed += r.usage.requests_shed;
    sum.deadline_exceeded += r.usage.deadline_exceeded;
    sum.breaker_opens += r.usage.breaker_opens;
    sum.breaker_half_open_probes += r.usage.breaker_half_open_probes;
    // brownout_level is a gauge: take the max observed across seeds so a
    // summed row still answers "did the ladder engage?".
    sum.brownout_level = std::max(sum.brownout_level, r.usage.brownout_level);
    sum.expired_jobs_cancelled += r.usage.expired_jobs_cancelled;
  }
  return sum;
}

std::string UsageJson(
    const std::string& bench,
    const std::vector<std::pair<std::string, ControlPlaneUsage>>& rows) {
  std::ostringstream os;
  os << "{\"bench\":\"" << bench << "\",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ControlPlaneUsage& u = rows[i].second;
    if (i) os << ",";
    os << "{\"label\":\"" << rows[i].first << "\""
       << ",\"degraded_reads\":" << u.degraded_reads
       << ",\"retried_fetches\":" << u.retried_fetches
       << ",\"cancelled_fetch_jobs\":" << u.cancelled_fetch_jobs
       << ",\"checksum_failures\":" << u.checksum_failures
       << ",\"chunks_scrubbed\":" << u.chunks_scrubbed
       << ",\"chunks_repaired\":" << u.chunks_repaired
       << ",\"sites_marked_dead\":" << u.sites_marked_dead
       << ",\"repair_bytes_read\":" << u.repair_bytes_read
       << ",\"repair_chunks_read\":" << u.repair_chunks_read
       << ",\"cache_hits\":" << u.cache_hits
       << ",\"cache_misses\":" << u.cache_misses
       << ",\"cache_evictions\":" << u.cache_evictions
       << ",\"prefetch_issued\":" << u.prefetch_issued
       << ",\"prefetch_hits\":" << u.prefetch_hits
       << ",\"cache_bytes\":" << u.cache_bytes
       << ",\"blocks_promoted\":" << u.blocks_promoted
       << ",\"blocks_demoted\":" << u.blocks_demoted
       << ",\"replica_extra_bytes\":" << u.replica_extra_bytes
       << ",\"requests_shed\":" << u.requests_shed
       << ",\"deadline_exceeded\":" << u.deadline_exceeded
       << ",\"breaker_opens\":" << u.breaker_opens
       << ",\"breaker_half_open_probes\":" << u.breaker_half_open_probes
       << ",\"brownout_level\":" << u.brownout_level
       << ",\"expired_jobs_cancelled\":" << u.expired_jobs_cancelled << "}";
  }
  os << "]}\n";
  return os.str();
}

void MaybeWriteUsageJson(
    const Flags& flags, const std::string& bench,
    const std::vector<std::pair<std::string, ControlPlaneUsage>>& rows) {
  const std::string path = flags.GetString("usage-json", "");
  if (path.empty()) return;
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write --usage-json=" + path);
  out << UsageJson(bench, rows);
  std::printf("robustness counters -> %s\n", path.c_str());
}

std::vector<Technique> AllTechniques() {
  return {Technique::kReplication, Technique::kEc,   Technique::kEcLb,
          Technique::kEcC,         Technique::kEcCM, Technique::kEcCMLb};
}

std::vector<Technique> TechniquesFromFlags(const Flags& flags) {
  const std::string list = flags.GetString("techniques", "");
  if (list.empty()) return AllTechniques();
  std::vector<Technique> out;
  std::stringstream ss(list);
  std::string token;
  while (std::getline(ss, token, ',')) out.push_back(ParseTechnique(token));
  return out;
}

std::string WithCi(const RunningStat& stat) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f ±%.1f", stat.Mean(),
                stat.ConfidenceHalfWidth95());
  return buf;
}

void PrintBreakdownTable(const std::string& title,
                         const std::vector<Technique>& techniques,
                         const std::vector<AggregateBreakdown>& rows) {
  std::printf("\n%s\n", title.c_str());
  std::printf("%-12s %14s %14s %14s %14s %14s %9s %7s %7s %7s\n", "technique",
              "metadata(ms)", "planning(ms)", "retrieval(ms)", "decode(ms)",
              "total(ms)", "req/s", "hit%", "imbal", "sites");
  for (std::size_t i = 0; i < techniques.size(); ++i) {
    const AggregateBreakdown& a = rows[i];
    std::printf("%-12s %14s %14s %14s %14s %14s %9.0f %7.0f %7.1f %7.1f\n",
                TechniqueName(techniques[i]).c_str(), WithCi(a.metadata).c_str(),
                WithCi(a.planning).c_str(), WithCi(a.retrieval).c_str(),
                WithCi(a.decode).c_str(), WithCi(a.total).c_str(),
                a.throughput.Mean(), 100 * a.cache_hit_rate.Mean(),
                a.imbalance.Mean(), a.sites_per_request.Mean());
  }
}

}  // namespace ecstore::bench
