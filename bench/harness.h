// Shared experiment harness for the paper-reproduction benches: builds a
// SimECStore + workload + closed-loop driver for each (technique, seed)
// pair, aggregates across seeds with 95% confidence intervals (the
// paper's five-run methodology), and prints the tables/series each
// figure reports.
//
// Scale note (DESIGN.md): defaults are scaled down from the paper's
// 1M-block, 20+20-minute runs so each bench finishes in seconds; every
// parameter can be restored to paper scale via --flags.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/histogram.h"
#include "core/sim_store.h"
#include "workload/driver.h"
#include "workload/workload.h"

namespace ecstore::bench {

/// Scenario parameters, overridable from the command line.
struct ExperimentParams {
  std::size_t num_sites = 32;
  std::uint64_t num_blocks = 10000;
  std::uint64_t block_bytes = 100 * 1024;
  std::uint32_t clients = 24;
  double warmup_s = 15;
  double measure_s = 30;
  double zipf_exponent = 1.0;
  std::uint32_t max_scan_length = 19;
  std::uint32_t runs = 3;      // Seeds averaged (paper used 5).
  std::uint64_t base_seed = 1;
  std::string workload = "ycsb";  // "ycsb", "wiki" or "flash"
  std::uint64_t wiki_pages = 4000;
  /// Flash-crowd workload shape (--workload=flash; DESIGN.md §13).
  double flash_fraction = 0.9;
  std::uint64_t flash_hot_blocks = 16;
  std::uint64_t flash_period = 4096;
  double flash_duty = 0.5;
  /// Tail-model weight for Eq. 1's cost (--tail-weight; 0 keeps planning
  /// bit-identical to the scalar model).
  double tail_weight = 0;
  /// Per-request adaptive late-binding δ (--adaptive-delta; off keeps the
  /// static configured δ).
  bool adaptive_delta = false;
  /// Site stall injection overrides (--stall-prob/--stall-mult). Negative
  /// keeps the simulator's SiteParams defaults.
  double stall_prob = -1;
  double stall_mult = -1;
  /// Mover throttle in chunks/second. The paper used 1/s over 20-minute
  /// runs; scaled runs compress time ~25x, so the default compresses the
  /// mover's schedule equally to keep moves-per-experiment comparable.
  double mover_rate = 8.0;
  /// Movement-strategy weights (Eq. 8). The paper's search settled on
  /// (1, 3) with I magnitudes near 1; our per-single-chunk-move I values
  /// are O(1e-2), so the equivalent operating point sits at w2 ~ 1000
  /// (found by the same style of parameter search, Section V-B3; see
  /// bench_ablation_weights for the sweep).
  double mover_w1 = 1.0;
  double mover_w2 = 1000.0;
  /// Late-binding depth for the +LB techniques (Section IV-B1: 0 < delta
  /// <= r; the paper's experiments use 1).
  std::uint32_t late_binding_delta = 1;
  /// Forces every request down the greedy path (cache disabled) — used by
  /// the plan-cache ablation.
  bool disable_plan_cache = false;
  /// Storage-media read rate (MB/s). The paper's 100 KB dataset fits the
  /// page cache while the 1 MB dataset does not; benches model the
  /// uncached regime by lowering this.
  double disk_mb_per_sec = 140.0;
  /// Per-site service concurrency. The cached 100 KB regime is CPU/NIC
  /// bound (many concurrent streams); the uncached large-block regime is
  /// disk bound (few).
  std::uint32_t site_concurrency = 6;
  /// Coding parameters (paper default RS(2,2) / 3-way replication).
  std::uint32_t k = 2;
  std::uint32_t r = 2;
  /// Codec-family spec (--codec=rs(6,3) | lrc(6,2,2) | pb(6,3) | rep(2)).
  /// Empty keeps the legacy k/r RS parameters untouched — bit-identical
  /// default behavior. Non-empty overrides k/r from the parsed spec.
  std::string codec;
  /// Number of artificially slowed sites (heterogeneity ablation).
  std::uint32_t slow_sites = 0;
  double slow_factor = 3.0;
  /// Starts the RepairService so failed sites are reconstructed online
  /// (--repair; the paper's failure runs leave this off, Section VI-C4).
  bool enable_repair = false;
  /// Grace period before a dead site is rebuilt (--repair-wait, seconds).
  /// The paper waited 15 min; scaled runs compress it like the mover rate.
  double repair_wait_s = 15 * 60.0;
  /// Decoded-block cache capacity (--cache-mb, MB; 0 = off, the default —
  /// keeps every pre-existing bench bit-identical). DESIGN.md §12.
  double cache_mb = 0;
  /// Co-access prefetch on cache hits (--prefetch; needs --cache-mb > 0).
  bool prefetch = false;
  /// Hybrid-redundancy storage budget (--replica-budget, MB; 0 = off).
  double replica_budget_mb = 0;
  /// Mean exponential client think time (--think-ms; 0 = the paper's
  /// zero-think saturation loop). A fixed offered load is what lets the
  /// cache's latency savings surface as shorter queues (tail) rather
  /// than as extra closed-loop throughput.
  double think_ms = 0;
  /// Overload control (DESIGN.md §14). All four default off, which keeps
  /// the OverloadControl subsystem un-constructed and every pre-existing
  /// bench bit-identical. --deadline-ms sets the end-to-end per-request
  /// budget (0 = none); --admission enables the token/CoDel gate;
  /// --breakers the per-site circuit breakers; --brownout the shed
  /// ladder. --admission-in-flight / --breaker-p99-ms tune the two most
  /// scenario-dependent thresholds.
  double deadline_ms = 0;
  bool admission = false;
  bool breakers = false;
  bool brownout = false;
  std::uint32_t admission_max_in_flight = 64;
  double breaker_p99_ms = 50;

  /// Reads overrides: --sites, --blocks, --block-bytes, --clients,
  /// --warmup, --measure, --zipf, --runs, --seed, --workload, --pages,
  /// --flash-fraction, --flash-hot, --flash-period, --flash-duty,
  /// --tail-weight, --adaptive-delta, --stall-prob, --stall-mult.
  static ExperimentParams FromFlags(const Flags& flags);

  /// Human-readable one-liner for bench headers.
  std::string Describe() const;
};

/// Everything one run produces.
struct RunResult {
  PhaseMetrics metrics;
  std::vector<TimelinePoint> timeline;
  std::vector<std::uint64_t> site_bytes_start;
  std::vector<std::uint64_t> site_bytes_end;
  double imbalance_lambda = 0;
  double cache_hit_rate = 0;
  ControlPlaneUsage usage;
  double measure_seconds = 0;
  std::uint64_t requests = 0;
};

/// Aggregated (mean ± CI95) per-category latencies in milliseconds.
struct AggregateBreakdown {
  RunningStat total, metadata, planning, retrieval, decode;
  RunningStat imbalance, cache_hit_rate, throughput, sites_per_request;
};

/// Hook to mutate the store before the driver starts (e.g. fail sites).
using StoreSetupHook = std::function<void(SimECStore&)>;

/// Runs one (technique, seed) experiment.
RunResult RunOnce(Technique technique, const ExperimentParams& params,
                  std::uint64_t seed, const StoreSetupHook& setup = {});

/// Runs `params.runs` seeds and aggregates.
AggregateBreakdown RunSeeds(Technique technique, const ExperimentParams& params,
                            const StoreSetupHook& setup = {});

/// Folds raw per-seed results into the mean ± CI aggregate.
AggregateBreakdown Aggregate(const std::vector<RunResult>& runs);

/// Sums the robustness counters (the DESIGN.md §9 block of
/// ControlPlaneUsage) across runs.
ControlPlaneUsage SumUsage(const std::vector<RunResult>& runs);

/// Renders labelled robustness-counter rows as one JSON object, e.g.
/// {"bench":"fig4f","rows":[{"label":"EC+C+M+LB/failures=1",
///  "degraded_reads":12,...}]} — the artifact run_benches.sh trends.
std::string UsageJson(
    const std::string& bench,
    const std::vector<std::pair<std::string, ControlPlaneUsage>>& rows);

/// Writes UsageJson to --usage-json=PATH; no-op when the flag is unset.
void MaybeWriteUsageJson(
    const Flags& flags, const std::string& bench,
    const std::vector<std::pair<std::string, ControlPlaneUsage>>& rows);

/// Collects per-seed results (for CDFs and timelines that need raw data).
std::vector<RunResult> RunSeedsRaw(Technique technique,
                                   const ExperimentParams& params,
                                   const StoreSetupHook& setup = {});

/// The six techniques in the paper's presentation order.
std::vector<Technique> AllTechniques();

/// Parses --techniques=R,EC,... (defaults to all six).
std::vector<Technique> TechniquesFromFlags(const Flags& flags);

/// Prints the Fig. 4b-style stacked-breakdown table.
void PrintBreakdownTable(const std::string& title,
                         const std::vector<Technique>& techniques,
                         const std::vector<AggregateBreakdown>& rows);

/// Formats "12.3 ±0.4".
std::string WithCi(const RunningStat& stat);

}  // namespace ecstore::bench
