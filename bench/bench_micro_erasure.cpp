// Micro-benchmarks for the GF(2^8) + Reed–Solomon substrate.
//
// Besides regression tracking, the decode numbers calibrate the DES
// decode-cost constant (ECStoreConfig::decode_bytes_per_ms): the paper's
// Fig. 1 charges ~0.8 ms of decode for a multiget of 100 KB blocks.
// BM_CodingCalibration reports the exact constants CalibrateCodingCosts
// derives. Pin a kernel path with ECSTORE_GF_KERNEL=scalar|ssse3|avx2;
// the per-path BM_GfMulAddRegionPath variants cover all paths in one run.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/calibrate.h"
#include "erasure/codec.h"
#include "gf/gf256.h"
#include "gf/gf256_kernels.h"

namespace ecstore {
namespace {

std::vector<std::uint8_t> RandomBlock(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> block(n);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  return block;
}

void BM_GfMulAddRegion(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto src = RandomBlock(n, 1);
  std::vector<std::uint8_t> dst(n, 0);
  for (auto _ : state) {
    gf::MulAddRegion(0x57, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GfMulAddRegion)->Arg(4 * 1024)->Arg(64 * 1024)->Arg(1024 * 1024);

// Same loop pinned to one dispatch path (0=scalar, 1=ssse3, 2=avx2), so a
// single run compares every kernel this CPU can execute.
void BM_GfMulAddRegionPath(benchmark::State& state) {
  const auto path = static_cast<gf::KernelPath>(state.range(0));
  if (!gf::ForceKernelPath(path)) {
    state.SkipWithError("kernel path unsupported on this CPU");
    return;
  }
  state.SetLabel(gf::KernelPathName(path));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const auto src = RandomBlock(n, 1);
  std::vector<std::uint8_t> dst(n, 0);
  for (auto _ : state) {
    gf::MulAddRegion(0x57, src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  gf::ResetKernelPath();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GfMulAddRegionPath)
    ->ArgsProduct({{0, 1, 2}, {64 * 1024, 1024 * 1024}});

// The fused multi-source kernel the RS codec runs on: one pass computing
// dst = sum of c_j * src_j over k sources.
void BM_GfMulAddRegionMulti(benchmark::State& state) {
  const std::size_t nsrc = static_cast<std::size_t>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  std::vector<std::vector<std::uint8_t>> bufs;
  std::vector<const std::uint8_t*> srcs;
  std::vector<gf::Elem> consts;
  for (std::size_t j = 0; j < nsrc; ++j) {
    bufs.push_back(RandomBlock(n, 10 + j));
    srcs.push_back(bufs.back().data());
    consts.push_back(static_cast<gf::Elem>(3 + 7 * j));
  }
  std::vector<std::uint8_t> dst(n, 0);
  for (auto _ : state) {
    gf::MulAddRegionMulti(consts, srcs.data(), dst, /*accumulate=*/false);
    benchmark::DoNotOptimize(dst.data());
  }
  // All nsrc sources are streamed per fused pass.
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * nsrc));
}
BENCHMARK(BM_GfMulAddRegionMulti)
    ->Args({4, 64 * 1024})
    ->Args({10, 64 * 1024})
    ->Args({4, 1024 * 1024});

void BM_GfAddRegion(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto src = RandomBlock(n, 2);
  std::vector<std::uint8_t> dst(n, 0);
  for (auto _ : state) {
    gf::AddRegion(src, dst);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GfAddRegion)->Arg(64 * 1024)->Arg(1024 * 1024);

void BM_RsEncode(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t r = static_cast<std::uint32_t>(state.range(1));
  const std::size_t block_size = static_cast<std::size_t>(state.range(2));
  ReedSolomonCodec codec(k, r);
  const auto block = RandomBlock(block_size, 3);
  for (auto _ : state) {
    auto chunks = codec.Encode(block);
    benchmark::DoNotOptimize(chunks.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block_size));
}
BENCHMARK(BM_RsEncode)
    ->Args({2, 2, 100 * 1024})
    ->Args({2, 2, 1024 * 1024})
    ->Args({4, 2, 1024 * 1024})
    ->Args({10, 4, 1024 * 1024});

void BM_RsDecodeSystematic(benchmark::State& state) {
  const std::size_t block_size = static_cast<std::size_t>(state.range(0));
  ReedSolomonCodec codec(2, 2);
  const auto block = RandomBlock(block_size, 4);
  const auto chunks = codec.Encode(block);
  const std::vector<IndexedChunk> use = {{0, chunks[0]}, {1, chunks[1]}};
  for (auto _ : state) {
    auto decoded = codec.Decode(use, block_size);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block_size));
}
BENCHMARK(BM_RsDecodeSystematic)->Arg(100 * 1024)->Arg(1024 * 1024);

void BM_RsDecodeWithParity(benchmark::State& state) {
  // The decode path that involves matrix inversion + GF arithmetic; its
  // MB/s calibrates ECStoreConfig::decode_bytes_per_ms.
  const std::size_t block_size = static_cast<std::size_t>(state.range(0));
  ReedSolomonCodec codec(2, 2);
  const auto block = RandomBlock(block_size, 5);
  const auto chunks = codec.Encode(block);
  const std::vector<IndexedChunk> use = {{2, chunks[2]}, {3, chunks[3]}};
  for (auto _ : state) {
    auto decoded = codec.Decode(use, block_size);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block_size));
}
BENCHMARK(BM_RsDecodeWithParity)->Arg(100 * 1024)->Arg(1024 * 1024);

void BM_ReplicationEncode(benchmark::State& state) {
  const std::size_t block_size = static_cast<std::size_t>(state.range(0));
  ReplicationCodec codec(2);
  const auto block = RandomBlock(block_size, 6);
  for (auto _ : state) {
    auto copies = codec.Encode(block);
    benchmark::DoNotOptimize(copies.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block_size));
}
BENCHMARK(BM_ReplicationEncode)->Arg(1024 * 1024);

// Reports the simulator constants CalibrateCodingCosts would install on
// this machine, as counters in the JSON output (units: bytes per ms).
void BM_CodingCalibration(benchmark::State& state) {
  const std::uint32_t k = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t r = static_cast<std::uint32_t>(state.range(1));
  CodingCalibration cal;
  for (auto _ : state) {
    cal = MeasureCodingThroughput(k, r, 1 << 20, /*min_measure_ms=*/20.0);
  }
  state.SetLabel(cal.kernel);
  state.counters["encode_bytes_per_ms"] = cal.encode_bytes_per_ms;
  state.counters["decode_bytes_per_ms"] = cal.decode_bytes_per_ms;
  state.counters["reassemble_bytes_per_ms"] = cal.reassemble_bytes_per_ms;
}
BENCHMARK(BM_CodingCalibration)->Args({2, 2})->Iterations(1);

}  // namespace
}  // namespace ecstore

BENCHMARK_MAIN();
