// Fig. 4c: tail-latency CDF (p80-p100) for the YCSB-E 100 KB experiment.
// The paper shows EC with the sharpest straggler-driven rise, EC+C and
// especially EC+C+M flattening the tail, and EC+C+M beating EC+LB at p99.
#include <cstdio>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  const ExperimentParams params = ExperimentParams::FromFlags(flags);

  std::printf("Fig 4c — tail latency CDF, YCSB-E 100 KB (%s)\n",
              params.Describe().c_str());

  const auto techniques = TechniquesFromFlags(flags);
  const std::vector<double> percentiles = {80, 85, 90, 92.5, 95,
                                           97.5, 99, 99.5, 99.9, 100};

  // Merge histograms across seeds per technique.
  std::vector<Histogram> merged(techniques.size());
  for (std::size_t i = 0; i < techniques.size(); ++i) {
    for (const RunResult& r : RunSeedsRaw(techniques[i], params)) {
      merged[i].Merge(r.metrics.total);
    }
    std::printf("  done %s (p99=%.1f ms)\n", TechniqueName(techniques[i]).c_str(),
                ToMillis(merged[i].Percentile(99)));
  }

  std::printf("\nFig 4c — response time (ms) at percentile\n");
  std::printf("%-8s", "pct");
  for (Technique t : techniques) std::printf(" %10s", TechniqueName(t).c_str());
  std::printf("\n");
  for (double p : percentiles) {
    std::printf("%-8.1f", p);
    for (std::size_t i = 0; i < techniques.size(); ++i) {
      std::printf(" %10.1f", ToMillis(merged[i].Percentile(p)));
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape: EC worst at the tail; EC+C below EC; EC+C+M "
              "below EC+LB at p99; combined EC+C+M+LB lowest.\n");
  return 0;
}
