// Fig. 4h: tail-latency CDF (p90-p100) for the Wikipedia experiment.
// Unlike YCSB (Fig. 4c), the block-size spread smooths the CDF — no
// sharp straggler knee — and EC+C+M / EC+C+M+LB stay lowest across the
// whole distribution, with EC+LB catching up only at the extreme tail.
#include <cstdio>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  ExperimentParams params = ExperimentParams::FromFlags(flags);
  params.workload = "wiki";

  std::printf("Fig 4h — Wikipedia tail latency CDF (%s)\n",
              params.Describe().c_str());

  const auto techniques = TechniquesFromFlags(flags);
  const std::vector<double> percentiles = {90, 92, 94, 96, 98, 99, 99.5, 99.9, 100};

  std::vector<Histogram> merged(techniques.size());
  for (std::size_t i = 0; i < techniques.size(); ++i) {
    for (const RunResult& r : RunSeedsRaw(techniques[i], params)) {
      merged[i].Merge(r.metrics.total);
    }
    std::printf("  done %s\n", TechniqueName(techniques[i]).c_str());
  }

  std::printf("\nFig 4h — response time (ms) at percentile\n");
  std::printf("%-8s", "pct");
  for (Technique t : techniques) std::printf(" %10s", TechniqueName(t).c_str());
  std::printf("\n");
  for (double p : percentiles) {
    std::printf("%-8.1f", p);
    for (std::size_t i = 0; i < techniques.size(); ++i) {
      std::printf(" %10.1f", ToMillis(merged[i].Percentile(p)));
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape: smooth CDF (block-size spread hides the straggler "
              "knee); EC+C+M(+LB) lowest across the distribution.\n");
  return 0;
}
