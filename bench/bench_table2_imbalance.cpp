// Table II: the I/O load-imbalance factor
//   lambda = (Lmax - Lavg) / Lavg * 100
// over per-site bytes read in the YCSB-E 100 KB experiment.
// Paper values: R 45.4, EC 43.0, EC+LB 22.8, EC+C 31.1, EC+C+M 24.5,
// EC+C+M+LB 19.8 — i.e. the cost model reduces imbalance vs both
// baselines, movement reduces it further, and adding LB is lowest.
#include <cstdio>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  const ExperimentParams params = ExperimentParams::FromFlags(flags);

  std::printf("Table II — I/O load imbalance lambda (%s)\n",
              params.Describe().c_str());

  const auto techniques = TechniquesFromFlags(flags);
  std::printf("\n%-12s %16s\n", "technique", "lambda");
  for (Technique t : techniques) {
    const AggregateBreakdown agg = RunSeeds(t, params);
    std::printf("%-12s %16s\n", TechniqueName(t).c_str(),
                WithCi(agg.imbalance).c_str());
    std::fflush(stdout);
  }
  std::printf("\nPaper reference: R 45.4, EC 43.0, EC+LB 22.8, EC+C 31.1, "
              "EC+C+M 24.5, EC+C+M+LB 19.8 (lower = more balanced)\n");
  return 0;
}
