// Ablation benches for the design choices DESIGN.md calls out:
//
//   --sweep=w2      the Eq. 8 weight balancing co-location gain (E)
//                   against load-balance gain (I) — our analogue of the
//                   paper's Section V-B3 parameter search
//   --sweep=rate    the mover throttle (chunks/second, Section VI-C5)
//   --sweep=delta   the late-binding depth (Section IV-B1, 0..r)
//   --sweep=cache   plan cache on (EC+C) vs pure-greedy planning
//   --sweep=tier    the latency tier (DESIGN.md §12): baseline vs +cache
//                   vs +cache+prefetch vs +hybrid redundancy
//   --sweep=tail    the tail model (DESIGN.md §13): static δ vs adaptive
//                   per-request δ vs adaptive δ + variance-aware cost, on
//                   the flash-crowd workload with injected stalls
//
// Each sweep holds the locked experiment defaults and varies one knob.
#include <cstdio>
#include <iterator>

#include "bench/harness.h"
#include "common/histogram.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  ExperimentParams params = ExperimentParams::FromFlags(flags);
  params.runs = static_cast<std::uint32_t>(flags.GetInt("runs", 1));
  const std::string sweep = flags.GetString("sweep", "w2");

  std::printf("Ablation sweep '%s' (%s)\n\n", sweep.c_str(),
              params.Describe().c_str());

  if (sweep == "w2") {
    std::printf("%-10s %12s %10s %10s\n", "w2", "total(ms)", "imbalance", "sites");
    for (double w2 : {0.0, 3.0, 100.0, 400.0, 1000.0, 4000.0}) {
      ExperimentParams p = params;
      p.mover_w2 = w2;
      const AggregateBreakdown a = RunSeeds(Technique::kEcCM, p);
      std::printf("%-10.0f %12.1f %10.1f %10.1f\n", w2, a.total.Mean(),
                  a.imbalance.Mean(), a.sites_per_request.Mean());
    }
    std::printf("\nExpected: w2 = 0 over-concentrates (best co-location, worst "
                "imbalance); very large w2 forfeits co-location gains.\n");
  } else if (sweep == "rate") {
    std::printf("%-10s %12s %10s %10s\n", "chunks/s", "total(ms)", "imbalance",
                "sites");
    for (double rate : {0.0, 1.0, 4.0, 8.0, 20.0, 50.0}) {
      ExperimentParams p = params;
      p.mover_rate = rate;
      const Technique t = rate == 0 ? Technique::kEcC : Technique::kEcCM;
      const AggregateBreakdown a = RunSeeds(t, p);
      std::printf("%-10.0f %12.1f %10.1f %10.1f\n", rate, a.total.Mean(),
                  a.imbalance.Mean(), a.sites_per_request.Mean());
    }
    std::printf("\nExpected: moderate rates trim sites/request; extreme rates "
                "over-concentrate hot data (Section III's tension).\n");
  } else if (sweep == "delta") {
    std::printf("%-10s %12s %10s %10s\n", "delta", "total(ms)", "req/s",
                "imbalance");
    for (std::uint32_t delta : {0u, 1u, 2u}) {
      ExperimentParams p = params;
      p.late_binding_delta = delta;
      const Technique t = delta == 0 ? Technique::kEcCM : Technique::kEcCMLb;
      const AggregateBreakdown a = RunSeeds(t, p);
      std::printf("%-10u %12.1f %10.0f %10.1f\n", delta, a.total.Mean(),
                  a.throughput.Mean(), a.imbalance.Mean());
    }
    std::printf("\nExpected: each extra chunk trades tail coverage for load "
                "(Section VI-C2's Fig. 4d effect).\n");
  } else if (sweep == "cache") {
    std::printf("%-14s %12s %12s %8s\n", "planning", "total(ms)", "planning(ms)",
                "hit%");
    {
      const AggregateBreakdown a = RunSeeds(Technique::kEcC, params);
      std::printf("%-14s %12.1f %12.2f %8.0f\n", "cache+ilp", a.total.Mean(),
                  a.planning.Mean(), 100 * a.cache_hit_rate.Mean());
    }
    {
      // A capacity-1 cache almost never hits: every request takes the
      // greedy path and no ILP solution is retained.
      ExperimentParams p = params;
      p.disable_plan_cache = true;
      const AggregateBreakdown a = RunSeeds(Technique::kEcC, p);
      std::printf("%-14s %12.1f %12.2f %8.0f\n", "greedy-only",
                  a.total.Mean(), a.planning.Mean(),
                  100 * a.cache_hit_rate.Mean());
    }
  } else if (sweep == "tier") {
    // The latency tier's increments on the mover technique: decoded-block
    // cache, co-access prefetch, and hot-block replica promotion under a
    // storage budget. All rows share the same cluster storage.
    struct TierRow {
      const char* label;
      double cache_mb;
      bool prefetch;
      double budget_mb;
    };
    const TierRow tiers[] = {
        {"baseline", 0, false, 0},
        {"+cache", 32, false, 0},
        {"+cache+prefetch", 32, true, 0},
        {"+hybrid", 32, true, 16},
    };
    std::printf("%-18s %12s %10s %10s %10s\n", "tier", "total(ms)", "hit%",
                "promoted", "req/s");
    for (const TierRow& tier : tiers) {
      ExperimentParams p = params;
      p.cache_mb = tier.cache_mb;
      p.prefetch = tier.prefetch;
      p.replica_budget_mb = tier.budget_mb;
      const std::vector<RunResult> runs = RunSeedsRaw(Technique::kEcCMLb, p);
      const AggregateBreakdown a = Aggregate(runs);
      const ControlPlaneUsage u = SumUsage(runs);
      const double lookups =
          static_cast<double>(u.cache_hits + u.cache_misses);
      std::printf("%-18s %12.1f %9.1f%% %10llu %10.0f\n", tier.label,
                  a.total.Mean(),
                  lookups > 0 ? 100.0 * static_cast<double>(u.cache_hits) /
                                    lookups
                              : 0.0,
                  static_cast<unsigned long long>(u.blocks_promoted),
                  a.throughput.Mean());
    }
    std::printf("\nExpected: each increment trims the mean (hits skip the "
                "full R1-R3 path); promotion needs the budget row.\n");
  } else if (sweep == "k") {
    // Section V-B3's trade-off: larger k stores less but touches more
    // sites per block.
    std::printf("%-8s %10s %12s %10s %10s\n", "k", "storage", "total(ms)",
                "sites", "req/s");
    for (std::uint32_t k : {2u, 3u, 4u, 6u}) {
      ExperimentParams p = params;
      p.k = k;
      const AggregateBreakdown a = RunSeeds(Technique::kEcC, p);
      std::printf("%-8u %9.2fx %12.1f %10.1f %10.0f\n", k,
                  (static_cast<double>(k) + p.r) / k, a.total.Mean(),
                  a.sites_per_request.Mean(), a.throughput.Mean());
    }
    std::printf("\nExpected: storage overhead falls with k while access cost "
                "rises (more sites per block).\n");
  } else if (sweep == "hetero") {
    // Heterogeneous clusters: some sites are 3x slower. Dynamic o_j lets
    // the cost model route around them; random access cannot.
    std::printf("%-12s %12s %12s\n", "slow sites", "EC total", "EC+C total");
    for (std::uint32_t slow : {0u, 2u, 4u, 8u}) {
      ExperimentParams p = params;
      p.slow_sites = slow;
      const AggregateBreakdown ec = RunSeeds(Technique::kEc, p);
      const AggregateBreakdown ecc = RunSeeds(Technique::kEcC, p);
      std::printf("%-12u %12.1f %12.1f\n", slow, ec.total.Mean(),
                  ecc.total.Mean());
    }
    std::printf("\nExpected: EC degrades with every slow site; EC+C's probe-"
                "driven o_j routes around them, widening its margin.\n");
  } else if (sweep == "tail") {
    // Tail-model ablation (DESIGN.md §13) on the flash-crowd workload
    // with heavy stalls: a scalar-cost planner with a static δ pays the
    // straggler tax; the adaptive δ widens fan-out only when the measured
    // straggler fraction warrants it, and the tail-weighted cost steers
    // reads away from high-variance sites before they straggle.
    struct TailRow {
      const char* label;
      bool adaptive;
      double tail_weight;
    };
    // --tail-weight overrides the third row's weight (default 0.5: a
    // strong surcharge re-concentrates load on the quiet sites, which
    // costs back some of what variance-avoidance buys).
    const double tail_w = params.tail_weight > 0 ? params.tail_weight : 0.5;
    const TailRow rows[] = {
        {"static-delta", false, 0.0},
        {"adaptive-delta", true, 0.0},
        {"adaptive+tail", true, tail_w},
    };
    ExperimentParams base = params;
    if (flags.GetString("workload", "").empty()) base.workload = "flash";
    if (base.stall_prob < 0) base.stall_prob = 0.02;
    if (base.stall_mult < 0) base.stall_mult = 20;
    // Fixed offered load (nonzero think time): the comparison the δ
    // policies are designed for is "equal mean load, different tails" —
    // in the zero-think saturation loop a wider fan-out only converts
    // into queueing, burying the tail effect it exists to buy.
    if (flags.GetString("think-ms", "").empty()) base.think_ms = 20;
    std::printf("(%s)\n", base.Describe().c_str());
    std::printf("%-16s %10s %10s %10s %10s %8s\n", "policy", "mean(ms)",
                "p95(ms)", "p99(ms)", "req/s", "sites");
    double static_p99 = 0;
    std::vector<Histogram> merged(std::size(rows));
    for (std::size_t i = 0; i < std::size(rows); ++i) {
      ExperimentParams p = base;
      p.adaptive_delta = rows[i].adaptive;
      p.tail_weight = rows[i].tail_weight;
      const std::vector<RunResult> runs = RunSeedsRaw(Technique::kEcCMLb, p);
      for (const RunResult& r : runs) merged[i].Merge(r.metrics.total);
      const AggregateBreakdown a = Aggregate(runs);
      const double p99 = ToMillis(merged[i].Percentile(99));
      if (i == 0) static_p99 = p99;
      std::printf("%-16s %10.1f %10.1f %10.1f %10.0f %8.1f\n", rows[i].label,
                  ToMillis(static_cast<SimTime>(merged[i].Mean())),
                  ToMillis(merged[i].Percentile(95)), p99, a.throughput.Mean(),
                  a.sites_per_request.Mean());
    }
    // Fig 4c/4h-style tail curve over the same runs.
    std::printf("\ntail curve — response time (ms) at percentile\n");
    std::printf("%-8s", "pct");
    for (const TailRow& row : rows) std::printf(" %14s", row.label);
    std::printf("\n");
    for (double p : {50.0, 90.0, 95.0, 98.0, 99.0, 99.5, 99.9, 100.0}) {
      std::printf("%-8.1f", p);
      for (std::size_t i = 0; i < std::size(rows); ++i) {
        std::printf(" %14.1f", ToMillis(merged[i].Percentile(p)));
      }
      std::printf("\n");
    }
    std::printf("\nExpected: adaptive δ recovers most of the stall-driven p99 "
                "inflation (>=10%% under the 2%%/20x acceptance regime) at "
                "near-equal mean load. Uniform stalls give the tail-weighted "
                "cost little to route around (all sites look alike), so its "
                "row tracks adaptive-δ here; it differentiates when variance "
                "concentrates on specific sites (static p99 baseline: "
                "%.1f ms).\n", static_p99);
  } else {
    std::printf("unknown --sweep=%s (use w2 | rate | delta | cache | tier | "
                "k | hetero | tail)\n", sweep.c_str());
    return 1;
  }
  return 0;
}
