// Table III: physical resources used by EC-Store's control-plane
// services (statistics service, chunk read optimizer, chunk mover).
// Paper: memory 2.8 GB / 10.5 MB / 80 MB at 1M one-megabyte blocks;
// network 20 KB/s / <1 KB/s / 500 KB/s; the mover's data transfer stays
// under 0.1% of benchmark traffic and late binding adds ~50% more chunk
// requests (Section VI-C5).
//
// We run EC+C+M and EC+LB at scaled size and report measured memory,
// control-message traffic, and the same overhead ratios.
#include <cstdio>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  ExperimentParams params = ExperimentParams::FromFlags(flags);
  params.runs = static_cast<std::uint32_t>(flags.GetInt("runs", 1));

  std::printf("Table III — control-plane resource usage (%s)\n",
              params.Describe().c_str());

  const RunResult r = RunOnce(Technique::kEcCM, params, params.base_seed);

  const double measure_s = r.measure_seconds;
  const double stats_kbs =
      static_cast<double>(r.usage.stats_network_bytes) / 1024.0 /
      (params.warmup_s + measure_s);
  const double mover_kbs = static_cast<double>(r.usage.mover_network_bytes) /
                           1024.0 / (params.warmup_s + measure_s);

  std::printf("\n%-22s %14s %14s\n", "resource", "value", "paper@1M x 1MB");
  std::printf("%-22s %11.2f MB %14s\n", "stats memory",
              static_cast<double>(r.usage.stats_memory_bytes) / (1024 * 1024),
              "2800 MB");
  std::printf("%-22s %11.2f MB %14s\n", "optimizer memory",
              static_cast<double>(r.usage.optimizer_memory_bytes) / (1024 * 1024),
              "10.5 MB");
  std::printf("%-22s %11.2f MB %14s\n", "mover memory",
              static_cast<double>(r.usage.mover_memory_bytes) / (1024 * 1024),
              "80 MB");
  std::printf("%-22s %11.2f KB/s %12s\n", "stats network", stats_kbs, "20 KB/s");
  std::printf("%-22s %11.2f KB/s %12s\n", "mover network", mover_kbs, "500 KB/s");
  std::printf("%-22s %14llu\n", "chunk moves",
              static_cast<unsigned long long>(r.usage.moves_executed));
  std::printf("%-22s %14llu\n", "background ILP solves",
              static_cast<unsigned long long>(r.usage.ilp_solves));

  // Mover traffic as a share of benchmark data transfer (<0.1% claim).
  std::uint64_t benchmark_bytes = 0;
  for (std::size_t j = 0; j < r.site_bytes_end.size(); ++j) {
    benchmark_bytes += r.site_bytes_end[j];
  }
  std::printf("%-22s %13.4f%% %12s\n", "mover / benchmark I/O",
              100.0 * static_cast<double>(r.usage.mover_network_bytes) /
                  static_cast<double>(benchmark_bytes),
              "<0.1%");

  // Storage-overhead claim: EC-Store's control state vs stored data.
  const double stored = static_cast<double>(params.num_blocks) *
                        static_cast<double>(params.block_bytes) * 2.0;  // RS(2,2)
  const double control = static_cast<double>(r.usage.stats_memory_bytes +
                                             r.usage.optimizer_memory_bytes +
                                             r.usage.mover_memory_bytes);
  std::printf("%-22s %13.4f%% %12s\n", "control / stored data",
              100.0 * control / stored, "0.3%");

  // Late binding's extra chunk requests (50% with k=2, delta=1).
  const RunResult lb = RunOnce(Technique::kEcLb, params, params.base_seed);
  std::uint64_t lb_bytes = 0;
  for (std::size_t j = 0; j < lb.site_bytes_end.size(); ++j) {
    lb_bytes += lb.site_bytes_end[j];
  }
  const RunResult ec = RunOnce(Technique::kEc, params, params.base_seed);
  std::uint64_t ec_bytes = 0;
  for (std::size_t j = 0; j < ec.site_bytes_end.size(); ++j) {
    ec_bytes += ec.site_bytes_end[j];
  }
  const double lb_per_req = static_cast<double>(lb_bytes) / lb.requests;
  const double ec_per_req = static_cast<double>(ec_bytes) / ec.requests;
  std::printf("%-22s %13.1f%% %12s\n", "LB extra reads/request",
              100.0 * (lb_per_req / ec_per_req - 1.0), "+50%");
  return 0;
}
