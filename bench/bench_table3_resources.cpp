// Table III: physical resources used by EC-Store's control-plane
// services (statistics service, chunk read optimizer, chunk mover).
// Paper: memory 2.8 GB / 10.5 MB / 80 MB at 1M one-megabyte blocks;
// network 20 KB/s / <1 KB/s / 500 KB/s; the mover's data transfer stays
// under 0.1% of benchmark traffic and late binding adds ~50% more chunk
// requests (Section VI-C5).
//
// We run EC+C+M and EC+LB at scaled size and report measured memory,
// control-message traffic, and the same overhead ratios.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/harness.h"
#include "core/local_store.h"

namespace {

/// Table III's ordering (2.8 GB stats >> 80 MB mover >> 10.5 MB
/// optimizer) must hold for every embodiment, since the memory lives in
/// the one shared ControlPlane. Returns false (and complains) otherwise.
bool CheckMemoryOrdering(const char* label,
                         const ecstore::ControlPlaneUsage& usage) {
  const bool ok = usage.stats_memory_bytes > usage.mover_memory_bytes &&
                  usage.mover_memory_bytes > usage.optimizer_memory_bytes;
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: %s memory ordering stats(%zu) > mover(%zu) > "
                 "optimizer(%zu) violated\n",
                 label, usage.stats_memory_bytes, usage.mover_memory_bytes,
                 usage.optimizer_memory_bytes);
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  ExperimentParams params = ExperimentParams::FromFlags(flags);
  params.runs = static_cast<std::uint32_t>(flags.GetInt("runs", 1));

  std::printf("Table III — control-plane resource usage (%s)\n",
              params.Describe().c_str());

  const RunResult r = RunOnce(Technique::kEcCM, params, params.base_seed);

  const double measure_s = r.measure_seconds;
  const double stats_kbs =
      static_cast<double>(r.usage.stats_network_bytes) / 1024.0 /
      (params.warmup_s + measure_s);
  const double mover_kbs = static_cast<double>(r.usage.mover_network_bytes) /
                           1024.0 / (params.warmup_s + measure_s);

  std::printf("\n%-22s %14s %14s\n", "resource", "value", "paper@1M x 1MB");
  std::printf("%-22s %11.2f MB %14s\n", "stats memory",
              static_cast<double>(r.usage.stats_memory_bytes) / (1024 * 1024),
              "2800 MB");
  std::printf("%-22s %11.2f MB %14s\n", "optimizer memory",
              static_cast<double>(r.usage.optimizer_memory_bytes) / (1024 * 1024),
              "10.5 MB");
  std::printf("%-22s %11.2f MB %14s\n", "mover memory",
              static_cast<double>(r.usage.mover_memory_bytes) / (1024 * 1024),
              "80 MB");
  std::printf("%-22s %11.2f KB/s %12s\n", "stats network", stats_kbs, "20 KB/s");
  std::printf("%-22s %11.2f KB/s %12s\n", "mover network", mover_kbs, "500 KB/s");
  std::printf("%-22s %14llu\n", "chunk moves",
              static_cast<unsigned long long>(r.usage.moves_executed));
  std::printf("%-22s %14llu\n", "background ILP solves",
              static_cast<unsigned long long>(r.usage.ilp_solves));

  // Mover traffic as a share of benchmark data transfer (<0.1% claim).
  std::uint64_t benchmark_bytes = 0;
  for (std::size_t j = 0; j < r.site_bytes_end.size(); ++j) {
    benchmark_bytes += r.site_bytes_end[j];
  }
  std::printf("%-22s %13.4f%% %12s\n", "mover / benchmark I/O",
              100.0 * static_cast<double>(r.usage.mover_network_bytes) /
                  static_cast<double>(benchmark_bytes),
              "<0.1%");

  // Storage-overhead claim: EC-Store's control state vs stored data.
  const double stored = static_cast<double>(params.num_blocks) *
                        static_cast<double>(params.block_bytes) * 2.0;  // RS(2,2)
  const double control = static_cast<double>(r.usage.stats_memory_bytes +
                                             r.usage.optimizer_memory_bytes +
                                             r.usage.mover_memory_bytes);
  std::printf("%-22s %13.4f%% %12s\n", "control / stored data",
              100.0 * control / stored, "0.3%");

  // Late binding's extra chunk requests (50% with k=2, delta=1).
  const RunResult lb = RunOnce(Technique::kEcLb, params, params.base_seed);
  std::uint64_t lb_bytes = 0;
  for (std::size_t j = 0; j < lb.site_bytes_end.size(); ++j) {
    lb_bytes += lb.site_bytes_end[j];
  }
  const RunResult ec = RunOnce(Technique::kEc, params, params.base_seed);
  std::uint64_t ec_bytes = 0;
  for (std::size_t j = 0; j < ec.site_bytes_end.size(); ++j) {
    ec_bytes += ec.site_bytes_end[j];
  }
  const double lb_per_req = static_cast<double>(lb_bytes) / lb.requests;
  const double ec_per_req = static_cast<double>(ec_bytes) / ec.requests;
  std::printf("%-22s %13.1f%% %12s\n", "LB extra reads/request",
              100.0 * (lb_per_req / ec_per_req - 1.0), "+50%");

  // --- Same accounting from the real-bytes embodiment: the counters come
  // from the shared ControlPlane, so the resource profile must match in
  // shape (stats >> mover >> optimizer) even though the data plane here
  // moves actual chunks.
  ECStoreConfig local_config = ECStoreConfig::ForTechnique(Technique::kEcCM);
  local_config.seed = params.base_seed;
  LocalECStore local(local_config);
  Rng local_rng(params.base_seed ^ 0x10CA1ULL);
  const std::uint64_t local_blocks = 256;
  const std::uint64_t local_block_bytes = 4096;
  std::vector<std::uint8_t> payload(local_block_bytes);
  for (BlockId id = 0; id < local_blocks; ++id) {
    for (auto& b : payload) b = static_cast<std::uint8_t>(local_rng.NextBounded(256));
    local.Put(id, payload);
  }
  // Page-style multigets (as in the Wikipedia trace): requests draw from
  // a fixed set of block groups, so the recurring sets — and with them
  // the plan cache — stay bounded while the 5000-request co-access
  // window fills, reproducing the paper's stats >> mover >> optimizer
  // memory shape at this scale.
  std::vector<std::vector<BlockId>> groups;
  for (int g = 0; g < 48; ++g) {
    std::vector<BlockId> blocks;
    const std::size_t size = 1 + local_rng.NextBounded(3);
    while (blocks.size() < size) {
      const BlockId b = local_rng.NextBounded(local_blocks);
      if (std::find(blocks.begin(), blocks.end(), b) == blocks.end()) {
        blocks.push_back(b);
      }
    }
    groups.push_back(std::move(blocks));
  }
  const ZipfSampler zipf(groups.size(), 0.99);
  for (int i = 0; i < 4000; ++i) {
    (void)local.MultiGet(groups[zipf.Sample(local_rng) - 1]);
    if (i % 100 == 0) (void)local.RunMovementRound();
  }
  const ControlPlaneUsage lu = local.Usage();
  std::printf("\nLocalECStore (real bytes, %llu x %llu KB blocks)\n",
              static_cast<unsigned long long>(local_blocks),
              static_cast<unsigned long long>(local_block_bytes / 1024));
  std::printf("%-22s %11.2f KB\n", "stats memory",
              static_cast<double>(lu.stats_memory_bytes) / 1024.0);
  std::printf("%-22s %11.2f KB\n", "optimizer memory",
              static_cast<double>(lu.optimizer_memory_bytes) / 1024.0);
  std::printf("%-22s %11.2f KB\n", "mover memory",
              static_cast<double>(lu.mover_memory_bytes) / 1024.0);
  std::printf("%-22s %14llu\n", "chunk moves",
              static_cast<unsigned long long>(lu.moves_executed));
  std::printf("%-22s %14llu\n", "background ILP solves",
              static_cast<unsigned long long>(lu.ilp_solves));

  bool ok = CheckMemoryOrdering("SimECStore", r.usage);
  ok = CheckMemoryOrdering("LocalECStore", lu) && ok;
  std::printf("\nmemory ordering stats > mover > optimizer: %s\n",
              ok ? "ok (both embodiments)" : "VIOLATED");
  return ok ? 0 : 1;
}
