// Fig. 4e: YCSB-E breakdown with 1 MB blocks (paper totals, ms: R 151,
// EC 219, EC+LB 143, EC+C 145, EC+C+M 119, EC+C+M+LB 87). Larger blocks
// magnify load imbalance, so EC+C+M's margin over EC grows to ~50%.
// Section VI-C3 also reports the same trends at 10 KB:
//   bench_fig4e_ycsb1mb --block-bytes=10240
#include <cstdio>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  ExperimentParams params = ExperimentParams::FromFlags(flags);
  params.block_bytes =
      static_cast<std::uint64_t>(flags.GetInt("block-bytes", 1024 * 1024));
  // 1 MB blocks are ~10x the work per request; fewer blocks and shorter
  // scans keep the scaled run comparable.
  if (!flags.Has("blocks")) params.num_blocks = 4000;
  if (!flags.Has("scan-length")) params.max_scan_length = 9;
  // The paper's 1 MB dataset exceeds the page cache (1 TB over 32 x 32 GB
  // nodes), so reads hit the media; model that with a disk-bound rate.
  if (!flags.Has("disk-mb")) params.disk_mb_per_sec = 60;
  if (!flags.Has("site-concurrency")) params.site_concurrency = 3;

  std::printf("Fig 4e — YCSB-E breakdown, %llu KB blocks (%s)\n",
              static_cast<unsigned long long>(params.block_bytes / 1024),
              params.Describe().c_str());

  const auto techniques = TechniquesFromFlags(flags);
  std::vector<AggregateBreakdown> rows;
  for (Technique t : techniques) {
    rows.push_back(RunSeeds(t, params));
    std::printf("  done %-10s total=%s ms\n", TechniqueName(t).c_str(),
                WithCi(rows.back().total).c_str());
  }
  PrintBreakdownTable("Fig 4e — response time breakdown (YCSB-E, large blocks)",
                      techniques, rows);
  std::printf("\nPaper reference totals for 1 MB (ms): R 151, EC 219, EC+LB 143, "
              "EC+C 145, EC+C+M 119, EC+C+M+LB 87\n");
  return 0;
}
