// Fig. 4f: mean response time with 1 or 2 storage sites failed (YCSB-E,
// 100 KB). The paper fails nodes without triggering reconstruction;
// response times rise by ~1 ms (one failure) and ~5 ms (two failures)
// while the relative ordering of the techniques persists.
#include <cstdio>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  ExperimentParams params = ExperimentParams::FromFlags(flags);
  if (!flags.Has("runs")) params.runs = 2;  // 3 failure levels x 6 techniques
  const int max_failures = static_cast<int>(flags.GetInt("max-failures", 2));

  std::printf("Fig 4f — response time with failed sites (%s)\n",
              params.Describe().c_str());

  const auto techniques = TechniquesFromFlags(flags);
  std::printf("\n%-10s", "failures");
  for (Technique t : techniques) std::printf(" %14s", TechniqueName(t).c_str());
  std::printf("\n");

  std::vector<std::vector<double>> totals(static_cast<std::size_t>(max_failures) + 1);
  for (int failures = 0; failures <= max_failures; ++failures) {
    std::printf("%-10d", failures);
    for (Technique t : techniques) {
      // Fail `failures` random sites before the experiment begins;
      // reconstruction is deliberately not triggered (Section VI-C4).
      const AggregateBreakdown agg =
          RunSeeds(t, params, [&](SimECStore& store) {
            Rng fail_rng(store.config().seed ^ 0xFA11);
            const auto victims = store.state().PickRandomSites(
                fail_rng, static_cast<std::size_t>(failures));
            for (SiteId v : victims) store.FailSite(v);
          });
      totals[static_cast<std::size_t>(failures)].push_back(agg.total.Mean());
      std::printf(" %14s", WithCi(agg.total).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nDelta vs no failures (ms):\n%-10s", "failures");
  for (Technique t : techniques) std::printf(" %14s", TechniqueName(t).c_str());
  std::printf("\n");
  for (int f = 1; f <= max_failures; ++f) {
    std::printf("%-10d", f);
    for (std::size_t i = 0; i < techniques.size(); ++i) {
      std::printf(" %14.1f",
                  totals[static_cast<std::size_t>(f)][i] - totals[0][i]);
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape: ~+1 ms with 1 failure, ~+5 ms with 2; relative "
              "ordering of techniques persists under failures.\n");
  return 0;
}
