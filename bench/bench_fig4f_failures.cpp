// Fig. 4f: mean response time with 1 or 2 storage sites failed (YCSB-E,
// 100 KB). The paper fails nodes without triggering reconstruction;
// response times rise by ~1 ms (one failure) and ~5 ms (two failures)
// while the relative ordering of the techniques persists.
//
// --repair flips the paper's switch: the RepairService runs online, the
// grace period defaults to the warmup so reconstruction lands inside the
// failure window, and the chunks_repaired / degraded_reads counters (also
// emitted via --usage-json) show the rebuild happening under load.
//
// With --repair and --json=PATH (or --codecs=rs(6,3),lrc(6,2,2),pb(6,3))
// the bench additionally sweeps codec families under a one-site failure
// and reports repair bytes-on-wire per family: the measured
// repair_bytes_read / repair_chunks_read counters plus the analytic
// single-chunk repair cost each family's RepairPlan charges — full-k for
// RS, a local group for Azure-LRC, half-chunks for piggybacked RS.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "bench/harness.h"
#include "erasure/codec_family.h"

namespace {

using namespace ecstore;
using namespace ecstore::bench;

/// Splits on commas at paren depth zero only, so "rs(6,3),lrc(6,2,2)"
/// yields the two codec names intact.
std::vector<std::string> SplitList(const std::string& list) {
  std::vector<std::string> out;
  std::string token;
  int depth = 0;
  for (char c : list) {
    if (c == '(') ++depth;
    if (c == ')') --depth;
    if (c == ',' && depth == 0) {
      if (!token.empty()) out.push_back(token);
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  if (!token.empty()) out.push_back(token);
  return out;
}

/// Bytes-on-wire of the family's cheapest single-data-chunk repair plan
/// (target chunk 0, every other chunk surviving) for `block_bytes` blocks.
std::uint64_t SingleChunkRepairBytes(const CodecSpec& spec,
                                     std::uint64_t block_bytes) {
  const auto family = GetCodecFamily(spec);
  std::vector<ChunkIndex> avail;
  for (ChunkIndex c = 1; c < family->TotalChunks(); ++c) avail.push_back(c);
  const auto plan = family->PlanRepair(0, avail);
  if (!plan) throw std::runtime_error("no repair plan for " + family->Name());
  return plan->BytesToRead(SpecChunkBytes(spec, block_bytes));
}

/// The per-family repair sweep: one failed site, online repair, measured
/// wire counters + the analytic single-chunk plan cost.
void RunCodecSweep(const Flags& flags, const ExperimentParams& base,
                   Technique technique, const std::string& codecs) {
  const std::uint64_t rs_single = SingleChunkRepairBytes(
      CodecSpec{CodecFamilyId::kRs, 6, 3, 0}, base.block_bytes);

  std::printf("\nRepair bytes-on-wire per codec family (1 failed site, "
              "online repair, technique %s):\n",
              TechniqueName(technique).c_str());
  std::printf("%-12s %10s %12s %14s %16s %8s\n", "codec", "repaired",
              "chunks_read", "bytes_read", "single_rebuild", "vs_rs63");

  std::ostringstream json;
  json << "{\"bench\":\"fig4f_codecs\",\"block_bytes\":" << base.block_bytes
       << ",\"rows\":[";
  bool first = true;
  for (const std::string& name : SplitList(codecs)) {
    const CodecSpec spec = ParseCodecSpec(name);
    ExperimentParams p = base;
    p.codec = name;
    p.enable_repair = true;
    if (!flags.Has("repair-wait")) p.repair_wait_s = p.warmup_s;

    const auto runs = RunSeedsRaw(technique, p, [&](SimECStore& store) {
      Rng fail_rng(store.config().seed ^ 0xFA11);
      const auto victims = store.state().PickRandomSites(fail_rng, 1);
      for (SiteId v : victims) store.FailSite(v);
    });
    const ControlPlaneUsage u = SumUsage(runs);
    const std::uint64_t single = SingleChunkRepairBytes(spec, p.block_bytes);
    const double ratio =
        static_cast<double>(single) / static_cast<double>(rs_single);

    std::printf("%-12s %10llu %12llu %14llu %16llu %8.2f\n", name.c_str(),
                static_cast<unsigned long long>(u.chunks_repaired),
                static_cast<unsigned long long>(u.repair_chunks_read),
                static_cast<unsigned long long>(u.repair_bytes_read),
                static_cast<unsigned long long>(single), ratio);

    if (!first) json << ",";
    first = false;
    json << "{\"codec\":\"" << name << "\""
         << ",\"chunks_repaired\":" << u.chunks_repaired
         << ",\"repair_chunks_read\":" << u.repair_chunks_read
         << ",\"repair_bytes_read\":" << u.repair_bytes_read
         << ",\"single_chunk_repair_bytes\":" << single
         << ",\"vs_rs63\":" << ratio << "}";
  }
  json << "]}\n";

  const std::string path = flags.GetString("json", "");
  if (!path.empty()) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write --json=" + path);
    out << json.str();
    std::printf("codec repair sweep -> %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  ExperimentParams params = ExperimentParams::FromFlags(flags);
  if (!flags.Has("runs")) params.runs = 2;  // 3 failure levels x 6 techniques
  if (params.enable_repair && !flags.Has("repair-wait")) {
    // Rebuild right as measurement starts, mid failure window.
    params.repair_wait_s = params.warmup_s;
  }
  const int max_failures = static_cast<int>(flags.GetInt("max-failures", 2));

  std::printf("Fig 4f — response time with failed sites (%s)%s\n",
              params.Describe().c_str(),
              params.enable_repair ? " [online repair ON]" : "");

  const auto techniques = TechniquesFromFlags(flags);
  std::printf("\n%-10s", "failures");
  for (Technique t : techniques) std::printf(" %14s", TechniqueName(t).c_str());
  std::printf("\n");

  std::vector<std::pair<std::string, ControlPlaneUsage>> usage_rows;
  std::vector<std::vector<double>> totals(static_cast<std::size_t>(max_failures) + 1);
  for (int failures = 0; failures <= max_failures; ++failures) {
    std::printf("%-10d", failures);
    for (Technique t : techniques) {
      // Fail `failures` random sites before the experiment begins; without
      // --repair, reconstruction is deliberately not triggered (VI-C4).
      const auto runs = RunSeedsRaw(t, params, [&](SimECStore& store) {
        Rng fail_rng(store.config().seed ^ 0xFA11);
        const auto victims = store.state().PickRandomSites(
            fail_rng, static_cast<std::size_t>(failures));
        for (SiteId v : victims) store.FailSite(v);
      });
      const AggregateBreakdown agg = Aggregate(runs);
      usage_rows.push_back({TechniqueName(t) + "/failures=" +
                                std::to_string(failures),
                            SumUsage(runs)});
      totals[static_cast<std::size_t>(failures)].push_back(agg.total.Mean());
      std::printf(" %14s", WithCi(agg.total).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nDelta vs no failures (ms):\n%-10s", "failures");
  for (Technique t : techniques) std::printf(" %14s", TechniqueName(t).c_str());
  std::printf("\n");
  for (int f = 1; f <= max_failures; ++f) {
    std::printf("%-10d", f);
    for (std::size_t i = 0; i < techniques.size(); ++i) {
      std::printf(" %14.1f",
                  totals[static_cast<std::size_t>(f)][i] - totals[0][i]);
    }
    std::printf("\n");
  }
  if (params.enable_repair) {
    std::printf("\nRobustness counters (summed over %u seeds):\n", params.runs);
    std::printf("%-28s %10s %10s %10s\n", "config", "repaired", "degraded",
                "retried");
    for (const auto& [label, u] : usage_rows) {
      std::printf("%-28s %10llu %10llu %10llu\n", label.c_str(),
                  static_cast<unsigned long long>(u.chunks_repaired),
                  static_cast<unsigned long long>(u.degraded_reads),
                  static_cast<unsigned long long>(u.retried_fetches));
    }
  }
  MaybeWriteUsageJson(flags, "fig4f_failures", usage_rows);

  // Codec-family repair sweep: explicit --codecs list, or the default
  // three families whenever a --repair --json run asks for the artifact.
  const std::string codecs = flags.GetString(
      "codecs", params.enable_repair && flags.Has("json")
                    ? "rs(6,3),lrc(6,2,2),pb(6,3)"
                    : "");
  if (!codecs.empty()) RunCodecSweep(flags, params, techniques.back(), codecs);

  std::printf("\nPaper shape: ~+1 ms with 1 failure, ~+5 ms with 2; relative "
              "ordering of techniques persists under failures.\n");
  return 0;
}
