// Fig. 4f: mean response time with 1 or 2 storage sites failed (YCSB-E,
// 100 KB). The paper fails nodes without triggering reconstruction;
// response times rise by ~1 ms (one failure) and ~5 ms (two failures)
// while the relative ordering of the techniques persists.
//
// --repair flips the paper's switch: the RepairService runs online, the
// grace period defaults to the warmup so reconstruction lands inside the
// failure window, and the chunks_repaired / degraded_reads counters (also
// emitted via --usage-json) show the rebuild happening under load.
#include <cstdio>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  ExperimentParams params = ExperimentParams::FromFlags(flags);
  if (!flags.Has("runs")) params.runs = 2;  // 3 failure levels x 6 techniques
  if (params.enable_repair && !flags.Has("repair-wait")) {
    // Rebuild right as measurement starts, mid failure window.
    params.repair_wait_s = params.warmup_s;
  }
  const int max_failures = static_cast<int>(flags.GetInt("max-failures", 2));

  std::printf("Fig 4f — response time with failed sites (%s)%s\n",
              params.Describe().c_str(),
              params.enable_repair ? " [online repair ON]" : "");

  const auto techniques = TechniquesFromFlags(flags);
  std::printf("\n%-10s", "failures");
  for (Technique t : techniques) std::printf(" %14s", TechniqueName(t).c_str());
  std::printf("\n");

  std::vector<std::pair<std::string, ControlPlaneUsage>> usage_rows;
  std::vector<std::vector<double>> totals(static_cast<std::size_t>(max_failures) + 1);
  for (int failures = 0; failures <= max_failures; ++failures) {
    std::printf("%-10d", failures);
    for (Technique t : techniques) {
      // Fail `failures` random sites before the experiment begins; without
      // --repair, reconstruction is deliberately not triggered (VI-C4).
      const auto runs = RunSeedsRaw(t, params, [&](SimECStore& store) {
        Rng fail_rng(store.config().seed ^ 0xFA11);
        const auto victims = store.state().PickRandomSites(
            fail_rng, static_cast<std::size_t>(failures));
        for (SiteId v : victims) store.FailSite(v);
      });
      const AggregateBreakdown agg = Aggregate(runs);
      usage_rows.push_back({TechniqueName(t) + "/failures=" +
                                std::to_string(failures),
                            SumUsage(runs)});
      totals[static_cast<std::size_t>(failures)].push_back(agg.total.Mean());
      std::printf(" %14s", WithCi(agg.total).c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nDelta vs no failures (ms):\n%-10s", "failures");
  for (Technique t : techniques) std::printf(" %14s", TechniqueName(t).c_str());
  std::printf("\n");
  for (int f = 1; f <= max_failures; ++f) {
    std::printf("%-10d", f);
    for (std::size_t i = 0; i < techniques.size(); ++i) {
      std::printf(" %14.1f",
                  totals[static_cast<std::size_t>(f)][i] - totals[0][i]);
    }
    std::printf("\n");
  }
  if (params.enable_repair) {
    std::printf("\nRobustness counters (summed over %u seeds):\n", params.runs);
    std::printf("%-28s %10s %10s %10s\n", "config", "repaired", "degraded",
                "retried");
    for (const auto& [label, u] : usage_rows) {
      std::printf("%-28s %10llu %10llu %10llu\n", label.c_str(),
                  static_cast<unsigned long long>(u.chunks_repaired),
                  static_cast<unsigned long long>(u.degraded_reads),
                  static_cast<unsigned long long>(u.retried_fetches));
    }
  }
  MaybeWriteUsageJson(flags, "fig4f_failures", usage_rows);
  std::printf("\nPaper shape: ~+1 ms with 1 failure, ~+5 ms with 2; relative "
              "ordering of techniques persists under failures.\n");
  return 0;
}
