// Fig. 4b: YCSB-E response-time breakdown with 100 KB blocks for the six
// techniques (paper values, ms: R 23, EC 35, EC+LB 28, EC+C 30,
// EC+C+M 20, EC+C+M+LB 18 — retrieval dominating every bar).
//
// Usage: bench_fig4b_ycsb100k [--sites=32 --blocks=20000 --clients=64
//   --warmup=30 --measure=45 --runs=3 --techniques=R,EC,...]
#include <cstdio>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  ExperimentParams params = ExperimentParams::FromFlags(flags);
  params.block_bytes = static_cast<std::uint64_t>(
      flags.GetInt("block-bytes", 100 * 1024));

  std::printf("Fig 4b — YCSB-E breakdown (%s)\n", params.Describe().c_str());

  const auto techniques = TechniquesFromFlags(flags);
  std::vector<AggregateBreakdown> rows;
  for (Technique t : techniques) {
    rows.push_back(RunSeeds(t, params));
    std::printf("  done %-10s total=%s ms\n", TechniqueName(t).c_str(),
                WithCi(rows.back().total).c_str());
  }
  PrintBreakdownTable("Fig 4b — response time breakdown (YCSB-E, 100 KB blocks)",
                      techniques, rows);
  std::printf("\nPaper reference totals (ms): R 23, EC 35, EC+LB 28, EC+C 30, "
              "EC+C+M 20, EC+C+M+LB 18\n");
  return 0;
}
