// Fig. 4a: mean response time over time after the workload shifts from
// uniform to power-law. The paper shows EC+C and EC+C+M starting
// together, with EC+C+M dropping over the first ~8 minutes as the mover
// learns the new pattern; we reproduce the same series at scaled time.
#include <cstdio>
#include <map>

#include "bench/harness.h"

int main(int argc, char** argv) {
  using namespace ecstore;
  using namespace ecstore::bench;

  const Flags flags(argc, argv);
  ExperimentParams params = ExperimentParams::FromFlags(flags);
  // Timeline experiments need a longer measurement window to expose the
  // mover's adaptation; default to a longer run than the other benches.
  if (!flags.Has("measure")) params.measure_s = 120;

  std::printf("Fig 4a — response time over time after workload shift (%s)\n",
              params.Describe().c_str());

  std::vector<Technique> techniques = TechniquesFromFlags(flags);
  if (!flags.Has("techniques")) {
    techniques = {Technique::kEc, Technique::kEcC, Technique::kEcCM};
  }

  // technique -> bucket -> (sum, count) across seeds.
  std::map<Technique, std::vector<std::pair<double, std::uint64_t>>> series;
  for (Technique t : techniques) {
    for (const RunResult& r : RunSeedsRaw(t, params)) {
      auto& buckets = series[t];
      if (buckets.size() < r.timeline.size()) buckets.resize(r.timeline.size());
      for (std::size_t i = 0; i < r.timeline.size(); ++i) {
        buckets[i].first += r.timeline[i].mean_ms *
                            static_cast<double>(r.timeline[i].requests);
        buckets[i].second += r.timeline[i].requests;
      }
    }
    std::printf("  done %s\n", TechniqueName(t).c_str());
  }

  std::printf("\nFig 4a — mean response time (ms) by time since workload shift\n");
  std::printf("%-10s", "min");
  for (Technique t : techniques) std::printf(" %10s", TechniqueName(t).c_str());
  std::printf("\n");
  const std::size_t buckets = series[techniques[0]].size();
  for (std::size_t i = 0; i < buckets; ++i) {
    const double minutes = static_cast<double>(i) * 0.25;  // 15 s buckets.
    std::printf("%-10.2f", minutes);
    for (Technique t : techniques) {
      const auto& b = series[t][i];
      std::printf(" %10.1f", b.second ? b.first / static_cast<double>(b.second) : 0.0);
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape: EC+C+M starts at EC+C's level and falls ~20%% as "
              "the mover adapts; EC stays flat and highest.\n");
  return 0;
}
