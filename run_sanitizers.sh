#!/bin/bash
# Sanitizer builds and test runs.
#
# ASan/UBSan stage: exercises every GF kernel dispatch path via the
# ECSTORE_GF_KERNEL override; the SIMD paths run the same ctest suites as
# the scalar path, unsupported paths are skipped.
#
# TSan stage: separate build (sanitizers don't compose) running the
# thread-racing suites against the concurrent LocalECStore data plane.
#
# Both stages include the chaos smoke (chaos_test): a seeded fault
# schedule that crashes/flaps/corrupts under concurrent MultiGet/Put and
# asserts zero data loss (DESIGN.md §9), including the overload storm
# (breaker arc + brownout recovery at ~2x saturation, DESIGN.md §14).
# They also run the sharded control-plane stress (shard_stress_test,
# DESIGN.md §10): MultiGet x Put x FailSite x movement rounds against
# shards=8 with a live ILP executor pool, and the overload-control suite
# (overload_test): breakers, CoDel admission, brownout ladder, and the
# shed/deadline integration in both embodiments.
#
#   ./run_sanitizers.sh [asan|tsan|all] [ctest -R regex override]
set -eu

STAGE="${1:-all}"
status=0

run_asan() {
  local regex="${1:-gf_test|erasure_test|codec_family_test|core_test|cache_test|fault_test|chaos_test|shard_stress_test|tail_test|overload_test}"
  local build=build-asan
  cmake -B "$build" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DECSTORE_SANITIZE=ON
  cmake --build "$build" -j"$(nproc)"
  for path in scalar ssse3 avx2; do
    echo "##### ECSTORE_GF_KERNEL=$path ctest -R '$regex'"
    if ! (cd "$build" && ECSTORE_GF_KERNEL="$path" ctest --output-on-failure -R "$regex"); then
      status=1
    fi
  done
}

run_tsan() {
  local regex="${1:-concurrency_test|codec_family_test|core_test|cache_test|fault_test|chaos_test|shard_stress_test|tail_test|overload_test}"
  local build=build-tsan
  cmake -B "$build" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DECSTORE_TSAN=ON
  cmake --build "$build" -j"$(nproc)"
  echo "##### TSan ctest -R '$regex'"
  if ! (cd "$build" && ctest --output-on-failure -R "$regex"); then
    status=1
  fi
}

case "$STAGE" in
  asan) run_asan "${2:-}" ;;
  tsan) run_tsan "${2:-}" ;;
  all)
    run_asan "${2:-}"
    run_tsan "${2:-}"
    ;;
  *)
    # Back-compat: a bare regex as $1 means "asan with this regex".
    run_asan "$STAGE"
    ;;
esac
exit $status
