#!/bin/bash
# ASan + UBSan build and test run, exercising every GF kernel dispatch
# path via the ECSTORE_GF_KERNEL override. The SIMD paths run the same
# ctest suites as the scalar path; unsupported paths are skipped.
#
#   ./run_sanitizers.sh [ctest -R regex, default: GF/erasure/core suites]
set -eu

REGEX="${1:-gf_test|erasure_test|core_test}"
BUILD=build-asan

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DECSTORE_SANITIZE=ON
cmake --build "$BUILD" -j"$(nproc)"

status=0
for path in scalar ssse3 avx2; do
  echo "##### ECSTORE_GF_KERNEL=$path ctest -R '$REGEX'"
  if ! (cd "$BUILD" && ECSTORE_GF_KERNEL="$path" ctest --output-on-failure -R "$REGEX"); then
    status=1
  fi
done
exit $status
