file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_erasure.dir/bench_micro_erasure.cpp.o"
  "CMakeFiles/bench_micro_erasure.dir/bench_micro_erasure.cpp.o.d"
  "bench_micro_erasure"
  "bench_micro_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
