
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_breakdown.cpp" "bench/CMakeFiles/bench_fig1_breakdown.dir/bench_fig1_breakdown.cpp.o" "gcc" "bench/CMakeFiles/bench_fig1_breakdown.dir/bench_fig1_breakdown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/ec_benchlib.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ec_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ec_core.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/ec_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/erasure/CMakeFiles/ec_erasure.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/ec_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ec_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ec_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ec_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ec_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
