# Empty compiler generated dependencies file for bench_fig4e_ycsb1mb.
# This may be replaced when dependencies are built.
