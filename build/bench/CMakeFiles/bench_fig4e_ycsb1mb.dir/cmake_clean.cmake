file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4e_ycsb1mb.dir/bench_fig4e_ycsb1mb.cpp.o"
  "CMakeFiles/bench_fig4e_ycsb1mb.dir/bench_fig4e_ycsb1mb.cpp.o.d"
  "bench_fig4e_ycsb1mb"
  "bench_fig4e_ycsb1mb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4e_ycsb1mb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
