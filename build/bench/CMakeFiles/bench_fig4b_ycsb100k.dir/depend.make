# Empty dependencies file for bench_fig4b_ycsb100k.
# This may be replaced when dependencies are built.
