file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_ycsb100k.dir/bench_fig4b_ycsb100k.cpp.o"
  "CMakeFiles/bench_fig4b_ycsb100k.dir/bench_fig4b_ycsb100k.cpp.o.d"
  "bench_fig4b_ycsb100k"
  "bench_fig4b_ycsb100k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_ycsb100k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
