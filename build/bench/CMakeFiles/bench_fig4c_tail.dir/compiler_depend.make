# Empty compiler generated dependencies file for bench_fig4c_tail.
# This may be replaced when dependencies are built.
