# Empty dependencies file for bench_table2_imbalance.
# This may be replaced when dependencies are built.
