file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_imbalance.dir/bench_table2_imbalance.cpp.o"
  "CMakeFiles/bench_table2_imbalance.dir/bench_table2_imbalance.cpp.o.d"
  "bench_table2_imbalance"
  "bench_table2_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
