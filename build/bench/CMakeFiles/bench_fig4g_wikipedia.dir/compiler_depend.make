# Empty compiler generated dependencies file for bench_fig4g_wikipedia.
# This may be replaced when dependencies are built.
