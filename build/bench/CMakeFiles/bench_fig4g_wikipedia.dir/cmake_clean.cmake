file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4g_wikipedia.dir/bench_fig4g_wikipedia.cpp.o"
  "CMakeFiles/bench_fig4g_wikipedia.dir/bench_fig4g_wikipedia.cpp.o.d"
  "bench_fig4g_wikipedia"
  "bench_fig4g_wikipedia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4g_wikipedia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
