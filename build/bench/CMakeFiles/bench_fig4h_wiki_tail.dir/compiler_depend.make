# Empty compiler generated dependencies file for bench_fig4h_wiki_tail.
# This may be replaced when dependencies are built.
