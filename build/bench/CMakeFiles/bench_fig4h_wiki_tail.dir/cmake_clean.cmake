file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4h_wiki_tail.dir/bench_fig4h_wiki_tail.cpp.o"
  "CMakeFiles/bench_fig4h_wiki_tail.dir/bench_fig4h_wiki_tail.cpp.o.d"
  "bench_fig4h_wiki_tail"
  "bench_fig4h_wiki_tail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4h_wiki_tail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
