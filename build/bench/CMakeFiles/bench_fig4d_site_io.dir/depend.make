# Empty dependencies file for bench_fig4d_site_io.
# This may be replaced when dependencies are built.
