file(REMOVE_RECURSE
  "CMakeFiles/ec_benchlib.dir/harness.cpp.o"
  "CMakeFiles/ec_benchlib.dir/harness.cpp.o.d"
  "libec_benchlib.a"
  "libec_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
