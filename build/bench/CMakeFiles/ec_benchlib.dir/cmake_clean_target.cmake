file(REMOVE_RECURSE
  "libec_benchlib.a"
)
