# Empty dependencies file for ec_benchlib.
# This may be replaced when dependencies are built.
