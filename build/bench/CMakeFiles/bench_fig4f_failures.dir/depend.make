# Empty dependencies file for bench_fig4f_failures.
# This may be replaced when dependencies are built.
