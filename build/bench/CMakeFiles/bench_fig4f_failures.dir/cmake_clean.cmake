file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4f_failures.dir/bench_fig4f_failures.cpp.o"
  "CMakeFiles/bench_fig4f_failures.dir/bench_fig4f_failures.cpp.o.d"
  "bench_fig4f_failures"
  "bench_fig4f_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4f_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
