#----------------------------------------------------------------
# Generated CMake target import file for configuration "RelWithDebInfo".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "ecstore::ec_common" for configuration "RelWithDebInfo"
set_property(TARGET ecstore::ec_common APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ecstore::ec_common PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libec_common.a"
  )

list(APPEND _cmake_import_check_targets ecstore::ec_common )
list(APPEND _cmake_import_check_files_for_ecstore::ec_common "${_IMPORT_PREFIX}/lib/libec_common.a" )

# Import target "ecstore::ec_gf" for configuration "RelWithDebInfo"
set_property(TARGET ecstore::ec_gf APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ecstore::ec_gf PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libec_gf.a"
  )

list(APPEND _cmake_import_check_targets ecstore::ec_gf )
list(APPEND _cmake_import_check_files_for_ecstore::ec_gf "${_IMPORT_PREFIX}/lib/libec_gf.a" )

# Import target "ecstore::ec_erasure" for configuration "RelWithDebInfo"
set_property(TARGET ecstore::ec_erasure APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ecstore::ec_erasure PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libec_erasure.a"
  )

list(APPEND _cmake_import_check_targets ecstore::ec_erasure )
list(APPEND _cmake_import_check_files_for_ecstore::ec_erasure "${_IMPORT_PREFIX}/lib/libec_erasure.a" )

# Import target "ecstore::ec_lp" for configuration "RelWithDebInfo"
set_property(TARGET ecstore::ec_lp APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ecstore::ec_lp PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libec_lp.a"
  )

list(APPEND _cmake_import_check_targets ecstore::ec_lp )
list(APPEND _cmake_import_check_files_for_ecstore::ec_lp "${_IMPORT_PREFIX}/lib/libec_lp.a" )

# Import target "ecstore::ec_sim" for configuration "RelWithDebInfo"
set_property(TARGET ecstore::ec_sim APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ecstore::ec_sim PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libec_sim.a"
  )

list(APPEND _cmake_import_check_targets ecstore::ec_sim )
list(APPEND _cmake_import_check_files_for_ecstore::ec_sim "${_IMPORT_PREFIX}/lib/libec_sim.a" )

# Import target "ecstore::ec_cluster" for configuration "RelWithDebInfo"
set_property(TARGET ecstore::ec_cluster APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ecstore::ec_cluster PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libec_cluster.a"
  )

list(APPEND _cmake_import_check_targets ecstore::ec_cluster )
list(APPEND _cmake_import_check_files_for_ecstore::ec_cluster "${_IMPORT_PREFIX}/lib/libec_cluster.a" )

# Import target "ecstore::ec_stats" for configuration "RelWithDebInfo"
set_property(TARGET ecstore::ec_stats APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ecstore::ec_stats PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libec_stats.a"
  )

list(APPEND _cmake_import_check_targets ecstore::ec_stats )
list(APPEND _cmake_import_check_files_for_ecstore::ec_stats "${_IMPORT_PREFIX}/lib/libec_stats.a" )

# Import target "ecstore::ec_placement" for configuration "RelWithDebInfo"
set_property(TARGET ecstore::ec_placement APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ecstore::ec_placement PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libec_placement.a"
  )

list(APPEND _cmake_import_check_targets ecstore::ec_placement )
list(APPEND _cmake_import_check_files_for_ecstore::ec_placement "${_IMPORT_PREFIX}/lib/libec_placement.a" )

# Import target "ecstore::ec_core" for configuration "RelWithDebInfo"
set_property(TARGET ecstore::ec_core APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ecstore::ec_core PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libec_core.a"
  )

list(APPEND _cmake_import_check_targets ecstore::ec_core )
list(APPEND _cmake_import_check_files_for_ecstore::ec_core "${_IMPORT_PREFIX}/lib/libec_core.a" )

# Import target "ecstore::ec_workload" for configuration "RelWithDebInfo"
set_property(TARGET ecstore::ec_workload APPEND PROPERTY IMPORTED_CONFIGURATIONS RELWITHDEBINFO)
set_target_properties(ecstore::ec_workload PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELWITHDEBINFO "CXX"
  IMPORTED_LOCATION_RELWITHDEBINFO "${_IMPORT_PREFIX}/lib/libec_workload.a"
  )

list(APPEND _cmake_import_check_targets ecstore::ec_workload )
list(APPEND _cmake_import_check_files_for_ecstore::ec_workload "${_IMPORT_PREFIX}/lib/libec_workload.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
