file(REMOVE_RECURSE
  "CMakeFiles/ecstore_cli.dir/ecstore_cli.cpp.o"
  "CMakeFiles/ecstore_cli.dir/ecstore_cli.cpp.o.d"
  "ecstore_cli"
  "ecstore_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecstore_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
