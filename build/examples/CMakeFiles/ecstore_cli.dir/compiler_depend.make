# Empty compiler generated dependencies file for ecstore_cli.
# This may be replaced when dependencies are built.
