# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for wikipedia_page_store.
