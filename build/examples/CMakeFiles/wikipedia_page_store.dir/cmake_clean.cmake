file(REMOVE_RECURSE
  "CMakeFiles/wikipedia_page_store.dir/wikipedia_page_store.cpp.o"
  "CMakeFiles/wikipedia_page_store.dir/wikipedia_page_store.cpp.o.d"
  "wikipedia_page_store"
  "wikipedia_page_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wikipedia_page_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
