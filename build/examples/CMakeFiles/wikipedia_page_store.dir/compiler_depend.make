# Empty compiler generated dependencies file for wikipedia_page_store.
# This may be replaced when dependencies are built.
