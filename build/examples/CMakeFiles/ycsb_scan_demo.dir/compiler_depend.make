# Empty compiler generated dependencies file for ycsb_scan_demo.
# This may be replaced when dependencies are built.
