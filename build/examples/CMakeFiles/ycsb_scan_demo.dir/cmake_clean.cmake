file(REMOVE_RECURSE
  "CMakeFiles/ycsb_scan_demo.dir/ycsb_scan_demo.cpp.o"
  "CMakeFiles/ycsb_scan_demo.dir/ycsb_scan_demo.cpp.o.d"
  "ycsb_scan_demo"
  "ycsb_scan_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_scan_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
