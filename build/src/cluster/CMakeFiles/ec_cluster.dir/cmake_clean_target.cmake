file(REMOVE_RECURSE
  "libec_cluster.a"
)
