# Empty compiler generated dependencies file for ec_cluster.
# This may be replaced when dependencies are built.
