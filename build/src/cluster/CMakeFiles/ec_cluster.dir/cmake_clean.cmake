file(REMOVE_RECURSE
  "CMakeFiles/ec_cluster.dir/state.cpp.o"
  "CMakeFiles/ec_cluster.dir/state.cpp.o.d"
  "libec_cluster.a"
  "libec_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
