file(REMOVE_RECURSE
  "libec_sim.a"
)
