# Empty compiler generated dependencies file for ec_sim.
# This may be replaced when dependencies are built.
