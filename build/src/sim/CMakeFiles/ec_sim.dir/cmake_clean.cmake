file(REMOVE_RECURSE
  "CMakeFiles/ec_sim.dir/event_queue.cpp.o"
  "CMakeFiles/ec_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/ec_sim.dir/network.cpp.o"
  "CMakeFiles/ec_sim.dir/network.cpp.o.d"
  "CMakeFiles/ec_sim.dir/site.cpp.o"
  "CMakeFiles/ec_sim.dir/site.cpp.o.d"
  "libec_sim.a"
  "libec_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
