file(REMOVE_RECURSE
  "libec_core.a"
)
