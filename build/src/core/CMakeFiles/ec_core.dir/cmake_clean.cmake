file(REMOVE_RECURSE
  "CMakeFiles/ec_core.dir/config.cpp.o"
  "CMakeFiles/ec_core.dir/config.cpp.o.d"
  "CMakeFiles/ec_core.dir/local_store.cpp.o"
  "CMakeFiles/ec_core.dir/local_store.cpp.o.d"
  "CMakeFiles/ec_core.dir/repair.cpp.o"
  "CMakeFiles/ec_core.dir/repair.cpp.o.d"
  "CMakeFiles/ec_core.dir/sim_store.cpp.o"
  "CMakeFiles/ec_core.dir/sim_store.cpp.o.d"
  "libec_core.a"
  "libec_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
