# Empty dependencies file for ec_core.
# This may be replaced when dependencies are built.
