file(REMOVE_RECURSE
  "libec_placement.a"
)
