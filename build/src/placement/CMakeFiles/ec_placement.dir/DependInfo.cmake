
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/cost_model.cpp" "src/placement/CMakeFiles/ec_placement.dir/cost_model.cpp.o" "gcc" "src/placement/CMakeFiles/ec_placement.dir/cost_model.cpp.o.d"
  "/root/repo/src/placement/mover.cpp" "src/placement/CMakeFiles/ec_placement.dir/mover.cpp.o" "gcc" "src/placement/CMakeFiles/ec_placement.dir/mover.cpp.o.d"
  "/root/repo/src/placement/plan_cache.cpp" "src/placement/CMakeFiles/ec_placement.dir/plan_cache.cpp.o" "gcc" "src/placement/CMakeFiles/ec_placement.dir/plan_cache.cpp.o.d"
  "/root/repo/src/placement/planner.cpp" "src/placement/CMakeFiles/ec_placement.dir/planner.cpp.o" "gcc" "src/placement/CMakeFiles/ec_placement.dir/planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cluster/CMakeFiles/ec_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ec_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ec_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
