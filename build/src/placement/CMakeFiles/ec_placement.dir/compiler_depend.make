# Empty compiler generated dependencies file for ec_placement.
# This may be replaced when dependencies are built.
