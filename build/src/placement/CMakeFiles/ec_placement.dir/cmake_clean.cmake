file(REMOVE_RECURSE
  "CMakeFiles/ec_placement.dir/cost_model.cpp.o"
  "CMakeFiles/ec_placement.dir/cost_model.cpp.o.d"
  "CMakeFiles/ec_placement.dir/mover.cpp.o"
  "CMakeFiles/ec_placement.dir/mover.cpp.o.d"
  "CMakeFiles/ec_placement.dir/plan_cache.cpp.o"
  "CMakeFiles/ec_placement.dir/plan_cache.cpp.o.d"
  "CMakeFiles/ec_placement.dir/planner.cpp.o"
  "CMakeFiles/ec_placement.dir/planner.cpp.o.d"
  "libec_placement.a"
  "libec_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
