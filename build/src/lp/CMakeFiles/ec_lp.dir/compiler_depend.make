# Empty compiler generated dependencies file for ec_lp.
# This may be replaced when dependencies are built.
