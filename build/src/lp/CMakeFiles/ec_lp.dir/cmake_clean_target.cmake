file(REMOVE_RECURSE
  "libec_lp.a"
)
