file(REMOVE_RECURSE
  "CMakeFiles/ec_lp.dir/ilp.cpp.o"
  "CMakeFiles/ec_lp.dir/ilp.cpp.o.d"
  "CMakeFiles/ec_lp.dir/simplex.cpp.o"
  "CMakeFiles/ec_lp.dir/simplex.cpp.o.d"
  "libec_lp.a"
  "libec_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
