file(REMOVE_RECURSE
  "libec_workload.a"
)
