# Empty compiler generated dependencies file for ec_workload.
# This may be replaced when dependencies are built.
