file(REMOVE_RECURSE
  "CMakeFiles/ec_workload.dir/driver.cpp.o"
  "CMakeFiles/ec_workload.dir/driver.cpp.o.d"
  "CMakeFiles/ec_workload.dir/trace.cpp.o"
  "CMakeFiles/ec_workload.dir/trace.cpp.o.d"
  "CMakeFiles/ec_workload.dir/workload.cpp.o"
  "CMakeFiles/ec_workload.dir/workload.cpp.o.d"
  "libec_workload.a"
  "libec_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
