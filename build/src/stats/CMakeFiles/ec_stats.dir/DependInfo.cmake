
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/co_access.cpp" "src/stats/CMakeFiles/ec_stats.dir/co_access.cpp.o" "gcc" "src/stats/CMakeFiles/ec_stats.dir/co_access.cpp.o.d"
  "/root/repo/src/stats/load_tracker.cpp" "src/stats/CMakeFiles/ec_stats.dir/load_tracker.cpp.o" "gcc" "src/stats/CMakeFiles/ec_stats.dir/load_tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
