file(REMOVE_RECURSE
  "CMakeFiles/ec_stats.dir/co_access.cpp.o"
  "CMakeFiles/ec_stats.dir/co_access.cpp.o.d"
  "CMakeFiles/ec_stats.dir/load_tracker.cpp.o"
  "CMakeFiles/ec_stats.dir/load_tracker.cpp.o.d"
  "libec_stats.a"
  "libec_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
