# Empty dependencies file for ec_stats.
# This may be replaced when dependencies are built.
