file(REMOVE_RECURSE
  "CMakeFiles/ec_common.dir/flags.cpp.o"
  "CMakeFiles/ec_common.dir/flags.cpp.o.d"
  "CMakeFiles/ec_common.dir/histogram.cpp.o"
  "CMakeFiles/ec_common.dir/histogram.cpp.o.d"
  "CMakeFiles/ec_common.dir/rng.cpp.o"
  "CMakeFiles/ec_common.dir/rng.cpp.o.d"
  "libec_common.a"
  "libec_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
