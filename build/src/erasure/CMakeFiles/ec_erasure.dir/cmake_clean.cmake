file(REMOVE_RECURSE
  "CMakeFiles/ec_erasure.dir/linear_codec.cpp.o"
  "CMakeFiles/ec_erasure.dir/linear_codec.cpp.o.d"
  "CMakeFiles/ec_erasure.dir/reed_solomon.cpp.o"
  "CMakeFiles/ec_erasure.dir/reed_solomon.cpp.o.d"
  "libec_erasure.a"
  "libec_erasure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_erasure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
