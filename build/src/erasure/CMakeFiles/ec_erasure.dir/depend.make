# Empty dependencies file for ec_erasure.
# This may be replaced when dependencies are built.
