file(REMOVE_RECURSE
  "libec_erasure.a"
)
