file(REMOVE_RECURSE
  "CMakeFiles/ec_gf.dir/gf256.cpp.o"
  "CMakeFiles/ec_gf.dir/gf256.cpp.o.d"
  "CMakeFiles/ec_gf.dir/matrix.cpp.o"
  "CMakeFiles/ec_gf.dir/matrix.cpp.o.d"
  "libec_gf.a"
  "libec_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ec_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
