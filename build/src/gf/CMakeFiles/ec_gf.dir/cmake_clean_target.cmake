file(REMOVE_RECURSE
  "libec_gf.a"
)
