# Empty dependencies file for ec_gf.
# This may be replaced when dependencies are built.
