file(REMOVE_RECURSE
  "CMakeFiles/sim_test.dir/sim/batch_read_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/batch_read_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/event_queue_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/event_queue_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/model_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/model_test.cpp.o.d"
  "CMakeFiles/sim_test.dir/sim/site_test.cpp.o"
  "CMakeFiles/sim_test.dir/sim/site_test.cpp.o.d"
  "sim_test"
  "sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
