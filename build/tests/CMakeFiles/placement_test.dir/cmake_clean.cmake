file(REMOVE_RECURSE
  "CMakeFiles/placement_test.dir/placement/cost_model_test.cpp.o"
  "CMakeFiles/placement_test.dir/placement/cost_model_test.cpp.o.d"
  "CMakeFiles/placement_test.dir/placement/mover_test.cpp.o"
  "CMakeFiles/placement_test.dir/placement/mover_test.cpp.o.d"
  "CMakeFiles/placement_test.dir/placement/plan_cache_subset_test.cpp.o"
  "CMakeFiles/placement_test.dir/placement/plan_cache_subset_test.cpp.o.d"
  "CMakeFiles/placement_test.dir/placement/plan_cache_test.cpp.o"
  "CMakeFiles/placement_test.dir/placement/plan_cache_test.cpp.o.d"
  "CMakeFiles/placement_test.dir/placement/planner_decompose_test.cpp.o"
  "CMakeFiles/placement_test.dir/placement/planner_decompose_test.cpp.o.d"
  "CMakeFiles/placement_test.dir/placement/planner_test.cpp.o"
  "CMakeFiles/placement_test.dir/placement/planner_test.cpp.o.d"
  "placement_test"
  "placement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
