
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/placement/cost_model_test.cpp" "tests/CMakeFiles/placement_test.dir/placement/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/placement_test.dir/placement/cost_model_test.cpp.o.d"
  "/root/repo/tests/placement/mover_test.cpp" "tests/CMakeFiles/placement_test.dir/placement/mover_test.cpp.o" "gcc" "tests/CMakeFiles/placement_test.dir/placement/mover_test.cpp.o.d"
  "/root/repo/tests/placement/plan_cache_subset_test.cpp" "tests/CMakeFiles/placement_test.dir/placement/plan_cache_subset_test.cpp.o" "gcc" "tests/CMakeFiles/placement_test.dir/placement/plan_cache_subset_test.cpp.o.d"
  "/root/repo/tests/placement/plan_cache_test.cpp" "tests/CMakeFiles/placement_test.dir/placement/plan_cache_test.cpp.o" "gcc" "tests/CMakeFiles/placement_test.dir/placement/plan_cache_test.cpp.o.d"
  "/root/repo/tests/placement/planner_decompose_test.cpp" "tests/CMakeFiles/placement_test.dir/placement/planner_decompose_test.cpp.o" "gcc" "tests/CMakeFiles/placement_test.dir/placement/planner_decompose_test.cpp.o.d"
  "/root/repo/tests/placement/planner_test.cpp" "tests/CMakeFiles/placement_test.dir/placement/planner_test.cpp.o" "gcc" "tests/CMakeFiles/placement_test.dir/placement/planner_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/placement/CMakeFiles/ec_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ec_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ec_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/ec_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ec_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
