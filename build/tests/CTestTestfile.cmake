# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;8;ec_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gf_test "/root/repo/build/tests/gf_test")
set_tests_properties(gf_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;15;ec_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(erasure_test "/root/repo/build/tests/erasure_test")
set_tests_properties(erasure_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;21;ec_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lp_test "/root/repo/build/tests/lp_test")
set_tests_properties(lp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;27;ec_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sim_test "/root/repo/build/tests/sim_test")
set_tests_properties(sim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;33;ec_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cluster_test "/root/repo/build/tests/cluster_test")
set_tests_properties(cluster_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;41;ec_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(stats_test "/root/repo/build/tests/stats_test")
set_tests_properties(stats_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;47;ec_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(placement_test "/root/repo/build/tests/placement_test")
set_tests_properties(placement_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;53;ec_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;63;ec_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workload_test "/root/repo/build/tests/workload_test")
set_tests_properties(workload_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;72;ec_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(integration_test "/root/repo/build/tests/integration_test")
set_tests_properties(integration_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;5;add_test;/root/repo/tests/CMakeLists.txt;79;ec_add_test;/root/repo/tests/CMakeLists.txt;0;")
