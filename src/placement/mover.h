// The chunk mover (paper Sections IV-C, IV-D, V-B2): evaluates candidate
// single-chunk movements and selects the one with the highest expected
// benefit
//
//   Delta(C, b, s, d) = w1 * E(C, b, s, d) + w2 * I(C, b, s, d)    (Eq. 8)
//
// where E is the lambda-weighted improvement in pairwise co-access cost
// (Eq. 5) and I the improvement in the load-balance factor of the worse
// of the source and destination sites (Eqs. 6-7). Plan generation follows
// Algorithm 1: probabilistically sample recently/frequently accessed
// candidate blocks, order sources by load (heaviest first), consider
// destinations that hold no chunk of the block, and early-stop.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "cluster/state.h"
#include "common/rng.h"
#include "placement/cost_model.h"
#include "stats/co_access.h"
#include "stats/load_tracker.h"

namespace ecstore {

/// A selected movement: move `block`'s chunk from `source` to `destination`.
struct MovementPlan {
  BlockId block = kInvalidBlock;
  SiteId source = kInvalidSite;
  SiteId destination = kInvalidSite;
  double score = 0;  // Delta(C, b, s, d)
};

struct MoverParams {
  /// Weights of Eq. 8. The paper's parameter search settled on
  /// (w1 = 1, w2 = 3) — Section V-B3.
  double w1 = 1.0;
  double w2 = 3.0;
  /// Candidate blocks sampled per invocation (Algorithm 1 line 1).
  std::size_t candidate_blocks = 8;
  /// Destinations examined per chunk, least-loaded first (greedy
  /// subroutines returning best-candidate-first, Section IV-D).
  std::size_t candidate_destinations = 8;
  /// Co-access partners per block used to estimate E (Eq. 5).
  std::size_t max_partners = 10;
  /// Early-stopping: stop scoring once this many plans were evaluated.
  std::size_t max_evaluations = 256;
  /// Fraction of a block's access I/O attributed to one chunk when
  /// estimating post-move load shift: k/(k+r) is the probability a given
  /// chunk is among the k selected under uniform access.
  bool shift_load_estimate = true;
};

/// Statistics snapshot the mover needs: how often a block is accessed per
/// second (derived by the caller from the co-access window and the
/// request rate).
struct MoverContext {
  const ClusterState* state = nullptr;
  const CoAccessView* co_access = nullptr;
  const LoadTracker* load = nullptr;
  const CostParams* cost_params = nullptr;
  /// Requests per second observed by the statistics service; used to turn
  /// windowed access frequency into a byte rate for load shifting.
  double request_rate_per_sec = 0;
  /// Optional placement veto (DESIGN.md §11): when set, a candidate move
  /// of `block`'s chunk from `source` to `dest` is only scored if this
  /// returns true. The control plane uses it for group-aware spreading
  /// (an LRC local group must never co-locate on one failure domain).
  /// Null (the default) scores every candidate — the legacy behavior.
  std::function<bool(BlockId block, SiteId source, SiteId dest)> move_allowed;
};

/// Computes E(C, b, s, d): the expected access-cost change (Eq. 5) over
/// pairwise queries {B_b, B_i} weighted by lambda_{b,i}. Positive =
/// improvement. Exposed for unit tests and ablation benches.
double EstimateAccessGain(const MoverContext& ctx, BlockId block, SiteId source,
                          SiteId destination, std::size_t max_partners);

/// Computes I(C, b, s, d): the load-balance improvement (Eq. 7).
double EstimateLoadGain(const MoverContext& ctx, BlockId block, SiteId source,
                        SiteId destination);

/// Full Eq. 8 score.
double MovementScore(const MoverContext& ctx, BlockId block, SiteId source,
                     SiteId destination, const MoverParams& params);

/// Algorithm 1: returns the best-scoring movement plan, or std::nullopt
/// when no candidate has a positive score.
std::optional<MovementPlan> SelectMovementPlan(const MoverContext& ctx,
                                               const MoverParams& params, Rng& rng);

}  // namespace ecstore
