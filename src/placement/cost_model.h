// The data-access cost model of paper Section IV-B.
//
// cost(Q) = sum_j ( o_j * a_j  +  sum_{B_i in Q} s_ij * m_j * z_i )   (Eq. 1)
//
// where o_j is the dynamic overhead of touching site j at all, m_j the
// per-byte media read cost at site j, z_i the chunk size of block i, and
// s_ij / a_j binary selection variables. Costs are in milliseconds so the
// optimum is an expected-latency minimizer.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/state.h"
#include "common/types.h"

namespace ecstore {

/// Cost-model parameters (Table I), refreshed from the statistics
/// service: o_j from probe RTTs, m_j from media characteristics.
struct CostParams {
  std::vector<double> site_overhead_ms;   // o_j, indexed by site
  std::vector<double> media_ms_per_byte;  // m_j, indexed by site

  /// Convenience constructor for homogeneous clusters (the paper's
  /// testbed): every site gets the same o and m.
  static CostParams Homogeneous(std::size_t num_sites, double overhead_ms,
                                double media_ms_per_byte_each);
};

/// One chunk fetch in an access plan.
struct ChunkRead {
  BlockId block = kInvalidBlock;
  SiteId site = kInvalidSite;
  ChunkIndex chunk = 0;

  bool operator==(const ChunkRead&) const = default;
};

/// A complete access plan for a multi-block request.
struct AccessPlan {
  std::vector<ChunkRead> reads;
  double estimated_cost_ms = 0;  // Eq. 1 value for these reads
  bool optimal = false;          // true when produced by the ILP solver
};

/// What the planner needs to know about one block of a request: how many
/// chunks must be fetched (k, or k + delta with late binding) and where
/// chunks are available.
struct BlockDemand {
  BlockId block = kInvalidBlock;
  std::uint32_t needed = 0;
  std::uint64_t chunk_bytes = 0;  // z_i
  std::vector<ChunkLocation> candidates;
};

/// Builds the demand vector for `blocks` against the current state:
/// candidates are the available chunk locations; `needed` is
/// min(k + delta, #available). Throws std::out_of_range for unknown
/// blocks; a block with fewer than k available chunks is unreadable and
/// reported via the returned `readable` flags.
struct DemandResult {
  std::vector<BlockDemand> demands;
  std::vector<bool> readable;  // parallel to the input blocks
};
DemandResult BuildDemands(const ClusterState& state,
                          std::span<const BlockId> blocks, std::uint32_t delta);

/// Evaluates Eq. 1 for a concrete set of reads.
double PlanCost(std::span<const ChunkRead> reads,
                std::span<const BlockDemand> demands, const CostParams& params);

}  // namespace ecstore
