// Access-plan cache (paper Section V-B1).
//
// Solving the ILP takes orders of magnitude longer than a cache lookup,
// so EC-Store serves repeated requests from cached ILP solutions, falls
// back to the greedy plan on a miss, and lets a background solve replace
// the greedy plan for future requests. Entries are invalidated when a
// chunk of a member block moves, or wholesale when the cost parameters
// change epoch (o_j re-estimation).
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "placement/cost_model.h"

namespace ecstore {

/// LRU cache keyed by the canonical (sorted) block-id set of a request
/// plus the late-binding delta (with adaptive δ this is the per-request
/// value, so plans solved at different fan-outs never alias). Mutations
/// are not thread-safe; callers serialize them — each ControlPlane shard
/// owns one instance behind its shard mutex (see core/control_plane.h;
/// the DES additionally runs single-threaded). The hit/miss counters are
/// atomics so diagnostic reads from tests and benches can race ongoing
/// lookups without UB.
class PlanCache {
 public:
  explicit PlanCache(std::size_t capacity = 100000);

  /// Canonical key for a request.
  static std::vector<BlockId> CanonicalKey(std::span<const BlockId> blocks);

  /// Looks up a plan for the given blocks at the current epoch. A hit
  /// refreshes LRU position.
  std::optional<AccessPlan> Lookup(std::span<const BlockId> blocks, std::uint32_t delta);

  /// Paper semantics (Section V-B1): reuse any cached plan that
  /// *satisfies* the request — an exact match, or a plan cached for a
  /// superset of the requested blocks, restricted to the requested ones
  /// (a scan of [s, s+5) is satisfied by the cached plan for [s, s+19)).
  std::optional<AccessPlan> LookupSatisfying(std::span<const BlockId> blocks,
                                             std::uint32_t delta);

  /// Inserts or replaces the plan for the given blocks.
  void Insert(std::span<const BlockId> blocks, std::uint32_t delta, AccessPlan plan);

  /// Drops every cached plan that involves `block` (called when one of
  /// its chunks moves or a site fails).
  void InvalidateBlock(BlockId block);

  /// Drops everything: the cost parameters changed materially, so every
  /// cached solution may now be stale (Section V-B1 "dynamically reload").
  void BumpEpoch();

  std::size_t size() const { return entries_.size(); }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  double HitRate() const;

  /// Approximate heap usage for the Table III resource report.
  std::size_t ApproxMemoryBytes() const;

 private:
  struct Key {
    std::vector<BlockId> blocks;
    std::uint32_t delta;
    auto operator<=>(const Key&) const = default;
  };
  struct Entry {
    AccessPlan plan;
    std::list<Key>::iterator lru_it;
  };

  void Touch(const Key& key, Entry& entry);
  void EvictIfNeeded();
  void Erase(const Key& key);

  std::size_t capacity_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // Front = most recent.
  std::multimap<BlockId, Key> block_index_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace ecstore
