#include "placement/mover.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "placement/planner.h"

namespace ecstore {

namespace {

/// Builds the pairwise demands {B_b, B_i} for Eq. 5, optionally applying
/// a virtual relocation of B_b's chunk from `source` to `destination`.
std::vector<BlockDemand> PairDemands(const ClusterState& state, BlockId b,
                                     BlockId i, SiteId source, SiteId destination,
                                     bool apply_move) {
  std::vector<BlockDemand> demands;
  for (BlockId id : {b, i}) {
    if (id == kInvalidBlock || !state.Contains(id)) continue;
    const BlockInfo& info = state.GetBlock(id);
    BlockDemand d;
    d.block = id;
    d.needed = info.k;
    d.chunk_bytes = info.chunk_bytes;
    d.candidates = state.AvailableLocations(id);
    if (apply_move && id == b) {
      for (ChunkLocation& loc : d.candidates) {
        if (loc.site == source) loc.site = destination;
      }
    }
    if (d.candidates.size() < d.needed) return {};  // Unreadable pair.
    demands.push_back(std::move(d));
  }
  return demands;
}

/// Guard for the exhaustive evaluator: product of per-block combination
/// counts. Pairwise queries under RS(2,2) yield 36.
double CombinationCount(std::span<const BlockDemand> demands) {
  double combos = 1;
  for (const BlockDemand& d : demands) {
    double c = 1;
    for (std::uint32_t x = 0; x < d.needed; ++x) {
      c *= static_cast<double>(d.candidates.size() - x) / static_cast<double>(x + 1);
    }
    combos *= c;
  }
  return combos;
}

double PairCost(const MoverContext& ctx, std::vector<BlockDemand> demands) {
  if (demands.empty()) return 0;
  if (CombinationCount(demands) <= 4096) {
    return ExhaustivePlan(demands, *ctx.cost_params).estimated_cost_ms;
  }
  const auto plan = IlpPlan(demands, *ctx.cost_params);
  return plan ? plan->estimated_cost_ms : 0;
}

/// Estimated omega-units of load one chunk of `block` contributes to the
/// site storing it: per-block request rate x chunk bytes x probability
/// the chunk is among the k selected, folded through the I/O
/// normalization constant ("proportionally shift the CPU utilization and
/// I/O load ... based on chunk size and chunk access likelihood").
double ChunkLoadShare(const MoverContext& ctx, BlockId block) {
  const BlockInfo& info = ctx.state->GetBlock(block);
  const double freq = ctx.co_access->AccessFrequency(block);
  const double block_req_per_sec = freq * ctx.request_rate_per_sec;
  const double select_prob =
      static_cast<double>(info.k) / static_cast<double>(info.k + info.r);
  const double bytes_per_sec =
      block_req_per_sec * static_cast<double>(info.chunk_bytes) * select_prob;
  return bytes_per_sec / ctx.load->reference_io_bytes_per_sec();
}

}  // namespace

namespace {

/// Per-candidate-block evaluation state reused across every (source,
/// destination) pair: the partner list and the before-move pair costs,
/// which depend only on the current state C.
struct BlockGainContext {
  std::vector<CoAccessPartner> partners;  // Front entry is the solo query.
  std::vector<double> before_costs;       // Parallel to partners.
};

BlockGainContext BuildBlockGainContext(const MoverContext& ctx, BlockId block,
                                       std::size_t max_partners) {
  BlockGainContext out;
  out.partners.push_back({kInvalidBlock, 1.0});  // The solo query {B_b}.
  for (const CoAccessPartner& p : ctx.co_access->Partners(block, max_partners)) {
    if (p.block != block) out.partners.push_back(p);
  }
  out.before_costs.reserve(out.partners.size());
  for (const CoAccessPartner& p : out.partners) {
    out.before_costs.push_back(PairCost(
        ctx, PairDemands(*ctx.state, block, p.block, 0, 0, /*apply_move=*/false)));
  }
  return out;
}

double AccessGainWithContext(const MoverContext& ctx, const BlockGainContext& bctx,
                             BlockId block, SiteId source, SiteId destination) {
  double gain = 0;
  for (std::size_t i = 0; i < bctx.partners.size(); ++i) {
    const CoAccessPartner& p = bctx.partners[i];
    const double after = PairCost(
        ctx, PairDemands(*ctx.state, block, p.block, source, destination, true));
    gain += (bctx.before_costs[i] - after) * p.lambda;
  }
  return gain;
}

}  // namespace

double EstimateAccessGain(const MoverContext& ctx, BlockId block, SiteId source,
                          SiteId destination, std::size_t max_partners) {
  const BlockGainContext bctx = BuildBlockGainContext(ctx, block, max_partners);
  return AccessGainWithContext(ctx, bctx, block, source, destination);
}

double EstimateLoadGain(const MoverContext& ctx, BlockId block, SiteId source,
                        SiteId destination) {
  const LoadTracker& load = *ctx.load;
  const double mean = load.MeanOmega();
  if (mean <= 1e-12) return 0;

  const double shift = ChunkLoadShare(ctx, block);
  const double ws = load.Omega(source);
  const double wd = load.Omega(destination);
  const double ws_after = std::max(0.0, ws - shift);
  const double wd_after = wd + shift;

  const auto balance = [mean](double w) { return std::abs(1.0 - w / mean); };
  // Eq. 6: the worse of the two balance factors, before and after.
  const double before = std::max(balance(ws), balance(wd));
  const double after = std::max(balance(ws_after), balance(wd_after));
  return before - after;  // Eq. 7.
}

double MovementScore(const MoverContext& ctx, BlockId block, SiteId source,
                     SiteId destination, const MoverParams& params) {
  const double e = EstimateAccessGain(ctx, block, source, destination,
                                      params.max_partners);
  const double i =
      params.shift_load_estimate ? EstimateLoadGain(ctx, block, source, destination)
                                 : 0.0;
  return params.w1 * e + params.w2 * i;  // Eq. 8.
}

std::optional<MovementPlan> SelectMovementPlan(const MoverContext& ctx,
                                               const MoverParams& params, Rng& rng) {
  const ClusterState& state = *ctx.state;
  const LoadTracker& load = *ctx.load;

  // Algorithm 1 line 1: probabilistic candidate blocks by access likelihood.
  const std::vector<BlockId> candidates =
      ctx.co_access->SampleCandidateBlocks(rng, params.candidate_blocks);

  // Destination preference: least-loaded available sites first (greedy
  // best-candidate-first subroutine).
  std::vector<SiteId> sites_by_load;
  for (SiteId j = 0; j < state.num_sites(); ++j) {
    if (state.IsSiteAvailable(j)) sites_by_load.push_back(j);
  }
  std::stable_sort(sites_by_load.begin(), sites_by_load.end(),
                   [&](SiteId a, SiteId b) { return load.Omega(a) < load.Omega(b); });

  MovementPlan best;
  bool found = false;
  std::size_t evaluations = 0;

  for (BlockId block : candidates) {
    if (!state.Contains(block)) continue;
    const BlockInfo& info = state.GetBlock(block);

    // Partner list and before-move costs are per-block invariants.
    const BlockGainContext bctx =
        BuildBlockGainContext(ctx, block, params.max_partners);

    // Line 4: candidate destinations exclude sites already holding a
    // chunk of the block. Best-candidate-first ordering (Section IV-D):
    // sites holding chunks of the strongest co-access partners come
    // first — those are the moves that can co-locate the pair — then the
    // least-loaded sites for load-shedding moves.
    std::vector<SiteId> destinations;
    const auto consider = [&](SiteId site) {
      if (destinations.size() >= params.candidate_destinations) return;
      if (!state.IsSiteAvailable(site) || state.HasChunkAt(block, site)) return;
      if (std::find(destinations.begin(), destinations.end(), site) !=
          destinations.end()) {
        return;
      }
      destinations.push_back(site);
    };
    for (const CoAccessPartner& p : bctx.partners) {
      if (p.block == kInvalidBlock || !state.Contains(p.block)) continue;
      for (const ChunkLocation& loc : state.GetBlock(p.block).locations) {
        consider(loc.site);
      }
    }
    for (SiteId site : sites_by_load) consider(site);
    if (destinations.empty()) continue;

    // Line 5: iterate chunks ordered by site load, heaviest source first.
    std::vector<ChunkLocation> sources = info.locations;
    std::stable_sort(sources.begin(), sources.end(),
                     [&](const ChunkLocation& a, const ChunkLocation& b) {
                       return load.Omega(a.site) > load.Omega(b.site);
                     });

    for (const ChunkLocation& src : sources) {
      if (!state.IsSiteAvailable(src.site)) continue;  // Cannot read it.
      for (SiteId dst : destinations) {
        if (ctx.move_allowed && !ctx.move_allowed(block, src.site, dst)) {
          continue;  // Vetoed (e.g. group-aware domain constraint).
        }
        const double e = AccessGainWithContext(ctx, bctx, block, src.site, dst);
        const double i = params.shift_load_estimate
                             ? EstimateLoadGain(ctx, block, src.site, dst)
                             : 0.0;
        const double score = params.w1 * e + params.w2 * i;
        ++evaluations;
        if (score > 0 && (!found || score > best.score)) {
          best = MovementPlan{block, src.site, dst, score};
          found = true;
        }
        if (evaluations >= params.max_evaluations) {
          // Early stop (Section IV-D): return the best plan so far.
          return found ? std::optional<MovementPlan>(best) : std::nullopt;
        }
      }
    }
  }
  return found ? std::optional<MovementPlan>(best) : std::nullopt;
}

}  // namespace ecstore
