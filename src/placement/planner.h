// Access-plan generation strategies (paper Sections IV-B and V-B1):
//
//  - RandomPlan:     the baseline "random access" of standard EC /
//                    replication systems [38] (configurations R and EC).
//  - GreedyPlan:     EC-Store's cache-miss fallback — reuse sites already
//                    in the plan, fill the remainder randomly.
//  - IlpPlan:        exact minimizer of Eq. 1 under constraints Eq. 2-3,
//                    via branch-and-bound (replaces the paper's SCIP).
//  - ExhaustivePlan: brute-force optimum for small queries; used by the
//                    chunk mover's pairwise cost deltas (Eq. 5) and as a
//                    cross-check oracle in tests.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "placement/cost_model.h"

namespace ecstore {

/// Picks `needed` chunks for every block uniformly at random, ignoring
/// cost. This is the access strategy of the R and EC baselines.
AccessPlan RandomPlan(std::span<const BlockDemand> demands, Rng& rng);

/// The paper's greedy heuristic (Section V-B1): for each block, first
/// take chunks located at sites the plan already accesses; if fewer than
/// `needed` are found, pick the remaining chunks at random.
AccessPlan GreedyPlan(std::span<const BlockDemand> demands,
                      const CostParams& params, Rng& rng);

struct IlpPlanOptions {
  /// Branch-and-bound node budget; when exhausted the best incumbent is
  /// returned. Access-plan relaxations are near-integral, so a modest
  /// budget almost always proves the optimum; the cap bounds tail cost
  /// on large multigets. 0 = unlimited.
  std::uint64_t max_nodes = 300;
};

/// Solves the Eq. 1-3 ILP exactly. Returns std::nullopt only if a block's
/// demand cannot be met (insufficient candidates), which BuildDemands
/// normally filters out beforehand.
std::optional<AccessPlan> IlpPlan(std::span<const BlockDemand> demands,
                                  const CostParams& params,
                                  const IlpPlanOptions& options = {});

/// Brute-force exact optimum by enumerating every combination of chunk
/// subsets. Cost grows as prod_i C(|candidates_i|, needed_i); callers
/// must keep queries tiny (the mover's pairwise queries are 2 blocks of
/// RS(2,2), i.e. 36 combinations).
AccessPlan ExhaustivePlan(std::span<const BlockDemand> demands,
                          const CostParams& params);

}  // namespace ecstore
