#include "placement/planner.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "lp/ilp.h"

namespace ecstore {

namespace {

/// Fisher–Yates selection of `count` items from `items` (by index).
template <typename T>
std::vector<T> RandomSubset(const std::vector<T>& items, std::size_t count, Rng& rng) {
  std::vector<T> pool = items;
  for (std::size_t i = 0; i < count && i < pool.size(); ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.NextBounded(pool.size() - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(std::min(count, pool.size()));
  return pool;
}

}  // namespace

AccessPlan RandomPlan(std::span<const BlockDemand> demands, Rng& rng) {
  AccessPlan plan;
  for (const BlockDemand& d : demands) {
    for (const ChunkLocation& loc : RandomSubset(d.candidates, d.needed, rng)) {
      plan.reads.push_back({d.block, loc.site, loc.chunk});
    }
  }
  return plan;
}

AccessPlan GreedyPlan(std::span<const BlockDemand> demands,
                      const CostParams& params, Rng& rng) {
  AccessPlan plan;
  std::set<SiteId> accessed;
  for (const BlockDemand& d : demands) {
    // Partition candidates into already-accessed sites and fresh sites.
    std::vector<ChunkLocation> reuse, fresh;
    for (const ChunkLocation& loc : d.candidates) {
      (accessed.count(loc.site) ? reuse : fresh).push_back(loc);
    }
    // Prefer the cheaper already-accessed sites first.
    std::stable_sort(reuse.begin(), reuse.end(),
                     [&](const ChunkLocation& a, const ChunkLocation& b) {
                       return params.site_overhead_ms[a.site] <
                              params.site_overhead_ms[b.site];
                     });
    std::uint32_t taken = 0;
    for (const ChunkLocation& loc : reuse) {
      if (taken == d.needed) break;
      plan.reads.push_back({d.block, loc.site, loc.chunk});
      ++taken;
    }
    // Remaining chunks: random selection, per the paper's description.
    if (taken < d.needed) {
      for (const ChunkLocation& loc : RandomSubset(fresh, d.needed - taken, rng)) {
        plan.reads.push_back({d.block, loc.site, loc.chunk});
        accessed.insert(loc.site);
        ++taken;
      }
    }
  }
  plan.estimated_cost_ms = PlanCost(plan.reads, demands, params);
  return plan;
}

namespace {

/// Solves the Eq. 1-3 ILP for one connected component of demands.
std::optional<AccessPlan> IlpPlanComponent(std::span<const BlockDemand> demands,
                                           const CostParams& params,
                                           const IlpPlanOptions& options);

}  // namespace

std::optional<AccessPlan> IlpPlan(std::span<const BlockDemand> demands,
                                  const CostParams& params,
                                  const IlpPlanOptions& options) {
  // The ILP decomposes exactly: two blocks interact only when their
  // candidate sites overlap (they can share an a_j activation). Solve
  // each connected component of the block-site graph independently —
  // typical multigets split into several small components, shrinking
  // branch-and-bound work by orders of magnitude.
  const std::size_t n = demands.size();
  if (n == 0) {
    AccessPlan plan;
    plan.optimal = true;
    return plan;
  }

  // Union-find over demand indices keyed by shared sites.
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  const std::function<std::size_t(std::size_t)> find =
      [&](std::size_t x) -> std::size_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::map<SiteId, std::size_t> site_owner;
  for (std::size_t i = 0; i < n; ++i) {
    for (const ChunkLocation& loc : demands[i].candidates) {
      const auto [it, inserted] = site_owner.emplace(loc.site, i);
      if (!inserted) parent[find(i)] = find(it->second);
    }
  }
  std::map<std::size_t, std::vector<BlockDemand>> components;
  for (std::size_t i = 0; i < n; ++i) {
    components[find(i)].push_back(demands[i]);
  }

  AccessPlan combined;
  combined.optimal = true;
  for (const auto& [root, component] : components) {
    (void)root;
    const auto sub = IlpPlanComponent(component, params, options);
    if (!sub) return std::nullopt;
    combined.reads.insert(combined.reads.end(), sub->reads.begin(),
                          sub->reads.end());
    combined.optimal = combined.optimal && sub->optimal;
  }
  combined.estimated_cost_ms = PlanCost(combined.reads, demands, params);
  return combined;
}

namespace {

std::optional<AccessPlan> IlpPlanComponent(std::span<const BlockDemand> demands,
                                           const CostParams& params,
                                           const IlpPlanOptions& options) {
  // Collect the sites that hold any candidate chunk.
  std::set<SiteId> site_set;
  for (const BlockDemand& d : demands) {
    if (d.candidates.size() < d.needed) return std::nullopt;
    for (const ChunkLocation& loc : d.candidates) site_set.insert(loc.site);
  }
  const std::vector<SiteId> sites(site_set.begin(), site_set.end());

  lp::IlpProblem ilp;
  // s variables: one per (block, candidate chunk location). A block holds
  // at most one chunk per site, so (block, site) is unique.
  struct SVar {
    std::size_t var;
    const BlockDemand* demand;
    ChunkLocation loc;
  };
  std::vector<SVar> s_vars;
  std::map<SiteId, std::vector<std::size_t>> site_to_svars;
  for (const BlockDemand& d : demands) {
    for (const ChunkLocation& loc : d.candidates) {
      const double read_cost = params.media_ms_per_byte[loc.site] *
                               static_cast<double>(d.chunk_bytes);
      const std::size_t var = ilp.AddBinaryVariable(read_cost);
      s_vars.push_back({var, &d, loc});
      site_to_svars[loc.site].push_back(var);
    }
  }
  // a variables: one per involved site, costing o_j.
  std::map<SiteId, std::size_t> a_vars;
  for (SiteId site : sites) {
    a_vars[site] = ilp.AddBinaryVariable(params.site_overhead_ms[site]);
  }

  // Eq. 2: each block selects at least `needed` of its chunks.
  std::size_t s_cursor = 0;
  for (const BlockDemand& d : demands) {
    lp::Constraint c;
    for (std::size_t i = 0; i < d.candidates.size(); ++i) {
      c.terms.push_back({s_vars[s_cursor + i].var, 1.0});
    }
    s_cursor += d.candidates.size();
    c.relation = lp::Relation::kGreaterEq;
    c.rhs = static_cast<double>(d.needed);
    ilp.lp.AddConstraint(std::move(c));
  }

  // Eq. 3 links site activation to chunk selection. The paper writes the
  // aggregated form |Q|*a_j - sum_i s_ij >= 0; we install the equivalent
  // disaggregated facility-location form a_j >= s_ij (one row per pair),
  // which has the same integer solutions but a far tighter LP relaxation
  // — the relaxation is almost always integral, so branch-and-bound
  // rarely needs to branch at all.
  for (SiteId site : sites) {
    for (std::size_t var : site_to_svars[site]) {
      lp::Constraint c;
      c.terms.push_back({a_vars[site], 1.0});
      c.terms.push_back({var, -1.0});
      c.relation = lp::Relation::kGreaterEq;
      c.rhs = 0.0;
      ilp.lp.AddConstraint(std::move(c));
    }
  }

  lp::IlpOptions ilp_opts;
  ilp_opts.max_nodes = options.max_nodes;
  const lp::IlpSolution sol = lp::SolveIlp(ilp, ilp_opts);
  if (sol.status != lp::SolveStatus::kOptimal) return std::nullopt;

  AccessPlan plan;
  plan.optimal = true;
  for (const SVar& sv : s_vars) {
    if (sol.values[sv.var] > 0.5) {
      plan.reads.push_back({sv.demand->block, sv.loc.site, sv.loc.chunk});
    }
  }
  plan.estimated_cost_ms = PlanCost(plan.reads, demands, params);
  return plan;
}

}  // namespace

namespace {

void EnumeratePlans(std::span<const BlockDemand> demands, std::size_t index,
                    std::vector<ChunkRead>& current, const CostParams& params,
                    AccessPlan& best) {
  if (index == demands.size()) {
    const double cost = PlanCost(current, demands, params);
    if (best.reads.empty() || cost < best.estimated_cost_ms) {
      best.reads = current;
      best.estimated_cost_ms = cost;
    }
    return;
  }
  const BlockDemand& d = demands[index];
  // Enumerate all `needed`-subsets of candidates via combination masks.
  const std::size_t n = d.candidates.size();
  std::vector<std::size_t> pick(d.needed);
  // Iterative combination generator.
  for (std::size_t i = 0; i < d.needed; ++i) pick[i] = i;
  while (true) {
    for (std::size_t i = 0; i < d.needed; ++i) {
      const ChunkLocation& loc = d.candidates[pick[i]];
      current.push_back({d.block, loc.site, loc.chunk});
    }
    EnumeratePlans(demands, index + 1, current, params, best);
    current.resize(current.size() - d.needed);

    // Advance the combination.
    std::size_t i = d.needed;
    while (i > 0) {
      --i;
      if (pick[i] + (d.needed - i) < n) {
        ++pick[i];
        for (std::size_t j = i + 1; j < d.needed; ++j) pick[j] = pick[j - 1] + 1;
        i = d.needed + 1;  // Signal: advanced.
        break;
      }
    }
    if (i != d.needed + 1) break;  // Exhausted.
  }
}

}  // namespace

AccessPlan ExhaustivePlan(std::span<const BlockDemand> demands,
                          const CostParams& params) {
  AccessPlan best;
  best.optimal = true;
  std::vector<ChunkRead> current;
  EnumeratePlans(demands, 0, current, params, best);
  return best;
}

}  // namespace ecstore
