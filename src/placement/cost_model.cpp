#include "placement/cost_model.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ecstore {

CostParams CostParams::Homogeneous(std::size_t num_sites, double overhead_ms,
                                   double media_ms_per_byte_each) {
  CostParams p;
  p.site_overhead_ms.assign(num_sites, overhead_ms);
  p.media_ms_per_byte.assign(num_sites, media_ms_per_byte_each);
  return p;
}

DemandResult BuildDemands(const ClusterState& state,
                          std::span<const BlockId> blocks, std::uint32_t delta) {
  DemandResult result;
  result.demands.reserve(blocks.size());
  result.readable.reserve(blocks.size());
  // Collapse duplicate block ids: one demand per distinct block. Requests
  // are small, so a linear scan over a flat vector beats a node-based set
  // on this hot path (every MultiGet builds demands).
  std::vector<BlockId> seen;
  seen.reserve(blocks.size());
  BlockInfo info;
  for (BlockId id : blocks) {
    if (std::find(seen.begin(), seen.end(), id) != seen.end()) {
      result.readable.push_back(true);  // Covered by the first occurrence.
      continue;
    }
    seen.push_back(id);
    // Copy the catalog entry under its stripe lock, then filter by the
    // atomic availability flags: safe against concurrent RemoveBlock and
    // one lock round instead of two.
    if (!state.ReadBlock(id, &info)) {
      throw std::out_of_range("GetBlock: unknown block");
    }
    BlockDemand d;
    d.block = id;
    d.chunk_bytes = info.chunk_bytes;
    d.candidates.reserve(info.locations.size());
    for (const ChunkLocation& loc : info.locations) {
      if (state.IsSiteAvailable(loc.site)) d.candidates.push_back(loc);
    }
    if (!SpecAnyKDecodes(info.codec)) {
      // Non-MDS family (LRC): restrict normal reads to the chunks from
      // which any k decode — data + global parities; the local parities
      // exist for repair. When failures leave fewer than k of those, keep
      // every survivor so the degraded path can try pattern-dependent
      // decoding with the locals.
      std::vector<ChunkLocation> preferred;
      preferred.reserve(d.candidates.size());
      for (const ChunkLocation& loc : d.candidates) {
        if (IsPlanReadCandidate(info.codec, loc.chunk)) {
          preferred.push_back(loc);
        }
      }
      if (preferred.size() >= info.k) d.candidates = std::move(preferred);
    }
    const auto available = static_cast<std::uint32_t>(d.candidates.size());
    if (available < info.k) {
      result.readable.push_back(false);
      continue;  // Unreadable: no demand emitted.
    }
    d.needed = std::min(info.k + delta, available);
    result.demands.push_back(std::move(d));
    result.readable.push_back(true);
  }
  return result;
}

double PlanCost(std::span<const ChunkRead> reads,
                std::span<const BlockDemand> demands, const CostParams& params) {
  // Chunk-retrieval term: m_j * z_i per selected chunk.
  double cost = 0;
  std::set<SiteId> accessed;
  for (const ChunkRead& read : reads) {
    const auto demand = std::find_if(
        demands.begin(), demands.end(),
        [&](const BlockDemand& d) { return d.block == read.block; });
    if (demand == demands.end()) {
      throw std::invalid_argument("PlanCost: read for a block not in the demands");
    }
    cost += params.media_ms_per_byte[read.site] *
            static_cast<double>(demand->chunk_bytes);
    accessed.insert(read.site);
  }
  // Site-activation term: o_j once per accessed site.
  for (SiteId site : accessed) cost += params.site_overhead_ms[site];
  return cost;
}

}  // namespace ecstore
