#include "placement/cost_model.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ecstore {

CostParams CostParams::Homogeneous(std::size_t num_sites, double overhead_ms,
                                   double media_ms_per_byte_each) {
  CostParams p;
  p.site_overhead_ms.assign(num_sites, overhead_ms);
  p.media_ms_per_byte.assign(num_sites, media_ms_per_byte_each);
  return p;
}

DemandResult BuildDemands(const ClusterState& state,
                          std::span<const BlockId> blocks, std::uint32_t delta) {
  DemandResult result;
  result.demands.reserve(blocks.size());
  result.readable.reserve(blocks.size());
  // Collapse duplicate block ids: one demand per distinct block.
  std::set<BlockId> seen;
  for (BlockId id : blocks) {
    if (!seen.insert(id).second) {
      result.readable.push_back(true);  // Covered by the first occurrence.
      continue;
    }
    const BlockInfo& info = state.GetBlock(id);
    BlockDemand d;
    d.block = id;
    d.chunk_bytes = info.chunk_bytes;
    d.candidates = state.AvailableLocations(id);
    const auto available = static_cast<std::uint32_t>(d.candidates.size());
    if (available < info.k) {
      result.readable.push_back(false);
      continue;  // Unreadable: no demand emitted.
    }
    d.needed = std::min(info.k + delta, available);
    result.demands.push_back(std::move(d));
    result.readable.push_back(true);
  }
  return result;
}

double PlanCost(std::span<const ChunkRead> reads,
                std::span<const BlockDemand> demands, const CostParams& params) {
  // Chunk-retrieval term: m_j * z_i per selected chunk.
  double cost = 0;
  std::set<SiteId> accessed;
  for (const ChunkRead& read : reads) {
    const auto demand = std::find_if(
        demands.begin(), demands.end(),
        [&](const BlockDemand& d) { return d.block == read.block; });
    if (demand == demands.end()) {
      throw std::invalid_argument("PlanCost: read for a block not in the demands");
    }
    cost += params.media_ms_per_byte[read.site] *
            static_cast<double>(demand->chunk_bytes);
    accessed.insert(read.site);
  }
  // Site-activation term: o_j once per accessed site.
  for (SiteId site : accessed) cost += params.site_overhead_ms[site];
  return cost;
}

}  // namespace ecstore
