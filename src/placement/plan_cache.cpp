#include "placement/plan_cache.h"

#include <algorithm>

namespace ecstore {

PlanCache::PlanCache(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {}

std::vector<BlockId> PlanCache::CanonicalKey(std::span<const BlockId> blocks) {
  std::vector<BlockId> key(blocks.begin(), blocks.end());
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

std::optional<AccessPlan> PlanCache::Lookup(std::span<const BlockId> blocks,
                                            std::uint32_t delta) {
  Key key{CanonicalKey(blocks), delta};
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  Touch(it->first, it->second);
  return it->second.plan;
}

std::optional<AccessPlan> PlanCache::LookupSatisfying(
    std::span<const BlockId> blocks, std::uint32_t delta) {
  const std::vector<BlockId> wanted = CanonicalKey(blocks);
  if (wanted.empty()) return std::nullopt;

  // Exact match first (cheapest, and most common for recurring sets).
  {
    Key key{wanted, delta};
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      Touch(it->first, it->second);
      return it->second.plan;
    }
  }

  // Superset search: scan cached sets containing the first wanted block;
  // bounded so a very hot block cannot make lookups expensive.
  constexpr std::size_t kMaxCandidates = 32;
  const auto [begin, end] = block_index_.equal_range(wanted.front());
  std::size_t scanned = 0;
  for (auto it = begin; it != end && scanned < kMaxCandidates; ++it, ++scanned) {
    const Key& key = it->second;
    if (key.delta != delta) continue;
    if (!std::includes(key.blocks.begin(), key.blocks.end(), wanted.begin(),
                       wanted.end())) {
      continue;
    }
    const auto entry = entries_.find(key);
    if (entry == entries_.end()) continue;
    ++hits_;
    Touch(entry->first, entry->second);
    if (key.blocks.size() == wanted.size()) return entry->second.plan;
    AccessPlan restricted;
    restricted.optimal = false;  // Optimal for the superset, not this subset.
    for (const ChunkRead& read : entry->second.plan.reads) {
      if (std::binary_search(wanted.begin(), wanted.end(), read.block)) {
        restricted.reads.push_back(read);
      }
    }
    restricted.estimated_cost_ms = entry->second.plan.estimated_cost_ms;
    return restricted;
  }
  ++misses_;
  return std::nullopt;
}

void PlanCache::Insert(std::span<const BlockId> blocks, std::uint32_t delta,
                       AccessPlan plan) {
  Key key{CanonicalKey(blocks), delta};
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.plan = std::move(plan);
    Touch(it->first, it->second);
    return;
  }
  lru_.push_front(key);
  Entry entry{std::move(plan), lru_.begin()};
  entries_.emplace(key, std::move(entry));
  for (BlockId b : key.blocks) block_index_.emplace(b, key);
  EvictIfNeeded();
}

void PlanCache::InvalidateBlock(BlockId block) {
  const auto [begin, end] = block_index_.equal_range(block);
  // Collect first: Erase mutates block_index_.
  std::vector<Key> keys;
  for (auto it = begin; it != end; ++it) keys.push_back(it->second);
  for (const Key& key : keys) Erase(key);
}

void PlanCache::BumpEpoch() {
  entries_.clear();
  lru_.clear();
  block_index_.clear();
}

double PlanCache::HitRate() const {
  const std::uint64_t total = hits_ + misses_;
  return total ? static_cast<double>(hits_) / static_cast<double>(total) : 0.0;
}

std::size_t PlanCache::ApproxMemoryBytes() const {
  std::size_t bytes = 0;
  constexpr std::size_t kNodeOverhead = 4 * sizeof(void*);
  for (const auto& [key, entry] : entries_) {
    bytes += kNodeOverhead + sizeof(Key) + key.blocks.capacity() * sizeof(BlockId);
    bytes += sizeof(Entry) + entry.plan.reads.capacity() * sizeof(ChunkRead);
    // LRU node + block-index nodes.
    bytes += kNodeOverhead + sizeof(Key) + key.blocks.size() * sizeof(BlockId);
    bytes += key.blocks.size() * (kNodeOverhead + sizeof(std::pair<BlockId, Key>));
  }
  return bytes;
}

void PlanCache::Touch(const Key& key, Entry& entry) {
  lru_.erase(entry.lru_it);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
}

void PlanCache::EvictIfNeeded() {
  while (entries_.size() > capacity_) {
    Erase(lru_.back());
  }
}

void PlanCache::Erase(const Key& key) {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  for (BlockId b : key.blocks) {
    const auto [begin, end] = block_index_.equal_range(b);
    for (auto bit = begin; bit != end; ++bit) {
      if (bit->second == key) {
        block_index_.erase(bit);
        break;
      }
    }
  }
  entries_.erase(it);
}

}  // namespace ecstore
