#include "fault/detector.h"

namespace ecstore {

const char* SiteHealthName(SiteHealth health) {
  switch (health) {
    case SiteHealth::kAlive:
      return "alive";
    case SiteHealth::kSuspect:
      return "suspect";
    case SiteHealth::kDead:
      return "dead";
  }
  return "unknown";
}

void FailureDetector::Baseline(SiteId site, double now_ms) {
  auto [it, inserted] = entries_.try_emplace(site);
  if (inserted) {
    it->second.last_seen_ms = now_ms;
    it->second.health = SiteHealth::kAlive;
  }
}

bool FailureDetector::Heartbeat(SiteId site, double now_ms) {
  Entry& e = entries_[site];
  e.last_seen_ms = now_ms;
  const bool revived = e.health != SiteHealth::kAlive;
  e.health = SiteHealth::kAlive;
  return revived;
}

std::vector<HealthTransition> FailureDetector::Tick(double now_ms) {
  std::vector<HealthTransition> transitions;
  for (auto& [site, e] : entries_) {
    if (e.health == SiteHealth::kDead) continue;  // Revival is Heartbeat's job.
    const double silent_ms = now_ms - e.last_seen_ms;
    SiteHealth target = SiteHealth::kAlive;
    if (silent_ms >= params_.dead_after_ms) {
      target = SiteHealth::kDead;
    } else if (silent_ms >= params_.suspect_after_ms) {
      target = SiteHealth::kSuspect;
    }
    if (target == e.health || target == SiteHealth::kAlive) continue;
    transitions.push_back({site, e.health, target});
    e.health = target;
  }
  return transitions;
}

void FailureDetector::MarkDead(SiteId site) {
  entries_[site].health = SiteHealth::kDead;
}

SiteHealth FailureDetector::Health(SiteId site) const {
  const auto it = entries_.find(site);
  return it == entries_.end() ? SiteHealth::kAlive : it->second.health;
}

}  // namespace ecstore
