#include "fault/retry.h"

#include <algorithm>
#include <cmath>

namespace ecstore {

double RetrySchedule::WaitMs(int round) {
  if (round < 1 || params_.backoff_base_ms <= 0) return 0;
  double wait = params_.backoff_base_ms *
                std::pow(std::max(params_.backoff_multiplier, 1.0),
                         static_cast<double>(round - 1));
  if (params_.jitter_frac > 0) {
    wait *= 1.0 + params_.jitter_frac * (2.0 * rng_.NextDouble() - 1.0);
  }
  // Clamp after jitter: `max_backoff_ms` is a hard cap, and upward jitter
  // applied to an already-clamped wait would exceed it by up to
  // jitter_frac.
  wait = std::min(wait, params_.max_backoff_ms);
  return std::max(wait, 0.0);
}

double RetrySchedule::MinWaitMs(int round) const {
  if (round < 1 || params_.backoff_base_ms <= 0) return 0;
  const double nominal =
      params_.backoff_base_ms *
      std::pow(std::max(params_.backoff_multiplier, 1.0),
               static_cast<double>(round - 1));
  // Mirror WaitMs: maximum downward jitter, then the hard cap.
  const double jittered =
      nominal * (1.0 - std::clamp(params_.jitter_frac, 0.0, 1.0));
  return std::max(std::min(jittered, params_.max_backoff_ms), 0.0);
}

}  // namespace ecstore
