// Failure detector (DESIGN.md §9): turns missed heartbeat windows into
// alive -> suspect -> dead transitions.
//
// Heartbeats are whatever periodic evidence an embodiment already has —
// the statistics service's load reports and o_j probes (Section V-A/V-B3
// of the paper): a healthy site produces one every reporting interval, so
// a site that misses several windows in a row is suspected, and one that
// misses more is declared dead. The detector only forms *belief*; acting
// on it (marking the site unavailable in the cluster state, triggering
// the repair grace period) is the ControlPlane's job.
//
// Pure state machine: no clocks, no threads. Callers pass `now_ms`
// explicitly, so the DES drives it in simulated time and LocalECStore in
// wall time, and both are deterministic under test.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace ecstore {

enum class SiteHealth { kAlive, kSuspect, kDead };

const char* SiteHealthName(SiteHealth health);

/// One state-machine edge observed by Tick or Heartbeat.
struct HealthTransition {
  SiteId site = kInvalidSite;
  SiteHealth from = SiteHealth::kAlive;
  SiteHealth to = SiteHealth::kAlive;
};

struct FailureDetectorParams {
  /// Silence longer than this marks a site suspect (typically ~2 missed
  /// stats-report windows).
  double suspect_after_ms = 10'000;
  /// Silence longer than this marks it dead (typically ~4 windows). The
  /// repair service then applies its own `repair_wait` grace on top.
  double dead_after_ms = 20'000;
};

class FailureDetector {
 public:
  explicit FailureDetector(FailureDetectorParams params = {})
      : params_(params) {}

  /// Registers `site` as alive at `now_ms` without treating it as fresh
  /// evidence: used to baseline sites the detector has never heard from,
  /// so an untracked site is not declared dead on the first Tick.
  void Baseline(SiteId site, double now_ms);

  bool Tracks(SiteId site) const { return entries_.count(site) > 0; }

  /// Fresh evidence of life. Returns true when this heartbeat *revives* a
  /// suspect/dead site (the caller may need to restore availability).
  bool Heartbeat(SiteId site, double now_ms);

  /// Advances every tracked site's state machine to `now_ms` and returns
  /// the transitions that fired (worsening edges only; revivals happen in
  /// Heartbeat).
  std::vector<HealthTransition> Tick(double now_ms);

  /// Out-of-band override for a manual FailSite: the site is dead now,
  /// regardless of heartbeat history.
  void MarkDead(SiteId site);

  /// kAlive for sites never heard from.
  SiteHealth Health(SiteId site) const;

  std::size_t num_tracked() const { return entries_.size(); }

 private:
  struct Entry {
    double last_seen_ms = 0;
    SiteHealth health = SiteHealth::kAlive;
  };

  FailureDetectorParams params_;
  std::unordered_map<SiteId, Entry> entries_;
};

}  // namespace ecstore
