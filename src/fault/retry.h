// Bounded retry policy (DESIGN.md §9): exponential backoff with
// deterministic jitter under a per-request deadline budget.
//
// Replaces the one-shot deadline hedge of the real-bytes fetch path: when
// a fetch round leaves a block short of k chunks (stragglers, injected
// I/O errors, a site that died mid-flight), the store re-issues the
// missing chunks for up to `max_retries` rounds, waiting an exponentially
// growing, jittered backoff between rounds, and gives up early once the
// request's total latency budget is spent — falling through to the
// degraded-read path rather than retrying forever.
#pragma once

#include <cstdint>

#include "common/rng.h"

namespace ecstore {

struct RetryParams {
  /// Retry rounds after the initial attempt. 0 disables retries entirely
  /// (the degraded-read path is then the only recourse).
  int max_retries = 1;
  /// Backoff before retry round 1, in milliseconds. 0 retries immediately
  /// (round 1 keeps the old hedge's fire-right-at-the-deadline behavior
  /// when left at 0).
  double backoff_base_ms = 0.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1'000.0;
  /// Uniform jitter applied per wait: the backoff is scaled by a factor
  /// drawn from [1 - jitter_frac, 1 + jitter_frac], de-synchronizing
  /// concurrent retriers.
  double jitter_frac = 0.2;
  /// Total per-request latency budget in milliseconds; once elapsed time
  /// exceeds it no further retry rounds run. 0 = no budget cap.
  double request_deadline_ms = 0.0;
};

/// Per-request retry state: owns the jitter stream so identical seeds
/// produce identical wait sequences.
class RetrySchedule {
 public:
  RetrySchedule(const RetryParams& params, std::uint64_t seed)
      : params_(params), rng_(SplitMix64(seed ^ 0x5E7B0FFu).Next()) {}

  /// True when retry round `round` (1-based) may run, given the time
  /// already spent on the request. A round whose *earliest possible*
  /// completion would land past the deadline budget is refused outright:
  /// the backoff wait alone (MinWaitMs, before any service time) would
  /// burn the remaining budget, so issuing it could only ever deliver a
  /// late answer the caller has already given up on.
  bool ShouldRetry(int round, double elapsed_ms) const {
    if (round > params_.max_retries) return false;
    if (params_.request_deadline_ms > 0 &&
        elapsed_ms + MinWaitMs(round) >= params_.request_deadline_ms) {
      return false;
    }
    return true;
  }

  /// Jittered backoff to wait before retry round `round` (1-based).
  double WaitMs(int round);

  /// Deterministic lower bound of WaitMs(round): the nominal backoff
  /// under maximum downward jitter, against the cap. Draws no RNG, so
  /// ShouldRetry stays a pure predicate.
  double MinWaitMs(int round) const;

  const RetryParams& params() const { return params_; }

 private:
  RetryParams params_;
  Rng rng_;
};

}  // namespace ecstore
