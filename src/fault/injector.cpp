#include "fault/injector.h"

#include <algorithm>
#include <chrono>

namespace ecstore {

std::vector<TimedAction> ExpandFaultSchedule(
    const std::vector<FaultEvent>& events, const FaultActions& actions) {
  std::vector<TimedAction> out;
  for (const FaultEvent& e : events) {
    switch (e.kind) {
      case FaultKind::kCrash:
        if (actions.crash) {
          out.push_back({e.at_ms, [fn = actions.crash, s = e.site] { fn(s); }});
        }
        break;
      case FaultKind::kFlap:
        if (actions.crash && actions.heal) {
          out.push_back({e.at_ms, [fn = actions.crash, s = e.site] { fn(s); }});
          out.push_back({e.at_ms + e.duration_ms,
                         [fn = actions.heal, s = e.site] { fn(s); }});
        }
        break;
      case FaultKind::kSlowSite:
        if (actions.degrade) {
          out.push_back({e.at_ms, [fn = actions.degrade, s = e.site,
                                   f = e.magnitude] { fn(s, f); }});
          out.push_back({e.at_ms + e.duration_ms,
                         [fn = actions.degrade, s = e.site] { fn(s, 1.0); }});
        }
        break;
      case FaultKind::kFetchError:
        if (actions.set_fetch_error) {
          out.push_back({e.at_ms, [fn = actions.set_fetch_error, s = e.site,
                                   p = e.magnitude] { fn(s, p); }});
          out.push_back({e.at_ms + e.duration_ms,
                         [fn = actions.set_fetch_error, s = e.site] {
                           fn(s, 0.0);
                         }});
        }
        break;
      case FaultKind::kCorruptChunks:
        if (actions.corrupt) {
          out.push_back({e.at_ms, [fn = actions.corrupt, s = e.site,
                                   f = e.magnitude] { fn(s, f); }});
        }
        break;
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TimedAction& a, const TimedAction& b) {
                     return a.at_ms < b.at_ms;
                   });
  return out;
}

InjectionThread::InjectionThread(std::vector<TimedAction> actions)
    : actions_(std::move(actions)) {
  std::stable_sort(actions_.begin(), actions_.end(),
                   [](const TimedAction& a, const TimedAction& b) {
                     return a.at_ms < b.at_ms;
                   });
}

InjectionThread::~InjectionThread() { Stop(/*run_remaining=*/false); }

void InjectionThread::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  thread_ = std::thread(&InjectionThread::Run, this);
}

void InjectionThread::Run() {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    TimedAction* action = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stop_ || next_ >= actions_.size()) return;
      const auto deadline =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          actions_[next_].at_ms));
      if (!cv_.wait_until(lock, deadline, [this] { return stop_; })) {
        action = &actions_[next_++];
      } else {
        return;  // stopped
      }
    }
    // Run outside the lock: actions may take embodiment locks of their own.
    action->run();
  }
}

void InjectionThread::Stop(bool run_remaining) {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  if (run_remaining) {
    // The thread is gone: next_ is stable without the lock, but take it
    // anyway for the sanitizers' benefit.
    std::unique_lock<std::mutex> lock(mu_);
    while (next_ < actions_.size()) {
      TimedAction& action = actions_[next_++];
      lock.unlock();
      action.run();
      lock.lock();
    }
  }
}

bool InjectionThread::done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_ >= actions_.size();
}

std::size_t InjectionThread::actions_fired() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_;
}

}  // namespace ecstore
