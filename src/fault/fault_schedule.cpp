#include "fault/fault_schedule.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"

namespace ecstore {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kFlap:
      return "flap";
    case FaultKind::kSlowSite:
      return "slow";
    case FaultKind::kFetchError:
      return "fetch-error";
    case FaultKind::kCorruptChunks:
      return "corrupt";
  }
  return "unknown";
}

std::vector<FaultEvent> GenerateFaultSchedule(const FaultScheduleParams& params,
                                              std::uint64_t seed) {
  Rng rng(SplitMix64(seed ^ 0xFA5C4EDu).Next());
  std::vector<FaultEvent> events;

  // Crash/flap/slow victims must be distinct: concurrent unreachability is
  // then bounded by crashes + flaps, which callers size against r.
  std::vector<SiteId> sites(params.num_sites);
  for (std::size_t j = 0; j < params.num_sites; ++j) {
    sites[j] = static_cast<SiteId>(j);
  }
  for (std::size_t i = 0; i + 1 < sites.size(); ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.NextBounded(sites.size() - i));
    std::swap(sites[i], sites[j]);
  }
  std::size_t next_victim = 0;
  const auto draw_victim = [&]() -> SiteId {
    return sites[next_victim++ % sites.size()];
  };

  for (std::size_t i = 0; i < params.crashes; ++i) {
    FaultEvent e;
    // First half of the horizon: detection + grace + rebuild fit inside.
    e.at_ms = (0.05 + 0.45 * rng.NextDouble()) * params.horizon_ms;
    e.kind = FaultKind::kCrash;
    e.site = draw_victim();
    events.push_back(e);
  }
  for (std::size_t i = 0; i < params.flaps; ++i) {
    FaultEvent e;
    e.at_ms = (0.05 + 0.75 * rng.NextDouble()) * params.horizon_ms;
    e.kind = FaultKind::kFlap;
    e.site = draw_victim();
    e.duration_ms = params.flap_duration_ms;
    events.push_back(e);
  }
  for (std::size_t i = 0; i < params.slow_sites; ++i) {
    FaultEvent e;
    e.at_ms = (0.05 + 0.75 * rng.NextDouble()) * params.horizon_ms;
    e.kind = FaultKind::kSlowSite;
    e.site = draw_victim();
    e.duration_ms = params.slow_duration_ms;
    e.magnitude = params.slow_factor;
    events.push_back(e);
  }
  // Error/corruption victims may coincide with any site: these faults do
  // not take the site down, they exercise the checksum and retry paths.
  for (std::size_t i = 0; i < params.fetch_error_sites; ++i) {
    FaultEvent e;
    e.at_ms = (0.05 + 0.75 * rng.NextDouble()) * params.horizon_ms;
    e.kind = FaultKind::kFetchError;
    e.site = static_cast<SiteId>(rng.NextBounded(params.num_sites));
    e.duration_ms = params.fetch_error_duration_ms;
    e.magnitude = params.fetch_error_probability;
    events.push_back(e);
  }
  for (std::size_t i = 0; i < params.corrupt_sites; ++i) {
    FaultEvent e;
    e.at_ms = (0.05 + 0.45 * rng.NextDouble()) * params.horizon_ms;
    e.kind = FaultKind::kCorruptChunks;
    e.site = static_cast<SiteId>(rng.NextBounded(params.num_sites));
    e.magnitude = params.corrupt_fraction;
    events.push_back(e);
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at_ms < b.at_ms;
                   });
  return events;
}

std::string DescribeFaultEvent(const FaultEvent& event) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "t=%.0fms %s site %u dur=%.0fms mag=%.3f", event.at_ms,
                FaultKindName(event.kind), event.site, event.duration_ms,
                event.magnitude);
  return buf;
}

}  // namespace ecstore
