// Deterministic, seeded fault schedules (DESIGN.md §9).
//
// A schedule is a plain list of timed fault events — crash-stop, transient
// flap, slow-site degradation, per-fetch I/O error windows, and silent
// chunk corruption — generated up front from a seed so every run of a
// chaos experiment injects the identical sequence. The schedule itself is
// embodiment-agnostic: the DES replays it on its event queue, the
// real-bytes embodiment on a wall-clock injection thread (see
// fault/injector.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace ecstore {

/// The five fault classes the robustness layer injects.
enum class FaultKind {
  kCrash,          // crash-stop: the site goes down and stays down
  kFlap,           // transient outage: down for duration_ms, then back
  kSlowSite,       // service degraded by `magnitude`x for duration_ms
  kFetchError,     // fetches fail with probability `magnitude` for duration_ms
  kCorruptChunks,  // `magnitude` fraction of stored chunks silently corrupted
};

const char* FaultKindName(FaultKind kind);

/// One scheduled fault.
struct FaultEvent {
  double at_ms = 0;
  FaultKind kind = FaultKind::kCrash;
  SiteId site = kInvalidSite;
  double duration_ms = 0;  // flap/slow/error window; unused for crash/corrupt
  double magnitude = 0;    // slow factor / error probability / corrupt fraction
};

/// Knobs for GenerateFaultSchedule. Crash, flap, and slow victims are
/// drawn as distinct sites, so at most `crashes + flaps` sites are ever
/// unreachable at once — callers keep that below the code's r to preserve
/// readability under the schedule.
struct FaultScheduleParams {
  std::size_t num_sites = 8;
  double horizon_ms = 10'000;

  std::size_t crashes = 1;
  std::size_t flaps = 1;
  std::size_t slow_sites = 1;
  std::size_t fetch_error_sites = 1;
  std::size_t corrupt_sites = 1;

  double flap_duration_ms = 500;
  double slow_duration_ms = 1'000;
  double slow_factor = 4.0;
  double fetch_error_duration_ms = 1'000;
  double fetch_error_probability = 0.05;
  double corrupt_fraction = 0.02;
};

/// Generates a schedule, sorted by time, that is a pure function of
/// (params, seed). Crash events land in the first half of the horizon so
/// detection and repair have time to play out inside the run.
std::vector<FaultEvent> GenerateFaultSchedule(const FaultScheduleParams& params,
                                              std::uint64_t seed);

/// Human-readable one-liner ("t=812ms flap site 3 for 500ms"), for logs.
std::string DescribeFaultEvent(const FaultEvent& event);

}  // namespace ecstore
