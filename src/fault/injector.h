// Fault injection drivers (DESIGN.md §9): replay a fault schedule against
// an embodiment.
//
// The embodiment exposes its injection points as a FaultActions bundle of
// callbacks; ExpandFaultSchedule lowers each FaultEvent into the timed
// callback invocations that realize it (a flap becomes crash@t +
// heal@t+duration; a slow-site window becomes degrade@t + undegrade). The
// resulting TimedAction list is embodiment-agnostic: the DES schedules
// each action on its event queue at FromMillis(at_ms); the real-bytes
// embodiment hands the list to an InjectionThread that fires them at
// wall-clock offsets from Start().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.h"
#include "fault/fault_schedule.h"

namespace ecstore {

/// The injection points an embodiment offers. Leave a hook empty to make
/// the corresponding fault class a no-op (the DES, for example, has no
/// bytes to corrupt).
struct FaultActions {
  std::function<void(SiteId)> crash;  // site stops serving (silently)
  std::function<void(SiteId)> heal;   // site comes back
  /// Service degraded by `factor` (1.0 restores full speed).
  std::function<void(SiteId, double)> degrade;
  /// Fetches at the site fail with probability `p` (0 switches it off).
  std::function<void(SiteId, double)> set_fetch_error;
  /// Silently corrupts `fraction` of the chunks stored at the site.
  std::function<void(SiteId, double)> corrupt;
};

/// One concrete injection: run `run` at `at_ms` after the schedule starts.
struct TimedAction {
  double at_ms = 0;
  std::function<void()> run;
};

/// Lowers `events` onto `actions`, dropping fault classes whose hook is
/// empty. Output is sorted by at_ms.
std::vector<TimedAction> ExpandFaultSchedule(
    const std::vector<FaultEvent>& events, const FaultActions& actions);

/// Wall-clock replay for the real-bytes embodiment: a single thread that
/// sleeps to each action's offset (measured from Start()) and runs it.
class InjectionThread {
 public:
  explicit InjectionThread(std::vector<TimedAction> actions);
  ~InjectionThread();  // Stops without running remaining actions.

  InjectionThread(const InjectionThread&) = delete;
  InjectionThread& operator=(const InjectionThread&) = delete;

  void Start();

  /// Stops the thread. With run_remaining=true every not-yet-fired action
  /// runs inline (in order) before returning — handy for deterministically
  /// closing out heal actions at the end of a chaos run.
  void Stop(bool run_remaining = false);

  bool done() const;
  std::size_t actions_fired() const;

 private:
  void Run();

  std::vector<TimedAction> actions_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t next_ = 0;  // first action not yet fired (guarded by mu_)
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace ecstore
