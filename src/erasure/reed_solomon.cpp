#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "erasure/codec.h"
#include "gf/gf256.h"
#include "gf/matrix.h"

namespace ecstore {

struct ReedSolomonCodec::Impl {
  gf::Matrix coding;  // (k+r) x k systematic Cauchy matrix.
};

ReedSolomonCodec::ReedSolomonCodec(std::uint32_t k, std::uint32_t r)
    : k_(k), r_(r), impl_(std::make_unique<Impl>()) {
  if (k < 2) throw std::invalid_argument("ReedSolomonCodec: k must be >= 2");
  if (r < 1) throw std::invalid_argument("ReedSolomonCodec: r must be >= 1");
  if (k + r > 256) throw std::invalid_argument("ReedSolomonCodec: k + r must be <= 256");
  impl_->coding = gf::BuildSystematicCauchy(k, r);
}

ReedSolomonCodec::~ReedSolomonCodec() = default;

std::size_t ReedSolomonCodec::ChunkSize(std::size_t block_size) const {
  return (block_size + k_ - 1) / k_;
}

std::vector<ChunkData> ReedSolomonCodec::Encode(
    std::span<const std::uint8_t> block) const {
  const std::size_t chunk_size = ChunkSize(block.size());
  std::vector<ChunkData> chunks(k_ + r_);

  // Systematic chunks: a straight split of the block, zero-padded at the
  // tail so every chunk is exactly chunk_size bytes.
  for (std::uint32_t i = 0; i < k_; ++i) {
    chunks[i].assign(chunk_size, 0);
    const std::size_t offset = static_cast<std::size_t>(i) * chunk_size;
    if (offset < block.size()) {
      const std::size_t n = std::min(chunk_size, block.size() - offset);
      std::memcpy(chunks[i].data(), block.data() + offset, n);
    }
  }
  // Parity chunks: row (k + p) of the coding matrix applied to the data.
  for (std::uint32_t p = 0; p < r_; ++p) {
    chunks[k_ + p].assign(chunk_size, 0);
    for (std::uint32_t j = 0; j < k_; ++j) {
      gf::MulAddRegion(impl_->coding.At(k_ + p, j), chunks[j], chunks[k_ + p]);
    }
  }
  return chunks;
}

std::vector<std::uint8_t> ReedSolomonCodec::Decode(
    std::span<const IndexedChunk> chunks, std::size_t block_size) const {
  if (chunks.size() < k_) {
    throw std::invalid_argument("ReedSolomonCodec::Decode: fewer than k chunks");
  }
  const std::size_t chunk_size = ChunkSize(block_size);

  // Use the first k distinct chunk indices.
  std::vector<const IndexedChunk*> use;
  use.reserve(k_);
  for (const auto& c : chunks) {
    if (c.index >= k_ + r_) {
      throw std::invalid_argument("ReedSolomonCodec::Decode: chunk index out of range");
    }
    const bool dup = std::any_of(use.begin(), use.end(), [&](const IndexedChunk* u) {
      return u->index == c.index;
    });
    if (dup) continue;
    if (c.data.size() != chunk_size) {
      throw std::invalid_argument("ReedSolomonCodec::Decode: chunk size mismatch");
    }
    use.push_back(&c);
    if (use.size() == k_) break;
  }
  if (use.size() < k_) {
    throw std::invalid_argument("ReedSolomonCodec::Decode: fewer than k distinct chunks");
  }

  std::vector<std::uint8_t> block(block_size);

  // Fast path: all k systematic chunks present — reassembly only.
  const bool all_systematic =
      std::all_of(use.begin(), use.end(),
                  [&](const IndexedChunk* c) { return c->index < k_; });
  if (all_systematic) {
    for (const IndexedChunk* c : use) {
      const std::size_t offset = static_cast<std::size_t>(c->index) * chunk_size;
      if (offset >= block_size) continue;
      const std::size_t n = std::min(chunk_size, block_size - offset);
      std::memcpy(block.data() + offset, c->data.data(), n);
    }
    return block;
  }

  // General path: invert the k x k submatrix of the rows we hold. The
  // product (inverse * held_chunks) yields the k systematic chunks.
  std::vector<std::size_t> rows(k_);
  for (std::uint32_t i = 0; i < k_; ++i) rows[i] = use[i]->index;
  gf::Matrix sub = impl_->coding.SelectRows(rows);
  if (!sub.Invert()) {
    // Cannot happen for a Cauchy MDS matrix with distinct rows; guard anyway.
    throw std::runtime_error("ReedSolomonCodec::Decode: singular decode matrix");
  }

  std::vector<std::uint8_t> recovered(chunk_size);
  for (std::uint32_t data_row = 0; data_row < k_; ++data_row) {
    const std::size_t offset = static_cast<std::size_t>(data_row) * chunk_size;
    if (offset >= block_size) continue;
    std::fill(recovered.begin(), recovered.end(), 0);
    for (std::uint32_t j = 0; j < k_; ++j) {
      gf::MulAddRegion(sub.At(data_row, j), use[j]->data, recovered);
    }
    const std::size_t n = std::min(chunk_size, block_size - offset);
    std::memcpy(block.data() + offset, recovered.data(), n);
  }
  return block;
}

bool ReedSolomonCodec::IsTrivialDecode(std::span<const ChunkIndex> indices) const {
  std::uint32_t systematic = 0;
  for (ChunkIndex i : indices) {
    if (i < k_) ++systematic;
  }
  return systematic >= k_;
}

// ---------------------------------------------------------------------------
// ReplicationCodec
// ---------------------------------------------------------------------------

ReplicationCodec::ReplicationCodec(std::uint32_t r) : r_(r) {
  if (r < 1) throw std::invalid_argument("ReplicationCodec: r must be >= 1");
}

std::vector<ChunkData> ReplicationCodec::Encode(
    std::span<const std::uint8_t> block) const {
  std::vector<ChunkData> copies(r_ + 1);
  for (auto& copy : copies) copy.assign(block.begin(), block.end());
  return copies;
}

std::vector<std::uint8_t> ReplicationCodec::Decode(
    std::span<const IndexedChunk> chunks, std::size_t block_size) const {
  for (const auto& c : chunks) {
    if (c.index >= r_ + 1) {
      throw std::invalid_argument("ReplicationCodec::Decode: chunk index out of range");
    }
    if (c.data.size() != block_size) {
      throw std::invalid_argument("ReplicationCodec::Decode: replica size mismatch");
    }
    return c.data;
  }
  throw std::invalid_argument("ReplicationCodec::Decode: no chunks supplied");
}

bool ReplicationCodec::IsTrivialDecode(std::span<const ChunkIndex> indices) const {
  return !indices.empty();
}

}  // namespace ecstore
