#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

#include "erasure/codec.h"
#include "gf/gf256.h"
#include "gf/gf256_kernels.h"
#include "gf/matrix.h"

namespace ecstore {

struct ReedSolomonCodec::Impl {
  gf::Matrix coding;  // (k+r) x k systematic Cauchy matrix.
  // Split-nibble product tables for the r x k parity block of the coding
  // matrix, precomputed once per codec instead of once per Encode call.
  // parity_tabs[p * k + j] holds the tables for coding(k + p, j).
  std::vector<gf::MulTable> parity_tabs;
};

ReedSolomonCodec::ReedSolomonCodec(std::uint32_t k, std::uint32_t r)
    : k_(k), r_(r), impl_(std::make_unique<Impl>()) {
  if (k < 2) throw std::invalid_argument("ReedSolomonCodec: k must be >= 2");
  if (r < 1) throw std::invalid_argument("ReedSolomonCodec: r must be >= 1");
  if (k + r > 256) throw std::invalid_argument("ReedSolomonCodec: k + r must be <= 256");
  impl_->coding = gf::BuildSystematicCauchy(k, r);
  impl_->parity_tabs.resize(static_cast<std::size_t>(r) * k);
  for (std::uint32_t p = 0; p < r; ++p) {
    for (std::uint32_t j = 0; j < k; ++j) {
      gf::BuildMulTable(impl_->coding.At(k + p, j),
                        impl_->parity_tabs[static_cast<std::size_t>(p) * k + j]);
    }
  }
}

ReedSolomonCodec::~ReedSolomonCodec() = default;

std::size_t ReedSolomonCodec::ChunkSize(std::size_t block_size) const {
  return (block_size + k_ - 1) / k_;
}

std::vector<ChunkData> ReedSolomonCodec::Encode(
    std::span<const std::uint8_t> block) const {
  const std::size_t chunk_size = ChunkSize(block.size());
  std::vector<ChunkData> chunks(k_ + r_);

  // Systematic chunks: a straight split of the block, zero-padded at the
  // tail so every chunk is exactly chunk_size bytes. Copy-construct from
  // the block range (one pass) instead of zero-filling then overwriting.
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::size_t offset =
        std::min(static_cast<std::size_t>(i) * chunk_size, block.size());
    const std::size_t n = std::min(chunk_size, block.size() - offset);
    chunks[i].reserve(chunk_size);
    chunks[i].assign(block.begin() + offset, block.begin() + offset + n);
    chunks[i].resize(chunk_size, 0);
  }
  // Parity chunks: row (k + p) of the coding matrix applied to the data,
  // as one fused pass over all k sources per parity output. The kernel
  // overwrites its destination (accumulate=false), so the parity buffer
  // is never read; computing cache-sized strips into an L1-resident
  // scratch buffer and appending them also avoids the zero-fill pass a
  // full-size vector resize would cost.
  std::vector<const gf::Elem*> srcs(k_);
  for (std::uint32_t j = 0; j < k_; ++j) srcs[j] = chunks[j].data();
  const auto& kernels = gf::ActiveKernels();
  for (std::uint32_t p = 0; p < r_; ++p) {
    chunks[k_ + p].resize(chunk_size);
    kernels.mul_add_multi(
        impl_->parity_tabs.data() + static_cast<std::size_t>(p) * k_,
        srcs.data(), k_, chunks[k_ + p].data(), chunk_size,
        /*accumulate=*/false);
  }
  return chunks;
}

std::vector<std::uint8_t> ReedSolomonCodec::Decode(
    std::span<const IndexedChunk> chunks, std::size_t block_size) const {
  if (chunks.size() < k_) {
    throw std::invalid_argument("ReedSolomonCodec::Decode: fewer than k chunks");
  }
  const std::size_t chunk_size = ChunkSize(block_size);

  // Use the first k distinct chunk indices. A 256-bit seen-bitmap makes
  // duplicate detection O(1) per chunk (indices are < k + r <= 256).
  std::array<std::uint64_t, 4> seen{};
  std::vector<const IndexedChunk*> use;
  use.reserve(k_);
  for (const auto& c : chunks) {
    if (c.index >= k_ + r_) {
      throw std::invalid_argument("ReedSolomonCodec::Decode: chunk index out of range");
    }
    std::uint64_t& word = seen[c.index >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (c.index & 63);
    if (word & bit) continue;
    word |= bit;
    if (c.data.size() != chunk_size) {
      throw std::invalid_argument("ReedSolomonCodec::Decode: chunk size mismatch");
    }
    use.push_back(&c);
    if (use.size() == k_) break;
  }
  if (use.size() < k_) {
    throw std::invalid_argument("ReedSolomonCodec::Decode: fewer than k distinct chunks");
  }

  std::vector<std::uint8_t> block(block_size);

  // Fast path: all k systematic chunks present — reassembly only.
  const bool all_systematic =
      std::all_of(use.begin(), use.end(),
                  [&](const IndexedChunk* c) { return c->index < k_; });
  if (all_systematic) {
    for (const IndexedChunk* c : use) {
      const std::size_t offset = static_cast<std::size_t>(c->index) * chunk_size;
      if (offset >= block_size) continue;
      const std::size_t n = std::min(chunk_size, block_size - offset);
      std::memcpy(block.data() + offset, c->data.data(), n);
    }
    return block;
  }

  // General path: invert the k x k submatrix of the rows we hold. The
  // product (inverse * held_chunks) yields the k systematic chunks.
  std::vector<std::size_t> rows(k_);
  for (std::uint32_t i = 0; i < k_; ++i) rows[i] = use[i]->index;
  gf::Matrix sub = impl_->coding.SelectRows(rows);
  if (!sub.Invert()) {
    // Cannot happen for a Cauchy MDS matrix with distinct rows; guard anyway.
    throw std::runtime_error("ReedSolomonCodec::Decode: singular decode matrix");
  }

  // Product tables for the inverse, built once per decode (not once per
  // matrix cell application), then one fused pass per recovered row.
  std::vector<gf::MulTable> tabs(static_cast<std::size_t>(k_) * k_);
  for (std::uint32_t i = 0; i < k_; ++i) {
    for (std::uint32_t j = 0; j < k_; ++j) {
      gf::BuildMulTable(sub.At(i, j), tabs[static_cast<std::size_t>(i) * k_ + j]);
    }
  }
  std::vector<const gf::Elem*> srcs(k_);
  for (std::uint32_t j = 0; j < k_; ++j) srcs[j] = use[j]->data.data();
  const auto& kernels = gf::ActiveKernels();

  std::vector<std::uint8_t> recovered(chunk_size);
  for (std::uint32_t data_row = 0; data_row < k_; ++data_row) {
    const std::size_t offset = static_cast<std::size_t>(data_row) * chunk_size;
    if (offset >= block_size) continue;
    const std::size_t n = std::min(chunk_size, block_size - offset);
    // Rows that fit entirely inside the block decode straight into it;
    // only a truncated tail row needs the bounce buffer.
    std::uint8_t* out = (n == chunk_size) ? block.data() + offset : recovered.data();
    kernels.mul_add_multi(tabs.data() + static_cast<std::size_t>(data_row) * k_,
                          srcs.data(), k_, out, chunk_size,
                          /*accumulate=*/false);
    if (n != chunk_size) std::memcpy(block.data() + offset, recovered.data(), n);
  }
  return block;
}

bool ReedSolomonCodec::IsTrivialDecode(std::span<const ChunkIndex> indices) const {
  std::uint32_t systematic = 0;
  for (ChunkIndex i : indices) {
    if (i < k_) ++systematic;
  }
  return systematic >= k_;
}

// ---------------------------------------------------------------------------
// ReplicationCodec
// ---------------------------------------------------------------------------

ReplicationCodec::ReplicationCodec(std::uint32_t r) : r_(r) {
  if (r < 1) throw std::invalid_argument("ReplicationCodec: r must be >= 1");
}

std::vector<ChunkData> ReplicationCodec::Encode(
    std::span<const std::uint8_t> block) const {
  std::vector<ChunkData> copies(r_ + 1);
  for (auto& copy : copies) copy.assign(block.begin(), block.end());
  return copies;
}

std::vector<std::uint8_t> ReplicationCodec::Decode(
    std::span<const IndexedChunk> chunks, std::size_t block_size) const {
  for (const auto& c : chunks) {
    if (c.index >= r_ + 1) {
      throw std::invalid_argument("ReplicationCodec::Decode: chunk index out of range");
    }
    if (c.data.size() != block_size) {
      throw std::invalid_argument("ReplicationCodec::Decode: replica size mismatch");
    }
    return c.data;
  }
  throw std::invalid_argument("ReplicationCodec::Decode: no chunks supplied");
}

bool ReplicationCodec::IsTrivialDecode(std::span<const ChunkIndex> indices) const {
  return !indices.empty();
}

}  // namespace ecstore
