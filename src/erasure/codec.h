// Codec interface shared by Reed–Solomon erasure coding and replication.
//
// A codec turns a block of bytes into `TotalChunks()` chunks such that the
// block can be reconstructed from any `RequiredChunks()` of them. For
// RS(k, r): total = k + r, required = k. For (r+1)-way replication:
// total = r + 1, required = 1.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"

namespace ecstore {

/// Bytes of a single encoded chunk.
using ChunkData = std::vector<std::uint8_t>;

/// A chunk paired with its index within the block's encoding.
struct IndexedChunk {
  ChunkIndex index = 0;
  ChunkData data;
};

/// Fault-tolerant block codec. Implementations are stateless and
/// thread-compatible; one instance may be shared across threads.
class Codec {
 public:
  virtual ~Codec() = default;

  /// Chunks needed to reconstruct a block (the "k" of the scheme).
  virtual std::uint32_t RequiredChunks() const = 0;

  /// Chunks produced per block (k + r for RS, r + 1 for replication).
  virtual std::uint32_t TotalChunks() const = 0;

  /// Number of independent faults the scheme tolerates (the "r").
  std::uint32_t FaultTolerance() const { return TotalChunks() - RequiredChunks(); }

  /// Size in bytes of each chunk for a block of `block_size` bytes.
  virtual std::size_t ChunkSize(std::size_t block_size) const = 0;

  /// Storage factor relative to one copy of the data (k+r)/k or r+1.
  double StorageOverhead() const {
    return static_cast<double>(TotalChunks()) /
           static_cast<double>(RequiredChunks());
  }

  /// Encodes a block into TotalChunks() chunks, each ChunkSize(n) bytes.
  virtual std::vector<ChunkData> Encode(std::span<const std::uint8_t> block) const = 0;

  /// Reconstructs the original block from any RequiredChunks() distinct
  /// chunks. `block_size` is the original (pre-padding) byte count.
  /// Throws std::invalid_argument on insufficient or duplicate chunks.
  virtual std::vector<std::uint8_t> Decode(std::span<const IndexedChunk> chunks,
                                           std::size_t block_size) const = 0;

  /// True when decoding the given chunk set is a pure reassembly with no
  /// field arithmetic (all-systematic RS chunks, or any replica). The
  /// cluster simulator uses this to decide whether to charge decode CPU.
  virtual bool IsTrivialDecode(std::span<const ChunkIndex> indices) const = 0;
};

/// RS(k, r) maximum-distance-separable codec over GF(2^8), built on a
/// systematic Cauchy coding matrix. Replaces the paper's Jerasure 2.0.
class ReedSolomonCodec final : public Codec {
 public:
  /// Requires k >= 2 (the paper's Section II) and k + r <= 256.
  ReedSolomonCodec(std::uint32_t k, std::uint32_t r);
  ~ReedSolomonCodec() override;

  std::uint32_t RequiredChunks() const override { return k_; }
  std::uint32_t TotalChunks() const override { return k_ + r_; }
  std::size_t ChunkSize(std::size_t block_size) const override;

  std::vector<ChunkData> Encode(std::span<const std::uint8_t> block) const override;
  std::vector<std::uint8_t> Decode(std::span<const IndexedChunk> chunks,
                                   std::size_t block_size) const override;
  bool IsTrivialDecode(std::span<const ChunkIndex> indices) const override;

 private:
  struct Impl;
  std::uint32_t k_, r_;
  std::unique_ptr<Impl> impl_;
};

/// (r+1)-way replication expressed as a codec: every "chunk" is a full
/// copy of the block. Used for the paper's replication baseline (R).
class ReplicationCodec final : public Codec {
 public:
  explicit ReplicationCodec(std::uint32_t r);

  std::uint32_t RequiredChunks() const override { return 1; }
  std::uint32_t TotalChunks() const override { return r_ + 1; }
  std::size_t ChunkSize(std::size_t block_size) const override { return block_size; }

  std::vector<ChunkData> Encode(std::span<const std::uint8_t> block) const override;
  std::vector<std::uint8_t> Decode(std::span<const IndexedChunk> chunks,
                                   std::size_t block_size) const override;
  bool IsTrivialDecode(std::span<const ChunkIndex> indices) const override;

 private:
  std::uint32_t r_;
};

}  // namespace ecstore
