#include "erasure/linear_codec.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "gf/gf256.h"

namespace ecstore {

LinearCodec::LinearCodec(gf::Matrix generator)
    : generator_(std::move(generator)),
      k_(generator_.cols()),
      n_(generator_.rows()) {
  if (k_ == 0) throw std::invalid_argument("LinearCodec: empty generator");
  if (n_ < k_) throw std::invalid_argument("LinearCodec: fewer rows than data chunks");
  if (n_ > 256) throw std::invalid_argument("LinearCodec: more than 256 chunks");
}

std::vector<ChunkData> LinearCodec::Encode(
    std::span<const std::uint8_t> block) const {
  const std::size_t chunk_size = ChunkSize(block.size());

  // Split the block into k padded data chunks.
  std::vector<ChunkData> data(k_);
  for (std::size_t j = 0; j < k_; ++j) {
    data[j].assign(chunk_size, 0);
    const std::size_t offset = j * chunk_size;
    if (offset < block.size()) {
      const std::size_t count = std::min(chunk_size, block.size() - offset);
      std::memcpy(data[j].data(), block.data() + offset, count);
    }
  }

  std::vector<ChunkData> chunks(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    chunks[i].assign(chunk_size, 0);
    for (std::size_t j = 0; j < k_; ++j) {
      gf::MulAddRegion(generator_.At(i, j), data[j], chunks[i]);
    }
  }
  return chunks;
}

std::optional<LinearCodec::DecodeMap> LinearCodec::SolveFor(
    std::span<const ChunkIndex> rows) const {
  // Greedily collect k linearly independent generator rows, tracking,
  // for each accepted row, its composition in terms of accepted inputs
  // so we can build the inverse afterwards. Simpler: collect the row
  // indices, then invert the resulting k x k submatrix.
  std::vector<std::size_t> used;
  std::vector<std::vector<gf::Elem>> basis;      // reduced rows
  std::vector<std::size_t> pivot_col;            // pivot column per basis row

  for (std::size_t pos = 0; pos < rows.size() && used.size() < k_; ++pos) {
    const ChunkIndex r = rows[pos];
    if (r >= n_) continue;
    // Reduce the candidate row against the current basis.
    std::vector<gf::Elem> row(k_);
    for (std::size_t j = 0; j < k_; ++j) row[j] = generator_.At(r, j);
    for (std::size_t b = 0; b < basis.size(); ++b) {
      const gf::Elem factor = row[pivot_col[b]];
      if (factor == 0) continue;
      for (std::size_t j = 0; j < k_; ++j) {
        row[j] = gf::Add(row[j], gf::Mul(factor, basis[b][j]));
      }
    }
    // Find a pivot.
    std::size_t col = k_;
    for (std::size_t j = 0; j < k_; ++j) {
      if (row[j] != 0) {
        col = j;
        break;
      }
    }
    if (col == k_) continue;  // Dependent row.
    // Normalize so the pivot is 1, then keep the basis in reduced
    // (Gauss-Jordan) form: every other basis row gets a zero in this
    // pivot column, so sequential elimination of future candidates is
    // exact.
    const gf::Elem inv = gf::Inverse(row[col]);
    for (std::size_t j = 0; j < k_; ++j) row[j] = gf::Mul(row[j], inv);
    for (std::size_t b = 0; b < basis.size(); ++b) {
      const gf::Elem factor = basis[b][col];
      if (factor == 0) continue;
      for (std::size_t j = 0; j < k_; ++j) {
        basis[b][j] = gf::Add(basis[b][j], gf::Mul(factor, row[j]));
      }
    }
    basis.push_back(std::move(row));
    pivot_col.push_back(col);
    used.push_back(pos);
  }
  if (used.size() < k_) return std::nullopt;

  // Invert the k x k submatrix of the chosen rows.
  gf::Matrix sub(k_, k_);
  for (std::size_t i = 0; i < k_; ++i) {
    for (std::size_t j = 0; j < k_; ++j) {
      sub.At(i, j) = generator_.At(rows[used[i]], j);
    }
  }
  if (!sub.Invert()) return std::nullopt;  // Unreachable given rank check.
  return DecodeMap{std::move(used), std::move(sub)};
}

bool LinearCodec::CanDecode(std::span<const ChunkIndex> indices) const {
  return SolveFor(indices).has_value();
}

std::optional<std::vector<ChunkIndex>> LinearCodec::SelectDecodeSet(
    std::span<const ChunkIndex> indices) const {
  const auto map = SolveFor(indices);
  if (!map) return std::nullopt;
  std::vector<ChunkIndex> out;
  out.reserve(map->used.size());
  for (std::size_t pos : map->used) out.push_back(indices[pos]);
  return out;
}

std::optional<std::vector<std::uint8_t>> LinearCodec::TryDecode(
    std::span<const IndexedChunk> chunks, std::size_t block_size) const {
  const std::size_t chunk_size = ChunkSize(block_size);
  std::vector<ChunkIndex> indices;
  indices.reserve(chunks.size());
  for (const IndexedChunk& c : chunks) {
    if (c.data.size() != chunk_size) {
      throw std::invalid_argument("LinearCodec::TryDecode: chunk size mismatch");
    }
    indices.push_back(c.index);
  }
  const auto map = SolveFor(indices);
  if (!map) return std::nullopt;

  std::vector<std::uint8_t> block(block_size);
  std::vector<std::uint8_t> recovered(chunk_size);
  for (std::size_t data_row = 0; data_row < k_; ++data_row) {
    const std::size_t offset = data_row * chunk_size;
    if (offset >= block_size) continue;
    std::fill(recovered.begin(), recovered.end(), 0);
    for (std::size_t i = 0; i < k_; ++i) {
      gf::MulAddRegion(map->inverse.At(data_row, i), chunks[map->used[i]].data,
                       recovered);
    }
    const std::size_t count = std::min(chunk_size, block_size - offset);
    std::memcpy(block.data() + offset, recovered.data(), count);
  }
  return block;
}

std::optional<ChunkData> LinearCodec::ReconstructChunk(
    std::span<const IndexedChunk> chunks, ChunkIndex target,
    std::size_t block_size) const {
  if (target >= n_) return std::nullopt;
  const auto block = TryDecode(chunks, block_size);
  if (!block) return std::nullopt;
  // Re-encode only the target row.
  const std::size_t chunk_size = ChunkSize(block_size);
  std::vector<ChunkData> data(k_);
  for (std::size_t j = 0; j < k_; ++j) {
    data[j].assign(chunk_size, 0);
    const std::size_t offset = j * chunk_size;
    if (offset < block->size()) {
      const std::size_t count = std::min(chunk_size, block->size() - offset);
      std::memcpy(data[j].data(), block->data() + offset, count);
    }
  }
  ChunkData out(chunk_size, 0);
  for (std::size_t j = 0; j < k_; ++j) {
    gf::MulAddRegion(generator_.At(target, j), data[j], out);
  }
  return out;
}

// ---------------------------------------------------------------------------
// LRC
// ---------------------------------------------------------------------------

gf::Matrix BuildLrcGenerator(std::uint32_t k, std::uint32_t l, std::uint32_t g) {
  if (l == 0 || g == 0 || k == 0 || k % l != 0) {
    throw std::invalid_argument("BuildLrcGenerator: need k % l == 0, l,g >= 1");
  }
  if (k + l + g > 256) throw std::invalid_argument("BuildLrcGenerator: too many chunks");
  const std::uint32_t group = k / l;

  gf::Matrix m(k + l + g, k);
  for (std::uint32_t i = 0; i < k; ++i) m.At(i, i) = 1;
  // Local parities: XOR over each group.
  for (std::uint32_t i = 0; i < l; ++i) {
    for (std::uint32_t j = i * group; j < (i + 1) * group; ++j) {
      m.At(k + i, j) = 1;
    }
  }
  // Global parities: Cauchy rows with evaluation points disjoint from the
  // data points, so any g x g (and smaller) global submatrix is regular.
  for (std::uint32_t t = 0; t < g; ++t) {
    for (std::uint32_t j = 0; j < k; ++j) {
      const gf::Elem x = static_cast<gf::Elem>(t);
      const gf::Elem y = static_cast<gf::Elem>(g + j);
      m.At(k + l + t, j) = gf::Inverse(gf::Add(x, y));
    }
  }
  return m;
}

LrcCodec::LrcCodec(std::uint32_t k, std::uint32_t l, std::uint32_t g)
    : k_(k), l_(l), g_(g), codec_(BuildLrcGenerator(k, l, g)) {}

std::optional<std::uint32_t> LrcCodec::GroupOf(ChunkIndex index) const {
  if (index < k_) return index / GroupSize();
  if (index < k_ + l_) return index - k_;
  return std::nullopt;  // Global parity.
}

std::optional<std::vector<ChunkIndex>> LrcCodec::LocalRepairSet(
    ChunkIndex failed) const {
  const auto group = GroupOf(failed);
  if (!group) return std::nullopt;
  std::vector<ChunkIndex> set;
  for (std::uint32_t j = *group * GroupSize(); j < (*group + 1) * GroupSize(); ++j) {
    if (j != failed) set.push_back(j);
  }
  const ChunkIndex parity = k_ + *group;
  if (parity != failed) set.push_back(parity);
  return set;
}

std::optional<ChunkData> LrcCodec::RepairLocally(
    ChunkIndex failed, std::span<const IndexedChunk> group_chunks,
    std::size_t block_size) const {
  const auto expected = LocalRepairSet(failed);
  if (!expected) return std::nullopt;
  const std::size_t chunk_size = codec_.ChunkSize(block_size);
  // A local parity is the XOR of its group: the failed chunk equals the
  // XOR of every other chunk in {group members, parity}.
  std::vector<bool> seen(TotalChunks(), false);
  ChunkData out(chunk_size, 0);
  std::size_t provided = 0;
  for (const IndexedChunk& c : group_chunks) {
    if (std::find(expected->begin(), expected->end(), c.index) == expected->end()) {
      continue;  // Not part of this repair set.
    }
    if (seen[c.index]) continue;
    if (c.data.size() != chunk_size) return std::nullopt;
    seen[c.index] = true;
    gf::AddRegion(c.data, out);
    ++provided;
  }
  if (provided != expected->size()) return std::nullopt;
  return out;
}

}  // namespace ecstore
