// General linear block codes over GF(2^8), and Local Reconstruction
// Codes (LRC) as used by Windows Azure Storage (Huang et al., the
// paper's reference [19]).
//
// The paper treats coding schemes as orthogonal to its placement and
// access strategies (Section VII: new codes "do not address strategies
// for placement and access"); this module extends the library beyond
// MDS Reed–Solomon so downstream users can pair EC-Store's strategies
// with repair-efficient codes.
//
// A linear codec is defined by a (k+p) x k generator matrix G over
// GF(2^8): chunks = G * data_chunks. Unlike the MDS codecs in codec.h,
// an arbitrary linear code cannot reconstruct from *every* k-subset —
// decodability depends on the rank of the selected rows, so Decode here
// is a Try-style operation and callers can query decodability per
// erasure pattern.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "erasure/codec.h"
#include "gf/matrix.h"

namespace ecstore {

/// A linear block code chunks = G * data over GF(2^8).
class LinearCodec {
 public:
  /// `generator` must have cols >= 1 and rows >= cols; rows of the
  /// identity on top are conventional but not required.
  explicit LinearCodec(gf::Matrix generator);

  std::uint32_t DataChunks() const { return static_cast<std::uint32_t>(k_); }
  std::uint32_t TotalChunks() const { return static_cast<std::uint32_t>(n_); }
  std::size_t ChunkSize(std::size_t block_size) const {
    return (block_size + k_ - 1) / k_;
  }

  const gf::Matrix& generator() const { return generator_; }

  /// Encodes a block into TotalChunks() chunks.
  std::vector<ChunkData> Encode(std::span<const std::uint8_t> block) const;

  /// True iff the given chunk indices span the data (selected generator
  /// rows have rank k) — i.e., Decode would succeed.
  bool CanDecode(std::span<const ChunkIndex> indices) const;

  /// The k chunk indices (a subset of `indices`, greedily chosen in the
  /// given order) whose generator rows span the data — the minimal read
  /// set a decode of this availability pattern actually consumes.
  /// nullopt when the pattern is not decodable.
  std::optional<std::vector<ChunkIndex>> SelectDecodeSet(
      std::span<const ChunkIndex> indices) const;

  /// Reconstructs the block from the given chunks if their rows span the
  /// data space; returns std::nullopt otherwise.
  std::optional<std::vector<std::uint8_t>> TryDecode(
      std::span<const IndexedChunk> chunks, std::size_t block_size) const;

  /// Re-creates the content of chunk `target` from the given chunks
  /// (e.g. a repair). Returns std::nullopt if they do not determine it.
  std::optional<ChunkData> ReconstructChunk(
      std::span<const IndexedChunk> chunks, ChunkIndex target,
      std::size_t block_size) const;

 private:
  /// How to recover the data chunks from a set of available chunks: the
  /// positions (into the caller's chunk list) of the k chunks used, and
  /// the k x k matrix mapping them to the data chunks.
  struct DecodeMap {
    std::vector<std::size_t> used;
    gf::Matrix inverse;
  };

  /// Greedy rank-building over the selected generator rows; nullopt when
  /// they do not span the data space.
  std::optional<DecodeMap> SolveFor(std::span<const ChunkIndex> rows) const;

  gf::Matrix generator_;
  std::size_t k_, n_;
};

/// Azure-style LRC(k, l, g): k data chunks split into l equal local
/// groups, one XOR parity per group, plus g global (Cauchy) parities.
/// Total chunks = k + l + g.
///
/// Chunk layout: [0, k) data; [k, k+l) local parities (group i's parity
/// at index k+i); [k+l, k+l+g) global parities.
class LrcCodec {
 public:
  /// Requires k % l == 0, l >= 1, g >= 1, k + l + g <= 256.
  LrcCodec(std::uint32_t k, std::uint32_t l, std::uint32_t g);

  std::uint32_t k() const { return k_; }
  std::uint32_t l() const { return l_; }
  std::uint32_t g() const { return g_; }
  std::uint32_t TotalChunks() const { return k_ + l_ + g_; }
  std::uint32_t GroupSize() const { return k_ / l_; }

  /// Storage factor, e.g. LRC(12,2,2) = 16/12 = 1.33x.
  double StorageOverhead() const {
    return static_cast<double>(TotalChunks()) / k_;
  }

  const LinearCodec& codec() const { return codec_; }

  std::vector<ChunkData> Encode(std::span<const std::uint8_t> block) const {
    return codec_.Encode(block);
  }
  std::optional<std::vector<std::uint8_t>> TryDecode(
      std::span<const IndexedChunk> chunks, std::size_t block_size) const {
    return codec_.TryDecode(chunks, block_size);
  }

  /// The local group of a data or local-parity chunk; global parities
  /// belong to no group (returns nullopt).
  std::optional<std::uint32_t> GroupOf(ChunkIndex index) const;

  /// The chunk indices needed to repair `failed` locally: the rest of its
  /// group plus the group parity (GroupSize() chunks instead of k).
  /// Global parities have no local repair set.
  std::optional<std::vector<ChunkIndex>> LocalRepairSet(ChunkIndex failed) const;

  /// Repairs one failed chunk from its local repair set's data.
  std::optional<ChunkData> RepairLocally(ChunkIndex failed,
                                         std::span<const IndexedChunk> group_chunks,
                                         std::size_t block_size) const;

 private:
  std::uint32_t k_, l_, g_;
  LinearCodec codec_;
};

/// Builds the LRC generator matrix described above.
gf::Matrix BuildLrcGenerator(std::uint32_t k, std::uint32_t l, std::uint32_t g);

}  // namespace ecstore
