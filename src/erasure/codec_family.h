// CodecFamily: the pluggable codec-family abstraction (DESIGN.md §11).
//
// Unifies the MDS Codec (codec.h) and LinearCodec/LRC (linear_codec.h)
// behind one interface whose core addition is the RepairPlan query:
// given the surviving chunk indices and a rebuild target, return the
// minimal set of chunks (and fractions of chunks) a reconstruction must
// read. Full-k for Reed-Solomon, local-group-only for Azure-LRC, and a
// sub-packetized half-chunk plan for the piggybacked-RS regenerating
// family. RepairService, the scrubber, and degraded reads all consume
// the plan instead of assuming MDS.
//
// Implementations are stateless after construction and thread-compatible
// (one instance may serve every thread); GetCodecFamily memoizes them so
// per-block lookups on the read path cost one map probe.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/codec_spec.h"
#include "erasure/codec.h"

namespace ecstore {

/// One read a repair plan asks for: `subchunks` of the chunk's
/// RepairPlan::chunk_subchunks equal-sized pieces (whole chunk when they
/// match). Sub-chunk reads model the regenerating family's bandwidth
/// savings; in-process nodes still hand back whole chunks, and the wire
/// accounting (repair_bytes_read) charges only the plan's bytes.
struct RepairRead {
  ChunkIndex chunk = 0;
  std::uint32_t subchunks = 1;

  friend bool operator==(const RepairRead&, const RepairRead&) = default;
};

/// The minimal surviving-chunk reads that rebuild one target chunk.
struct RepairPlan {
  std::vector<RepairRead> reads;
  std::uint32_t chunk_subchunks = 1;

  /// Bytes-on-wire of the plan for chunks of `chunk_bytes` bytes.
  std::uint64_t BytesToRead(std::uint64_t chunk_bytes) const {
    std::uint64_t total = 0;
    for (const RepairRead& read : reads) {
      total += (chunk_bytes * read.subchunks + chunk_subchunks - 1) /
               chunk_subchunks;
    }
    return total;
  }

  /// The distinct chunk indices the plan touches, in plan order.
  std::vector<ChunkIndex> Chunks() const {
    std::vector<ChunkIndex> out;
    out.reserve(reads.size());
    for (const RepairRead& read : reads) out.push_back(read.chunk);
    return out;
  }
};

/// A codec family: everything the store needs to encode, decode, and
/// repair blocks of one CodecSpec.
class CodecFamily {
 public:
  explicit CodecFamily(const CodecSpec& spec) : spec_(spec) {}
  virtual ~CodecFamily() = default;

  CodecFamily(const CodecFamily&) = delete;
  CodecFamily& operator=(const CodecFamily&) = delete;

  const CodecSpec& spec() const { return spec_; }
  std::string Name() const { return CodecSpecName(spec_); }
  std::uint32_t DataChunks() const { return SpecDataChunks(spec_); }
  std::uint32_t TotalChunks() const { return SpecTotalChunks(spec_); }
  std::size_t ChunkSize(std::size_t block_size) const {
    return SpecChunkBytes(spec_, block_size);
  }
  double StorageOverhead() const {
    return static_cast<double>(TotalChunks()) /
           static_cast<double>(DataChunks());
  }
  /// MDS on whole chunks: any DataChunks() distinct chunks decode.
  bool AnyKDecodes() const { return SpecAnyKDecodes(spec_); }

  /// Erasures the family tolerates in the worst case (minimum distance
  /// minus one): r for RS/piggyback/replication; computed exhaustively
  /// for LRC.
  virtual std::uint32_t FaultTolerance() const = 0;

  /// Encodes a block into TotalChunks() chunks of ChunkSize(n) bytes.
  virtual std::vector<ChunkData> Encode(
      std::span<const std::uint8_t> block) const = 0;

  /// True iff the given distinct chunk indices determine the block.
  virtual bool CanDecode(std::span<const ChunkIndex> indices) const;

  /// Reconstructs the block, or nullopt when the chunks do not span it.
  virtual std::optional<std::vector<std::uint8_t>> TryDecode(
      std::span<const IndexedChunk> chunks, std::size_t block_size) const = 0;

  /// TryDecode that throws std::invalid_argument on an undecodable set.
  std::vector<std::uint8_t> Decode(std::span<const IndexedChunk> chunks,
                                   std::size_t block_size) const;

  /// True when decoding this chunk set is pure reassembly (no field
  /// arithmetic) — the simulator's decode-cost switch.
  virtual bool IsTrivialDecode(std::span<const ChunkIndex> indices) const;

  /// The cheapest plan that rebuilds `target` from (a subset of) the
  /// `available` surviving chunk indices, or nullopt when they cannot.
  /// `available` must not contain `target`; duplicates are ignored.
  virtual std::optional<RepairPlan> PlanRepair(
      ChunkIndex target, std::span<const ChunkIndex> available) const = 0;

  /// Rebuilds chunk `target` from source chunks covering one of its
  /// repair plans (extra sources are ignored). nullopt when the sources
  /// are insufficient.
  virtual std::optional<ChunkData> RepairChunk(
      ChunkIndex target, std::span<const IndexedChunk> sources,
      std::size_t block_size) const = 0;

 protected:
  /// Fallback repair for MDS-style families: decode, re-encode target.
  std::optional<ChunkData> DecodeAndReencode(
      ChunkIndex target, std::span<const IndexedChunk> sources,
      std::size_t block_size) const;

  CodecSpec spec_;
};

/// Builds a family for `spec` (validating it). Prefer GetCodecFamily.
std::unique_ptr<CodecFamily> MakeCodecFamily(const CodecSpec& spec);

/// Memoized, thread-safe registry: one shared immutable family instance
/// per spec, so the per-block lookup on the read path is a map probe.
std::shared_ptr<const CodecFamily> GetCodecFamily(const CodecSpec& spec);

}  // namespace ecstore
