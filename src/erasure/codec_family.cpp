#include "erasure/codec_family.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "erasure/linear_codec.h"
#include "gf/gf256.h"

namespace ecstore {

// ---------------------------------------------------------------------------
// Base-class behavior shared by the MDS families.
// ---------------------------------------------------------------------------

bool CodecFamily::CanDecode(std::span<const ChunkIndex> indices) const {
  // MDS default: any DataChunks() distinct valid chunks decode.
  std::vector<bool> seen(TotalChunks(), false);
  std::uint32_t distinct = 0;
  for (const ChunkIndex c : indices) {
    if (c >= TotalChunks() || seen[c]) continue;
    seen[c] = true;
    ++distinct;
  }
  return distinct >= DataChunks();
}

bool CodecFamily::IsTrivialDecode(std::span<const ChunkIndex> indices) const {
  for (const ChunkIndex c : indices) {
    if (c >= DataChunks()) return false;
  }
  return true;
}

std::vector<std::uint8_t> CodecFamily::Decode(
    std::span<const IndexedChunk> chunks, std::size_t block_size) const {
  auto block = TryDecode(chunks, block_size);
  if (!block) {
    throw std::invalid_argument(Name() + ": chunks do not decode the block");
  }
  return std::move(*block);
}

std::optional<ChunkData> CodecFamily::DecodeAndReencode(
    ChunkIndex target, std::span<const IndexedChunk> sources,
    std::size_t block_size) const {
  if (target >= TotalChunks()) return std::nullopt;
  const auto block = TryDecode(sources, block_size);
  if (!block) return std::nullopt;
  auto chunks = Encode(*block);
  return std::move(chunks[target]);
}

namespace {

// ---------------------------------------------------------------------------
// Replication: every chunk is a full copy.
// ---------------------------------------------------------------------------

class ReplicationFamily final : public CodecFamily {
 public:
  using CodecFamily::CodecFamily;

  std::uint32_t FaultTolerance() const override { return spec_.r; }

  std::vector<ChunkData> Encode(
      std::span<const std::uint8_t> block) const override {
    std::vector<ChunkData> chunks(TotalChunks());
    for (ChunkData& c : chunks) c.assign(block.begin(), block.end());
    return chunks;
  }

  std::optional<std::vector<std::uint8_t>> TryDecode(
      std::span<const IndexedChunk> chunks,
      std::size_t block_size) const override {
    for (const IndexedChunk& c : chunks) {
      if (c.index >= TotalChunks()) continue;
      if (c.data.size() != block_size) {
        throw std::invalid_argument("rep: chunk size mismatch");
      }
      return std::vector<std::uint8_t>(c.data.begin(), c.data.end());
    }
    return std::nullopt;
  }

  bool IsTrivialDecode(std::span<const ChunkIndex>) const override {
    return true;
  }

  std::optional<RepairPlan> PlanRepair(
      ChunkIndex target, std::span<const ChunkIndex> available) const override {
    if (target >= TotalChunks()) return std::nullopt;
    ChunkIndex best = TotalChunks();
    for (const ChunkIndex c : available) {
      if (c >= TotalChunks() || c == target) continue;
      best = std::min(best, c);
    }
    if (best == TotalChunks()) return std::nullopt;
    return RepairPlan{{{best, 1}}, 1};
  }

  std::optional<ChunkData> RepairChunk(ChunkIndex target,
                                       std::span<const IndexedChunk> sources,
                                       std::size_t block_size) const override {
    if (target >= TotalChunks()) return std::nullopt;
    for (const IndexedChunk& c : sources) {
      if (c.index >= TotalChunks() || c.index == target) continue;
      if (c.data.size() != block_size) continue;
      return c.data;
    }
    return std::nullopt;
  }
};

// ---------------------------------------------------------------------------
// Reed-Solomon: the MDS workhorse, wrapping the SIMD Cauchy codec.
// ---------------------------------------------------------------------------

class RsFamily final : public CodecFamily {
 public:
  explicit RsFamily(const CodecSpec& spec)
      : CodecFamily(spec), rs_(spec.k, spec.r) {}

  std::uint32_t FaultTolerance() const override { return spec_.r; }

  std::vector<ChunkData> Encode(
      std::span<const std::uint8_t> block) const override {
    return rs_.Encode(block);
  }

  std::optional<std::vector<std::uint8_t>> TryDecode(
      std::span<const IndexedChunk> chunks,
      std::size_t block_size) const override {
    // The strict MDS decoder rejects duplicates and out-of-range indices;
    // screen them out here so TryDecode only fails on a genuine shortage.
    std::vector<bool> seen(TotalChunks(), false);
    std::uint32_t distinct = 0;
    bool clean = true;
    for (const IndexedChunk& c : chunks) {
      if (c.index >= TotalChunks() || seen[c.index]) {
        clean = false;
        continue;
      }
      seen[c.index] = true;
      ++distinct;
    }
    if (distinct < DataChunks()) return std::nullopt;
    if (clean) return rs_.Decode(chunks, block_size);
    std::vector<IndexedChunk> cleaned;
    cleaned.reserve(distinct);
    std::fill(seen.begin(), seen.end(), false);
    for (const IndexedChunk& c : chunks) {
      if (c.index >= TotalChunks() || seen[c.index]) continue;
      seen[c.index] = true;
      cleaned.push_back(c);
    }
    return rs_.Decode(cleaned, block_size);
  }

  bool IsTrivialDecode(std::span<const ChunkIndex> indices) const override {
    return rs_.IsTrivialDecode(indices);
  }

  std::optional<RepairPlan> PlanRepair(
      ChunkIndex target, std::span<const ChunkIndex> available) const override {
    if (target >= TotalChunks()) return std::nullopt;
    std::vector<bool> have(TotalChunks(), false);
    for (const ChunkIndex c : available) {
      if (c < TotalChunks() && c != target) have[c] = true;
    }
    RepairPlan plan;
    plan.reads.reserve(DataChunks());
    // Ascending index prefers systematic chunks, keeping the rebuild a
    // near-reassembly when the data survives.
    for (ChunkIndex c = 0; c < TotalChunks(); ++c) {
      if (!have[c]) continue;
      plan.reads.push_back({c, 1});
      if (plan.reads.size() == DataChunks()) return plan;
    }
    return std::nullopt;
  }

  std::optional<ChunkData> RepairChunk(ChunkIndex target,
                                       std::span<const IndexedChunk> sources,
                                       std::size_t block_size) const override {
    return DecodeAndReencode(target, sources, block_size);
  }

 private:
  ReedSolomonCodec rs_;
};

// ---------------------------------------------------------------------------
// Azure-LRC(k, l, g): local XOR parities make single-chunk repair read a
// group instead of k chunks; decodability is pattern-dependent.
// ---------------------------------------------------------------------------

class AzureLrcFamily final : public CodecFamily {
 public:
  explicit AzureLrcFamily(const CodecSpec& spec)
      : CodecFamily(spec), lrc_(spec.k, spec.l, spec.r) {
    fault_tolerance_ = ComputeFaultTolerance();
  }

  std::uint32_t FaultTolerance() const override { return fault_tolerance_; }

  std::vector<ChunkData> Encode(
      std::span<const std::uint8_t> block) const override {
    return lrc_.Encode(block);
  }

  bool CanDecode(std::span<const ChunkIndex> indices) const override {
    return lrc_.codec().CanDecode(indices);
  }

  std::optional<std::vector<std::uint8_t>> TryDecode(
      std::span<const IndexedChunk> chunks,
      std::size_t block_size) const override {
    return lrc_.TryDecode(chunks, block_size);
  }

  std::optional<RepairPlan> PlanRepair(
      ChunkIndex target, std::span<const ChunkIndex> available) const override {
    if (target >= TotalChunks()) return std::nullopt;
    std::vector<bool> have(TotalChunks(), false);
    for (const ChunkIndex c : available) {
      if (c < TotalChunks() && c != target) have[c] = true;
    }
    // Cheap path: the target's whole local group survives.
    if (const auto local = lrc_.LocalRepairSet(target)) {
      const bool covered = std::all_of(local->begin(), local->end(),
                                       [&](ChunkIndex c) { return have[c]; });
      if (covered) {
        RepairPlan plan;
        plan.reads.reserve(local->size());
        for (const ChunkIndex c : *local) plan.reads.push_back({c, 1});
        return plan;
      }
    }
    // Fallback: whatever spanning k-subset a full decode would consume.
    std::vector<ChunkIndex> avail;
    avail.reserve(TotalChunks());
    for (ChunkIndex c = 0; c < TotalChunks(); ++c) {
      if (have[c]) avail.push_back(c);
    }
    const auto set = lrc_.codec().SelectDecodeSet(avail);
    if (!set) return std::nullopt;
    RepairPlan plan;
    plan.reads.reserve(set->size());
    for (const ChunkIndex c : *set) plan.reads.push_back({c, 1});
    return plan;
  }

  std::optional<ChunkData> RepairChunk(ChunkIndex target,
                                       std::span<const IndexedChunk> sources,
                                       std::size_t block_size) const override {
    if (target >= TotalChunks()) return std::nullopt;
    if (auto local = lrc_.RepairLocally(target, sources, block_size)) {
      return local;
    }
    return lrc_.codec().ReconstructChunk(sources, target, block_size);
  }

 private:
  /// Worst-case tolerated erasures, found by exhaustively erasing every
  /// t-subset until some pattern stops decoding. LRC is small (k+l+g is
  /// tens of chunks), so this stays cheap; absurd specs fall back to the
  /// guaranteed g.
  std::uint32_t ComputeFaultTolerance() const {
    const std::uint32_t n = TotalChunks();
    const std::uint32_t max_t = n - DataChunks();  // l + g
    double combos = 0, c = 1;
    for (std::uint32_t t = 1; t <= max_t; ++t) {
      c = c * (n - t + 1) / t;
      combos += c;
    }
    if (combos > 2e5) return spec_.r;

    std::vector<bool> gone(n, false);
    std::vector<ChunkIndex> survivors;
    const auto decodable_without = [&](const std::vector<std::uint32_t>& erased) {
      std::fill(gone.begin(), gone.end(), false);
      for (const std::uint32_t e : erased) gone[e] = true;
      survivors.clear();
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!gone[i]) survivors.push_back(i);
      }
      return lrc_.codec().CanDecode(survivors);
    };

    for (std::uint32_t t = 1; t <= max_t; ++t) {
      std::vector<std::uint32_t> pick(t);
      std::iota(pick.begin(), pick.end(), 0u);
      while (true) {
        if (!decodable_without(pick)) return t - 1;
        int i = static_cast<int>(t) - 1;
        while (i >= 0 && pick[i] == n - t + i) --i;
        if (i < 0) break;
        ++pick[i];
        for (std::size_t j = i + 1; j < t; ++j) pick[j] = pick[j - 1] + 1;
      }
    }
    return max_t;
  }

  LrcCodec lrc_;
  std::uint32_t fault_tolerance_ = 0;
};

// ---------------------------------------------------------------------------
// Piggybacked RS(k, r), sub-packetization 2 (Rashmi et al.'s piggyback
// framework): two RS substripes A and B share the stripe; parity j >= 1
// of substripe B additionally absorbs the XOR of the A-subchunks of
// piggy group j-1 (data chunk i rides group i % (r-1)). MDS on whole
// chunks; a lost data chunk repairs from k-1 B-halves + the clean
// parity's B-half + its group's A-halves + its piggy parity's B-half —
// (k + group) half-chunks instead of 2k.
// ---------------------------------------------------------------------------

gf::Matrix BuildPiggybackGenerator(std::uint32_t k, std::uint32_t r) {
  gf::Matrix m(k + r, k);
  for (std::uint32_t i = 0; i < k; ++i) m.At(i, i) = 1;
  // Cauchy parity rows with evaluation points disjoint from the data
  // points, as in BuildLrcGenerator: the stacked code is MDS.
  for (std::uint32_t t = 0; t < r; ++t) {
    for (std::uint32_t j = 0; j < k; ++j) {
      const gf::Elem x = static_cast<gf::Elem>(t);
      const gf::Elem y = static_cast<gf::Elem>(r + j);
      m.At(k + t, j) = gf::Inverse(gf::Add(x, y));
    }
  }
  return m;
}

class PiggybackRsFamily final : public CodecFamily {
 public:
  explicit PiggybackRsFamily(const CodecSpec& spec)
      : CodecFamily(spec),
        k_(spec.k),
        r_(spec.r),
        base_(BuildPiggybackGenerator(spec.k, spec.r)) {}

  std::uint32_t FaultTolerance() const override { return r_; }

  std::vector<ChunkData> Encode(
      std::span<const std::uint8_t> block) const override {
    const std::size_t sub = ChunkSize(block.size()) / 2;
    const std::size_t half_block = k_ * sub;
    // Substripe A carries block bytes [0, k*sub), B the rest (padded).
    std::vector<std::uint8_t> a(half_block, 0), b(half_block, 0);
    if (!block.empty()) {
      std::memcpy(a.data(), block.data(), std::min(half_block, block.size()));
    }
    if (block.size() > half_block) {
      std::memcpy(b.data(), block.data() + half_block,
                  block.size() - half_block);
    }
    std::vector<ChunkData> ea = base_.Encode(a);  // chunk size == sub
    std::vector<ChunkData> eb = base_.Encode(b);
    // Piggybacks: B-parity 1+p absorbs the XOR of group p's A-subchunks
    // (ea[i] is exactly data chunk i's A-half — systematic rows).
    for (std::uint32_t i = 0; i < k_; ++i) {
      gf::AddRegion(ea[i], eb[k_ + 1 + PiggyGroupOf(i)]);
    }
    std::vector<ChunkData> out(TotalChunks());
    for (std::uint32_t c = 0; c < TotalChunks(); ++c) {
      out[c] = std::move(ea[c]);
      out[c].insert(out[c].end(), eb[c].begin(), eb[c].end());
    }
    return out;
  }

  std::optional<std::vector<std::uint8_t>> TryDecode(
      std::span<const IndexedChunk> chunks,
      std::size_t block_size) const override {
    const std::size_t cs = ChunkSize(block_size);
    const std::size_t sub = cs / 2;
    const std::size_t half_block = k_ * sub;

    std::vector<const IndexedChunk*> sel;
    sel.reserve(k_);
    std::vector<bool> seen(TotalChunks(), false);
    for (const IndexedChunk& c : chunks) {
      if (c.index >= TotalChunks() || seen[c.index]) continue;
      if (c.data.size() != cs) {
        throw std::invalid_argument("pb: chunk size mismatch");
      }
      seen[c.index] = true;
      sel.push_back(&c);
      if (sel.size() == k_) break;
    }
    if (sel.size() < k_) return std::nullopt;

    // Substripe A decodes straight from the A-halves.
    std::vector<IndexedChunk> syms(k_);
    for (std::uint32_t i = 0; i < k_; ++i) {
      syms[i].index = sel[i]->index;
      syms[i].data.assign(sel[i]->data.begin(), sel[i]->data.begin() + sub);
    }
    const auto a_dec = base_.TryDecode(syms, half_block);
    if (!a_dec) return std::nullopt;  // Unreachable: k distinct MDS chunks.

    // Substripe B: peel each selected piggy parity's piggyback (now
    // computable from the decoded A-subchunks) before decoding.
    for (std::uint32_t i = 0; i < k_; ++i) {
      const ChunkIndex idx = sel[i]->index;
      syms[i].data.assign(sel[i]->data.begin() + sub, sel[i]->data.end());
      if (idx <= k_) continue;  // Data or the clean parity: no piggyback.
      const std::uint32_t group = idx - k_ - 1;
      for (std::uint32_t d = 0; d < k_; ++d) {
        if (PiggyGroupOf(d) != group) continue;
        gf::AddRegion(
            std::span<const std::uint8_t>(a_dec->data() + d * sub, sub),
            syms[i].data);
      }
    }
    const auto b_dec = base_.TryDecode(syms, half_block);
    if (!b_dec) return std::nullopt;

    std::vector<std::uint8_t> block(block_size, 0);
    std::memcpy(block.data(), a_dec->data(), std::min(half_block, block_size));
    if (block_size > half_block) {
      std::memcpy(block.data() + half_block, b_dec->data(),
                  block_size - half_block);
    }
    return block;
  }

  std::optional<RepairPlan> PlanRepair(
      ChunkIndex target, std::span<const ChunkIndex> available) const override {
    if (target >= TotalChunks()) return std::nullopt;
    std::vector<bool> have(TotalChunks(), false);
    for (const ChunkIndex c : available) {
      if (c < TotalChunks() && c != target) have[c] = true;
    }
    if (target < k_) {
      const std::uint32_t group = PiggyGroupOf(target);
      const ChunkIndex piggy = k_ + 1 + group;
      bool cheap = have[k_] && have[piggy];
      for (std::uint32_t d = 0; d < k_ && cheap; ++d) {
        if (d != target && !have[d]) cheap = false;
      }
      if (cheap) {
        RepairPlan plan;
        plan.chunk_subchunks = 2;
        plan.reads.reserve(k_ + 1);
        for (std::uint32_t d = 0; d < k_; ++d) {
          if (d == target) continue;
          // Group-mates contribute both halves (their A-half feeds the
          // piggyback peel, their B-half the substripe-B decode); the
          // rest only their B-half.
          plan.reads.push_back({d, PiggyGroupOf(d) == group ? 2u : 1u});
        }
        plan.reads.push_back({k_, 1});
        plan.reads.push_back({piggy, 1});
        return plan;
      }
    }
    // Parity repair, or a missing cheap source: whole-chunk MDS rebuild.
    RepairPlan plan;
    plan.chunk_subchunks = 2;
    plan.reads.reserve(k_);
    for (ChunkIndex c = 0; c < TotalChunks(); ++c) {
      if (!have[c]) continue;
      plan.reads.push_back({c, 2});
      if (plan.reads.size() == k_) return plan;
    }
    return std::nullopt;
  }

  std::optional<ChunkData> RepairChunk(ChunkIndex target,
                                       std::span<const IndexedChunk> sources,
                                       std::size_t block_size) const override {
    if (target >= TotalChunks()) return std::nullopt;
    const std::size_t cs = ChunkSize(block_size);
    const std::size_t sub = cs / 2;
    const std::size_t half_block = k_ * sub;

    std::vector<const IndexedChunk*> by_index(TotalChunks(), nullptr);
    for (const IndexedChunk& c : sources) {
      if (c.index >= TotalChunks() || c.index == target) continue;
      if (c.data.size() != cs) continue;
      if (!by_index[c.index]) by_index[c.index] = &c;
    }
    if (target >= k_) return DecodeAndReencode(target, sources, block_size);
    const std::uint32_t group = PiggyGroupOf(target);
    const ChunkIndex piggy = k_ + 1 + group;
    bool cheap = by_index[k_] && by_index[piggy];
    for (std::uint32_t d = 0; d < k_ && cheap; ++d) {
      if (d != target && !by_index[d]) cheap = false;
    }
    if (!cheap) return DecodeAndReencode(target, sources, block_size);

    // Substripe B decodes from k clean B-symbols: the other data chunks'
    // B-halves plus the un-piggybacked parity k's B-half.
    std::vector<IndexedChunk> syms;
    syms.reserve(k_);
    for (std::uint32_t d = 0; d < k_; ++d) {
      if (d == target) continue;
      syms.push_back({d, ChunkData(by_index[d]->data.begin() + sub,
                                   by_index[d]->data.end())});
    }
    syms.push_back({k_, ChunkData(by_index[k_]->data.begin() + sub,
                                  by_index[k_]->data.end())});
    const auto b_dec = base_.TryDecode(syms, half_block);
    if (!b_dec) return std::nullopt;  // Unreachable: k distinct MDS symbols.

    ChunkData out(cs, 0);
    std::memcpy(out.data() + sub, b_dec->data() + target * sub, sub);
    // The piggy parity's stored B-half is P^b + piggyback; re-encode P^b
    // from the decoded substripe, subtract, then peel the group-mates'
    // A-halves to leave the target's A-half.
    std::span<std::uint8_t> a_target(out.data(), sub);
    gf::AddRegion(
        std::span<const std::uint8_t>(by_index[piggy]->data.data() + sub, sub),
        a_target);
    for (std::uint32_t j = 0; j < k_; ++j) {
      gf::MulAddRegion(
          base_.generator().At(piggy, j),
          std::span<const std::uint8_t>(b_dec->data() + j * sub, sub),
          a_target);
    }
    for (std::uint32_t d = 0; d < k_; ++d) {
      if (d == target || PiggyGroupOf(d) != group) continue;
      gf::AddRegion(
          std::span<const std::uint8_t>(by_index[d]->data.data(), sub),
          a_target);
    }
    return out;
  }

 private:
  std::uint32_t PiggyGroupOf(ChunkIndex data) const {
    return data % (r_ - 1);
  }

  std::uint32_t k_, r_;
  LinearCodec base_;
};

}  // namespace

std::unique_ptr<CodecFamily> MakeCodecFamily(const CodecSpec& spec) {
  ValidateCodecSpec(spec);
  switch (spec.family) {
    case CodecFamilyId::kReplication:
      return std::make_unique<ReplicationFamily>(spec);
    case CodecFamilyId::kRs:
      return std::make_unique<RsFamily>(spec);
    case CodecFamilyId::kAzureLrc:
      return std::make_unique<AzureLrcFamily>(spec);
    case CodecFamilyId::kPiggybackRs:
      return std::make_unique<PiggybackRsFamily>(spec);
  }
  throw std::invalid_argument("MakeCodecFamily: unknown family");
}

std::shared_ptr<const CodecFamily> GetCodecFamily(const CodecSpec& spec) {
  static std::mutex mu;
  static std::map<std::uint64_t, std::shared_ptr<const CodecFamily>> cache;
  const std::uint64_t key = static_cast<std::uint64_t>(spec.family) |
                            (static_cast<std::uint64_t>(spec.k) << 8) |
                            (static_cast<std::uint64_t>(spec.r) << 24) |
                            (static_cast<std::uint64_t>(spec.l) << 40);
  {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  // Build outside the lock (the LRC constructor enumerates erasure
  // patterns); first insertion wins on a race.
  std::shared_ptr<const CodecFamily> fam = MakeCodecFamily(spec);
  std::lock_guard<std::mutex> lock(mu);
  return cache.try_emplace(key, std::move(fam)).first->second;
}

}  // namespace ecstore
