#include "common/codec_spec.h"

#include <cstdio>
#include <stdexcept>

namespace ecstore {

namespace {

/// Parses "name(a,b,c)" into up to 3 numbers; returns how many appeared.
std::size_t ParseArgs(const std::string& text, std::size_t open,
                      std::uint32_t out[3]) {
  if (open == std::string::npos) return 0;
  if (text.back() != ')') {
    throw std::invalid_argument("ParseCodecSpec: missing ')' in " + text);
  }
  std::size_t count = 0;
  std::size_t pos = open + 1;
  const std::size_t end = text.size() - 1;
  while (pos < end) {
    if (count == 3) {
      throw std::invalid_argument("ParseCodecSpec: too many parameters in " +
                                  text);
    }
    std::size_t digits = 0;
    std::uint64_t value = 0;
    while (pos < end && text[pos] >= '0' && text[pos] <= '9') {
      value = value * 10 + static_cast<std::uint64_t>(text[pos] - '0');
      ++digits;
      ++pos;
    }
    if (digits == 0 || value > 256) {
      throw std::invalid_argument("ParseCodecSpec: bad parameter in " + text);
    }
    out[count++] = static_cast<std::uint32_t>(value);
    if (pos < end) {
      if (text[pos] != ',') {
        throw std::invalid_argument("ParseCodecSpec: bad separator in " + text);
      }
      ++pos;
    }
  }
  return count;
}

}  // namespace

std::string CodecSpecName(const CodecSpec& spec) {
  char buf[48];
  switch (spec.family) {
    case CodecFamilyId::kReplication:
      std::snprintf(buf, sizeof(buf), "rep(%u)", spec.r);
      break;
    case CodecFamilyId::kRs:
      std::snprintf(buf, sizeof(buf), "rs(%u,%u)", spec.k, spec.r);
      break;
    case CodecFamilyId::kAzureLrc:
      std::snprintf(buf, sizeof(buf), "lrc(%u,%u,%u)", spec.k, spec.l, spec.r);
      break;
    case CodecFamilyId::kPiggybackRs:
      std::snprintf(buf, sizeof(buf), "pb(%u,%u)", spec.k, spec.r);
      break;
  }
  return buf;
}

void ValidateCodecSpec(const CodecSpec& spec) {
  const auto fail = [&](const char* why) {
    throw std::invalid_argument(std::string("CodecSpec ") +
                                CodecSpecName(spec) + ": " + why);
  };
  if (SpecTotalChunks(spec) > 256) fail("more than 256 chunks");
  switch (spec.family) {
    case CodecFamilyId::kReplication:
      if (spec.k != 1) fail("replication requires k == 1");
      if (spec.r < 1) fail("need at least one extra copy");
      break;
    case CodecFamilyId::kRs:
      if (spec.k < 2) fail("RS requires k >= 2");
      if (spec.r < 1) fail("RS requires r >= 1");
      if (spec.l != 0) fail("RS has no local groups");
      break;
    case CodecFamilyId::kAzureLrc:
      if (spec.l < 1 || spec.r < 1) fail("LRC requires l >= 1 and g >= 1");
      if (spec.k < 2 || spec.k % spec.l != 0) fail("LRC requires k % l == 0");
      break;
    case CodecFamilyId::kPiggybackRs:
      if (spec.k < 2) fail("piggyback RS requires k >= 2");
      if (spec.r < 2) fail("piggyback RS requires r >= 2 (one clean parity)");
      if (spec.l != 0) fail("piggyback RS has no local groups");
      break;
  }
}

CodecSpec ParseCodecSpec(const std::string& name) {
  const std::size_t open = name.find('(');
  const std::string head = name.substr(0, open);
  std::uint32_t args[3] = {0, 0, 0};
  const std::size_t n = ParseArgs(name, open, args);

  CodecSpec spec;
  if (head == "rs") {
    if (n != 2) throw std::invalid_argument("ParseCodecSpec: rs takes (k,r)");
    spec = {CodecFamilyId::kRs, args[0], args[1], 0};
  } else if (head == "lrc") {
    if (n != 3) throw std::invalid_argument("ParseCodecSpec: lrc takes (k,l,g)");
    spec = {CodecFamilyId::kAzureLrc, args[0], args[2], args[1]};
  } else if (head == "pb") {
    if (n != 2) throw std::invalid_argument("ParseCodecSpec: pb takes (k,r)");
    spec = {CodecFamilyId::kPiggybackRs, args[0], args[1], 0};
  } else if (head == "rep") {
    if (n != 1) throw std::invalid_argument("ParseCodecSpec: rep takes (r)");
    spec = {CodecFamilyId::kReplication, 1, args[0], 0};
  } else {
    throw std::invalid_argument("ParseCodecSpec: unknown family '" + name +
                                "' (want rs/lrc/pb/rep)");
  }
  ValidateCodecSpec(spec);
  return spec;
}

}  // namespace ecstore
