// Log-linear latency histogram (HDR-histogram style) with percentile
// queries, plus a small streaming summary for mean / confidence intervals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ecstore {

/// Records non-negative integer values (typically latencies in
/// microseconds) into logarithmically ranged, linearly subdivided buckets.
/// Relative quantile error is bounded by 1/kSubBuckets.
class Histogram {
 public:
  Histogram();

  /// Records one observation. Negative values are clamped to zero.
  void Record(std::int64_t value);

  /// Records `count` observations of the same value.
  void RecordMany(std::int64_t value, std::uint64_t count);

  /// Merges another histogram into this one.
  void Merge(const Histogram& other);

  std::uint64_t count() const { return count_; }
  std::int64_t min() const;
  std::int64_t max() const { return max_; }
  double Mean() const;

  /// Value at quantile q in [0, 1]; returns 0 for an empty histogram.
  std::int64_t Quantile(double q) const;

  /// Convenience percentile accessor, p in [0, 100].
  std::int64_t Percentile(double p) const { return Quantile(p / 100.0); }

  /// Fraction of recorded observations strictly above `value`, at bucket
  /// resolution (exact for values below kSubBuckets, within the relative
  /// error bound above). Returns 0 for an empty histogram. This is the
  /// straggler-probability primitive of the tail model (DESIGN.md §13).
  double FractionAbove(std::int64_t value) const;

  /// Emits "count mean p50 p95 p99 p999 max" for logs.
  std::string Summary() const;

  /// CDF sample points: returns (percentile, value) pairs for the given
  /// percentiles; used by the tail-latency figure benches.
  std::vector<std::pair<double, std::int64_t>> Cdf(
      const std::vector<double>& percentiles) const;

  void Clear();

 private:
  static constexpr int kSubBucketBits = 7;  // 128 sub-buckets => <1% error
  static constexpr std::size_t kSubBuckets = 1u << kSubBucketBits;

  static std::size_t BucketFor(std::uint64_t value);
  static std::int64_t BucketMidpoint(std::size_t index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Streaming mean/variance accumulator (Welford) with a 95% confidence
/// half-interval, mirroring the paper's "average of five runs with 95%
/// confidence intervals" methodology.
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  std::uint64_t count() const { return n_; }
  double Mean() const { return n_ ? mean_ : 0.0; }
  double Variance() const;
  double StdDev() const;

  /// Half-width of the 95% confidence interval around the mean, using the
  /// normal approximation (t-quantile 1.96; adequate for n >= 5 reporting).
  double ConfidenceHalfWidth95() const;

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
};

}  // namespace ecstore
