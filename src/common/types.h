// Core identifier and time types shared by every EC-Store module.
#pragma once

#include <cstdint>

namespace ecstore {

/// Identifies a logical block of user data (the unit of the put/get API).
using BlockId = std::uint64_t;

/// Identifies a storage site (a physical machine in the paper's testbed).
using SiteId = std::uint32_t;

/// Index of a chunk within a block's k+r encoded chunks.
/// Chunks [0, k) are the systematic data chunks; [k, k+r) are parity.
using ChunkIndex = std::uint32_t;

/// Simulated time in microseconds. All discrete-event simulation state
/// uses this unit; helpers below convert from human-friendly units.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;

/// Converts a SimTime duration to fractional milliseconds.
constexpr double ToMillis(SimTime t) { return static_cast<double>(t) / kMillisecond; }

/// Converts fractional milliseconds to SimTime.
constexpr SimTime FromMillis(double ms) { return static_cast<SimTime>(ms * kMillisecond); }

/// Converts fractional seconds to SimTime.
constexpr SimTime FromSeconds(double s) { return static_cast<SimTime>(s * kSecond); }

/// Sentinel for "no site".
constexpr SiteId kInvalidSite = static_cast<SiteId>(-1);

/// Sentinel for "no block".
constexpr BlockId kInvalidBlock = static_cast<BlockId>(-1);

}  // namespace ecstore
