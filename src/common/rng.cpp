#include "common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace ecstore {

std::uint64_t SplitMix64::Next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) {
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

Rng Rng::Split() {
  return Rng(Next() ^ 0xA5A5A5A5DEADBEEFULL);
}

// ---------------------------------------------------------------------------
// ZipfSampler: rejection-inversion after Hörmann & Derflinger (1996).
// ---------------------------------------------------------------------------

namespace {
// Computes (exp(x) - 1) / x with care near 0.
double ExpM1OverX(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x / 2.0;
}
// Computes log1p(x)/x with care near 0.
double Log1pOverX(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x / 2.0;
}
}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double exponent)
    : n_(n), s_(exponent) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be >= 1");
  if (exponent <= 0) throw std::invalid_argument("ZipfSampler: exponent must be > 0");
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

// H(x) = integral of x^-s: for s != 1, (x^(1-s) - 1)/(1-s); for s == 1, ln x.
// Implemented via helpers that stay stable as s -> 1.
double ZipfSampler::H(double x) const {
  const double log_x = std::log(x);
  return ExpM1OverX((1.0 - s_) * log_x) * log_x;
}

double ZipfSampler::HInverse(double x) const {
  const double t = x * (1.0 - s_);
  if (t < -1.0) {
    // Numerical guard; maps to the smallest value.
    return 1.0;
  }
  return std::exp(Log1pOverX(t) * x);
}

std::uint64_t ZipfSampler::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= threshold_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s_)) {
      return k;
    }
  }
}

// ---------------------------------------------------------------------------
// BoundedParetoSampler
// ---------------------------------------------------------------------------

BoundedParetoSampler::BoundedParetoSampler(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi) {
  if (alpha <= 0) throw std::invalid_argument("BoundedPareto: alpha must be > 0");
  if (lo <= 0 || hi <= lo) throw std::invalid_argument("BoundedPareto: need 0 < lo < hi");
  lo_pow_ = std::pow(lo_, -alpha_);
  hi_pow_ = std::pow(hi_, -alpha_);
}

double BoundedParetoSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  // Inverse CDF of the bounded Pareto.
  return std::pow(lo_pow_ - u * (lo_pow_ - hi_pow_), -1.0 / alpha_);
}

std::uint64_t BoundedParetoSampler::SampleInt(Rng& rng) const {
  return static_cast<std::uint64_t>(Sample(rng) + 0.5);
}

double BoundedParetoSampler::Median() const {
  return std::pow(lo_pow_ - 0.5 * (lo_pow_ - hi_pow_), -1.0 / alpha_);
}

// ---------------------------------------------------------------------------
// Weighted sampling without replacement (Efraimidis–Spirakis keys).
// ---------------------------------------------------------------------------

std::vector<std::size_t> WeightedSampleWithoutReplacement(
    Rng& rng, const std::vector<double>& weights, std::size_t count) {
  // key_i = u_i^(1/w_i); take the `count` largest keys. Zero/negative
  // weights are never selected unless there are not enough positives.
  struct Keyed {
    double key;
    std::size_t index;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i];
    double key;
    if (w > 0) {
      double u;
      do {
        u = rng.NextDouble();
      } while (u <= 0.0);
      key = std::pow(u, 1.0 / w);
    } else {
      key = -1.0;  // Sorts after every valid key.
    }
    keyed.push_back({key, i});
  }
  if (count > keyed.size()) count = keyed.size();
  std::partial_sort(keyed.begin(), keyed.begin() + static_cast<std::ptrdiff_t>(count),
                    keyed.end(),
                    [](const Keyed& a, const Keyed& b) { return a.key > b.key; });
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (keyed[i].key < 0) break;  // Ran out of positive weights.
    out.push_back(keyed[i].index);
  }
  return out;
}

}  // namespace ecstore
