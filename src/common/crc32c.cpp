#include "common/crc32c.h"

#include <array>

namespace ecstore {

namespace {

constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  // table[s][b]: CRC of byte b advanced through s+1 zero bytes — the
  // standard slice-by-8 construction.
  std::array<std::array<std::uint32_t, 256>, 8> t;

  Tables() {
    for (std::uint32_t b = 0; b < 256; ++b) {
      std::uint32_t crc = b;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][b] = crc;
    }
    for (std::size_t s = 1; s < 8; ++s) {
      for (std::uint32_t b = 0; b < 256; ++b) {
        t[s][b] = (t[s - 1][b] >> 8) ^ t[0][t[s - 1][b] & 0xFF];
      }
    }
  }
};

const Tables& tables() {
  static const Tables kTables;  // thread-safe magic-static init
  return kTables;
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  const Tables& tb = tables();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;

  // Process 8 bytes per step via slice-by-8.
  while (len >= 8) {
    const std::uint32_t lo = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                    static_cast<std::uint32_t>(p[1]) << 8 |
                                    static_cast<std::uint32_t>(p[2]) << 16 |
                                    static_cast<std::uint32_t>(p[3]) << 24);
    crc = tb.t[7][lo & 0xFF] ^ tb.t[6][(lo >> 8) & 0xFF] ^
          tb.t[5][(lo >> 16) & 0xFF] ^ tb.t[4][lo >> 24] ^ tb.t[3][p[4]] ^
          tb.t[2][p[5]] ^ tb.t[1][p[6]] ^ tb.t[0][p[7]];
    p += 8;
    len -= 8;
  }
  while (len--) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace ecstore
