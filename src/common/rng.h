// Deterministic pseudo-random number generation and the sampling
// distributions used by the workload generators and the cluster simulator.
//
// Everything here is seedable and self-contained so that a simulation run
// is bit-reproducible for a given seed (DESIGN.md §5 "Determinism").
#pragma once

#include <cstdint>
#include <vector>

namespace ecstore {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next();

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the base generator for all simulation randomness.
/// Small, fast, and high quality; satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return Next(); }

  std::uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// nearly-divisionless unbiased technique.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Exponentially distributed sample with the given mean (> 0).
  double NextExponential(double mean);

  /// Standard normal via Marsaglia polar method.
  double NextGaussian();

  /// Log-normal sample parameterized by the *underlying* normal's mu and
  /// sigma. Used for heavy-tailed service-time jitter in the simulator.
  double NextLogNormal(double mu, double sigma);

  /// Creates an independent stream (for per-client RNGs) by jumping the
  /// seed through SplitMix64.
  Rng Split();

 private:
  std::uint64_t s_[4];
};

/// Zipf(N, s) sampler over {1, ..., N} with exponent s > 0, using
/// Hörmann & Derflinger rejection-inversion: O(1) memory and O(1)
/// expected time per sample, so it scales to the paper's 1M-block
/// keyspace without a precomputed CDF.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double exponent);

  /// Returns a rank in [1, n]; rank 1 is the most popular.
  std::uint64_t Sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double exponent() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  std::uint64_t n_;
  double s_;
  double h_x1_;       // H(1.5) - 1
  double h_n_;        // H(n + 0.5)
  double threshold_;  // rejection threshold
};

/// Discrete bounded Pareto (power-law) sampler over [lo, hi], used for
/// Wikipedia image sizes and images-per-page counts, both of which the
/// paper describes as power-law distributed.
class BoundedParetoSampler {
 public:
  /// alpha > 0 is the tail exponent; lo >= 1; hi > lo.
  BoundedParetoSampler(double alpha, double lo, double hi);

  double Sample(Rng& rng) const;
  std::uint64_t SampleInt(Rng& rng) const;

  /// The distribution's median, handy for calibrating generators against
  /// the paper's published medians (10 images/page, 500 KB images).
  double Median() const;

 private:
  double alpha_, lo_, hi_;
  double lo_pow_, hi_pow_;
};

/// Weighted sampling without replacement from a fixed set of weights.
/// Used by the chunk mover to probabilistically pick candidate blocks by
/// access likelihood (Algorithm 1, line 1).
std::vector<std::size_t> WeightedSampleWithoutReplacement(
    Rng& rng, const std::vector<double>& weights, std::size_t count);

}  // namespace ecstore
