#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace ecstore {

Histogram::Histogram() = default;

std::size_t Histogram::BucketFor(std::uint64_t value) {
  // Values below kSubBuckets map 1:1; above that, each power-of-two range
  // is split into kSubBuckets/2 linear sub-buckets.
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - (kSubBucketBits - 1);
  const std::size_t sub = static_cast<std::size_t>(value >> shift);  // in [kSubBuckets/2, kSubBuckets)
  const std::size_t range = static_cast<std::size_t>(shift);
  return range * (kSubBuckets / 2) + sub + kSubBuckets / 2;
}

std::int64_t Histogram::BucketMidpoint(std::size_t index) {
  if (index < kSubBuckets) return static_cast<std::int64_t>(index);
  const std::size_t adjusted = index - kSubBuckets / 2;
  const std::size_t range = adjusted / (kSubBuckets / 2) - 1;
  const std::size_t sub = adjusted - range * (kSubBuckets / 2);
  const std::uint64_t lo = static_cast<std::uint64_t>(sub) << range;
  const std::uint64_t width = 1ull << range;
  return static_cast<std::int64_t>(lo + width / 2);
}

void Histogram::Record(std::int64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(std::int64_t value, std::uint64_t count) {
  if (count == 0) return;
  if (value < 0) value = 0;
  const std::size_t idx = BucketFor(static_cast<std::uint64_t>(value));
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  buckets_[idx] += count;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) buckets_.resize(other.buckets_.size(), 0);
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

std::int64_t Histogram::min() const { return count_ ? min_ : 0; }

double Histogram::Mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::int64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return std::clamp(BucketMidpoint(i), min(), max_);
    }
  }
  return max_;
}

double Histogram::FractionAbove(std::int64_t value) const {
  if (count_ == 0) return 0.0;
  if (value < 0) value = 0;
  if (value >= max_) return 0.0;
  std::uint64_t above = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] > 0 && BucketMidpoint(i) > value) above += buckets_[i];
  }
  return static_cast<double>(above) / static_cast<double>(count_);
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << Mean() << " p50=" << Percentile(50)
     << " p95=" << Percentile(95) << " p99=" << Percentile(99)
     << " p999=" << Percentile(99.9) << " max=" << max_;
  return os.str();
}

std::vector<std::pair<double, std::int64_t>> Histogram::Cdf(
    const std::vector<double>& percentiles) const {
  std::vector<std::pair<double, std::int64_t>> out;
  out.reserve(percentiles.size());
  for (double p : percentiles) out.emplace_back(p, Percentile(p));
  return out;
}

void Histogram::Clear() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

void RunningStat::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double total = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  n_ += other.n_;
}

double RunningStat::Variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::StdDev() const { return std::sqrt(Variance()); }

double RunningStat::ConfidenceHalfWidth95() const {
  if (n_ < 2) return 0.0;
  return 1.96 * StdDev() / std::sqrt(static_cast<double>(n_));
}

}  // namespace ecstore
