// Minimal --key=value command-line parser used by the benchmark and
// example binaries so paper-scale parameters can be overridden without
// recompiling (DESIGN.md §2, "scaled parameters ... CLI overrides").
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace ecstore {

/// Parses flags of the form --name=value (or bare --name for booleans).
/// Unrecognized positional arguments are ignored. Typical use:
///
///   Flags flags(argc, argv);
///   const int sites = flags.GetInt("sites", 32);
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name, const std::string& def) const;
  std::int64_t GetInt(const std::string& name, std::int64_t def) const;
  double GetDouble(const std::string& name, double def) const;
  bool GetBool(const std::string& name, bool def) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace ecstore
