// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78): the
// end-to-end chunk checksum of the robustness layer (DESIGN.md §9).
//
// Every chunk is checksummed at encode/Put time and verified on every
// fetch; a mismatch converts the chunk into an erasure so silent media
// corruption can never reach a client. Software slice-by-8 implementation
// (~1 byte/cycle), table-initialized at first use, thread-safe after that.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ecstore {

/// CRC32C of `data[0, len)`, continuing from `seed` (pass 0 for a fresh
/// checksum; chain calls by passing the previous return value).
std::uint32_t Crc32c(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace ecstore
