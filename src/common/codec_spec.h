// CodecSpec: the per-block codec-family identifier (DESIGN.md §11).
//
// The paper treats coding schemes as orthogonal to placement and access
// (Section VII); this value type is the seam that lets families coexist
// in one cluster. It lives in ec_common — below the erasure library — so
// the catalog (cluster/state.h) and the placement layer can reason about
// chunk roles (data / local parity / global parity), placement groups,
// and chunk sizing without linking GF arithmetic. The arithmetic itself
// (encode / decode / repair plans) lives behind the CodecFamily interface
// in erasure/codec_family.h, keyed by this spec.
//
// Families:
//   kReplication  (r+1)-way replication; k is 1 by convention.
//   kRs           systematic Cauchy Reed-Solomon RS(k, r). MDS.
//   kAzureLrc     Azure-LRC(k, l, r): k data chunks in l local groups
//                 with one XOR parity each, plus r global Cauchy
//                 parities. Layout: [0,k) data, [k,k+l) locals,
//                 [k+l,k+l+r) globals. NOT any-k decodable.
//   kPiggybackRs  piggybacked RS(k, r) with sub-packetization 2: a
//                 regenerating-style code (Rashmi et al.) that repairs a
//                 lost data chunk from half-chunks. MDS on whole chunks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.h"

namespace ecstore {

enum class CodecFamilyId : std::uint8_t {
  kReplication = 0,
  kRs = 1,
  kAzureLrc = 2,
  kPiggybackRs = 3,
};

/// Compact, trivially copyable description of one block's coding scheme.
/// `r` counts the Reed-Solomon-style parities (global parities for LRC;
/// extra copies for replication); `l` is the LRC local-group count and 0
/// for every other family.
struct CodecSpec {
  CodecFamilyId family = CodecFamilyId::kRs;
  std::uint32_t k = 2;
  std::uint32_t r = 2;
  std::uint32_t l = 0;

  friend bool operator==(const CodecSpec&, const CodecSpec&) = default;
};

/// Total chunks a block of this spec stores (k+r, k+l+r for LRC, r+1
/// copies for replication).
constexpr std::uint32_t SpecTotalChunks(const CodecSpec& spec) {
  switch (spec.family) {
    case CodecFamilyId::kReplication:
      return spec.r + 1;
    case CodecFamilyId::kAzureLrc:
      return spec.k + spec.l + spec.r;
    default:
      return spec.k + spec.r;
  }
}

/// Chunks needed to reconstruct the block (the access-path "k").
constexpr std::uint32_t SpecDataChunks(const CodecSpec& spec) {
  return spec.family == CodecFamilyId::kReplication ? 1 : spec.k;
}

/// Bytes per chunk for a block of `block_bytes`. The piggybacked family
/// sub-packetizes each chunk into two subchunks, so its chunk size is
/// rounded to an even split of 2k subchunks.
constexpr std::uint64_t SpecChunkBytes(const CodecSpec& spec,
                                       std::uint64_t block_bytes) {
  switch (spec.family) {
    case CodecFamilyId::kReplication:
      return block_bytes;
    case CodecFamilyId::kPiggybackRs: {
      const std::uint64_t denom = 2ull * spec.k;
      return 2 * ((block_bytes + denom - 1) / denom);
    }
    default:
      return (block_bytes + spec.k - 1) / spec.k;
  }
}

/// True when ANY SpecDataChunks() distinct chunks decode the block (the
/// MDS property every pre-existing consumer assumed). False only for
/// LRC, whose local parities cover just their own group.
constexpr bool SpecAnyKDecodes(const CodecSpec& spec) {
  return spec.family != CodecFamilyId::kAzureLrc;
}

/// True when `chunk` belongs to the set from which any k chunks decode —
/// the candidates a normal read plan may select. For LRC the punctured
/// code {data ∪ global parities} is MDS (identity + Cauchy rows), so
/// normal reads skip the local parities [k, k+l), which exist for repair
/// and degraded fallback only (exactly Azure's usage). Every other
/// family admits all chunks.
constexpr bool IsPlanReadCandidate(const CodecSpec& spec, ChunkIndex chunk) {
  if (spec.family != CodecFamilyId::kAzureLrc) return true;
  return chunk < spec.k || chunk >= spec.k + spec.l;
}

/// Placement group of a chunk, if the family has repair locality worth
/// protecting: chunks sharing a group participate in the same cheap
/// repair plan, so group-aware placement spreads them across failure
/// domains (an LRC local group must never co-locate). Globals / plain
/// RS / replication chunks belong to no group.
constexpr std::optional<std::uint32_t> PlacementGroupOf(const CodecSpec& spec,
                                                        ChunkIndex chunk) {
  switch (spec.family) {
    case CodecFamilyId::kAzureLrc:
      if (chunk < spec.k) return chunk / (spec.k / spec.l);
      if (chunk < spec.k + spec.l) return chunk - spec.k;
      return std::nullopt;  // Global parity.
    case CodecFamilyId::kPiggybackRs:
      // Data chunk i rides piggy group i % (r-1); piggy parity k+1+p
      // carries group p's piggyback. Parity k (the un-piggybacked row)
      // joins every repair, so it has no single group.
      if (spec.r < 2) return std::nullopt;
      if (chunk < spec.k) return chunk % (spec.r - 1);
      if (chunk > spec.k && chunk < spec.k + spec.r) return chunk - spec.k - 1;
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

/// True when PlacementGroupOf can return a group for some chunk.
constexpr bool SpecHasPlacementGroups(const CodecSpec& spec) {
  return spec.family == CodecFamilyId::kAzureLrc ||
         (spec.family == CodecFamilyId::kPiggybackRs && spec.r >= 2);
}

/// Canonical name: "rs(6,3)", "lrc(6,2,2)" (k,l,g), "pb(6,3)", "rep(2)".
std::string CodecSpecName(const CodecSpec& spec);

/// Parses CodecSpecName output (and bare "rs"/"pb"/"rep" with defaults).
/// Validates family-specific constraints; throws std::invalid_argument.
CodecSpec ParseCodecSpec(const std::string& name);

/// Throws std::invalid_argument unless the spec is well-formed (k/r/l
/// bounds, k % l == 0 for LRC, r >= 2 for piggyback, <= 256 chunks).
void ValidateCodecSpec(const CodecSpec& spec);

}  // namespace ecstore
