// A minimal fixed-size thread pool for background control-plane work
// (deferred ILP solves, DESIGN.md §10). Jobs are opaque closures; the
// pool guarantees each submitted job runs exactly once, in FIFO order
// per pickup (not globally ordered across workers). Destruction drains
// the queue: every job submitted before the destructor runs completes
// before the threads join, so jobs may safely reference objects that
// outlive the pool in declaration order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ecstore {

class WorkerPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit WorkerPool(std::size_t threads);
  /// Drains all queued jobs, then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Enqueues one job. Safe from any thread, including from inside a
  /// running job.
  void Submit(std::function<void()> job);

  /// Blocks until the queue is empty and no worker is mid-job. Jobs
  /// submitted by running jobs are waited for too.
  void WaitIdle();

  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // Workers: "there is work (or stop)".
  std::condition_variable idle_cv_;  // WaitIdle: "queue empty, all idle".
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ecstore
