#include "common/worker_pool.h"

#include <algorithm>
#include <utility>

namespace ecstore {

WorkerPool::WorkerPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void WorkerPool::WaitIdle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      // stop_ set and nothing left: drained, exit.
      return;
    }
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lk.unlock();
    job();
    lk.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace ecstore
