#include "core/local_store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <stdexcept>
#include <utility>

namespace ecstore {

namespace {

/// Per-block progress of one parallel fetch round. Flat vectors instead
/// of node-based sets: a block has at most k+r chunk indices, so linear
/// membership scans over a pre-reserved vector beat heap-allocating set
/// nodes on this per-fetch hot path.
struct BlockGather {
  std::uint32_t k = 0;              // completion threshold (first k win)
  bool done = false;                // decodable set delivered
  std::vector<IndexedChunk> got;    // delivered chunks
  std::vector<ChunkIndex> have;     // chunk indices present in `got`
  std::vector<ChunkIndex> tried;    // chunk indices ever issued
  /// Set only for non-any-k families (LRC): completion then requires the
  /// delivered set to actually decode, not merely count k. Null keeps
  /// the MDS fast path: k distinct arrivals complete the block.
  std::shared_ptr<const CodecFamily> family;

  bool Have(ChunkIndex c) const {
    return std::find(have.begin(), have.end(), c) != have.end();
  }
  bool Tried(ChunkIndex c) const {
    return std::find(tried.begin(), tried.end(), c) != tried.end();
  }
  bool Complete() const {
    return got.size() >= k && (family == nullptr || family->CanDecode(have));
  }
};

/// Shared between the requesting thread and the fetch workers. Jobs hold
/// a shared_ptr so the context (and its mutex) outlives an abandoned
/// request with stragglers still queued. Blocks are indexed by demand
/// order (jobs carry the index), so workers never do a map lookup.
struct FetchContext {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<BlockGather> blocks;  // parallel to the request's demands
  std::size_t unsatisfied = 0;  // blocks still short of k
  std::size_t outstanding = 0;  // fetches not yet completed
  bool harvested = false;       // results collected; late arrivals dropped
  DataPlane::CancelToken cancel =
      std::make_shared<std::atomic<bool>>(false);
};

/// Releases an admission token on scope exit — the exception-safe pair
/// of AdmissionController::TryAdmit (DESIGN.md §14).
struct AdmissionRelease {
  AdmissionController* admission = nullptr;
  ~AdmissionRelease() {
    if (admission) admission->Release();
  }
};

}  // namespace

// ---------------------------------------------------------------------------

LocalECStore::LocalECStore(ECStoreConfig config)
    : config_(config),
      rng_(config.seed),
      state_(config.num_sites),
      control_plane_(
          &config_, &state_, &rng_,
          // Executor seam: deferred ILP solves queue up and run once the
          // request has been answered — never on the MultiGet fast path.
          // May fire while a control-plane shard lock is held, so it only
          // touches the queue lock (or the pool's): the unit itself runs
          // later and self-synchronizes.
          [this](ControlPlane::Deferred work) {
            if (bg_pool_) {
              bg_pool_->Submit(std::move(work));
              return;
            }
            std::lock_guard<std::mutex> lock(defer_mu_);
            deferred_.push_back(std::move(work));
          }),
      reads_at_last_refresh_(config.num_sites, 0) {
  default_spec_ = config_.BlockCodec();
  family_ = GetCodecFamily(default_spec_);
  nodes_.reserve(config_.num_sites);
  for (std::size_t j = 0; j < config_.num_sites; ++j) {
    nodes_.push_back(std::make_unique<StorageNode>());
  }
  // The maintenance tick polls this under meta_mu_; its reconstructor
  // rebuilds real bytes through the same logic RepairSite exposes.
  repair_ = std::make_unique<RepairService>(
      &config_, &state_, &control_plane_,
      [this](SiteId site) { return RepairSiteLocked(site); });
  if (config_.ilp_executor_threads > 0) {
    bg_pool_ = std::make_unique<WorkerPool>(config_.ilp_executor_threads);
  }
  // Latency tier (DESIGN.md §12). With the defaults (capacity 0, budget
  // 0) none of this exists and the request path is byte-identical to the
  // cacheless store.
  if (config_.cache_capacity_bytes > 0) {
    cache_ = std::make_unique<BlockCache>(config_.cache_capacity_bytes);
    // Eager coherence: every plan invalidation (move, delete, repair,
    // degraded replan) also evicts the block's decoded bytes. The
    // version check at Lookup remains the correctness backstop.
    control_plane_.set_invalidation_listener(
        [this](BlockId block) { cache_->Invalidate(block); });
    if (config_.cache_prefetch) {
      prefetch_cancel_ = std::make_shared<std::atomic<bool>>(false);
      prefetch_pool_ = std::make_unique<WorkerPool>(
          std::max<std::size_t>(1, config_.prefetch_threads));
    }
  }
  if (config_.replica_budget_bytes > 0) {
    ReplicaPromoter::Params pp;
    pp.budget_bytes = config_.replica_budget_bytes;
    pp.replica_copies = config_.replica_copies;
    pp.promote_min_frequency = config_.promote_min_frequency;
    pp.demote_frequency = config_.demote_frequency;
    pp.max_promotions_per_round = config_.promote_per_round;
    pp.max_block_bytes = config_.promote_max_block_bytes;
    promoter_ = std::make_unique<ReplicaPromoter>(pp);
  }
  // Overload control (DESIGN.md §14): constructed only when some
  // feature is on; a null pointer everywhere is what guarantees the
  // default config's request path is byte-identical to a build without
  // the subsystem.
  if (config_.overload.Enabled()) {
    overload_ =
        std::make_unique<OverloadControl>(config_.num_sites, config_.overload);
    control_plane_.set_overload_control(overload_.get());
  }
  DataPlane::SojournObserver sojourn;
  if (overload_ && overload_->admission()) {
    // Per-site queue sojourns feed the CoDel admission signal. The
    // observer outlives every worker call: data_plane_ is declared after
    // overload_ and torn down first.
    sojourn = [this](double sojourn_ms) {
      overload_->admission()->RecordSojourn(sojourn_ms, NowMs());
    };
  }
  data_plane_ = std::make_unique<DataPlane>(
      config_.num_sites, config_.data_plane, std::move(sojourn));
}

LocalECStore::~LocalECStore() {
  StopMaintenance();
  // Queued prefetch fills drain in the pool destructor; the cancel flag
  // turns each into a no-op so teardown is prompt.
  if (prefetch_cancel_) prefetch_cancel_->store(true, std::memory_order_release);
}

void LocalECStore::WaitForPrefetches() {
  if (prefetch_pool_) prefetch_pool_->WaitIdle();
}

std::shared_ptr<const CodecFamily> LocalECStore::FamilyFor(
    const CodecSpec& spec) const {
  if (spec == default_spec_) return family_;
  return GetCodecFamily(spec);
}

void LocalECStore::StoreEncoded(BlockId id, std::span<const std::uint8_t> data,
                                const CodecSpec& spec,
                                std::span<const SiteId> sites) {
  const auto family = FamilyFor(spec);
  std::vector<ChunkData> chunks = family->Encode(data);
  if (sites.size() != chunks.size()) {
    throw std::runtime_error("LocalECStore::Put: wrong site count");
  }
  state_.AddBlock(id, data.size(), family->ChunkSize(data.size()), spec, sites);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    // A node that crashed after planning drops the write (returns false):
    // the block is committed with a redundancy hole at that site, which
    // the scrubber or repair service heals once the failure is detected.
    nodes_[sites[i]]->PutChunk(id, static_cast<ChunkIndex>(i),
                               std::move(chunks[i]));
  }
}

void LocalECStore::Put(BlockId id, std::span<const std::uint8_t> data) {
  Put(id, data, default_spec_);
}

void LocalECStore::Put(BlockId id, std::span<const std::uint8_t> data,
                       const CodecSpec& spec) {
  // Admission gate (DESIGN.md §14): writes compete for the same tokens
  // as reads. The explicit-sites Put overload stays ungated — it is the
  // bulk-load/parity seam, not client traffic.
  AdmissionRelease release;
  if (overload_ && overload_->gate_enabled()) {
    if (!overload_->admission()->TryAdmit(NowMs())) throw RequestShedError();
    release.admission = overload_->admission();
  }
  std::lock_guard<std::mutex> lock(meta_mu_);
  const std::vector<SiteId> sites = control_plane_.SelectWriteSites(spec);
  if (sites.empty()) {
    throw std::runtime_error("LocalECStore::Put: not enough available sites");
  }
  StoreEncoded(id, data, spec, sites);
}

void LocalECStore::Put(BlockId id, std::span<const std::uint8_t> data,
                       std::span<const SiteId> sites) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  StoreEncoded(id, data, default_spec_, sites);
}

std::vector<std::uint8_t> LocalECStore::Get(BlockId id) {
  const std::vector<BlockId> one = {id};
  return std::move(MultiGet(one)[0]);
}

std::vector<std::vector<IndexedChunk>> LocalECStore::FetchChunks(
    const AccessPlan& plan, std::span<const BlockDemand> demands,
    std::vector<BlockMeta>& meta,
    std::chrono::steady_clock::time_point deadline) {
  auto ctx = std::make_shared<FetchContext>();

  // Block id -> demand index, sorted once so plan reads resolve with a
  // binary search instead of a map.
  std::vector<std::pair<BlockId, std::size_t>> index;
  index.reserve(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    index.emplace_back(demands[i].block, i);
  }
  std::sort(index.begin(), index.end());
  const auto index_of = [&index](BlockId block) {
    const auto it = std::lower_bound(
        index.begin(), index.end(), block,
        [](const auto& e, BlockId b) { return e.first < b; });
    return it->second;  // Plan reads only reference demanded blocks.
  };

  // Enqueue one data-plane job per fetch. The caller must hold ctx->mu
  // and have bumped `outstanding` / recorded `tried` beforehand. Workers
  // touch only the context, the node, and their own queue — never the
  // store's metadata lock. The node read goes through FetchChunk: the
  // error-injected, checksum-verified data path, where a corrupt chunk or
  // a transient I/O error surfaces as a miss.
  const auto issue = [this, &ctx, deadline](std::size_t gi, BlockId block,
                                            ChunkIndex chunk, SiteId site) {
    StorageNode* node = nodes_[site].get();
    data_plane_->Submit(
        site,
        [ctx, node, gi, block, chunk](bool cancelled) {
          std::shared_ptr<const ChunkData> data;
          if (!cancelled) {
            bool skip;  // Block already complete: ignore the straggler.
            {
              std::lock_guard<std::mutex> lock(ctx->mu);
              const BlockGather& g = ctx->blocks[gi];
              skip = ctx->harvested || g.done;
            }
            // A failed node, a moved/deleted chunk, a checksum mismatch,
            // or an injected I/O error answers nullptr — a miss, routed
            // into the retry rounds / degraded top-up, not an error.
            if (!skip) data = node->FetchChunk(block, chunk);
          }
          std::lock_guard<std::mutex> lock(ctx->mu);
          BlockGather& g = ctx->blocks[gi];
          if (data != nullptr && !ctx->harvested && !g.done &&
              !g.Have(chunk)) {
            g.have.push_back(chunk);
            g.got.push_back({chunk, *data});
            // An MDS block completes on its first k arrivals; a non-any-k
            // block (LRC) completes when the delivered set decodes.
            if (g.Complete()) {
              g.done = true;
              if (--ctx->unsatisfied == 0) {
                // Every block is complete: still-queued fetches are
                // stragglers — cancel them at the queue.
                ctx->cancel->store(true, std::memory_order_release);
              }
            }
          }
          --ctx->outstanding;
          ctx->cv.notify_all();
        },
        ctx->cancel, deadline);
  };

  {
    std::lock_guard<std::mutex> lock(ctx->mu);
    ctx->blocks.resize(demands.size());
    for (std::size_t i = 0; i < demands.size(); ++i) {
      BlockGather& g = ctx->blocks[i];
      g.k = meta[i].k;
      if (!meta[i].family->AnyKDecodes()) g.family = meta[i].family;
      g.got.reserve(g.k);
      g.have.reserve(meta[i].locations.size());
      g.tried.reserve(meta[i].locations.size());
    }
    ctx->unsatisfied = ctx->blocks.size();
    for (const ChunkRead& read : plan.reads) {
      const std::size_t gi = index_of(read.block);
      BlockGather& g = ctx->blocks[gi];
      if (!g.Tried(read.chunk)) g.tried.push_back(read.chunk);
      ++ctx->outstanding;
      issue(gi, read.block, read.chunk, read.site);
    }
  }

  // Wait for the race to settle, then run bounded retry rounds for blocks
  // still short of k (DESIGN.md §9). Round 1 is the hedge: it fires when
  // the per-fetch deadline expires (or when every fetch already finished
  // short) and issues each short block's *untried* chunks. Later rounds —
  // enabled by raising retry.max_retries — wait a jittered exponential
  // backoff and re-issue everything undelivered, re-rolling transient
  // errors, until the rounds or the request's deadline budget run out.
  const double deadline_ms = config_.data_plane.fetch_deadline_ms;
  // End-to-end deadline (DESIGN.md §14): cap the retry schedule's
  // budget to the request's remaining time, so no retry round whose
  // earliest completion would land past the deadline is ever issued.
  // Without a deadline the params pass through untouched.
  RetryParams retry_params = config_.data_plane.retry;
  if (deadline != std::chrono::steady_clock::time_point::max()) {
    // Floor above zero: 0 means "no cap" to RetryParams, and an already
    // expired budget must refuse every retry round, not allow them all.
    const double remaining_ms =
        std::max(std::chrono::duration<double, std::milli>(
                     deadline - std::chrono::steady_clock::now())
                     .count(),
                 1e-6);
    if (retry_params.request_deadline_ms <= 0 ||
        remaining_ms < retry_params.request_deadline_ms) {
      retry_params.request_deadline_ms = remaining_ms;
    }
  }
  RetrySchedule schedule(retry_params, config_.data_plane.seed);
  const auto t0 = std::chrono::steady_clock::now();
  const auto elapsed_ms = [&t0] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  std::unique_lock<std::mutex> lock(ctx->mu);
  const auto settled = [&ctx] {
    return ctx->unsatisfied == 0 || ctx->outstanding == 0;
  };
  for (int round = 1;; ++round) {
    if (deadline_ms > 0) {
      ctx->cv.wait_for(
          lock, std::chrono::duration<double, std::milli>(deadline_ms),
          settled);
    } else {
      ctx->cv.wait(lock, settled);
    }
    if (ctx->unsatisfied == 0) break;
    if (!schedule.ShouldRetry(round, elapsed_ms())) {
      // Budget spent: let whatever is still in flight finish, then fall
      // through to the degraded path for the blocks that stayed short.
      ctx->cv.wait(lock, settled);
      break;
    }
    const double backoff = schedule.WaitMs(round);
    if (backoff > 0) {
      ctx->cv.wait_for(lock,
                       std::chrono::duration<double, std::milli>(backoff),
                       [&ctx] { return ctx->unsatisfied == 0; });
      if (ctx->unsatisfied == 0) break;
    }
    std::size_t reissued = 0;
    for (std::size_t i = 0; i < ctx->blocks.size(); ++i) {
      BlockGather& g = ctx->blocks[i];
      if (g.done) continue;
      for (const ChunkLocation& loc : meta[i].locations) {
        if (g.Have(loc.chunk)) continue;
        if (round == 1 && g.Tried(loc.chunk)) continue;
        if (!g.Tried(loc.chunk)) g.tried.push_back(loc.chunk);
        ++ctx->outstanding;
        ++reissued;
        issue(i, meta[i].block, loc.chunk, loc.site);
      }
    }
    retried_fetches_.fetch_add(reissued, std::memory_order_relaxed);
    if (reissued == 0 && ctx->outstanding == 0) break;  // Nothing left to try.
  }

  ctx->harvested = true;
  ctx->cancel->store(true, std::memory_order_release);
  std::vector<std::vector<IndexedChunk>> fetched(ctx->blocks.size());
  bool short_of_k = false;
  for (std::size_t i = 0; i < ctx->blocks.size(); ++i) {
    if (!ctx->blocks[i].done) short_of_k = true;
    fetched[i] = std::move(ctx->blocks[i].got);
  }
  lock.unlock();

  if (!short_of_k) return fetched;

  // Degraded read: the plan could not deliver k chunks for some block.
  // Its cached form is stale, and any k reachable chunks will do — the
  // client-side rerouting of Section VI-C4. Runs under the metadata lock
  // so the catalog, site availability, and node contents are consistent
  // (no mover/repair can commit mid-scan); the direct GetChunk reads
  // bypass injected data-plane latency and error injection (they are
  // still checksum-verified), keeping the fallback deterministic.
  std::lock_guard<std::mutex> meta_lock(meta_mu_);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const BlockId block = demands[i].block;
    auto& got = fetched[i];
    const BlockInfo& info = state_.GetBlock(block);
    if (info.version != meta[i].version) {
      // The block was rewritten after our snapshot — a promotion or
      // demotion swapped its codec, so chunks fetched against the old
      // layout are from a different encoding and must not be mixed with
      // (or decoded as) the new one. Drop them and re-read below against
      // the committed layout; refresh the snapshot so the caller decodes
      // with the right family and tags any cache fill with the live
      // version.
      got.clear();
      meta[i].k = info.k;
      meta[i].block_bytes = info.block_bytes;
      meta[i].version = info.version;
      meta[i].locations = info.locations;
      meta[i].family = FamilyFor(info.codec);
    }
    std::vector<ChunkIndex> have;
    have.reserve(info.locations.size());
    for (const IndexedChunk& c : got) have.push_back(c.index);
    // Decodability is the family's call: any k distinct for MDS
    // families, a pattern-dependent check for LRC (where k local and
    // global chunks may still not span the block).
    const auto decodable = [&] {
      return got.size() >= info.k &&
             (meta[i].family->AnyKDecodes() || meta[i].family->CanDecode(have));
    };
    if (decodable()) continue;

    degraded_reads_.fetch_add(1, std::memory_order_relaxed);
    control_plane_.InvalidateBlock(block);
    const auto has = [&have](ChunkIndex c) {
      return std::find(have.begin(), have.end(), c) != have.end();
    };
    for (const ChunkLocation& loc : info.locations) {
      if (decodable()) break;
      if (has(loc.chunk)) continue;
      if (!state_.IsSiteAvailable(loc.site)) continue;
      const auto data = nodes_[loc.site]->GetChunk(block, loc.chunk);
      if (data == nullptr) continue;
      got.push_back({loc.chunk, *data});
      have.push_back(loc.chunk);
    }
    if (!decodable()) {
      throw std::runtime_error(
          "LocalECStore::MultiGet: block unreadable after degraded replan");
    }
  }
  return fetched;
}

std::vector<std::vector<std::uint8_t>> LocalECStore::MultiGet(
    std::span<const BlockId> ids) {
  // Admission gate (DESIGN.md §14): refuse excess requests before any
  // planning work is spent on them.
  AdmissionRelease release;
  if (overload_ && overload_->gate_enabled()) {
    if (!overload_->admission()->TryAdmit(NowMs())) {
      // Brownout L3 (cache-only answers): a refused request can still
      // be served — free of fan-out — when every block sits validly in
      // the decoded-block cache.
      if (overload_->brownout_level() >= 3 && cache_) {
        std::vector<std::vector<std::uint8_t>> out;
        out.reserve(ids.size());
        bool all_cached = true;
        for (BlockId id : ids) {
          std::shared_ptr<const std::vector<std::uint8_t>> hit;
          if (cache_->Lookup(id, state_.BlockVersion(id), &hit) &&
              hit != nullptr) {
            out.push_back(*hit);
          } else {
            all_cached = false;
            break;
          }
        }
        if (all_cached) return out;
      }
      throw RequestShedError();
    }
    release.admission = overload_->admission();
  }
  // End-to-end deadline (DESIGN.md §14): the absolute budget flows into
  // the fetch fan-out (per-site queue expiry) and the retry schedule.
  const auto deadline =
      overload_ && overload_->deadline_ms() > 0
          ? std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        overload_->deadline_ms()))
          : std::chrono::steady_clock::time_point::max();

  // Planning takes no store-wide lock (DESIGN.md §10): the control plane
  // synchronizes itself per shard and the catalog per stripe. A write
  // racing this path is absorbed downstream — a chunk that moved after
  // the snapshot comes back as a miss and the retry rounds / degraded
  // path re-resolve it against the committed catalog.
  control_plane_.RecordRequest(ids);
  const std::uint64_t seq =
      gets_since_refresh_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (seq % 64 == 0) RefreshLoadFromCounters();

  // Cache tier (DESIGN.md §12): serve version-valid decoded blocks from
  // memory and plan/fetch only the misses. The λ-driven prefetch fires
  // off each hit's co-access partners before the miss fan-out starts, so
  // warming overlaps the fetch.
  std::vector<std::shared_ptr<const std::vector<std::uint8_t>>> hits;
  std::vector<BlockId> miss_ids;
  if (cache_) {
    hits.resize(ids.size());
    miss_ids.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (cache_->Lookup(ids[i], state_.BlockVersion(ids[i]), &hits[i]) &&
          hits[i] != nullptr) {
        cache_->UpdateWeight(ids[i], control_plane_.BlockAccessFrequency(ids[i]));
        if (prefetch_pool_) MaybePrefetch(ids[i], ids);
      } else {
        hits[i].reset();
        miss_ids.push_back(ids[i]);
      }
    }
    if (miss_ids.empty()) {
      std::vector<std::vector<std::uint8_t>> out;
      out.reserve(ids.size());
      for (const auto& h : hits) out.push_back(*h);
      if (!bg_pool_) DrainBackgroundWork();
      return out;
    }
  }
  const std::span<const BlockId> fetch_ids =
      cache_ ? std::span<const BlockId>(miss_ids) : ids;

  // Per-request late-binding fan-out: static δ, or the adaptive policy's
  // straggler-probability-derived value over the sites this request's
  // plan can actually touch (DESIGN.md §13).
  const std::uint32_t delta = control_plane_.AdaptiveDelta(fetch_ids);
  DemandResult dr = BuildDemands(state_, fetch_ids, delta);
  for (std::size_t i = 0; i < dr.readable.size(); ++i) {
    if (!dr.readable[i]) {
      throw std::runtime_error("LocalECStore::MultiGet: block unreadable");
    }
  }

  // R2: one shared plan decision — cached plan, greedy fallback, or the
  // random baseline. Never an inline ILP solve.
  PlanDecision decision =
      control_plane_.SelectAccessPlan(fetch_ids, dr.demands, delta);

  // Catalog snapshot, one stripe-locked copy per demanded block, so the
  // lock-free fetch phase never reads mutable state.
  std::vector<BlockMeta> meta;
  meta.reserve(dr.demands.size());
  BlockInfo info;
  for (const BlockDemand& d : dr.demands) {
    if (!state_.ReadBlock(d.block, &info)) {
      // Deleted between planning and the snapshot.
      throw std::runtime_error("LocalECStore::MultiGet: block unreadable");
    }
    meta.push_back(BlockMeta{d.block, info.k, info.block_bytes, info.version,
                             std::move(info.locations), FamilyFor(info.codec)});
  }

  // Fetch chunks per block in parallel; a late-binding plan fetches
  // extras and each block completes on its first k arrivals.
  std::vector<std::vector<IndexedChunk>> fetched =
      FetchChunks(decision.plan, dr.demands, meta, deadline);

  if (deadline != std::chrono::steady_clock::time_point::max() &&
      std::chrono::steady_clock::now() >= deadline) {
    // The budget is spent: the caller has given up, so decoding now
    // would only deliver a late answer. Distinct from data loss — every
    // chunk fetched above remains durable.
    overload_->deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    throw DeadlineExceededError();
  }

  // Demand index per requested id (requests are small; the scan is over
  // the deduplicated demand list).
  const auto meta_index = [&meta](BlockId id) {
    for (std::size_t i = 0; i < meta.size(); ++i) {
      if (meta[i].block == id) return i;
    }
    throw std::logic_error("LocalECStore::MultiGet: id missing from demands");
  };
  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(ids.size());
  for (std::size_t pos = 0; pos < ids.size(); ++pos) {
    const BlockId id = ids[pos];
    if (cache_ && hits[pos] != nullptr) {
      out.push_back(*hits[pos]);
      continue;
    }
    const std::size_t i = meta_index(id);
    if (cache_ != nullptr) {
      // Fill through a shared buffer tagged with the snapshot-time
      // version: if the block was rewritten mid-fetch, the entry simply
      // never validates again.
      auto decoded = std::make_shared<const std::vector<std::uint8_t>>(
          meta[i].family->Decode(fetched[i], meta[i].block_bytes));
      cache_->Insert(id, decoded, decoded->size(), meta[i].version,
                     control_plane_.BlockAccessFrequency(id));
      out.push_back(*decoded);
    } else {
      out.push_back(meta[i].family->Decode(fetched[i], meta[i].block_bytes));
    }
  }

  // The response is assembled; with the synchronous executor (no pool),
  // run any queued background refinement off the request's critical
  // path. With an executor pool the solves are already draining on their
  // own threads — waiting here would put them back ON the request path.
  if (!bg_pool_) DrainBackgroundWork();
  return out;
}

void LocalECStore::DrainBackgroundWork() {
  if (bg_pool_) {
    bg_pool_->WaitIdle();
    return;
  }
  // Each unit can enqueue its successor (the worker pump), so loop until
  // the queue is truly empty. Units self-synchronize: a deferred solve
  // takes the control plane's shard/rng/load locks itself.
  for (;;) {
    ControlPlane::Deferred work;
    {
      std::lock_guard<std::mutex> lock(defer_mu_);
      if (deferred_.empty()) return;
      work = std::move(deferred_.front());
      deferred_.pop_front();
    }
    work();
  }
}

bool LocalECStore::Contains(BlockId id) const {
  // The catalog is stripe-locked internally; no store-wide lock needed.
  return state_.Contains(id);
}

ControlPlaneUsage LocalECStore::Usage() const {
  // The control plane aggregates shard by shard; everything overlaid
  // here is atomic. No store-wide lock (see ControlPlaneUsage for the
  // monotonic-vs-snapshot contract).
  ControlPlaneUsage u = control_plane_.Usage();
  u.degraded_reads = degraded_reads_.load(std::memory_order_relaxed);
  u.retried_fetches = retried_fetches_.load(std::memory_order_relaxed);
  u.cancelled_fetch_jobs = data_plane_->jobs_cancelled();
  u.chunks_scrubbed = chunks_scrubbed_.load(std::memory_order_relaxed);
  for (const auto& node : nodes_) u.checksum_failures += node->checksum_failures();
  if (cache_) {
    const BlockCacheStats cs = cache_->Stats();
    u.cache_hits = cs.hits;
    u.cache_misses = cs.misses;
    u.cache_evictions = cs.evictions;
    u.cache_invalidations = cs.invalidations;
    u.prefetch_issued = cs.prefetch_issued;
    u.prefetch_hits = cs.prefetch_hits;
    u.cache_bytes = cs.bytes;
  }
  if (promoter_) {
    const PromoterStats ps = promoter_->Stats();
    u.blocks_promoted = ps.blocks_promoted;
    u.blocks_demoted = ps.blocks_demoted;
    u.replica_extra_bytes = ps.replica_extra_bytes;
  }
  if (overload_) {
    // Jobs the data plane expired at pickup belong to the same
    // "expired work cancelled at the queue" counter as the sim's.
    const OverloadCounters oc = overload_->Counters(data_plane_->jobs_expired());
    u.requests_shed = oc.requests_shed;
    u.deadline_exceeded = oc.deadline_exceeded;
    u.breaker_opens = oc.breaker_opens;
    u.breaker_half_open_probes = oc.breaker_half_open_probes;
    u.brownout_level = oc.brownout_level;
    u.expired_jobs_cancelled = oc.expired_jobs_cancelled;
  }
  return u;
}

CostParams LocalECStore::CurrentCostParams() const {
  return control_plane_.CurrentCostParams();
}

bool LocalECStore::Remove(BlockId id) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  if (!state_.Contains(id)) return false;
  control_plane_.InvalidateBlock(id);
  const BlockInfo info = state_.GetBlock(id);
  for (const ChunkLocation& loc : info.locations) {
    nodes_[loc.site]->DeleteChunk(id, loc.chunk);
  }
  return state_.RemoveBlock(id);
}

void LocalECStore::FailSite(SiteId site) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  state_.SetSiteAvailable(site, false);
  nodes_[site]->set_available(false);
  control_plane_.OnSiteFailed(site);
}

void LocalECStore::RecoverSite(SiteId site) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  state_.SetSiteAvailable(site, true);
  nodes_[site]->set_available(true);
}

void LocalECStore::CrashNode(SiteId site) {
  // Ground truth only: the cluster state still believes the site is up
  // until the failure detector notices the missed heartbeats.
  nodes_[site]->set_available(false);
}

void LocalECStore::HealNode(SiteId site) {
  // Belief recovers at the node's next heartbeat (NoteHeartbeat revival).
  nodes_[site]->set_available(true);
}

std::uint64_t LocalECStore::CorruptSiteChunks(SiteId site, double fraction,
                                              std::uint64_t seed) {
  StorageNode& n = *nodes_[site];
  std::uint64_t corrupted = 0;
  std::uint64_t i = 0;
  for (const auto& [block, chunk] : n.ChunkKeys()) {
    const std::uint64_t h = SplitMix64(seed + i++).Next();
    if (static_cast<double>(h >> 11) * 0x1.0p-53 < fraction &&
        n.CorruptChunk(block, chunk)) {
      ++corrupted;
    }
  }
  return corrupted;
}

FaultActions LocalECStore::MakeFaultActions() {
  FaultActions actions;
  actions.crash = [this](SiteId site) { CrashNode(site); };
  actions.heal = [this](SiteId site) { HealNode(site); };
  // A degraded site serves every fetch `factor` times slower. The data
  // plane realizes that as extra injected latency on top of the
  // configured base (with no base configured, a nominal 1 ms stands in
  // for the healthy service time).
  actions.degrade = [this](SiteId site, double factor) {
    const double base = config_.data_plane.base_latency_ms > 0
                            ? config_.data_plane.base_latency_ms
                            : 1.0;
    data_plane_->SetSiteExtraLatency(site,
                                     factor > 1.0 ? base * (factor - 1.0) : 0.0);
  };
  actions.set_fetch_error = [this](SiteId site, double p) {
    nodes_[site]->set_fetch_error(p, config_.seed ^ (site + 1));
  };
  actions.corrupt = [this](SiteId site, double fraction) {
    CorruptSiteChunks(site, fraction, config_.seed ^ (0xC0F000ull + site));
  };
  return actions;
}

std::optional<ChunkData> LocalECStore::RebuildChunk(BlockId block,
                                                    const BlockInfo& info,
                                                    ChunkIndex target,
                                                    SiteId exclude_site) {
  const auto family = FamilyFor(info.codec);

  // Reachable survivor pool: each chunk index the family may plan over,
  // with the site the catalog places it at.
  std::vector<ChunkIndex> avail;
  std::vector<SiteId> site_of;  // Parallel to avail.
  avail.reserve(info.locations.size());
  site_of.reserve(info.locations.size());
  for (const ChunkLocation& loc : info.locations) {
    if (loc.site == exclude_site || loc.chunk == target) continue;
    if (!state_.IsSiteAvailable(loc.site)) continue;
    if (std::find(avail.begin(), avail.end(), loc.chunk) != avail.end()) {
      continue;
    }
    avail.push_back(loc.chunk);
    site_of.push_back(loc.site);
  }

  // Ask the family for its cheapest plan over the pool and read ONLY the
  // plan's chunks — a local group for LRC, half-chunk sources for the
  // piggyback family, the first k survivors for RS. Verified GetChunk
  // skips corrupt or missing copies (they are erasures too), so
  // reconstruction never launders bad bytes back into the cluster; a
  // source failing verification is dropped from the pool and the family
  // re-plans over the rest.
  for (;;) {
    const auto plan = family->PlanRepair(target, avail);
    if (!plan) return std::nullopt;
    std::vector<IndexedChunk> gathered;
    gathered.reserve(plan->reads.size());
    bool replanned = false;
    for (const RepairRead& read : plan->reads) {
      const std::size_t pos = static_cast<std::size_t>(
          std::find(avail.begin(), avail.end(), read.chunk) - avail.begin());
      const auto data = nodes_[site_of[pos]]->GetChunk(block, read.chunk);
      if (data == nullptr) {
        avail.erase(avail.begin() + static_cast<std::ptrdiff_t>(pos));
        site_of.erase(site_of.begin() + static_cast<std::ptrdiff_t>(pos));
        replanned = true;
        break;
      }
      gathered.push_back({read.chunk, *data});
    }
    if (replanned) continue;
    // Bytes-on-wire accounting charges the plan, not the whole chunks the
    // in-process nodes hand back (RepairRead's sub-chunk model).
    control_plane_.RecordRepairTraffic(plan->reads.size(),
                                       plan->BytesToRead(info.chunk_bytes));
    return family->RepairChunk(target, gathered, info.block_bytes);
  }
}

std::uint64_t LocalECStore::RepairSite(SiteId site) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  return RepairSiteLocked(site);
}

std::uint64_t LocalECStore::RepairSiteLocked(SiteId site) {
  std::uint64_t rebuilt = 0;
  for (BlockId block : state_.BlocksWithChunkAt(site)) {
    const BlockInfo& info = state_.GetBlock(block);

    // The lost chunk's index is recorded in the catalog.
    const auto lost = std::find_if(
        info.locations.begin(), info.locations.end(),
        [site](const ChunkLocation& l) { return l.site == site; });
    const ChunkIndex lost_index = lost->chunk;

    // No decodable repair plan reachable right now (concurrent outages,
    // corruption): skip — a later pass can still heal the block.
    auto chunk = RebuildChunk(block, info, lost_index, site);
    if (!chunk) continue;

    const SiteId best = control_plane_.SelectRepairDestination(block, lost_index);
    if (best == kInvalidSite) continue;
    if (!nodes_[best]->PutChunk(block, lost_index, std::move(*chunk))) {
      continue;  // Destination crashed since planning; try again later.
    }
    state_.MoveChunk(block, site, best);
    control_plane_.RecordRepair(block);
    nodes_[site]->DeleteChunk(block, lost_index);
    ++rebuilt;
  }
  return rebuilt;
}

std::uint64_t LocalECStore::ScrubOnce() {
  std::lock_guard<std::mutex> lock(meta_mu_);
  const std::uint64_t fixed = ScrubLocked();
  chunks_scrubbed_.fetch_add(fixed, std::memory_order_relaxed);
  return fixed;
}

std::uint64_t LocalECStore::ScrubLocked() {
  // Walk the catalog site by site, checksum-probing each chunk where the
  // catalog says it lives. A chunk that is corrupt — or missing entirely
  // (a write raced a crash) — is rebuilt from k valid survivors and
  // rewritten in place, restoring full redundancy without moving it.
  std::uint64_t fixed = 0;
  for (SiteId j = 0; j < state_.num_sites(); ++j) {
    if (!state_.IsSiteAvailable(j)) continue;
    if (!nodes_[j]->available()) continue;  // Silently crashed: repair's job.
    for (BlockId block : state_.BlocksWithChunkAt(j)) {
      const BlockInfo& info = state_.GetBlock(block);
      const auto loc = std::find_if(
          info.locations.begin(), info.locations.end(),
          [j](const ChunkLocation& l) { return l.site == j; });
      if (loc == info.locations.end()) continue;
      if (nodes_[j]->HasValidChunk(block, loc->chunk)) continue;

      auto chunk = RebuildChunk(block, info, loc->chunk, kInvalidSite);
      if (!chunk) continue;  // Not enough valid survivors right now.
      if (nodes_[j]->PutChunk(block, loc->chunk, std::move(*chunk))) {
        // In-place rewrite: the chunk's bytes at this site changed even
        // though the catalog layout did not. Bump the block's coherence
        // version and push the invalidation through the control-plane
        // seam so cached decoded bytes re-validate (DESIGN.md §12).
        state_.BumpBlockVersion(block);
        control_plane_.InvalidateBlock(block);
        ++fixed;
      }
    }
  }
  return fixed;
}

void LocalECStore::StartMaintenance() {
  std::lock_guard<std::mutex> lock(maint_mu_);
  if (maint_thread_.joinable()) return;
  maint_stop_ = false;
  maint_thread_ = std::thread([this] { MaintenanceLoop(); });
}

void LocalECStore::StopMaintenance() {
  {
    std::lock_guard<std::mutex> lock(maint_mu_);
    if (!maint_thread_.joinable()) return;
    maint_stop_ = true;
  }
  maint_cv_.notify_all();
  maint_thread_.join();
  maint_thread_ = std::thread();
}

double LocalECStore::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void LocalECStore::MaintenanceLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(maint_mu_);
      maint_cv_.wait_for(
          lock,
          std::chrono::duration<double, std::milli>(config_.maintenance_tick_ms),
          [this] { return maint_stop_; });
      if (maint_stop_) return;
      ++maint_ticks_;
    }
    const bool scrub_tick =
        config_.scrub_every_ticks > 0 &&
        maint_ticks_ % config_.scrub_every_ticks == 0;
    {
      std::lock_guard<std::mutex> lock(meta_mu_);
      const double now_ms = NowMs();
      // Heartbeats (live nodes' load reports) feed the failure detector;
      // silent sites transition suspect -> dead and enter repair's grace.
      RefreshLoadFromCounters();
      control_plane_.CheckFailures(now_ms);
      repair_->Poll(FromMillis(now_ms));
      if (scrub_tick) {
        chunks_scrubbed_.fetch_add(ScrubLocked(), std::memory_order_relaxed);
      }
    }
    // Deferred control-plane work queued by the tick (plan reloads after
    // drift) runs outside the tick's critical section.
    DrainBackgroundWork();
  }
}

std::optional<std::vector<std::uint8_t>> LocalECStore::ReadBlockBytesLocked(
    BlockId id, const BlockInfo& info) {
  const auto family = FamilyFor(info.codec);
  std::vector<IndexedChunk> got;
  std::vector<ChunkIndex> have;
  got.reserve(info.k);
  have.reserve(info.locations.size());
  for (const ChunkLocation& loc : info.locations) {
    if (!state_.IsSiteAvailable(loc.site)) continue;
    if (std::find(have.begin(), have.end(), loc.chunk) != have.end()) continue;
    const auto data = nodes_[loc.site]->GetChunk(id, loc.chunk);
    if (data == nullptr) continue;
    have.push_back(loc.chunk);
    got.push_back({loc.chunk, *data});
    if (got.size() >= info.k &&
        (family->AnyKDecodes() || family->CanDecode(have))) {
      return family->Decode(got, info.block_bytes);
    }
  }
  return std::nullopt;
}

void LocalECStore::MaybePrefetch(BlockId anchor,
                                 std::span<const BlockId> requested) {
  // Brownout L1 (DESIGN.md §14): prefetch is the cheapest optional work
  // and the first to go under pressure.
  if (overload_ && overload_->brownout_level() >= 1) return;
  const auto partners =
      control_plane_.CoAccessPartnersOf(anchor, config_.prefetch_max_partners);
  for (const CoAccessPartner& p : partners) {
    if (p.lambda < config_.prefetch_min_lambda) break;  // Sorted descending.
    if (std::find(requested.begin(), requested.end(), p.block) !=
        requested.end()) {
      continue;  // Already part of this request's fetch.
    }
    // BeginPrefetch dedups against resident entries and racing hits on
    // the same anchor — at most one in-flight fill per block.
    if (!cache_->BeginPrefetch(p.block)) continue;
    prefetch_pool_->Submit([this, block = p.block] { PrefetchBlock(block); });
  }
}

void LocalECStore::PrefetchBlock(BlockId id) {
  struct EndGuard {
    BlockCache* cache;
    BlockId id;
    ~EndGuard() { cache->EndPrefetch(id); }
  } guard{cache_.get(), id};
  if (prefetch_cancel_->load(std::memory_order_acquire)) return;
  BlockInfo info;
  if (!state_.ReadBlock(id, &info)) return;  // Deleted since the trigger.
  // Fill reads run under the catalog writer lock like the degraded path:
  // a consistent snapshot, verified GetChunk (no injected latency — the
  // warm path must not add site load), never on the request path.
  std::optional<std::vector<std::uint8_t>> decoded;
  {
    std::lock_guard<std::mutex> lock(meta_mu_);
    decoded = ReadBlockBytesLocked(id, info);
  }
  if (!decoded) return;
  // Validate the fill against the live version: if the block changed
  // while we decoded, insert nothing rather than something stale.
  if (state_.BlockVersion(id) != info.version) return;
  auto data = std::make_shared<const std::vector<std::uint8_t>>(
      std::move(*decoded));
  cache_->Insert(id, data, data->size(), info.version,
                 control_plane_.BlockAccessFrequency(id), /*prefetched=*/true);
}

void LocalECStore::RunPromotionRoundLocked() {
  // Demotions first: cooled blocks release budget the same round's
  // promotions can spend.
  for (BlockId id : promoter_->SelectDemotions([this](BlockId b) {
         return control_plane_.BlockAccessFrequency(b);
       })) {
    DemoteBlockLocked(id);
  }
  const std::size_t scan =
      promoter_->params().max_promotions_per_round * 8 + 8;
  std::size_t promoted = 0;
  BlockInfo info;
  for (const CoAccessPartner& hot : control_plane_.HottestBlocks(scan)) {
    if (promoted >= promoter_->params().max_promotions_per_round) break;
    if (!state_.ReadBlock(hot.block, &info)) continue;
    if (info.codec.family == CodecFamilyId::kReplication) continue;
    const std::uint64_t extra = ReplicaPromoter::ReplicaExtraBytes(
        info.block_bytes, info.chunk_bytes * info.locations.size(),
        promoter_->params().replica_copies);
    if (!promoter_->ShouldPromote(hot.block, hot.lambda, extra,
                                  info.block_bytes)) {
      continue;
    }
    if (PromoteBlockLocked(hot.block, info, extra)) ++promoted;
  }
}

bool LocalECStore::PromoteBlockLocked(BlockId id, const BlockInfo& info,
                                      std::uint64_t extra_bytes) {
  const auto data = ReadBlockBytesLocked(id, info);
  if (!data) return false;  // Not decodable right now; retry next round.
  const CodecSpec rep = promoter_->ReplicaSpec();
  std::vector<SiteId> old_sites;
  old_sites.reserve(info.locations.size());
  for (const ChunkLocation& loc : info.locations) old_sites.push_back(loc.site);
  const std::vector<SiteId> sites =
      control_plane_.SelectWriteSitesAvoiding(rep, old_sites);
  if (sites.empty()) return false;  // Too few free sites; retry next round.
  RewriteBlockLocked(id, info, *data, rep, sites);
  promoter_->RecordPromoted(id, info.codec, extra_bytes);
  return true;
}

bool LocalECStore::DemoteBlockLocked(BlockId id) {
  const auto original = promoter_->OriginalSpec(id);
  if (!original) return false;
  BlockInfo info;
  if (!state_.ReadBlock(id, &info)) {
    // Deleted while promoted: just release the budget.
    promoter_->RecordDemoted(id);
    return false;
  }
  const auto data = ReadBlockBytesLocked(id, info);
  if (!data) return false;  // No reachable copy right now; retry later.
  std::vector<SiteId> old_sites;
  old_sites.reserve(info.locations.size());
  for (const ChunkLocation& loc : info.locations) old_sites.push_back(loc.site);
  const std::vector<SiteId> sites =
      control_plane_.SelectWriteSitesAvoiding(*original, old_sites);
  if (sites.empty()) return false;
  RewriteBlockLocked(id, info, *data, *original, sites);
  promoter_->RecordDemoted(id);
  return true;
}

void LocalECStore::RewriteBlockLocked(BlockId id, const BlockInfo& old_info,
                                      std::span<const std::uint8_t> data,
                                      const CodecSpec& spec,
                                      std::span<const SiteId> sites) {
  // Write-first discipline (the mover's, extended to whole layouts): the
  // new encoding lands on sites disjoint from the old one, the catalog
  // entry swaps in a single stripe-locked step, and only then do the old
  // chunks retire. A reader that planned against the old layout either
  // harvested k old chunks before the retirement (same bytes — the
  // rewrite never changes content) or comes up short and re-resolves in
  // the degraded path, whose version check drops old-encoding chunks and
  // re-reads the committed layout. At no point is the id absent from the
  // catalog or its only readable copy gone.
  const auto family = FamilyFor(spec);
  std::vector<ChunkData> chunks = family->Encode(data);
  if (sites.size() != chunks.size()) {
    throw std::runtime_error("LocalECStore::RewriteBlockLocked: wrong site count");
  }
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    // As with Put: a site that crashed since selection drops the write,
    // leaving a redundancy hole for the scrubber/repair to heal.
    nodes_[sites[i]]->PutChunk(id, static_cast<ChunkIndex>(i),
                               std::move(chunks[i]));
  }
  state_.ReplaceBlock(id, data.size(), family->ChunkSize(data.size()), spec,
                      sites);
  // Plans and cached decodes against the old layout die here; the swap
  // above already bumped the coherence version as the lookup backstop.
  control_plane_.InvalidateBlock(id);
  for (const ChunkLocation& loc : old_info.locations) {
    nodes_[loc.site]->DeleteChunk(id, loc.chunk);
  }
}

std::optional<MovementPlan> LocalECStore::RunMovementRound() {
  std::lock_guard<std::mutex> lock(meta_mu_);
  RefreshLoadFromCounters();
  // Brownout L2 (DESIGN.md §14): movement and promotion rounds pause —
  // background I/O yields its site capacity to admitted client reads.
  // The refresh above still ran, so stats (and the ladder itself) stay
  // live while paused.
  if (overload_ && overload_->brownout_level() >= 2) return std::nullopt;
  // Hybrid-redundancy sweep (DESIGN.md §12) rides the movement round:
  // promote this window's hottest EC blocks to replicas, demote cooled
  // ones, all within the storage budget.
  if (promoter_) RunPromotionRoundLocked();
  const auto plan = control_plane_.SelectMovement(
      static_cast<double>(control_plane_.TotalRequestsInWindow()));
  if (!plan) return std::nullopt;

  // Execute with a real data copy: read at source, write at destination,
  // commit metadata, delete the old copy. All under the metadata lock, so
  // a concurrent fetch either sees the chunk at its old site (until the
  // delete) or replans against the committed new location.
  const BlockInfo& info = state_.GetBlock(plan->block);
  const auto loc = std::find_if(
      info.locations.begin(), info.locations.end(),
      [&](const ChunkLocation& l) { return l.site == plan->source; });
  if (loc == info.locations.end()) return std::nullopt;
  const ChunkIndex chunk = loc->chunk;
  const auto data = nodes_[plan->source]->GetChunk(plan->block, chunk);
  if (data == nullptr) return std::nullopt;
  const std::uint64_t chunk_bytes = data->size();
  if (!nodes_[plan->destination]->PutChunk(plan->block, chunk, *data)) {
    return std::nullopt;  // Destination crashed since the plan was chosen.
  }
  if (!state_.MoveChunk(plan->block, plan->source, plan->destination)) {
    nodes_[plan->destination]->DeleteChunk(plan->block, chunk);
    return std::nullopt;
  }
  control_plane_.RecordMoveExecuted(plan->block, chunk_bytes);
  nodes_[plan->source]->DeleteChunk(plan->block, chunk);
  return plan;
}

std::uint64_t LocalECStore::TotalStoredBytes() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->bytes_stored();
  return total;
}

void LocalECStore::RefreshLoadFromCounters() {
  // Derive site load from reads served since the last refresh: the
  // in-process analogue of the periodic load reports. Counters are
  // atomics bumped by fetch workers; refresh_mu_ serializes concurrent
  // refreshes (a MultiGet hitting its 64th request can race the
  // maintenance tick). Crashed nodes produce no report — and therefore
  // no heartbeat, which is exactly how the failure detector learns of an
  // unannounced crash.
  std::lock_guard<std::mutex> refresh_lock(refresh_mu_);
  std::uint64_t total = 0;
  std::vector<std::uint64_t> deltas(nodes_.size(), 0);
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    deltas[j] = nodes_[j]->reads_served() - reads_at_last_refresh_[j];
    reads_at_last_refresh_[j] = nodes_[j]->reads_served();
    total += deltas[j];
  }
  const double now_ms = NowMs();
  // An idle window still records reports and probes (with zero
  // utilization, decaying o_j toward the idle baseline) so drift
  // detection sees recovery instead of freezing at the last busy epoch.
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    if (!nodes_[j]->available()) continue;  // Crashed: silent.
    control_plane_.NoteHeartbeat(static_cast<SiteId>(j), now_ms);
    const double util =
        total == 0 ? 0.0
                   : static_cast<double>(deltas[j]) / static_cast<double>(total);
    control_plane_.RecordLoadReport(static_cast<SiteId>(j), util, 0,
                                    nodes_[j]->chunk_count(), /*msg_bytes=*/0);
    // Probe overhead estimate. When the data plane injects real latency,
    // the measured per-fetch service time IS the probe signal — the cost
    // model then discovers genuinely slow sites. Otherwise fall back to a
    // synthetic load-proportional estimate: busy nodes answer probes
    // slower, with a moderate swing (1-5 ms) so load awareness tempers,
    // rather than dominates, co-location decisions.
    double rtt_ms = 1.0 + util * 4.0;
    if (data_plane_->InjectsLatency()) {
      const auto measured = data_plane_->HarvestLatency(static_cast<SiteId>(j));
      if (measured.samples > 0) rtt_ms = measured.MeanMs();
    }
    control_plane_.RecordProbe(static_cast<SiteId>(j), rtt_ms,
                               /*msg_bytes=*/0);
    // Tail model feed (DESIGN.md §13): hand the raw per-fetch service
    // times to the per-site latency histograms. Distinct from the probe
    // above, which collapses the window to a mean.
    const auto samples =
        data_plane_->DrainServiceSamples(static_cast<SiteId>(j));
    control_plane_.RecordServiceSamples(static_cast<SiteId>(j), samples);
  }
  if (overload_) {
    // Breakers feed on the same histograms the tail model keeps; the
    // brownout ladder feeds on the admission controller's pressure.
    for (std::size_t j = 0; j < nodes_.size(); ++j) {
      const auto site = static_cast<SiteId>(j);
      overload_->EvaluateSite(site,
                              control_plane_.SiteLatencyQuantileMs(site, 0.99),
                              control_plane_.SiteLatencySamples(site), now_ms);
    }
    overload_->UpdateBrownout(now_ms);
  }
  control_plane_.ReloadPlansOnDrift();
}

}  // namespace ecstore
