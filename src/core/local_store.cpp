#include "core/local_store.h"

#include <algorithm>
#include <stdexcept>

namespace ecstore {

void StorageNode::PutChunk(BlockId block, ChunkIndex chunk, ChunkData data) {
  auto key = std::make_pair(block, chunk);
  const auto it = chunks_.find(key);
  if (it != chunks_.end()) {
    bytes_stored_ -= it->second.size();
    it->second = std::move(data);
    bytes_stored_ += it->second.size();
    return;
  }
  bytes_stored_ += data.size();
  chunks_.emplace(key, std::move(data));
}

const ChunkData* StorageNode::GetChunk(BlockId block, ChunkIndex chunk) const {
  if (!available_) throw std::runtime_error("StorageNode: node is failed");
  const auto it = chunks_.find({block, chunk});
  if (it == chunks_.end()) return nullptr;
  ++reads_served_;
  return &it->second;
}

bool StorageNode::DeleteChunk(BlockId block, ChunkIndex chunk) {
  const auto it = chunks_.find({block, chunk});
  if (it == chunks_.end()) return false;
  bytes_stored_ -= it->second.size();
  chunks_.erase(it);
  return true;
}

bool StorageNode::HasChunk(BlockId block, ChunkIndex chunk) const {
  return chunks_.count({block, chunk}) > 0;
}

// ---------------------------------------------------------------------------

LocalECStore::LocalECStore(ECStoreConfig config)
    : config_(config),
      rng_(config.seed),
      state_(config.num_sites),
      co_access_(config.co_access_window),
      load_tracker_(config.num_sites),
      reads_at_last_refresh_(config.num_sites, 0) {
  if (config_.IsReplication()) {
    codec_ = std::make_unique<ReplicationCodec>(config_.r);
  } else {
    codec_ = std::make_unique<ReedSolomonCodec>(config_.k, config_.r);
  }
  nodes_.reserve(config_.num_sites);
  for (std::size_t j = 0; j < config_.num_sites; ++j) {
    nodes_.push_back(std::make_unique<StorageNode>());
  }
}

void LocalECStore::Put(BlockId id, std::span<const std::uint8_t> data) {
  std::vector<ChunkData> chunks = codec_->Encode(data);
  const std::vector<SiteId> sites = state_.PickRandomSites(rng_, chunks.size());
  state_.AddBlock(id, data.size(), codec_->ChunkSize(data.size()),
                  codec_->RequiredChunks(),
                  codec_->TotalChunks() - codec_->RequiredChunks(), sites);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    nodes_[sites[i]]->PutChunk(id, static_cast<ChunkIndex>(i), std::move(chunks[i]));
  }
}

std::vector<std::uint8_t> LocalECStore::Get(BlockId id) {
  const std::vector<BlockId> one = {id};
  return std::move(MultiGet(one)[0]);
}

std::vector<std::vector<std::uint8_t>> LocalECStore::MultiGet(
    std::span<const BlockId> ids) {
  co_access_.RecordRequest(ids);
  ++gets_since_refresh_;
  if (gets_since_refresh_ % 64 == 0) RefreshLoadFromCounters();

  DemandResult dr = BuildDemands(state_, ids, config_.EffectiveDelta());
  for (std::size_t i = 0; i < dr.readable.size(); ++i) {
    if (!dr.readable[i]) {
      throw std::runtime_error("LocalECStore::MultiGet: block unreadable");
    }
  }

  AccessPlan plan;
  if (config_.CostModelEnabled()) {
    const auto ilp = IlpPlan(dr.demands, CurrentCostParams());
    plan = ilp ? *ilp : GreedyPlan(dr.demands, CurrentCostParams(), rng_);
  } else {
    plan = RandomPlan(dr.demands, rng_);
  }

  // Fetch chunks per block; a late-binding plan may fetch extras, decode
  // uses the first k.
  std::map<BlockId, std::vector<IndexedChunk>> fetched;
  for (const ChunkRead& read : plan.reads) {
    const ChunkData* data = nodes_[read.site]->GetChunk(read.block, read.chunk);
    if (data == nullptr) {
      throw std::runtime_error("LocalECStore::MultiGet: chunk missing at planned site");
    }
    fetched[read.block].push_back({read.chunk, *data});
  }

  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(ids.size());
  for (BlockId id : ids) {
    const BlockInfo& info = state_.GetBlock(id);
    out.push_back(codec_->Decode(fetched.at(id), info.block_bytes));
  }
  return out;
}

bool LocalECStore::Remove(BlockId id) {
  if (!state_.Contains(id)) return false;
  const BlockInfo info = state_.GetBlock(id);
  for (const ChunkLocation& loc : info.locations) {
    nodes_[loc.site]->DeleteChunk(id, loc.chunk);
  }
  return state_.RemoveBlock(id);
}

void LocalECStore::FailSite(SiteId site) {
  state_.SetSiteAvailable(site, false);
  nodes_[site]->set_available(false);
}

void LocalECStore::RecoverSite(SiteId site) {
  state_.SetSiteAvailable(site, true);
  nodes_[site]->set_available(true);
}

std::uint64_t LocalECStore::RepairSite(SiteId site) {
  std::uint64_t rebuilt = 0;
  for (BlockId block : state_.BlocksWithChunkAt(site)) {
    const BlockInfo& info = state_.GetBlock(block);
    const auto survivors = state_.AvailableLocations(block);
    if (survivors.size() < info.k) continue;  // Data loss: cannot rebuild.

    // The lost chunk's index is recorded in the catalog.
    const auto lost = std::find_if(
        info.locations.begin(), info.locations.end(),
        [site](const ChunkLocation& l) { return l.site == site; });
    const ChunkIndex lost_index = lost->chunk;

    // Reconstruct the block from k survivors, re-encode, extract the
    // lost chunk's content.
    std::vector<IndexedChunk> gathered;
    for (std::size_t i = 0; i < info.k; ++i) {
      const ChunkLocation& loc = survivors[i];
      const ChunkData* data = nodes_[loc.site]->GetChunk(block, loc.chunk);
      if (data == nullptr) throw std::runtime_error("RepairSite: catalog/node mismatch");
      gathered.push_back({loc.chunk, *data});
    }
    const std::vector<std::uint8_t> decoded =
        codec_->Decode(gathered, info.block_bytes);
    std::vector<ChunkData> re_encoded = codec_->Encode(decoded);

    // Destination: least-loaded available site without a chunk of this block.
    SiteId best = kInvalidSite;
    for (SiteId j = 0; j < state_.num_sites(); ++j) {
      if (!state_.IsSiteAvailable(j) || state_.HasChunkAt(block, j)) continue;
      if (best == kInvalidSite ||
          nodes_[j]->chunk_count() < nodes_[best]->chunk_count()) {
        best = j;
      }
    }
    if (best == kInvalidSite) continue;
    nodes_[best]->PutChunk(block, lost_index, std::move(re_encoded[lost_index]));
    state_.MoveChunk(block, site, best);
    nodes_[site]->DeleteChunk(block, lost_index);  // No-op while failed data kept.
    ++rebuilt;
  }
  return rebuilt;
}

std::optional<MovementPlan> LocalECStore::RunMovementRound() {
  RefreshLoadFromCounters();
  const CostParams params = CurrentCostParams();
  MoverContext ctx;
  ctx.state = &state_;
  ctx.co_access = &co_access_;
  ctx.load = &load_tracker_;
  ctx.cost_params = &params;
  ctx.request_rate_per_sec = static_cast<double>(co_access_.requests_in_window());

  const auto plan = SelectMovementPlan(ctx, config_.mover, rng_);
  if (!plan) return std::nullopt;

  // Execute with a real data copy: read at source, write at destination,
  // commit metadata, delete the old copy.
  const BlockInfo& info = state_.GetBlock(plan->block);
  const auto loc = std::find_if(
      info.locations.begin(), info.locations.end(),
      [&](const ChunkLocation& l) { return l.site == plan->source; });
  if (loc == info.locations.end()) return std::nullopt;
  const ChunkIndex chunk = loc->chunk;
  const ChunkData* data = nodes_[plan->source]->GetChunk(plan->block, chunk);
  if (data == nullptr) return std::nullopt;
  nodes_[plan->destination]->PutChunk(plan->block, chunk, *data);
  if (!state_.MoveChunk(plan->block, plan->source, plan->destination)) {
    nodes_[plan->destination]->DeleteChunk(plan->block, chunk);
    return std::nullopt;
  }
  nodes_[plan->source]->DeleteChunk(plan->block, chunk);
  return plan;
}

std::uint64_t LocalECStore::TotalStoredBytes() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->bytes_stored();
  return total;
}

CostParams LocalECStore::CurrentCostParams() const {
  CostParams params;
  params.site_overhead_ms = load_tracker_.OverheadVector();
  params.media_ms_per_byte.assign(config_.num_sites,
                                  1000.0 / config_.site.disk_bytes_per_sec);
  return params;
}

void LocalECStore::RefreshLoadFromCounters() {
  // Derive site load from reads served since the last refresh: the
  // in-process analogue of the periodic load reports.
  std::uint64_t total = 0;
  std::vector<std::uint64_t> deltas(nodes_.size(), 0);
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    deltas[j] = nodes_[j]->reads_served() - reads_at_last_refresh_[j];
    reads_at_last_refresh_[j] = nodes_[j]->reads_served();
    total += deltas[j];
  }
  if (total == 0) return;
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    const double util =
        static_cast<double>(deltas[j]) / static_cast<double>(total);
    load_tracker_.RecordReport(static_cast<SiteId>(j), util, 0,
                               nodes_[j]->chunk_count());
    // Overhead estimate proportional to relative load: busy nodes answer
    // probes slower. The swing is kept moderate (1-5 ms) so that load
    // awareness tempers, rather than dominates, co-location decisions.
    load_tracker_.RecordProbe(static_cast<SiteId>(j), 1.0 + util * 4.0);
  }
  gets_since_refresh_ = 0;
}

}  // namespace ecstore
