#include "core/local_store.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ecstore {

void StorageNode::PutChunk(BlockId block, ChunkIndex chunk, ChunkData data) {
  auto key = std::make_pair(block, chunk);
  const auto it = chunks_.find(key);
  if (it != chunks_.end()) {
    bytes_stored_ -= it->second.size();
    it->second = std::move(data);
    bytes_stored_ += it->second.size();
    return;
  }
  bytes_stored_ += data.size();
  chunks_.emplace(key, std::move(data));
}

const ChunkData* StorageNode::GetChunk(BlockId block, ChunkIndex chunk) const {
  if (!available_) throw std::runtime_error("StorageNode: node is failed");
  const auto it = chunks_.find({block, chunk});
  if (it == chunks_.end()) return nullptr;
  ++reads_served_;
  return &it->second;
}

bool StorageNode::DeleteChunk(BlockId block, ChunkIndex chunk) {
  const auto it = chunks_.find({block, chunk});
  if (it == chunks_.end()) return false;
  bytes_stored_ -= it->second.size();
  chunks_.erase(it);
  return true;
}

bool StorageNode::HasChunk(BlockId block, ChunkIndex chunk) const {
  return chunks_.count({block, chunk}) > 0;
}

// ---------------------------------------------------------------------------

LocalECStore::LocalECStore(ECStoreConfig config)
    : config_(config),
      rng_(config.seed),
      state_(config.num_sites),
      control_plane_(
          &config_, &state_, &rng_,
          // Executor seam: deferred ILP solves queue up and run
          // synchronously once the request has been answered — never on
          // the MultiGet fast path.
          [this](ControlPlane::Deferred work) {
            deferred_.push_back(std::move(work));
          }),
      reads_at_last_refresh_(config.num_sites, 0) {
  if (config_.IsReplication()) {
    codec_ = std::make_unique<ReplicationCodec>(config_.r);
  } else {
    codec_ = std::make_unique<ReedSolomonCodec>(config_.k, config_.r);
  }
  nodes_.reserve(config_.num_sites);
  for (std::size_t j = 0; j < config_.num_sites; ++j) {
    nodes_.push_back(std::make_unique<StorageNode>());
  }
}

void LocalECStore::StoreEncoded(BlockId id, std::span<const std::uint8_t> data,
                                std::span<const SiteId> sites) {
  std::vector<ChunkData> chunks = codec_->Encode(data);
  if (sites.size() != chunks.size()) {
    throw std::runtime_error("LocalECStore::Put: wrong site count");
  }
  state_.AddBlock(id, data.size(), codec_->ChunkSize(data.size()),
                  codec_->RequiredChunks(),
                  codec_->TotalChunks() - codec_->RequiredChunks(), sites);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    nodes_[sites[i]]->PutChunk(id, static_cast<ChunkIndex>(i),
                               std::move(chunks[i]));
  }
}

void LocalECStore::Put(BlockId id, std::span<const std::uint8_t> data) {
  const std::vector<SiteId> sites = control_plane_.SelectWriteSites(
      static_cast<std::uint32_t>(codec_->TotalChunks()));
  if (sites.empty()) {
    throw std::runtime_error("LocalECStore::Put: not enough available sites");
  }
  StoreEncoded(id, data, sites);
}

void LocalECStore::Put(BlockId id, std::span<const std::uint8_t> data,
                       std::span<const SiteId> sites) {
  StoreEncoded(id, data, sites);
}

std::vector<std::uint8_t> LocalECStore::Get(BlockId id) {
  const std::vector<BlockId> one = {id};
  return std::move(MultiGet(one)[0]);
}

std::map<BlockId, std::vector<IndexedChunk>> LocalECStore::FetchChunks(
    const AccessPlan& plan, std::span<const BlockDemand> demands) {
  std::map<BlockId, std::vector<IndexedChunk>> fetched;
  for (const ChunkRead& read : plan.reads) {
    StorageNode& n = *nodes_[read.site];
    // A site can die (or a chunk move) between planning and fetch; skip
    // the unreachable read here and let the degraded pass below make up
    // the shortfall — the client-side rerouting of Section VI-C4.
    if (!n.available() || !n.HasChunk(read.block, read.chunk)) continue;
    fetched[read.block].push_back({read.chunk, *n.GetChunk(read.block, read.chunk)});
  }

  for (const BlockDemand& demand : demands) {
    auto& got = fetched[demand.block];
    const BlockInfo& info = state_.GetBlock(demand.block);
    if (got.size() >= info.k) continue;

    // Degraded read: the plan could not deliver k chunks. Its cached form
    // is stale, and any k reachable chunks will do.
    control_plane_.InvalidateBlock(demand.block);
    std::set<ChunkIndex> have;
    for (const IndexedChunk& c : got) have.insert(c.index);
    for (const ChunkLocation& loc : info.locations) {
      if (got.size() >= info.k) break;
      if (have.count(loc.chunk)) continue;
      if (!state_.IsSiteAvailable(loc.site)) continue;
      StorageNode& n = *nodes_[loc.site];
      if (!n.available() || !n.HasChunk(demand.block, loc.chunk)) continue;
      got.push_back({loc.chunk, *n.GetChunk(demand.block, loc.chunk)});
      have.insert(loc.chunk);
    }
    if (got.size() < info.k) {
      throw std::runtime_error(
          "LocalECStore::MultiGet: block unreadable after degraded replan");
    }
  }
  return fetched;
}

std::vector<std::vector<std::uint8_t>> LocalECStore::MultiGet(
    std::span<const BlockId> ids) {
  control_plane_.RecordRequest(ids);
  ++gets_since_refresh_;
  if (gets_since_refresh_ % 64 == 0) RefreshLoadFromCounters();

  DemandResult dr = BuildDemands(state_, ids, config_.EffectiveDelta());
  for (std::size_t i = 0; i < dr.readable.size(); ++i) {
    if (!dr.readable[i]) {
      throw std::runtime_error("LocalECStore::MultiGet: block unreadable");
    }
  }

  // R2: one shared plan decision — cached plan, greedy fallback, or the
  // random baseline. Never an inline ILP solve.
  const PlanDecision decision =
      control_plane_.SelectAccessPlan(ids, dr.demands);

  // Fetch chunks per block; a late-binding plan may fetch extras, decode
  // uses the first k.
  std::map<BlockId, std::vector<IndexedChunk>> fetched =
      FetchChunks(decision.plan, dr.demands);

  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(ids.size());
  for (BlockId id : ids) {
    const BlockInfo& info = state_.GetBlock(id);
    out.push_back(codec_->Decode(fetched.at(id), info.block_bytes));
  }

  // The response is assembled; now run any queued background refinement
  // (the synchronous embodiment's "off the request path").
  DrainBackgroundWork();
  return out;
}

void LocalECStore::DrainBackgroundWork() {
  // Each unit can enqueue its successor (the worker pump), so loop until
  // the queue is truly empty.
  while (!deferred_.empty()) {
    ControlPlane::Deferred work = std::move(deferred_.front());
    deferred_.pop_front();
    work();
  }
}

bool LocalECStore::Remove(BlockId id) {
  if (!state_.Contains(id)) return false;
  control_plane_.InvalidateBlock(id);
  const BlockInfo info = state_.GetBlock(id);
  for (const ChunkLocation& loc : info.locations) {
    nodes_[loc.site]->DeleteChunk(id, loc.chunk);
  }
  return state_.RemoveBlock(id);
}

void LocalECStore::FailSite(SiteId site) {
  state_.SetSiteAvailable(site, false);
  nodes_[site]->set_available(false);
  control_plane_.OnSiteFailed(site);
}

void LocalECStore::RecoverSite(SiteId site) {
  state_.SetSiteAvailable(site, true);
  nodes_[site]->set_available(true);
}

std::uint64_t LocalECStore::RepairSite(SiteId site) {
  std::uint64_t rebuilt = 0;
  for (BlockId block : state_.BlocksWithChunkAt(site)) {
    const BlockInfo& info = state_.GetBlock(block);
    const auto survivors = state_.AvailableLocations(block);
    if (survivors.size() < info.k) continue;  // Data loss: cannot rebuild.

    // The lost chunk's index is recorded in the catalog.
    const auto lost = std::find_if(
        info.locations.begin(), info.locations.end(),
        [site](const ChunkLocation& l) { return l.site == site; });
    const ChunkIndex lost_index = lost->chunk;

    // Reconstruct the block from k survivors, re-encode, extract the
    // lost chunk's content.
    std::vector<IndexedChunk> gathered;
    for (std::size_t i = 0; i < info.k; ++i) {
      const ChunkLocation& loc = survivors[i];
      const ChunkData* data = nodes_[loc.site]->GetChunk(block, loc.chunk);
      if (data == nullptr) throw std::runtime_error("RepairSite: catalog/node mismatch");
      gathered.push_back({loc.chunk, *data});
    }
    const std::vector<std::uint8_t> decoded =
        codec_->Decode(gathered, info.block_bytes);
    std::vector<ChunkData> re_encoded = codec_->Encode(decoded);

    const SiteId best = control_plane_.SelectRepairDestination(block);
    if (best == kInvalidSite) continue;
    nodes_[best]->PutChunk(block, lost_index, std::move(re_encoded[lost_index]));
    state_.MoveChunk(block, site, best);
    control_plane_.RecordRepair(block);
    nodes_[site]->DeleteChunk(block, lost_index);  // No-op while failed data kept.
    ++rebuilt;
  }
  return rebuilt;
}

std::optional<MovementPlan> LocalECStore::RunMovementRound() {
  RefreshLoadFromCounters();
  const auto plan = control_plane_.SelectMovement(
      static_cast<double>(co_access().requests_in_window()));
  if (!plan) return std::nullopt;

  // Execute with a real data copy: read at source, write at destination,
  // commit metadata, delete the old copy.
  const BlockInfo& info = state_.GetBlock(plan->block);
  const auto loc = std::find_if(
      info.locations.begin(), info.locations.end(),
      [&](const ChunkLocation& l) { return l.site == plan->source; });
  if (loc == info.locations.end()) return std::nullopt;
  const ChunkIndex chunk = loc->chunk;
  const ChunkData* data = nodes_[plan->source]->GetChunk(plan->block, chunk);
  if (data == nullptr) return std::nullopt;
  const std::uint64_t chunk_bytes = data->size();
  nodes_[plan->destination]->PutChunk(plan->block, chunk, *data);
  if (!state_.MoveChunk(plan->block, plan->source, plan->destination)) {
    nodes_[plan->destination]->DeleteChunk(plan->block, chunk);
    return std::nullopt;
  }
  control_plane_.RecordMoveExecuted(plan->block, chunk_bytes);
  nodes_[plan->source]->DeleteChunk(plan->block, chunk);
  return plan;
}

std::uint64_t LocalECStore::TotalStoredBytes() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->bytes_stored();
  return total;
}

void LocalECStore::RefreshLoadFromCounters() {
  // Derive site load from reads served since the last refresh: the
  // in-process analogue of the periodic load reports.
  std::uint64_t total = 0;
  std::vector<std::uint64_t> deltas(nodes_.size(), 0);
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    deltas[j] = nodes_[j]->reads_served() - reads_at_last_refresh_[j];
    reads_at_last_refresh_[j] = nodes_[j]->reads_served();
    total += deltas[j];
  }
  if (total == 0) return;
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    const double util =
        static_cast<double>(deltas[j]) / static_cast<double>(total);
    control_plane_.RecordLoadReport(static_cast<SiteId>(j), util, 0,
                                    nodes_[j]->chunk_count(), /*msg_bytes=*/0);
    // Overhead estimate proportional to relative load: busy nodes answer
    // probes slower. The swing is kept moderate (1-5 ms) so that load
    // awareness tempers, rather than dominates, co-location decisions.
    control_plane_.RecordProbe(static_cast<SiteId>(j), 1.0 + util * 4.0,
                               /*msg_bytes=*/0);
  }
  control_plane_.ReloadPlansOnDrift();
  gets_since_refresh_ = 0;
}

}  // namespace ecstore
