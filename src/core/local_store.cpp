#include "core/local_store.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <set>
#include <stdexcept>

namespace ecstore {

namespace {

/// Per-block progress of one parallel fetch round.
struct BlockGather {
  std::uint32_t k = 0;              // completion threshold (first k win)
  std::vector<IndexedChunk> got;    // delivered chunks, capped at k
  std::set<ChunkIndex> have;        // chunk indices present in `got`
  std::set<ChunkIndex> tried;       // chunk indices ever issued
  bool retried = false;             // deadline hedge already spent
};

/// Shared between the requesting thread and the fetch workers. Jobs hold
/// a shared_ptr so the context (and its mutex) outlives an abandoned
/// request with stragglers still queued.
struct FetchContext {
  std::mutex mu;
  std::condition_variable cv;
  std::map<BlockId, BlockGather> blocks;
  std::size_t unsatisfied = 0;  // blocks still short of k
  std::size_t outstanding = 0;  // fetches not yet completed
  bool harvested = false;       // results collected; late arrivals dropped
  DataPlane::CancelToken cancel =
      std::make_shared<std::atomic<bool>>(false);
};

}  // namespace

// ---------------------------------------------------------------------------

LocalECStore::LocalECStore(ECStoreConfig config)
    : config_(config),
      rng_(config.seed),
      state_(config.num_sites),
      control_plane_(
          &config_, &state_, &rng_,
          // Executor seam: deferred ILP solves queue up and run once the
          // request has been answered — never on the MultiGet fast path.
          // Fires from inside control-plane calls made under meta_mu_, so
          // it takes only defer_mu_ (lock order meta_mu_ -> defer_mu_).
          [this](ControlPlane::Deferred work) {
            std::lock_guard<std::mutex> lock(defer_mu_);
            deferred_.push_back(std::move(work));
          }),
      reads_at_last_refresh_(config.num_sites, 0) {
  if (config_.IsReplication()) {
    codec_ = std::make_unique<ReplicationCodec>(config_.r);
  } else {
    codec_ = std::make_unique<ReedSolomonCodec>(config_.k, config_.r);
  }
  nodes_.reserve(config_.num_sites);
  for (std::size_t j = 0; j < config_.num_sites; ++j) {
    nodes_.push_back(std::make_unique<StorageNode>());
  }
  data_plane_ =
      std::make_unique<DataPlane>(config_.num_sites, config_.data_plane);
}

void LocalECStore::StoreEncoded(BlockId id, std::span<const std::uint8_t> data,
                                std::span<const SiteId> sites) {
  std::vector<ChunkData> chunks = codec_->Encode(data);
  if (sites.size() != chunks.size()) {
    throw std::runtime_error("LocalECStore::Put: wrong site count");
  }
  state_.AddBlock(id, data.size(), codec_->ChunkSize(data.size()),
                  codec_->RequiredChunks(),
                  codec_->TotalChunks() - codec_->RequiredChunks(), sites);
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    nodes_[sites[i]]->PutChunk(id, static_cast<ChunkIndex>(i),
                               std::move(chunks[i]));
  }
}

void LocalECStore::Put(BlockId id, std::span<const std::uint8_t> data) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  const std::vector<SiteId> sites = control_plane_.SelectWriteSites(
      static_cast<std::uint32_t>(codec_->TotalChunks()));
  if (sites.empty()) {
    throw std::runtime_error("LocalECStore::Put: not enough available sites");
  }
  StoreEncoded(id, data, sites);
}

void LocalECStore::Put(BlockId id, std::span<const std::uint8_t> data,
                       std::span<const SiteId> sites) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  StoreEncoded(id, data, sites);
}

std::vector<std::uint8_t> LocalECStore::Get(BlockId id) {
  const std::vector<BlockId> one = {id};
  return std::move(MultiGet(one)[0]);
}

std::map<BlockId, std::vector<IndexedChunk>> LocalECStore::FetchChunks(
    const AccessPlan& plan, std::span<const BlockDemand> demands,
    const std::map<BlockId, BlockMeta>& meta) {
  auto ctx = std::make_shared<FetchContext>();

  // Enqueue one data-plane job per fetch. The caller must hold ctx->mu
  // and have bumped `outstanding` / recorded `tried` beforehand. Workers
  // touch only the context, the node, and their own queue — never the
  // store's metadata lock.
  const auto issue = [this, &ctx](BlockId block, ChunkIndex chunk,
                                  SiteId site) {
    StorageNode* node = nodes_[site].get();
    data_plane_->Submit(
        site,
        [ctx, node, block, chunk](bool cancelled) {
          std::shared_ptr<const ChunkData> data;
          if (!cancelled) {
            bool skip;  // Block already complete: ignore the straggler.
            {
              std::lock_guard<std::mutex> lock(ctx->mu);
              const BlockGather& g = ctx->blocks.at(block);
              skip = ctx->harvested || g.got.size() >= g.k;
            }
            // A failed node or a moved/deleted chunk answers nullptr — a
            // miss, routed into the degraded top-up below, not an error.
            if (!skip) data = node->GetChunk(block, chunk);
          }
          std::lock_guard<std::mutex> lock(ctx->mu);
          BlockGather& g = ctx->blocks.at(block);
          if (data != nullptr && !ctx->harvested && g.got.size() < g.k &&
              !g.have.count(chunk)) {
            g.have.insert(chunk);
            g.got.push_back({chunk, *data});
            if (g.got.size() == g.k && --ctx->unsatisfied == 0) {
              // Every block is complete: still-queued fetches are
              // stragglers — cancel them at the queue.
              ctx->cancel->store(true, std::memory_order_release);
            }
          }
          --ctx->outstanding;
          ctx->cv.notify_all();
        },
        ctx->cancel);
  };

  {
    std::lock_guard<std::mutex> lock(ctx->mu);
    for (const BlockDemand& demand : demands) {
      ctx->blocks[demand.block].k = meta.at(demand.block).k;
    }
    ctx->unsatisfied = ctx->blocks.size();
    for (const ChunkRead& read : plan.reads) {
      BlockGather& g = ctx->blocks.at(read.block);
      g.tried.insert(read.chunk);
      ++ctx->outstanding;
      issue(read.block, read.chunk, read.site);
    }
  }

  // Wait for the race to settle: every block complete, or no fetch left
  // in flight. With a deadline configured, a block still short of k when
  // it expires gets one hedged retry round against its untried chunks.
  const double deadline_ms = config_.data_plane.fetch_deadline_ms;
  std::unique_lock<std::mutex> lock(ctx->mu);
  const auto settled = [&ctx] {
    return ctx->unsatisfied == 0 || ctx->outstanding == 0;
  };
  if (deadline_ms > 0 &&
      !ctx->cv.wait_for(lock,
                        std::chrono::duration<double, std::milli>(deadline_ms),
                        settled)) {
    for (auto& [block, g] : ctx->blocks) {
      if (g.got.size() >= g.k || g.retried) continue;
      g.retried = true;
      for (const ChunkLocation& loc : meta.at(block).locations) {
        if (g.tried.count(loc.chunk)) continue;
        g.tried.insert(loc.chunk);
        ++ctx->outstanding;
        issue(block, loc.chunk, loc.site);
      }
    }
  }
  ctx->cv.wait(lock, settled);

  ctx->harvested = true;
  ctx->cancel->store(true, std::memory_order_release);
  std::map<BlockId, std::vector<IndexedChunk>> fetched;
  for (auto& [block, g] : ctx->blocks) fetched[block] = std::move(g.got);
  lock.unlock();

  bool short_of_k = false;
  for (const BlockDemand& demand : demands) {
    if (fetched[demand.block].size() < meta.at(demand.block).k) {
      short_of_k = true;
      break;
    }
  }
  if (!short_of_k) return fetched;

  // Degraded read: the plan could not deliver k chunks for some block.
  // Its cached form is stale, and any k reachable chunks will do — the
  // client-side rerouting of Section VI-C4. Runs under the metadata lock
  // so the catalog, site availability, and node contents are consistent
  // (no mover/repair can commit mid-scan); the direct node reads bypass
  // injected data-plane latency, keeping the fallback deterministic.
  std::lock_guard<std::mutex> meta_lock(meta_mu_);
  for (const BlockDemand& demand : demands) {
    auto& got = fetched[demand.block];
    const BlockInfo& info = state_.GetBlock(demand.block);
    if (got.size() >= info.k) continue;

    control_plane_.InvalidateBlock(demand.block);
    std::set<ChunkIndex> have;
    for (const IndexedChunk& c : got) have.insert(c.index);
    for (const ChunkLocation& loc : info.locations) {
      if (got.size() >= info.k) break;
      if (have.count(loc.chunk)) continue;
      if (!state_.IsSiteAvailable(loc.site)) continue;
      const auto data = nodes_[loc.site]->GetChunk(demand.block, loc.chunk);
      if (data == nullptr) continue;
      got.push_back({loc.chunk, *data});
      have.insert(loc.chunk);
    }
    if (got.size() < info.k) {
      throw std::runtime_error(
          "LocalECStore::MultiGet: block unreadable after degraded replan");
    }
  }
  return fetched;
}

std::vector<std::vector<std::uint8_t>> LocalECStore::MultiGet(
    std::span<const BlockId> ids) {
  DemandResult dr;
  PlanDecision decision;
  std::map<BlockId, BlockMeta> meta;
  {
    // Planning: one serialized control-plane decision plus a catalog
    // snapshot, so the parallel fetch phase never touches mutable state.
    std::lock_guard<std::mutex> lock(meta_mu_);
    control_plane_.RecordRequest(ids);
    ++gets_since_refresh_;
    if (gets_since_refresh_ % 64 == 0) RefreshLoadFromCounters();

    dr = BuildDemands(state_, ids, config_.EffectiveDelta());
    for (std::size_t i = 0; i < dr.readable.size(); ++i) {
      if (!dr.readable[i]) {
        throw std::runtime_error("LocalECStore::MultiGet: block unreadable");
      }
    }

    // R2: one shared plan decision — cached plan, greedy fallback, or the
    // random baseline. Never an inline ILP solve.
    decision = control_plane_.SelectAccessPlan(ids, dr.demands);

    for (BlockId id : ids) {
      if (meta.count(id)) continue;
      const BlockInfo& info = state_.GetBlock(id);
      meta.emplace(id, BlockMeta{info.k, info.block_bytes, info.locations});
    }
  }

  // Fetch chunks per block in parallel; a late-binding plan fetches
  // extras and each block completes on its first k arrivals.
  std::map<BlockId, std::vector<IndexedChunk>> fetched =
      FetchChunks(decision.plan, dr.demands, meta);

  std::vector<std::vector<std::uint8_t>> out;
  out.reserve(ids.size());
  for (BlockId id : ids) {
    out.push_back(codec_->Decode(fetched.at(id), meta.at(id).block_bytes));
  }

  // The response is assembled; now run any queued background refinement
  // off the request's critical path.
  DrainBackgroundWork();
  return out;
}

void LocalECStore::DrainBackgroundWork() {
  // Each unit can enqueue its successor (the worker pump), so loop until
  // the queue is truly empty. Units run under the metadata lock: deferred
  // solves touch the plan cache, cluster state, and RNG.
  for (;;) {
    ControlPlane::Deferred work;
    {
      std::lock_guard<std::mutex> lock(defer_mu_);
      if (deferred_.empty()) return;
      work = std::move(deferred_.front());
      deferred_.pop_front();
    }
    std::lock_guard<std::mutex> lock(meta_mu_);
    work();
  }
}

bool LocalECStore::Contains(BlockId id) const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  return state_.Contains(id);
}

ControlPlaneUsage LocalECStore::Usage() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  return control_plane_.Usage();
}

CostParams LocalECStore::CurrentCostParams() const {
  std::lock_guard<std::mutex> lock(meta_mu_);
  return control_plane_.CurrentCostParams();
}

bool LocalECStore::Remove(BlockId id) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  if (!state_.Contains(id)) return false;
  control_plane_.InvalidateBlock(id);
  const BlockInfo info = state_.GetBlock(id);
  for (const ChunkLocation& loc : info.locations) {
    nodes_[loc.site]->DeleteChunk(id, loc.chunk);
  }
  return state_.RemoveBlock(id);
}

void LocalECStore::FailSite(SiteId site) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  state_.SetSiteAvailable(site, false);
  nodes_[site]->set_available(false);
  control_plane_.OnSiteFailed(site);
}

void LocalECStore::RecoverSite(SiteId site) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  state_.SetSiteAvailable(site, true);
  nodes_[site]->set_available(true);
}

std::uint64_t LocalECStore::RepairSite(SiteId site) {
  std::lock_guard<std::mutex> lock(meta_mu_);
  std::uint64_t rebuilt = 0;
  for (BlockId block : state_.BlocksWithChunkAt(site)) {
    const BlockInfo& info = state_.GetBlock(block);
    const auto survivors = state_.AvailableLocations(block);
    if (survivors.size() < info.k) continue;  // Data loss: cannot rebuild.

    // The lost chunk's index is recorded in the catalog.
    const auto lost = std::find_if(
        info.locations.begin(), info.locations.end(),
        [site](const ChunkLocation& l) { return l.site == site; });
    const ChunkIndex lost_index = lost->chunk;

    // Reconstruct the block from k survivors, re-encode, extract the
    // lost chunk's content.
    std::vector<IndexedChunk> gathered;
    for (std::size_t i = 0; i < info.k; ++i) {
      const ChunkLocation& loc = survivors[i];
      const auto data = nodes_[loc.site]->GetChunk(block, loc.chunk);
      if (data == nullptr) throw std::runtime_error("RepairSite: catalog/node mismatch");
      gathered.push_back({loc.chunk, *data});
    }
    const std::vector<std::uint8_t> decoded =
        codec_->Decode(gathered, info.block_bytes);
    std::vector<ChunkData> re_encoded = codec_->Encode(decoded);

    const SiteId best = control_plane_.SelectRepairDestination(block);
    if (best == kInvalidSite) continue;
    nodes_[best]->PutChunk(block, lost_index, std::move(re_encoded[lost_index]));
    state_.MoveChunk(block, site, best);
    control_plane_.RecordRepair(block);
    nodes_[site]->DeleteChunk(block, lost_index);  // No-op while failed data kept.
    ++rebuilt;
  }
  return rebuilt;
}

std::optional<MovementPlan> LocalECStore::RunMovementRound() {
  std::lock_guard<std::mutex> lock(meta_mu_);
  RefreshLoadFromCounters();
  const auto plan = control_plane_.SelectMovement(
      static_cast<double>(control_plane_.co_access().requests_in_window()));
  if (!plan) return std::nullopt;

  // Execute with a real data copy: read at source, write at destination,
  // commit metadata, delete the old copy. All under the metadata lock, so
  // a concurrent fetch either sees the chunk at its old site (until the
  // delete) or replans against the committed new location.
  const BlockInfo& info = state_.GetBlock(plan->block);
  const auto loc = std::find_if(
      info.locations.begin(), info.locations.end(),
      [&](const ChunkLocation& l) { return l.site == plan->source; });
  if (loc == info.locations.end()) return std::nullopt;
  const ChunkIndex chunk = loc->chunk;
  const auto data = nodes_[plan->source]->GetChunk(plan->block, chunk);
  if (data == nullptr) return std::nullopt;
  const std::uint64_t chunk_bytes = data->size();
  nodes_[plan->destination]->PutChunk(plan->block, chunk, *data);
  if (!state_.MoveChunk(plan->block, plan->source, plan->destination)) {
    nodes_[plan->destination]->DeleteChunk(plan->block, chunk);
    return std::nullopt;
  }
  control_plane_.RecordMoveExecuted(plan->block, chunk_bytes);
  nodes_[plan->source]->DeleteChunk(plan->block, chunk);
  return plan;
}

std::uint64_t LocalECStore::TotalStoredBytes() const {
  std::uint64_t total = 0;
  for (const auto& node : nodes_) total += node->bytes_stored();
  return total;
}

void LocalECStore::RefreshLoadFromCounters() {
  // Derive site load from reads served since the last refresh: the
  // in-process analogue of the periodic load reports. Counters are
  // atomics bumped by fetch workers; meta_mu_ (held by the caller)
  // serializes the refresh itself.
  std::uint64_t total = 0;
  std::vector<std::uint64_t> deltas(nodes_.size(), 0);
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    deltas[j] = nodes_[j]->reads_served() - reads_at_last_refresh_[j];
    reads_at_last_refresh_[j] = nodes_[j]->reads_served();
    total += deltas[j];
  }
  // An idle window still records reports and probes (with zero
  // utilization, decaying o_j toward the idle baseline) so drift
  // detection sees recovery instead of freezing at the last busy epoch.
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    const double util =
        total == 0 ? 0.0
                   : static_cast<double>(deltas[j]) / static_cast<double>(total);
    control_plane_.RecordLoadReport(static_cast<SiteId>(j), util, 0,
                                    nodes_[j]->chunk_count(), /*msg_bytes=*/0);
    // Probe overhead estimate. When the data plane injects real latency,
    // the measured per-fetch service time IS the probe signal — the cost
    // model then discovers genuinely slow sites. Otherwise fall back to a
    // synthetic load-proportional estimate: busy nodes answer probes
    // slower, with a moderate swing (1-5 ms) so load awareness tempers,
    // rather than dominates, co-location decisions.
    double rtt_ms = 1.0 + util * 4.0;
    if (data_plane_->InjectsLatency()) {
      const auto measured = data_plane_->HarvestLatency(static_cast<SiteId>(j));
      if (measured.samples > 0) rtt_ms = measured.MeanMs();
    }
    control_plane_.RecordProbe(static_cast<SiteId>(j), rtt_ms,
                               /*msg_bytes=*/0);
  }
  control_plane_.ReloadPlansOnDrift();
  gets_since_refresh_ = 0;
}

}  // namespace ecstore
