// DataPlane: the concurrent fetch engine of the real-bytes embodiment
// (DESIGN.md §8).
//
// One FIFO request queue per storage site, each served by a small fixed
// set of worker threads (the site's service concurrency). Workers inject
// a configurable per-site service latency — base + per-site extra +
// uniform jitter, with a straggler probability/multiplier — before
// executing each job, so heavy-tailed service times and hot-site queueing
// are reproducible on real bytes: this is what lets EC+LB's first-k-wins
// racing be exhibited (and regression-tested) outside the simulator.
//
// Cancellation is cooperative: a job may carry a CancelToken; when the
// token is set before a worker picks the job up, the worker skips latency
// injection and invokes the job with cancelled=true. Jobs ALWAYS run
// exactly once (cancelled or not), so callers can carry completion
// bookkeeping (outstanding-fetch counters) inside the job itself.
//
// Latency draws come from per-worker RNG streams seeded from
// DataPlaneParams::seed — independent of the control-plane RNG, so fetch
// timing never perturbs planning decisions (embodiment parity).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/config.h"

namespace ecstore {

class DataPlane {
 public:
  /// Shared flag observed by workers before picking a queued job up: set
  /// it to drop still-queued stragglers cheaply (no latency injection).
  using CancelToken = std::shared_ptr<std::atomic<bool>>;
  /// One unit of site work. Invoked with cancelled=true when the token
  /// was set before pickup, the job's deadline expired in the queue, or
  /// the plane is shutting down; the job must still run its completion
  /// bookkeeping in that case.
  using Job = std::function<void(bool cancelled)>;
  using Clock = std::chrono::steady_clock;
  /// Observes each served job's queue sojourn (pickup − enqueue, ms) —
  /// the CoDel admission signal (DESIGN.md §14). Fixed at construction
  /// so workers read it without synchronization; must be thread-safe.
  using SojournObserver = std::function<void(double sojourn_ms)>;

  DataPlane(std::size_t num_sites, DataPlaneParams params,
            SojournObserver sojourn_observer = nullptr);
  ~DataPlane();  // Drains every queue (remaining jobs run cancelled) and joins.

  DataPlane(const DataPlane&) = delete;
  DataPlane& operator=(const DataPlane&) = delete;

  /// Enqueues `job` on `site`'s FIFO queue. A job whose `deadline` has
  /// already passed when a worker picks it up is expired at the queue —
  /// run with cancelled=true, no latency injection, no chunk read —
  /// because its requester has, by definition, already given up on it.
  /// Clock::time_point::max() (the default) means no deadline.
  void Submit(SiteId site, Job job, CancelToken cancel = nullptr,
              Clock::time_point deadline = Clock::time_point::max());

  /// True when any latency injection is configured — i.e. measured fetch
  /// service times carry real signal for the o_j probe path.
  bool InjectsLatency() const { return injects_latency_; }

  /// Dynamic slow-site fault (DESIGN.md §9): adds `ms` of injected
  /// latency to every fetch at `site` from now on (0 heals it). Safe to
  /// call concurrently with fetches.
  void SetSiteExtraLatency(SiteId site, double ms);
  double SiteExtraLatency(SiteId site) const;

  /// Measured per-site service time (injected latency + real chunk read)
  /// accumulated since the last harvest; harvesting resets the window.
  struct LatencySample {
    double total_ms = 0;
    std::uint64_t samples = 0;
    double MeanMs() const { return samples ? total_ms / samples : 0.0; }
  };
  LatencySample HarvestLatency(SiteId site);

  /// Raw per-fetch service times (ms) recorded at `site` since the last
  /// drain. Feeds the tail model (DESIGN.md §13): unlike HarvestLatency's
  /// mean, these preserve the distribution so the control plane can build
  /// per-site latency histograms. The buffer is bounded (newest samples
  /// are dropped when it is full between drains); draining resets it.
  std::vector<double> DrainServiceSamples(SiteId site);

  std::size_t num_sites() const { return queues_.size(); }
  std::uint64_t jobs_run() const {
    return jobs_run_.load(std::memory_order_relaxed);
  }
  std::uint64_t jobs_cancelled() const {
    return jobs_cancelled_.load(std::memory_order_relaxed);
  }
  /// Jobs whose deadline had passed by pickup (counted separately from
  /// token cancellations — these are the deadline subsystem's
  /// `expired_jobs_cancelled`).
  std::uint64_t jobs_expired() const {
    return jobs_expired_.load(std::memory_order_relaxed);
  }

 private:
  struct QueuedJob {
    Job fn;
    CancelToken cancel;
    Clock::time_point enqueued;
    Clock::time_point deadline = Clock::time_point::max();
  };
  struct SiteQueue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<QueuedJob> jobs;
    bool stop = false;
    // Measured service-time window (microseconds), harvested by the
    // load-refresh path into o_j probes.
    std::atomic<std::uint64_t> latency_us{0};
    std::atomic<std::uint64_t> samples{0};
    // Raw per-fetch service times for the tail model, bounded so a stalled
    // drain path cannot grow memory without limit. Guarded by sample_mu
    // (not `mu`: workers must not contend with Submit on the job queue
    // lock just to record a sample).
    std::mutex sample_mu;
    std::vector<double> service_samples_ms;
    // Fault-injected extra latency (slow-site degradation).
    std::atomic<double> fault_extra_ms{0.0};
  };

  void WorkerLoop(SiteId site, std::uint64_t worker, SiteQueue* queue);
  double DrawLatencyMs(SiteId site, Rng& rng) const;

  DataPlaneParams params_;
  bool injects_latency_ = false;
  /// Immutable after construction (workers read it lock-free).
  SojournObserver sojourn_observer_;
  std::vector<std::unique_ptr<SiteQueue>> queues_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> jobs_run_{0};
  std::atomic<std::uint64_t> jobs_cancelled_{0};
  std::atomic<std::uint64_t> jobs_expired_{0};
};

}  // namespace ecstore
