#include "core/calibrate.h"

#include <chrono>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "erasure/codec.h"
#include "gf/gf256_kernels.h"

namespace ecstore {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Runs `body` until both `min_measure_ms` elapsed and 3 iterations, then
// returns throughput in bytes per millisecond.
template <typename Body>
double MeasureBytesPerMs(std::size_t bytes_per_iter, double min_measure_ms,
                         Body body) {
  // One untimed warm-up to fault in buffers and build cached tables.
  body();
  int iters = 0;
  const auto start = Clock::now();
  double elapsed;
  do {
    body();
    ++iters;
    elapsed = ElapsedMs(start);
  } while (elapsed < min_measure_ms || iters < 3);
  return static_cast<double>(bytes_per_iter) * iters / elapsed;
}

}  // namespace

CodingCalibration MeasureCodingThroughput(std::uint32_t k, std::uint32_t r,
                                          std::size_t block_bytes,
                                          double min_measure_ms) {
  if (block_bytes == 0) {
    throw std::invalid_argument("MeasureCodingThroughput: block_bytes == 0");
  }
  ReedSolomonCodec codec(k, r);
  Rng rng(42);
  std::vector<std::uint8_t> block(block_bytes);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.NextBounded(256));

  CodingCalibration out;
  out.kernel = gf::ActiveKernels().name;

  out.encode_bytes_per_ms = MeasureBytesPerMs(
      block_bytes, min_measure_ms, [&] { codec.Encode(block); });

  const auto chunks = codec.Encode(block);

  // Parity-involving decode: take all r parity chunks plus the trailing
  // systematic chunks needed to reach k, so the general (matrix-inverse)
  // path runs for every data row.
  std::vector<IndexedChunk> parity_set;
  for (std::uint32_t p = 0; p < r && parity_set.size() < k; ++p) {
    parity_set.push_back({static_cast<ChunkIndex>(k + p), chunks[k + p]});
  }
  for (std::uint32_t i = k; i-- > 0 && parity_set.size() < k;) {
    parity_set.push_back({static_cast<ChunkIndex>(i), chunks[i]});
  }
  out.decode_bytes_per_ms = MeasureBytesPerMs(
      block_bytes, min_measure_ms,
      [&] { codec.Decode(parity_set, block_bytes); });

  // All-systematic reassembly (pure memcpy path).
  std::vector<IndexedChunk> systematic_set;
  for (std::uint32_t i = 0; i < k; ++i) {
    systematic_set.push_back({static_cast<ChunkIndex>(i), chunks[i]});
  }
  out.reassemble_bytes_per_ms = MeasureBytesPerMs(
      block_bytes, min_measure_ms,
      [&] { codec.Decode(systematic_set, block_bytes); });

  return out;
}

CodingCalibration CalibrateCodingCosts(ECStoreConfig& config,
                                       std::size_t block_bytes) {
  CodingCalibration cal =
      MeasureCodingThroughput(config.k, config.r, block_bytes);
  config.encode_bytes_per_ms = cal.encode_bytes_per_ms;
  config.decode_bytes_per_ms = cal.decode_bytes_per_ms;
  config.reassemble_bytes_per_ms = cal.reassemble_bytes_per_ms;
  return cal;
}

}  // namespace ecstore
