#include "core/data_plane.h"

#include <chrono>
#include <utility>

namespace ecstore {

namespace {

// Cap on buffered raw service samples per site between drains. At the
// load-refresh cadence (every 64th MultiGet plus the maintenance tick)
// this is never reached in practice; it only bounds memory if the drain
// path stalls.
constexpr std::size_t kMaxBufferedServiceSamples = 4096;

bool AnyPositive(const std::vector<double>& v) {
  for (double x : v) {
    if (x > 0) return true;
  }
  return false;
}

}  // namespace

DataPlane::DataPlane(std::size_t num_sites, DataPlaneParams params,
                     SojournObserver sojourn_observer)
    : params_(std::move(params)),
      sojourn_observer_(std::move(sojourn_observer)) {
  injects_latency_ = params_.base_latency_ms > 0 || params_.jitter_ms > 0 ||
                     AnyPositive(params_.site_extra_latency_ms);
  const std::size_t workers =
      params_.workers_per_site > 0 ? params_.workers_per_site : 1;
  queues_.reserve(num_sites);
  for (std::size_t j = 0; j < num_sites; ++j) {
    queues_.push_back(std::make_unique<SiteQueue>());
  }
  workers_.reserve(num_sites * workers);
  for (std::size_t j = 0; j < num_sites; ++j) {
    for (std::size_t w = 0; w < workers; ++w) {
      workers_.emplace_back(&DataPlane::WorkerLoop, this,
                            static_cast<SiteId>(j), w, queues_[j].get());
    }
  }
}

DataPlane::~DataPlane() {
  for (auto& q : queues_) {
    {
      std::lock_guard<std::mutex> lock(q->mu);
      q->stop = true;
    }
    q->cv.notify_all();
  }
  for (auto& t : workers_) t.join();
}

void DataPlane::Submit(SiteId site, Job job, CancelToken cancel,
                       Clock::time_point deadline) {
  SiteQueue& q = *queues_[site];
  QueuedJob item{std::move(job), std::move(cancel), {}, deadline};
  // The enqueue stamp feeds the sojourn observer and the deadline check;
  // neither configured means no clock read on the submit path.
  if (sojourn_observer_ || deadline != Clock::time_point::max()) {
    item.enqueued = Clock::now();
  }
  {
    std::lock_guard<std::mutex> lock(q.mu);
    q.jobs.push_back(std::move(item));
  }
  q.cv.notify_one();
}

void DataPlane::SetSiteExtraLatency(SiteId site, double ms) {
  queues_[site]->fault_extra_ms.store(ms, std::memory_order_relaxed);
}

double DataPlane::SiteExtraLatency(SiteId site) const {
  return queues_[site]->fault_extra_ms.load(std::memory_order_relaxed);
}

DataPlane::LatencySample DataPlane::HarvestLatency(SiteId site) {
  SiteQueue& q = *queues_[site];
  LatencySample s;
  s.total_ms =
      static_cast<double>(q.latency_us.exchange(0, std::memory_order_relaxed)) /
      1000.0;
  s.samples = q.samples.exchange(0, std::memory_order_relaxed);
  return s;
}

std::vector<double> DataPlane::DrainServiceSamples(SiteId site) {
  SiteQueue& q = *queues_[site];
  std::vector<double> out;
  std::lock_guard<std::mutex> lock(q.sample_mu);
  out.swap(q.service_samples_ms);
  return out;
}

double DataPlane::DrawLatencyMs(SiteId site, Rng& rng) const {
  double ms = params_.base_latency_ms;
  if (site < params_.site_extra_latency_ms.size()) {
    ms += params_.site_extra_latency_ms[site];
  }
  ms += queues_[site]->fault_extra_ms.load(std::memory_order_relaxed);
  if (params_.jitter_ms > 0) ms += rng.NextDouble() * params_.jitter_ms;
  if (params_.straggler_probability > 0 &&
      rng.NextBernoulli(params_.straggler_probability)) {
    ms *= params_.straggler_factor;
  }
  return ms;
}

void DataPlane::WorkerLoop(SiteId site, std::uint64_t worker,
                           SiteQueue* queue) {
  // Independent, deterministic latency stream per (site, worker): with one
  // worker per site the injected latencies form a reproducible per-site
  // sequence, which is what makes straggler tests non-flaky.
  Rng rng(params_.seed * 0x9E3779B97F4A7C15ULL + site * 131 + worker + 1);
  for (;;) {
    QueuedJob item;
    bool draining = false;
    {
      std::unique_lock<std::mutex> lock(queue->mu);
      queue->cv.wait(lock,
                     [queue] { return queue->stop || !queue->jobs.empty(); });
      if (queue->jobs.empty()) return;  // stop && drained
      item = std::move(queue->jobs.front());
      queue->jobs.pop_front();
      draining = queue->stop;
    }
    const bool cancelled =
        draining ||
        (item.cancel && item.cancel->load(std::memory_order_acquire));
    // One clock read covers both overload-control signals; neither
    // configured (the default) keeps the pickup path clock-free.
    const bool needs_now =
        !draining && (sojourn_observer_ != nullptr ||
                      item.deadline != Clock::time_point::max());
    Clock::time_point now{};
    if (needs_now) now = Clock::now();
    if (sojourn_observer_ && !draining) {
      // Queue sojourn of every picked-up job — expired ones included:
      // a job that aged out in the queue is the strongest standing-queue
      // evidence CoDel can get.
      sojourn_observer_(
          std::chrono::duration<double, std::milli>(now - item.enqueued)
              .count());
    }
    if (cancelled) {
      jobs_cancelled_.fetch_add(1, std::memory_order_relaxed);
      item.fn(true);  // Bookkeeping only: no latency, no chunk read.
      continue;
    }
    if (item.deadline != Clock::time_point::max() && now >= item.deadline) {
      // Expired in the queue (DESIGN.md §14): the request this read was
      // for has already missed its deadline — serving it now would only
      // burn a worker on an answer nobody is waiting for.
      jobs_expired_.fetch_add(1, std::memory_order_relaxed);
      item.fn(true);
      continue;
    }
    const auto start = std::chrono::steady_clock::now();
    const double inject_ms = DrawLatencyMs(site, rng);
    if (inject_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(inject_ms));
    }
    item.fn(false);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    queue->latency_us.fetch_add(static_cast<std::uint64_t>(us),
                                std::memory_order_relaxed);
    queue->samples.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> slock(queue->sample_mu);
      if (queue->service_samples_ms.size() < kMaxBufferedServiceSamples) {
        queue->service_samples_ms.push_back(static_cast<double>(us) / 1000.0);
      }
    }
    jobs_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace ecstore
