// ControlPlane: the embodiment-agnostic control plane of EC-Store
// (Fig. 3's statistics service + chunk placement service + the policy
// half of the repair service).
//
// Both embodiments — the discrete-event SimECStore and the real-bytes
// LocalECStore — drive this one component for every policy decision:
// cost-parameter snapshots (o_j/m_j), access-plan selection (plan-cache
// lookup with superset satisfaction -> validation -> greedy fallback ->
// deduplicated/bounded/recurrence-gated background ILP refinement),
// plan invalidation (chunk move, block delete, site failure, o_j drift),
// write-site placement, mover-context assembly for Algorithm 1, repair
// destinations, and the Table III resource accounting. Only *when*
// deferred work runs differs per embodiment, expressed through the
// executor seam below: the DES schedules the ILP solve on its event
// queue after the modeled solve latency; LocalECStore queues it and
// drains synchronously off the request path (or on a small executor
// pool when ilp_executor_threads > 0).
//
// --- Sharding (DESIGN.md §10) ----------------------------------------
// The block-keyed mutable structures — co-access window, plan cache,
// deferred-ILP queue — are partitioned into `control_plane_shards`
// independently locked shards (hash of block id -> shard), so concurrent
// MultiGet planners only contend when their blocks share a shard. The
// remaining state is split by role:
//   - load_mu_ (shared_mutex): load tracker + epoch overhead snapshot;
//     planners take it shared for cost snapshots, report ingestion takes
//     it exclusive.
//   - rng_mu_: the embodiment's single RNG stream. Each planning
//     decision's draws happen atomically under it.
//   - detector_mu_: the failure detector.
//   - counters: std::atomic, lock-free.
// Lock order (outer -> inner): rng_mu_ -> { load_mu_, shard.mu };
// shard.mu -> executor queue (the seam may enqueue under a shard lock —
// executors must not re-enter the control plane inline, see below).
// No path ever holds two shard locks at once: cross-shard operations
// (drift reload, site failure, Usage()) iterate shards ascending,
// locking one at a time. detector_mu_ is never held across other locks.
//
// A plan-cache entry lives in the shard of the MINIMUM block id of its
// canonical key, so lookups and inserts for the same request key always
// land on the same shard. With shards > 1 a block can appear in entries
// owned by other shards (via co-accessed partners); those entries are
// not eagerly invalidated cross-shard — they die lazily when
// ValidatePlan rejects them against the live cluster state. With
// shards = 1 (the default, and the simulator's required setting) every
// structure degenerates to the original single instance and the paper's
// exact semantics — including cross-key superset reuse — are preserved
// bit-for-bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <span>
#include <vector>

#include "cluster/state.h"
#include "common/rng.h"
#include "core/config.h"
#include "fault/detector.h"
#include "placement/mover.h"
#include "placement/plan_cache.h"
#include "placement/planner.h"
#include "stats/co_access.h"
#include "stats/load_tracker.h"

namespace ecstore {

/// Control-plane resource usage counters (Table III), extended with the
/// robustness counters of DESIGN.md §9. The control plane fills what it
/// owns (repair/detector); embodiments overlay their data-plane counters
/// (degraded reads, retries, cancellations, checksums, scrub) in their
/// own Usage() accessors.
///
/// Consistency under concurrency (DESIGN.md §10): the event counters
/// (stats/mover network bytes, ilp_solves, moves_executed,
/// chunks_repaired, sites_marked_dead) are MONOTONIC atomics — each read
/// is exact-at-some-instant and never decreases. The memory gauges
/// (stats/optimizer/mover memory) are aggregated by locking each shard
/// briefly in turn, so the total is a per-shard-consistent SNAPSHOT, not
/// a single cross-shard instant: concurrent inserts/evictions may land
/// between shard visits. No reader should assume the gauges and counters
/// describe the same moment.
struct ControlPlaneUsage {
  std::size_t stats_memory_bytes = 0;
  std::size_t optimizer_memory_bytes = 0;
  std::size_t mover_memory_bytes = 0;
  std::uint64_t stats_network_bytes = 0;    // reports + probes
  std::uint64_t mover_network_bytes = 0;    // chunk copies
  std::uint64_t ilp_solves = 0;
  std::uint64_t moves_executed = 0;

  // --- Robustness counters (DESIGN.md §9).
  std::uint64_t degraded_reads = 0;       // blocks topped up off-plan
  std::uint64_t retried_fetches = 0;      // re-issued fetches / replans
  std::uint64_t cancelled_fetch_jobs = 0; // late-binding stragglers dropped
  std::uint64_t checksum_failures = 0;    // CRC mismatches caught on reads
  std::uint64_t chunks_scrubbed = 0;      // bad/missing chunks rewritten
  std::uint64_t chunks_repaired = 0;      // chunks rebuilt by repair
  std::uint64_t sites_marked_dead = 0;    // detector-driven dead verdicts

  // --- Repair-traffic accounting (DESIGN.md §11). Bytes/chunks the
  // reconstruction paths (repair, scrub, store-level rebuilds) read
  // according to their RepairPlan — the bytes-on-wire a networked
  // deployment would move, which is where LRC and piggyback families
  // beat RS. Monotonic atomics like the other event counters.
  std::uint64_t repair_bytes_read = 0;
  std::uint64_t repair_chunks_read = 0;

  // --- Cache + hybrid-redundancy counters (DESIGN.md §12). Overlaid by
  // the embodiments from their BlockCache / ReplicaPromoter; zero when
  // both tiers are disabled.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_invalidations = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_hits = 0;
  std::uint64_t cache_bytes = 0;          // resident decoded bytes (gauge)
  std::uint64_t blocks_promoted = 0;
  std::uint64_t blocks_demoted = 0;
  std::uint64_t replica_extra_bytes = 0;  // current extra storage (gauge)

  // --- Overload-control counters (DESIGN.md §14). Overlaid by the
  // embodiments from their OverloadControl; zero when the subsystem is
  // off. All monotonic except brownout_level, a gauge holding the
  // current shed-ladder level (0 = normal .. 4 = fully browned out).
  std::uint64_t requests_shed = 0;            // admission fast-fails
  std::uint64_t deadline_exceeded = 0;        // requests past their budget
  std::uint64_t breaker_opens = 0;            // closed->open transitions
  std::uint64_t breaker_half_open_probes = 0; // probe requests granted
  std::uint64_t brownout_level = 0;           // current ladder level (gauge)
  std::uint64_t expired_jobs_cancelled = 0;   // queue jobs expired pre-service
};

/// How an access plan was produced (the R2 decision of Fig. 3).
enum class PlanSource {
  kCacheHit,  // validated cached ILP solution (or superset restriction)
  kGreedy,    // cache miss: greedy fallback, ILP queued in background
  kRandom,    // cost model disabled (R / EC / EC+LB techniques)
};

/// The outcome of one plan selection.
struct PlanDecision {
  AccessPlan plan;
  PlanSource source = PlanSource::kRandom;

  bool cache_hit() const { return source == PlanSource::kCacheHit; }
};

/// The shared planning/stats/mover/repair path. Owns the statistics
/// trackers and the plan cache; borrows the cluster state, config, and
/// RNG stream from the embodiment (so a DES run remains bit-reproducible
/// against the embodiment's single seeded stream).
///
/// Internally synchronized (see the sharding note above): MultiGet-path
/// calls (RecordRequest, SelectAccessPlan, cost snapshots) may run
/// concurrently from many client threads and only contend per shard.
/// The reference accessors co_access() / load_tracker() /
/// failure_detector() / plan_cache() bypass that synchronization — they
/// are for single-threaded diagnostics (the DES, tests, CLI dumps), not
/// for use concurrent with live traffic.
///
/// The executor seam may be invoked while a shard lock is held, so
/// executors must not re-enter the control plane inline — they queue the
/// unit and run it later (both embodiments do).
class ControlPlane {
 public:
  using Deferred = std::function<void()>;
  /// Executor seam: receives the next unit of deferred background work
  /// (one ILP solve + worker continuation). SimECStore schedules it on
  /// the DES event queue after the modeled solve latency; LocalECStore
  /// appends it to a queue drained off the request path.
  using Executor = std::function<void(Deferred)>;
  /// Test/diagnostics hook: observes every SelectAccessPlan decision.
  /// Invoked outside all control-plane locks; must be set before
  /// concurrent traffic starts and be thread-safe itself if the
  /// embodiment is concurrent.
  using PlanObserver =
      std::function<void(std::span<const BlockId>, const PlanDecision&)>;
  /// Block-cache coherence seam (DESIGN.md §12): invoked — outside all
  /// control-plane locks — whenever a block's cached plans are
  /// invalidated (move, delete, repair rewrite). Embodiments hook their
  /// BlockCache's eager eviction here; the cache's version check remains
  /// the correctness backstop. Set before traffic starts; must be
  /// thread-safe in concurrent embodiments.
  using InvalidationListener = std::function<void(BlockId)>;

  ControlPlane(const ECStoreConfig* config, ClusterState* state, Rng* rng,
               Executor defer_solve, LoadTrackerParams load_params = {});

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  // --- Sharding --------------------------------------------------------
  std::size_t num_shards() const { return shards_.size(); }

  /// Owning shard of a block id (and of every plan-cache key whose
  /// minimum block id it is).
  std::size_t ShardOf(BlockId id) const {
    // Fibonacci multiplicative mix so sequential ids spread evenly.
    return static_cast<std::size_t>((id * 0x9E3779B97F4A7C15ULL) >> 40) %
           shards_.size();
  }

  // --- Statistics service (Section V-A) -------------------------------
  /// Shard-0 trackers, for single-threaded diagnostics and the shards=1
  /// embodiments (see the class comment for the thread-safety caveat).
  CoAccessTracker& co_access() { return shards_[0]->co_access; }
  const CoAccessTracker& co_access() const { return shards_[0]->co_access; }
  LoadTracker& load_tracker() { return load_tracker_; }
  const LoadTracker& load_tracker() const { return load_tracker_; }

  /// Windowed sampled-request count summed over shards. With shards > 1
  /// a request spanning shards is counted once per touched shard, so
  /// this slightly overestimates the true request count — fine for the
  /// mover's request-rate estimate; exact at shards = 1.
  std::size_t TotalRequestsInWindow() const;

  /// Samples one multiget into the co-access window: the full block list
  /// is recorded into every shard owning at least one of the blocks, so
  /// each block's owning shard sees every request (and thus every
  /// co-access pair) involving it.
  void RecordRequest(std::span<const BlockId> blocks);

  /// Ingests one periodic load report; `msg_bytes` is charged to the
  /// stats-network Table III counter (0 for in-process embodiments).
  void RecordLoadReport(SiteId site, double cpu_utilization,
                        double io_bytes_per_sec, std::uint64_t chunk_count,
                        std::size_t msg_bytes);

  /// Ingests one o_j probe round trip.
  void RecordProbe(SiteId site, double rtt_ms, std::size_t msg_bytes);

  /// Ingests one completed fetch's service time into the tail model
  /// (DESIGN.md §13): per-site latency histograms behind load_mu_.
  void RecordServiceTime(SiteId site, double service_ms);

  /// Batch form: one exclusive load_mu_ acquisition for a whole drained
  /// sample buffer (LocalECStore's load refresh drains the data plane's
  /// per-site buffers here, off the per-fetch hot path).
  void RecordServiceSamples(SiteId site, std::span<const double> service_ms);

  /// Charges stats-service message bytes (Table III) without touching the
  /// load estimates — for probes whose RTT is reported later.
  void ChargeStatsNetwork(std::size_t msg_bytes) {
    stats_network_bytes_.fetch_add(msg_bytes, std::memory_order_relaxed);
  }

  /// Reloads (drops) every cached plan when the largest per-site o_j
  /// drift since the last epoch exceeds the configured threshold
  /// (Section V-B1 "dynamically reload solutions"). Call after each
  /// batch of load reports. Bumps shard epochs one at a time.
  void ReloadPlansOnDrift();

  /// Current cost parameters (o_j from the load tracker, m_j from the
  /// media model).
  CostParams CurrentCostParams() const;

  /// Cost parameters for one planning decision: CurrentCostParams plus
  /// the per-call anti-herding tie-break perturbation (see
  /// ECStoreConfig::cost_tiebreak_noise).
  CostParams PlanningCostParams();

  // --- Chunk read optimizer (Section V-B1) ----------------------------
  /// Selects the access plan for a multiget: cached plan (validated
  /// against the live state) when the cost model is on, greedy fallback
  /// on a miss (queuing a deduplicated background ILP refinement), or
  /// the random baseline plan otherwise. Never solves an ILP inline.
  /// Takes only the owning shard's lock (plus rng/load for the fallback).
  /// `delta` is the late-binding δ the demands were built with — the
  /// plan-cache key component, and the δ the background refinement will
  /// re-solve at. Callers pass AdaptiveDelta() (== EffectiveDelta() when
  /// adaptive late binding is off).
  PlanDecision SelectAccessPlan(std::span<const BlockId> blocks,
                                std::span<const BlockDemand> demands,
                                std::uint32_t delta);

  /// The late-binding δ for the next request (DESIGN.md §13). With
  /// `adaptive_delta` off this is exactly EffectiveDelta(). On, and for
  /// an LB technique, it is the smallest d such that
  /// P[Binomial(k + d, p) > d] <= adaptive_delta_epsilon, where p is the
  /// tracker's cluster straggler fraction — 0 on a quiet cluster, rising
  /// toward min(adaptive_delta_max, r) under variance. Draws no RNG.
  std::uint32_t AdaptiveDelta() const;

  /// Per-request form (DESIGN.md §13 leftover closed in §14's PR): p is
  /// the mean straggler fraction over the *available candidate sites of
  /// the requested blocks* — the sites the plan must actually touch —
  /// instead of the cluster mean, which underreacts when variance is
  /// concentrated on one planned site. Falls back to the cluster form
  /// when the blocks resolve to no sites. Draws no RNG. At brownout
  /// level >= 4 the ladder forces δ = 0 (both forms).
  std::uint32_t AdaptiveDelta(std::span<const BlockId> blocks) const;

  /// True when every read in the plan targets an available site that
  /// still holds the chunk.
  bool ValidatePlan(const AccessPlan& plan) const;

  /// Shard-0 plan cache (diagnostics / shards=1 compatibility).
  const PlanCache& plan_cache() const { return shards_[0]->plan_cache; }
  PlanCache& plan_cache() { return shards_[0]->plan_cache; }

  /// Plan cache of one shard (diagnostics; see class comment).
  const PlanCache& plan_cache(std::size_t shard) const {
    return shards_[shard]->plan_cache;
  }

  /// Aggregated hits/misses/entries over all shard caches.
  struct PlanCacheTotals {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::size_t entries = 0;
  };
  PlanCacheTotals CacheTotals() const;

  void set_plan_observer(PlanObserver observer) {
    plan_observer_ = std::move(observer);
  }

  void set_invalidation_listener(InvalidationListener listener) {
    invalidation_listener_ = std::move(listener);
  }

  /// Overload-control seam (DESIGN.md §14): when set (by the owning
  /// embodiment, before traffic starts), planning treats open-breaker
  /// sites as soft failures (dropping their candidates while
  /// alternatives remain, letting bounded half-open probes through),
  /// the brownout ladder pauses background ILP scheduling at level >= 2
  /// and forces δ = 0 at level >= 4. Null (the default) changes nothing.
  void set_overload_control(OverloadControl* overload) {
    overload_ = overload;
  }

  /// One site's tail-model latency quantile / sample count, read under
  /// the shared load lock (safe concurrent with live traffic — unlike
  /// the raw load_tracker() accessor). The breaker evaluation input.
  double SiteLatencyQuantileMs(SiteId site, double q) const;
  std::uint64_t SiteLatencySamples(SiteId site) const;

  // --- Stats queries for the cache/prefetch/promotion tier (§12) ------
  /// Co-access partners of `b` (λ descending) from its owning shard —
  /// the prefetch candidate list. Thread-safe (locks the shard).
  std::vector<CoAccessPartner> CoAccessPartnersOf(BlockId b,
                                                  std::size_t max_partners) const;

  /// Windowed access frequency of `b` from its owning shard — the cache's
  /// admission/eviction weight and the promoter's temperature.
  double BlockAccessFrequency(BlockId b) const;

  /// The `n` most frequently accessed blocks across all shards, hottest
  /// first (ties: ascending block id, deterministic). `lambda` carries
  /// the windowed access frequency. Locks one shard at a time.
  std::vector<CoAccessPartner> HottestBlocks(std::size_t n) const;

  // --- Chunk placement: writes (W1 of Fig. 3) -------------------------
  /// `count` distinct available sites for a new block's chunks: the
  /// least-loaded ones under the cost model, random otherwise. Empty
  /// when fewer than `count` sites are available.
  std::vector<SiteId> SelectWriteSites(std::uint32_t count);

  /// Spec-aware placement: site i receives chunk index i. When
  /// `failure_domains` > 0 and the family has placement groups (LRC
  /// local groups, piggyback groups), chunks sharing a group land on
  /// distinct failure domains (site % failure_domains) so one domain
  /// failure never costs a group its cheap repair plan; preference order
  /// (least-loaded / random) is otherwise preserved. With domains = 0 or
  /// a group-free family this is exactly SelectWriteSites(total) — same
  /// RNG draws, bit-identical to the pre-codec-family planner.
  std::vector<SiteId> SelectWriteSites(const CodecSpec& spec);

  /// Write-site selection for in-place layout rewrites (hybrid
  /// promote/demote, DESIGN.md §12): the new layout must land on sites
  /// disjoint from `avoid` (the block's current sites) so the old chunks
  /// stay fetchable until the catalog swap commits, and retiring them
  /// afterwards can never delete new data. Uses the unconstrained
  /// preference order (least-loaded / random); placement groups are not
  /// applied on the rewrite path. Empty when too few sites remain.
  std::vector<SiteId> SelectWriteSitesAvoiding(const CodecSpec& spec,
                                               std::span<const SiteId> avoid);

  // --- Plan invalidation ----------------------------------------------
  /// A chunk of `block` moved, or the block was deleted: its plans die.
  /// Touches only the block's owning shard; entries referencing the
  /// block from other shards are rejected lazily by ValidatePlan.
  void InvalidateBlock(BlockId block);

  /// A site failed: any cached plan may reference it. Bumps every
  /// shard's epoch, one shard lock at a time.
  void OnSiteFailed(SiteId site);

  // --- Chunk mover (Algorithm 1, Section V-B2) ------------------------
  /// Assembles the mover context from the live statistics and runs
  /// Algorithm 1. The embodiment executes the returned copy and commits
  /// via RecordMoveExecuted. Works from a load-tracker snapshot so the
  /// candidate search never holds load_mu_.
  std::optional<MovementPlan> SelectMovement(double request_rate_per_sec);

  /// A movement committed: invalidate the block's plans and charge the
  /// Table III mover counters.
  void RecordMoveExecuted(BlockId block, std::uint64_t chunk_bytes);

  // --- Failure detection (DESIGN.md §9) -------------------------------
  /// Evidence of life: each periodic stats report / probe / load refresh
  /// an embodiment ingests doubles as a heartbeat. When the heartbeat
  /// revives a site the detector had marked suspect/dead, its
  /// availability is restored in the cluster state (belief, not ground
  /// truth — the embodiment's node simply reported in again).
  void NoteHeartbeat(SiteId site, double now_ms);

  /// Advances the detector to `now_ms`. Sites newly declared dead are
  /// marked unavailable in the cluster state (invalidating their cached
  /// plans) and returned; the repair service's `repair_wait` grace period
  /// takes over from there. Sites already failed manually are skipped.
  std::vector<SiteId> CheckFailures(double now_ms);

  const FailureDetector& failure_detector() const { return detector_; }

  // --- Repair service policy (Section V-C) ----------------------------
  /// Destination for reconstructing a lost chunk of `block`: the
  /// least-loaded available site holding no chunk of the block, or
  /// kInvalidSite when none exists.
  SiteId SelectRepairDestination(BlockId block) const;

  /// Chunk-aware destination: additionally keeps the rebuilt chunk's
  /// placement group off failure domains its group-mates occupy (when
  /// `failure_domains` > 0; falls back to any legal site when the
  /// constraint is unsatisfiable). Equivalent to the block-only overload
  /// for group-free families or domains = 0.
  SiteId SelectRepairDestination(BlockId block, ChunkIndex lost_chunk) const;

  /// A chunk of `block` was reconstructed at a new site.
  void RecordRepair(BlockId block);

  /// Charges a reconstruction's RepairPlan to the repair-traffic
  /// counters: `chunks` source chunks touched, `bytes` bytes-on-wire.
  void RecordRepairTraffic(std::uint64_t chunks, std::uint64_t bytes) {
    repair_chunks_read_.fetch_add(chunks, std::memory_order_relaxed);
    repair_bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
  }

  // --- Table III accounting -------------------------------------------
  /// See ControlPlaneUsage for which fields are monotonic counters and
  /// which are per-shard-snapshot gauges.
  ControlPlaneUsage Usage() const;

  std::uint64_t ilp_solves() const {
    return ilp_solves_.load(std::memory_order_relaxed);
  }
  std::uint64_t moves_executed() const {
    return moves_executed_.load(std::memory_order_relaxed);
  }
  std::uint64_t chunks_repaired() const {
    return chunks_repaired_.load(std::memory_order_relaxed);
  }
  std::uint64_t sites_marked_dead() const {
    return sites_marked_dead_.load(std::memory_order_relaxed);
  }
  std::uint64_t repair_bytes_read() const {
    return repair_bytes_read_.load(std::memory_order_relaxed);
  }
  std::uint64_t repair_chunks_read() const {
    return repair_chunks_read_.load(std::memory_order_relaxed);
  }
  /// Queued background solves over all shards (locks each in turn).
  std::size_t ilp_queue_depth() const;
  /// True when any shard's background worker is mid-solve.
  bool ilp_worker_busy() const;

 private:
  /// One control-plane shard: the block-keyed mutable state for the
  /// blocks hashing here, all guarded by one mutex.
  struct Shard {
    explicit Shard(std::size_t co_access_window, std::size_t cache_capacity)
        : co_access(co_access_window), plan_cache(cache_capacity) {}

    mutable std::mutex mu;
    CoAccessTracker co_access;
    PlanCache plan_cache;
    // Per-shard background ILP worker (Section V-B1); misses queue up
    // (deduplicated, bounded) rather than spawning unbounded solver work.
    // Each job carries the δ its request planned with, so the refinement
    // solves and caches at the same fan-out (adaptive δ varies per
    // request; dedup is by block set, newest δ wins).
    struct IlpJob {
      std::vector<BlockId> blocks;
      std::uint32_t delta = 0;
    };
    std::deque<IlpJob> ilp_queue;
    std::set<std::vector<BlockId>> ilp_pending;
    // Query sets that missed once: a set is only worth an ILP solve if
    // it recurs (one-off scans can never hit the cache afterwards).
    std::set<std::vector<BlockId>> missed_once;
    bool ilp_worker_busy = false;
  };

  /// Merged mover view over the per-shard co-access trackers: routes
  /// anchor-keyed queries to the anchor's owning shard (which saw every
  /// request involving the anchor) and merges candidate samples.
  class ShardedCoAccessView : public CoAccessView {
   public:
    explicit ShardedCoAccessView(const ControlPlane* cp) : cp_(cp) {}
    double Lambda(BlockId b, BlockId i) const override;
    std::vector<CoAccessPartner> Partners(BlockId b,
                                          std::size_t max_partners) const override;
    std::vector<BlockId> SampleCandidateBlocks(Rng& rng,
                                               std::size_t count) const override;
    double AccessFrequency(BlockId b) const override;

   private:
    const ControlPlane* cp_;
  };

  void ScheduleBackgroundIlp(std::span<const BlockId> blocks,
                             std::uint32_t delta);
  /// Pops and defers the next queued solve. Caller holds shard.mu.
  void PumpIlpWorkerLocked(std::size_t shard_idx);
  /// Body of one deferred solve (runs via the executor seam, no locks
  /// held on entry).
  void RunDeferredSolve(std::size_t shard_idx, std::vector<BlockId> blocks,
                        std::uint32_t delta);
  /// PlanningCostParams body; caller holds rng_mu_.
  CostParams PlanningCostParamsLocked();
  /// Shared tail of both AdaptiveDelta forms: the smallest d with
  /// P[Binomial(k + d, p) > d] <= epsilon, capped. Handles the off/LB
  /// gates; `p` is whichever straggler fraction the caller derived.
  std::uint32_t DeltaForStragglerFraction(double p) const;
  /// Breaker-aware demand filter (DESIGN.md §14): drops candidates on
  /// sites whose breaker says avoid — but only while a demand keeps at
  /// least `needed` candidates, so a plan never becomes infeasible on
  /// the breaker's account (a tripped site every block needs is still
  /// read: soft failure, not hard). Returns true when anything was
  /// dropped; `filtered` then holds the reduced demands.
  bool FilterDemandsForBreakers(std::span<const BlockDemand> demands,
                                std::vector<BlockDemand>& filtered);
  /// Adds the tail term (DESIGN.md §13) to a per-site overhead vector:
  /// o_j += tail_weight * tail_excess_ms(j). No-op at tail_weight 0 —
  /// values untouched, no extra work, bit-identical planning. `tracker`
  /// is either the live tracker (caller holds load_mu_) or a snapshot.
  void ApplyTailTerm(std::vector<double>& overheads,
                     const LoadTracker& tracker) const;

  const ECStoreConfig* config_;
  ClusterState* state_;
  Rng* rng_;
  Executor defer_solve_;

  std::vector<std::unique_ptr<Shard>> shards_;

  // Load statistics: shared for read-mostly cost snapshots.
  mutable std::shared_mutex load_mu_;
  LoadTracker load_tracker_;
  std::vector<double> overheads_at_epoch_;

  // The embodiment's single seeded RNG stream.
  mutable std::mutex rng_mu_;

  mutable std::mutex detector_mu_;
  FailureDetector detector_;

  PlanObserver plan_observer_;
  InvalidationListener invalidation_listener_;
  /// Borrowed from the owning embodiment (null = subsystem off).
  OverloadControl* overload_ = nullptr;

  // Resource counters (Table III) — monotonic, lock-free.
  std::atomic<std::uint64_t> stats_network_bytes_{0};
  std::atomic<std::uint64_t> mover_network_bytes_{0};
  std::atomic<std::uint64_t> ilp_solves_{0};
  std::atomic<std::uint64_t> moves_executed_{0};
  std::atomic<std::uint64_t> chunks_repaired_{0};
  std::atomic<std::uint64_t> sites_marked_dead_{0};
  std::atomic<std::uint64_t> repair_bytes_read_{0};
  std::atomic<std::uint64_t> repair_chunks_read_{0};
};

}  // namespace ecstore
