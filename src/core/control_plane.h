// ControlPlane: the embodiment-agnostic control plane of EC-Store
// (Fig. 3's statistics service + chunk placement service + the policy
// half of the repair service).
//
// Both embodiments — the discrete-event SimECStore and the real-bytes
// LocalECStore — drive this one component for every policy decision:
// cost-parameter snapshots (o_j/m_j), access-plan selection (plan-cache
// lookup with superset satisfaction -> validation -> greedy fallback ->
// deduplicated/bounded/recurrence-gated background ILP refinement),
// plan invalidation (chunk move, block delete, site failure, o_j drift),
// write-site placement, mover-context assembly for Algorithm 1, repair
// destinations, and the Table III resource accounting. Only *when*
// deferred work runs differs per embodiment, expressed through the
// executor seam below: the DES schedules the ILP solve on its event
// queue after the modeled solve latency; LocalECStore queues it and
// drains synchronously off the request path.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "cluster/state.h"
#include "common/rng.h"
#include "core/config.h"
#include "fault/detector.h"
#include "placement/mover.h"
#include "placement/plan_cache.h"
#include "placement/planner.h"
#include "stats/co_access.h"
#include "stats/load_tracker.h"

namespace ecstore {

/// Control-plane resource usage counters (Table III), extended with the
/// robustness counters of DESIGN.md §9. The control plane fills what it
/// owns (repair/detector); embodiments overlay their data-plane counters
/// (degraded reads, retries, cancellations, checksums, scrub) in their
/// own Usage() accessors.
struct ControlPlaneUsage {
  std::size_t stats_memory_bytes = 0;
  std::size_t optimizer_memory_bytes = 0;
  std::size_t mover_memory_bytes = 0;
  std::uint64_t stats_network_bytes = 0;    // reports + probes
  std::uint64_t mover_network_bytes = 0;    // chunk copies
  std::uint64_t ilp_solves = 0;
  std::uint64_t moves_executed = 0;

  // --- Robustness counters (DESIGN.md §9).
  std::uint64_t degraded_reads = 0;       // blocks topped up off-plan
  std::uint64_t retried_fetches = 0;      // re-issued fetches / replans
  std::uint64_t cancelled_fetch_jobs = 0; // late-binding stragglers dropped
  std::uint64_t checksum_failures = 0;    // CRC mismatches caught on reads
  std::uint64_t chunks_scrubbed = 0;      // bad/missing chunks rewritten
  std::uint64_t chunks_repaired = 0;      // chunks rebuilt by repair
  std::uint64_t sites_marked_dead = 0;    // detector-driven dead verdicts
};

/// How an access plan was produced (the R2 decision of Fig. 3).
enum class PlanSource {
  kCacheHit,  // validated cached ILP solution (or superset restriction)
  kGreedy,    // cache miss: greedy fallback, ILP queued in background
  kRandom,    // cost model disabled (R / EC / EC+LB techniques)
};

/// The outcome of one plan selection.
struct PlanDecision {
  AccessPlan plan;
  PlanSource source = PlanSource::kRandom;

  bool cache_hit() const { return source == PlanSource::kCacheHit; }
};

/// The shared planning/stats/mover/repair path. Owns the statistics
/// trackers and the plan cache; borrows the cluster state, config, and
/// RNG stream from the embodiment (so a DES run remains bit-reproducible
/// against the embodiment's single seeded stream).
///
/// Not thread-safe by contract: embodiments serialize every call (the
/// DES is single-threaded; LocalECStore holds its metadata mutex across
/// each control-plane touch — see core/local_store.h for the lock order).
/// The executor seam may be invoked while that serialization is in
/// effect, so executors must not re-enter the control plane inline.
class ControlPlane {
 public:
  using Deferred = std::function<void()>;
  /// Executor seam: receives the next unit of deferred background work
  /// (one ILP solve + worker continuation). SimECStore schedules it on
  /// the DES event queue after the modeled solve latency; LocalECStore
  /// appends it to a queue drained off the request path.
  using Executor = std::function<void(Deferred)>;
  /// Test/diagnostics hook: observes every SelectAccessPlan decision.
  using PlanObserver =
      std::function<void(std::span<const BlockId>, const PlanDecision&)>;

  ControlPlane(const ECStoreConfig* config, ClusterState* state, Rng* rng,
               Executor defer_solve, LoadTrackerParams load_params = {});

  ControlPlane(const ControlPlane&) = delete;
  ControlPlane& operator=(const ControlPlane&) = delete;

  // --- Statistics service (Section V-A) -------------------------------
  CoAccessTracker& co_access() { return co_access_; }
  const CoAccessTracker& co_access() const { return co_access_; }
  LoadTracker& load_tracker() { return load_tracker_; }
  const LoadTracker& load_tracker() const { return load_tracker_; }

  /// Samples one multiget into the co-access window.
  void RecordRequest(std::span<const BlockId> blocks);

  /// Ingests one periodic load report; `msg_bytes` is charged to the
  /// stats-network Table III counter (0 for in-process embodiments).
  void RecordLoadReport(SiteId site, double cpu_utilization,
                        double io_bytes_per_sec, std::uint64_t chunk_count,
                        std::size_t msg_bytes);

  /// Ingests one o_j probe round trip.
  void RecordProbe(SiteId site, double rtt_ms, std::size_t msg_bytes);

  /// Charges stats-service message bytes (Table III) without touching the
  /// load estimates — for probes whose RTT is reported later.
  void ChargeStatsNetwork(std::size_t msg_bytes) {
    stats_network_bytes_ += msg_bytes;
  }

  /// Reloads (drops) every cached plan when the largest per-site o_j
  /// drift since the last epoch exceeds the configured threshold
  /// (Section V-B1 "dynamically reload solutions"). Call after each
  /// batch of load reports.
  void ReloadPlansOnDrift();

  /// Current cost parameters (o_j from the load tracker, m_j from the
  /// media model).
  CostParams CurrentCostParams() const;

  /// Cost parameters for one planning decision: CurrentCostParams plus
  /// the per-call anti-herding tie-break perturbation (see
  /// ECStoreConfig::cost_tiebreak_noise).
  CostParams PlanningCostParams();

  // --- Chunk read optimizer (Section V-B1) ----------------------------
  /// Selects the access plan for a multiget: cached plan (validated
  /// against the live state) when the cost model is on, greedy fallback
  /// on a miss (queuing a deduplicated background ILP refinement), or
  /// the random baseline plan otherwise. Never solves an ILP inline.
  PlanDecision SelectAccessPlan(std::span<const BlockId> blocks,
                                std::span<const BlockDemand> demands);

  /// True when every read in the plan targets an available site that
  /// still holds the chunk.
  bool ValidatePlan(const AccessPlan& plan) const;

  const PlanCache& plan_cache() const { return plan_cache_; }
  PlanCache& plan_cache() { return plan_cache_; }

  void set_plan_observer(PlanObserver observer) {
    plan_observer_ = std::move(observer);
  }

  // --- Chunk placement: writes (W1 of Fig. 3) -------------------------
  /// `count` distinct available sites for a new block's chunks: the
  /// least-loaded ones under the cost model, random otherwise. Empty
  /// when fewer than `count` sites are available.
  std::vector<SiteId> SelectWriteSites(std::uint32_t count);

  // --- Plan invalidation ----------------------------------------------
  /// A chunk of `block` moved, or the block was deleted: its plans die.
  void InvalidateBlock(BlockId block);

  /// A site failed: any cached plan may reference it.
  void OnSiteFailed(SiteId site);

  // --- Chunk mover (Algorithm 1, Section V-B2) ------------------------
  /// Assembles the mover context from the live statistics and runs
  /// Algorithm 1. The embodiment executes the returned copy and commits
  /// via RecordMoveExecuted.
  std::optional<MovementPlan> SelectMovement(double request_rate_per_sec);

  /// A movement committed: invalidate the block's plans and charge the
  /// Table III mover counters.
  void RecordMoveExecuted(BlockId block, std::uint64_t chunk_bytes);

  // --- Failure detection (DESIGN.md §9) -------------------------------
  /// Evidence of life: each periodic stats report / probe / load refresh
  /// an embodiment ingests doubles as a heartbeat. When the heartbeat
  /// revives a site the detector had marked suspect/dead, its
  /// availability is restored in the cluster state (belief, not ground
  /// truth — the embodiment's node simply reported in again).
  void NoteHeartbeat(SiteId site, double now_ms);

  /// Advances the detector to `now_ms`. Sites newly declared dead are
  /// marked unavailable in the cluster state (invalidating their cached
  /// plans) and returned; the repair service's `repair_wait` grace period
  /// takes over from there. Sites already failed manually are skipped.
  std::vector<SiteId> CheckFailures(double now_ms);

  const FailureDetector& failure_detector() const { return detector_; }

  // --- Repair service policy (Section V-C) ----------------------------
  /// Destination for reconstructing a lost chunk of `block`: the
  /// least-loaded available site holding no chunk of the block, or
  /// kInvalidSite when none exists.
  SiteId SelectRepairDestination(BlockId block) const;

  /// A chunk of `block` was reconstructed at a new site.
  void RecordRepair(BlockId block);

  // --- Table III accounting -------------------------------------------
  ControlPlaneUsage Usage() const;

  std::uint64_t ilp_solves() const { return ilp_solves_; }
  std::uint64_t moves_executed() const { return moves_executed_; }
  std::uint64_t chunks_repaired() const { return chunks_repaired_; }
  std::uint64_t sites_marked_dead() const { return sites_marked_dead_; }
  std::size_t ilp_queue_depth() const { return ilp_queue_.size(); }
  bool ilp_worker_busy() const { return ilp_worker_busy_; }

 private:
  void ScheduleBackgroundIlp(std::span<const BlockId> blocks);
  void PumpIlpWorker();

  const ECStoreConfig* config_;
  ClusterState* state_;
  Rng* rng_;
  Executor defer_solve_;

  CoAccessTracker co_access_;
  LoadTracker load_tracker_;
  PlanCache plan_cache_;
  PlanObserver plan_observer_;
  FailureDetector detector_;

  // ONE background ILP worker (Section V-B1); misses queue up
  // (deduplicated, bounded) rather than spawning unbounded solver work.
  std::deque<std::vector<BlockId>> ilp_queue_;
  std::set<std::vector<BlockId>> ilp_pending_;
  // Query sets that missed once: a set is only worth an ILP solve if it
  // recurs (one-off scans can never hit the cache afterwards).
  std::set<std::vector<BlockId>> missed_once_;
  bool ilp_worker_busy_ = false;

  std::vector<double> overheads_at_epoch_;

  // Resource counters (Table III).
  std::uint64_t stats_network_bytes_ = 0;
  std::uint64_t mover_network_bytes_ = 0;
  std::uint64_t ilp_solves_ = 0;
  std::uint64_t moves_executed_ = 0;
  std::uint64_t chunks_repaired_ = 0;
  std::uint64_t sites_marked_dead_ = 0;
};

}  // namespace ecstore
