#include "core/control_plane.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ecstore {

namespace {

/// Per-site media read cost in milliseconds per byte, from the site model.
double MediaMsPerByte(const sim::SiteParams& site) {
  return 1000.0 / site.disk_bytes_per_sec;
}

/// Detector thresholds: explicit when configured, else derived from the
/// stats reporting interval. The half-window slack keeps a heartbeat that
/// lands exactly on its interval boundary from tripping the detector.
FailureDetectorParams EffectiveDetectorParams(const ECStoreConfig& c) {
  FailureDetectorParams p;
  p.suspect_after_ms = c.detector_suspect_after > 0
                           ? ToMillis(c.detector_suspect_after)
                           : 2.5 * ToMillis(c.stats_report_interval);
  p.dead_after_ms = c.detector_dead_after > 0
                        ? ToMillis(c.detector_dead_after)
                        : 4.5 * ToMillis(c.stats_report_interval);
  return p;
}

/// The tail-model knobs live in the system config; fold them into the
/// embodiment-supplied tracker params so LoadTracker stays config-free.
LoadTrackerParams WithTailParams(LoadTrackerParams p, const ECStoreConfig& c) {
  p.tail_quantile = c.tail_quantile;
  p.straggler_multiple = c.straggler_multiple;
  p.latency_window = std::max<std::uint64_t>(1, c.latency_window);
  return p;
}

/// P[Binomial(n, p) > d]: probability that more than d of n issued reads
/// straggle — i.e. that d spare chunks fail to cover the stragglers.
double BinomialTailAbove(std::uint32_t n, std::uint32_t d, double p) {
  p = std::clamp(p, 0.0, 1.0);
  double below = 0.0;
  double pmf = std::pow(1.0 - p, static_cast<double>(n));  // P[X = 0]
  for (std::uint32_t i = 0; i <= d && i <= n; ++i) {
    below += pmf;
    // C(n,i+1) p^(i+1) q^(n-i-1) from C(n,i) p^i q^(n-i).
    pmf *= static_cast<double>(n - i) / static_cast<double>(i + 1) * p /
           std::max(1.0 - p, 1e-300);
  }
  return std::max(0.0, 1.0 - below);
}

}  // namespace

ControlPlane::ControlPlane(const ECStoreConfig* config, ClusterState* state,
                           Rng* rng, Executor defer_solve,
                           LoadTrackerParams load_params)
    : config_(config),
      state_(state),
      rng_(rng),
      defer_solve_(std::move(defer_solve)),
      load_tracker_(config->num_sites, WithTailParams(load_params, *config)),
      detector_(EffectiveDetectorParams(*config)) {
  const std::size_t n = std::max<std::size_t>(1, config->control_plane_shards);
  // The configured cache capacity is a system-wide budget: split it across
  // shards (each shard LRU-evicts independently within its slice).
  const std::size_t per_shard_capacity =
      std::max<std::size_t>(1, config->plan_cache_capacity / n);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(config->co_access_window, per_shard_capacity));
  }
}

std::size_t ControlPlane::TotalRequestsInWindow() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    total += sh->co_access.requests_in_window();
  }
  return total;
}

void ControlPlane::RecordRequest(std::span<const BlockId> blocks) {
  if (shards_.size() == 1) {
    Shard& sh = *shards_[0];
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.co_access.RecordRequest(blocks);
    return;
  }
  // Record the full request into every touched shard so each block's
  // owning shard sees every pair involving it (see header).
  std::vector<std::size_t> touched;
  touched.reserve(blocks.size());
  for (BlockId b : blocks) touched.push_back(ShardOf(b));
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
  for (std::size_t idx : touched) {
    Shard& sh = *shards_[idx];
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.co_access.RecordRequest(blocks);
  }
}

void ControlPlane::RecordLoadReport(SiteId site, double cpu_utilization,
                                    double io_bytes_per_sec,
                                    std::uint64_t chunk_count,
                                    std::size_t msg_bytes) {
  {
    std::unique_lock lk(load_mu_);
    load_tracker_.RecordReport(site, cpu_utilization, io_bytes_per_sec,
                               chunk_count);
  }
  stats_network_bytes_.fetch_add(msg_bytes, std::memory_order_relaxed);
}

void ControlPlane::RecordProbe(SiteId site, double rtt_ms,
                               std::size_t msg_bytes) {
  {
    std::unique_lock lk(load_mu_);
    load_tracker_.RecordProbe(site, rtt_ms);
  }
  stats_network_bytes_.fetch_add(msg_bytes, std::memory_order_relaxed);
}

void ControlPlane::RecordServiceTime(SiteId site, double service_ms) {
  std::unique_lock lk(load_mu_);
  load_tracker_.RecordServiceTime(site, service_ms);
}

void ControlPlane::RecordServiceSamples(SiteId site,
                                        std::span<const double> service_ms) {
  if (service_ms.empty()) return;
  std::unique_lock lk(load_mu_);
  for (double ms : service_ms) load_tracker_.RecordServiceTime(site, ms);
}

std::uint32_t ControlPlane::AdaptiveDelta() const {
  const std::uint32_t base = config_->EffectiveDelta();
  // Only the LB techniques late-bind at all; for the rest base is 0 and
  // stays 0. With the feature off the static δ passes through untouched.
  if (!config_->adaptive_delta || LateBindingDelta(config_->technique, 1) == 0) {
    return base;
  }
  double p;
  {
    std::shared_lock lk(load_mu_);
    p = load_tracker_.ClusterStragglerFraction();
  }
  return DeltaForStragglerFraction(p);
}

std::uint32_t ControlPlane::AdaptiveDelta(
    std::span<const BlockId> blocks) const {
  const std::uint32_t base = config_->EffectiveDelta();
  if (!config_->adaptive_delta || LateBindingDelta(config_->technique, 1) == 0) {
    return base;
  }
  // The sites this request's plan can possibly touch: the available
  // chunk-holding sites of the requested blocks. Distinct — a site
  // serving five of the request's blocks is no more likely to straggle
  // per read than one serving one.
  std::vector<SiteId> sites;
  for (BlockId id : blocks) {
    BlockInfo info;
    if (!state_->ReadBlock(id, &info)) continue;
    for (const ChunkLocation& loc : info.locations) {
      if (loc.site == kInvalidSite) continue;
      if (!state_->IsSiteAvailable(loc.site)) continue;
      if (std::find(sites.begin(), sites.end(), loc.site) == sites.end()) {
        sites.push_back(loc.site);
      }
    }
  }
  double p;
  {
    std::shared_lock lk(load_mu_);
    if (sites.empty()) {
      p = load_tracker_.ClusterStragglerFraction();
    } else {
      p = 0.0;
      for (SiteId s : sites) p += load_tracker_.StragglerFraction(s);
      p /= static_cast<double>(sites.size());
    }
  }
  return DeltaForStragglerFraction(p);
}

std::uint32_t ControlPlane::DeltaForStragglerFraction(double p) const {
  // Brownout level 4 (DESIGN.md §14): the deepest shed rung trades tail
  // latency for capacity — spare late-binding reads are pure extra load.
  if (overload_ && overload_->brownout_level() >= 4) return 0;
  const std::uint32_t cap =
      config_->adaptive_delta_max > 0
          ? std::min(config_->adaptive_delta_max, config_->r)
          : config_->r;
  if (p <= 0.0) return 0;  // Quiet cluster: no spare reads.
  const double eps = std::max(config_->adaptive_delta_epsilon, 0.0);
  for (std::uint32_t d = 0; d < cap; ++d) {
    if (BinomialTailAbove(config_->k + d, d, p) <= eps) return d;
  }
  return cap;
}

double ControlPlane::SiteLatencyQuantileMs(SiteId site, double q) const {
  std::shared_lock lk(load_mu_);
  return load_tracker_.LatencyQuantileMs(site, q);
}

std::uint64_t ControlPlane::SiteLatencySamples(SiteId site) const {
  std::shared_lock lk(load_mu_);
  return load_tracker_.latency_samples(site);
}

void ControlPlane::ApplyTailTerm(std::vector<double>& overheads,
                                 const LoadTracker& tracker) const {
  if (config_->tail_weight <= 0.0) return;
  const std::vector<double>& tail = tracker.TailExcessVector();
  const std::size_t n = std::min(overheads.size(), tail.size());
  for (std::size_t j = 0; j < n; ++j) {
    overheads[j] += config_->tail_weight * tail[j];
  }
}

void ControlPlane::ReloadPlansOnDrift() {
  // Reload cached plans when the cost landscape shifted materially
  // (Section V-B1 "dynamically reload solutions"). The trigger is the
  // largest per-site drift of o_j since the last epoch, relative to the
  // mean — a single site going hot or cold is exactly what invalidates
  // plans, even though the cluster-wide mean barely moves.
  bool bump = false;
  {
    std::unique_lock lk(load_mu_);
    const auto& overheads = load_tracker_.OverheadVector();
    if (overheads_at_epoch_.empty()) {
      overheads_at_epoch_ = overheads;
      return;
    }
    const double mean_o = std::max(load_tracker_.MeanOverheadMs(), 1e-9);
    double max_drift = 0;
    for (std::size_t j = 0; j < overheads.size(); ++j) {
      max_drift = std::max(
          max_drift, std::abs(overheads[j] - overheads_at_epoch_[j]) / mean_o);
    }
    if (max_drift > config_->epoch_bump_threshold) {
      overheads_at_epoch_ = overheads;
      bump = true;
    }
  }
  if (!bump) return;
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    sh->plan_cache.BumpEpoch();
  }
}

CostParams ControlPlane::CurrentCostParams() const {
  CostParams params;
  {
    std::shared_lock lk(load_mu_);
    params.site_overhead_ms = load_tracker_.OverheadVector();
    ApplyTailTerm(params.site_overhead_ms, load_tracker_);
  }
  params.media_ms_per_byte.assign(config_->num_sites,
                                  MediaMsPerByte(config_->site));
  return params;
}

CostParams ControlPlane::PlanningCostParamsLocked() {
  // Near-equal o_j values would otherwise be tie-broken identically by
  // every solve (always the lowest-indexed site), herding load. A small
  // per-call perturbation spreads equal-cost choices across sites while
  // leaving genuine load differences decisive.
  CostParams params;
  double mean;
  {
    std::shared_lock lk(load_mu_);
    params.site_overhead_ms = load_tracker_.OverheadVector();
    mean = load_tracker_.MeanOverheadMs();
    // Tail term (DESIGN.md §13): charge high-variance sites their p_tail
    // excess so planning steers around them, not just around loaded
    // ones. Applied before the tie-break noise; no-op at weight 0.
    ApplyTailTerm(params.site_overhead_ms, load_tracker_);
  }
  params.media_ms_per_byte.assign(config_->num_sites,
                                  MediaMsPerByte(config_->site));
  for (double& o : params.site_overhead_ms) {
    o += rng_->NextDouble() * config_->cost_tiebreak_noise * mean;
  }
  return params;
}

CostParams ControlPlane::PlanningCostParams() {
  std::lock_guard<std::mutex> lk(rng_mu_);
  return PlanningCostParamsLocked();
}

PlanDecision ControlPlane::SelectAccessPlan(
    std::span<const BlockId> blocks, std::span<const BlockDemand> demands,
    std::uint32_t delta) {
  PlanDecision decision;
  if (!config_->CostModelEnabled()) {
    {
      std::lock_guard<std::mutex> lk(rng_mu_);
      decision.plan = RandomPlan(demands, *rng_);
    }
    decision.source = PlanSource::kRandom;
    if (plan_observer_) plan_observer_(blocks, decision);
    return decision;
  }

  // Breaker soft-failure path (DESIGN.md §14): while any breaker is not
  // closed, plan greedily over breaker-filtered demands — no cache
  // lookup (cached plans predate the trip and would steer right back
  // into the sick site), no cache insert or background ILP (the episode
  // is transient; its plans must not outlive it). When the filter drops
  // nothing — every tripped site is one some demand can't do without —
  // planning falls through to the normal path unchanged.
  if (overload_) {
    std::vector<BlockDemand> filtered;
    if (FilterDemandsForBreakers(demands, filtered)) {
      {
        std::lock_guard<std::mutex> lk(rng_mu_);
        decision.plan = GreedyPlan(filtered, PlanningCostParamsLocked(), *rng_);
      }
      decision.source = PlanSource::kGreedy;
      if (plan_observer_) plan_observer_(blocks, decision);
      return decision;
    }
  }

  // The request key's owning shard: shard of the minimum block id, which
  // is also where background solves for this key Insert their plan.
  const std::size_t owner_idx =
      blocks.empty() ? 0
                     : ShardOf(*std::min_element(blocks.begin(), blocks.end()));
  std::optional<AccessPlan> cached;
  {
    Shard& owner = *shards_[owner_idx];
    std::lock_guard<std::mutex> lk(owner.mu);
    cached = owner.plan_cache.LookupSatisfying(blocks, delta);
  }
  if (cached) {
    if (ValidatePlan(*cached)) {
      decision.plan = std::move(*cached);
      decision.source = PlanSource::kCacheHit;
      if (plan_observer_) plan_observer_(blocks, decision);
      return decision;
    }
    // Stale entry (site failed since caching): drop and fall through.
    // Each block's plans die in its own owning shard — one lock at a
    // time, never two shard locks held together.
    for (BlockId b : blocks) {
      Shard& sh = *shards_[ShardOf(b)];
      std::lock_guard<std::mutex> lk(sh.mu);
      sh.plan_cache.InvalidateBlock(b);
    }
  }
  {
    std::lock_guard<std::mutex> lk(rng_mu_);
    decision.plan = GreedyPlan(demands, PlanningCostParamsLocked(), *rng_);
  }
  decision.source = PlanSource::kGreedy;
  ScheduleBackgroundIlp(blocks, delta);
  if (plan_observer_) plan_observer_(blocks, decision);
  return decision;
}

bool ControlPlane::FilterDemandsForBreakers(
    std::span<const BlockDemand> demands, std::vector<BlockDemand>& filtered) {
  CircuitBreakerSet* breakers = overload_ ? overload_->breakers() : nullptr;
  if (!breakers || !breakers->AnyNotClosed()) return false;
  // Per-call memo of the avoid decision: one breaker consultation — and
  // at most one half-open probe grant — per site per request, so a
  // single multiget can't drain the probe budget and the herd of
  // requests behind it is bounded to `breaker_half_open_probes` total.
  std::vector<std::pair<SiteId, bool>> memo;
  auto avoid = [&](SiteId site) {
    for (const auto& [s, a] : memo) {
      if (s == site) return a;
    }
    const bool a = breakers->ShouldAvoid(site) || !breakers->AllowProbe(site);
    memo.emplace_back(site, a);
    return a;
  };
  bool dropped_any = false;
  filtered.assign(demands.begin(), demands.end());
  for (BlockDemand& d : filtered) {
    for (std::size_t i = d.candidates.size(); i-- > 0;) {
      if (d.candidates.size() <= d.needed) break;
      if (avoid(d.candidates[i].site)) {
        d.candidates.erase(d.candidates.begin() +
                           static_cast<std::ptrdiff_t>(i));
        dropped_any = true;
      }
    }
  }
  return dropped_any;
}

bool ControlPlane::ValidatePlan(const AccessPlan& plan) const {
  for (const ChunkRead& read : plan.reads) {
    if (!state_->IsSiteAvailable(read.site)) return false;
    if (!state_->HasChunkAt(read.block, read.site)) return false;
  }
  return !plan.reads.empty();
}

void ControlPlane::ScheduleBackgroundIlp(std::span<const BlockId> blocks,
                                         std::uint32_t delta) {
  // Each shard runs one background ILP worker solving queued sets off the
  // request path and installing solutions for future requests (Section
  // V-B1). The queue is deduplicated and bounded: under a miss storm
  // extra solve requests are dropped — the greedy plan already served
  // the client.
  // Brownout level 2+ (DESIGN.md §14): background refinement is paused —
  // solver capacity is shed long before client work is. The greedy plan
  // already served the request; the recurrence gate will re-queue the
  // set once the ladder steps back down.
  if (overload_ && overload_->brownout_level() >= 2) return;
  constexpr std::size_t kMaxQueue = 64;
  constexpr std::size_t kMaxMissedOnce = 100000;
  // Very large multigets (the Wikipedia trace's tail pages) are served by
  // the greedy plan permanently: their exact sets rarely recur, and their
  // ILPs are the most expensive -- bounded optimization, as in any
  // production solver deployment.
  constexpr std::size_t kMaxIlpBlocks = 16;
  std::vector<BlockId> key = PlanCache::CanonicalKey(blocks);
  if (key.size() > kMaxIlpBlocks) return;
  const std::size_t idx = key.empty() ? 0 : ShardOf(key.front());
  Shard& sh = *shards_[idx];
  std::lock_guard<std::mutex> lk(sh.mu);
  if (sh.ilp_pending.count(key)) return;
  // First miss only registers the set; a solve is queued when it recurs,
  // since only recurring sets can ever profit from a cached plan.
  if (sh.missed_once.insert(key).second) {
    if (sh.missed_once.size() > kMaxMissedOnce) sh.missed_once.clear();
    return;
  }
  if (sh.ilp_queue.size() >= kMaxQueue) return;
  sh.ilp_pending.insert(key);
  sh.ilp_queue.push_back(Shard::IlpJob{std::move(key), delta});
  if (!sh.ilp_worker_busy) {
    sh.ilp_worker_busy = true;
    PumpIlpWorkerLocked(idx);
  }
}

void ControlPlane::PumpIlpWorkerLocked(std::size_t shard_idx) {
  Shard& sh = *shards_[shard_idx];
  if (sh.ilp_queue.empty()) {
    sh.ilp_worker_busy = false;
    return;
  }
  Shard::IlpJob job = std::move(sh.ilp_queue.front());
  sh.ilp_queue.pop_front();
  // The executor seam is invoked with the shard lock held; executors
  // queue the unit rather than running it inline (class contract).
  defer_solve_([this, shard_idx, job = std::move(job)]() mutable {
    RunDeferredSolve(shard_idx, std::move(job.blocks), job.delta);
  });
}

void ControlPlane::RunDeferredSolve(std::size_t shard_idx,
                                    std::vector<BlockId> blocks,
                                    std::uint32_t delta) {
  Shard& sh = *shards_[shard_idx];
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.ilp_pending.erase(blocks);
  }
  // The solve itself runs without any shard lock: BuildDemands reads the
  // cluster state through its own stripe locks and IlpPlan is pure CPU.
  std::optional<AccessPlan> plan;
  try {
    DemandResult dr = BuildDemands(*state_, blocks, delta);
    const bool readable =
        std::find(dr.readable.begin(), dr.readable.end(), false) ==
        dr.readable.end();
    if (readable) {
      CostParams params;
      {
        std::lock_guard<std::mutex> lk(rng_mu_);
        params = PlanningCostParamsLocked();
      }
      plan = IlpPlan(dr.demands, params);
      ilp_solves_.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (const std::exception&) {
    // A block was deleted between queueing and solving: abandon this
    // solve (the set can re-queue if it recurs) and pump the next one.
    plan.reset();
  }
  std::lock_guard<std::mutex> lk(sh.mu);
  if (plan) sh.plan_cache.Insert(blocks, delta, *plan);
  PumpIlpWorkerLocked(shard_idx);
}

std::vector<SiteId> ControlPlane::SelectWriteSites(std::uint32_t count) {
  std::vector<SiteId> available;
  for (SiteId j = 0; j < state_->num_sites(); ++j) {
    if (state_->IsSiteAvailable(j)) available.push_back(j);
  }
  if (available.size() < count) return {};

  std::lock_guard<std::mutex> lk(rng_mu_);
  if (!config_->CostModelEnabled()) {
    // Baseline: random distinct placement [38].
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng_->NextBounded(available.size() - i));
      std::swap(available[i], available[j]);
    }
    available.resize(count);
    return available;
  }

  // Load-aware placement: spread new chunks over the least-loaded sites,
  // with the same tie-break perturbation planning uses so concurrent
  // writers do not all pick the same set.
  const CostParams params = PlanningCostParamsLocked();
  std::stable_sort(available.begin(), available.end(), [&](SiteId a, SiteId b) {
    return params.site_overhead_ms[a] < params.site_overhead_ms[b];
  });
  available.resize(count);
  return available;
}

std::vector<SiteId> ControlPlane::SelectWriteSitesAvoiding(
    const CodecSpec& spec, std::span<const SiteId> avoid) {
  const std::uint32_t count = SpecTotalChunks(spec);
  std::vector<SiteId> available;
  for (SiteId j = 0; j < state_->num_sites(); ++j) {
    if (!state_->IsSiteAvailable(j)) continue;
    if (std::find(avoid.begin(), avoid.end(), j) != avoid.end()) continue;
    available.push_back(j);
  }
  if (available.size() < count) return {};

  std::lock_guard<std::mutex> lk(rng_mu_);
  if (!config_->CostModelEnabled()) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng_->NextBounded(available.size() - i));
      std::swap(available[i], available[j]);
    }
    available.resize(count);
    return available;
  }
  const CostParams params = PlanningCostParamsLocked();
  std::stable_sort(available.begin(), available.end(), [&](SiteId a, SiteId b) {
    return params.site_overhead_ms[a] < params.site_overhead_ms[b];
  });
  available.resize(count);
  return available;
}

std::vector<SiteId> ControlPlane::SelectWriteSites(const CodecSpec& spec) {
  const std::uint32_t count = SpecTotalChunks(spec);
  const std::size_t domains = config_->failure_domains;
  if (domains == 0 || !SpecHasPlacementGroups(spec)) {
    // Unconstrained: exactly the legacy path (same RNG draw order).
    return SelectWriteSites(count);
  }

  std::vector<SiteId> available;
  for (SiteId j = 0; j < state_->num_sites(); ++j) {
    if (state_->IsSiteAvailable(j)) available.push_back(j);
  }
  if (available.size() < count) return {};

  // Preference order: least-loaded first under the cost model, uniform
  // shuffle otherwise (a full shuffle — this constrained path may need
  // to probe deep into the list).
  {
    std::lock_guard<std::mutex> lk(rng_mu_);
    if (config_->CostModelEnabled()) {
      const CostParams params = PlanningCostParamsLocked();
      std::stable_sort(available.begin(), available.end(),
                       [&](SiteId a, SiteId b) {
                         return params.site_overhead_ms[a] <
                                params.site_overhead_ms[b];
                       });
    } else {
      for (std::size_t i = 0; i + 1 < available.size(); ++i) {
        const std::size_t j =
            i + static_cast<std::size_t>(
                    rng_->NextBounded(available.size() - i));
        std::swap(available[i], available[j]);
      }
    }
  }

  // Greedy per-chunk assignment in preference order, keeping each
  // placement group's chunks on distinct failure domains. When a chunk
  // cannot be placed without a same-domain group-mate (few sites, many
  // chunks), it takes the best unused site anyway: availability beats
  // the locality guarantee.
  std::vector<SiteId> chosen(count, kInvalidSite);
  std::vector<bool> used(available.size(), false);
  for (std::uint32_t c = 0; c < count; ++c) {
    const auto group = PlacementGroupOf(spec, c);
    std::size_t fallback = available.size();
    for (std::size_t i = 0; i < available.size(); ++i) {
      if (used[i]) continue;
      if (fallback == available.size()) fallback = i;
      if (group) {
        const std::size_t domain = available[i] % domains;
        bool conflict = false;
        for (std::uint32_t c2 = 0; c2 < c && !conflict; ++c2) {
          conflict = PlacementGroupOf(spec, c2) == group &&
                     chosen[c2] % domains == domain;
        }
        if (conflict) continue;
      }
      fallback = i;
      break;
    }
    used[fallback] = true;
    chosen[c] = available[fallback];
  }
  return chosen;
}

void ControlPlane::InvalidateBlock(BlockId block) {
  {
    Shard& sh = *shards_[ShardOf(block)];
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.plan_cache.InvalidateBlock(block);
  }
  // Cache coherence seam (§12): notify after the shard lock drops so the
  // listener may take its own locks freely.
  if (invalidation_listener_) invalidation_listener_(block);
}

std::vector<CoAccessPartner> ControlPlane::CoAccessPartnersOf(
    BlockId b, std::size_t max_partners) const {
  const Shard& sh = *shards_[ShardOf(b)];
  std::lock_guard<std::mutex> lk(sh.mu);
  return sh.co_access.Partners(b, max_partners);
}

double ControlPlane::BlockAccessFrequency(BlockId b) const {
  const Shard& sh = *shards_[ShardOf(b)];
  std::lock_guard<std::mutex> lk(sh.mu);
  return sh.co_access.AccessFrequency(b);
}

std::vector<CoAccessPartner> ControlPlane::HottestBlocks(std::size_t n) const {
  std::vector<CoAccessPartner> merged;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& sh = *shards_[s];
    std::lock_guard<std::mutex> lk(sh.mu);
    for (const CoAccessPartner& p : sh.co_access.TopBlocks(n)) {
      // With shards > 1 a request is recorded into every touched shard;
      // only the owner's counts are authoritative for its blocks.
      if (ShardOf(p.block) == s) merged.push_back(p);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const CoAccessPartner& a, const CoAccessPartner& b) {
              if (a.lambda != b.lambda) return a.lambda > b.lambda;
              return a.block < b.block;
            });
  if (merged.size() > n) merged.resize(n);
  return merged;
}

void ControlPlane::OnSiteFailed(SiteId /*site*/) {
  // Any cached plan may reference the dead site: bump every shard's
  // epoch, one shard lock at a time (no world freeze).
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    sh->plan_cache.BumpEpoch();
  }
}

double ControlPlane::ShardedCoAccessView::Lambda(BlockId b, BlockId i) const {
  const Shard& sh = *cp_->shards_[cp_->ShardOf(b)];
  std::lock_guard<std::mutex> lk(sh.mu);
  return sh.co_access.Lambda(b, i);
}

std::vector<CoAccessPartner> ControlPlane::ShardedCoAccessView::Partners(
    BlockId b, std::size_t max_partners) const {
  const Shard& sh = *cp_->shards_[cp_->ShardOf(b)];
  std::lock_guard<std::mutex> lk(sh.mu);
  return sh.co_access.Partners(b, max_partners);
}

double ControlPlane::ShardedCoAccessView::AccessFrequency(BlockId b) const {
  const Shard& sh = *cp_->shards_[cp_->ShardOf(b)];
  std::lock_guard<std::mutex> lk(sh.mu);
  return sh.co_access.AccessFrequency(b);
}

std::vector<BlockId> ControlPlane::ShardedCoAccessView::SampleCandidateBlocks(
    Rng& rng, std::size_t count) const {
  if (cp_->shards_.size() == 1) {
    // Straight delegation: preserves the single tracker's deterministic
    // sampling (and draw count) exactly — the simulator's requirement.
    const Shard& sh = *cp_->shards_[0];
    std::lock_guard<std::mutex> lk(sh.mu);
    return sh.co_access.SampleCandidateBlocks(rng, count);
  }
  // Merged sampling: let each shard nominate its own frequency-weighted
  // candidates (restricted to blocks it owns, so the union is duplicate
  // free), then weighted-sample the final set from the pooled nominees.
  std::vector<std::pair<BlockId, double>> pool;
  for (std::size_t s = 0; s < cp_->shards_.size(); ++s) {
    const Shard& sh = *cp_->shards_[s];
    std::lock_guard<std::mutex> lk(sh.mu);
    for (BlockId b : sh.co_access.SampleCandidateBlocks(rng, count)) {
      if (cp_->ShardOf(b) != s) continue;
      pool.emplace_back(b, sh.co_access.AccessFrequency(b));
    }
  }
  std::vector<BlockId> out;
  out.reserve(std::min(count, pool.size()));
  while (out.size() < count && !pool.empty()) {
    double total = 0;
    for (const auto& [b, w] : pool) total += std::max(w, 1e-12);
    double x = rng.NextDouble() * total;
    std::size_t pick = pool.size() - 1;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      x -= std::max(pool[i].second, 1e-12);
      if (x <= 0) {
        pick = i;
        break;
      }
    }
    out.push_back(pool[pick].first);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return out;
}

std::optional<MovementPlan> ControlPlane::SelectMovement(
    double request_rate_per_sec) {
  // Snapshot the load statistics so the candidate search never holds
  // load_mu_ (the mover walks many candidates; planners keep reading
  // fresh o_j meanwhile).
  LoadTracker load_snapshot = [&] {
    std::shared_lock lk(load_mu_);
    return load_tracker_;
  }();
  CostParams params;
  params.site_overhead_ms = load_snapshot.OverheadVector();
  ApplyTailTerm(params.site_overhead_ms, load_snapshot);
  params.media_ms_per_byte.assign(config_->num_sites,
                                  MediaMsPerByte(config_->site));
  ShardedCoAccessView view(this);
  MoverContext ctx;
  ctx.state = state_;
  ctx.co_access = &view;
  ctx.load = &load_snapshot;
  ctx.cost_params = &params;
  ctx.request_rate_per_sec = request_rate_per_sec;
  if (config_->failure_domains > 0) {
    // Group-aware constraint: a move must not land a chunk on a failure
    // domain one of its placement-group mates occupies (which would let
    // a single domain failure break the group's cheap repair plan).
    const std::size_t domains = config_->failure_domains;
    ctx.move_allowed = [this, domains](BlockId block, SiteId from, SiteId to) {
      BlockInfo info;
      if (!state_->ReadBlock(block, &info)) return true;
      if (!SpecHasPlacementGroups(info.codec)) return true;
      std::optional<std::uint32_t> group;
      for (const ChunkLocation& loc : info.locations) {
        if (loc.site == from) {
          group = PlacementGroupOf(info.codec, loc.chunk);
          break;
        }
      }
      if (!group) return true;
      for (const ChunkLocation& loc : info.locations) {
        if (loc.site == from) continue;
        if (PlacementGroupOf(info.codec, loc.chunk) == group &&
            loc.site % domains == to % domains) {
          return false;
        }
      }
      return true;
    };
  }
  std::lock_guard<std::mutex> lk(rng_mu_);
  return SelectMovementPlan(ctx, config_->mover, *rng_);
}

void ControlPlane::RecordMoveExecuted(BlockId block, std::uint64_t chunk_bytes) {
  InvalidateBlock(block);
  moves_executed_.fetch_add(1, std::memory_order_relaxed);
  mover_network_bytes_.fetch_add(chunk_bytes, std::memory_order_relaxed);
}

void ControlPlane::NoteHeartbeat(SiteId site, double now_ms) {
  bool revived;
  {
    std::lock_guard<std::mutex> lk(detector_mu_);
    revived = detector_.Heartbeat(site, now_ms);
  }
  if (revived && !state_->IsSiteAvailable(site)) {
    // A site the detector wrote off reported in again (a flap healing):
    // restore belief. Its chunks are still cataloged, so redundancy
    // returns with it; cached plans need no invalidation — validation
    // only ever rejects *unavailable* sites.
    state_->SetSiteAvailable(site, true);
  }
}

std::vector<SiteId> ControlPlane::CheckFailures(double now_ms) {
  // Baseline sites the detector has never heard from, so silence is
  // measured from first observation — not from time zero, which would
  // declare a quiet cluster dead on the first check. Detector work runs
  // under detector_mu_ alone; the resulting transitions are applied to
  // the cluster state and shards afterwards (no nested locks).
  std::vector<HealthTransition> transitions;
  {
    std::lock_guard<std::mutex> lk(detector_mu_);
    for (SiteId j = 0; j < state_->num_sites(); ++j) {
      if (!detector_.Tracks(j)) detector_.Baseline(j, now_ms);
    }
    transitions = detector_.Tick(now_ms);
  }
  std::vector<SiteId> died;
  for (const HealthTransition& t : transitions) {
    if (t.to != SiteHealth::kDead) continue;
    if (!state_->IsSiteAvailable(t.site)) continue;  // Already failed manually.
    state_->SetSiteAvailable(t.site, false);
    OnSiteFailed(t.site);
    sites_marked_dead_.fetch_add(1, std::memory_order_relaxed);
    died.push_back(t.site);
  }
  return died;
}

SiteId ControlPlane::SelectRepairDestination(BlockId block) const {
  // The least-loaded available site holding no chunk of this block — the
  // data-movement strategy's load awareness (Section V-C).
  std::shared_lock lk(load_mu_);
  SiteId best = kInvalidSite;
  double best_load = 0;
  for (SiteId j = 0; j < state_->num_sites(); ++j) {
    if (!state_->IsSiteAvailable(j)) continue;
    if (state_->HasChunkAt(block, j)) continue;
    if (best == kInvalidSite || load_tracker_.Omega(j) < best_load) {
      best = j;
      best_load = load_tracker_.Omega(j);
    }
  }
  return best;
}

SiteId ControlPlane::SelectRepairDestination(BlockId block,
                                             ChunkIndex lost_chunk) const {
  const std::size_t domains = config_->failure_domains;
  BlockInfo info;
  if (domains == 0 || !state_->ReadBlock(block, &info) ||
      !SpecHasPlacementGroups(info.codec)) {
    return SelectRepairDestination(block);
  }
  const auto group = PlacementGroupOf(info.codec, lost_chunk);
  if (!group) return SelectRepairDestination(block);

  // Domains already occupied by the lost chunk's group-mates.
  std::vector<bool> taken(domains, false);
  for (const ChunkLocation& loc : info.locations) {
    if (loc.chunk == lost_chunk) continue;
    if (PlacementGroupOf(info.codec, loc.chunk) == group) {
      taken[loc.site % domains] = true;
    }
  }

  std::shared_lock lk(load_mu_);
  SiteId best = kInvalidSite, best_any = kInvalidSite;
  double best_load = 0, best_any_load = 0;
  for (SiteId j = 0; j < state_->num_sites(); ++j) {
    if (!state_->IsSiteAvailable(j)) continue;
    if (state_->HasChunkAt(block, j)) continue;
    const double load = load_tracker_.Omega(j);
    if (best_any == kInvalidSite || load < best_any_load) {
      best_any = j;
      best_any_load = load;
    }
    if (taken[j % domains]) continue;
    if (best == kInvalidSite || load < best_load) {
      best = j;
      best_load = load;
    }
  }
  // Unsatisfiable constraint: availability beats the locality guarantee.
  return best != kInvalidSite ? best : best_any;
}

void ControlPlane::RecordRepair(BlockId block) {
  // The reconstructed chunk lives at a new site; plans for the block are
  // stale (they either reference the dead site or miss the cheaper new
  // location).
  InvalidateBlock(block);
  chunks_repaired_.fetch_add(1, std::memory_order_relaxed);
}

ControlPlane::PlanCacheTotals ControlPlane::CacheTotals() const {
  PlanCacheTotals t;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    t.hits += sh->plan_cache.hits();
    t.misses += sh->plan_cache.misses();
    t.entries += sh->plan_cache.size();
  }
  return t;
}

std::size_t ControlPlane::ilp_queue_depth() const {
  std::size_t depth = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    depth += sh->ilp_queue.size();
  }
  return depth;
}

bool ControlPlane::ilp_worker_busy() const {
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    if (sh->ilp_worker_busy) return true;
  }
  return false;
}

ControlPlaneUsage ControlPlane::Usage() const {
  ControlPlaneUsage u;
  // Memory gauges: lock each shard briefly in turn — a per-shard
  // snapshot, not one frozen instant (see ControlPlaneUsage).
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh->mu);
    u.stats_memory_bytes += sh->co_access.ApproxMemoryBytes();
    u.optimizer_memory_bytes += sh->plan_cache.ApproxMemoryBytes();
  }
  // The mover's working set: candidate demand vectors + partner lists; a
  // small multiple of the per-evaluation state.
  u.mover_memory_bytes =
      config_->mover.max_evaluations *
      (sizeof(BlockDemand) + 8 * sizeof(ChunkLocation) + sizeof(MovementPlan));
  u.stats_network_bytes = stats_network_bytes_.load(std::memory_order_relaxed);
  u.mover_network_bytes = mover_network_bytes_.load(std::memory_order_relaxed);
  u.ilp_solves = ilp_solves_.load(std::memory_order_relaxed);
  u.moves_executed = moves_executed_.load(std::memory_order_relaxed);
  u.chunks_repaired = chunks_repaired_.load(std::memory_order_relaxed);
  u.sites_marked_dead = sites_marked_dead_.load(std::memory_order_relaxed);
  u.repair_bytes_read = repair_bytes_read_.load(std::memory_order_relaxed);
  u.repair_chunks_read = repair_chunks_read_.load(std::memory_order_relaxed);
  return u;
}

}  // namespace ecstore
