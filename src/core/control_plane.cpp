#include "core/control_plane.h"

#include <algorithm>
#include <cmath>

namespace ecstore {

namespace {

/// Per-site media read cost in milliseconds per byte, from the site model.
double MediaMsPerByte(const sim::SiteParams& site) {
  return 1000.0 / site.disk_bytes_per_sec;
}

/// Detector thresholds: explicit when configured, else derived from the
/// stats reporting interval. The half-window slack keeps a heartbeat that
/// lands exactly on its interval boundary from tripping the detector.
FailureDetectorParams EffectiveDetectorParams(const ECStoreConfig& c) {
  FailureDetectorParams p;
  p.suspect_after_ms = c.detector_suspect_after > 0
                           ? ToMillis(c.detector_suspect_after)
                           : 2.5 * ToMillis(c.stats_report_interval);
  p.dead_after_ms = c.detector_dead_after > 0
                        ? ToMillis(c.detector_dead_after)
                        : 4.5 * ToMillis(c.stats_report_interval);
  return p;
}

}  // namespace

ControlPlane::ControlPlane(const ECStoreConfig* config, ClusterState* state,
                           Rng* rng, Executor defer_solve,
                           LoadTrackerParams load_params)
    : config_(config),
      state_(state),
      rng_(rng),
      defer_solve_(std::move(defer_solve)),
      co_access_(config->co_access_window),
      load_tracker_(config->num_sites, load_params),
      plan_cache_(config->plan_cache_capacity),
      detector_(EffectiveDetectorParams(*config)) {}

void ControlPlane::RecordRequest(std::span<const BlockId> blocks) {
  co_access_.RecordRequest(blocks);
}

void ControlPlane::RecordLoadReport(SiteId site, double cpu_utilization,
                                    double io_bytes_per_sec,
                                    std::uint64_t chunk_count,
                                    std::size_t msg_bytes) {
  load_tracker_.RecordReport(site, cpu_utilization, io_bytes_per_sec,
                             chunk_count);
  stats_network_bytes_ += msg_bytes;
}

void ControlPlane::RecordProbe(SiteId site, double rtt_ms,
                               std::size_t msg_bytes) {
  load_tracker_.RecordProbe(site, rtt_ms);
  stats_network_bytes_ += msg_bytes;
}

void ControlPlane::ReloadPlansOnDrift() {
  // Reload cached plans when the cost landscape shifted materially
  // (Section V-B1 "dynamically reload solutions"). The trigger is the
  // largest per-site drift of o_j since the last epoch, relative to the
  // mean — a single site going hot or cold is exactly what invalidates
  // plans, even though the cluster-wide mean barely moves.
  const auto& overheads = load_tracker_.OverheadVector();
  if (overheads_at_epoch_.empty()) {
    overheads_at_epoch_ = overheads;
    return;
  }
  const double mean_o = std::max(load_tracker_.MeanOverheadMs(), 1e-9);
  double max_drift = 0;
  for (std::size_t j = 0; j < overheads.size(); ++j) {
    max_drift = std::max(
        max_drift, std::abs(overheads[j] - overheads_at_epoch_[j]) / mean_o);
  }
  if (max_drift > config_->epoch_bump_threshold) {
    plan_cache_.BumpEpoch();
    overheads_at_epoch_ = overheads;
  }
}

CostParams ControlPlane::CurrentCostParams() const {
  CostParams params;
  params.site_overhead_ms = load_tracker_.OverheadVector();
  params.media_ms_per_byte.assign(config_->num_sites,
                                  MediaMsPerByte(config_->site));
  return params;
}

CostParams ControlPlane::PlanningCostParams() {
  // Near-equal o_j values would otherwise be tie-broken identically by
  // every solve (always the lowest-indexed site), herding load. A small
  // per-call perturbation spreads equal-cost choices across sites while
  // leaving genuine load differences decisive.
  CostParams params = CurrentCostParams();
  const double mean = load_tracker_.MeanOverheadMs();
  for (double& o : params.site_overhead_ms) {
    o += rng_->NextDouble() * config_->cost_tiebreak_noise * mean;
  }
  return params;
}

PlanDecision ControlPlane::SelectAccessPlan(
    std::span<const BlockId> blocks, std::span<const BlockDemand> demands) {
  PlanDecision decision;
  if (!config_->CostModelEnabled()) {
    decision.plan = RandomPlan(demands, *rng_);
    decision.source = PlanSource::kRandom;
    if (plan_observer_) plan_observer_(blocks, decision);
    return decision;
  }

  const std::uint32_t delta = config_->EffectiveDelta();
  if (auto cached = plan_cache_.LookupSatisfying(blocks, delta)) {
    if (ValidatePlan(*cached)) {
      decision.plan = std::move(*cached);
      decision.source = PlanSource::kCacheHit;
      if (plan_observer_) plan_observer_(blocks, decision);
      return decision;
    }
    // Stale entry (site failed since caching): drop and fall through.
    for (BlockId b : blocks) plan_cache_.InvalidateBlock(b);
  }
  decision.plan = GreedyPlan(demands, PlanningCostParams(), *rng_);
  decision.source = PlanSource::kGreedy;
  ScheduleBackgroundIlp(blocks);
  if (plan_observer_) plan_observer_(blocks, decision);
  return decision;
}

bool ControlPlane::ValidatePlan(const AccessPlan& plan) const {
  for (const ChunkRead& read : plan.reads) {
    if (!state_->IsSiteAvailable(read.site)) return false;
    if (!state_->HasChunkAt(read.block, read.site)) return false;
  }
  return !plan.reads.empty();
}

void ControlPlane::ScheduleBackgroundIlp(std::span<const BlockId> blocks) {
  // The single background worker solves queued ILPs off the request path
  // and installs solutions for future requests (Section V-B1). The queue
  // is deduplicated and bounded: under a miss storm extra solve requests
  // are dropped — the greedy plan already served the client.
  constexpr std::size_t kMaxQueue = 64;
  constexpr std::size_t kMaxMissedOnce = 100000;
  // Very large multigets (the Wikipedia trace's tail pages) are served by
  // the greedy plan permanently: their exact sets rarely recur, and their
  // ILPs are the most expensive -- bounded optimization, as in any
  // production solver deployment.
  constexpr std::size_t kMaxIlpBlocks = 16;
  std::vector<BlockId> key = PlanCache::CanonicalKey(blocks);
  if (key.size() > kMaxIlpBlocks) return;
  if (ilp_pending_.count(key)) return;
  // First miss only registers the set; a solve is queued when it recurs,
  // since only recurring sets can ever profit from a cached plan.
  if (missed_once_.insert(key).second) {
    if (missed_once_.size() > kMaxMissedOnce) missed_once_.clear();
    return;
  }
  if (ilp_queue_.size() >= kMaxQueue) return;
  ilp_pending_.insert(key);
  ilp_queue_.push_back(std::move(key));
  if (!ilp_worker_busy_) {
    ilp_worker_busy_ = true;
    PumpIlpWorker();
  }
}

void ControlPlane::PumpIlpWorker() {
  if (ilp_queue_.empty()) {
    ilp_worker_busy_ = false;
    return;
  }
  std::vector<BlockId> blocks = std::move(ilp_queue_.front());
  ilp_queue_.pop_front();
  defer_solve_([this, blocks = std::move(blocks)] {
    ilp_pending_.erase(blocks);
    DemandResult dr = BuildDemands(*state_, blocks, config_->EffectiveDelta());
    const bool readable =
        std::find(dr.readable.begin(), dr.readable.end(), false) ==
        dr.readable.end();
    if (readable) {
      const auto plan = IlpPlan(dr.demands, PlanningCostParams());
      ++ilp_solves_;
      if (plan) plan_cache_.Insert(blocks, config_->EffectiveDelta(), *plan);
    }
    PumpIlpWorker();
  });
}

std::vector<SiteId> ControlPlane::SelectWriteSites(std::uint32_t count) {
  std::vector<SiteId> available;
  for (SiteId j = 0; j < state_->num_sites(); ++j) {
    if (state_->IsSiteAvailable(j)) available.push_back(j);
  }
  if (available.size() < count) return {};

  if (!config_->CostModelEnabled()) {
    // Baseline: random distinct placement [38].
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng_->NextBounded(available.size() - i));
      std::swap(available[i], available[j]);
    }
    available.resize(count);
    return available;
  }

  // Load-aware placement: spread new chunks over the least-loaded sites,
  // with the same tie-break perturbation planning uses so concurrent
  // writers do not all pick the same set.
  const CostParams params = PlanningCostParams();
  std::stable_sort(available.begin(), available.end(), [&](SiteId a, SiteId b) {
    return params.site_overhead_ms[a] < params.site_overhead_ms[b];
  });
  available.resize(count);
  return available;
}

void ControlPlane::InvalidateBlock(BlockId block) {
  plan_cache_.InvalidateBlock(block);
}

void ControlPlane::OnSiteFailed(SiteId /*site*/) {
  plan_cache_.BumpEpoch();  // Any cached plan may reference the dead site.
}

std::optional<MovementPlan> ControlPlane::SelectMovement(
    double request_rate_per_sec) {
  const CostParams params = CurrentCostParams();
  MoverContext ctx;
  ctx.state = state_;
  ctx.co_access = &co_access_;
  ctx.load = &load_tracker_;
  ctx.cost_params = &params;
  ctx.request_rate_per_sec = request_rate_per_sec;
  return SelectMovementPlan(ctx, config_->mover, *rng_);
}

void ControlPlane::RecordMoveExecuted(BlockId block, std::uint64_t chunk_bytes) {
  plan_cache_.InvalidateBlock(block);
  ++moves_executed_;
  mover_network_bytes_ += chunk_bytes;
}

void ControlPlane::NoteHeartbeat(SiteId site, double now_ms) {
  const bool revived = detector_.Heartbeat(site, now_ms);
  if (revived && !state_->IsSiteAvailable(site)) {
    // A site the detector wrote off reported in again (a flap healing):
    // restore belief. Its chunks are still cataloged, so redundancy
    // returns with it; cached plans need no invalidation — validation
    // only ever rejects *unavailable* sites.
    state_->SetSiteAvailable(site, true);
  }
}

std::vector<SiteId> ControlPlane::CheckFailures(double now_ms) {
  // Baseline sites the detector has never heard from, so silence is
  // measured from first observation — not from time zero, which would
  // declare a quiet cluster dead on the first check.
  for (SiteId j = 0; j < state_->num_sites(); ++j) {
    if (!detector_.Tracks(j)) detector_.Baseline(j, now_ms);
  }
  std::vector<SiteId> died;
  for (const HealthTransition& t : detector_.Tick(now_ms)) {
    if (t.to != SiteHealth::kDead) continue;
    if (!state_->IsSiteAvailable(t.site)) continue;  // Already failed manually.
    state_->SetSiteAvailable(t.site, false);
    OnSiteFailed(t.site);
    ++sites_marked_dead_;
    died.push_back(t.site);
  }
  return died;
}

SiteId ControlPlane::SelectRepairDestination(BlockId block) const {
  // The least-loaded available site holding no chunk of this block — the
  // data-movement strategy's load awareness (Section V-C).
  SiteId best = kInvalidSite;
  double best_load = 0;
  for (SiteId j = 0; j < state_->num_sites(); ++j) {
    if (!state_->IsSiteAvailable(j)) continue;
    if (state_->HasChunkAt(block, j)) continue;
    if (best == kInvalidSite || load_tracker_.Omega(j) < best_load) {
      best = j;
      best_load = load_tracker_.Omega(j);
    }
  }
  return best;
}

void ControlPlane::RecordRepair(BlockId block) {
  // The reconstructed chunk lives at a new site; plans for the block are
  // stale (they either reference the dead site or miss the cheaper new
  // location).
  plan_cache_.InvalidateBlock(block);
  ++chunks_repaired_;
}

ControlPlaneUsage ControlPlane::Usage() const {
  ControlPlaneUsage u;
  u.stats_memory_bytes = co_access_.ApproxMemoryBytes();
  u.optimizer_memory_bytes = plan_cache_.ApproxMemoryBytes();
  // The mover's working set: candidate demand vectors + partner lists; a
  // small multiple of the per-evaluation state.
  u.mover_memory_bytes =
      config_->mover.max_evaluations *
      (sizeof(BlockDemand) + 8 * sizeof(ChunkLocation) + sizeof(MovementPlan));
  u.stats_network_bytes = stats_network_bytes_;
  u.mover_network_bytes = mover_network_bytes_;
  u.ilp_solves = ilp_solves_;
  u.moves_executed = moves_executed_;
  u.chunks_repaired = chunks_repaired_;
  u.sites_marked_dead = sites_marked_dead_;
  return u;
}

}  // namespace ecstore
