// System-level configuration: the six techniques the paper evaluates and
// every tunable the services expose (Section V-B3 parameter choices).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/codec_spec.h"
#include "common/types.h"
#include "fault/retry.h"
#include "overload/overload.h"
#include "placement/mover.h"
#include "sim/network.h"
#include "sim/site.h"

namespace ecstore {

/// The six configurations of Section VI-A.
enum class Technique {
  kReplication,  // R:          3-way replication, random placement/access
  kEc,           // EC:         RS(k,r), random placement/access
  kEcLb,         // EC+LB:      EC with late binding (delta extra chunks)
  kEcC,          // EC+C:       EC with the cost-model access strategy
  kEcCM,         // EC+C+M:     EC+C plus dynamic chunk movement
  kEcCMLb,       // EC+C+M+LB:  everything combined
};

/// Short names used in benchmark tables ("R", "EC", "EC+LB", ...).
std::string TechniqueName(Technique t);

/// Parses a technique name; throws std::invalid_argument on junk.
Technique ParseTechnique(const std::string& name);

/// True when the technique plans reads with the Eq. 1-3 cost model.
bool UsesCostModel(Technique t);

/// True when the technique runs the chunk mover.
bool UsesMover(Technique t);

/// Late-binding delta for the technique (0 or the configured delta).
std::uint32_t LateBindingDelta(Technique t, std::uint32_t delta);

/// Concurrent data plane of the real-bytes embodiment (LocalECStore,
/// DESIGN.md §8): a per-site worker pool that executes chunk fetches in
/// parallel, with configurable injected service latency so stragglers are
/// reproducible on real bytes (the testbed's heavy-tailed service times,
/// without the testbed).
struct DataPlaneParams {
  /// Worker threads per storage site (the site's service concurrency).
  std::size_t workers_per_site = 2;
  /// Injected base service latency per fetch, in milliseconds (0 = none).
  double base_latency_ms = 0.0;
  /// Uniform extra latency in [0, jitter_ms) added per fetch.
  double jitter_ms = 0.0;
  /// Additive per-site latency: site j pays site_extra_latency_ms[j] extra
  /// when j < size(). Models persistently slow sites (aging disks).
  std::vector<double> site_extra_latency_ms;
  /// Probability that a fetch straggles; a straggler's injected latency is
  /// multiplied by straggler_factor (the "tail at scale" knob).
  double straggler_probability = 0.0;
  double straggler_factor = 10.0;
  /// Per-fetch deadline in milliseconds: when > 0 and a block is still
  /// short of k when it expires, the store runs bounded retry rounds (see
  /// `retry`) against the block's unfetched chunks before falling into
  /// the degraded-read path. 0 disables deadlines.
  double fetch_deadline_ms = 0.0;
  /// Bounded retry policy for those rounds (DESIGN.md §9): exponential
  /// backoff + jitter under a per-request deadline budget. The defaults
  /// (one immediate retry round) reproduce the original one-shot hedge.
  RetryParams retry;
  /// Seed for the data plane's latency draws. Deliberately independent of
  /// ECStoreConfig::seed so planning parity with the simulator embodiment
  /// is unaffected by fetch timing.
  std::uint64_t seed = 1;
};

/// Full system configuration with the paper's defaults.
struct ECStoreConfig {
  Technique technique = Technique::kEcCM;

  // --- Coding scheme (Section V-B3: RS(2,2) vs three-way replication).
  std::uint32_t k = 2;
  std::uint32_t r = 2;
  /// Codec family for newly written blocks (DESIGN.md §11). kRs keeps the
  /// paper's RS(k, r); kAzureLrc adds `codec_locals` local XOR parities
  /// (r becomes the global-parity count); kPiggybackRs sub-packetizes for
  /// half-chunk repair. Replication baselines ignore this (the technique
  /// decides). Per-block specs may still differ via the spec-aware Put.
  CodecFamilyId codec_family = CodecFamilyId::kRs;
  std::uint32_t codec_locals = 2;
  /// Failure domains for group-aware placement: 0 (default) disables the
  /// constraint entirely — placement draws stay bit-identical to the
  /// pre-codec-family planner. > 0 assigns site j to domain j % domains
  /// and keeps chunks of the same placement group (an LRC local group, a
  /// piggyback group) on distinct domains, so one domain failure costs a
  /// group at most one chunk and cheap repair plans survive.
  std::size_t failure_domains = 0;

  // --- Cluster shape (Section VI-A: 32 storage sites).
  std::size_t num_sites = 32;

  // --- Late binding (Section IV-B1: 0 < delta <= r; experiments use 1).
  std::uint32_t late_binding_delta = 1;

  // --- Statistics service (Section V-A).
  SimTime stats_report_interval = 5 * kSecond;
  std::size_t co_access_window = 5000;

  // --- Probing for o_j (Section V-B3).
  SimTime probe_interval = 1 * kSecond;

  // --- Chunk mover (Sections IV-D, V-B2, VI-C5: <= 1 chunk/second).
  double mover_chunks_per_sec = 1.0;
  MoverParams mover;

  // --- Plan cache + planners (Section V-B1).
  std::size_t plan_cache_capacity = 200000;
  /// Modeled latency of a plan-cache lookup / greedy fallback (the paper
  /// measures sub-millisecond access planning).
  SimTime plan_lookup_cost = 60;          // 0.06 ms
  SimTime greedy_plan_cost = 250;         // 0.25 ms
  SimTime random_plan_cost = 120;         // baseline planning cost
  /// Modeled latency of the background ILP solve ("order of tens of
  /// milliseconds", Section V-B1).
  SimTime ilp_solve_latency = 20 * kMillisecond;
  /// Relative change in mean o_j that invalidates all cached plans.
  double epoch_bump_threshold = 0.3;
  /// Uniform tie-break noise added to o_j per planning decision, as a
  /// fraction of the mean overhead. Prevents equal-cost solves from all
  /// picking the same (lowest-indexed) sites and herding load.
  double cost_tiebreak_noise = 0.25;

  // --- Metadata service access (client -> control plane round trip).
  SimTime metadata_base_latency = 300;    // 0.3 ms
  SimTime metadata_per_block = 25;        // lookup cost per requested block

  // --- Client-side decode model: throughput of the RS decode when parity
  // chunks are involved (calibrated by bench_micro_erasure; pure
  // reassembly is charged at memcpy speed).
  double decode_bytes_per_ms = 1.2e6;
  double reassemble_bytes_per_ms = 2.0e7;
  /// Client-side encode throughput for puts (parity generation).
  double encode_bytes_per_ms = 1.0e6;

  // --- Physical models.
  sim::SiteParams site;
  sim::NetworkParams net;
  /// Heterogeneity: these sites run with their media and overhead slowed
  /// by `slow_factor` (e.g. aging disks, background batch jobs). The
  /// dynamic o_j estimation discovers them; static baselines cannot.
  std::vector<SiteId> slow_sites;
  double slow_factor = 3.0;

  // --- Real-bytes data plane (LocalECStore only; the DES models its own
  // service times through sim::SiteParams above).
  DataPlaneParams data_plane;

  // --- Repair service (Section V-C: mark dead, wait 15 min, rebuild).
  SimTime repair_poll_interval = 5 * kSecond;
  SimTime repair_wait = 15 * kMinute;

  // --- Failure detection (DESIGN.md §9): a site silent for this long is
  // suspected / declared dead by the ControlPlane's detector. 0 derives
  // the thresholds from stats_report_interval (~2.5 and ~4.5 missed
  // reporting windows respectively).
  SimTime detector_suspect_after = 0;
  SimTime detector_dead_after = 0;

  // --- Real-bytes maintenance loop (LocalECStore::StartMaintenance):
  // wall-clock tick driving heartbeats, failure checks, and repair polls;
  // the scrubber runs every scrub_every_ticks ticks (0 disables it).
  double maintenance_tick_ms = 50.0;
  std::size_t scrub_every_ticks = 5;

  // --- Latency-aware block cache + λ-driven prefetch (DESIGN.md §12).
  // Defaults keep both tiers off: no cache object behaviour, no extra RNG
  // draws, bit-identical fig4b.
  /// Decoded-block cache capacity in bytes; 0 disables the cache.
  std::uint64_t cache_capacity_bytes = 0;
  /// Co-access prefetch: on a cache hit, asynchronously warm the anchor's
  /// likeliest co-access partners (requires the cache).
  bool cache_prefetch = false;
  /// Partners considered per prefetch trigger and the λ floor below which
  /// a partner is not worth warming.
  std::size_t prefetch_max_partners = 4;
  double prefetch_min_lambda = 0.2;
  /// Prefetch worker threads (LocalECStore; the DES schedules fills on
  /// its event queue instead).
  std::size_t prefetch_threads = 2;
  /// Modeled latency of a cache hit in the simulator embodiment (client
  /// memory read + coherence version check; no site I/O, no decode).
  SimTime cache_hit_cost = 20;  // 0.02 ms
  /// Modeled delay until a simulated prefetch fill lands in the cache.
  SimTime prefetch_fill_latency = 5 * kMillisecond;

  // --- Dynamic hybrid redundancy (DESIGN.md §12): the movement round
  // promotes the hottest EC blocks to full replicas and demotes cooled
  // ones back, within this extra-storage budget. 0 disables promotion.
  std::uint64_t replica_budget_bytes = 0;
  /// Total copies a promoted block keeps (3 matches the R baseline).
  std::uint32_t replica_copies = 3;
  /// Promotion / demotion access-frequency thresholds (hysteresis).
  double promote_min_frequency = 0.01;
  double demote_frequency = 0.002;
  /// Promotions executed per movement round at most.
  std::size_t promote_per_round = 4;
  /// Size gate: blocks larger than this never promote (0 = no gate). A
  /// replica read is one whole-block fetch from a single site, so
  /// promotion pays off for latency-bound small blocks while
  /// bandwidth-bound large blocks are better served by their parallel
  /// k-way EC fetch.
  std::uint64_t promote_max_block_bytes = 256 * 1024;

  // --- Tail model + adaptive late binding (DESIGN.md §13). Defaults keep
  // both off: no cost-value change, no extra RNG draws, bit-identical
  // fig4b and embodiment parity.
  /// Weight of the tail term added to Eq. 1's per-site overhead:
  /// o_j += tail_weight * max(0, p_tail(j) − mean(j)), so planning steers
  /// around high-variance sites, not just loaded ones. 0 disables the
  /// term entirely (o_j untouched).
  double tail_weight = 0.0;
  /// Quantile the tail term (and the LoadTracker summary cache) uses.
  double tail_quantile = 0.99;
  /// Adaptive late binding: derive δ per request from the predicted
  /// straggler probability instead of the static late_binding_delta.
  /// Only meaningful for the LB techniques (others keep δ = 0). δ is the
  /// smallest d with P[Binomial(k + d, p) > d] <= adaptive_delta_epsilon,
  /// where p is the cluster straggler fraction — 0 on quiet clusters,
  /// rising to adaptive_delta_max under variance.
  bool adaptive_delta = false;
  /// Target probability that a planned read set still comes up short of k
  /// fast chunks (the straggler-coverage miss rate).
  double adaptive_delta_epsilon = 1e-3;
  /// Cap on the per-request δ; 0 means "up to r" (every parity chunk).
  std::uint32_t adaptive_delta_max = 0;
  /// A fetch counts as a straggler when its service time exceeds this
  /// multiple of its site's mean (LoadTracker summary input).
  double straggler_multiple = 5.0;
  /// Service-time samples per LoadTracker rotation window. Estimates read
  /// the merged previous+current window, so a load regime is fully
  /// forgotten after two rotations. Smaller windows track regime changes
  /// faster — circuit breakers (DESIGN.md §14) recover sooner after a
  /// degraded site heals — at the cost of noisier tail estimates.
  std::uint64_t latency_window = 1024;

  // --- Sharded control plane (DESIGN.md §10). Block metadata statistics,
  // the plan cache, and the deferred-ILP queues are partitioned into this
  // many independently locked shards (hash of block id -> shard). 1 keeps
  // the single-shard layout — required for the simulator's bit-identical
  // determinism and the embodiment-parity test; LocalECStore benches and
  // stress tests raise it so concurrent clients stop serializing on one
  // lock.
  std::size_t control_plane_shards = 1;
  // Background ILP executor threads (LocalECStore only). 0 preserves the
  // legacy behavior — deferred solves drain synchronously after each
  // MultiGet response and on the maintenance tick, keeping the request
  // thread's RNG draw order deterministic for parity tests. > 0 drains
  // the per-shard queues on a small worker pool instead, fully off every
  // request path.
  std::size_t ilp_executor_threads = 0;

  // --- Overload control (DESIGN.md §14): end-to-end deadlines, per-site
  // circuit breakers, CoDel-style admission control, and the brownout
  // shed ladder. All default-off: with OverloadParams::Enabled() false
  // neither embodiment constructs an OverloadControl and the request
  // path (RNG draws, planning, timing) is bit-identical to a build
  // without the subsystem.
  OverloadParams overload;

  std::uint64_t seed = 1;

  /// Applies the technique's flags and returns the adjusted config.
  static ECStoreConfig ForTechnique(Technique t);
  static ECStoreConfig ForTechnique(Technique t, ECStoreConfig base);

  std::uint32_t EffectiveDelta() const {
    return LateBindingDelta(technique, late_binding_delta);
  }
  bool CostModelEnabled() const { return UsesCostModel(technique); }
  bool MoverEnabled() const { return UsesMover(technique); }
  bool IsReplication() const { return technique == Technique::kReplication; }

  /// The codec spec new blocks are written with: replication when the
  /// technique is the R baseline, else the configured codec family.
  CodecSpec BlockCodec() const {
    if (IsReplication()) return CodecSpec{CodecFamilyId::kReplication, 1, r, 0};
    return CodecSpec{codec_family, k, r,
                     codec_family == CodecFamilyId::kAzureLrc ? codec_locals
                                                              : 0};
  }

  /// Chunks per block under this configuration's coding scheme.
  std::uint32_t ChunksPerBlock() const { return SpecTotalChunks(BlockCodec()); }
  /// Chunks needed to reconstruct a block.
  std::uint32_t RequiredChunks() const { return SpecDataChunks(BlockCodec()); }
  /// Chunk size for a block of `block_bytes`.
  std::uint64_t ChunkBytes(std::uint64_t block_bytes) const {
    return SpecChunkBytes(BlockCodec(), block_bytes);
  }
};

}  // namespace ecstore
