// StorageNode: one in-process storage site of the real-bytes data plane —
// a keyed chunk store with an availability switch.
//
// Thread-safe: the concurrent data plane (core/data_plane.h) reads chunks
// from pool workers while writers (Put, movement, repair) and the
// failure-injection API run on other threads. The chunk map is guarded by
// a per-node mutex; the hot counters are atomics so concurrent GetChunk
// calls never corrupt the load-refresh deltas derived from them. Chunks
// are handed out as shared_ptrs, so a reader keeps its bytes alive even
// when the chunk is concurrently deleted or overwritten.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/types.h"
#include "erasure/codec.h"

namespace ecstore {

class StorageNode {
 public:
  bool available() const { return available_.load(std::memory_order_acquire); }
  void set_available(bool a) { available_.store(a, std::memory_order_release); }

  void PutChunk(BlockId block, ChunkIndex chunk, ChunkData data);

  /// Returns the chunk bytes, or nullptr when the chunk is missing — or
  /// when the node is failed. A failed node answering nullptr (a miss)
  /// instead of throwing matters under concurrency: FailSite can land
  /// between planning and fetch, and a miss routes the read into the
  /// degraded top-up path where an exception would escape FetchChunks.
  std::shared_ptr<const ChunkData> GetChunk(BlockId block,
                                            ChunkIndex chunk) const;
  bool DeleteChunk(BlockId block, ChunkIndex chunk);
  bool HasChunk(BlockId block, ChunkIndex chunk) const;

  std::uint64_t bytes_stored() const {
    return bytes_stored_.load(std::memory_order_relaxed);
  }
  std::uint64_t chunk_count() const;
  std::uint64_t reads_served() const {
    return reads_served_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;  // guards chunks_
  std::map<std::pair<BlockId, ChunkIndex>, std::shared_ptr<const ChunkData>>
      chunks_;
  std::atomic<std::uint64_t> bytes_stored_{0};
  mutable std::atomic<std::uint64_t> reads_served_{0};
  std::atomic<bool> available_{true};
};

}  // namespace ecstore
