// StorageNode: one in-process storage site of the real-bytes data plane —
// a keyed chunk store with an availability switch and end-to-end data
// integrity (DESIGN.md §9).
//
// Every chunk's CRC32C is computed when it is stored and verified on
// every read, so silently corrupted bytes surface as a miss (an erasure
// the degraded-read path routes around) and never reach a client. The
// fetch path additionally supports injected transient I/O errors, which
// exercise the bounded-retry policy without taking the node down.
//
// Thread-safe: the concurrent data plane (core/data_plane.h) reads chunks
// from pool workers while writers (Put, movement, repair, scrub) and the
// failure-injection API run on other threads. The chunk map is guarded by
// a per-node mutex; the hot counters are atomics so concurrent GetChunk
// calls never corrupt the load-refresh deltas derived from them. Chunks
// are handed out as shared_ptrs, so a reader keeps its bytes alive even
// when the chunk is concurrently deleted or overwritten.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/types.h"
#include "erasure/codec.h"

namespace ecstore {

class StorageNode {
 public:
  bool available() const { return available_.load(std::memory_order_acquire); }
  void set_available(bool a) { available_.store(a, std::memory_order_release); }

  /// Stores a chunk, computing its CRC32C. Returns false — dropping the
  /// write — when the node is failed: a write raced a crash, and the
  /// resulting redundancy hole is what repair and the scrubber heal.
  bool PutChunk(BlockId block, ChunkIndex chunk, ChunkData data);

  /// Verified read: returns the chunk bytes, or nullptr when the chunk is
  /// missing, the node is failed, or the bytes no longer match their
  /// stored checksum (silent corruption becomes an erasure, not bad
  /// data). A failed node answering nullptr (a miss) instead of throwing
  /// matters under concurrency: FailSite can land between planning and
  /// fetch, and a miss routes the read into the degraded top-up path
  /// where an exception would escape FetchChunks.
  std::shared_ptr<const ChunkData> GetChunk(BlockId block,
                                            ChunkIndex chunk) const;

  /// The data-plane fetch path: GetChunk plus injected transient I/O
  /// errors (see set_fetch_error). Direct authoritative reads — degraded
  /// top-up, scrub, repair, movement — use GetChunk and bypass injection.
  std::shared_ptr<const ChunkData> FetchChunk(BlockId block,
                                              ChunkIndex chunk) const;

  bool DeleteChunk(BlockId block, ChunkIndex chunk);
  bool HasChunk(BlockId block, ChunkIndex chunk) const;

  /// Presence + checksum validity without counting a read or rolling the
  /// error injector: the scrubber's probe.
  bool HasValidChunk(BlockId block, ChunkIndex chunk) const;

  /// Silently flips bits in the stored bytes of `chunk`, keeping its
  /// recorded checksum — the fault the scrubber exists for. Readers
  /// holding the old shared_ptr are unaffected (the corrupted copy
  /// replaces the map entry). Returns false when the chunk is absent.
  bool CorruptChunk(BlockId block, ChunkIndex chunk);

  /// Snapshot of the keys currently stored (fault injection / scrub).
  std::vector<std::pair<BlockId, ChunkIndex>> ChunkKeys() const;

  /// FetchChunk fails with probability `p` (deterministically, from
  /// `seed` and a per-node draw counter). p = 0 switches injection off.
  void set_fetch_error(double p, std::uint64_t seed = 0);

  std::uint64_t bytes_stored() const {
    return bytes_stored_.load(std::memory_order_relaxed);
  }
  std::uint64_t chunk_count() const;
  std::uint64_t reads_served() const {
    return reads_served_.load(std::memory_order_relaxed);
  }
  /// CRC mismatches caught by reads (each failing read counts once).
  std::uint64_t checksum_failures() const {
    return checksum_failures_.load(std::memory_order_relaxed);
  }
  std::uint64_t injected_fetch_errors() const {
    return injected_fetch_errors_.load(std::memory_order_relaxed);
  }

 private:
  struct StoredChunk {
    std::shared_ptr<const ChunkData> data;
    std::uint32_t crc = 0;
  };

  /// Shared lookup + verification for GetChunk/FetchChunk.
  std::shared_ptr<const ChunkData> VerifiedLookup(BlockId block,
                                                  ChunkIndex chunk) const;

  mutable std::mutex mu_;  // guards chunks_
  std::map<std::pair<BlockId, ChunkIndex>, StoredChunk> chunks_;
  std::atomic<std::uint64_t> bytes_stored_{0};
  mutable std::atomic<std::uint64_t> reads_served_{0};
  mutable std::atomic<std::uint64_t> checksum_failures_{0};
  mutable std::atomic<std::uint64_t> injected_fetch_errors_{0};
  std::atomic<bool> available_{true};

  // Injected fetch-error state. The probability/seed pair is written
  // under mu_ and read with atomics so in-flight fetches see a coherent
  // toggle without locking on the hot path.
  std::atomic<double> fetch_error_p_{0.0};
  std::atomic<std::uint64_t> fetch_error_seed_{0};
  mutable std::atomic<std::uint64_t> fetch_error_seq_{0};
};

}  // namespace ecstore
