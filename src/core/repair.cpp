#include "core/repair.h"

#include <utility>
#include <vector>

#include "core/sim_store.h"
#include "erasure/codec_family.h"

namespace ecstore {

RepairService::RepairService(const ECStoreConfig* config, ClusterState* state,
                             ControlPlane* control_plane,
                             Reconstructor reconstruct, RepairCallback on_repair)
    : config_(config),
      state_(state),
      control_plane_(control_plane),
      reconstruct_(std::move(reconstruct)),
      on_repair_(std::move(on_repair)),
      down_since_(config->num_sites, kSiteUp),
      repaired_(config->num_sites, false) {}

RepairService::RepairService(SimECStore* store, RepairCallback on_repair)
    : RepairService(&store->config(), &store->state(), &store->control_plane(),
                    /*reconstruct=*/{}, std::move(on_repair)) {
  clock_ = [store] { return store->queue().Now(); };
  scheduler_ = [store](SimTime delay, std::function<void()> fn) {
    store->queue().ScheduleAfter(delay, std::move(fn));
  };
}

void RepairService::Start() {
  // Requires the SimECStore constructor (which binds clock_/scheduler_).
  ScheduleNext();
}

void RepairService::Start(Clock clock, Scheduler scheduler) {
  clock_ = std::move(clock);
  scheduler_ = std::move(scheduler);
  ScheduleNext();
}

void RepairService::ScheduleNext() {
  scheduler_(config_->repair_poll_interval, [this] {
    Poll(clock_());
    ScheduleNext();
  });
}

void RepairService::Poll(SimTime now) {
  const std::size_t n = state_->num_sites();
  if (down_since_.size() < n) {
    down_since_.resize(n, kSiteUp);
    repaired_.resize(n, false);
  }
  for (SiteId j = 0; j < n; ++j) {
    if (state_->IsSiteAvailable(j)) {
      down_since_[j] = kSiteUp;
      repaired_[j] = false;
      continue;
    }
    if (repaired_[j]) continue;  // Rebuilt once already this outage.
    if (down_since_[j] == kSiteUp) {
      // Newly seen down: start the grace clock, in case the outage is
      // transient (Section V-C: 15 minutes, as in GFS).
      down_since_[j] = now;
      continue;
    }
    if (now - down_since_[j] < config_->repair_wait) continue;

    std::uint64_t rebuilt;
    if (reconstruct_) {
      rebuilt = reconstruct_(j);
      chunks_rebuilt_ += rebuilt;
    } else {
      rebuilt = ReconstructSite(j);  // Accumulates chunks_rebuilt_ itself.
    }
    repaired_[j] = true;
    if (on_repair_) on_repair_(j, rebuilt);
  }
}

std::uint64_t RepairService::ReconstructSite(SiteId site) {
  std::uint64_t rebuilt = 0;
  for (BlockId block : state_->BlocksWithChunkAt(site)) {
    const BlockInfo& info = state_->GetBlock(block);

    // The lost chunk's index and the reachable survivor pool.
    ChunkIndex lost_index = 0;
    std::vector<ChunkIndex> avail;
    avail.reserve(info.locations.size());
    for (const ChunkLocation& loc : info.locations) {
      if (loc.site == site) {
        lost_index = loc.chunk;
        continue;
      }
      if (state_->IsSiteAvailable(loc.site)) avail.push_back(loc.chunk);
    }

    // Reconstruction follows the block's codec family: no decodable
    // repair plan over the survivors means the block cannot be healed
    // right now (a later pass can still catch it).
    const auto family = GetCodecFamily(info.codec);
    const auto plan = family->PlanRepair(lost_index, avail);
    if (!plan) continue;

    const SiteId best =
        control_plane_->SelectRepairDestination(block, lost_index);
    if (best == kInvalidSite) continue;
    if (state_->MoveChunk(block, site, best)) {
      // This embodiment carries no bytes; the traffic the plan *would*
      // read is what the wire-accounting counters charge.
      control_plane_->RecordRepairTraffic(plan->reads.size(),
                                          plan->BytesToRead(info.chunk_bytes));
      control_plane_->RecordRepair(block);
      ++rebuilt;
    }
  }
  chunks_rebuilt_ += rebuilt;
  return rebuilt;
}

}  // namespace ecstore
