#include "core/repair.h"

#include <algorithm>

namespace ecstore {

RepairService::RepairService(SimECStore* store, RepairCallback on_repair)
    : store_(store),
      on_repair_(std::move(on_repair)),
      pending_(store->config().num_sites, false),
      repaired_(store->config().num_sites, false) {}

void RepairService::Start() {
  store_->queue().ScheduleAfter(store_->config().repair_poll_interval,
                                [this] { PollTick(); });
}

void RepairService::PollTick() {
  const ClusterState& state = store_->state();
  for (SiteId j = 0; j < state.num_sites(); ++j) {
    if (state.IsSiteAvailable(j)) {
      pending_[j] = false;
      repaired_[j] = false;
      continue;
    }
    if (pending_[j] || repaired_[j]) continue;
    pending_[j] = true;
    // Wait before rebuilding, in case the outage is transient
    // (Section V-C: 15 minutes, as in GFS).
    store_->queue().ScheduleAfter(store_->config().repair_wait, [this, j] {
      if (!pending_[j]) return;  // Site came back during the grace period.
      if (store_->state().IsSiteAvailable(j)) {
        pending_[j] = false;
        return;
      }
      const std::uint64_t rebuilt = ReconstructSite(j);
      pending_[j] = false;
      repaired_[j] = true;
      if (on_repair_) on_repair_(j, rebuilt);
    });
  }
  store_->queue().ScheduleAfter(store_->config().repair_poll_interval,
                                [this] { PollTick(); });
}

std::uint64_t RepairService::ReconstructSite(SiteId site) {
  ClusterState& state = store_->state();
  ControlPlane& cp = store_->control_plane();
  std::uint64_t rebuilt = 0;

  for (BlockId block : state.BlocksWithChunkAt(site)) {
    const BlockInfo& info = state.GetBlock(block);
    // Reconstruction needs k surviving chunks.
    if (state.AvailableLocations(block).size() < info.k) continue;

    const SiteId best = cp.SelectRepairDestination(block);
    if (best == kInvalidSite) continue;
    if (state.MoveChunk(block, site, best)) {
      cp.RecordRepair(block);
      ++rebuilt;
    }
  }
  chunks_rebuilt_ += rebuilt;
  return rebuilt;
}

}  // namespace ecstore
