#include "core/sim_store.h"

#include <algorithm>
#include <cassert>
#include <map>

namespace ecstore {

namespace {

constexpr std::size_t kStatsReportMsgBytes = 64;
constexpr std::size_t kProbeMsgBytes = 32;

}  // namespace

/// In-flight multiget state. Shared by the chunk-arrival events.
struct SimECStore::PendingRequest {
  std::vector<BlockId> blocks;
  std::vector<BlockDemand> demands;  // parallel to blocks after dedup
  GetCallback done;

  SimTime start = 0;
  SimTime metadata = 0;
  SimTime planning = 0;
  SimTime retrieval_start = 0;
  SimTime retrieval = 0;
  bool cache_hit = false;
  std::uint32_t cached_blocks = 0;  // served from the decoded-block cache
  // Catalog version per demand, captured at plan time: a completed fetch
  // fills the cache only if the block's version is still current (a
  // mid-flight Put/move/repair rewrite must not leave stale bytes).
  std::vector<std::uint64_t> versions;

  // Per-demand completion tracking.
  std::vector<std::uint32_t> remaining;            // chunks still needed
  std::vector<std::vector<ChunkIndex>> received;   // first k indices kept
  std::size_t blocks_remaining = 0;
  std::uint32_t sites_accessed = 0;
  bool finished = false;  // retrieval barrier passed (late chunks ignored)
  // Bumped on every (re)issue; in-flight chunk events from an older
  // generation are ignored after a failure-triggered re-plan.
  std::uint32_t generation = 0;
  // Overload control (DESIGN.md §14): absolute deadline in simulated
  // time (0 = none). A scheduled timeout event completes the request at
  // the deadline; the guarded phases check `finished` on entry so no
  // work continues past it.
  SimTime deadline = 0;
  bool deadline_hit = false;
};

SimECStore::SimECStore(ECStoreConfig config)
    : config_(config),
      rng_(config.seed),
      net_(config.net, Rng(config.seed ^ 0x6E65745F726E67ULL)),
      state_(config.num_sites),
      control_plane_(
          &config_, &state_, &rng_,
          // Executor seam: deferred ILP solves run on the DES event
          // queue after the modeled solve latency (Section V-B1 "order
          // of tens of milliseconds"), preserving simulated-time
          // semantics for every background refinement.
          [this](ControlPlane::Deferred work) {
            queue_.ScheduleAfter(config_.ilp_solve_latency, std::move(work));
          },
          [&] {
            LoadTrackerParams p;
            p.reference_io_bytes_per_sec = config.site.disk_bytes_per_sec;
            return p;
          }()) {
  sites_.reserve(config.num_sites);
  for (std::size_t j = 0; j < config.num_sites; ++j) {
    sim::SiteParams site_params = config.site;
    if (std::find(config.slow_sites.begin(), config.slow_sites.end(),
                  static_cast<SiteId>(j)) != config.slow_sites.end()) {
      site_params.disk_bytes_per_sec /= config.slow_factor;
      site_params.request_overhead = static_cast<SimTime>(
          static_cast<double>(site_params.request_overhead) * config.slow_factor);
    }
    sites_.push_back(std::make_unique<sim::SimSite>(
        static_cast<SiteId>(j), &queue_, site_params, rng_.Split()));
  }

  // Latency tier (DESIGN.md §12). Entries are metadata-only in this
  // embodiment (the DES carries no chunk bytes); the version check plus
  // the control plane's invalidation push keep them coherent.
  if (config_.cache_capacity_bytes > 0) {
    cache_ = std::make_unique<BlockCache>(config_.cache_capacity_bytes);
    control_plane_.set_invalidation_listener(
        [this](BlockId b) { cache_->Invalidate(b); });
  }
  if (config_.replica_budget_bytes > 0) {
    ReplicaPromoter::Params pp;
    pp.budget_bytes = config_.replica_budget_bytes;
    pp.replica_copies = config_.replica_copies;
    pp.promote_min_frequency = config_.promote_min_frequency;
    pp.demote_frequency = config_.demote_frequency;
    pp.max_promotions_per_round = config_.promote_per_round;
    pp.max_block_bytes = config_.promote_max_block_bytes;
    promoter_ = std::make_unique<ReplicaPromoter>(pp);
  }

  // Overload control (DESIGN.md §14): constructed only when some
  // feature is on; the null pointer is what guarantees the default
  // config's timelines are bit-identical to a build without it.
  if (config_.overload.Enabled()) {
    overload_ =
        std::make_unique<OverloadControl>(config_.num_sites, config_.overload);
    control_plane_.set_overload_control(overload_.get());
  }
}

SimECStore::~SimECStore() = default;

void SimECStore::LoadBlock(BlockId id, std::uint64_t block_bytes) {
  const std::vector<SiteId> sites =
      state_.PickRandomSites(rng_, config_.ChunksPerBlock());
  LoadBlockAt(id, block_bytes, sites);
}

void SimECStore::LoadBlockAt(BlockId id, std::uint64_t block_bytes,
                             std::span<const SiteId> sites) {
  const std::uint64_t chunk_bytes = config_.ChunkBytes(block_bytes);
  state_.AddBlock(id, block_bytes, chunk_bytes, config_.BlockCodec(), sites);
  for (SiteId s : sites) {
    sites_[s]->set_chunk_count(state_.site_chunk_counts()[s]);
  }
}

void SimECStore::LoadBlocks(BlockId first, std::uint64_t count,
                            std::uint64_t block_bytes) {
  for (std::uint64_t i = 0; i < count; ++i) LoadBlock(first + i, block_bytes);
}

void SimECStore::Start() {
  assert(!started_);
  started_ = true;
  queue_.ScheduleAfter(config_.stats_report_interval, [this] { StatsTick(); });
  queue_.ScheduleAfter(config_.probe_interval, [this] { ProbeTick(); });
  if (config_.MoverEnabled()) {
    queue_.ScheduleAfter(MoverPeriod(), [this] { MoverTick(); });
  }
}

void SimECStore::Get(std::vector<BlockId> blocks, GetCallback done) {
  const SimTime start = queue_.Now();

  // Admission gate (DESIGN.md §14): refuse excess requests before any
  // control-plane work is spent on them.
  if (overload_ && overload_->gate_enabled() &&
      !overload_->admission()->TryAdmit(ToMillis(start))) {
    // Brownout L3 (cache-only answers): a refused request can still be
    // served — free of fan-out — when every block sits validly in the
    // decoded-block cache.
    if (overload_->brownout_level() >= 3 && cache_) {
      bool all_cached = true;
      for (BlockId id : blocks) {
        if (!cache_->Lookup(id, state_.BlockVersion(id), nullptr)) {
          all_cached = false;
          break;
        }
      }
      if (all_cached) {
        const auto cached = static_cast<std::uint32_t>(blocks.size());
        const SimTime serve =
            config_.cache_hit_cost * static_cast<SimTime>(cached);
        queue_.ScheduleAfter(serve,
                             [this, start, cached, done = std::move(done)] {
          RequestBreakdown out;
          out.total = queue_.Now() - start;
          out.ok = true;
          out.cached_blocks = cached;
          ++requests_completed_;
          done(out);
        });
        return;
      }
    }
    // Fast-fail shed: the modeled rejection cost, orders of magnitude
    // below a served request.
    queue_.ScheduleAfter(FromMillis(config_.overload.shed_penalty_ms),
                         [this, start, done = std::move(done)] {
      RequestBreakdown out;
      out.total = queue_.Now() - start;
      out.ok = false;
      out.shed = true;
      done(out);
    });
    return;
  }

  auto req = std::make_shared<PendingRequest>();
  req->blocks = std::move(blocks);
  req->done = std::move(done);
  req->start = start;
  if (overload_ && overload_->gate_enabled()) {
    // Exactly-once token release on whichever completion path fires
    // (every path funnels through req->done exactly once).
    req->done = [this, inner = std::move(req->done)](
                    const RequestBreakdown& b) {
      overload_->admission()->Release();
      inner(b);
    };
  }
  if (overload_ && overload_->deadline_ms() > 0) {
    // End-to-end deadline: a timeout event completes the request at the
    // budget's edge; the phase entry guards on `finished` stop all
    // further work for it.
    req->deadline = start + FromMillis(overload_->deadline_ms());
    queue_.ScheduleAfter(FromMillis(overload_->deadline_ms()), [this, req] {
      if (req->finished) return;
      overload_->deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
      req->deadline_hit = true;
      Complete(req, /*ok=*/false);
    });
  }

  // Statistics service samples the request stream (Section V-A).
  control_plane_.RecordRequest(req->blocks);

  // Client-side cache check (DESIGN.md §12): version-valid hits skip the
  // control plane entirely; only the misses continue down R1-R3.
  if (cache_) {
    std::vector<BlockId> misses;
    misses.reserve(req->blocks.size());
    for (BlockId id : req->blocks) {
      if (cache_->Lookup(id, state_.BlockVersion(id), nullptr)) {
        ++req->cached_blocks;
        cache_->UpdateWeight(id, control_plane_.BlockAccessFrequency(id));
        SchedulePrefetch(id, req->blocks);
      } else {
        misses.push_back(id);
      }
    }
    if (misses.empty()) {
      // Fully cached: no metadata trip, no fan-out, no decode — just the
      // modeled per-block hit cost.
      const SimTime serve =
          config_.cache_hit_cost * static_cast<SimTime>(req->cached_blocks);
      queue_.ScheduleAfter(serve, [this, req] {
        RequestBreakdown out;
        out.total = queue_.Now() - req->start;
        out.ok = true;
        out.cached_blocks = req->cached_blocks;
        ++requests_completed_;
        req->done(out);
      });
      return;
    }
    req->blocks = std::move(misses);
  }

  // R1: metadata access — a control-plane round trip plus lookup work.
  req->metadata = net_.RoundTrip() + config_.metadata_base_latency +
                  config_.metadata_per_block *
                      static_cast<SimTime>(req->blocks.size());
  queue_.ScheduleAfter(req->metadata, [this, req] { PlanPhase(req); });
}

void SimECStore::PlanPhase(std::shared_ptr<PendingRequest> req) {
  if (req->finished) return;  // Deadline fired while this was in flight.
  // Per-request late-binding fan-out: the static δ, or the adaptive
  // policy's straggler-probability-derived value over the sites this
  // request's plan can actually touch (DESIGN.md §13).
  const std::uint32_t delta = control_plane_.AdaptiveDelta(req->blocks);
  DemandResult dr = BuildDemands(state_, req->blocks, delta);
  if (std::find(dr.readable.begin(), dr.readable.end(), false) != dr.readable.end()) {
    Complete(req, /*ok=*/false);
    return;
  }
  req->demands = std::move(dr.demands);
  if (cache_) {
    req->versions.clear();
    req->versions.reserve(req->demands.size());
    for (const BlockDemand& d : req->demands) {
      req->versions.push_back(state_.BlockVersion(d.block));
    }
  }

  // R2: the chunk read optimizer decides the access strategy. The shared
  // control plane never solves an ILP inline — a miss is served by the
  // greedy fallback while the refinement runs on this embodiment's
  // event-queue executor.
  PlanDecision decision =
      control_plane_.SelectAccessPlan(req->blocks, req->demands, delta);
  req->cache_hit = decision.cache_hit();
  SimTime planning_cost = 0;
  switch (decision.source) {
    case PlanSource::kCacheHit:
      planning_cost = config_.plan_lookup_cost;
      break;
    case PlanSource::kGreedy:
      planning_cost = config_.greedy_plan_cost;
      break;
    case PlanSource::kRandom:
      planning_cost = config_.random_plan_cost;
      break;
  }
  req->planning = planning_cost;
  queue_.ScheduleAfter(planning_cost, [this, req, plan = std::move(decision.plan)] {
    IssueReads(req, plan);
  });
}

void SimECStore::IssueReads(std::shared_ptr<PendingRequest> req,
                            const AccessPlan& plan) {
  if (req->finished) return;  // Deadline fired while this was in flight.
  if (req->retrieval_start == 0) req->retrieval_start = queue_.Now();
  const std::uint32_t generation = ++req->generation;
  const std::size_t n = req->demands.size();
  req->remaining.assign(n, 0);
  req->received.assign(n, {});
  req->blocks_remaining = n;

  // Completion requires k chunks per block — with late binding the plan
  // contains k + delta reads but only the first k responses matter.
  for (std::size_t i = 0; i < n; ++i) {
    const BlockInfo& info = state_.GetBlock(req->demands[i].block);
    req->remaining[i] = info.k;
  }
  if (n == 0) {
    FinishRetrieval(req);
    return;
  }

  // One storage-service request per accessed site: all chunks the plan
  // takes from a site travel in a single RPC, so the per-request
  // overhead o_j is paid once per site — the structure Eq. 1 models and
  // the reason co-located placement reduces retrieval cost.
  struct SiteBatch {
    std::vector<std::pair<std::size_t, ChunkIndex>> items;  // (block idx, chunk)
    std::vector<std::uint64_t> sizes;
    std::uint64_t bytes = 0;
  };
  std::map<SiteId, SiteBatch> batches;
  for (const ChunkRead& read : plan.reads) {
    const auto it = std::find_if(
        req->demands.begin(), req->demands.end(),
        [&](const BlockDemand& d) { return d.block == read.block; });
    assert(it != req->demands.end());
    const std::size_t block_index =
        static_cast<std::size_t>(it - req->demands.begin());
    SiteBatch& batch = batches[read.site];
    batch.items.emplace_back(block_index, read.chunk);
    batch.sizes.push_back(it->chunk_bytes);
    batch.bytes += it->chunk_bytes;
  }

  req->sites_accessed = static_cast<std::uint32_t>(batches.size());
  for (auto& [site, batch] : batches) {
    const SimTime arrival = net_.RequestDelay();
    queue_.ScheduleAfter(arrival, [this, req, generation, site = site,
                                   batch = std::move(batch)] {
      if (req->finished) return;  // Deadline fired before dispatch.
      sim::SimSite& s = *sites_[site];
      if (!s.available()) {
        // The site failed while the request was in flight: the client
        // detects the failure and re-plans against the surviving sites
        // (Section VI-C4 "requests are routed to only the available
        // nodes").
        RetryAfterFailure(req, generation);
        return;
      }
      if (overload_ && overload_->admission()) {
        // CoDel signal (DESIGN.md §14): the site's backlog delay at
        // submit time is the DES analogue of a queue sojourn.
        overload_->admission()->RecordSojourn(
            ToMillis(std::max<SimTime>(s.busy_until() - queue_.Now(), 0)),
            ToMillis(queue_.Now()));
      }
      if (req->deadline > 0 &&
          std::max(s.busy_until(), queue_.Now()) >= req->deadline) {
        // Cancelled at the per-site queue (DESIGN.md §14): the site's
        // standing backlog alone pushes this batch past the request's
        // deadline — enqueueing it would burn service time on an answer
        // nobody is waiting for. The deadline timeout event completes
        // the request.
        overload_->expired_jobs_cancelled.fetch_add(1,
                                                    std::memory_order_relaxed);
        return;
      }
      const SimTime submitted = queue_.Now();
      s.SubmitBatchRead(batch.sizes, [this, req, generation, site, submitted,
                                      batch](SimTime done_at) {
        // Feed the tail model: the site's service time for this batch
        // (queueing + media + NIC), exactly what a storage service would
        // self-report. Record-only — planning is unaffected until the
        // tail weight / adaptive δ knobs are turned on.
        control_plane_.RecordServiceTime(site, ToMillis(done_at - submitted));
        const SimTime back = net_.ResponseDelay(batch.bytes);
        queue_.ScheduleAfter(back, [this, req, generation, batch] {
          if (req->generation != generation) return;  // Superseded plan.
          for (const auto& [block_index, chunk] : batch.items) {
            OnChunkArrived(req, block_index, chunk);
          }
        });
      });
    });
  }
}

void SimECStore::RetryAfterFailure(const std::shared_ptr<PendingRequest>& req,
                                   std::uint32_t generation) {
  if (req->finished || req->generation != generation) return;
  if (req->deadline > 0 &&
      queue_.Now() + config_.metadata_base_latency >= req->deadline) {
    // The re-plan's earliest completion already misses the deadline: do
    // not issue it. The timeout event completes the request, so
    // retried_fetches_ counts only retries actually taken.
    return;
  }
  ++req->generation;  // Poison outstanding chunk events immediately.
  ++retried_fetches_;
  queue_.ScheduleAfter(config_.metadata_base_latency, [this, req] {
    if (req->finished) return;
    PlanPhase(req);
  });
}

void SimECStore::OnChunkArrived(const std::shared_ptr<PendingRequest>& req,
                                std::size_t block_index, ChunkIndex chunk) {
  if (req->finished) return;  // Late-binding straggler: ignored.
  auto& remaining = req->remaining[block_index];
  if (remaining == 0) return;  // Block already satisfied.
  req->received[block_index].push_back(chunk);
  if (--remaining == 0) {
    if (--req->blocks_remaining == 0) FinishRetrieval(req);
  }
}

void SimECStore::FinishRetrieval(const std::shared_ptr<PendingRequest>& req) {
  if (req->finished) return;  // Deadline fired first: already completed.
  req->finished = true;
  req->retrieval = queue_.Now() - req->retrieval_start;

  // R3: decode. Blocks whose first-k chunks are all systematic (or any
  // replica) are pure reassembly; otherwise the GF-arithmetic decode rate
  // applies. The client decodes blocks sequentially.
  SimTime decode_total = 0;
  for (std::size_t i = 0; i < req->demands.size(); ++i) {
    const BlockInfo& info = state_.GetBlock(req->demands[i].block);
    if (config_.IsReplication()) continue;  // A replica needs no decode.
    const auto& chunks = req->received[i];
    const bool systematic =
        std::all_of(chunks.begin(), chunks.end(),
                    [&](ChunkIndex c) { return c < info.k; });
    const double rate = systematic ? config_.reassemble_bytes_per_ms
                                   : config_.decode_bytes_per_ms;
    decode_total += static_cast<SimTime>(
        static_cast<double>(info.block_bytes) / rate * kMillisecond);
  }
  queue_.ScheduleAfter(decode_total, [this, req, decode_total] {
    // Fill the cache with the just-decoded blocks, unless a concurrent
    // rewrite (Put/move/repair) bumped the version since plan time.
    if (cache_) {
      for (std::size_t i = 0; i < req->demands.size(); ++i) {
        const BlockId b = req->demands[i].block;
        BlockInfo info;
        if (!state_.ReadBlock(b, &info)) continue;
        if (i < req->versions.size() && info.version != req->versions[i]) {
          continue;
        }
        cache_->Insert(b, nullptr, info.block_bytes, info.version,
                       control_plane_.BlockAccessFrequency(b));
      }
    }
    RequestBreakdown out;
    out.metadata = req->metadata;
    out.planning = req->planning;
    out.retrieval = req->retrieval;
    out.decode = decode_total;
    out.total = queue_.Now() - req->start;
    out.ok = true;
    out.plan_cache_hit = req->cache_hit;
    out.sites_accessed = req->sites_accessed;
    out.cached_blocks = req->cached_blocks;
    ++requests_completed_;
    req->done(out);
  });
}

void SimECStore::Complete(const std::shared_ptr<PendingRequest>& req, bool ok) {
  if (req->finished) return;  // Deadline timeout and failure can race.
  req->finished = true;
  ++req->generation;  // Poison any in-flight chunk events.
  RequestBreakdown out;
  out.metadata = req->metadata;
  out.total = queue_.Now() - req->start;
  out.ok = ok;
  out.cached_blocks = req->cached_blocks;
  out.deadline_hit = req->deadline_hit;
  ++requests_completed_;
  req->done(out);
}

void SimECStore::SchedulePrefetch(BlockId anchor,
                                  const std::vector<BlockId>& requested) {
  if (!config_.cache_prefetch) return;
  // Brownout L1 (DESIGN.md §14): prefetch is the cheapest optional work
  // and the first to go under pressure.
  if (overload_ && overload_->brownout_level() >= 1) return;
  const std::vector<CoAccessPartner> partners =
      control_plane_.CoAccessPartnersOf(anchor, config_.prefetch_max_partners);
  for (const CoAccessPartner& p : partners) {
    if (p.lambda < config_.prefetch_min_lambda) break;  // Sorted descending.
    if (std::find(requested.begin(), requested.end(), p.block) !=
        requested.end()) {
      continue;  // Already being fetched by this request.
    }
    if (!cache_->BeginPrefetch(p.block)) continue;  // In cache or in flight.
    // The fill is one deferred event after the modeled fetch+decode delay;
    // it re-reads the catalog at fill time so a concurrent rewrite or
    // delete simply drops the fill.
    queue_.ScheduleAfter(config_.prefetch_fill_latency,
                         [this, block = p.block] {
      BlockInfo info;
      if (state_.ReadBlock(block, &info)) {
        cache_->Insert(block, nullptr, info.block_bytes, info.version,
                       control_plane_.BlockAccessFrequency(block),
                       /*prefetched=*/true);
      }
      cache_->EndPrefetch(block);
    });
  }
}

std::vector<SiteId> SimECStore::ChooseWriteSites(std::uint32_t count) {
  // A full-stripe request routes through the spec-aware overload so
  // group-aware spreading applies (a no-op — identical draws — when
  // failure_domains is 0); explicit other counts keep the legacy path.
  if (count == config_.ChunksPerBlock()) {
    return control_plane_.SelectWriteSites(config_.BlockCodec());
  }
  return control_plane_.SelectWriteSites(count);
}

void SimECStore::Put(BlockId id, std::uint64_t block_bytes, PutCallback done) {
  const SimTime start = queue_.Now();
  // Admission gate (DESIGN.md §14): writes compete for the same tokens
  // as reads — under overload a shed Put fast-fails like a shed Get.
  if (overload_ && overload_->gate_enabled()) {
    if (!overload_->admission()->TryAdmit(ToMillis(start))) {
      queue_.ScheduleAfter(FromMillis(config_.overload.shed_penalty_ms),
                           [this, start, done = std::move(done)] {
        done(PutResult{queue_.Now() - start, false});
      });
      return;
    }
    done = [this, inner = std::move(done)](const PutResult& r) {
      overload_->admission()->Release();
      inner(r);
    };
  }
  // W1: placement decision at the chunk placement service.
  const SimTime control = net_.RoundTrip() + config_.metadata_base_latency;
  queue_.ScheduleAfter(control, [this, id, block_bytes, start,
                                 done = std::move(done)]() mutable {
    const std::uint32_t total_chunks = config_.ChunksPerBlock();
    const std::vector<SiteId> sites = ChooseWriteSites(total_chunks);
    if (sites.empty() || state_.Contains(id)) {
      done(PutResult{queue_.Now() - start, false});
      return;
    }
    const std::uint64_t chunk_bytes = config_.ChunkBytes(block_bytes);

    // Client-side encode (parity generation) before chunks go out.
    const SimTime encode = static_cast<SimTime>(
        static_cast<double>(block_bytes) / config_.encode_bytes_per_ms *
        kMillisecond);
    queue_.ScheduleAfter(encode, [this, id, block_bytes, chunk_bytes, sites,
                                  start, done = std::move(done)]() mutable {
      // W2: write all k+r chunks in parallel; durable once ALL land. If a
      // target site fails in flight, the writer re-places that chunk on a
      // healthy site before committing.
      auto final_sites = std::make_shared<std::vector<SiteId>>(sites);
      auto remaining = std::make_shared<std::size_t>(sites.size());
      auto commit = [this, id, block_bytes, chunk_bytes, final_sites, start,
                     done = std::move(done), remaining]() {
        if (--*remaining > 0) return;
        // W3: metadata commit.
        queue_.ScheduleAfter(config_.metadata_base_latency, [this, id,
                                                             block_bytes,
                                                             chunk_bytes,
                                                             final_sites,
                                                             start, done] {
          PutResult result;
          result.ok = !state_.Contains(id);
          if (result.ok) {
            state_.AddBlock(id, block_bytes, chunk_bytes, config_.BlockCodec(),
                            *final_sites);
            for (SiteId s : *final_sites) {
              sites_[s]->set_chunk_count(state_.site_chunk_counts()[s]);
            }
          }
          result.total = queue_.Now() - start;
          done(result);
        });
      };

      // Writes one chunk, substituting a healthy site on failure.
      std::function<void(std::size_t)> write_chunk =
          [this, final_sites, chunk_bytes, commit](std::size_t index) {
            const SiteId s = (*final_sites)[index];
            if (!sites_[s]->available()) {
              SiteId substitute = kInvalidSite;
              for (SiteId j = 0; j < state_.num_sites(); ++j) {
                if (!state_.IsSiteAvailable(j)) continue;
                if (std::find(final_sites->begin(), final_sites->end(), j) !=
                    final_sites->end()) {
                  continue;
                }
                substitute = j;
                break;
              }
              if (substitute == kInvalidSite) {
                commit();  // No healthy site left; count the chunk lost.
                return;
              }
              (*final_sites)[index] = substitute;
              sites_[substitute]->SubmitWrite(chunk_bytes,
                                              [commit](SimTime) { commit(); });
              return;
            }
            sites_[s]->SubmitWrite(chunk_bytes, [commit](SimTime) { commit(); });
          };

      for (std::size_t i = 0; i < sites.size(); ++i) {
        // Upload: request dispatch plus payload transfer to the site.
        const SimTime arrival = net_.ResponseDelay(chunk_bytes);
        queue_.ScheduleAfter(std::max<SimTime>(arrival, 1),
                             [write_chunk, i] { write_chunk(i); });
      }
    });
  });
}

void SimECStore::Delete(BlockId id, PutCallback done) {
  const SimTime start = queue_.Now();
  const SimTime control = net_.RoundTrip() + config_.metadata_base_latency;
  queue_.ScheduleAfter(control, [this, id, start, done = std::move(done)] {
    PutResult result;
    result.ok = state_.Contains(id);
    if (result.ok) {
      control_plane_.InvalidateBlock(id);
      const BlockInfo info = state_.GetBlock(id);
      state_.RemoveBlock(id);
      for (const ChunkLocation& loc : info.locations) {
        sites_[loc.site]->set_chunk_count(state_.site_chunk_counts()[loc.site]);
      }
    }
    result.total = queue_.Now() - start;
    done(result);
  });
}

void SimECStore::FailSite(SiteId site) {
  state_.SetSiteAvailable(site, false);
  sites_[site]->set_available(false);
  control_plane_.OnSiteFailed(site);
}

void SimECStore::RecoverSite(SiteId site) {
  state_.SetSiteAvailable(site, true);
  sites_[site]->set_available(true);
}

void SimECStore::CrashSite(SiteId site) {
  // Ground truth only: belief (cluster state) catches up when the failure
  // detector notices the missed stats windows.
  sites_[site]->set_available(false);
}

void SimECStore::HealSite(SiteId site) {
  sites_[site]->set_available(true);
  // Belief recovers at the next stats heartbeat the site produces.
}

void SimECStore::SetSiteDegrade(SiteId site, double factor) {
  sites_[site]->set_degrade(factor);
}

FaultActions SimECStore::MakeFaultActions() {
  FaultActions actions;
  actions.crash = [this](SiteId s) { CrashSite(s); };
  actions.heal = [this](SiteId s) { HealSite(s); };
  actions.degrade = [this](SiteId s, double f) { SetSiteDegrade(s, f); };
  // No fetch-error / corruption hooks: the DES carries no chunk bytes.
  return actions;
}

std::vector<std::uint64_t> SimECStore::SiteBytesRead() const {
  std::vector<std::uint64_t> out;
  out.reserve(sites_.size());
  for (const auto& s : sites_) out.push_back(s->total_bytes_read());
  return out;
}

double SimECStore::ImbalanceLambda(const std::vector<std::uint64_t>& baseline) const {
  double max_load = 0, sum = 0;
  std::size_t n = 0;
  for (std::size_t j = 0; j < sites_.size(); ++j) {
    if (!state_.IsSiteAvailable(static_cast<SiteId>(j))) continue;
    const double delta = static_cast<double>(
        sites_[j]->total_bytes_read() - (j < baseline.size() ? baseline[j] : 0));
    max_load = std::max(max_load, delta);
    sum += delta;
    ++n;
  }
  if (n == 0 || sum <= 0) return 0;
  const double avg = sum / static_cast<double>(n);
  return (max_load - avg) / avg * 100.0;
}

void SimECStore::StatsTick() {
  for (auto& site : sites_) {
    // A crashed site produces no report: its silence is what the failure
    // detector converts into a suspect -> dead transition below.
    if (!site->available()) continue;
    const sim::LoadReport report = site->CollectReport();
    control_plane_.RecordLoadReport(report.site, report.cpu_utilization,
                                    report.io_bytes_per_sec, report.chunk_count,
                                    kStatsReportMsgBytes);
    control_plane_.NoteHeartbeat(report.site, ToMillis(queue_.Now()));
  }
  control_plane_.CheckFailures(ToMillis(queue_.Now()));
  if (overload_) {
    // Breakers feed on the same histograms the tail model keeps; the
    // brownout ladder feeds on the admission controller's pressure.
    const double now_ms = ToMillis(queue_.Now());
    for (std::size_t j = 0; j < sites_.size(); ++j) {
      const auto site = static_cast<SiteId>(j);
      overload_->EvaluateSite(site,
                              control_plane_.SiteLatencyQuantileMs(site, 0.99),
                              control_plane_.SiteLatencySamples(site), now_ms);
    }
    overload_->UpdateBrownout(now_ms);
  }
  // Request-rate estimate for the mover's load-shift model.
  const double interval_s =
      static_cast<double>(config_.stats_report_interval) / kSecond;
  request_rate_per_sec_ =
      static_cast<double>(requests_completed_ - completed_at_last_stats_tick_) /
      interval_s;
  completed_at_last_stats_tick_ = requests_completed_;

  control_plane_.ReloadPlansOnDrift();

  queue_.ScheduleAfter(config_.stats_report_interval, [this] { StatsTick(); });
}

void SimECStore::ProbeTick() {
  for (std::size_t j = 0; j < sites_.size(); ++j) {
    sim::SimSite& site = *sites_[j];
    if (!site.available()) continue;
    const SimTime sent = queue_.Now();
    const SimTime rtt_net = net_.RoundTrip();
    site.SubmitProbe([this, j, sent, rtt_net](SimTime done_at) {
      const SimTime rtt = (done_at - sent) + rtt_net;
      control_plane_.RecordProbe(static_cast<SiteId>(j), ToMillis(rtt),
                                 /*msg_bytes=*/0);
    });
    control_plane_.ChargeStatsNetwork(kProbeMsgBytes);
  }
  queue_.ScheduleAfter(config_.probe_interval, [this] { ProbeTick(); });
}

SimTime SimECStore::MoverPeriod() const {
  return static_cast<SimTime>(kSecond / std::max(config_.mover_chunks_per_sec, 1e-3));
}

void SimECStore::MoverTick() {
  queue_.ScheduleAfter(MoverPeriod(), [this] { MoverTick(); });
  if (mover_busy_) return;  // Throttle: one in-flight movement at a time.
  // Brownout L2 (DESIGN.md §14): movement and promotion rounds pause —
  // background I/O yields its site capacity to admitted client reads.
  if (overload_ && overload_->brownout_level() >= 2) return;

  // The mover's round also drives dynamic hybrid redundancy: hot EC
  // blocks promote to full replicas, cooled ones demote (DESIGN.md §12).
  if (promoter_) PromotionSweep();

  const auto plan = control_plane_.SelectMovement(request_rate_per_sec_);
  if (!plan) return;

  mover_busy_ = true;
  const std::uint64_t chunk_bytes = state_.GetBlock(plan->block).chunk_bytes;
  // Copy: read the chunk at the source, write it at the destination, then
  // commit the metadata update; reads of the old location remain valid
  // until the commit (Section V-B2).
  sites_[plan->source]->SubmitRead(chunk_bytes, [this, plan = *plan,
                                                 chunk_bytes](SimTime) {
    const SimTime transfer = net_.ResponseDelay(chunk_bytes);
    queue_.ScheduleAfter(transfer, [this, plan, chunk_bytes] {
      if (!sites_[plan.destination]->available()) {
        mover_busy_ = false;
        return;
      }
      sites_[plan.destination]->SubmitWrite(chunk_bytes, [this, plan,
                                                          chunk_bytes](SimTime) {
        if (state_.MoveChunk(plan.block, plan.source, plan.destination)) {
          control_plane_.RecordMoveExecuted(plan.block, chunk_bytes);
          sites_[plan.source]->set_chunk_count(
              state_.site_chunk_counts()[plan.source]);
          sites_[plan.destination]->set_chunk_count(
              state_.site_chunk_counts()[plan.destination]);
        }
        mover_busy_ = false;
      });
    });
  });
}

void SimECStore::PromotionSweep() {
  // Demotions first: they free budget the same round's promotions spend.
  const std::vector<BlockId> cold = promoter_->SelectDemotions(
      [this](BlockId b) { return control_plane_.BlockAccessFrequency(b); });
  for (BlockId id : cold) DemoteBlockSim(id);

  const std::size_t per_round = promoter_->params().max_promotions_per_round;
  const std::vector<CoAccessPartner> hottest =
      control_plane_.HottestBlocks(per_round * 8 + 8);
  std::size_t promoted = 0;
  for (const CoAccessPartner& hot : hottest) {
    if (promoted >= per_round) break;
    BlockInfo info;
    if (!state_.ReadBlock(hot.block, &info)) continue;
    if (info.codec.family == CodecFamilyId::kReplication) continue;
    const std::uint64_t extra = ReplicaPromoter::ReplicaExtraBytes(
        info.block_bytes, info.chunk_bytes * info.locations.size(),
        promoter_->params().replica_copies);
    if (!promoter_->ShouldPromote(hot.block, hot.lambda, extra,
                                  info.block_bytes)) {
      continue;
    }
    if (PromoteBlockSim(hot.block, info, extra)) ++promoted;
  }
}

bool SimECStore::PromoteBlockSim(BlockId id, const BlockInfo& info,
                                 std::uint64_t extra_bytes) {
  const CodecSpec original = info.codec;
  if (!RewriteBlockSim(id, info, promoter_->ReplicaSpec())) return false;
  promoter_->RecordPromoted(id, original, extra_bytes);
  return true;
}

bool SimECStore::DemoteBlockSim(BlockId id) {
  const std::optional<CodecSpec> original = promoter_->OriginalSpec(id);
  if (!original) return false;
  BlockInfo info;
  if (!state_.ReadBlock(id, &info)) {
    // The block was deleted while promoted; just release the budget.
    promoter_->RecordDemoted(id);
    return false;
  }
  if (!RewriteBlockSim(id, info, *original)) return false;
  promoter_->RecordDemoted(id);
  return true;
}

bool SimECStore::RewriteBlockSim(BlockId id, const BlockInfo& info,
                                 const CodecSpec& spec) {
  const std::vector<SiteId> sites = control_plane_.SelectWriteSites(spec);
  if (sites.empty()) return false;
  // Metadata rewrite: the DES carries no chunk bytes, so the redundancy
  // change is a catalog swap (Remove + AddBlock reseeds the coherence
  // version) plus per-site chunk-count updates. Plans referencing the old
  // layout drop first so no read targets a stale location.
  control_plane_.InvalidateBlock(id);
  const std::vector<ChunkLocation> old_locations = info.locations;
  state_.RemoveBlock(id);
  state_.AddBlock(id, info.block_bytes, SpecChunkBytes(spec, info.block_bytes),
                  spec, sites);
  for (const ChunkLocation& loc : old_locations) {
    sites_[loc.site]->set_chunk_count(state_.site_chunk_counts()[loc.site]);
  }
  for (SiteId s : sites) {
    sites_[s]->set_chunk_count(state_.site_chunk_counts()[s]);
  }
  return true;
}

}  // namespace ecstore
