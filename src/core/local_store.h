// LocalECStore: the real-bytes embodiment of EC-Store.
//
// Where SimECStore models timing, LocalECStore moves actual data: blocks
// are Reed–Solomon encoded into real chunks stored on in-process storage
// nodes, reads execute genuine access plans against those nodes, decoding
// runs the GF(2^8) arithmetic, chunk movement copies real bytes, and
// repair reconstructs lost chunks from k survivors. Every policy decision
// (access plans, write placement, movement, repair destinations) comes
// from the same shared ControlPlane the simulator drives — this class
// contributes only the data plane. Examples and integration tests use it
// to prove the full code path works, not just the timing model.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "cluster/state.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/control_plane.h"
#include "erasure/codec.h"
#include "placement/mover.h"
#include "placement/planner.h"
#include "stats/co_access.h"
#include "stats/load_tracker.h"

namespace ecstore {

/// One in-process storage node: a keyed chunk store with an availability
/// switch (a "site" of the data plane).
class StorageNode {
 public:
  bool available() const { return available_; }
  void set_available(bool a) { available_ = a; }

  void PutChunk(BlockId block, ChunkIndex chunk, ChunkData data);
  /// Returns nullptr when missing; throws std::runtime_error when the
  /// node is failed (callers should consult availability first).
  const ChunkData* GetChunk(BlockId block, ChunkIndex chunk) const;
  bool DeleteChunk(BlockId block, ChunkIndex chunk);
  bool HasChunk(BlockId block, ChunkIndex chunk) const;

  std::uint64_t bytes_stored() const { return bytes_stored_; }
  std::uint64_t chunk_count() const { return chunks_.size(); }
  std::uint64_t reads_served() const { return reads_served_; }

 private:
  std::map<std::pair<BlockId, ChunkIndex>, ChunkData> chunks_;
  std::uint64_t bytes_stored_ = 0;
  mutable std::uint64_t reads_served_ = 0;
  bool available_ = true;
};

/// Synchronous, single-threaded EC-Store over in-process nodes.
class LocalECStore {
 public:
  explicit LocalECStore(ECStoreConfig config);

  const ECStoreConfig& config() const { return config_; }
  ClusterState& state() { return state_; }
  const ClusterState& state() const { return state_; }
  StorageNode& node(SiteId site) { return *nodes_[site]; }

  /// The shared planning/stats/mover/repair path (exposed for parity
  /// tests and benches).
  ControlPlane& control_plane() { return control_plane_; }
  const ControlPlane& control_plane() const { return control_plane_; }

  // Introspection forwarded to the shared control plane.
  const CoAccessTracker& co_access() const { return control_plane_.co_access(); }
  const LoadTracker& load_tracker() const {
    return control_plane_.load_tracker();
  }
  const PlanCache& plan_cache() const { return control_plane_.plan_cache(); }
  ControlPlaneUsage Usage() const { return control_plane_.Usage(); }

  /// The embodiment's seeded RNG stream. Exposed so parity tests can
  /// align both embodiments' planning draws from a known state.
  Rng& rng() { return rng_; }

  /// Stores a block: encode, place chunks on control-plane-chosen sites
  /// (least-loaded under the cost model, random otherwise).
  void Put(BlockId id, std::span<const std::uint8_t> data);

  /// Stores a block at explicit sites (chunk i at sites[i]): used to
  /// reproduce one embodiment's placement in the other for parity tests.
  void Put(BlockId id, std::span<const std::uint8_t> data,
           std::span<const SiteId> sites);

  /// Reads and reconstructs one block. Throws std::runtime_error when
  /// fewer than k chunks are reachable.
  std::vector<std::uint8_t> Get(BlockId id);

  /// Multi-block read through one shared access plan — the co-located
  /// access path the paper optimizes. Served by the cached/greedy fast
  /// path; ILP refinement runs in the background queue, drained off the
  /// request path after the response is assembled. Results align with
  /// `ids`.
  std::vector<std::vector<std::uint8_t>> MultiGet(std::span<const BlockId> ids);

  /// Deletes a block's chunks everywhere.
  bool Remove(BlockId id);

  bool Contains(BlockId id) const { return state_.Contains(id); }

  /// Fails / recovers a site. Chunks survive on disk across recovery.
  void FailSite(SiteId site);
  void RecoverSite(SiteId site);

  /// Rebuilds every chunk the failed `site` held, from k surviving
  /// chunks, onto load-chosen destinations. Returns chunks rebuilt.
  std::uint64_t RepairSite(SiteId site);

  /// Runs one chunk-mover round: select the best movement plan from the
  /// live statistics and execute it with a real data copy. Returns the
  /// executed plan, if any.
  std::optional<MovementPlan> RunMovementRound();

  /// Runs every piece of queued background work (ILP refinements) to
  /// completion. MultiGet calls this after responding; tests call it to
  /// reach a quiescent control-plane state.
  void DrainBackgroundWork();

  /// Total bytes held by every node (storage-overhead accounting).
  std::uint64_t TotalStoredBytes() const;

  CostParams CurrentCostParams() const {
    return control_plane_.CurrentCostParams();
  }

 private:
  void RefreshLoadFromCounters();
  void StoreEncoded(BlockId id, std::span<const std::uint8_t> data,
                    std::span<const SiteId> sites);
  /// Fetches every reachable chunk the plan names, then tops up any block
  /// still short of k from whatever reachable chunks remain (the
  /// degraded-read path). Throws when a block stays short of k.
  std::map<BlockId, std::vector<IndexedChunk>> FetchChunks(
      const AccessPlan& plan, std::span<const BlockDemand> demands);

  ECStoreConfig config_;
  Rng rng_;
  std::unique_ptr<Codec> codec_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  ClusterState state_;
  ControlPlane control_plane_;
  // Deferred control-plane work (background ILP solves). The executor
  // seam appends here; DrainBackgroundWork runs it off the request path.
  std::deque<ControlPlane::Deferred> deferred_;
  std::vector<std::uint64_t> reads_at_last_refresh_;
  std::uint64_t gets_since_refresh_ = 0;
};

}  // namespace ecstore
