// LocalECStore: the real-bytes embodiment of EC-Store.
//
// Where SimECStore models timing, LocalECStore moves actual data: blocks
// are Reed–Solomon encoded into real chunks stored on in-process storage
// nodes, reads execute genuine access plans against those nodes, decoding
// runs the GF(2^8) arithmetic, chunk movement copies real bytes, and
// repair reconstructs lost chunks from k survivors. Every policy decision
// (access plans, write placement, movement, repair destinations) comes
// from the same shared ControlPlane the simulator drives — this class
// contributes only the data plane.
//
// The data plane is concurrent (DESIGN.md §8): FetchChunks fans every
// planned chunk read out to a per-site worker pool (core/data_plane.h)
// and, for late-binding plans, completes each block on the first k
// arrivals — stragglers are cancelled or ignored, which is the paper's
// EC+LB technique running on real bytes. When a block is still short of
// k (a deadline expired, or fetches came back as misses — failed nodes,
// corrupt chunks, injected I/O errors), a bounded-retry policy
// (DataPlaneParams::retry: exponential backoff + jitter under a
// per-request deadline budget) re-issues the block's undelivered chunks
// before the degraded-read path takes over.
//
// Robustness (DESIGN.md §9): every chunk read is CRC32C-verified at the
// node, so corruption surfaces as an erasure and is decoded around; an
// optional maintenance thread (StartMaintenance) drives heartbeats into
// the ControlPlane's failure detector, polls the generalized
// RepairService (rebuilding real bytes through RepairSite's logic), and
// periodically scrubs nodes, rewriting chunks whose bytes no longer match
// their checksum. CrashNode/HealNode and MakeFaultActions expose the
// silent ground-truth fault hooks the fault/ scheduler drives.
//
// Thread-safety (DESIGN.md §10): MultiGet/Put/Remove/FailSite/
// RecoverSite/RepairSite/RunMovementRound may be called from multiple
// threads. The read path — MultiGet planning, demand building, the
// catalog snapshot, the fetch fan-out — takes NO store-wide lock at all:
// the ControlPlane is internally sharded/synchronized and the
// ClusterState is stripe-locked, so concurrent readers only contend on
// the shards their blocks hash to. meta_mu_ remains as the *catalog
// writer lock*: Put/Remove/FailSite/RecoverSite, the mover, repair, and
// the scrubber serialize against each other under it (they compose
// multi-step catalog+node mutations that must not interleave), and the
// degraded-read fallback takes it so its survivor scan sees a consistent
// catalog. Readers racing a writer are safe without it — they plan from
// an atomic snapshot and absorb staleness through retry rounds and the
// degraded path.
// Lock order: meta_mu_ -> refresh_mu_ -> control-plane internal locks ->
// defer_mu_ / pool queue; fetch workers take only per-fetch-context and
// per-node locks.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "cache/block_cache.h"
#include "cache/promoter.h"
#include "cluster/state.h"
#include "common/rng.h"
#include "common/worker_pool.h"
#include "core/config.h"
#include "core/control_plane.h"
#include "core/data_plane.h"
#include "core/repair.h"
#include "core/storage_node.h"
#include "erasure/codec_family.h"
#include "fault/injector.h"
#include "overload/overload.h"
#include "placement/mover.h"
#include "placement/planner.h"
#include "stats/co_access.h"
#include "stats/load_tracker.h"

namespace ecstore {

/// Concurrent EC-Store over in-process nodes.
class LocalECStore {
 public:
  explicit LocalECStore(ECStoreConfig config);
  ~LocalECStore();  // Stops the maintenance thread before teardown.

  const ECStoreConfig& config() const { return config_; }
  /// Direct cluster-state access for tests. Not synchronized: use only
  /// while no concurrent store operations are running.
  ClusterState& state() { return state_; }
  const ClusterState& state() const { return state_; }
  StorageNode& node(SiteId site) { return *nodes_[site]; }

  /// The shared planning/stats/mover/repair path (exposed for parity
  /// tests and benches). Internally synchronized; its *reference*
  /// accessors (co_access(), plan_cache(), ...) still must not race
  /// store operations.
  ControlPlane& control_plane() { return control_plane_; }
  const ControlPlane& control_plane() const { return control_plane_; }

  /// The concurrent fetch engine (exposed for tests and benches).
  const DataPlane& data_plane() const { return *data_plane_; }

  /// The repair service polled by the maintenance thread (exposed so
  /// tests can Poll it directly and read chunks_rebuilt()).
  RepairService& repair_service() { return *repair_; }

  /// The decoded-block cache (DESIGN.md §12); null when
  /// config.cache_capacity_bytes == 0.
  BlockCache* block_cache() { return cache_.get(); }
  const BlockCache* block_cache() const { return cache_.get(); }

  /// The hybrid-redundancy promoter (DESIGN.md §12); null when
  /// config.replica_budget_bytes == 0.
  ReplicaPromoter* promoter() { return promoter_.get(); }
  const ReplicaPromoter* promoter() const { return promoter_.get(); }

  /// The overload-control subsystem (DESIGN.md §14); null when
  /// config.overload.Enabled() is false — in which case no admission
  /// gate, deadline, breaker, or brownout logic runs anywhere.
  OverloadControl* overload() { return overload_.get(); }
  const OverloadControl* overload() const { return overload_.get(); }

  /// Blocks until every in-flight prefetch has completed (tests).
  void WaitForPrefetches();

  // Introspection forwarded to the shared control plane.
  const CoAccessTracker& co_access() const { return control_plane_.co_access(); }
  const LoadTracker& load_tracker() const {
    return control_plane_.load_tracker();
  }
  const PlanCache& plan_cache() const { return control_plane_.plan_cache(); }
  /// Control-plane usage overlaid with this embodiment's robustness
  /// counters (degraded reads, retried fetches, cancelled fetch jobs,
  /// checksum failures, chunks scrubbed).
  ControlPlaneUsage Usage() const;

  /// The embodiment's seeded RNG stream. Exposed so parity tests can
  /// align both embodiments' planning draws from a known state.
  Rng& rng() { return rng_; }

  /// Stores a block: encode, place chunks on control-plane-chosen sites
  /// (least-loaded under the cost model, random otherwise).
  void Put(BlockId id, std::span<const std::uint8_t> data);

  /// Stores a block under an explicit codec family (DESIGN.md §11), so
  /// families coexist per block in one cluster: an LRC archive tier next
  /// to RS hot data. Placement is group-aware when failure_domains > 0.
  void Put(BlockId id, std::span<const std::uint8_t> data,
           const CodecSpec& spec);

  /// Stores a block at explicit sites (chunk i at sites[i]): used to
  /// reproduce one embodiment's placement in the other for parity tests.
  void Put(BlockId id, std::span<const std::uint8_t> data,
           std::span<const SiteId> sites);

  /// Reads and reconstructs one block. Throws std::runtime_error when
  /// fewer than k chunks are reachable.
  std::vector<std::uint8_t> Get(BlockId id);

  /// Multi-block read through one shared access plan — the co-located
  /// access path the paper optimizes. Planning takes only the control
  /// plane's per-shard locks (no store-wide lock); the chunk fetches fan
  /// out in parallel (first k of k+delta win under late binding); ILP
  /// refinement runs in the background queue, drained off the request
  /// path after the response is assembled (or on the executor pool when
  /// config.ilp_executor_threads > 0). Results align with `ids`. Safe to
  /// call from multiple threads.
  std::vector<std::vector<std::uint8_t>> MultiGet(std::span<const BlockId> ids);

  /// Deletes a block's chunks everywhere.
  bool Remove(BlockId id);

  bool Contains(BlockId id) const;

  /// Fails / recovers a site. Chunks survive on disk across recovery.
  /// This is the *manual* path: belief (cluster state) and ground truth
  /// (the node) flip together.
  void FailSite(SiteId site);
  void RecoverSite(SiteId site);

  /// Silent crash/heal (DESIGN.md §9): flips only the node's ground
  /// truth. Planning still routes reads there — they come back as misses
  /// and retry/degrade — until the failure detector notices the missed
  /// heartbeats and marks the site dead; HealNode lets the next heartbeat
  /// revive the belief.
  void CrashNode(SiteId site);
  void HealNode(SiteId site);

  /// Silently corrupts ~`fraction` of the chunks stored at `site`
  /// (deterministically from `seed`). Returns chunks corrupted.
  std::uint64_t CorruptSiteChunks(SiteId site, double fraction,
                                  std::uint64_t seed);

  /// Injection hooks for fault/injector.h: crash/heal flip node ground
  /// truth, degrade adds injected fetch latency, fetch errors and chunk
  /// corruption hit the named node. Drive them with an InjectionThread.
  FaultActions MakeFaultActions();

  /// Rebuilds every chunk the failed `site` held, from k surviving
  /// CRC-valid chunks, onto load-chosen destinations. Blocks without k
  /// valid survivors right now are skipped (a later pass can still heal
  /// them). Returns chunks rebuilt.
  std::uint64_t RepairSite(SiteId site);

  /// One scrubber pass (DESIGN.md §9): every available node's chunks are
  /// checksum-probed; chunks that are corrupt — or missing although the
  /// catalog places them there — are rebuilt from k valid survivors and
  /// rewritten in place. Returns chunks rewritten.
  std::uint64_t ScrubOnce();

  /// Starts/stops the background maintenance thread: every
  /// config.maintenance_tick_ms it refreshes load, heartbeats live nodes
  /// into the failure detector, marks silent sites dead, polls the repair
  /// service, and (every scrub_every_ticks ticks) scrubs. Idempotent.
  void StartMaintenance();
  void StopMaintenance();

  /// Milliseconds of wall clock since construction: the store's timeline
  /// for the failure detector and repair grace periods.
  double NowMs() const;

  /// Runs one chunk-mover round: select the best movement plan from the
  /// live statistics and execute it with a real data copy. Returns the
  /// executed plan, if any.
  std::optional<MovementPlan> RunMovementRound();

  /// Runs every piece of queued background work (ILP refinements) to
  /// completion. MultiGet calls this after responding; tests call it to
  /// reach a quiescent control-plane state.
  void DrainBackgroundWork();

  /// Total bytes held by every node (storage-overhead accounting).
  std::uint64_t TotalStoredBytes() const;

  CostParams CurrentCostParams() const;

 private:
  /// Per-block catalog snapshot copied at planning time (one stripe-locked
  /// ReadBlock per block), so the lock-free fetch phase never reads
  /// mutable state. One entry per demand, in demand order.
  struct BlockMeta {
    BlockId block = kInvalidBlock;
    std::uint32_t k = 0;
    std::uint64_t block_bytes = 0;
    /// Coherence version at snapshot time: the version a cache fill of
    /// this fetch's decode is tagged with (DESIGN.md §12).
    std::uint64_t version = 0;
    std::vector<ChunkLocation> locations;
    /// The block's codec family (per-block: families coexist). Shared
    /// ownership so straggler fetch workers can outlive the request.
    std::shared_ptr<const CodecFamily> family;
  };

  /// The memoized family for `spec` (fast-path: the config default).
  std::shared_ptr<const CodecFamily> FamilyFor(const CodecSpec& spec) const;

  /// Serialized internally by refresh_mu_; callable with or without
  /// meta_mu_ held (lock order: meta_mu_ before refresh_mu_).
  void RefreshLoadFromCounters();
  void StoreEncoded(BlockId id, std::span<const std::uint8_t> data,
                    const CodecSpec& spec, std::span<const SiteId> sites);
  /// RepairSite/ScrubOnce bodies; require meta_mu_ held (the maintenance
  /// tick and the RepairService reconstructor call them under the lock).
  std::uint64_t RepairSiteLocked(SiteId site);
  std::uint64_t ScrubLocked();
  /// Rebuilds one lost/corrupt chunk of `block` by asking its codec
  /// family for the cheapest RepairPlan over the reachable survivors and
  /// reading ONLY the plan's chunks via verified GetChunk (never the
  /// error-injected fetch path) — a local group for LRC, half-chunk
  /// sources for piggyback, k survivors for RS. A source failing
  /// verification is dropped and the family re-plans. Charges the plan's
  /// bytes-on-wire to the repair-traffic counters. Returns the rebuilt
  /// chunk, or nullopt when no decodable plan remains. Requires meta_mu_
  /// held.
  std::optional<ChunkData> RebuildChunk(BlockId block, const BlockInfo& info,
                                        ChunkIndex target,
                                        SiteId exclude_site);
  void MaintenanceLoop();
  /// Reads + decodes one whole block from reachable verified chunks
  /// (bypassing injected latency/errors). Requires meta_mu_ held.
  std::optional<std::vector<std::uint8_t>> ReadBlockBytesLocked(
      BlockId id, const BlockInfo& info);
  /// Queues prefetch fills for `anchor`'s hottest co-access partners
  /// (skipping blocks already cached, in flight, or in this request).
  void MaybePrefetch(BlockId anchor, std::span<const BlockId> requested);
  /// One prefetch fill: fetch + decode + version-checked cache insert.
  /// Runs on prefetch_pool_; honors prefetch_cancel_.
  void PrefetchBlock(BlockId id);
  /// One promote/demote sweep of the hybrid-redundancy tier (DESIGN.md
  /// §12). Requires meta_mu_ held.
  void RunPromotionRoundLocked();
  bool PromoteBlockLocked(BlockId id, const BlockInfo& info,
                          std::uint64_t extra_bytes);
  bool DemoteBlockLocked(BlockId id);
  /// Re-encodes a live block under a new codec: writes the new chunks to
  /// sites disjoint from the old layout, swaps the catalog entry in one
  /// stripe-locked step (ClusterState::ReplaceBlock — the id never
  /// vanishes), then retires the old chunks. A reader that planned
  /// against the old layout either completes from its surviving chunks
  /// or re-resolves in the degraded path's version refresh. Requires
  /// meta_mu_ held.
  void RewriteBlockLocked(BlockId id, const BlockInfo& old_info,
                          std::span<const std::uint8_t> data,
                          const CodecSpec& spec, std::span<const SiteId> sites);
  /// Fans every planned chunk read out to the data plane, completes each
  /// block on its first k arrivals (cancelling/ignoring late-binding
  /// stragglers), runs bounded retry rounds (config.data_plane.retry)
  /// against blocks still short of k — the first round hedges the block's
  /// untried chunks, later rounds re-issue everything undelivered — then
  /// tops up any block still short from whatever reachable chunks remain
  /// (the degraded-read path, under the metadata lock). Throws when a
  /// block stays short of k. Called WITHOUT meta_mu_ held. Returns the
  /// delivered chunks per block, parallel to `demands`/`meta`. `meta` is
  /// mutable because the degraded path refreshes a snapshot whose block
  /// was rewritten mid-fetch (promotion/demotion changed its codec):
  /// chunks from the old encoding are dropped and the entry is re-read
  /// so the caller decodes with the committed layout's family/version.
  /// `deadline` (steady-clock absolute; max() = none) is the request's
  /// end-to-end budget: fetch jobs enqueue with it (expiring at the
  /// per-site queue once it passes) and the retry schedule's budget is
  /// capped to the time remaining, so no retry round is issued whose
  /// earliest completion would land past it.
  std::vector<std::vector<IndexedChunk>> FetchChunks(
      const AccessPlan& plan, std::span<const BlockDemand> demands,
      std::vector<BlockMeta>& meta,
      std::chrono::steady_clock::time_point deadline =
          std::chrono::steady_clock::time_point::max());

  ECStoreConfig config_;
  Rng rng_;
  /// The config-default codec family (DESIGN.md §11) and its spec,
  /// cached so the common same-family path skips the registry probe.
  CodecSpec default_spec_;
  std::shared_ptr<const CodecFamily> family_;
  std::vector<std::unique_ptr<StorageNode>> nodes_;
  ClusterState state_;
  ControlPlane control_plane_;
  std::unique_ptr<RepairService> repair_;

  /// The catalog WRITER lock (DESIGN.md §10): serializes the multi-step
  /// catalog+node mutations (Put/Remove/FailSite/RecoverSite, mover,
  /// repair, scrub) and the degraded-read survivor scan against each
  /// other. The MultiGet planning/fetch path does NOT take it. Never held
  /// across the parallel fetch wait.
  mutable std::mutex meta_mu_;

  // Deferred control-plane work (background ILP solves). With
  // ilp_executor_threads == 0 the executor seam appends here under
  // defer_mu_ and DrainBackgroundWork pops and runs each unit after the
  // response (the unit self-synchronizes through the control plane's
  // shard locks). With ilp_executor_threads > 0 the seam submits to
  // bg_pool_ instead and DrainBackgroundWork waits for pool idle.
  std::mutex defer_mu_;
  std::deque<ControlPlane::Deferred> deferred_;

  // Serializes load refreshes (the in-process stats reporting cycle) and
  // guards reads_at_last_refresh_. gets_since_refresh_ is a monotonic
  // request counter; every 64th MultiGet triggers a refresh.
  std::mutex refresh_mu_;
  std::vector<std::uint64_t> reads_at_last_refresh_;
  std::atomic<std::uint64_t> gets_since_refresh_{0};

  // Robustness counters (DESIGN.md §9). Bumped outside meta_mu_, hence
  // atomics.
  std::atomic<std::uint64_t> degraded_reads_{0};
  std::atomic<std::uint64_t> retried_fetches_{0};
  std::atomic<std::uint64_t> chunks_scrubbed_{0};

  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();

  // Maintenance thread (StartMaintenance). Joined by StopMaintenance /
  // the destructor before the nodes and data plane go away.
  std::mutex maint_mu_;
  std::condition_variable maint_cv_;
  bool maint_stop_ = false;
  std::uint64_t maint_ticks_ = 0;
  std::thread maint_thread_;

  // Latency tier (DESIGN.md §12): decoded-block cache + λ-driven
  // prefetch + hybrid-redundancy promoter. All null/absent when disabled
  // by config, leaving the original request path untouched.
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<ReplicaPromoter> promoter_;
  // Cooperative cancel for prefetch jobs still queued at teardown.
  std::shared_ptr<std::atomic<bool>> prefetch_cancel_;

  // Background ILP executor pool (config.ilp_executor_threads > 0).
  // Declared after control_plane_/state_: its jobs reference both, and
  // its destructor drains them before those members die.
  std::unique_ptr<WorkerPool> bg_pool_;

  // Prefetch fill pool: jobs reference nodes_/state_/cache_, so it is
  // declared after them (destroyed — drained and joined — first).
  std::unique_ptr<WorkerPool> prefetch_pool_;

  // Overload control (DESIGN.md §14): null when every overload feature
  // is off. Declared before data_plane_: the data plane's sojourn
  // observer references it, so the plane must be torn down (workers
  // joined) first.
  std::unique_ptr<OverloadControl> overload_;

  // Declared last: its destructor joins the workers, whose queued jobs
  // reference the nodes above, before anything else is torn down.
  std::unique_ptr<DataPlane> data_plane_;
};

}  // namespace ecstore
