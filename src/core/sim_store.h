// SimECStore: the complete EC-Store system (Fig. 3's control and data
// planes) running against the discrete-event cluster simulator.
//
// The data plane is a set of SimSite FIFO servers; the control plane is
// the shared ControlPlane component (statistics service, chunk read
// optimizer with plan cache + background ILP worker, chunk mover and
// repair policy) plus the metadata service (ClusterState + modeled
// lookup latency). This embodiment contributes only the timing model:
// message latencies, site queueing, and the event-queue executor that
// runs deferred ILP solves after the modeled solve latency. All six of
// the paper's techniques (R, EC, EC+LB, EC+C, EC+C+M, EC+C+M+LB) are
// configurations of this one system, exactly as in Section VI-A.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cache/block_cache.h"
#include "cache/promoter.h"
#include "cluster/state.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/control_plane.h"
#include "fault/injector.h"
#include "overload/overload.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/site.h"

namespace ecstore {

/// Per-request latency breakdown in simulated microseconds — the four
/// categories of Fig. 1 / Fig. 4b.
struct RequestBreakdown {
  SimTime metadata = 0;
  SimTime planning = 0;
  SimTime retrieval = 0;
  SimTime decode = 0;
  SimTime total = 0;
  bool ok = true;            // false when a block was unreadable
  bool plan_cache_hit = false;
  std::uint32_t sites_accessed = 0;  // distinct sites in the access plan
  /// Blocks of the request served from the decoded-block cache
  /// (DESIGN.md §12). A fully cached request skips the metadata trip,
  /// planning, fan-out, and decode entirely.
  std::uint32_t cached_blocks = 0;
  /// Rejected by admission control (DESIGN.md §14): a cheap, deliberate
  /// fast-fail, not data loss. `ok` is false; total is the modeled shed
  /// penalty. Drivers count sheds apart from failures.
  bool shed = false;
  /// The request's end-to-end deadline expired before its blocks were
  /// assembled; `ok` is false and total ≈ the deadline.
  bool deadline_hit = false;
};

/// The simulated EC-Store deployment.
class SimECStore {
 public:
  using GetCallback = std::function<void(const RequestBreakdown&)>;

  explicit SimECStore(ECStoreConfig config);
  ~SimECStore();

  SimECStore(const SimECStore&) = delete;
  SimECStore& operator=(const SimECStore&) = delete;

  sim::EventQueue& queue() { return queue_; }
  const ECStoreConfig& config() const { return config_; }
  ClusterState& state() { return state_; }
  const ClusterState& state() const { return state_; }

  /// The shared planning/stats/mover/repair path (exposed for the repair
  /// service, parity tests, and benches).
  ControlPlane& control_plane() { return control_plane_; }
  const ControlPlane& control_plane() const { return control_plane_; }

  /// Bulk-loads a block with random chunk placement (the paper's load
  /// phase). Costs no simulated time.
  void LoadBlock(BlockId id, std::uint64_t block_bytes);

  /// Bulk-loads a block at explicit sites (chunk i at sites[i]): used to
  /// reproduce one embodiment's placement in the other for parity tests.
  void LoadBlockAt(BlockId id, std::uint64_t block_bytes,
                   std::span<const SiteId> sites);

  /// Loads `count` blocks with ids [first, first + count).
  void LoadBlocks(BlockId first, std::uint64_t count, std::uint64_t block_bytes);

  /// Starts the periodic control-plane services (stats reports, probes,
  /// chunk mover). Call once, before running the event queue.
  void Start();

  /// Asynchronous multiget: reconstructs every block and reports the
  /// latency breakdown. Drives the full R1-R3 path of Fig. 3.
  void Get(std::vector<BlockId> blocks, GetCallback done);

  /// Outcome of a write (the W1-W3 path of Fig. 3).
  struct PutResult {
    SimTime total = 0;
    bool ok = true;
  };
  using PutCallback = std::function<void(const PutResult&)>;

  /// Asynchronous put: W1 decide placement (load-aware under the cost
  /// model, random otherwise), W2 encode + write all k+r chunks, W3
  /// commit metadata. Completion requires every chunk durable.
  void Put(BlockId id, std::uint64_t block_bytes, PutCallback done);

  /// Asynchronous delete: removes the metadata entry immediately (no
  /// future plan can reach the chunks) and lazily discards chunk data.
  void Delete(BlockId id, PutCallback done);

  /// W1's placement decision, exposed for tests: k+r distinct available
  /// sites — the least-loaded ones under the cost model, random for the
  /// baseline techniques.
  std::vector<SiteId> ChooseWriteSites(std::uint32_t count);

  /// Fails/recovers a site (Section VI-C4). Failed sites finish queued
  /// work but receive no new requests. FailSite is the *manual* path: it
  /// updates belief (cluster state) and ground truth together.
  void FailSite(SiteId site);
  void RecoverSite(SiteId site);

  /// Silent crash/heal (DESIGN.md §9): flips only the simulated site's
  /// ground truth. The cluster state still believes the site is up until
  /// the failure detector notices the missed stats windows — requests
  /// routed there meanwhile bounce and re-plan, exactly as against a real
  /// unannounced crash.
  void CrashSite(SiteId site);
  void HealSite(SiteId site);

  /// Slow-site fault: service times at `site` multiplied by `factor`.
  void SetSiteDegrade(SiteId site, double factor);

  /// Injection hooks for fault/injector.h: crash/heal/degrade are wired
  /// (the DES has no real bytes, so fetch-error and corruption hooks are
  /// left empty). Schedule the expanded actions on queue() at
  /// FromMillis(action.at_ms).
  FaultActions MakeFaultActions();

  // --- Introspection for benches and tests (forwarded to the shared
  // control plane).
  const PlanCache& plan_cache() const { return control_plane_.plan_cache(); }
  const CoAccessTracker& co_access() const { return control_plane_.co_access(); }
  const LoadTracker& load_tracker() const { return control_plane_.load_tracker(); }
  std::uint64_t requests_completed() const { return requests_completed_; }

  /// The embodiment's seeded RNG stream. Exposed so parity tests can
  /// align both embodiments' planning draws from a known state.
  Rng& rng() { return rng_; }

  /// Cumulative bytes served by reads, per site (Fig. 4d).
  std::vector<std::uint64_t> SiteBytesRead() const;

  /// The paper's I/O imbalance metric (Table II):
  /// lambda = (Lmax - Lavg) / Lavg * 100 over per-site bytes read since
  /// the `baseline` snapshot. Only available sites participate.
  double ImbalanceLambda(const std::vector<std::uint64_t>& baseline) const;

  /// The decoded-block cache (DESIGN.md §12; metadata-only entries in
  /// this embodiment); null when config.cache_capacity_bytes == 0.
  BlockCache* block_cache() { return cache_.get(); }
  const BlockCache* block_cache() const { return cache_.get(); }

  /// The hybrid-redundancy promoter (DESIGN.md §12); null when
  /// config.replica_budget_bytes == 0.
  ReplicaPromoter* promoter() { return promoter_.get(); }
  const ReplicaPromoter* promoter() const { return promoter_.get(); }

  /// The overload-control subsystem (DESIGN.md §14); null when
  /// config.overload.Enabled() is false — in which case no admission
  /// gate, deadline, breaker, or brownout logic runs anywhere.
  OverloadControl* overload() { return overload_.get(); }
  const OverloadControl* overload() const { return overload_.get(); }

  /// Control-plane usage plus this embodiment's robustness counters
  /// (failure-triggered replans surface as retried_fetches) and the
  /// cache/hybrid tier's counters.
  ControlPlaneUsage Usage() const {
    ControlPlaneUsage u = control_plane_.Usage();
    u.retried_fetches = retried_fetches_;
    if (overload_) {
      const OverloadCounters oc = overload_->Counters();
      u.requests_shed = oc.requests_shed;
      u.deadline_exceeded = oc.deadline_exceeded;
      u.breaker_opens = oc.breaker_opens;
      u.breaker_half_open_probes = oc.breaker_half_open_probes;
      u.brownout_level = oc.brownout_level;
      u.expired_jobs_cancelled = oc.expired_jobs_cancelled;
    }
    if (cache_) {
      const BlockCacheStats cs = cache_->Stats();
      u.cache_hits = cs.hits;
      u.cache_misses = cs.misses;
      u.cache_evictions = cs.evictions;
      u.cache_invalidations = cs.invalidations;
      u.prefetch_issued = cs.prefetch_issued;
      u.prefetch_hits = cs.prefetch_hits;
      u.cache_bytes = cs.bytes;
    }
    if (promoter_) {
      const PromoterStats ps = promoter_->Stats();
      u.blocks_promoted = ps.blocks_promoted;
      u.blocks_demoted = ps.blocks_demoted;
      u.replica_extra_bytes = ps.replica_extra_bytes;
    }
    return u;
  }

  /// Current cost parameters (o_j from probes, m_j from media model).
  CostParams CurrentCostParams() const {
    return control_plane_.CurrentCostParams();
  }

  /// Cost parameters for a planning decision: CurrentCostParams() plus a
  /// small random tie-break perturbation (see ECStoreConfig).
  CostParams PlanningCostParams() { return control_plane_.PlanningCostParams(); }

  /// Estimated request arrival rate (requests/second), as the statistics
  /// service sees it.
  double RequestRate() const { return request_rate_per_sec_; }

 private:
  struct PendingRequest;

  void PlanPhase(std::shared_ptr<PendingRequest> req);
  void IssueReads(std::shared_ptr<PendingRequest> req, const AccessPlan& plan);
  void OnChunkArrived(const std::shared_ptr<PendingRequest>& req,
                      std::size_t block_index, ChunkIndex chunk);
  void RetryAfterFailure(const std::shared_ptr<PendingRequest>& req,
                         std::uint32_t generation);
  void FinishRetrieval(const std::shared_ptr<PendingRequest>& req);
  void Complete(const std::shared_ptr<PendingRequest>& req, bool ok);

  void StatsTick();
  void ProbeTick();
  void MoverTick();
  SimTime MoverPeriod() const;
  /// Queues event-scheduled cache fills for `anchor`'s hottest co-access
  /// partners (DESIGN.md §12; metadata-only entries, modeled fill delay).
  void SchedulePrefetch(BlockId anchor, const std::vector<BlockId>& requested);
  /// One promote/demote sweep of the hybrid-redundancy tier, run on the
  /// mover's tick (metadata rewrite + site chunk-count updates).
  void PromotionSweep();
  bool PromoteBlockSim(BlockId id, const BlockInfo& info,
                       std::uint64_t extra_bytes);
  bool DemoteBlockSim(BlockId id);
  /// Rewrites block `id` to `spec` at freshly chosen sites; false when
  /// placement fails (the catalog is left untouched).
  bool RewriteBlockSim(BlockId id, const BlockInfo& info, const CodecSpec& spec);

  ECStoreConfig config_;
  sim::EventQueue queue_;
  Rng rng_;
  std::vector<std::unique_ptr<sim::SimSite>> sites_;
  sim::Network net_;
  ClusterState state_;
  ControlPlane control_plane_;

  // Latency tier (DESIGN.md §12): both null when disabled by config —
  // no extra events, no extra RNG draws, bit-identical timelines.
  std::unique_ptr<BlockCache> cache_;
  std::unique_ptr<ReplicaPromoter> promoter_;

  // Overload control (DESIGN.md §14): null when every overload feature
  // is off — no extra events, no RNG draws, bit-identical timelines.
  std::unique_ptr<OverloadControl> overload_;

  bool started_ = false;
  bool mover_busy_ = false;

  std::uint64_t requests_completed_ = 0;
  std::uint64_t completed_at_last_stats_tick_ = 0;
  double request_rate_per_sec_ = 0;
  std::uint64_t retried_fetches_ = 0;  // failure-triggered replans
};

}  // namespace ecstore
