// SimECStore: the complete EC-Store system (Fig. 3's control and data
// planes) running against the discrete-event cluster simulator.
//
// The data plane is a set of SimSite FIFO servers; the control plane is
// the metadata service (ClusterState + modeled lookup latency), the
// statistics service (CoAccessTracker + LoadTracker fed by periodic
// reports and probes), and the chunk placement service (plan cache +
// greedy/ILP chunk read optimizer + throttled chunk mover). All six of
// the paper's techniques (R, EC, EC+LB, EC+C, EC+C+M, EC+C+M+LB) are
// configurations of this one system, exactly as in Section VI-A.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "cluster/state.h"
#include "common/rng.h"
#include "core/config.h"
#include "placement/mover.h"
#include "placement/plan_cache.h"
#include "placement/planner.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/site.h"
#include "stats/co_access.h"
#include "stats/load_tracker.h"

namespace ecstore {

/// Per-request latency breakdown in simulated microseconds — the four
/// categories of Fig. 1 / Fig. 4b.
struct RequestBreakdown {
  SimTime metadata = 0;
  SimTime planning = 0;
  SimTime retrieval = 0;
  SimTime decode = 0;
  SimTime total = 0;
  bool ok = true;            // false when a block was unreadable
  bool plan_cache_hit = false;
  std::uint32_t sites_accessed = 0;  // distinct sites in the access plan
};

/// Control-plane resource usage counters (Table III).
struct ControlPlaneUsage {
  std::size_t stats_memory_bytes = 0;
  std::size_t optimizer_memory_bytes = 0;
  std::size_t mover_memory_bytes = 0;
  std::uint64_t stats_network_bytes = 0;    // reports + probes
  std::uint64_t mover_network_bytes = 0;    // chunk copies
  std::uint64_t ilp_solves = 0;
  std::uint64_t moves_executed = 0;
};

/// The simulated EC-Store deployment.
class SimECStore {
 public:
  using GetCallback = std::function<void(const RequestBreakdown&)>;

  explicit SimECStore(ECStoreConfig config);
  ~SimECStore();

  SimECStore(const SimECStore&) = delete;
  SimECStore& operator=(const SimECStore&) = delete;

  sim::EventQueue& queue() { return queue_; }
  const ECStoreConfig& config() const { return config_; }
  ClusterState& state() { return state_; }
  const ClusterState& state() const { return state_; }

  /// Bulk-loads a block with random chunk placement (the paper's load
  /// phase). Costs no simulated time.
  void LoadBlock(BlockId id, std::uint64_t block_bytes);

  /// Loads `count` blocks with ids [first, first + count).
  void LoadBlocks(BlockId first, std::uint64_t count, std::uint64_t block_bytes);

  /// Starts the periodic control-plane services (stats reports, probes,
  /// chunk mover). Call once, before running the event queue.
  void Start();

  /// Asynchronous multiget: reconstructs every block and reports the
  /// latency breakdown. Drives the full R1-R3 path of Fig. 3.
  void Get(std::vector<BlockId> blocks, GetCallback done);

  /// Outcome of a write (the W1-W3 path of Fig. 3).
  struct PutResult {
    SimTime total = 0;
    bool ok = true;
  };
  using PutCallback = std::function<void(const PutResult&)>;

  /// Asynchronous put: W1 decide placement (load-aware under the cost
  /// model, random otherwise), W2 encode + write all k+r chunks, W3
  /// commit metadata. Completion requires every chunk durable.
  void Put(BlockId id, std::uint64_t block_bytes, PutCallback done);

  /// Asynchronous delete: removes the metadata entry immediately (no
  /// future plan can reach the chunks) and lazily discards chunk data.
  void Delete(BlockId id, PutCallback done);

  /// W1's placement decision, exposed for tests: k+r distinct available
  /// sites — the least-loaded ones under the cost model, random for the
  /// baseline techniques.
  std::vector<SiteId> ChooseWriteSites(std::uint32_t count);

  /// Fails/recovers a site (Section VI-C4). Failed sites finish queued
  /// work but receive no new requests.
  void FailSite(SiteId site);
  void RecoverSite(SiteId site);

  // --- Introspection for benches and tests.
  const PlanCache& plan_cache() const { return plan_cache_; }
  const CoAccessTracker& co_access() const { return co_access_; }
  const LoadTracker& load_tracker() const { return load_tracker_; }
  std::uint64_t requests_completed() const { return requests_completed_; }

  /// Cumulative bytes served by reads, per site (Fig. 4d).
  std::vector<std::uint64_t> SiteBytesRead() const;

  /// The paper's I/O imbalance metric (Table II):
  /// lambda = (Lmax - Lavg) / Lavg * 100 over per-site bytes read since
  /// the `baseline` snapshot. Only available sites participate.
  double ImbalanceLambda(const std::vector<std::uint64_t>& baseline) const;

  ControlPlaneUsage Usage() const;

  /// Current cost parameters (o_j from probes, m_j from media model).
  CostParams CurrentCostParams() const;

  /// Cost parameters for a planning decision: CurrentCostParams() plus a
  /// small random tie-break perturbation (see ECStoreConfig).
  CostParams PlanningCostParams();

  /// Estimated request arrival rate (requests/second), as the statistics
  /// service sees it.
  double RequestRate() const { return request_rate_per_sec_; }

 private:
  struct PendingRequest;

  void PlanPhase(std::shared_ptr<PendingRequest> req);
  void IssueReads(std::shared_ptr<PendingRequest> req, const AccessPlan& plan);
  void OnChunkArrived(const std::shared_ptr<PendingRequest>& req,
                      std::size_t block_index, ChunkIndex chunk);
  void RetryAfterFailure(const std::shared_ptr<PendingRequest>& req,
                         std::uint32_t generation);
  void FinishRetrieval(const std::shared_ptr<PendingRequest>& req);
  void Complete(const std::shared_ptr<PendingRequest>& req, bool ok);
  bool ValidatePlan(const AccessPlan& plan) const;
  AccessPlan PlanWithCostModel(const std::vector<BlockId>& blocks,
                               const std::vector<BlockDemand>& demands,
                               bool* cache_hit);
  void ScheduleBackgroundIlp(const std::vector<BlockId>& blocks);
  void RunIlpWorker();

  void StatsTick();
  void ProbeTick();
  void MoverTick();
  SimTime MoverPeriod() const;

  ECStoreConfig config_;
  sim::EventQueue queue_;
  Rng rng_;
  std::vector<std::unique_ptr<sim::SimSite>> sites_;
  sim::Network net_;
  ClusterState state_;
  CoAccessTracker co_access_;
  LoadTracker load_tracker_;
  PlanCache plan_cache_;

  bool started_ = false;
  bool mover_busy_ = false;

  // The chunk placement service runs ONE background ILP worker (as in
  // Section V-B1); misses queue up (deduplicated, bounded) rather than
  // spawning unbounded solver work.
  std::deque<std::vector<BlockId>> ilp_queue_;
  std::set<std::vector<BlockId>> ilp_pending_;
  // Query sets that missed once: a set is only worth an ILP solve if it
  // recurs (one-off scans can never hit the cache afterwards).
  std::set<std::vector<BlockId>> missed_once_;
  bool ilp_worker_busy_ = false;

  std::uint64_t requests_completed_ = 0;
  std::uint64_t completed_at_last_stats_tick_ = 0;
  double request_rate_per_sec_ = 0;
  std::vector<double> overheads_at_epoch_;

  // Resource counters (Table III).
  std::uint64_t stats_network_bytes_ = 0;
  std::uint64_t mover_network_bytes_ = 0;
  std::uint64_t ilp_solves_ = 0;
  std::uint64_t moves_executed_ = 0;
};

}  // namespace ecstore
