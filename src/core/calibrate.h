// Decode-cost calibration: re-derives the discrete-event simulator's
// client-side coding-throughput constants (ECStoreConfig::
// {encode,decode,reassemble}_bytes_per_ms) by timing the real GF(2^8)
// kernels on this machine, instead of trusting the hard-coded defaults
// that were measured on some other host. The same numbers are what
// bench_micro_erasure reports; this is the programmatic loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/config.h"

namespace ecstore {

/// Measured client-side coding throughput, in the units the simulator
/// consumes (bytes per millisecond).
struct CodingCalibration {
  double encode_bytes_per_ms = 0;
  double decode_bytes_per_ms = 0;      // decode involving parity chunks
  double reassemble_bytes_per_ms = 0;  // all-systematic reassembly
  std::string kernel;                  // active GF kernel path name
};

/// Times RS(k, r) encode, parity-involving decode, and systematic
/// reassembly on `block_bytes` blocks with the currently dispatched GF
/// kernels. Each phase runs for at least `min_measure_ms` wall-clock
/// milliseconds (and at least three iterations).
CodingCalibration MeasureCodingThroughput(std::uint32_t k, std::uint32_t r,
                                          std::size_t block_bytes = 1 << 20,
                                          double min_measure_ms = 20.0);

/// Measures with config.k / config.r and overwrites the config's three
/// throughput constants with the results. Returns the measurement.
CodingCalibration CalibrateCodingCosts(ECStoreConfig& config,
                                       std::size_t block_bytes = 1 << 20);

}  // namespace ecstore
