#include "core/storage_node.h"

#include "common/crc32c.h"
#include "common/rng.h"

namespace ecstore {

bool StorageNode::PutChunk(BlockId block, ChunkIndex chunk, ChunkData data) {
  if (!available()) return false;  // The write raced a crash: it vanishes.
  auto key = std::make_pair(block, chunk);
  StoredChunk stored;
  stored.crc = Crc32c(data.data(), data.size());
  stored.data = std::make_shared<const ChunkData>(std::move(data));
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = chunks_.find(key);
  if (it != chunks_.end()) {
    bytes_stored_ -= it->second.data->size();
    bytes_stored_ += stored.data->size();
    it->second = std::move(stored);
    return true;
  }
  bytes_stored_ += stored.data->size();
  chunks_.emplace(std::move(key), std::move(stored));
  return true;
}

std::shared_ptr<const ChunkData> StorageNode::VerifiedLookup(
    BlockId block, ChunkIndex chunk) const {
  StoredChunk stored;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = chunks_.find({block, chunk});
    if (it == chunks_.end()) return nullptr;
    stored = it->second;
  }
  // Verify outside the map lock: the shared_ptr keeps the bytes stable.
  if (Crc32c(stored.data->data(), stored.data->size()) != stored.crc) {
    checksum_failures_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;  // Corruption is an erasure, never returned data.
  }
  reads_served_.fetch_add(1, std::memory_order_relaxed);
  return stored.data;
}

std::shared_ptr<const ChunkData> StorageNode::GetChunk(BlockId block,
                                                       ChunkIndex chunk) const {
  if (!available()) return nullptr;  // Failed node: a miss, not an error.
  return VerifiedLookup(block, chunk);
}

std::shared_ptr<const ChunkData> StorageNode::FetchChunk(
    BlockId block, ChunkIndex chunk) const {
  if (!available()) return nullptr;
  const double p = fetch_error_p_.load(std::memory_order_acquire);
  if (p > 0) {
    // Deterministic transient error: hash a per-node sequence number so a
    // retried fetch re-rolls instead of failing forever.
    const std::uint64_t seq =
        fetch_error_seq_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t h =
        SplitMix64(fetch_error_seed_.load(std::memory_order_relaxed) + seq)
            .Next();
    if (static_cast<double>(h >> 11) * 0x1.0p-53 < p) {
      injected_fetch_errors_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
  }
  return VerifiedLookup(block, chunk);
}

bool StorageNode::DeleteChunk(BlockId block, ChunkIndex chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = chunks_.find({block, chunk});
  if (it == chunks_.end()) return false;
  bytes_stored_ -= it->second.data->size();
  chunks_.erase(it);
  return true;
}

bool StorageNode::HasChunk(BlockId block, ChunkIndex chunk) const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunks_.count({block, chunk}) > 0;
}

bool StorageNode::HasValidChunk(BlockId block, ChunkIndex chunk) const {
  StoredChunk stored;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = chunks_.find({block, chunk});
    if (it == chunks_.end()) return false;
    stored = it->second;
  }
  return Crc32c(stored.data->data(), stored.data->size()) == stored.crc;
}

bool StorageNode::CorruptChunk(BlockId block, ChunkIndex chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = chunks_.find({block, chunk});
  if (it == chunks_.end() || it->second.data->empty()) return false;
  // Copy-on-corrupt: readers holding the old shared_ptr keep clean bytes;
  // the stored checksum stays as written, so every future read mismatches.
  ChunkData bad = *it->second.data;
  bad[bad.size() / 2] ^= 0x5A;
  it->second.data = std::make_shared<const ChunkData>(std::move(bad));
  return true;
}

std::vector<std::pair<BlockId, ChunkIndex>> StorageNode::ChunkKeys() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<BlockId, ChunkIndex>> keys;
  keys.reserve(chunks_.size());
  for (const auto& [key, stored] : chunks_) keys.push_back(key);
  return keys;
}

void StorageNode::set_fetch_error(double p, std::uint64_t seed) {
  fetch_error_seed_.store(seed, std::memory_order_relaxed);
  fetch_error_p_.store(p, std::memory_order_release);
}

std::uint64_t StorageNode::chunk_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunks_.size();
}

}  // namespace ecstore
