#include "core/storage_node.h"

namespace ecstore {

void StorageNode::PutChunk(BlockId block, ChunkIndex chunk, ChunkData data) {
  auto key = std::make_pair(block, chunk);
  auto holder = std::make_shared<const ChunkData>(std::move(data));
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = chunks_.find(key);
  if (it != chunks_.end()) {
    bytes_stored_ -= it->second->size();
    bytes_stored_ += holder->size();
    it->second = std::move(holder);
    return;
  }
  bytes_stored_ += holder->size();
  chunks_.emplace(std::move(key), std::move(holder));
}

std::shared_ptr<const ChunkData> StorageNode::GetChunk(BlockId block,
                                                       ChunkIndex chunk) const {
  if (!available()) return nullptr;  // Failed node: a miss, not an error.
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = chunks_.find({block, chunk});
  if (it == chunks_.end()) return nullptr;
  reads_served_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

bool StorageNode::DeleteChunk(BlockId block, ChunkIndex chunk) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = chunks_.find({block, chunk});
  if (it == chunks_.end()) return false;
  bytes_stored_ -= it->second->size();
  chunks_.erase(it);
  return true;
}

bool StorageNode::HasChunk(BlockId block, ChunkIndex chunk) const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunks_.count({block, chunk}) > 0;
}

std::uint64_t StorageNode::chunk_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return chunks_.size();
}

}  // namespace ecstore
