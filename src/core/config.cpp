#include "core/config.h"

#include <stdexcept>

namespace ecstore {

std::string TechniqueName(Technique t) {
  switch (t) {
    case Technique::kReplication: return "R";
    case Technique::kEc: return "EC";
    case Technique::kEcLb: return "EC+LB";
    case Technique::kEcC: return "EC+C";
    case Technique::kEcCM: return "EC+C+M";
    case Technique::kEcCMLb: return "EC+C+M+LB";
  }
  return "?";
}

Technique ParseTechnique(const std::string& name) {
  if (name == "R") return Technique::kReplication;
  if (name == "EC") return Technique::kEc;
  if (name == "EC+LB") return Technique::kEcLb;
  if (name == "EC+C") return Technique::kEcC;
  if (name == "EC+C+M") return Technique::kEcCM;
  if (name == "EC+C+M+LB") return Technique::kEcCMLb;
  throw std::invalid_argument("unknown technique: " + name);
}

bool UsesCostModel(Technique t) {
  return t == Technique::kEcC || t == Technique::kEcCM || t == Technique::kEcCMLb;
}

bool UsesMover(Technique t) {
  return t == Technique::kEcCM || t == Technique::kEcCMLb;
}

std::uint32_t LateBindingDelta(Technique t, std::uint32_t delta) {
  return (t == Technique::kEcLb || t == Technique::kEcCMLb) ? delta : 0;
}

ECStoreConfig ECStoreConfig::ForTechnique(Technique t) {
  return ForTechnique(t, ECStoreConfig{});
}

ECStoreConfig ECStoreConfig::ForTechnique(Technique t, ECStoreConfig base) {
  base.technique = t;
  return base;
}

}  // namespace ecstore
