// Repair service (paper Section V-C): polls each site's availability,
// waits a grace period (15 minutes, following GFS) in case the outage is
// transient, then reconstructs the lost chunks elsewhere, choosing
// destinations with the data-movement strategy's load awareness.
//
// Embodiment-agnostic: the service talks only to the shared ClusterState
// + ControlPlane seam. The DES drives it with a Clock/Scheduler bound to
// its event queue (the SimECStore convenience constructor wires this);
// LocalECStore's maintenance thread simply calls Poll(now) under its
// metadata lock with a Reconstructor that rebuilds real bytes. Failed
// sites reach the poll either through a manual FailSite or through the
// ControlPlane's failure detector — the grace period applies identically.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cluster/state.h"
#include "common/types.h"
#include "core/config.h"
#include "core/control_plane.h"

namespace ecstore {

class SimECStore;  // Convenience constructor only; defined in repair.cpp.

/// Watches the cluster state for failed sites and re-creates lost chunks.
///
/// The paper's fault-tolerance experiment (Fig. 4f) deliberately leaves
/// reconstruction off; this service is exercised by its own tests, the
/// failure_recovery example, bench_fig4f_failures --repair, and the
/// real-bytes maintenance loop.
class RepairService {
 public:
  /// `on_repair(site, chunks_rebuilt)` fires after a site's chunks have
  /// been reconstructed (optional).
  using RepairCallback = std::function<void(SiteId, std::uint64_t)>;
  /// Embodiment hook that rebuilds every chunk lost at a site and returns
  /// how many it rebuilt. When empty, the metadata-level ReconstructSite
  /// below is used (sufficient for the DES, which carries no bytes).
  using Reconstructor = std::function<std::uint64_t(SiteId)>;
  using Clock = std::function<SimTime()>;
  /// Schedules a callback after a delay on the embodiment's timeline.
  using Scheduler = std::function<void(SimTime, std::function<void()>)>;

  /// Embodiment-agnostic form: poll with Poll(now), or self-schedule with
  /// Start(clock, scheduler).
  RepairService(const ECStoreConfig* config, ClusterState* state,
                ControlPlane* control_plane, Reconstructor reconstruct = {},
                RepairCallback on_repair = {});

  /// Convenience: watches a SimECStore, polling on its event queue.
  RepairService(SimECStore* store, RepairCallback on_repair = {});

  /// Starts the polling loop (SimECStore-constructed services only).
  void Start();
  /// Starts the polling loop on an explicit clock/scheduler pair.
  void Start(Clock clock, Scheduler scheduler);

  /// One poll at `now`: starts the grace clock for sites newly seen down,
  /// reconstructs sites down longer than `repair_wait` (exactly once per
  /// outage), and resets the bookkeeping for sites that came back.
  /// LocalECStore calls this from its maintenance tick under meta_mu_.
  void Poll(SimTime now);

  /// How many chunks were reconstructed in total.
  std::uint64_t chunks_rebuilt() const { return chunks_rebuilt_; }

  /// Immediately reconstructs every chunk whose only copy-bearing site is
  /// `site`, relocating them (in the catalog) to the least-loaded sites
  /// that do not already hold a chunk of the affected block. Exposed for
  /// tests; the default Reconstructor.
  std::uint64_t ReconstructSite(SiteId site);

 private:
  void ScheduleNext();

  static constexpr SimTime kSiteUp = -1;

  const ECStoreConfig* config_;
  ClusterState* state_;
  ControlPlane* control_plane_;
  Reconstructor reconstruct_;
  RepairCallback on_repair_;
  Clock clock_;
  Scheduler scheduler_;

  std::vector<SimTime> down_since_;  // kSiteUp while available
  std::vector<bool> repaired_;       // this outage already reconstructed
  std::uint64_t chunks_rebuilt_ = 0;
};

}  // namespace ecstore
