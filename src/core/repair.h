// Repair service (paper Section V-C): polls each site's storage service,
// marks unresponsive sites unavailable, waits a grace period (15 minutes,
// following GFS) in case the outage is transient, then reconstructs the
// lost chunks elsewhere, choosing destinations with the data-movement
// strategy's load awareness.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"
#include "core/sim_store.h"

namespace ecstore {

/// Watches a SimECStore for failed sites and re-creates lost chunks.
///
/// The paper's fault-tolerance experiment (Fig. 4f) deliberately leaves
/// reconstruction off; this service is exercised by its own tests and the
/// failure_recovery example.
class RepairService {
 public:
  /// `on_repair(site, chunks_rebuilt)` fires after a site's chunks have
  /// been reconstructed (optional).
  using RepairCallback = std::function<void(SiteId, std::uint64_t)>;

  RepairService(SimECStore* store, RepairCallback on_repair = {});

  /// Starts the polling loop on the store's event queue.
  void Start();

  /// How many chunks were reconstructed in total.
  std::uint64_t chunks_rebuilt() const { return chunks_rebuilt_; }

  /// Immediately reconstructs every chunk whose only copy-bearing site is
  /// `site`, relocating them to the least-loaded sites that do not
  /// already hold a chunk of the affected block. Exposed for tests.
  std::uint64_t ReconstructSite(SiteId site);

 private:
  void PollTick();

  SimECStore* store_;
  RepairCallback on_repair_;
  std::vector<bool> pending_;   // repair scheduled for this site
  std::vector<bool> repaired_;  // already reconstructed
  std::uint64_t chunks_rebuilt_ = 0;
};

}  // namespace ecstore
