#include "overload/overload.h"

#include <algorithm>

namespace ecstore {

// ---------------------------------------------------------------------------
// CircuitBreakerSet

CircuitBreakerSet::CircuitBreakerSet(std::size_t num_sites,
                                     const OverloadParams& params)
    : params_(params), sites_(num_sites) {}

void CircuitBreakerSet::Evaluate(SiteId site, double p99_ms,
                                 std::uint64_t samples, double now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (site >= sites_.size()) return;
  Breaker& b = sites_[site];
  const bool bad =
      samples >= params_.breaker_min_samples && p99_ms > params_.breaker_p99_ms;
  switch (b.state) {
    case State::kClosed:
      if (bad) {
        b.state = State::kOpen;
        b.opened_at_ms = now_ms;
        opens_.fetch_add(1, std::memory_order_relaxed);
        not_closed_.fetch_add(1, std::memory_order_release);
      }
      break;
    case State::kOpen:
      if (now_ms - b.opened_at_ms >= params_.breaker_open_ms) {
        b.state = State::kHalfOpen;
        b.half_open_at_ms = now_ms;
        b.probes_used = 0;
      }
      break;
    case State::kHalfOpen:
      // The first healthy window closes the breaker. Re-open only after
      // a full half-open period: the histogram still remembers the bad
      // episode when half-open begins, and the probes need time to land
      // before their verdict means anything.
      if (!bad) {
        b.state = State::kClosed;
        not_closed_.fetch_sub(1, std::memory_order_release);
      } else if (now_ms - b.half_open_at_ms >= params_.breaker_open_ms) {
        b.state = State::kOpen;
        b.opened_at_ms = now_ms;
        opens_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
  }
}

bool CircuitBreakerSet::ShouldAvoid(SiteId site) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (site >= sites_.size()) return false;
  const Breaker& b = sites_[site];
  if (b.state == State::kOpen) return true;
  if (b.state == State::kHalfOpen) {
    return b.probes_used >= params_.breaker_half_open_probes;
  }
  return false;
}

bool CircuitBreakerSet::AllowProbe(SiteId site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (site >= sites_.size()) return true;
  Breaker& b = sites_[site];
  switch (b.state) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (b.probes_used < params_.breaker_half_open_probes) {
        ++b.probes_used;
        probes_granted_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      return false;
  }
  return true;
}

CircuitBreakerSet::State CircuitBreakerSet::StateOf(SiteId site) const {
  std::lock_guard<std::mutex> lock(mu_);
  return site < sites_.size() ? sites_[site].state : State::kClosed;
}

// ---------------------------------------------------------------------------
// AdmissionController

AdmissionController::AdmissionController(const OverloadParams& params)
    : params_(params) {}

bool AdmissionController::TryAdmit(double now_ms) {
  (void)now_ms;
  std::int64_t cap = static_cast<std::int64_t>(
      std::max<std::uint32_t>(params_.admission_max_in_flight, 1));
  // A standing queue halves the admitted concurrency until it drains:
  // CoDel's "drop until the minimum sojourn returns under target",
  // expressed as a concurrency cut rather than per-packet drops.
  if (overloaded_.load(std::memory_order_acquire)) {
    cap = std::max<std::int64_t>(1, cap / 2);
  }
  const std::int64_t occupied =
      in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (occupied > cap) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void AdmissionController::Release() {
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

void AdmissionController::RecordSojourn(double sojourn_ms, double now_ms) {
  std::lock_guard<std::mutex> lock(window_mu_);
  if (window_end_ms_ <= 0.0) {
    window_end_ms_ = now_ms + params_.codel_interval_ms;
  }
  if (window_min_ms_ < 0.0 || sojourn_ms < window_min_ms_) {
    window_min_ms_ = sojourn_ms;
  }
  if (now_ms >= window_end_ms_) {
    const double min_ms = window_min_ms_;
    overloaded_.store(min_ms > params_.codel_target_ms,
                      std::memory_order_release);
    const double denom = std::max(params_.codel_target_ms * 2.0, 1e-9);
    sojourn_pressure_.store(std::clamp(min_ms / denom, 0.0, 1.0),
                            std::memory_order_release);
    window_min_ms_ = -1.0;
    window_end_ms_ = now_ms + params_.codel_interval_ms;
  }
}

double AdmissionController::Pressure() const {
  const double cap =
      std::max<double>(params_.admission_max_in_flight, 1.0);
  const double util =
      static_cast<double>(
          std::max<std::int64_t>(in_flight_.load(std::memory_order_relaxed),
                                 0)) /
      cap;
  return std::clamp(
      std::max(util, sojourn_pressure_.load(std::memory_order_acquire)), 0.0,
      1.0);
}

// ---------------------------------------------------------------------------
// BrownoutController

BrownoutController::BrownoutController(const OverloadParams& params)
    : params_(params) {}

void BrownoutController::Update(double pressure, double now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (changed_once_ && now_ms - last_change_ms_ < params_.brownout_dwell_ms) {
    return;  // Inside the dwell window: the ladder holds its level.
  }
  const int level = level_.load(std::memory_order_relaxed);
  if (pressure >= params_.brownout_high_pressure && level < kMaxLevel) {
    level_.store(level + 1, std::memory_order_release);
    last_change_ms_ = now_ms;
    changed_once_ = true;
  } else if (pressure <= params_.brownout_low_pressure && level > 0) {
    level_.store(level - 1, std::memory_order_release);
    last_change_ms_ = now_ms;
    changed_once_ = true;
  }
}

// ---------------------------------------------------------------------------
// OverloadControl

OverloadControl::OverloadControl(std::size_t num_sites,
                                 const OverloadParams& params)
    : params_(params) {
  if (params_.admission || params_.brownout) {
    admission_ = std::make_unique<AdmissionController>(params_);
  }
  if (params_.breakers) {
    breakers_ = std::make_unique<CircuitBreakerSet>(num_sites, params_);
  }
  if (params_.brownout) {
    brownout_ = std::make_unique<BrownoutController>(params_);
  }
}

OverloadCounters OverloadControl::Counters(std::uint64_t extra_expired) const {
  OverloadCounters c;
  if (admission_) c.requests_shed = admission_->requests_shed();
  c.deadline_exceeded = deadline_exceeded.load(std::memory_order_relaxed);
  if (breakers_) {
    c.breaker_opens = breakers_->opens();
    c.breaker_half_open_probes = breakers_->half_open_probes();
  }
  c.brownout_level = static_cast<std::uint64_t>(brownout_level());
  c.expired_jobs_cancelled =
      expired_jobs_cancelled.load(std::memory_order_relaxed) + extra_expired;
  return c;
}

}  // namespace ecstore
