// Overload control (DESIGN.md §14): the machinery that keeps the store
// *stable* when offered load exceeds capacity, instead of merely fast
// when it does not.
//
// Four cooperating pieces, each individually default-off:
//
//  - End-to-end deadlines (`deadline_ms`): every request carries an
//    absolute budget. Work that can no longer complete in time is
//    cancelled at the per-site queue (before service, where it is
//    cheap), not after.
//  - Per-site circuit breakers (`breakers`): a site whose p99 crosses
//    `breaker_p99_ms` trips open and planning treats it like a soft
//    failure; after `breaker_open_ms` the breaker goes half-open and
//    grants a bounded number of probe requests — the first window of
//    healthy p99 closes it, so recovery never arrives as a thundering
//    herd.
//  - Admission control (`admission`): a token gate in front of
//    MultiGet/Put sheds excess requests fast-fail. The shed decision
//    uses a CoDel-style signal — the windowed *minimum* sojourn of
//    per-site queue jobs — so a briefly deep queue that still drains is
//    tolerated while standing queues halve the admitted concurrency.
//  - Brownout (`brownout`): under sustained pressure the store sheds
//    optional work in a ladder — L1 prefetch off, L2 mover/ILP rounds
//    paused, L3 cache-only answers where a valid cached block exists,
//    L4 late-binding δ forced to 0 — and restores the stages in reverse
//    order as pressure drops, with hysteresis and a dwell time so the
//    ladder never flaps.
//
// Everything here is clock-agnostic: methods take an explicit `now_ms`
// so the DES embodiment drives them with simulated time (keeping runs
// deterministic) and the real-bytes embodiment with wall clock. The
// library depends only on ec_common; the stores own one OverloadControl
// and hand the ControlPlane a pointer for the planning-side gates.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/types.h"

namespace ecstore {

/// Tuning for the overload subsystem. All features default off; with
/// the defaults the stores construct no OverloadControl at all and the
/// request path is bit-identical to a build without this subsystem.
struct OverloadParams {
  // --- End-to-end deadline ---
  /// Per-request budget in milliseconds; 0 disables deadlines.
  double deadline_ms = 0.0;
  /// Modeled cost of a shed rejection in the simulator (fast-fail: two
  /// orders of magnitude under a served request).
  double shed_penalty_ms = 0.05;

  // --- Admission control ---
  bool admission = false;
  /// Hard cap on concurrently admitted requests.
  std::uint32_t admission_max_in_flight = 64;
  /// CoDel target: a window whose *minimum* queue sojourn exceeds this
  /// indicates a standing queue, not a burst.
  double codel_target_ms = 5.0;
  /// CoDel observation window length.
  double codel_interval_ms = 100.0;

  // --- Per-site circuit breakers ---
  bool breakers = false;
  /// p99 service time that trips a site's breaker open.
  double breaker_p99_ms = 50.0;
  /// Time a breaker stays open before going half-open; also the length
  /// of the half-open evaluation period before re-opening.
  double breaker_open_ms = 250.0;
  /// Requests allowed through per half-open episode.
  std::uint32_t breaker_half_open_probes = 3;
  /// Minimum latency samples before a site can trip (cold sites with a
  /// few unlucky fetches must not flap).
  std::uint64_t breaker_min_samples = 64;

  // --- Brownout ---
  bool brownout = false;
  /// Pressure (0..1) above which the ladder escalates one level.
  double brownout_high_pressure = 0.7;
  /// Pressure below which the ladder de-escalates one level.
  double brownout_low_pressure = 0.3;
  /// Minimum time between level changes (hysteresis dwell).
  double brownout_dwell_ms = 150.0;

  bool Enabled() const {
    return deadline_ms > 0.0 || admission || breakers || brownout;
  }
};

/// Thrown by the real-bytes store when admission control sheds a
/// request. Distinct from std::runtime_error so callers can tell a
/// cheap, deliberate rejection from data loss.
class RequestShedError : public std::runtime_error {
 public:
  RequestShedError() : std::runtime_error("request shed by admission control") {}
};

/// Thrown by the real-bytes store when a request's end-to-end deadline
/// expires before its blocks could be assembled.
class DeadlineExceededError : public std::runtime_error {
 public:
  DeadlineExceededError() : std::runtime_error("request deadline exceeded") {}
};

/// Per-site breaker state machine: closed → open on bad p99 →
/// half-open after a cool-off → closed on the first healthy window (or
/// back to open when the probes still look bad). Internally locked;
/// callable from any thread.
class CircuitBreakerSet {
 public:
  CircuitBreakerSet(std::size_t num_sites, const OverloadParams& params);

  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  /// Feeds one site's current p99 estimate (and how many samples back
  /// it) and advances the state machine. Call periodically from the
  /// stats refresh path.
  void Evaluate(SiteId site, double p99_ms, std::uint64_t samples,
                double now_ms);

  /// True when planning should avoid the site (open, or half-open with
  /// its probe budget exhausted).
  bool ShouldAvoid(SiteId site) const;

  /// Half-open probe grant: consumes one of the episode's
  /// `breaker_half_open_probes` passes. Returns true when this request
  /// may use the site. Closed sites always pass; open sites never do.
  bool AllowProbe(SiteId site);

  /// Fast gate: false means every breaker is closed and the planning
  /// filter can be skipped entirely.
  bool AnyNotClosed() const {
    return not_closed_.load(std::memory_order_acquire) > 0;
  }

  State StateOf(SiteId site) const;

  std::uint64_t opens() const {
    return opens_.load(std::memory_order_relaxed);
  }
  std::uint64_t half_open_probes() const {
    return probes_granted_.load(std::memory_order_relaxed);
  }

 private:
  struct Breaker {
    State state = State::kClosed;
    double opened_at_ms = 0;     // entry time of the current open episode
    double half_open_at_ms = 0;  // entry time of the current half-open episode
    std::uint32_t probes_used = 0;
  };

  const OverloadParams params_;
  mutable std::mutex mu_;
  std::vector<Breaker> sites_;
  std::atomic<std::uint32_t> not_closed_{0};
  std::atomic<std::uint64_t> opens_{0};
  std::atomic<std::uint64_t> probes_granted_{0};
};

/// Token gate + CoDel sojourn signal. The gate itself only bites when
/// `params.admission` is set, but the sojourn/pressure tracking also
/// runs for brownout-only configurations (brownout derives its pressure
/// from this controller).
class AdmissionController {
 public:
  explicit AdmissionController(const OverloadParams& params);

  /// Takes an admission token. Returns false — and counts a shed — when
  /// the store is past its admitted-concurrency cap (halved while the
  /// CoDel signal reports a standing queue). Pair with Release().
  bool TryAdmit(double now_ms);

  /// Returns the token taken by a successful TryAdmit.
  void Release();

  /// Feeds one per-site queue sojourn (pickup − enqueue) into the CoDel
  /// window. Thread-safe; called from data-plane workers.
  void RecordSojourn(double sojourn_ms, double now_ms);

  /// Load pressure in [0, 1]: the max of admitted-concurrency
  /// utilization and the last window's min-sojourn ratio against twice
  /// the CoDel target. Brownout's input signal.
  double Pressure() const;

  /// True while the last completed CoDel window saw min sojourn above
  /// target (a standing queue).
  bool overloaded() const {
    return overloaded_.load(std::memory_order_acquire);
  }

  std::uint64_t requests_shed() const {
    return shed_.load(std::memory_order_relaxed);
  }
  std::int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

 private:
  const OverloadParams params_;
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<bool> overloaded_{false};
  /// Ratio of the last completed window's min sojourn to 2× target,
  /// clamped to [0, 1]; the smooth half of Pressure().
  std::atomic<double> sojourn_pressure_{0.0};

  std::mutex window_mu_;
  double window_min_ms_ = -1.0;  // <0: no sample yet this window
  double window_end_ms_ = 0.0;   // 0: first sample starts the window
};

/// The shed ladder. Level 0 is normal operation; each level adds one
/// degradation on top of the previous ones:
///   L1: prefetch off; L2: mover/ILP rounds paused; L3: cache-only
///   answers where valid; L4: late-binding δ forced to 0.
/// Escalates/de-escalates one level at a time with hysteresis + dwell.
class BrownoutController {
 public:
  explicit BrownoutController(const OverloadParams& params);

  /// Advances the ladder from the current pressure reading. Call
  /// periodically from the stats refresh path.
  void Update(double pressure, double now_ms);

  int level() const { return level_.load(std::memory_order_acquire); }

  static constexpr int kMaxLevel = 4;

 private:
  const OverloadParams params_;
  std::atomic<int> level_{0};
  std::mutex mu_;
  double last_change_ms_ = 0.0;
  bool changed_once_ = false;
};

/// Snapshot of the subsystem's counters for Usage()/--usage-json.
/// All monotonic except brownout_level (a gauge: the current ladder
/// level).
struct OverloadCounters {
  std::uint64_t requests_shed = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t breaker_opens = 0;
  std::uint64_t breaker_half_open_probes = 0;
  std::uint64_t brownout_level = 0;
  std::uint64_t expired_jobs_cancelled = 0;
};

/// The aggregate each store embodiment owns (only when
/// OverloadParams::Enabled(); a null OverloadControl* everywhere means
/// the feature set is off and no behavior changes). The individual
/// controllers are null when their feature flag is off — except the
/// admission controller, which also exists for brownout-only configs
/// (it is brownout's pressure source).
class OverloadControl {
 public:
  OverloadControl(std::size_t num_sites, const OverloadParams& params);

  const OverloadParams& params() const { return params_; }
  double deadline_ms() const { return params_.deadline_ms; }

  AdmissionController* admission() { return admission_.get(); }
  CircuitBreakerSet* breakers() { return breakers_.get(); }
  BrownoutController* brownout() { return brownout_.get(); }
  const CircuitBreakerSet* breakers() const { return breakers_.get(); }

  /// True when the admission *gate* should bite (admission enabled, not
  /// merely constructed as brownout's signal source).
  bool gate_enabled() const { return params_.admission; }

  /// Current shed-ladder level; 0 when brownout is off.
  int brownout_level() const {
    return brownout_ ? brownout_->level() : 0;
  }

  /// Updates breaker state for one site and the brownout ladder; the
  /// stores call this from their periodic stats refresh.
  void EvaluateSite(SiteId site, double p99_ms, std::uint64_t samples,
                    double now_ms) {
    if (breakers_) breakers_->Evaluate(site, p99_ms, samples, now_ms);
  }
  void UpdateBrownout(double now_ms) {
    if (brownout_ && admission_) brownout_->Update(admission_->Pressure(), now_ms);
  }

  /// Counter snapshot, including per-controller counters. `extra_expired`
  /// lets an embodiment fold in a queue-owned counter (the local data
  /// plane counts expirations itself).
  OverloadCounters Counters(std::uint64_t extra_expired = 0) const;

  // Counters owned here (the controllers own their own). Monotonic.
  std::atomic<std::uint64_t> deadline_exceeded{0};
  std::atomic<std::uint64_t> expired_jobs_cancelled{0};

 private:
  const OverloadParams params_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<CircuitBreakerSet> breakers_;
  std::unique_ptr<BrownoutController> brownout_;
};

}  // namespace ecstore
