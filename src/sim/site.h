// Simulated storage site: a multi-server queue modeling the CPU/disk/NIC
// of one storage machine, with heavy-tailed service jitter and transient
// stalls.
//
// Stragglers are not injected artificially: they emerge from queueing at
// sites that receive more work than they can service (Section III of the
// paper), exactly the mechanism EC-Store's strategies exploit.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace ecstore::sim {

/// Physical characteristics of one site. Defaults approximate the
/// paper's testbed (SATA disk, 10 GbE shared among services).
struct SiteParams {
  /// Sequential read throughput of the storage media (bytes/second).
  double disk_bytes_per_sec = 140.0 * 1024 * 1024;
  /// Fixed per-request service overhead (request parsing, scheduling,
  /// kernel, RPC dispatch). Calibrated so that o_j : m_j*z_i is roughly
  /// 5 : 1 for a 100 KB block's chunk, the ratio the paper reports for
  /// its testbed (Section V-B3).
  SimTime request_overhead = 1800;  // 1.8 ms
  /// Additional dispatch cost for each chunk beyond the first within a
  /// batched storage-service request.
  SimTime per_chunk_overhead = 300;  // 0.3 ms
  /// Sigma of the lognormal service-time multiplier; the source of
  /// heavy-tailed service variation.
  double jitter_sigma = 0.45;
  /// Probability that a request hits a transient stall (page-cache miss,
  /// compaction, GC — the "tail at scale" effect [9]) and the stall's
  /// service-time multiplier.
  double stall_probability = 0.04;
  double stall_multiplier = 10.0;
  /// NIC transmit rate for sending chunk data back (bytes/second).
  double net_bytes_per_sec = 1.10 * 1024 * 1024 * 1024;
  /// Concurrent requests a site services (the paper's storage machines
  /// are 12-core; a stalled request does not serialize the whole site).
  /// Queueing kicks in only when all servers are busy.
  std::uint32_t concurrency = 6;
  /// Smooth load-latency coupling: every request (and probe) is slowed by
  /// 1 + load_sensitivity * in_flight / concurrency, modeling CPU/cache/
  /// lock contention below full saturation. This is what makes probe
  /// round trips a usable o_j load signal (Section V-B3).
  double load_sensitivity = 0.25;
};

/// Point-in-time load report a site sends to the statistics service
/// (Section V-A): CPU utilization and I/O load over the last interval.
struct LoadReport {
  SiteId site = 0;
  double cpu_utilization = 0;    // [0, 1]: fraction of interval busy
  double io_bytes_per_sec = 0;   // read throughput over the interval
  std::uint64_t chunk_count = 0; // chunks currently stored
  std::uint64_t queue_length = 0;
};

/// One simulated storage machine: `concurrency` parallel servers, each
/// request occupying the earliest-free server for its full service time
/// (overhead + media read + NIC send).
class SimSite {
 public:
  /// `done(completion_time)` fires when the site finishes serving.
  using Done = std::function<void(SimTime)>;

  SimSite(SiteId id, EventQueue* queue, SiteParams params, Rng rng);

  SiteId id() const { return id_; }
  bool available() const { return available_; }
  void set_available(bool a) { available_ = a; }

  /// Slow-site fault injection (DESIGN.md §9): every subsequent request's
  /// service time is multiplied by `factor` (1.0 restores full speed).
  void set_degrade(double factor) { degrade_ = factor; }
  double degrade() const { return degrade_; }

  /// Submits a chunk read of `bytes`. Must not be called while failed.
  void SubmitRead(std::uint64_t bytes, Done done);

  /// Submits one storage-service request for several chunks (a client
  /// multiget's per-site batch). The request-dispatch overhead is paid
  /// once; each chunk's media/NIC work runs on its own server slot (the
  /// storage service reads chunks concurrently), and `done` fires when
  /// the last chunk is served. This is what makes co-located access
  /// cheaper than scattering the same chunks across sites.
  void SubmitBatchRead(std::span<const std::uint64_t> chunk_sizes, Done done);

  /// Submits a chunk write (repair/movement traffic); same server.
  void SubmitWrite(std::uint64_t bytes, Done done);

  /// Submits a tiny load-status probe (Section V-B3): its response time
  /// measures queueing delay and is the basis for the o_j estimate.
  void SubmitProbe(Done done);

  /// Time the earliest server frees up; Now() if any server is idle.
  SimTime busy_until() const;

  /// Instantaneous queue length estimate (requests not yet finished).
  std::uint64_t queue_length() const { return in_flight_; }

  /// Chunk inventory accounting, maintained by the cluster layer.
  void set_chunk_count(std::uint64_t n) { chunk_count_ = n; }
  std::uint64_t chunk_count() const { return chunk_count_; }

  /// Total bytes served by reads since construction (Fig. 4d metric).
  std::uint64_t total_bytes_read() const { return total_bytes_read_; }

  /// Produces the load report for the interval since the previous call
  /// and resets interval accumulators.
  LoadReport CollectReport();

 private:
  SimTime Serve(std::uint64_t bytes, SimTime overhead, bool count_read, Done done);

  SiteId id_;
  EventQueue* queue_;
  SiteParams params_;
  Rng rng_;
  bool available_ = true;
  double degrade_ = 1.0;

  std::vector<SimTime> server_busy_until_;
  std::uint64_t in_flight_ = 0;
  std::uint64_t chunk_count_ = 0;

  // Interval accumulators for load reports.
  SimTime interval_start_ = 0;
  SimTime busy_accum_ = 0;
  std::uint64_t interval_bytes_read_ = 0;

  std::uint64_t total_bytes_read_ = 0;
};

}  // namespace ecstore::sim
