// Network latency model for the simulated cluster: a simple propagation +
// transmission + jitter model of the paper's 10 GbE LAN. Contention on a
// storage site's NIC is modeled inside SimSite's service time; this class
// covers the client-side path and request fan-out.
#pragma once

#include "common/rng.h"
#include "common/types.h"

namespace ecstore::sim {

struct NetworkParams {
  /// One-way propagation + protocol latency between any two machines.
  SimTime one_way_latency = 120;  // 0.12 ms
  /// Client-side receive bandwidth (bytes/second).
  double client_bytes_per_sec = 1.10 * 1024 * 1024 * 1024;
  /// Lognormal sigma on the one-way latency.
  double jitter_sigma = 0.2;
};

/// Computes per-message delays. Stateless apart from its RNG.
class Network {
 public:
  Network(NetworkParams params, Rng rng) : params_(params), rng_(rng) {}

  /// Delay for a small request message (no payload).
  SimTime RequestDelay();

  /// Delay for a response carrying `bytes` of payload back to a client.
  SimTime ResponseDelay(std::uint64_t bytes);

  /// Round trip with negligible payloads (metadata lookups, probes).
  SimTime RoundTrip() { return RequestDelay() + RequestDelay(); }

 private:
  NetworkParams params_;
  Rng rng_;
};

}  // namespace ecstore::sim
