#include "sim/network.h"

#include <algorithm>

namespace ecstore::sim {

SimTime Network::RequestDelay() {
  const double jitter = rng_.NextLogNormal(0.0, params_.jitter_sigma);
  return std::max<SimTime>(
      static_cast<SimTime>(static_cast<double>(params_.one_way_latency) * jitter), 1);
}

SimTime Network::ResponseDelay(std::uint64_t bytes) {
  const double transmit_s =
      static_cast<double>(bytes) / params_.client_bytes_per_sec;
  return RequestDelay() + static_cast<SimTime>(transmit_s * kSecond);
}

}  // namespace ecstore::sim
