// Discrete-event simulation core: a virtual clock and an ordered event
// queue. This substrate replaces the paper's 36-machine physical testbed;
// sites, networks, and services schedule work against simulated time, so
// 20-minute experiments run in seconds of wall time and are deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace ecstore::sim {

/// Priority queue of timestamped callbacks. Events at equal timestamps
/// fire in scheduling order (a monotone sequence number breaks ties), so
/// runs are fully deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  SimTime Now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (clamped to Now()).
  void ScheduleAt(SimTime when, Callback fn);

  /// Schedules `fn` to run `delay` after Now().
  void ScheduleAfter(SimTime delay, Callback fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  /// Runs events until the queue is empty or the clock passes `deadline`.
  /// Events scheduled exactly at `deadline` do run.
  void RunUntil(SimTime deadline);

  /// Runs events until the queue drains completely.
  void RunAll();

  /// Fires at most one event; returns false if the queue is empty.
  bool Step();

  std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ecstore::sim
