#include "sim/event_queue.h"

#include <utility>

namespace ecstore::sim {

void EventQueue::ScheduleAt(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  heap_.push(Event{when, next_seq_++, std::move(fn)});
}

void EventQueue::RunUntil(SimTime deadline) {
  while (!heap_.empty() && heap_.top().when <= deadline) {
    // Moving out of the top of a priority_queue requires a const_cast;
    // the element is popped immediately after, so this is safe.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ev.fn();
  }
  if (now_ < deadline) now_ = deadline;
}

void EventQueue::RunAll() {
  while (Step()) {
  }
}

bool EventQueue::Step() {
  if (heap_.empty()) return false;
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.when;
  ev.fn();
  return true;
}

}  // namespace ecstore::sim
