#include "sim/site.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ecstore::sim {

SimSite::SimSite(SiteId id, EventQueue* queue, SiteParams params, Rng rng)
    : id_(id), queue_(queue), params_(params), rng_(rng) {
  server_busy_until_.assign(std::max<std::uint32_t>(params_.concurrency, 1), 0);
}

SimTime SimSite::busy_until() const {
  return *std::min_element(server_busy_until_.begin(), server_busy_until_.end());
}

SimTime SimSite::Serve(std::uint64_t bytes, SimTime overhead, bool count_read,
                       Done done) {
  assert(available_);
  const SimTime now = queue_->Now();
  // Earliest-free server takes the request.
  auto server = std::min_element(server_busy_until_.begin(),
                                 server_busy_until_.end());
  const SimTime start = std::max(now, *server);

  // Service time: fixed overhead + media transfer + NIC transmit, scaled
  // by a lognormal jitter factor with unit median.
  const double media_s = static_cast<double>(bytes) / params_.disk_bytes_per_sec;
  const double net_s = static_cast<double>(bytes) / params_.net_bytes_per_sec;
  const double jitter = rng_.NextLogNormal(0.0, params_.jitter_sigma);
  double service_s =
      static_cast<double>(overhead) / kSecond + (media_s + net_s) * jitter;
  // Contention: concurrent work slows everything down a little even
  // before the servers saturate. Capped so overload degrades gracefully
  // instead of spiraling (service time feeding back into more queueing).
  const double contention =
      params_.load_sensitivity * static_cast<double>(in_flight_) /
      static_cast<double>(server_busy_until_.size());
  service_s *= 1.0 + std::min(contention, 0.75);
  if (rng_.NextBernoulli(params_.stall_probability)) {
    // Transient stall: the whole request (overhead included) is held up.
    service_s *= params_.stall_multiplier;
  }
  service_s *= degrade_;  // Injected slow-site fault (1.0 when healthy).
  const SimTime service = static_cast<SimTime>(service_s * kSecond);

  const SimTime completion = start + std::max<SimTime>(service, 1);
  const SimTime served = completion - start;
  *server = completion;
  ++in_flight_;

  queue_->ScheduleAt(completion, [this, completion, served, bytes, count_read,
                                  done = std::move(done)]() {
    --in_flight_;
    // Busy time and bytes are attributed to the interval in which the
    // request finishes serving, keeping load reports causal.
    busy_accum_ += served;
    if (count_read) {
      interval_bytes_read_ += bytes;
      total_bytes_read_ += bytes;
    }
    done(completion);
  });
  return completion;
}

void SimSite::SubmitRead(std::uint64_t bytes, Done done) {
  Serve(bytes, params_.request_overhead, /*count_read=*/true, std::move(done));
}

void SimSite::SubmitBatchRead(std::span<const std::uint64_t> chunk_sizes,
                              Done done) {
  assert(!chunk_sizes.empty());
  // Each chunk occupies its own server slot; dispatch overhead is paid in
  // full by the first chunk and marginally by the rest. Completion is the
  // slowest chunk's completion.
  struct BatchState {
    std::size_t remaining;
    SimTime last = 0;
    Done done;
  };
  auto batch = std::make_shared<BatchState>();
  batch->remaining = chunk_sizes.size();
  batch->done = std::move(done);

  for (std::size_t i = 0; i < chunk_sizes.size(); ++i) {
    const SimTime overhead =
        i == 0 ? params_.request_overhead : params_.per_chunk_overhead;
    Serve(chunk_sizes[i], overhead, /*count_read=*/true, [batch](SimTime t) {
      batch->last = std::max(batch->last, t);
      if (--batch->remaining == 0) batch->done(batch->last);
    });
  }
}

void SimSite::SubmitWrite(std::uint64_t bytes, Done done) {
  Serve(bytes, params_.request_overhead, /*count_read=*/false, std::move(done));
}

void SimSite::SubmitProbe(Done done) {
  // Probes are tiny; their response time is dominated by queueing delay,
  // which is exactly what the o_j estimator wants to observe.
  Serve(0, params_.request_overhead, /*count_read=*/false, std::move(done));
}

LoadReport SimSite::CollectReport() {
  const SimTime now = queue_->Now();
  const SimTime interval = std::max<SimTime>(now - interval_start_, 1);

  // Utilization is busy time over the interval's total server capacity,
  // clamped to [0, 1] (attribution happens at request completion).
  const double capacity = static_cast<double>(interval) *
                          static_cast<double>(server_busy_until_.size());
  const double util =
      std::clamp(static_cast<double>(busy_accum_) / capacity, 0.0, 1.0);

  LoadReport report;
  report.site = id_;
  report.cpu_utilization = util;
  report.io_bytes_per_sec = static_cast<double>(interval_bytes_read_) /
                            (static_cast<double>(interval) / kSecond);
  report.chunk_count = chunk_count_;
  report.queue_length = in_flight_;

  interval_start_ = now;
  busy_accum_ = 0;
  interval_bytes_read_ = 0;
  return report;
}

}  // namespace ecstore::sim
