#include "workload/trace.h"

#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace ecstore {

void WriteTrace(const Trace& trace, std::ostream& out) {
  out << "# ec-store trace v1\n";
  out << "# " << trace.blocks.size() << " blocks, " << trace.requests.size()
      << " requests\n";
  for (const BlockSpec& b : trace.blocks) {
    out << "B " << b.id << ' ' << b.bytes << '\n';
  }
  for (const auto& request : trace.requests) {
    for (std::size_t i = 0; i < request.size(); ++i) {
      if (i) out << ' ';
      out << request[i];
    }
    out << '\n';
  }
}

Trace ReadTrace(std::istream& in) {
  Trace trace;
  std::set<BlockId> known;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    if (line[0] == 'B') {
      char tag;
      BlockId id;
      std::uint64_t bytes;
      if (!(tokens >> tag >> id >> bytes)) {
        throw std::runtime_error("trace line " + std::to_string(line_no) +
                                 ": malformed block declaration");
      }
      if (!known.insert(id).second) {
        throw std::runtime_error("trace line " + std::to_string(line_no) +
                                 ": duplicate block declaration");
      }
      trace.blocks.push_back({id, bytes});
      continue;
    }
    std::vector<BlockId> request;
    BlockId id;
    while (tokens >> id) {
      if (!known.count(id)) {
        throw std::runtime_error("trace line " + std::to_string(line_no) +
                                 ": request references undeclared block " +
                                 std::to_string(id));
      }
      request.push_back(id);
    }
    if (!tokens.eof()) {
      throw std::runtime_error("trace line " + std::to_string(line_no) +
                               ": bad token");
    }
    if (!request.empty()) trace.requests.push_back(std::move(request));
  }
  return trace;
}

Trace RecordTrace(WorkloadGenerator& generator, Rng& rng, std::size_t count) {
  Trace trace;
  trace.blocks = generator.Blocks();
  trace.requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    trace.requests.push_back(generator.NextRequest(rng));
  }
  return trace;
}

TraceWorkload::TraceWorkload(Trace trace, bool loop)
    : trace_(std::move(trace)), loop_(loop) {
  if (trace_.requests.empty()) {
    throw std::invalid_argument("TraceWorkload: empty trace");
  }
}

std::vector<BlockId> TraceWorkload::NextRequest(Rng&) {
  if (position_ >= trace_.requests.size()) {
    if (!loop_) throw std::out_of_range("TraceWorkload: trace exhausted");
    position_ = 0;
  }
  return trace_.requests[position_++];
}

}  // namespace ecstore
