// Request-trace record and replay.
//
// The paper evaluates on a real Wikipedia access trace [47] that is not
// redistributable; this module provides the infrastructure a user needs
// to run EC-Store against their own traces: a simple line-oriented trace
// format, a writer that captures any generator's request stream, and a
// replaying WorkloadGenerator.
//
// Format: one request per line, whitespace-separated block ids; lines
// beginning with '#' are comments. Block sizes are declared once in a
// header section of "B <id> <bytes>" lines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/workload.h"

namespace ecstore {

/// An in-memory trace: the dataset plus an ordered request log.
struct Trace {
  std::vector<BlockSpec> blocks;
  std::vector<std::vector<BlockId>> requests;

  bool operator==(const Trace&) const = default;
};

/// Serializes a trace to the line format described above.
void WriteTrace(const Trace& trace, std::ostream& out);

/// Parses a trace. Throws std::runtime_error on malformed input
/// (unknown block id in a request, bad token, missing size).
Trace ReadTrace(std::istream& in);

/// Captures `count` requests from any generator into a Trace.
Trace RecordTrace(WorkloadGenerator& generator, Rng& rng, std::size_t count);

/// Replays a recorded trace. Requests are served in order; by default
/// the replay loops back to the beginning when exhausted.
class TraceWorkload final : public WorkloadGenerator {
 public:
  explicit TraceWorkload(Trace trace, bool loop = true);

  std::vector<BlockSpec> Blocks() const override { return trace_.blocks; }

  /// Returns the next request in trace order. Throws std::out_of_range
  /// when a non-looping trace is exhausted.
  std::vector<BlockId> NextRequest(Rng& rng) override;

  std::size_t position() const { return position_; }
  std::size_t size() const { return trace_.requests.size(); }
  bool exhausted() const { return !loop_ && position_ >= size(); }

 private:
  Trace trace_;
  bool loop_;
  std::size_t position_ = 0;
};

}  // namespace ecstore
