#include "workload/driver.h"

#include <cassert>
#include <memory>

namespace ecstore {

ClosedLoopDriver::ClosedLoopDriver(SimECStore* store, WorkloadGenerator* workload,
                                   Params params)
    : store_(store), workload_(workload), params_(params) {}

void ClosedLoopDriver::Run() {
  sim::EventQueue& queue = store_->queue();
  measure_start_ = queue.Now() + params_.warmup;
  measure_end_ = measure_start_ + params_.measure;

  const SimTime timeline_span =
      params_.measure + (params_.timeline_includes_warmup ? params_.warmup : 0);
  const std::size_t buckets = static_cast<std::size_t>(
      (timeline_span + params_.timeline_bucket - 1) / params_.timeline_bucket);
  timeline_sums_.assign(buckets, 0.0);
  timeline_counts_.assign(buckets, 0);

  store_->Start();

  // Workload shift + measurement-window bookkeeping at the boundary.
  queue.ScheduleAt(measure_start_, [this] {
    workload_->OnMeasurementStart();
    measure_start_bytes_ = store_->SiteBytesRead();
  });
  queue.ScheduleAt(measure_end_, [this] { stop_issuing_ = true; });

  Rng root(store_->config().seed ^ 0xC11E27);
  for (std::uint32_t c = 0; c < params_.clients; ++c) {
    ClientLoop(c, root.Split());
  }
  queue.RunUntil(measure_end_);
}

void ClosedLoopDriver::ClientLoop(std::uint32_t client, Rng rng) {
  if (stop_issuing_) return;
  // Rng is moved through the closure chain so each client's stream stays
  // independent and deterministic.
  auto rng_holder = std::make_shared<Rng>(rng);
  std::vector<BlockId> request = workload_->NextRequest(*rng_holder);
  const SimTime issued_at = store_->queue().Now();

  store_->Get(std::move(request), [this, client, rng_holder,
                                   issued_at](const RequestBreakdown& r) {
    const SimTime now = store_->queue().Now();
    const bool in_window = issued_at >= measure_start_ && now <= measure_end_;
    if (in_window) {
      ++metrics_.requests;
      if (r.shed) {
        // Deliberate admission fast-fail: not a data-path failure, and
        // excluded from the latency histograms of admitted requests.
        ++metrics_.sheds;
        metrics_.shed_latency_sum += static_cast<double>(r.total);
      } else if (r.deadline_hit) {
        ++metrics_.deadline_hits;
        ++metrics_.failures;
      } else if (!r.ok) {
        ++metrics_.failures;
      } else {
        metrics_.total.Record(r.total);
        metrics_.metadata.Record(r.metadata);
        metrics_.planning.Record(r.planning);
        metrics_.retrieval.Record(r.retrieval);
        metrics_.decode.Record(r.decode);
        metrics_.sites_per_request.Add(r.sites_accessed);
        if (store_->config().CostModelEnabled()) {
          ++metrics_.cache_lookups;
          if (r.plan_cache_hit) ++metrics_.cache_hits;
        }
      }
    }
    // Timeline bucket (by completion time).
    const SimTime t0 = params_.timeline_includes_warmup
                           ? measure_start_ - params_.warmup
                           : measure_start_;
    if (now >= t0 && now < measure_end_ && r.ok) {
      const std::size_t bucket =
          static_cast<std::size_t>((now - t0) / params_.timeline_bucket);
      if (bucket < timeline_sums_.size()) {
        timeline_sums_[bucket] += ToMillis(r.total);
        timeline_counts_[bucket] += 1;
      }
    }
    if (params_.think > 0) {
      // Exponential think keeps the offered load fixed; the draw only
      // happens on this path, so think = 0 consumes no extra randomness.
      const SimTime delay = static_cast<SimTime>(rng_holder->NextExponential(
          static_cast<double>(params_.think)));
      store_->queue().ScheduleAfter(delay, [this, client, rng_holder] {
        ClientLoop(client, *rng_holder);
      });
    } else {
      ClientLoop(client, *rng_holder);
    }
  });
}

std::vector<TimelinePoint> ClosedLoopDriver::Timeline() const {
  std::vector<TimelinePoint> out;
  out.reserve(timeline_sums_.size());
  for (std::size_t i = 0; i < timeline_sums_.size(); ++i) {
    TimelinePoint p;
    p.minutes = static_cast<double>(i) *
                static_cast<double>(params_.timeline_bucket) / kMinute;
    p.requests = timeline_counts_[i];
    p.mean_ms = timeline_counts_[i]
                    ? timeline_sums_[i] / static_cast<double>(timeline_counts_[i])
                    : 0.0;
    out.push_back(p);
  }
  return out;
}

}  // namespace ecstore
