// Closed-loop benchmark driver (paper Section VI-B): a configurable
// number of concurrent clients issue requests back to back (optionally
// separated by exponential think time), a warm-up phase precedes a
// measurement phase, and per-phase latency breakdowns are collected —
// the experimental methodology behind every figure in Section VI-C.
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "core/sim_store.h"
#include "workload/workload.h"

namespace ecstore {

/// Latency breakdown histograms for the measurement window, all in
/// simulated microseconds.
struct PhaseMetrics {
  Histogram total;
  Histogram metadata;
  Histogram planning;
  Histogram retrieval;
  Histogram decode;
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  /// Requests fast-failed by admission control (DESIGN.md §14). Counted
  /// apart from `failures`: a shed is a deliberate, cheap refusal, not a
  /// data-path error, and its latency must not pollute the breakdown
  /// histograms of admitted requests.
  std::uint64_t sheds = 0;
  /// Requests whose end-to-end deadline expired (also excluded from the
  /// latency histograms — their total is the deadline, by construction).
  std::uint64_t deadline_hits = 0;
  /// Sum of shed turnaround times (µs) — sheds must fail *fast*, so the
  /// overload bench asserts mean shed latency ≪ mean service time.
  double shed_latency_sum = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_lookups = 0;
  RunningStat sites_per_request;

  double MeanMs(const Histogram& h) const { return h.Mean() / kMillisecond; }
  double MeanShedMs() const {
    return sheds ? shed_latency_sum / static_cast<double>(sheds) / kMillisecond
                 : 0.0;
  }
};

/// One point of the Fig. 4a response-time timeline.
struct TimelinePoint {
  double minutes = 0;    // Minutes since measurement start.
  double mean_ms = 0;
  std::uint64_t requests = 0;
};

class ClosedLoopDriver {
 public:
  struct Params {
    std::uint32_t clients = 100;
    SimTime warmup = 60 * kSecond;
    SimTime measure = 120 * kSecond;
    /// Mean exponential think time between a client's requests. 0 keeps
    /// the paper's zero-think saturation loop (default); > 0 fixes the
    /// offered load, which is what lets a latency optimization show up
    /// as shorter queues instead of just higher throughput.
    SimTime think = 0;
    /// Timeline bucket width for the Fig. 4a series.
    SimTime timeline_bucket = 15 * kSecond;
    /// Collect timeline during warm-up too (Fig. 4a starts at workload
    /// shift, which is our measurement start).
    bool timeline_includes_warmup = false;
  };

  ClosedLoopDriver(SimECStore* store, WorkloadGenerator* workload, Params params);

  /// Runs warm-up + measurement to completion. Calls Start() on the
  /// store, drives every client, and stops issuing at the deadline.
  void Run();

  const PhaseMetrics& metrics() const { return metrics_; }
  std::vector<TimelinePoint> Timeline() const;

  /// Per-site bytes read during the measurement window only (Fig. 4d).
  const std::vector<std::uint64_t>& measure_start_bytes() const {
    return measure_start_bytes_;
  }

 private:
  void ClientLoop(std::uint32_t client, Rng rng);

  SimECStore* store_;
  WorkloadGenerator* workload_;
  Params params_;
  PhaseMetrics metrics_;
  SimTime measure_start_ = 0;
  SimTime measure_end_ = 0;
  bool stop_issuing_ = false;

  std::vector<double> timeline_sums_;
  std::vector<std::uint64_t> timeline_counts_;
  std::vector<std::uint64_t> measure_start_bytes_;
};

}  // namespace ecstore
