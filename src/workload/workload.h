// Benchmark workloads (paper Section VI-B):
//
//  - YcsbEWorkload: YCSB-E range scans — contiguous key ranges retrieved
//    together (a message-chain pattern). Keys are chosen uniformly during
//    warm-up and from a power-law (default exponent 1) afterwards, which
//    is the workload shift of Fig. 4a.
//  - WikipediaWorkload: a statistical twin of the Wikipedia image-access
//    trace [47]: pages requested with Zipf popularity; images-per-page
//    and image sizes follow power laws with the published medians
//    (~10 images/page, ~500 KB images).
//  - FlashCrowdWorkload: a diurnal/flash-crowd pattern (DESIGN.md §13):
//    a Zipf baseline interleaved with flash episodes during which most
//    requests pile onto a small rotating hot set, producing the queueing
//    variance the tail model and adaptive δ are built to absorb.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace ecstore {

/// A block to load before the experiment begins.
struct BlockSpec {
  BlockId id = 0;
  std::uint64_t bytes = 0;

  bool operator==(const BlockSpec&) const = default;
};

/// Source of multi-block read requests.
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;

  /// The dataset to bulk-load.
  virtual std::vector<BlockSpec> Blocks() const = 0;

  /// Draws the next multi-block request.
  virtual std::vector<BlockId> NextRequest(Rng& rng) = 0;

  /// Invoked at the warm-up/measurement boundary; generators that model
  /// a workload shift switch distributions here.
  virtual void OnMeasurementStart() {}
};

/// YCSB workload E: scans of consecutive keys.
class YcsbEWorkload final : public WorkloadGenerator {
 public:
  struct Params {
    std::uint64_t num_blocks = 100000;
    std::uint64_t block_bytes = 100 * 1024;
    /// Scan length is uniform in [1, max_scan_length]; the paper's
    /// multiget sizes center around 10 blocks [21,31,39].
    std::uint32_t max_scan_length = 19;
    /// Power-law exponent for the measurement phase (paper default 1).
    double zipf_exponent = 1.0;
    /// When true the measurement phase scans keys by popularity rank via
    /// a scrambled mapping so hot ranges spread over the keyspace.
    bool scramble = true;
  };

  explicit YcsbEWorkload(Params params);

  std::vector<BlockSpec> Blocks() const override;
  std::vector<BlockId> NextRequest(Rng& rng) override;
  void OnMeasurementStart() override { measuring_ = true; }

  bool measuring() const { return measuring_; }

 private:
  Params params_;
  ZipfSampler zipf_;
  bool measuring_ = false;
};

/// Wikipedia image-page trace twin.
class WikipediaWorkload final : public WorkloadGenerator {
 public:
  struct Params {
    std::uint64_t num_pages = 10000;
    /// Zipf exponent of page popularity (the trace is Zipf-like [47]).
    double page_zipf_exponent = 1.0;
    /// Images per page: bounded power law, median ~10.
    double images_alpha = 1.0;
    double images_min = 5;
    double images_max = 500;
    /// Image sizes: bounded power law, median ~500 KB.
    double size_alpha = 1.1;
    double size_min_bytes = 266 * 1024;
    double size_max_bytes = 20.0 * 1024 * 1024;
    std::uint64_t seed = 7;
  };

  explicit WikipediaWorkload(Params params);

  std::vector<BlockSpec> Blocks() const override { return blocks_; }
  std::vector<BlockId> NextRequest(Rng& rng) override;

  std::size_t num_pages() const { return pages_.size(); }
  const std::vector<BlockId>& page(std::size_t i) const { return pages_[i]; }

  /// Dataset statistics, for validating the distributional twin against
  /// the published medians.
  double MedianImagesPerPage() const;
  double MedianImageBytes() const;

 private:
  std::vector<std::vector<BlockId>> pages_;
  std::vector<BlockSpec> blocks_;
  ZipfSampler page_zipf_;
};

/// Diurnal/flash-crowd workload: request traffic alternates between a
/// quiet Zipf-scan baseline (the YCSB-E shape) and flash episodes where
/// `flash_fraction` of requests concentrate on a small hot set that
/// rotates every cycle. Phase is driven by a request counter rather than
/// wall/sim time so the pattern is identical across embodiments and
/// request rates; OnMeasurementStart resets the counter so the measured
/// window always begins at a cycle boundary.
class FlashCrowdWorkload final : public WorkloadGenerator {
 public:
  struct Params {
    std::uint64_t num_blocks = 10000;
    std::uint64_t block_bytes = 100 * 1024;
    /// Baseline scans: uniform length in [1, max_scan_length].
    std::uint32_t max_scan_length = 19;
    /// Baseline key popularity (quiet phase and the non-flash residue of
    /// flash phases).
    double zipf_exponent = 1.0;
    /// During a flash episode this fraction of requests targets the hot
    /// set; the rest keep the baseline distribution.
    double flash_fraction = 0.9;
    /// Size of the rotating hot set (contiguous block range).
    std::uint64_t hot_blocks = 16;
    /// Requests per full quiet+flash cycle.
    std::uint64_t period_requests = 4096;
    /// Fraction of each cycle spent in the flash episode.
    double flash_duty = 0.5;
  };

  explicit FlashCrowdWorkload(Params params);

  std::vector<BlockSpec> Blocks() const override;
  std::vector<BlockId> NextRequest(Rng& rng) override;
  void OnMeasurementStart() override {
    issued_.store(0, std::memory_order_relaxed);
  }

  /// True when request number `n` (0-based within a cycle-aligned phase)
  /// falls inside a flash episode — exposed so tests can assert the
  /// schedule without re-deriving it.
  bool IsFlashRequest(std::uint64_t n) const;
  /// First block of the hot set active during cycle `cycle`.
  std::uint64_t HotBase(std::uint64_t cycle) const;

 private:
  Params params_;
  ZipfSampler zipf_;
  /// Requests issued since construction or the last OnMeasurementStart.
  /// Atomic so threaded drivers may share one generator; in the DES the
  /// event loop serializes calls anyway.
  std::atomic<std::uint64_t> issued_{0};
};

}  // namespace ecstore
