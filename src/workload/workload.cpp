#include "workload/workload.h"

#include <algorithm>

namespace ecstore {

YcsbEWorkload::YcsbEWorkload(Params params)
    : params_(params), zipf_(params.num_blocks, params.zipf_exponent) {}

std::vector<BlockSpec> YcsbEWorkload::Blocks() const {
  std::vector<BlockSpec> blocks;
  blocks.reserve(params_.num_blocks);
  for (std::uint64_t i = 0; i < params_.num_blocks; ++i) {
    blocks.push_back({i, params_.block_bytes});
  }
  return blocks;
}

std::vector<BlockId> YcsbEWorkload::NextRequest(Rng& rng) {
  std::uint64_t start;
  if (!measuring_) {
    start = rng.NextBounded(params_.num_blocks);
  } else {
    // Power-law key choice. Rank 1 = hottest. Scrambling spreads hot
    // scan ranges across the keyspace (YCSB's hashed-key behaviour)
    // while keeping each scan contiguous.
    const std::uint64_t rank = zipf_.Sample(rng) - 1;
    if (params_.scramble) {
      // Multiplicative scramble modulo the keyspace (odd multiplier
      // gives a bijection on [0, 2^64), then reduce).
      start = (rank * 0x9E3779B97F4A7C15ULL) % params_.num_blocks;
    } else {
      start = rank;
    }
  }
  const std::uint32_t len =
      1 + static_cast<std::uint32_t>(rng.NextBounded(params_.max_scan_length));
  std::vector<BlockId> request;
  request.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    const std::uint64_t key = start + i;
    if (key >= params_.num_blocks) break;
    request.push_back(key);
  }
  return request;
}

// ---------------------------------------------------------------------------

WikipediaWorkload::WikipediaWorkload(Params params)
    : page_zipf_(params.num_pages, params.page_zipf_exponent) {
  Rng rng(params.seed);
  const BoundedParetoSampler images(params.images_alpha, params.images_min,
                                    params.images_max);
  const BoundedParetoSampler sizes(params.size_alpha, params.size_min_bytes,
                                   params.size_max_bytes);
  pages_.reserve(params.num_pages);
  BlockId next_id = 0;
  for (std::uint64_t p = 0; p < params.num_pages; ++p) {
    const std::uint64_t count = std::max<std::uint64_t>(1, images.SampleInt(rng));
    std::vector<BlockId> page;
    page.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t bytes = std::max<std::uint64_t>(1024, sizes.SampleInt(rng));
      page.push_back(next_id);
      blocks_.push_back({next_id, bytes});
      ++next_id;
    }
    pages_.push_back(std::move(page));
  }
}

std::vector<BlockId> WikipediaWorkload::NextRequest(Rng& rng) {
  const std::uint64_t page = page_zipf_.Sample(rng) - 1;
  return pages_[page];
}

double WikipediaWorkload::MedianImagesPerPage() const {
  std::vector<std::size_t> counts;
  counts.reserve(pages_.size());
  for (const auto& p : pages_) counts.push_back(p.size());
  std::nth_element(counts.begin(), counts.begin() + counts.size() / 2, counts.end());
  return static_cast<double>(counts[counts.size() / 2]);
}

double WikipediaWorkload::MedianImageBytes() const {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(blocks_.size());
  for (const auto& b : blocks_) sizes.push_back(b.bytes);
  std::nth_element(sizes.begin(), sizes.begin() + sizes.size() / 2, sizes.end());
  return static_cast<double>(sizes[sizes.size() / 2]);
}

// ---------------------------------------------------------------------------

FlashCrowdWorkload::FlashCrowdWorkload(Params params)
    : params_(params), zipf_(params.num_blocks, params.zipf_exponent) {
  if (params_.hot_blocks == 0) params_.hot_blocks = 1;
  if (params_.hot_blocks > params_.num_blocks) {
    params_.hot_blocks = params_.num_blocks;
  }
  if (params_.period_requests == 0) params_.period_requests = 1;
}

std::vector<BlockSpec> FlashCrowdWorkload::Blocks() const {
  std::vector<BlockSpec> blocks;
  blocks.reserve(params_.num_blocks);
  for (std::uint64_t i = 0; i < params_.num_blocks; ++i) {
    blocks.push_back({i, params_.block_bytes});
  }
  return blocks;
}

bool FlashCrowdWorkload::IsFlashRequest(std::uint64_t n) const {
  const std::uint64_t pos = n % params_.period_requests;
  const auto flash_len = static_cast<std::uint64_t>(
      params_.flash_duty * static_cast<double>(params_.period_requests));
  return pos < flash_len;
}

std::uint64_t FlashCrowdWorkload::HotBase(std::uint64_t cycle) const {
  // Multiplicative scramble keeps successive hot sets far apart in the
  // keyspace (and therefore on different placement footprints).
  return (cycle * 0x9E3779B97F4A7C15ULL) %
         (params_.num_blocks - params_.hot_blocks + 1);
}

std::vector<BlockId> FlashCrowdWorkload::NextRequest(Rng& rng) {
  const std::uint64_t n = issued_.fetch_add(1, std::memory_order_relaxed);
  if (IsFlashRequest(n) && rng.NextDouble() < params_.flash_fraction) {
    // Flash episode: a short read inside the cycle's hot set. Short scans
    // maximize per-block arrival concentration, which is what builds the
    // queue at the hot set's sites.
    const std::uint64_t base = HotBase(n / params_.period_requests);
    const std::uint64_t start = base + rng.NextBounded(params_.hot_blocks);
    const std::uint64_t max_len =
        std::min<std::uint64_t>(4, base + params_.hot_blocks - start);
    const std::uint64_t len = 1 + rng.NextBounded(max_len);
    std::vector<BlockId> request;
    request.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i) request.push_back(start + i);
    return request;
  }
  // Baseline: Zipf-ranked contiguous scan, the YCSB-E measurement shape.
  const std::uint64_t rank = zipf_.Sample(rng) - 1;
  const std::uint64_t start =
      (rank * 0x9E3779B97F4A7C15ULL) % params_.num_blocks;
  const std::uint32_t len =
      1 + static_cast<std::uint32_t>(rng.NextBounded(params_.max_scan_length));
  std::vector<BlockId> request;
  request.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    const std::uint64_t key = start + i;
    if (key >= params_.num_blocks) break;
    request.push_back(key);
  }
  return request;
}

}  // namespace ecstore
