#include "workload/workload.h"

#include <algorithm>

namespace ecstore {

YcsbEWorkload::YcsbEWorkload(Params params)
    : params_(params), zipf_(params.num_blocks, params.zipf_exponent) {}

std::vector<BlockSpec> YcsbEWorkload::Blocks() const {
  std::vector<BlockSpec> blocks;
  blocks.reserve(params_.num_blocks);
  for (std::uint64_t i = 0; i < params_.num_blocks; ++i) {
    blocks.push_back({i, params_.block_bytes});
  }
  return blocks;
}

std::vector<BlockId> YcsbEWorkload::NextRequest(Rng& rng) {
  std::uint64_t start;
  if (!measuring_) {
    start = rng.NextBounded(params_.num_blocks);
  } else {
    // Power-law key choice. Rank 1 = hottest. Scrambling spreads hot
    // scan ranges across the keyspace (YCSB's hashed-key behaviour)
    // while keeping each scan contiguous.
    const std::uint64_t rank = zipf_.Sample(rng) - 1;
    if (params_.scramble) {
      // Multiplicative scramble modulo the keyspace (odd multiplier
      // gives a bijection on [0, 2^64), then reduce).
      start = (rank * 0x9E3779B97F4A7C15ULL) % params_.num_blocks;
    } else {
      start = rank;
    }
  }
  const std::uint32_t len =
      1 + static_cast<std::uint32_t>(rng.NextBounded(params_.max_scan_length));
  std::vector<BlockId> request;
  request.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    const std::uint64_t key = start + i;
    if (key >= params_.num_blocks) break;
    request.push_back(key);
  }
  return request;
}

// ---------------------------------------------------------------------------

WikipediaWorkload::WikipediaWorkload(Params params)
    : page_zipf_(params.num_pages, params.page_zipf_exponent) {
  Rng rng(params.seed);
  const BoundedParetoSampler images(params.images_alpha, params.images_min,
                                    params.images_max);
  const BoundedParetoSampler sizes(params.size_alpha, params.size_min_bytes,
                                   params.size_max_bytes);
  pages_.reserve(params.num_pages);
  BlockId next_id = 0;
  for (std::uint64_t p = 0; p < params.num_pages; ++p) {
    const std::uint64_t count = std::max<std::uint64_t>(1, images.SampleInt(rng));
    std::vector<BlockId> page;
    page.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t bytes = std::max<std::uint64_t>(1024, sizes.SampleInt(rng));
      page.push_back(next_id);
      blocks_.push_back({next_id, bytes});
      ++next_id;
    }
    pages_.push_back(std::move(page));
  }
}

std::vector<BlockId> WikipediaWorkload::NextRequest(Rng& rng) {
  const std::uint64_t page = page_zipf_.Sample(rng) - 1;
  return pages_[page];
}

double WikipediaWorkload::MedianImagesPerPage() const {
  std::vector<std::size_t> counts;
  counts.reserve(pages_.size());
  for (const auto& p : pages_) counts.push_back(p.size());
  std::nth_element(counts.begin(), counts.begin() + counts.size() / 2, counts.end());
  return static_cast<double>(counts[counts.size() / 2]);
}

double WikipediaWorkload::MedianImageBytes() const {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(blocks_.size());
  for (const auto& b : blocks_) sizes.push_back(b.bytes);
  std::nth_element(sizes.begin(), sizes.begin() + sizes.size() / 2, sizes.end());
  return static_cast<double>(sizes[sizes.size() / 2]);
}

}  // namespace ecstore
