#include "stats/co_access.h"

#include <algorithm>
#include <cassert>

namespace ecstore {

CoAccessTracker::CoAccessTracker(std::size_t window) : window_(window) {
  assert(window_ > 0);
}

void CoAccessTracker::RecordRequest(std::span<const BlockId> blocks) {
  std::vector<BlockId> unique(blocks.begin(), blocks.end());
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  if (unique.empty()) return;

  Apply(unique, +1);
  requests_.push_back(std::move(unique));
  if (requests_.size() > window_) {
    Apply(requests_.front(), -1);
    requests_.pop_front();
  }
}

void CoAccessTracker::Apply(const std::vector<BlockId>& blocks, std::int64_t sign) {
  for (BlockId b : blocks) {
    if (sign > 0) {
      counts_[b] += 1;
    } else {
      auto it = counts_.find(b);
      assert(it != counts_.end() && it->second > 0);
      if (--it->second == 0) counts_.erase(it);
    }
  }
  for (std::size_t x = 0; x < blocks.size(); ++x) {
    for (std::size_t y = 0; y < blocks.size(); ++y) {
      if (x == y) continue;
      if (sign > 0) {
        co_counts_[blocks[x]][blocks[y]] += 1;
      } else {
        auto outer = co_counts_.find(blocks[x]);
        assert(outer != co_counts_.end());
        auto inner = outer->second.find(blocks[y]);
        assert(inner != outer->second.end() && inner->second > 0);
        if (--inner->second == 0) outer->second.erase(inner);
        if (outer->second.empty()) co_counts_.erase(outer);
      }
    }
  }
}

std::uint64_t CoAccessTracker::Count(BlockId b) const {
  const auto it = counts_.find(b);
  return it == counts_.end() ? 0 : it->second;
}

double CoAccessTracker::Lambda(BlockId b, BlockId i) const {
  const std::uint64_t cb = Count(b);
  if (cb == 0) return 0;
  const auto outer = co_counts_.find(b);
  if (outer == co_counts_.end()) return 0;
  const auto inner = outer->second.find(i);
  if (inner == outer->second.end()) return 0;
  return static_cast<double>(inner->second) / static_cast<double>(cb);
}

std::vector<CoAccessPartner> CoAccessTracker::Partners(
    BlockId b, std::size_t max_partners) const {
  std::vector<CoAccessPartner> out;
  const std::uint64_t cb = Count(b);
  if (cb == 0) return out;
  const auto outer = co_counts_.find(b);
  if (outer == co_counts_.end()) return out;
  out.reserve(outer->second.size());
  for (const auto& [partner, count] : outer->second) {
    out.push_back({partner, static_cast<double>(count) / static_cast<double>(cb)});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CoAccessPartner& a, const CoAccessPartner& c) {
                     return a.lambda > c.lambda;
                   });
  if (out.size() > max_partners) out.resize(max_partners);
  return out;
}

std::vector<BlockId> CoAccessTracker::SampleCandidateBlocks(
    Rng& rng, std::size_t count) const {
  std::vector<BlockId> ids;
  std::vector<double> weights;
  ids.reserve(counts_.size());
  weights.reserve(counts_.size());
  for (const auto& [block, c] : counts_) {
    ids.push_back(block);
    weights.push_back(static_cast<double>(c));
  }
  const auto picked = WeightedSampleWithoutReplacement(rng, weights, count);
  std::vector<BlockId> out;
  out.reserve(picked.size());
  for (std::size_t idx : picked) out.push_back(ids[idx]);
  return out;
}

std::vector<CoAccessPartner> CoAccessTracker::TopBlocks(std::size_t n) const {
  std::vector<CoAccessPartner> out;
  if (requests_.empty() || n == 0) return out;
  const double window = static_cast<double>(requests_.size());
  out.reserve(counts_.size());
  for (const auto& [block, count] : counts_) {
    out.push_back({block, static_cast<double>(count) / window});
  }
  // counts_ iterates ascending block id, so stable_sort leaves ties in
  // ascending-id order — deterministic promotion sweeps.
  std::stable_sort(out.begin(), out.end(),
                   [](const CoAccessPartner& a, const CoAccessPartner& b) {
                     return a.lambda > b.lambda;
                   });
  if (out.size() > n) out.resize(n);
  return out;
}

double CoAccessTracker::AccessFrequency(BlockId b) const {
  if (requests_.empty()) return 0;
  return static_cast<double>(Count(b)) / static_cast<double>(requests_.size());
}

std::size_t CoAccessTracker::ApproxMemoryBytes() const {
  // Window entries.
  std::size_t bytes = 0;
  for (const auto& q : requests_) {
    bytes += sizeof(q) + q.capacity() * sizeof(BlockId);
  }
  // Red-black tree nodes: payload + ~3 pointers + color word each.
  constexpr std::size_t kNodeOverhead = 4 * sizeof(void*);
  bytes += counts_.size() * (sizeof(std::pair<BlockId, std::uint64_t>) + kNodeOverhead);
  for (const auto& [block, partners] : co_counts_) {
    (void)block;
    bytes += sizeof(std::pair<BlockId, std::map<BlockId, std::uint64_t>>) + kNodeOverhead;
    bytes += partners.size() *
             (sizeof(std::pair<BlockId, std::uint64_t>) + kNodeOverhead);
  }
  return bytes;
}

}  // namespace ecstore
