// Load statistics service (paper Section V-A): ingests periodic per-site
// load reports (CPU utilization + I/O rate) and load-status probe round
// trips, and exposes
//   - omega(j): the scalar site-load value used by the mover (Eq. 6-7),
//   - o_j:     the dynamic site-access-overhead cost parameter (Eq. 1),
// both smoothed with an exponentially weighted moving average.
//
// The tail model (DESIGN.md §13) adds per-site service-time
// *distributions*: fixed-bin histograms of completed fetch service times
// fed from both embodiments' data planes, with cached scalar summaries
// (tail excess over the mean, variance, straggler fraction) that the
// planner's cost snapshot and the adaptive-δ policy read in O(1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"

namespace ecstore {

struct LoadTrackerParams {
  /// EWMA smoothing factor for report-derived load (0 < alpha <= 1).
  double load_alpha = 0.5;
  /// EWMA smoothing factor for probe RTT-derived o_j.
  double probe_alpha = 0.3;
  /// I/O rate that counts as "fully loaded" when combining CPU and I/O
  /// into the scalar omega (bytes/second). Roughly the disk's rate.
  double reference_io_bytes_per_sec = 140.0 * 1024 * 1024;
  /// o_j fallback before any probe completes (milliseconds).
  double initial_overhead_ms = 5.0;

  // --- Tail model (DESIGN.md §13). ---
  /// Service-time samples per rotation window. Estimates always read the
  /// merged previous+current window, so they cover between one and two
  /// windows of history and fully forget a load regime after two
  /// rotations — stale variance from a past flash crowd ages out.
  std::uint64_t latency_window = 1024;
  /// Quantile whose excess over the mean becomes the cached per-site
  /// tail-excess summary (the cost model's tail term input).
  double tail_quantile = 0.99;
  /// A sample counts as a straggler when it exceeds this multiple of the
  /// site's mean service time. 5x sits above the simulator's lognormal
  /// jitter body but below transient stalls and degraded sites.
  double straggler_multiple = 5.0;
  /// Recompute the cached scalar summaries every this many samples per
  /// site (the first sample always refreshes). Keeps histogram scans off
  /// the per-sample path.
  std::uint64_t latency_refresh_every = 32;
};

/// Tracks per-site load. Not internally synchronized: callers serialize
/// access. In the simulator the DES is single-threaded; in the threaded
/// embodiments the owning `ControlPlane` guards its tracker behind
/// `load_mu_` (a shared_mutex — exclusive for Record*, shared for reads;
/// see core/control_plane.h). LocalECStore's `meta_mu_` is only the
/// catalog writer lock and does NOT serialize tracker access.
class LoadTracker {
 public:
  LoadTracker(std::size_t num_sites, LoadTrackerParams params = {});

  std::size_t num_sites() const { return omega_.size(); }

  /// Ingests one periodic report from a site's storage service.
  void RecordReport(SiteId site, double cpu_utilization, double io_bytes_per_sec,
                    std::uint64_t chunk_count);

  /// Ingests one load-status probe round trip (milliseconds).
  void RecordProbe(SiteId site, double rtt_ms);

  /// Ingests one completed fetch's service time (milliseconds): queueing +
  /// media + transmit as observed by the data plane. Feeds the per-site
  /// distribution; scalar summaries refresh every
  /// `latency_refresh_every` samples.
  void RecordServiceTime(SiteId site, double service_ms);

  /// The scalar load omega(C, S_j): CPU utilization plus normalized I/O
  /// load, both in [0, ~1] so the sum is utilization-like.
  double Omega(SiteId site) const { return omega_[site]; }
  const std::vector<double>& OmegaVector() const { return omega_; }

  /// Mean load over the given sites (all sites when empty); the omega-bar
  /// of the load-balance factor.
  double MeanOmega() const;

  /// Load-balance factor Omega(C, S_j) = |1 - omega_j / mean| (paper's
  /// normalization). Returns 0 when the system is completely idle.
  double BalanceFactor(SiteId site) const;

  /// Dynamic per-site access overhead o_j in milliseconds.
  double OverheadMs(SiteId site) const { return overhead_ms_[site]; }
  const std::vector<double>& OverheadVector() const { return overhead_ms_; }
  double MeanOverheadMs() const;

  std::uint64_t chunk_count(SiteId site) const { return chunk_counts_[site]; }

  // --- Tail-model summaries (cached scalars; O(1) reads). ---

  /// max(0, p_tail − mean) of the site's service time in milliseconds:
  /// how much worse than its average the site gets at the configured tail
  /// quantile. 0 until samples arrive.
  double TailExcessMs(SiteId site) const { return tail_excess_ms_[site]; }
  const std::vector<double>& TailExcessVector() const { return tail_excess_ms_; }

  /// Mean / sample variance of the site's service time over the merged
  /// window (ms, ms^2).
  double LatencyMeanMs(SiteId site) const { return latency_mean_ms_[site]; }
  double LatencyVarianceMs2(SiteId site) const { return latency_var_ms2_[site]; }

  /// Fraction of the site's recent samples above straggler_multiple x its
  /// mean service time.
  double StragglerFraction(SiteId site) const { return straggler_frac_[site]; }

  /// Mean straggler fraction over the sites that have samples — the
  /// cluster-wide per-read straggler probability the adaptive-δ policy
  /// plugs into its binomial model. 0 on a quiet (or unobserved) cluster.
  double ClusterStragglerFraction() const { return cluster_straggler_frac_; }

  /// Lifetime service-time samples recorded for the site.
  std::uint64_t latency_samples(SiteId site) const {
    return latency_total_samples_[site];
  }

  /// Direct quantile query against the merged window (ms). Cold path —
  /// scans histogram buckets; tests and benches only.
  double LatencyQuantileMs(SiteId site, double q) const;

  /// The I/O normalization constant used to fold byte rates into omega;
  /// the chunk mover uses it to convert an estimated per-chunk byte rate
  /// into omega units when simulating a post-move load shift.
  double reference_io_bytes_per_sec() const { return params_.reference_io_bytes_per_sec; }

 private:
  /// Merged previous+current window histogram for one site.
  Histogram MergedWindow(SiteId site) const;
  /// Recomputes the cached scalar summaries for one site plus the
  /// cluster-wide straggler fraction.
  void RefreshSummaries(SiteId site);

  LoadTrackerParams params_;
  std::vector<double> omega_;
  std::vector<double> overhead_ms_;
  std::vector<std::uint64_t> chunk_counts_;
  std::vector<bool> probed_;

  // Tail model: two-window rotation per site (service times recorded in
  // microseconds for bucket resolution; summaries exposed in ms).
  std::vector<Histogram> latency_cur_;
  std::vector<Histogram> latency_prev_;
  std::vector<RunningStat> latency_stat_cur_;
  std::vector<RunningStat> latency_stat_prev_;
  std::vector<std::uint64_t> latency_total_samples_;
  std::vector<double> tail_excess_ms_;
  std::vector<double> latency_mean_ms_;
  std::vector<double> latency_var_ms2_;
  std::vector<double> straggler_frac_;
  double cluster_straggler_frac_ = 0.0;
};

}  // namespace ecstore
