// Load statistics service (paper Section V-A): ingests periodic per-site
// load reports (CPU utilization + I/O rate) and load-status probe round
// trips, and exposes
//   - omega(j): the scalar site-load value used by the mover (Eq. 6-7),
//   - o_j:     the dynamic site-access-overhead cost parameter (Eq. 1),
// both smoothed with an exponentially weighted moving average.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ecstore {

struct LoadTrackerParams {
  /// EWMA smoothing factor for report-derived load (0 < alpha <= 1).
  double load_alpha = 0.5;
  /// EWMA smoothing factor for probe RTT-derived o_j.
  double probe_alpha = 0.3;
  /// I/O rate that counts as "fully loaded" when combining CPU and I/O
  /// into the scalar omega (bytes/second). Roughly the disk's rate.
  double reference_io_bytes_per_sec = 140.0 * 1024 * 1024;
  /// o_j fallback before any probe completes (milliseconds).
  double initial_overhead_ms = 5.0;
};

/// Tracks per-site load. Not internally synchronized: the simulated
/// cluster is single-threaded, and LocalECStore serializes every access
/// under its metadata mutex (see core/local_store.h).
class LoadTracker {
 public:
  LoadTracker(std::size_t num_sites, LoadTrackerParams params = {});

  std::size_t num_sites() const { return omega_.size(); }

  /// Ingests one periodic report from a site's storage service.
  void RecordReport(SiteId site, double cpu_utilization, double io_bytes_per_sec,
                    std::uint64_t chunk_count);

  /// Ingests one load-status probe round trip (milliseconds).
  void RecordProbe(SiteId site, double rtt_ms);

  /// The scalar load omega(C, S_j): CPU utilization plus normalized I/O
  /// load, both in [0, ~1] so the sum is utilization-like.
  double Omega(SiteId site) const { return omega_[site]; }
  const std::vector<double>& OmegaVector() const { return omega_; }

  /// Mean load over the given sites (all sites when empty); the omega-bar
  /// of the load-balance factor.
  double MeanOmega() const;

  /// Load-balance factor Omega(C, S_j) = |1 - omega_j / mean| (paper's
  /// normalization). Returns 0 when the system is completely idle.
  double BalanceFactor(SiteId site) const;

  /// Dynamic per-site access overhead o_j in milliseconds.
  double OverheadMs(SiteId site) const { return overhead_ms_[site]; }
  const std::vector<double>& OverheadVector() const { return overhead_ms_; }
  double MeanOverheadMs() const;

  std::uint64_t chunk_count(SiteId site) const { return chunk_counts_[site]; }

  /// The I/O normalization constant used to fold byte rates into omega;
  /// the chunk mover uses it to convert an estimated per-chunk byte rate
  /// into omega units when simulating a post-move load shift.
  double reference_io_bytes_per_sec() const { return params_.reference_io_bytes_per_sec; }

 private:
  LoadTrackerParams params_;
  std::vector<double> omega_;
  std::vector<double> overhead_ms_;
  std::vector<std::uint64_t> chunk_counts_;
  std::vector<bool> probed_;
};

}  // namespace ecstore
