#include "stats/load_tracker.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ecstore {

LoadTracker::LoadTracker(std::size_t num_sites, LoadTrackerParams params)
    : params_(params),
      omega_(num_sites, 0.0),
      overhead_ms_(num_sites, params.initial_overhead_ms),
      chunk_counts_(num_sites, 0),
      probed_(num_sites, false) {
  if (num_sites == 0) throw std::invalid_argument("LoadTracker: need sites");
}

void LoadTracker::RecordReport(SiteId site, double cpu_utilization,
                               double io_bytes_per_sec, std::uint64_t chunk_count) {
  const double io_norm = io_bytes_per_sec / params_.reference_io_bytes_per_sec;
  const double instantaneous = std::max(0.0, cpu_utilization) + std::max(0.0, io_norm);
  omega_[site] = params_.load_alpha * instantaneous +
                 (1.0 - params_.load_alpha) * omega_[site];
  chunk_counts_[site] = chunk_count;
}

void LoadTracker::RecordProbe(SiteId site, double rtt_ms) {
  if (!probed_[site]) {
    overhead_ms_[site] = rtt_ms;
    probed_[site] = true;
    return;
  }
  overhead_ms_[site] = params_.probe_alpha * rtt_ms +
                       (1.0 - params_.probe_alpha) * overhead_ms_[site];
}

double LoadTracker::MeanOmega() const {
  return std::accumulate(omega_.begin(), omega_.end(), 0.0) /
         static_cast<double>(omega_.size());
}

double LoadTracker::BalanceFactor(SiteId site) const {
  const double mean = MeanOmega();
  if (mean <= 1e-12) return 0.0;
  return std::abs(1.0 - omega_[site] / mean);
}

double LoadTracker::MeanOverheadMs() const {
  return std::accumulate(overhead_ms_.begin(), overhead_ms_.end(), 0.0) /
         static_cast<double>(overhead_ms_.size());
}

}  // namespace ecstore
