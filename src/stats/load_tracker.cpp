#include "stats/load_tracker.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ecstore {

LoadTracker::LoadTracker(std::size_t num_sites, LoadTrackerParams params)
    : params_(params),
      omega_(num_sites, 0.0),
      overhead_ms_(num_sites, params.initial_overhead_ms),
      chunk_counts_(num_sites, 0),
      probed_(num_sites, false),
      latency_cur_(num_sites),
      latency_prev_(num_sites),
      latency_stat_cur_(num_sites),
      latency_stat_prev_(num_sites),
      latency_total_samples_(num_sites, 0),
      tail_excess_ms_(num_sites, 0.0),
      latency_mean_ms_(num_sites, 0.0),
      latency_var_ms2_(num_sites, 0.0),
      straggler_frac_(num_sites, 0.0) {
  if (num_sites == 0) throw std::invalid_argument("LoadTracker: need sites");
}

void LoadTracker::RecordReport(SiteId site, double cpu_utilization,
                               double io_bytes_per_sec, std::uint64_t chunk_count) {
  const double io_norm = io_bytes_per_sec / params_.reference_io_bytes_per_sec;
  const double instantaneous = std::max(0.0, cpu_utilization) + std::max(0.0, io_norm);
  omega_[site] = params_.load_alpha * instantaneous +
                 (1.0 - params_.load_alpha) * omega_[site];
  chunk_counts_[site] = chunk_count;
}

void LoadTracker::RecordProbe(SiteId site, double rtt_ms) {
  if (!probed_[site]) {
    overhead_ms_[site] = rtt_ms;
    probed_[site] = true;
    return;
  }
  overhead_ms_[site] = params_.probe_alpha * rtt_ms +
                       (1.0 - params_.probe_alpha) * overhead_ms_[site];
}

void LoadTracker::RecordServiceTime(SiteId site, double service_ms) {
  const double us = std::max(0.0, service_ms) * 1000.0;
  latency_cur_[site].Record(static_cast<std::int64_t>(std::llround(us)));
  latency_stat_cur_[site].Add(std::max(0.0, service_ms));
  const std::uint64_t n = ++latency_total_samples_[site];
  if (latency_cur_[site].count() >= params_.latency_window) {
    latency_prev_[site] = std::move(latency_cur_[site]);
    latency_cur_[site] = Histogram();
    latency_stat_prev_[site] = latency_stat_cur_[site];
    latency_stat_cur_[site] = RunningStat();
    RefreshSummaries(site);
    return;
  }
  if (n == 1 || params_.latency_refresh_every == 0 ||
      n % params_.latency_refresh_every == 0) {
    RefreshSummaries(site);
  }
}

Histogram LoadTracker::MergedWindow(SiteId site) const {
  Histogram merged = latency_prev_[site];
  merged.Merge(latency_cur_[site]);
  return merged;
}

void LoadTracker::RefreshSummaries(SiteId site) {
  const Histogram merged = MergedWindow(site);
  if (merged.count() == 0) {
    tail_excess_ms_[site] = 0.0;
    latency_mean_ms_[site] = 0.0;
    latency_var_ms2_[site] = 0.0;
    straggler_frac_[site] = 0.0;
  } else {
    const double mean_us = merged.Mean();
    const double tail_us =
        static_cast<double>(merged.Quantile(params_.tail_quantile));
    latency_mean_ms_[site] = mean_us / 1000.0;
    tail_excess_ms_[site] = std::max(0.0, (tail_us - mean_us) / 1000.0);
    RunningStat stat = latency_stat_prev_[site];
    stat.Merge(latency_stat_cur_[site]);
    latency_var_ms2_[site] = stat.Variance();
    const double threshold_us = params_.straggler_multiple * mean_us;
    straggler_frac_[site] = merged.FractionAbove(
        static_cast<std::int64_t>(std::llround(threshold_us)));
  }
  double sum = 0.0;
  std::size_t observed = 0;
  for (std::size_t j = 0; j < straggler_frac_.size(); ++j) {
    if (latency_total_samples_[j] > 0) {
      sum += straggler_frac_[j];
      ++observed;
    }
  }
  cluster_straggler_frac_ = observed ? sum / static_cast<double>(observed) : 0.0;
}

double LoadTracker::LatencyQuantileMs(SiteId site, double q) const {
  const Histogram merged = MergedWindow(site);
  if (merged.count() == 0) return 0.0;
  return static_cast<double>(merged.Quantile(q)) / 1000.0;
}

double LoadTracker::MeanOmega() const {
  return std::accumulate(omega_.begin(), omega_.end(), 0.0) /
         static_cast<double>(omega_.size());
}

double LoadTracker::BalanceFactor(SiteId site) const {
  const double mean = MeanOmega();
  if (mean <= 1e-12) return 0.0;
  return std::abs(1.0 - omega_[site] / mean);
}

double LoadTracker::MeanOverheadMs() const {
  return std::accumulate(overhead_ms_.begin(), overhead_ms_.end(), 0.0) /
         static_cast<double>(overhead_ms_.size());
}

}  // namespace ecstore
