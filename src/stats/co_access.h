// Co-access statistics over a sliding window of sampled requests
// (paper Section V-A): tracks the conditional likelihood
// lambda_{b,i} = P({B_b, B_i} subset Q | B_b in Q) used to weight the
// chunk mover's estimate of access-cost change (Eq. 5), and supplies the
// candidate-block sampling for Algorithm 1 line 1.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace ecstore {

/// A block co-accessed with some anchor block, with its likelihood.
struct CoAccessPartner {
  BlockId block = kInvalidBlock;
  double lambda = 0;  // P(partner in Q | anchor in Q)
};

/// Read-only view of co-access statistics — the exact subset the chunk
/// mover (Algorithm 1) consumes. Lets the sharded control plane
/// (DESIGN.md §10) hand the mover either one tracker directly (shards=1,
/// preserving the simulator's deterministic iteration) or a merged view
/// over per-shard trackers that locks the owning shard per call.
class CoAccessView {
 public:
  virtual ~CoAccessView() = default;

  /// lambda_{b,i}; zero if either block is unseen or never co-accessed.
  virtual double Lambda(BlockId b, BlockId i) const = 0;

  /// Co-access partners of `b` with positive lambda, most likely first.
  virtual std::vector<CoAccessPartner> Partners(BlockId b,
                                                std::size_t max_partners) const = 0;

  /// Samples up to `count` distinct candidates weighted by windowed
  /// access frequency (Algorithm 1 line 1).
  virtual std::vector<BlockId> SampleCandidateBlocks(Rng& rng,
                                                     std::size_t count) const = 0;

  /// Fraction of windowed requests containing `b`.
  virtual double AccessFrequency(BlockId b) const = 0;
};

/// Sliding-window co-access tracker. When a request leaves the window its
/// contribution is subtracted, so the statistics adapt to workload change
/// — the behaviour the paper's Fig. 4a timeline depends on.
///
/// Deterministic: iteration uses ordered maps so candidate sampling is
/// reproducible under a fixed seed.
class CoAccessTracker : public CoAccessView {
 public:
  /// `window` = number of most recent sampled requests retained
  /// (the paper used 5000).
  explicit CoAccessTracker(std::size_t window = 5000);

  /// Records one sampled multi-block request. Duplicate ids within one
  /// request are collapsed. Single-block requests still count toward
  /// block frequency (they just add no pairs).
  void RecordRequest(std::span<const BlockId> blocks);

  /// Number of windowed requests containing `b`.
  std::uint64_t Count(BlockId b) const;

  /// lambda_{b,i}; zero if either block is unseen or never co-accessed.
  double Lambda(BlockId b, BlockId i) const override;

  /// All co-access partners of `b` with positive lambda, most likely
  /// first, capped at `max_partners`.
  std::vector<CoAccessPartner> Partners(BlockId b,
                                        std::size_t max_partners = 16) const override;

  /// Probabilistically samples up to `count` distinct candidate blocks,
  /// weighted by windowed access frequency (Algorithm 1 line 1:
  /// "recently accessed blocks ... generated probabilistically based on
  /// access likelihood").
  std::vector<BlockId> SampleCandidateBlocks(Rng& rng, std::size_t count) const override;

  /// Fraction of windowed requests containing `b` (access likelihood).
  double AccessFrequency(BlockId b) const override;

  /// The `n` most frequently accessed blocks in the window, hottest
  /// first (ties: ascending block id). `lambda` carries the windowed
  /// access frequency — feeds the cache/promotion tier (DESIGN.md §12).
  std::vector<CoAccessPartner> TopBlocks(std::size_t n) const;

  std::size_t window() const { return window_; }
  std::size_t requests_in_window() const { return requests_.size(); }
  std::size_t distinct_blocks_tracked() const { return counts_.size(); }

  /// Rough heap footprint for the Table III resource-usage experiment.
  std::size_t ApproxMemoryBytes() const;

 private:
  void Apply(const std::vector<BlockId>& blocks, std::int64_t sign);

  std::size_t window_;
  std::deque<std::vector<BlockId>> requests_;
  std::map<BlockId, std::uint64_t> counts_;
  std::map<BlockId, std::map<BlockId, std::uint64_t>> co_counts_;
};

}  // namespace ecstore
