// Dynamic hybrid redundancy (DESIGN.md §12): per-block promotion of the
// hottest erasure-coded blocks to full replicas, and demotion back to the
// block's original codec family once it cools — the mover's movement
// round turns the R-vs-EC choice into a per-block dynamic decision under
// an explicit storage-overhead budget.
//
// The promoter is pure policy + budget bookkeeping: it decides *which*
// blocks change redundancy and accounts the extra bytes; the embodiment
// executes the catalog/data rewrite (decode k chunks, re-store as rep(r))
// inside its own movement round. Promotion state:
//
//     EC ──(freq ≥ promote_min_frequency, budget room)──▶ replicated
//     replicated ──(freq < demote_frequency)──▶ EC (original spec)
//
// The hysteresis gap between the two thresholds stops a block oscillating
// at a single cut-off. `replica_extra_bytes` is the promoted layout's
// byte cost over the original EC layout summed across promoted blocks; it
// never exceeds budget_bytes, which is what makes cached-vs-uncached
// benchmark comparisons equal-storage.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "common/codec_spec.h"
#include "common/types.h"

namespace ecstore {

struct PromoterStats {
  std::uint64_t blocks_promoted = 0;   // cumulative promotions
  std::uint64_t blocks_demoted = 0;    // cumulative demotions
  std::uint64_t replica_extra_bytes = 0;  // current extra storage in use
  std::uint64_t promoted_now = 0;      // blocks currently replicated
};

class ReplicaPromoter {
 public:
  struct Params {
    /// Storage-overhead budget in bytes; 0 disables promotion entirely.
    std::uint64_t budget_bytes = 0;
    /// Total copies a promoted block is replicated to (rep(copies - 1)).
    std::uint32_t replica_copies = 3;
    /// Access frequency (fraction of windowed requests) at or above which
    /// an EC block qualifies for promotion.
    double promote_min_frequency = 0.01;
    /// Frequency below which a promoted block demotes. Must sit below
    /// promote_min_frequency for hysteresis.
    double demote_frequency = 0.002;
    /// Cap on promotions per movement round — promotion shares the
    /// mover's bandwidth-limited rounds, so it ramps rather than bursts.
    std::size_t max_promotions_per_round = 4;
    /// Blocks larger than this never promote (0 = no size gate). A
    /// replica is read as ONE whole-block fetch from a single site,
    /// while EC reads k chunks in parallel — so promotion pays off for
    /// latency-bound small blocks (per-fetch overhead dominates) and
    /// *hurts* bandwidth-bound large ones, which keep their parallel
    /// EC fetch instead.
    std::uint64_t max_block_bytes = 0;
  };

  explicit ReplicaPromoter(Params params) : params_(params) {}

  ReplicaPromoter(const ReplicaPromoter&) = delete;
  ReplicaPromoter& operator=(const ReplicaPromoter&) = delete;

  bool enabled() const { return params_.budget_bytes > 0; }
  const Params& params() const { return params_; }

  /// The replicated layout's spec: 1 data copy + (copies - 1) extras.
  CodecSpec ReplicaSpec() const {
    return CodecSpec{CodecFamilyId::kReplication, 1,
                     params_.replica_copies - 1, 0};
  }

  /// True when `id` should promote this round: not already promoted,
  /// hot enough, within the size gate, and `extra_bytes` (replica layout
  /// cost minus the current EC layout cost) fits the remaining budget.
  /// `block_bytes = 0` skips the size gate (unit-test convenience).
  bool ShouldPromote(BlockId id, double frequency, std::uint64_t extra_bytes,
                     std::uint64_t block_bytes = 0) const;

  /// Commits a promotion the embodiment just executed.
  void RecordPromoted(BlockId id, const CodecSpec& original_spec,
                      std::uint64_t extra_bytes);

  bool IsPromoted(BlockId id) const;

  /// The original codec spec a promoted block demotes back to; nullopt
  /// when `id` is not currently promoted.
  std::optional<CodecSpec> OriginalSpec(BlockId id) const;

  /// Extra bytes the replicated layout costs over the block's current
  /// layout (never negative — a replica cheaper than the EC layout
  /// charges zero against the budget).
  static std::uint64_t ReplicaExtraBytes(std::uint64_t block_bytes,
                                         std::uint64_t current_stored_bytes,
                                         std::uint32_t copies) {
    const std::uint64_t replicated =
        static_cast<std::uint64_t>(copies) * block_bytes;
    return replicated > current_stored_bytes ? replicated - current_stored_bytes
                                             : 0;
  }

  /// Promoted blocks whose current frequency fell below the demote
  /// threshold, ascending block id (deterministic round order).
  std::vector<BlockId> SelectDemotions(
      const std::function<double(BlockId)>& frequency_of) const;

  /// Commits a demotion; returns the original codec spec to restore.
  /// Throws std::out_of_range if `id` was never promoted.
  CodecSpec RecordDemoted(BlockId id);

  PromoterStats Stats() const;

 private:
  struct Promoted {
    CodecSpec original_spec;
    std::uint64_t extra_bytes = 0;
  };

  const Params params_;
  mutable std::mutex mu_;
  std::map<BlockId, Promoted> promoted_;  // ordered: deterministic sweeps
  PromoterStats stats_;
};

}  // namespace ecstore
