#include "cache/block_cache.h"

namespace ecstore {

BlockCache::BlockCache(std::uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes) {}

void BlockCache::EraseLocked(BlockId id,
                             std::unordered_map<BlockId, Entry>::iterator it) {
  order_.erase(KeyOf(id, it->second));
  stats_.bytes -= it->second.bytes;
  entries_.erase(it);
}

bool BlockCache::Lookup(BlockId id, std::uint64_t live_version,
                        std::shared_ptr<const std::vector<std::uint8_t>>* out_data) {
  if (out_data != nullptr) out_data->reset();
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  if (it->second.version != live_version) {
    // Stale: the block was rewritten/moved/repaired since the fill. Drop
    // the entry so its bytes stop charging capacity.
    ++stats_.invalidations;
    ++stats_.misses;
    EraseLocked(id, it);
    return false;
  }
  ++stats_.hits;
  if (it->second.prefetched) {
    ++stats_.prefetch_hits;
    it->second.prefetched = false;  // count each warmed entry once
  }
  // Touch: refresh the LRU tie-break stamp within the entry's weight.
  order_.erase(KeyOf(id, it->second));
  it->second.seq = ++seq_;
  order_.insert(KeyOf(id, it->second));
  if (out_data != nullptr) *out_data = it->second.data;
  return true;
}

bool BlockCache::Insert(BlockId id,
                        std::shared_ptr<const std::vector<std::uint8_t>> data,
                        std::uint64_t bytes, std::uint64_t version, double weight,
                        bool prefetched) {
  if (bytes == 0 || bytes > capacity_bytes_) return false;
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(id);
  if (it != entries_.end()) EraseLocked(id, it);
  // λ-weighted admission: walk the eviction order coldest-first and check
  // that enough room can be freed using only entries no hotter than the
  // candidate. Reject — without evicting anything — when the candidate
  // would have to displace a strictly hotter resident.
  if (stats_.bytes + bytes > capacity_bytes_) {
    std::uint64_t reclaimable = capacity_bytes_ - stats_.bytes;
    auto it_order = order_.begin();
    while (reclaimable < bytes && it_order != order_.end() &&
           std::get<0>(*it_order) <= weight) {
      reclaimable += entries_.find(std::get<2>(*it_order))->second.bytes;
      ++it_order;
    }
    if (reclaimable < bytes) {
      ++stats_.admission_rejects;
      return false;
    }
    while (stats_.bytes + bytes > capacity_bytes_) {
      const BlockId victim_id = std::get<2>(*order_.begin());
      ++stats_.evictions;
      EraseLocked(victim_id, entries_.find(victim_id));
    }
  }
  Entry e;
  e.data = std::move(data);
  e.bytes = bytes;
  e.version = version;
  e.weight = weight;
  e.seq = ++seq_;
  e.prefetched = prefetched;
  order_.insert(KeyOf(id, e));
  stats_.bytes += bytes;
  entries_.emplace(id, std::move(e));
  return true;
}

void BlockCache::UpdateWeight(BlockId id, double weight) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end() || it->second.weight == weight) return;
  order_.erase(KeyOf(id, it->second));
  it->second.weight = weight;
  order_.insert(KeyOf(id, it->second));
}

bool BlockCache::Invalidate(BlockId id) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  ++stats_.invalidations;
  EraseLocked(id, it);
  return true;
}

void BlockCache::Clear() {
  std::lock_guard<std::mutex> lk(mu_);
  stats_.invalidations += entries_.size();
  stats_.bytes = 0;
  entries_.clear();
  order_.clear();
}

bool BlockCache::BeginPrefetch(BlockId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (entries_.count(id) != 0) return false;
  if (!inflight_prefetch_.insert(id).second) return false;
  ++stats_.prefetch_issued;
  return true;
}

void BlockCache::EndPrefetch(BlockId id) {
  std::lock_guard<std::mutex> lk(mu_);
  inflight_prefetch_.erase(id);
}

bool BlockCache::Contains(BlockId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.count(id) != 0;
}

std::size_t BlockCache::entries() const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.size();
}

std::uint64_t BlockCache::resident_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_.bytes;
}

BlockCacheStats BlockCache::Stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace ecstore
