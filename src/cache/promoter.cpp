#include "cache/promoter.h"

#include <stdexcept>

namespace ecstore {

bool ReplicaPromoter::ShouldPromote(BlockId id, double frequency,
                                    std::uint64_t extra_bytes,
                                    std::uint64_t block_bytes) const {
  if (!enabled() || frequency < params_.promote_min_frequency) return false;
  if (params_.max_block_bytes > 0 && block_bytes > params_.max_block_bytes) {
    return false;
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (promoted_.count(id) != 0) return false;
  return stats_.replica_extra_bytes + extra_bytes <= params_.budget_bytes;
}

void ReplicaPromoter::RecordPromoted(BlockId id, const CodecSpec& original_spec,
                                     std::uint64_t extra_bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  promoted_[id] = Promoted{original_spec, extra_bytes};
  stats_.replica_extra_bytes += extra_bytes;
  ++stats_.blocks_promoted;
  stats_.promoted_now = promoted_.size();
}

bool ReplicaPromoter::IsPromoted(BlockId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return promoted_.count(id) != 0;
}

std::optional<CodecSpec> ReplicaPromoter::OriginalSpec(BlockId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = promoted_.find(id);
  if (it == promoted_.end()) return std::nullopt;
  return it->second.original_spec;
}

std::vector<BlockId> ReplicaPromoter::SelectDemotions(
    const std::function<double(BlockId)>& frequency_of) const {
  std::vector<BlockId> out;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [id, p] : promoted_) {
    if (frequency_of(id) < params_.demote_frequency) out.push_back(id);
  }
  return out;
}

CodecSpec ReplicaPromoter::RecordDemoted(BlockId id) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = promoted_.find(id);
  if (it == promoted_.end()) {
    throw std::out_of_range("RecordDemoted: block was never promoted");
  }
  const CodecSpec spec = it->second.original_spec;
  stats_.replica_extra_bytes -= it->second.extra_bytes;
  ++stats_.blocks_demoted;
  promoted_.erase(it);
  stats_.promoted_now = promoted_.size();
  return spec;
}

PromoterStats ReplicaPromoter::Stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace ecstore
