// Latency-aware decoded-block cache (DESIGN.md §12): a bounded cache of
// whole decoded blocks sitting in front of MultiGet in both embodiments.
//
// Admission and eviction are λ-weighted, not plain LRU: every entry
// carries the stats service's access likelihood for its block, eviction
// removes the lowest-weight entry first (oldest-use breaks ties), and a
// candidate colder than the coldest resident entry is rejected outright —
// a one-shot scan cannot flush the hot set.
//
// Coherence is version-checked: entries record the block's ClusterState
// coherence version at fill time, and Lookup revalidates against the live
// version — a Put/Delete/move/repair/scrub rewrite bumps the version and
// the stale entry self-invalidates on its next touch. The ControlPlane's
// invalidation seam additionally evicts eagerly so stale bytes don't
// linger against the capacity budget.
//
// Thread-safety: every operation takes one internal mutex; handed-out
// block bytes are shared_ptr<const vector> so a hit survives concurrent
// invalidation. The in-flight prefetch set (Begin/EndPrefetch) shares the
// mutex, giving dedup between racing hits on the same anchor block.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace ecstore {

/// Counter snapshot for Usage() / --usage-json.
struct BlockCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;       // capacity evictions only
  std::uint64_t invalidations = 0;   // version-check or explicit evictions
  std::uint64_t admission_rejects = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_hits = 0;   // hits whose entry was prefetched
  std::uint64_t bytes = 0;           // resident decoded bytes right now
};

class BlockCache {
 public:
  /// A zero capacity constructs a valid cache that rejects every insert —
  /// embodiments can keep an unconditional member and stay disabled.
  explicit BlockCache(std::uint64_t capacity_bytes);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Hit iff the block is resident AND its fill-time version equals
  /// `live_version` (the catalog's current BlockVersion). A version
  /// mismatch erases the stale entry and reports a miss. The simulator
  /// embodiment caches metadata only — its entries carry null data, and a
  /// version-valid null-data entry still counts as a hit (out_data left
  /// null).
  bool Lookup(BlockId id, std::uint64_t live_version,
              std::shared_ptr<const std::vector<std::uint8_t>>* out_data);

  /// λ-weighted admission. `bytes` is the decoded size charged against
  /// capacity (data may be null for the metadata embodiment), `version`
  /// the catalog coherence version at fill time, `weight` the stats
  /// service's access likelihood. Evicts lowest-weight entries to make
  /// room, but refuses (returns false) when doing so would evict an entry
  /// strictly hotter than the candidate. Re-inserting a resident block
  /// replaces it (fresh bytes/version win).
  bool Insert(BlockId id, std::shared_ptr<const std::vector<std::uint8_t>> data,
              std::uint64_t bytes, std::uint64_t version, double weight,
              bool prefetched = false);

  /// Refreshes an entry's eviction weight as its λ drifts. No-op when the
  /// block is not resident.
  void UpdateWeight(BlockId id, double weight);

  /// Explicit eager eviction (the ControlPlane invalidation seam).
  /// Returns true if the block was resident.
  bool Invalidate(BlockId id);

  void Clear();

  /// Prefetch dedup: claims `id` for an in-flight prefetch. Returns false
  /// — do not issue — when the block is already resident or already being
  /// prefetched. A successful claim counts toward prefetch_issued and
  /// must be released with EndPrefetch (whether or not the fill landed).
  bool BeginPrefetch(BlockId id);
  void EndPrefetch(BlockId id);

  bool Contains(BlockId id) const;
  std::size_t entries() const;
  std::uint64_t resident_bytes() const;
  std::uint64_t capacity_bytes() const { return capacity_bytes_; }
  bool enabled() const { return capacity_bytes_ > 0; }

  BlockCacheStats Stats() const;

 private:
  struct Entry {
    std::shared_ptr<const std::vector<std::uint8_t>> data;
    std::uint64_t bytes = 0;
    std::uint64_t version = 0;
    double weight = 0;
    std::uint64_t seq = 0;  // last-touch stamp; LRU tie-break within a weight
    bool prefetched = false;
  };
  /// Eviction order: coldest weight first, then least recently touched.
  using EvictKey = std::tuple<double, std::uint64_t, BlockId>;

  EvictKey KeyOf(BlockId id, const Entry& e) const {
    return {e.weight, e.seq, id};
  }
  void EraseLocked(BlockId id, std::unordered_map<BlockId, Entry>::iterator it);

  const std::uint64_t capacity_bytes_;
  mutable std::mutex mu_;
  std::unordered_map<BlockId, Entry> entries_;
  std::set<EvictKey> order_;
  std::unordered_set<BlockId> inflight_prefetch_;
  std::uint64_t seq_ = 0;
  BlockCacheStats stats_;
};

}  // namespace ecstore
