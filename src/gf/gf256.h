// Galois-field GF(2^8) arithmetic, the substrate for Reed–Solomon coding.
//
// Replaces the paper's use of Jerasure/GF-Complete. Field is GF(2^8) with
// the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D), the same
// field used by most storage erasure-coding libraries. Addition is XOR;
// multiplication uses 256-entry log/exp tables built once at startup.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ecstore::gf {

/// Field element.
using Elem = std::uint8_t;

/// The field's primitive polynomial (without the x^8 term): 0x1D.
constexpr std::uint16_t kPrimitivePoly = 0x11D;

/// Adds two field elements (carry-less, so identical to subtraction).
constexpr Elem Add(Elem a, Elem b) { return a ^ b; }

/// Multiplies two field elements.
Elem Mul(Elem a, Elem b);

/// Divides a by b. b must be non-zero.
Elem Div(Elem a, Elem b);

/// Multiplicative inverse of a non-zero element.
Elem Inverse(Elem a);

/// a raised to the n-th power (n >= 0).
Elem Pow(Elem a, unsigned n);

/// Evaluates exp table: alpha^n where alpha = 2 is the field generator.
Elem Exp(unsigned n);

/// Discrete log base alpha of a non-zero element.
unsigned Log(Elem a);

/// dst[i] ^= c * src[i] for i in [0, n). The core inner loop of
/// Reed–Solomon encode/decode. Dispatches to the widest SIMD kernel the
/// CPU supports (see gf256_kernels.h); repeated use of the same constant
/// is faster through a precomputed MulTable + ActiveKernels().
void MulAddRegion(Elem c, std::span<const Elem> src, std::span<Elem> dst);

/// dst[i] = c * src[i] for i in [0, n).
void MulRegion(Elem c, std::span<const Elem> src, std::span<Elem> dst);

/// dst[i] ^= src[i] for i in [0, n).
void AddRegion(std::span<const Elem> src, std::span<Elem> dst);

/// Fused multi-source accumulate over one destination region:
///   dst[i] = (accumulate ? dst[i] : 0) ^ XOR_j consts[j] * srcs[j][i]
/// for i in [0, dst.size()). `srcs` holds consts.size() pointers, each to
/// at least dst.size() readable bytes; sources must not alias dst. One
/// fused pass replaces consts.size() full-region MulAddRegion passes.
void MulAddRegionMulti(std::span<const Elem> consts, const Elem* const* srcs,
                       std::span<Elem> dst, bool accumulate = true);

}  // namespace ecstore::gf
