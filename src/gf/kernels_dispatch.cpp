// Runtime kernel selection: pick the widest path the CPU supports, once,
// with an ECSTORE_GF_KERNEL env override and a programmatic override for
// tests. ECSTORE_HAVE_SSSE3 / ECSTORE_HAVE_AVX2 are defined by the build
// when the matching translation unit is compiled in.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "gf/gf256_kernels.h"
#include "gf/kernels_internal.h"

namespace ecstore::gf {

namespace {

bool CpuHas(const char* feature) {
#if defined(__x86_64__) || defined(__i386__)
  if (std::strcmp(feature, "ssse3") == 0) return __builtin_cpu_supports("ssse3");
  if (std::strcmp(feature, "avx2") == 0) return __builtin_cpu_supports("avx2");
  return false;
#else
  (void)feature;
  return false;
#endif
}

std::optional<KernelPath> ParsePathName(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return KernelPath::kScalar;
  if (std::strcmp(name, "ssse3") == 0) return KernelPath::kSsse3;
  if (std::strcmp(name, "avx2") == 0) return KernelPath::kAvx2;
  return std::nullopt;
}

const Kernels* Detect() {
  if (const char* env = std::getenv("ECSTORE_GF_KERNEL")) {
    const auto path = ParsePathName(env);
    const Kernels* k = path ? KernelsFor(*path) : nullptr;
    if (k) return k;
    std::fprintf(stderr,
                 "ecstore: ECSTORE_GF_KERNEL=%s is unknown or unsupported "
                 "on this CPU; auto-detecting\n",
                 env);
  }
  if (const Kernels* k = KernelsFor(KernelPath::kAvx2)) return k;
  if (const Kernels* k = KernelsFor(KernelPath::kSsse3)) return k;
  return &internal::ScalarKernels();
}

std::atomic<const Kernels*> g_forced{nullptr};
std::atomic<const Kernels*> g_detected{nullptr};

}  // namespace

bool CpuSupports(KernelPath p) {
  switch (p) {
    case KernelPath::kScalar:
      return true;
    case KernelPath::kSsse3:
#ifdef ECSTORE_HAVE_SSSE3
      return CpuHas("ssse3");
#else
      return false;
#endif
    case KernelPath::kAvx2:
#ifdef ECSTORE_HAVE_AVX2
      return CpuHas("avx2");
#else
      return false;
#endif
  }
  return false;
}

const Kernels* KernelsFor(KernelPath p) {
  if (!CpuSupports(p)) return nullptr;
  switch (p) {
    case KernelPath::kScalar:
      return &internal::ScalarKernels();
#ifdef ECSTORE_HAVE_SSSE3
    case KernelPath::kSsse3:
      return &internal::Ssse3Kernels();
#endif
#ifdef ECSTORE_HAVE_AVX2
    case KernelPath::kAvx2:
      return &internal::Avx2Kernels();
#endif
    default:
      return nullptr;
  }
}

const Kernels& ActiveKernels() {
  if (const Kernels* forced = g_forced.load(std::memory_order_acquire)) {
    return *forced;
  }
  const Kernels* k = g_detected.load(std::memory_order_acquire);
  if (!k) {
    k = Detect();
    g_detected.store(k, std::memory_order_release);
  }
  return *k;
}

bool ForceKernelPath(KernelPath p) {
  const Kernels* k = KernelsFor(p);
  if (!k) return false;
  g_forced.store(k, std::memory_order_release);
  return true;
}

void ResetKernelPath() { g_forced.store(nullptr, std::memory_order_release); }

}  // namespace ecstore::gf
