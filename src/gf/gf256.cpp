#include "gf/gf256.h"

#include <array>
#include <cassert>

namespace ecstore::gf {

namespace {

struct Tables {
  // exp_[i] = alpha^i for i in [0, 510) so Mul can skip a modulo.
  std::array<Elem, 512> exp_;
  std::array<unsigned, 256> log_;

  Tables() {
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp_[i] = static_cast<Elem>(x);
      log_[x] = i;
      x <<= 1;
      if (x & 0x100) x ^= kPrimitivePoly;
    }
    for (unsigned i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
    log_[0] = 0;  // Undefined; callers must not look it up.
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

Elem Mul(Elem a, Elem b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = T();
  return t.exp_[t.log_[a] + t.log_[b]];
}

Elem Div(Elem a, Elem b) {
  assert(b != 0);
  if (a == 0) return 0;
  const auto& t = T();
  return t.exp_[t.log_[a] + 255 - t.log_[b]];
}

Elem Inverse(Elem a) {
  assert(a != 0);
  const auto& t = T();
  return t.exp_[255 - t.log_[a]];
}

Elem Pow(Elem a, unsigned n) {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const auto& t = T();
  return t.exp_[(t.log_[a] * static_cast<unsigned long>(n)) % 255];
}

Elem Exp(unsigned n) { return T().exp_[n % 255]; }

unsigned Log(Elem a) {
  assert(a != 0);
  return T().log_[a];
}

void MulAddRegion(Elem c, std::span<const Elem> src, std::span<Elem> dst) {
  assert(dst.size() >= src.size());
  if (c == 0) return;
  if (c == 1) {
    AddRegion(src, dst);
    return;
  }
  // Build a product table for this constant: one multiply per distinct
  // byte value instead of one per data byte.
  const auto& t = T();
  const unsigned log_c = t.log_[c];
  std::array<Elem, 256> prod;
  prod[0] = 0;
  for (unsigned v = 1; v < 256; ++v) prod[v] = t.exp_[t.log_[v] + log_c];
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= prod[src[i]];
}

void MulRegion(Elem c, std::span<const Elem> src, std::span<Elem> dst) {
  assert(dst.size() >= src.size());
  const std::size_t n = src.size();
  if (c == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
    return;
  }
  const auto& t = T();
  const unsigned log_c = t.log_[c];
  std::array<Elem, 256> prod;
  prod[0] = 0;
  for (unsigned v = 1; v < 256; ++v) prod[v] = t.exp_[t.log_[v] + log_c];
  for (std::size_t i = 0; i < n; ++i) dst[i] = prod[src[i]];
}

void AddRegion(std::span<const Elem> src, std::span<Elem> dst) {
  assert(dst.size() >= src.size());
  const std::size_t n = src.size();
  std::size_t i = 0;
  // XOR eight bytes at a time; the compiler vectorizes the remainder.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    __builtin_memcpy(&a, src.data() + i, 8);
    __builtin_memcpy(&b, dst.data() + i, 8);
    b ^= a;
    __builtin_memcpy(dst.data() + i, &b, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

}  // namespace ecstore::gf
