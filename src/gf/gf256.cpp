#include "gf/gf256.h"

#include <array>
#include <cassert>
#include <cstring>
#include <vector>

#include "gf/gf256_kernels.h"

namespace ecstore::gf {

namespace {

struct Tables {
  // exp_[i] = alpha^i for i in [0, 510) so Mul can skip a modulo.
  std::array<Elem, 512> exp_;
  std::array<unsigned, 256> log_;

  Tables() {
    unsigned x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp_[i] = static_cast<Elem>(x);
      log_[x] = i;
      x <<= 1;
      if (x & 0x100) x ^= kPrimitivePoly;
    }
    for (unsigned i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
    log_[0] = 0;  // Undefined; callers must not look it up.
  }
};

const Tables& T() {
  static const Tables tables;
  return tables;
}

}  // namespace

Elem Mul(Elem a, Elem b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = T();
  return t.exp_[t.log_[a] + t.log_[b]];
}

Elem Div(Elem a, Elem b) {
  assert(b != 0);
  if (a == 0) return 0;
  const auto& t = T();
  return t.exp_[t.log_[a] + 255 - t.log_[b]];
}

Elem Inverse(Elem a) {
  assert(a != 0);
  const auto& t = T();
  return t.exp_[255 - t.log_[a]];
}

Elem Pow(Elem a, unsigned n) {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const auto& t = T();
  return t.exp_[(t.log_[a] * static_cast<unsigned long>(n)) % 255];
}

Elem Exp(unsigned n) { return T().exp_[n % 255]; }

unsigned Log(Elem a) {
  assert(a != 0);
  return T().log_[a];
}

void MulAddRegion(Elem c, std::span<const Elem> src, std::span<Elem> dst) {
  assert(dst.size() >= src.size());
  if (c == 0) return;
  if (c == 1) {
    AddRegion(src, dst);
    return;
  }
  MulTable t;
  BuildMulTable(c, t);
  ActiveKernels().mul_add(t, src.data(), dst.data(), src.size());
}

void MulRegion(Elem c, std::span<const Elem> src, std::span<Elem> dst) {
  assert(dst.size() >= src.size());
  const std::size_t n = src.size();
  if (c == 0) {
    std::memset(dst.data(), 0, n);
    return;
  }
  if (c == 1) {
    std::memcpy(dst.data(), src.data(), n);
    return;
  }
  MulTable t;
  BuildMulTable(c, t);
  ActiveKernels().mul(t, src.data(), dst.data(), n);
}

void AddRegion(std::span<const Elem> src, std::span<Elem> dst) {
  assert(dst.size() >= src.size());
  ActiveKernels().add(src.data(), dst.data(), src.size());
}

void MulAddRegionMulti(std::span<const Elem> consts, const Elem* const* srcs,
                       std::span<Elem> dst, bool accumulate) {
  std::vector<MulTable> tabs(consts.size());
  for (std::size_t j = 0; j < consts.size(); ++j) {
    BuildMulTable(consts[j], tabs[j]);
  }
  ActiveKernels().mul_add_multi(tabs.data(), srcs, consts.size(), dst.data(),
                                dst.size(), accumulate);
}

}  // namespace ecstore::gf
