// Vectorized GF(2^8) region kernels with runtime CPU dispatch.
//
// The hot loops of Reed–Solomon coding are region operations of the form
// dst[i] ^= c * src[i]. This layer provides three implementations of those
// loops — a portable 64-bit scalar path, an SSSE3 path, and an AVX2 path —
// selected once at startup via CPUID, plus fused multi-source variants
// (dst = Σ_j c_j * src_j) that walk all k sources per output strip so the
// destination stays in registers / L1 instead of being re-streamed k times.
//
// The SIMD paths use the split-nibble technique of GF-Complete / ISA-L:
// for a constant c, precompute two 16-entry tables
//   lo[x] = c * x         (x in 0..15, the low nibble)
//   hi[x] = c * (x << 4)  (x in 0..15, the high nibble)
// so that c * v = lo[v & 15] ^ hi[v >> 4] by distributivity. A 16-lane
// byte shuffle (PSHUFB / VPSHUFB) then evaluates 16 (or 32) products per
// instruction. All paths are bit-exact with the scalar reference.
//
// Path selection: ActiveKernels() picks the widest supported path. The
// environment variable ECSTORE_GF_KERNEL=scalar|ssse3|avx2 overrides the
// choice (for testing and for pinning benchmark runs); ForceKernelPath()
// does the same programmatically for in-process tests.
#pragma once

#include <cstddef>
#include <cstdint>

#include "gf/gf256.h"

namespace ecstore::gf {

/// Precomputed product tables for one constant. `lo`/`hi` are the
/// split-nibble tables consumed by the SIMD shuffles; `full` is the flat
/// 256-entry table used by the scalar path and by SIMD tail handling.
struct MulTable {
  alignas(16) Elem lo[16];
  alignas(16) Elem hi[16];
  Elem full[256];
  Elem c = 0;
};

/// Fills `t` with the product tables for constant `c` (any value,
/// including 0 and 1).
void BuildMulTable(Elem c, MulTable& t);

/// The dispatchable implementations, narrowest first.
enum class KernelPath { kScalar = 0, kSsse3 = 1, kAvx2 = 2 };

/// Human-readable path name ("scalar", "ssse3", "avx2").
const char* KernelPathName(KernelPath p);

/// One dispatch table of region kernels. `src` and `dst` must not alias
/// (all callers operate on distinct chunks).
struct Kernels {
  KernelPath path;
  const char* name;

  /// dst[i] ^= t.c * src[i] for i in [0, n).
  void (*mul_add)(const MulTable& t, const Elem* src, Elem* dst, std::size_t n);
  /// dst[i] = t.c * src[i] for i in [0, n).
  void (*mul)(const MulTable& t, const Elem* src, Elem* dst, std::size_t n);
  /// dst[i] ^= src[i] for i in [0, n).
  void (*add)(const Elem* src, Elem* dst, std::size_t n);
  /// Fused multi-source accumulate:
  ///   dst[i] = (accumulate ? dst[i] : 0) ^ XOR_j tabs[j].c * srcs[j][i]
  /// for i in [0, n). With accumulate=false the destination is written
  /// without ever being read, so a fresh parity buffer costs one pass.
  /// nsrc may be 0 (clears dst when accumulate=false, no-op otherwise).
  void (*mul_add_multi)(const MulTable* tabs, const Elem* const* srcs,
                        std::size_t nsrc, Elem* dst, std::size_t n,
                        bool accumulate);
};

/// True when the running CPU can execute the given path. kScalar is
/// always true; SIMD paths additionally require being compiled in
/// (x86 builds only).
bool CpuSupports(KernelPath p);

/// The dispatch table for a path, or nullptr when unsupported on this
/// CPU / not compiled into this binary.
const Kernels* KernelsFor(KernelPath p);

/// The active dispatch table: widest supported path, unless overridden by
/// ECSTORE_GF_KERNEL or ForceKernelPath(). Resolved once; subsequent
/// calls are a single atomic load.
const Kernels& ActiveKernels();

/// Forces the active path (tests/benchmarks). Returns false — leaving the
/// active path unchanged — when the path is unsupported here.
bool ForceKernelPath(KernelPath p);

/// Reverts ForceKernelPath(): back to CPUID detection + env override.
void ResetKernelPath();

}  // namespace ecstore::gf
