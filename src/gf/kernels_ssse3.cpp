// SSSE3 GF(2^8) region kernels: split-nibble tables evaluated with
// PSHUFB, 16 products per shuffle (two shuffles per 16-byte block).
// Compiled with -mssse3; only reachable through the dispatcher after a
// CPUID check.
#include "gf/gf256_kernels.h"
#include "gf/kernels_internal.h"

#ifdef __SSSE3__

#include <tmmintrin.h>

namespace ecstore::gf::internal {
namespace {

// c * v for 16 bytes: lo-table shuffled by the low nibbles XOR hi-table
// shuffled by the high nibbles.
inline __m128i MulBlock(__m128i lo, __m128i hi, __m128i mask, __m128i v) {
  const __m128i l = _mm_shuffle_epi8(lo, _mm_and_si128(v, mask));
  const __m128i h =
      _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(v, 4), mask));
  return _mm_xor_si128(l, h);
}

void MulAddSsse3(const MulTable& t, const Elem* src, Elem* dst,
                 std::size_t n) {
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i v0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i v1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    __m128i d0 = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    __m128i d1 = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i + 16));
    d0 = _mm_xor_si128(d0, MulBlock(lo, hi, mask, v0));
    d1 = _mm_xor_si128(d1, MulBlock(lo, hi, mask, v1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), d1);
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    d = _mm_xor_si128(d, MulBlock(lo, hi, mask, v));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  if (i < n) MulAddScalar(t, src + i, dst + i, n - i);
}

void MulSsse3(const MulTable& t, const Elem* src, Elem* dst, std::size_t n) {
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.lo));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.hi));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     MulBlock(lo, hi, mask, v));
  }
  if (i < n) MulScalar(t, src + i, dst + i, n - i);
}

void AddSsse3(const Elem* src, Elem* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m128i s0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i s1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + 16));
    const __m128i d0 = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
    const __m128i d1 =
        _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i + 16));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i),
                     _mm_xor_si128(d0, s0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16),
                     _mm_xor_si128(d1, s1));
  }
  if (i < n) AddScalar(src + i, dst + i, n - i);
}

void MulAddMultiSsse3(const MulTable* tabs, const Elem* const* srcs,
                      std::size_t nsrc, Elem* dst, std::size_t n,
                      bool accumulate) {
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  // The accumulator lives in registers across all sources: one
  // destination load/store per 32-byte block total, instead of one per
  // source.
  for (; i + 32 <= n; i += 32) {
    __m128i acc0, acc1;
    if (accumulate) {
      acc0 = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i));
      acc1 = _mm_loadu_si128(reinterpret_cast<__m128i*>(dst + i + 16));
    } else {
      acc0 = _mm_setzero_si128();
      acc1 = _mm_setzero_si128();
    }
    for (std::size_t j = 0; j < nsrc; ++j) {
      const __m128i lo =
          _mm_load_si128(reinterpret_cast<const __m128i*>(tabs[j].lo));
      const __m128i hi =
          _mm_load_si128(reinterpret_cast<const __m128i*>(tabs[j].hi));
      const Elem* s = srcs[j] + i;
      const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s));
      const __m128i v1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(s + 16));
      acc0 = _mm_xor_si128(acc0, MulBlock(lo, hi, mask, v0));
      acc1 = _mm_xor_si128(acc1, MulBlock(lo, hi, mask, v1));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), acc0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + 16), acc1);
  }
  for (; i < n; ++i) {
    Elem x = accumulate ? dst[i] : 0;
    for (std::size_t j = 0; j < nsrc; ++j) x ^= tabs[j].full[srcs[j][i]];
    dst[i] = x;
  }
}

}  // namespace

const Kernels& Ssse3Kernels() {
  static const Kernels k = {KernelPath::kSsse3, "ssse3",  &MulAddSsse3,
                            &MulSsse3,          &AddSsse3, &MulAddMultiSsse3};
  return k;
}

}  // namespace ecstore::gf::internal

#endif  // __SSSE3__
