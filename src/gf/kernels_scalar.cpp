// Portable scalar GF(2^8) region kernels: one table lookup + XOR per
// byte, with the per-constant table precomputed by the caller (the seed
// implementation rebuilt it on every call). Bit-exact reference for the
// SIMD paths, and the fallback on non-x86 hardware.
#include <algorithm>
#include <cstring>

#include "gf/gf256.h"
#include "gf/gf256_kernels.h"
#include "gf/kernels_internal.h"

namespace ecstore::gf {

void BuildMulTable(Elem c, MulTable& t) {
  t.c = c;
  for (unsigned x = 0; x < 16; ++x) {
    t.lo[x] = Mul(c, static_cast<Elem>(x));
    t.hi[x] = Mul(c, static_cast<Elem>(x << 4));
  }
  // c*(a ^ b) = c*a ^ c*b, so the full table is the nibble tables' sum.
  for (unsigned v = 0; v < 256; ++v) {
    t.full[v] = static_cast<Elem>(t.lo[v & 0x0f] ^ t.hi[v >> 4]);
  }
}

namespace internal {

void MulAddScalar(const MulTable& t, const Elem* src, Elem* dst,
                  std::size_t n) {
  const Elem* table = t.full;
  std::size_t i = 0;
  // Unroll by four so the address arithmetic overlaps the loads.
  for (; i + 4 <= n; i += 4) {
    dst[i] ^= table[src[i]];
    dst[i + 1] ^= table[src[i + 1]];
    dst[i + 2] ^= table[src[i + 2]];
    dst[i + 3] ^= table[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] ^= table[src[i]];
}

void MulScalar(const MulTable& t, const Elem* src, Elem* dst, std::size_t n) {
  const Elem* table = t.full;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    dst[i] = table[src[i]];
    dst[i + 1] = table[src[i + 1]];
    dst[i + 2] = table[src[i + 2]];
    dst[i + 3] = table[src[i + 3]];
  }
  for (; i < n; ++i) dst[i] = table[src[i]];
}

void AddScalar(const Elem* src, Elem* dst, std::size_t n) {
  std::size_t i = 0;
  // XOR eight bytes at a time through 64-bit registers.
  for (; i + 8 <= n; i += 8) {
    std::uint64_t a, b;
    std::memcpy(&a, src + i, 8);
    std::memcpy(&b, dst + i, 8);
    b ^= a;
    std::memcpy(dst + i, &b, 8);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void MulAddMultiScalar(const MulTable* tabs, const Elem* const* srcs,
                       std::size_t nsrc, Elem* dst, std::size_t n,
                       bool accumulate) {
  // Cache-blocked: walk an L1-sized strip of every source before moving
  // on, so the destination strip is written once per source from cache
  // instead of being re-streamed from memory k times.
  constexpr std::size_t kStrip = 8 * 1024;
  for (std::size_t base = 0; base < n; base += kStrip) {
    const std::size_t len = std::min(kStrip, n - base);
    Elem* d = dst + base;
    std::size_t j = 0;
    if (!accumulate) {
      if (nsrc == 0) {
        std::memset(d, 0, len);
        continue;
      }
      // First source overwrites: the fresh destination is never read.
      MulScalar(tabs[0], srcs[0] + base, d, len);
      j = 1;
    }
    for (; j < nsrc; ++j) MulAddScalar(tabs[j], srcs[j] + base, d, len);
  }
}

const Kernels& ScalarKernels() {
  static const Kernels k = {KernelPath::kScalar, "scalar", &MulAddScalar,
                            &MulScalar,          &AddScalar, &MulAddMultiScalar};
  return k;
}

}  // namespace internal

const char* KernelPathName(KernelPath p) {
  switch (p) {
    case KernelPath::kScalar:
      return "scalar";
    case KernelPath::kSsse3:
      return "ssse3";
    case KernelPath::kAvx2:
      return "avx2";
  }
  return "unknown";
}

}  // namespace ecstore::gf
