// Internal sharing between the per-ISA kernel translation units and the
// dispatcher. Not installed; include only from src/gf/*.cpp.
#pragma once

#include <cstddef>

#include "gf/gf256_kernels.h"

namespace ecstore::gf::internal {

// Portable scalar kernels (also used by the SIMD paths for short tails).
void MulAddScalar(const MulTable& t, const Elem* src, Elem* dst, std::size_t n);
void MulScalar(const MulTable& t, const Elem* src, Elem* dst, std::size_t n);
void AddScalar(const Elem* src, Elem* dst, std::size_t n);
void MulAddMultiScalar(const MulTable* tabs, const Elem* const* srcs,
                       std::size_t nsrc, Elem* dst, std::size_t n,
                       bool accumulate);

// Per-ISA dispatch tables. Defined only in builds where the matching
// translation unit is compiled (x86 with the flag available); the
// dispatcher references them behind ECSTORE_HAVE_* guards.
const Kernels& ScalarKernels();
const Kernels& Ssse3Kernels();
const Kernels& Avx2Kernels();

}  // namespace ecstore::gf::internal
