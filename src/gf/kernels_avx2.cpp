// AVX2 GF(2^8) region kernels: the split-nibble tables are broadcast to
// both 128-bit lanes so VPSHUFB evaluates 32 products per shuffle.
// Compiled with -mavx2; only reachable through the dispatcher after a
// CPUID check.
#include "gf/gf256_kernels.h"
#include "gf/kernels_internal.h"

#ifdef __AVX2__

#include <immintrin.h>

namespace ecstore::gf::internal {
namespace {

inline __m256i Broadcast16(const Elem* table16) {
  return _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(table16)));
}

// c * v for 32 bytes. VPSHUFB shuffles within each 128-bit lane, which is
// exactly right: both lanes hold the same 16-entry table.
inline __m256i MulBlock(__m256i lo, __m256i hi, __m256i mask, __m256i v) {
  const __m256i l = _mm256_shuffle_epi8(lo, _mm256_and_si256(v, mask));
  const __m256i h =
      _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(v, 4), mask));
  return _mm256_xor_si256(l, h);
}

void MulAddAvx2(const MulTable& t, const Elem* src, Elem* dst, std::size_t n) {
  const __m256i lo = Broadcast16(t.lo);
  const __m256i hi = Broadcast16(t.hi);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i v0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i v1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    __m256i d0 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    __m256i d1 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i + 32));
    d0 = _mm256_xor_si256(d0, MulBlock(lo, hi, mask, v0));
    d1 = _mm256_xor_si256(d1, MulBlock(lo, hi, mask, v1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), d1);
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    d = _mm256_xor_si256(d, MulBlock(lo, hi, mask, v));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  if (i < n) MulAddScalar(t, src + i, dst + i, n - i);
}

void MulAvx2(const MulTable& t, const Elem* src, Elem* dst, std::size_t n) {
  const __m256i lo = Broadcast16(t.lo);
  const __m256i hi = Broadcast16(t.hi);
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        MulBlock(lo, hi, mask, v));
  }
  if (i < n) MulScalar(t, src + i, dst + i, n - i);
}

void AddAvx2(const Elem* src, Elem* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i s0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
    const __m256i d0 =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
    const __m256i d1 =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d0, s0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                        _mm256_xor_si256(d1, s1));
  }
  if (i < n) AddScalar(src + i, dst + i, n - i);
}

void MulAddMultiAvx2(const MulTable* tabs, const Elem* const* srcs,
                     std::size_t nsrc, Elem* dst, std::size_t n,
                     bool accumulate) {
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  // 64-byte accumulator kept in registers across all k sources: the
  // destination is loaded/stored once per block, not once per source.
  for (; i + 64 <= n; i += 64) {
    __m256i acc0, acc1;
    if (accumulate) {
      acc0 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i));
      acc1 = _mm256_loadu_si256(reinterpret_cast<__m256i*>(dst + i + 32));
    } else {
      acc0 = _mm256_setzero_si256();
      acc1 = _mm256_setzero_si256();
    }
    for (std::size_t j = 0; j < nsrc; ++j) {
      const __m256i lo = Broadcast16(tabs[j].lo);
      const __m256i hi = Broadcast16(tabs[j].hi);
      const Elem* s = srcs[j] + i;
      const __m256i v0 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s));
      const __m256i v1 =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + 32));
      acc0 = _mm256_xor_si256(acc0, MulBlock(lo, hi, mask, v0));
      acc1 = _mm256_xor_si256(acc1, MulBlock(lo, hi, mask, v1));
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), acc0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), acc1);
  }
  for (; i < n; ++i) {
    Elem x = accumulate ? dst[i] : 0;
    for (std::size_t j = 0; j < nsrc; ++j) x ^= tabs[j].full[srcs[j][i]];
    dst[i] = x;
  }
}

}  // namespace

const Kernels& Avx2Kernels() {
  static const Kernels k = {KernelPath::kAvx2, "avx2",  &MulAddAvx2,
                            &MulAvx2,          &AddAvx2, &MulAddMultiAvx2};
  return k;
}

}  // namespace ecstore::gf::internal

#endif  // __AVX2__
