#include "gf/matrix.h"

#include <cassert>
#include <stdexcept>

namespace ecstore::gf {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0) {}

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.At(i, i) = 1;
  return m;
}

Matrix Matrix::SelectRows(const std::vector<std::size_t>& row_indices) const {
  Matrix out(row_indices.size(), cols_);
  for (std::size_t i = 0; i < row_indices.size(); ++i) {
    assert(row_indices[i] < rows_);
    for (std::size_t c = 0; c < cols_; ++c) out.At(i, c) = At(row_indices[i], c);
  }
  return out;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      const Elem a = At(i, j);
      if (a == 0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.At(i, c) = Add(out.At(i, c), Mul(a, other.At(j, c)));
      }
    }
  }
  return out;
}

bool Matrix::Invert() {
  assert(rows_ == cols_);
  const std::size_t n = rows_;
  Matrix aug = Identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot (any non-zero entry works in a field).
    std::size_t pivot = col;
    while (pivot < n && At(pivot, col) == 0) ++pivot;
    if (pivot == n) return false;  // Singular.
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(At(pivot, c), At(col, c));
        std::swap(aug.At(pivot, c), aug.At(col, c));
      }
    }
    // Scale the pivot row to make the pivot 1.
    const Elem inv = Inverse(At(col, col));
    for (std::size_t c = 0; c < n; ++c) {
      At(col, c) = Mul(At(col, c), inv);
      aug.At(col, c) = Mul(aug.At(col, c), inv);
    }
    // Eliminate the column from every other row.
    for (std::size_t row = 0; row < n; ++row) {
      if (row == col) continue;
      const Elem factor = At(row, col);
      if (factor == 0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        At(row, c) = Add(At(row, c), Mul(factor, At(col, c)));
        aug.At(row, c) = Add(aug.At(row, c), Mul(factor, aug.At(col, c)));
      }
    }
  }
  *this = aug;
  return true;
}

Matrix BuildSystematicCauchy(std::size_t k, std::size_t r) {
  if (k + r > 256) {
    throw std::invalid_argument("GF(2^8) Cauchy construction requires k + r <= 256");
  }
  Matrix m(k + r, k);
  for (std::size_t i = 0; i < k; ++i) m.At(i, i) = 1;
  // Disjoint evaluation points: x_i = i (for parity rows), y_j = r + j
  // (for data columns). x_i + y_j is never 0 because the sets are disjoint
  // (addition is XOR and all points are distinct 8-bit values).
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      const Elem x = static_cast<Elem>(i);
      const Elem y = static_cast<Elem>(r + j);
      m.At(k + i, j) = Inverse(Add(x, y));
    }
  }
  return m;
}

}  // namespace ecstore::gf
