// Dense matrices over GF(2^8) with Gauss–Jordan inversion, used to build
// and invert Reed–Solomon coding matrices.
#pragma once

#include <cstddef>
#include <vector>

#include "gf/gf256.h"

namespace ecstore::gf {

/// A rows x cols matrix of GF(2^8) elements, row-major.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);

  static Matrix Identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  Elem& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  Elem At(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Returns a new matrix containing only the given rows, in order.
  Matrix SelectRows(const std::vector<std::size_t>& row_indices) const;

  /// Matrix product; cols() must equal other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// Inverts a square matrix in place via Gauss–Jordan elimination.
  /// Returns false (leaving contents unspecified) if singular.
  bool Invert();

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<Elem> data_;
};

/// Builds the (k+r) x k Cauchy-style systematic coding matrix: the top
/// k rows are the identity (systematic data chunks) and the bottom r rows
/// are a Cauchy matrix with entries 1/(x_i + y_j), which guarantees that
/// every k x k submatrix is invertible — the MDS property Reed–Solomon
/// codes require (any k of k+r chunks reconstruct the block).
Matrix BuildSystematicCauchy(std::size_t k, std::size_t r);

}  // namespace ecstore::gf
