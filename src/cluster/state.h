// ClusterState: the system-state matrix C of the paper (Table I) — which
// block has a chunk on which site — plus per-site inventory aggregates.
//
// This is the shared data structure between the metadata service, the
// chunk read optimizer, and the chunk mover. It is a value-semantics
// catalog: no I/O, no timing; both the simulated cluster and the
// real-bytes LocalCluster embed one.
//
// Thread-safety (DESIGN.md §10): the block catalog is partitioned into
// fixed stripes (hash of block id -> stripe), each guarded by its own
// shared_mutex, so concurrent planners read metadata without serializing
// behind one lock while writers mutate other stripes in parallel. Site
// availability flags are atomics (readable from any thread). The per-site
// inventory aggregates (site_chunk_counts / site_bytes / total_bytes) are
// guarded for writes but returned by reference — read them only while
// catalog mutations are externally serialized (the embodiments' writer
// lock) or at quiescence. GetBlock returns a reference that stays valid
// only while the caller excludes RemoveBlock of that block; fully
// concurrent readers use ReadBlock, which copies under the stripe lock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/codec_spec.h"
#include "common/rng.h"
#include "common/types.h"

namespace ecstore {

/// Where one chunk of a block lives.
struct ChunkLocation {
  SiteId site = kInvalidSite;
  ChunkIndex chunk = 0;

  bool operator==(const ChunkLocation&) const = default;
};

/// Catalog entry for one block.
struct BlockInfo {
  std::uint32_t k = 0;            // chunks required to reconstruct
  std::uint32_t r = 0;            // parity / extra copies
  std::uint64_t block_bytes = 0;  // original block size
  std::uint64_t chunk_bytes = 0;  // z_i: size of each chunk
  CodecSpec codec;                // per-block codec family (DESIGN.md §11)
  /// Coherence version (DESIGN.md §12): seeded from the global mutation
  /// counter at AddBlock (so a delete + re-put incarnation never reuses a
  /// version) and bumped on every mutation that can change the block's
  /// bytes or layout — MoveChunk, catalog rewrite, and explicit
  /// BumpBlockVersion calls from repair/scrub rewrites. Block caches
  /// record it at fill time and re-validate on lookup.
  std::uint64_t version = 0;
  std::vector<ChunkLocation> locations;  // SpecTotalChunks(codec) entries
};

/// The state matrix C with c_{i,j} = 1 iff block i has a chunk at site j.
/// Enforces the paper's invariant that no two chunks of a block share a
/// site (which would void the r-fault-tolerance guarantee).
class ClusterState {
 public:
  explicit ClusterState(std::size_t num_sites);

  ClusterState(const ClusterState&) = delete;
  ClusterState& operator=(const ClusterState&) = delete;

  std::size_t num_sites() const { return num_sites_; }
  std::size_t num_blocks() const;

  /// Registers a block with chunks placed at `sites[i]` holding chunk
  /// index i. Throws std::invalid_argument on duplicate block id,
  /// duplicate sites, out-of-range sites, or wrong site count.
  /// This legacy overload infers the codec family: k == 1 means
  /// replication (r extra copies), otherwise RS(k, r).
  void AddBlock(BlockId id, std::uint64_t block_bytes, std::uint64_t chunk_bytes,
                std::uint32_t k, std::uint32_t r, std::span<const SiteId> sites);

  /// Spec-aware registration: `sites` must hold SpecTotalChunks(codec)
  /// entries; BlockInfo.k/r mirror the access-path view (k =
  /// SpecDataChunks, r = total - k) so existing consumers keep working.
  void AddBlock(BlockId id, std::uint64_t block_bytes, std::uint64_t chunk_bytes,
                const CodecSpec& codec, std::span<const SiteId> sites);

  /// Removes a block entirely. Returns false if unknown.
  bool RemoveBlock(BlockId id);

  /// Atomically swaps a block's codec and layout under its stripe lock —
  /// unlike RemoveBlock + AddBlock, the id never vanishes from the
  /// catalog, so a concurrent reader always resolves to either the old
  /// or the new layout, never to "unknown block". Bumps the coherence
  /// version. Used by the hybrid-redundancy rewrites (DESIGN.md §12),
  /// which write the new chunks before calling this and retire the old
  /// ones after. Returns false if the block is unknown; validates
  /// `sites` like AddBlock.
  bool ReplaceBlock(BlockId id, std::uint64_t block_bytes,
                    std::uint64_t chunk_bytes, const CodecSpec& codec,
                    std::span<const SiteId> sites);

  bool Contains(BlockId id) const;

  /// Catalog lookup; throws std::out_of_range for unknown blocks. The
  /// returned reference is stable across concurrent AddBlock (node-based
  /// map) but dies with RemoveBlock of this block — callers must hold the
  /// embodiment's writer serialization or be single-threaded.
  const BlockInfo& GetBlock(BlockId id) const;

  /// Fully concurrent catalog read: copies the entry under the stripe
  /// lock. Returns false when the block is unknown.
  bool ReadBlock(BlockId id, BlockInfo* out) const;

  /// True iff block `id` has a chunk at `site` (c_{i,j} = 1).
  bool HasChunkAt(BlockId id, SiteId site) const;

  /// Moves block `id`'s chunk from `from` to `to`. The chunk keeps its
  /// chunk index (its coded content is unchanged by relocation).
  /// Returns false without changes if `from` holds no chunk of the block
  /// or `to` already holds one (fault-tolerance invariant).
  bool MoveChunk(BlockId id, SiteId from, SiteId to);

  /// Number of chunks stored at each site. See the thread-safety note at
  /// the top: valid only under external writer serialization/quiescence.
  const std::vector<std::uint64_t>& site_chunk_counts() const { return site_chunks_; }

  /// Bytes stored at each site (same caveat as site_chunk_counts).
  const std::vector<std::uint64_t>& site_bytes() const { return site_bytes_; }

  /// Total bytes stored across sites (the storage-overhead metric).
  std::uint64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }

  /// Site availability for failure experiments (Section VI-C4). Failed
  /// sites keep their inventory; reads route around them. Atomic: safe
  /// against concurrent planners.
  void SetSiteAvailable(SiteId site, bool available);
  bool IsSiteAvailable(SiteId site) const {
    return available_[site].load(std::memory_order_acquire);
  }
  std::size_t num_available_sites() const;

  /// Locations of a block restricted to available sites.
  std::vector<ChunkLocation> AvailableLocations(BlockId id) const;

  /// Ids of all blocks holding a chunk at `site`, sorted ascending (used
  /// by the repair service to enumerate what a dead site lost).
  std::vector<BlockId> BlocksWithChunkAt(SiteId site) const;

  /// Picks `count` distinct sites uniformly at random — the random
  /// placement baseline the paper compares against [38].
  std::vector<SiteId> PickRandomSites(Rng& rng, std::size_t count) const;

  /// Monotone counter bumped on every mutation; used by plan caches to
  /// detect staleness cheaply.
  std::uint64_t version() const {
    return version_.load(std::memory_order_relaxed);
  }

  /// Per-block coherence version (DESIGN.md §12): cheap read under the
  /// stripe's shared lock. Returns 0 for unknown blocks — caches treat 0
  /// as "gone, invalidate".
  std::uint64_t BlockVersion(BlockId id) const;

  /// Bumps a block's coherence version without changing its layout — for
  /// in-place rewrites (repair/scrub re-encoding a chunk) that change the
  /// chunk's bytes at a site without moving it. Returns false if the
  /// block is unknown.
  bool BumpBlockVersion(BlockId id);

 private:
  // Catalog stripe count. Fixed and independent of the control-plane
  // shard count: stripes only bound lock contention on the block map.
  static constexpr std::size_t kStripes = 64;

  struct Stripe {
    mutable std::shared_mutex mu;
    std::unordered_map<BlockId, BlockInfo> blocks;
  };

  Stripe& StripeOf(BlockId id) { return stripes_[StripeIndex(id)]; }
  const Stripe& StripeOf(BlockId id) const { return stripes_[StripeIndex(id)]; }
  static std::size_t StripeIndex(BlockId id) {
    // Fibonacci multiplicative mix: sequential block ids (the common
    // loader pattern) spread across stripes instead of clustering.
    return static_cast<std::size_t>((id * 0x9E3779B97F4A7C15ULL) >> 48) %
           kStripes;
  }

  std::size_t num_sites_;
  std::array<Stripe, kStripes> stripes_;
  // Guards the per-site inventory aggregates below against concurrent
  // writers on different stripes (readers: see the header note).
  mutable std::mutex agg_mu_;
  std::vector<std::uint64_t> site_chunks_;
  std::vector<std::uint64_t> site_bytes_;
  std::unique_ptr<std::atomic<bool>[]> available_;
  std::atomic<std::uint64_t> total_bytes_{0};
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace ecstore
