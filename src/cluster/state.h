// ClusterState: the system-state matrix C of the paper (Table I) — which
// block has a chunk on which site — plus per-site inventory aggregates.
//
// This is the shared data structure between the metadata service, the
// chunk read optimizer, and the chunk mover. It is a value-semantics
// catalog: no I/O, no timing; both the simulated cluster and the
// real-bytes LocalCluster embed one.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace ecstore {

/// Where one chunk of a block lives.
struct ChunkLocation {
  SiteId site = kInvalidSite;
  ChunkIndex chunk = 0;

  bool operator==(const ChunkLocation&) const = default;
};

/// Catalog entry for one block.
struct BlockInfo {
  std::uint32_t k = 0;            // chunks required to reconstruct
  std::uint32_t r = 0;            // parity / extra copies
  std::uint64_t block_bytes = 0;  // original block size
  std::uint64_t chunk_bytes = 0;  // z_i: size of each chunk
  std::vector<ChunkLocation> locations;  // exactly k + r entries
};

/// The state matrix C with c_{i,j} = 1 iff block i has a chunk at site j.
/// Enforces the paper's invariant that no two chunks of a block share a
/// site (which would void the r-fault-tolerance guarantee).
class ClusterState {
 public:
  explicit ClusterState(std::size_t num_sites);

  std::size_t num_sites() const { return num_sites_; }
  std::size_t num_blocks() const { return blocks_.size(); }

  /// Registers a block with chunks placed at `sites[i]` holding chunk
  /// index i. Throws std::invalid_argument on duplicate block id,
  /// duplicate sites, out-of-range sites, or wrong site count.
  void AddBlock(BlockId id, std::uint64_t block_bytes, std::uint64_t chunk_bytes,
                std::uint32_t k, std::uint32_t r, std::span<const SiteId> sites);

  /// Removes a block entirely. Returns false if unknown.
  bool RemoveBlock(BlockId id);

  bool Contains(BlockId id) const { return blocks_.count(id) > 0; }

  /// Catalog lookup; throws std::out_of_range for unknown blocks.
  const BlockInfo& GetBlock(BlockId id) const;

  /// True iff block `id` has a chunk at `site` (c_{i,j} = 1).
  bool HasChunkAt(BlockId id, SiteId site) const;

  /// Moves block `id`'s chunk from `from` to `to`. The chunk keeps its
  /// chunk index (its coded content is unchanged by relocation).
  /// Returns false without changes if `from` holds no chunk of the block
  /// or `to` already holds one (fault-tolerance invariant).
  bool MoveChunk(BlockId id, SiteId from, SiteId to);

  /// Number of chunks stored at each site.
  const std::vector<std::uint64_t>& site_chunk_counts() const { return site_chunks_; }

  /// Bytes stored at each site.
  const std::vector<std::uint64_t>& site_bytes() const { return site_bytes_; }

  /// Total bytes stored across sites (the storage-overhead metric).
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Site availability for failure experiments (Section VI-C4). Failed
  /// sites keep their inventory; reads route around them.
  void SetSiteAvailable(SiteId site, bool available);
  bool IsSiteAvailable(SiteId site) const { return available_[site]; }
  std::size_t num_available_sites() const;

  /// Locations of a block restricted to available sites.
  std::vector<ChunkLocation> AvailableLocations(BlockId id) const;

  /// Ids of all blocks holding a chunk at `site`, sorted ascending (used
  /// by the repair service to enumerate what a dead site lost).
  std::vector<BlockId> BlocksWithChunkAt(SiteId site) const;

  /// Picks `count` distinct sites uniformly at random — the random
  /// placement baseline the paper compares against [38].
  std::vector<SiteId> PickRandomSites(Rng& rng, std::size_t count) const;

  /// Monotone counter bumped on every mutation; used by plan caches to
  /// detect staleness cheaply.
  std::uint64_t version() const { return version_; }

 private:
  std::size_t num_sites_;
  std::unordered_map<BlockId, BlockInfo> blocks_;
  std::vector<std::uint64_t> site_chunks_;
  std::vector<std::uint64_t> site_bytes_;
  std::vector<bool> available_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace ecstore
