#include "cluster/state.h"

#include <algorithm>
#include <stdexcept>

namespace ecstore {

ClusterState::ClusterState(std::size_t num_sites)
    : num_sites_(num_sites),
      site_chunks_(num_sites, 0),
      site_bytes_(num_sites, 0),
      available_(new std::atomic<bool>[num_sites]) {
  if (num_sites == 0) throw std::invalid_argument("ClusterState: need at least one site");
  for (std::size_t i = 0; i < num_sites; ++i) {
    available_[i].store(true, std::memory_order_relaxed);
  }
}

std::size_t ClusterState::num_blocks() const {
  std::size_t n = 0;
  for (const auto& stripe : stripes_) {
    std::shared_lock lk(stripe.mu);
    n += stripe.blocks.size();
  }
  return n;
}

void ClusterState::AddBlock(BlockId id, std::uint64_t block_bytes,
                            std::uint64_t chunk_bytes, std::uint32_t k,
                            std::uint32_t r, std::span<const SiteId> sites) {
  // Legacy callers predate per-block codec families: k == 1 has always
  // meant replication, anything else RS(k, r).
  const CodecSpec codec = k == 1
                              ? CodecSpec{CodecFamilyId::kReplication, 1, r, 0}
                              : CodecSpec{CodecFamilyId::kRs, k, r, 0};
  AddBlock(id, block_bytes, chunk_bytes, codec, sites);
}

void ClusterState::AddBlock(BlockId id, std::uint64_t block_bytes,
                            std::uint64_t chunk_bytes, const CodecSpec& codec,
                            std::span<const SiteId> sites) {
  const std::uint32_t total = SpecTotalChunks(codec);
  const std::uint32_t k = SpecDataChunks(codec);
  const std::uint32_t r = total - k;
  if (sites.size() != total) {
    throw std::invalid_argument("AddBlock: need exactly k + r sites");
  }
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i] >= num_sites_) throw std::invalid_argument("AddBlock: site out of range");
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      if (sites[i] == sites[j]) {
        throw std::invalid_argument("AddBlock: duplicate site violates fault tolerance");
      }
    }
  }
  BlockInfo info;
  info.k = k;
  info.r = r;
  info.block_bytes = block_bytes;
  info.chunk_bytes = chunk_bytes;
  info.codec = codec;
  // Seed the block's coherence version from the global mutation counter:
  // monotone across the catalog, so a deleted-then-re-added block id gets
  // a fresh version and stale cache entries can never validate.
  info.version = version_.fetch_add(1, std::memory_order_relaxed) + 1;
  info.locations.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    info.locations.push_back({sites[i], static_cast<ChunkIndex>(i)});
  }
  {
    Stripe& stripe = StripeOf(id);
    std::unique_lock lk(stripe.mu);
    if (!stripe.blocks.emplace(id, std::move(info)).second) {
      throw std::invalid_argument("AddBlock: duplicate block id");
    }
  }
  {
    std::lock_guard<std::mutex> lk(agg_mu_);
    for (const SiteId s : sites) {
      site_chunks_[s] += 1;
      site_bytes_[s] += chunk_bytes;
    }
  }
  total_bytes_.fetch_add(chunk_bytes * sites.size(), std::memory_order_relaxed);
}

bool ClusterState::RemoveBlock(BlockId id) {
  BlockInfo removed;
  {
    Stripe& stripe = StripeOf(id);
    std::unique_lock lk(stripe.mu);
    const auto it = stripe.blocks.find(id);
    if (it == stripe.blocks.end()) return false;
    removed = std::move(it->second);
    stripe.blocks.erase(it);
  }
  {
    std::lock_guard<std::mutex> lk(agg_mu_);
    for (const auto& loc : removed.locations) {
      site_chunks_[loc.site] -= 1;
      site_bytes_[loc.site] -= removed.chunk_bytes;
    }
  }
  total_bytes_.fetch_sub(removed.chunk_bytes * removed.locations.size(),
                         std::memory_order_relaxed);
  version_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ClusterState::ReplaceBlock(BlockId id, std::uint64_t block_bytes,
                                std::uint64_t chunk_bytes,
                                const CodecSpec& codec,
                                std::span<const SiteId> sites) {
  const std::uint32_t total = SpecTotalChunks(codec);
  const std::uint32_t k = SpecDataChunks(codec);
  if (sites.size() != total) {
    throw std::invalid_argument("ReplaceBlock: need exactly k + r sites");
  }
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i] >= num_sites_) {
      throw std::invalid_argument("ReplaceBlock: site out of range");
    }
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      if (sites[i] == sites[j]) {
        throw std::invalid_argument(
            "ReplaceBlock: duplicate site violates fault tolerance");
      }
    }
  }
  std::vector<ChunkLocation> old_locations;
  std::uint64_t old_chunk_bytes = 0;
  {
    Stripe& stripe = StripeOf(id);
    std::unique_lock lk(stripe.mu);
    const auto it = stripe.blocks.find(id);
    if (it == stripe.blocks.end()) return false;
    BlockInfo& info = it->second;
    old_locations = std::move(info.locations);
    old_chunk_bytes = info.chunk_bytes;
    info.k = k;
    info.r = total - k;
    info.block_bytes = block_bytes;
    info.chunk_bytes = chunk_bytes;
    info.codec = codec;
    info.version = version_.fetch_add(1, std::memory_order_relaxed) + 1;
    info.locations.clear();
    info.locations.reserve(sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i) {
      info.locations.push_back({sites[i], static_cast<ChunkIndex>(i)});
    }
  }
  {
    std::lock_guard<std::mutex> lk(agg_mu_);
    for (const auto& loc : old_locations) {
      site_chunks_[loc.site] -= 1;
      site_bytes_[loc.site] -= old_chunk_bytes;
    }
    for (const SiteId s : sites) {
      site_chunks_[s] += 1;
      site_bytes_[s] += chunk_bytes;
    }
  }
  total_bytes_.fetch_add(chunk_bytes * sites.size(), std::memory_order_relaxed);
  total_bytes_.fetch_sub(old_chunk_bytes * old_locations.size(),
                         std::memory_order_relaxed);
  return true;
}

bool ClusterState::Contains(BlockId id) const {
  const Stripe& stripe = StripeOf(id);
  std::shared_lock lk(stripe.mu);
  return stripe.blocks.count(id) != 0;
}

const BlockInfo& ClusterState::GetBlock(BlockId id) const {
  const Stripe& stripe = StripeOf(id);
  std::shared_lock lk(stripe.mu);
  const auto it = stripe.blocks.find(id);
  if (it == stripe.blocks.end()) throw std::out_of_range("GetBlock: unknown block");
  return it->second;
}

bool ClusterState::ReadBlock(BlockId id, BlockInfo* out) const {
  const Stripe& stripe = StripeOf(id);
  std::shared_lock lk(stripe.mu);
  const auto it = stripe.blocks.find(id);
  if (it == stripe.blocks.end()) return false;
  *out = it->second;
  return true;
}

bool ClusterState::HasChunkAt(BlockId id, SiteId site) const {
  const Stripe& stripe = StripeOf(id);
  std::shared_lock lk(stripe.mu);
  const auto it = stripe.blocks.find(id);
  if (it == stripe.blocks.end()) return false;
  return std::any_of(it->second.locations.begin(), it->second.locations.end(),
                     [site](const ChunkLocation& l) { return l.site == site; });
}

bool ClusterState::MoveChunk(BlockId id, SiteId from, SiteId to) {
  if (from >= num_sites_ || to >= num_sites_ || from == to) return false;
  std::uint64_t chunk_bytes = 0;
  {
    Stripe& stripe = StripeOf(id);
    std::unique_lock lk(stripe.mu);
    const auto it = stripe.blocks.find(id);
    if (it == stripe.blocks.end()) return false;
    auto& locs = it->second.locations;
    const auto src = std::find_if(locs.begin(), locs.end(),
                                  [from](const ChunkLocation& l) { return l.site == from; });
    if (src == locs.end()) return false;
    const bool dst_taken =
        std::any_of(locs.begin(), locs.end(),
                    [to](const ChunkLocation& l) { return l.site == to; });
    if (dst_taken) return false;
    src->site = to;
    chunk_bytes = it->second.chunk_bytes;
    it->second.version = version_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  {
    std::lock_guard<std::mutex> lk(agg_mu_);
    site_chunks_[from] -= 1;
    site_chunks_[to] += 1;
    site_bytes_[from] -= chunk_bytes;
    site_bytes_[to] += chunk_bytes;
  }
  return true;
}

std::uint64_t ClusterState::BlockVersion(BlockId id) const {
  const Stripe& stripe = StripeOf(id);
  std::shared_lock lk(stripe.mu);
  const auto it = stripe.blocks.find(id);
  return it == stripe.blocks.end() ? 0 : it->second.version;
}

bool ClusterState::BumpBlockVersion(BlockId id) {
  Stripe& stripe = StripeOf(id);
  std::unique_lock lk(stripe.mu);
  const auto it = stripe.blocks.find(id);
  if (it == stripe.blocks.end()) return false;
  it->second.version = version_.fetch_add(1, std::memory_order_relaxed) + 1;
  return true;
}

void ClusterState::SetSiteAvailable(SiteId site, bool available) {
  if (site >= num_sites_) throw std::out_of_range("SetSiteAvailable: bad site");
  if (available_[site].exchange(available, std::memory_order_acq_rel) != available) {
    version_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::size_t ClusterState::num_available_sites() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < num_sites_; ++i) {
    if (available_[i].load(std::memory_order_acquire)) ++n;
  }
  return n;
}

std::vector<ChunkLocation> ClusterState::AvailableLocations(BlockId id) const {
  std::vector<ChunkLocation> out;
  const Stripe& stripe = StripeOf(id);
  std::shared_lock lk(stripe.mu);
  const auto it = stripe.blocks.find(id);
  if (it == stripe.blocks.end()) {
    throw std::out_of_range("GetBlock: unknown block");
  }
  out.reserve(it->second.locations.size());
  for (const auto& loc : it->second.locations) {
    if (available_[loc.site].load(std::memory_order_acquire)) out.push_back(loc);
  }
  return out;
}

std::vector<BlockId> ClusterState::BlocksWithChunkAt(SiteId site) const {
  std::vector<BlockId> out;
  for (const auto& stripe : stripes_) {
    std::shared_lock lk(stripe.mu);
    for (const auto& [id, info] : stripe.blocks) {
      if (std::any_of(info.locations.begin(), info.locations.end(),
                      [site](const ChunkLocation& l) { return l.site == site; })) {
        out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SiteId> ClusterState::PickRandomSites(Rng& rng, std::size_t count) const {
  if (count > num_sites_) {
    throw std::invalid_argument("PickRandomSites: more sites requested than exist");
  }
  // Partial Fisher–Yates over the site ids.
  std::vector<SiteId> ids(num_sites_);
  for (std::size_t i = 0; i < num_sites_; ++i) ids[i] = static_cast<SiteId>(i);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.NextBounded(num_sites_ - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(count);
  return ids;
}

}  // namespace ecstore
