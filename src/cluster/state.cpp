#include "cluster/state.h"

#include <algorithm>
#include <stdexcept>

namespace ecstore {

ClusterState::ClusterState(std::size_t num_sites)
    : num_sites_(num_sites),
      site_chunks_(num_sites, 0),
      site_bytes_(num_sites, 0),
      available_(num_sites, true) {
  if (num_sites == 0) throw std::invalid_argument("ClusterState: need at least one site");
}

void ClusterState::AddBlock(BlockId id, std::uint64_t block_bytes,
                            std::uint64_t chunk_bytes, std::uint32_t k,
                            std::uint32_t r, std::span<const SiteId> sites) {
  if (blocks_.count(id)) throw std::invalid_argument("AddBlock: duplicate block id");
  if (sites.size() != k + r) {
    throw std::invalid_argument("AddBlock: need exactly k + r sites");
  }
  for (std::size_t i = 0; i < sites.size(); ++i) {
    if (sites[i] >= num_sites_) throw std::invalid_argument("AddBlock: site out of range");
    for (std::size_t j = i + 1; j < sites.size(); ++j) {
      if (sites[i] == sites[j]) {
        throw std::invalid_argument("AddBlock: duplicate site violates fault tolerance");
      }
    }
  }
  BlockInfo info;
  info.k = k;
  info.r = r;
  info.block_bytes = block_bytes;
  info.chunk_bytes = chunk_bytes;
  info.locations.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    info.locations.push_back({sites[i], static_cast<ChunkIndex>(i)});
    site_chunks_[sites[i]] += 1;
    site_bytes_[sites[i]] += chunk_bytes;
    total_bytes_ += chunk_bytes;
  }
  blocks_.emplace(id, std::move(info));
  ++version_;
}

bool ClusterState::RemoveBlock(BlockId id) {
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) return false;
  for (const auto& loc : it->second.locations) {
    site_chunks_[loc.site] -= 1;
    site_bytes_[loc.site] -= it->second.chunk_bytes;
    total_bytes_ -= it->second.chunk_bytes;
  }
  blocks_.erase(it);
  ++version_;
  return true;
}

const BlockInfo& ClusterState::GetBlock(BlockId id) const {
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) throw std::out_of_range("GetBlock: unknown block");
  return it->second;
}

bool ClusterState::HasChunkAt(BlockId id, SiteId site) const {
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) return false;
  return std::any_of(it->second.locations.begin(), it->second.locations.end(),
                     [site](const ChunkLocation& l) { return l.site == site; });
}

bool ClusterState::MoveChunk(BlockId id, SiteId from, SiteId to) {
  if (from >= num_sites_ || to >= num_sites_ || from == to) return false;
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) return false;
  auto& locs = it->second.locations;
  const auto src = std::find_if(locs.begin(), locs.end(),
                                [from](const ChunkLocation& l) { return l.site == from; });
  if (src == locs.end()) return false;
  const bool dst_taken =
      std::any_of(locs.begin(), locs.end(),
                  [to](const ChunkLocation& l) { return l.site == to; });
  if (dst_taken) return false;

  src->site = to;
  site_chunks_[from] -= 1;
  site_chunks_[to] += 1;
  site_bytes_[from] -= it->second.chunk_bytes;
  site_bytes_[to] += it->second.chunk_bytes;
  ++version_;
  return true;
}

void ClusterState::SetSiteAvailable(SiteId site, bool available) {
  if (site >= num_sites_) throw std::out_of_range("SetSiteAvailable: bad site");
  if (available_[site] != available) {
    available_[site] = available;
    ++version_;
  }
}

std::size_t ClusterState::num_available_sites() const {
  return static_cast<std::size_t>(
      std::count(available_.begin(), available_.end(), true));
}

std::vector<ChunkLocation> ClusterState::AvailableLocations(BlockId id) const {
  const BlockInfo& info = GetBlock(id);
  std::vector<ChunkLocation> out;
  out.reserve(info.locations.size());
  for (const auto& loc : info.locations) {
    if (available_[loc.site]) out.push_back(loc);
  }
  return out;
}

std::vector<BlockId> ClusterState::BlocksWithChunkAt(SiteId site) const {
  std::vector<BlockId> out;
  for (const auto& [id, info] : blocks_) {
    if (std::any_of(info.locations.begin(), info.locations.end(),
                    [site](const ChunkLocation& l) { return l.site == site; })) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SiteId> ClusterState::PickRandomSites(Rng& rng, std::size_t count) const {
  if (count > num_sites_) {
    throw std::invalid_argument("PickRandomSites: more sites requested than exist");
  }
  // Partial Fisher–Yates over the site ids.
  std::vector<SiteId> ids(num_sites_);
  for (std::size_t i = 0; i < num_sites_; ++i) ids[i] = static_cast<SiteId>(i);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(rng.NextBounded(num_sites_ - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(count);
  return ids;
}

}  // namespace ecstore
