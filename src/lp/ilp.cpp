#include "lp/ilp.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace ecstore::lp {

std::size_t IlpProblem::AddBinaryVariable(double cost) {
  const std::size_t idx = lp.AddVariable(cost);
  Constraint ub;
  ub.terms = {{idx, 1.0}};
  ub.relation = Relation::kLessEq;
  ub.rhs = 1.0;
  lp.AddConstraint(std::move(ub));
  binary_vars.push_back(idx);
  return idx;
}

namespace {

struct Node {
  // Variable fixings accumulated down the branch: (var, value).
  std::vector<std::pair<std::size_t, double>> fixings;
  double bound = 0;  // LP relaxation objective (lower bound).

  bool operator>(const Node& other) const { return bound > other.bound; }
};

/// Finds the most fractional binary variable; returns npos if integral.
std::size_t MostFractional(const IlpProblem& p, const std::vector<double>& x,
                           double tol) {
  std::size_t best = static_cast<std::size_t>(-1);
  double best_dist = tol;
  for (std::size_t v : p.binary_vars) {
    const double frac = x[v] - std::floor(x[v]);
    const double dist = std::min(frac, 1.0 - frac);
    if (dist > best_dist) {
      best_dist = dist;
      best = v;
    }
  }
  return best;
}

LpSolution SolveWithFixings(const IlpProblem& p,
                            const std::vector<std::pair<std::size_t, double>>& fixings) {
  LpProblem lp = p.lp;
  for (const auto& [var, value] : fixings) {
    Constraint c;
    c.terms = {{var, 1.0}};
    c.relation = Relation::kEqual;
    c.rhs = value;
    lp.AddConstraint(std::move(c));
  }
  return SolveLp(lp);
}

}  // namespace

IlpSolution SolveIlp(const IlpProblem& problem, const IlpOptions& options) {
  IlpSolution result;
  double incumbent = std::numeric_limits<double>::infinity();

  std::priority_queue<Node, std::vector<Node>, std::greater<Node>> open;

  // Root relaxation.
  LpSolution root = SolveLp(problem.lp);
  ++result.nodes_explored;
  if (root.status == SolveStatus::kInfeasible) {
    result.status = SolveStatus::kInfeasible;
    return result;
  }
  if (root.status == SolveStatus::kUnbounded) {
    result.status = SolveStatus::kUnbounded;
    return result;
  }

  const auto try_accept = [&](const LpSolution& sol) {
    const std::size_t frac = MostFractional(problem, sol.values, options.int_tolerance);
    if (frac != static_cast<std::size_t>(-1)) return false;
    if (sol.objective < incumbent - 1e-12) {
      incumbent = sol.objective;
      result.objective = sol.objective;
      result.values = sol.values;
      for (std::size_t v : problem.binary_vars) {
        result.values[v] = std::round(result.values[v]);
      }
      result.status = SolveStatus::kOptimal;
    }
    return true;
  };

  if (try_accept(root)) return result;
  open.push(Node{{}, root.objective});

  while (!open.empty()) {
    Node node = open.top();
    open.pop();
    if (node.bound >= incumbent - 1e-12) continue;  // Pruned by bound.
    if (options.max_nodes && result.nodes_explored >= options.max_nodes) break;

    LpSolution sol = SolveWithFixings(problem, node.fixings);
    ++result.nodes_explored;
    if (sol.status != SolveStatus::kOptimal) continue;
    if (sol.objective >= incumbent - 1e-12) continue;
    if (try_accept(sol)) continue;

    const std::size_t branch_var =
        MostFractional(problem, sol.values, options.int_tolerance);
    for (double value : {0.0, 1.0}) {
      Node child = node;
      child.fixings.emplace_back(branch_var, value);
      child.bound = sol.objective;
      open.push(std::move(child));
    }
  }
  return result;
}

}  // namespace ecstore::lp
