#include "lp/simplex.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace ecstore::lp {

std::size_t LpProblem::AddVariable(double cost) {
  objective.push_back(cost);
  return num_vars++;
}

std::size_t LpProblem::AddConstraint(Constraint c) {
  constraints.push_back(std::move(c));
  return constraints.size() - 1;
}

namespace {

constexpr double kEps = 1e-9;

/// Dense tableau simplex working state.
class Tableau {
 public:
  Tableau(const LpProblem& p) : p_(p), m_(p.constraints.size()) {
    n_struct_ = p.num_vars;
    // Column layout: [structural | slack/surplus | artificial].
    // First pass: count slack and artificial columns.
    std::size_t slacks = 0, artificials = 0;
    for (const auto& c : p.constraints) {
      const double rhs = c.rhs;
      const bool flip = rhs < 0;  // Normalize to rhs >= 0.
      Relation rel = c.relation;
      if (flip) {
        rel = rel == Relation::kLessEq     ? Relation::kGreaterEq
              : rel == Relation::kGreaterEq ? Relation::kLessEq
                                            : Relation::kEqual;
      }
      if (rel != Relation::kEqual) ++slacks;
      // <= with rhs >= 0: slack is a ready-made basic var, no artificial.
      if (rel != Relation::kLessEq) ++artificials;
    }
    n_slack_ = slacks;
    n_art_ = artificials;
    n_total_ = n_struct_ + n_slack_ + n_art_;

    rows_.assign(m_, std::vector<double>(n_total_ + 1, 0.0));
    basis_.assign(m_, 0);

    std::size_t slack_at = n_struct_;
    std::size_t art_at = n_struct_ + n_slack_;
    for (std::size_t i = 0; i < m_; ++i) {
      const auto& c = p.constraints[i];
      double rhs = c.rhs;
      double sign = 1.0;
      Relation rel = c.relation;
      if (rhs < 0) {
        sign = -1.0;
        rhs = -rhs;
        rel = rel == Relation::kLessEq     ? Relation::kGreaterEq
              : rel == Relation::kGreaterEq ? Relation::kLessEq
                                            : Relation::kEqual;
      }
      for (const auto& [var, coeff] : c.terms) {
        assert(var < n_struct_);
        rows_[i][var] += sign * coeff;
      }
      rows_[i][n_total_] = rhs;
      if (rel == Relation::kLessEq) {
        rows_[i][slack_at] = 1.0;
        basis_[i] = slack_at;
        ++slack_at;
      } else if (rel == Relation::kGreaterEq) {
        rows_[i][slack_at] = -1.0;  // surplus
        ++slack_at;
        rows_[i][art_at] = 1.0;
        basis_[i] = art_at;
        ++art_at;
      } else {  // kEqual
        rows_[i][art_at] = 1.0;
        basis_[i] = art_at;
        ++art_at;
      }
    }
  }

  /// Runs phase 1 then phase 2; returns the final status.
  SolveStatus Solve() {
    if (n_art_ > 0) {
      // Phase 1: minimize the sum of artificial variables.
      std::vector<double> cost(n_total_, 0.0);
      for (std::size_t j = n_struct_ + n_slack_; j < n_total_; ++j) cost[j] = 1.0;
      const SolveStatus s1 = RunSimplex(cost, /*forbid_artificials=*/false);
      if (s1 == SolveStatus::kUnbounded) return SolveStatus::kInfeasible;
      if (PhaseObjective(cost) > 1e-7) return SolveStatus::kInfeasible;
      DriveOutArtificials();
    }
    std::vector<double> cost(n_total_, 0.0);
    for (std::size_t j = 0; j < n_struct_; ++j) cost[j] = p_.objective[j];
    return RunSimplex(cost, /*forbid_artificials=*/true);
  }

  double ObjectiveValue() const {
    double v = 0;
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_struct_) v += p_.objective[basis_[i]] * rows_[i][n_total_];
    }
    return v;
  }

  std::vector<double> Values() const {
    std::vector<double> x(n_struct_, 0.0);
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < n_struct_) x[basis_[i]] = rows_[i][n_total_];
    }
    return x;
  }

 private:
  double PhaseObjective(const std::vector<double>& cost) const {
    double v = 0;
    for (std::size_t i = 0; i < m_; ++i) v += cost[basis_[i]] * rows_[i][n_total_];
    return v;
  }

  SolveStatus RunSimplex(const std::vector<double>& cost, bool forbid_artificials) {
    const std::size_t limit = forbid_artificials ? n_struct_ + n_slack_ : n_total_;

    // Maintain the reduced-cost row incrementally: obj_[j] = c_j - z_j.
    obj_.assign(n_total_ + 1, 0.0);
    for (std::size_t j = 0; j < n_total_; ++j) obj_[j] = cost[j];
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = cost[basis_[i]];
      if (cb == 0.0) continue;
      for (std::size_t j = 0; j <= n_total_; ++j) obj_[j] -= cb * rows_[i][j];
    }

    // Dantzig pricing for speed; switch to Bland's rule after a run of
    // degenerate pivots to guarantee termination.
    const std::size_t max_iters = 100 * (m_ + n_total_) + 1000;
    std::size_t degenerate_streak = 0;
    constexpr std::size_t kBlandThreshold = 50;

    for (std::size_t iter = 0; iter < max_iters; ++iter) {
      const bool bland = degenerate_streak >= kBlandThreshold;
      std::size_t enter = n_total_;
      double most_negative = -kEps;
      for (std::size_t j = 0; j < limit; ++j) {
        const double d = obj_[j];
        if (d < -kEps) {
          if (bland) {
            enter = j;
            break;
          }
          if (d < most_negative) {
            most_negative = d;
            enter = j;
          }
        }
      }
      if (enter == n_total_) return SolveStatus::kOptimal;

      std::size_t leave = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m_; ++i) {
        const double a = rows_[i][enter];
        if (a > kEps) {
          const double ratio = rows_[i][n_total_] / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leave == m_ || basis_[i] < basis_[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == m_) return SolveStatus::kUnbounded;
      degenerate_streak = best_ratio < kEps ? degenerate_streak + 1 : 0;
      Pivot(leave, enter);
    }
    return SolveStatus::kOptimal;  // Defensive: should not be reached.
  }

  void Pivot(std::size_t row, std::size_t col) {
    auto& pivot_row = rows_[row];
    const double pv = pivot_row[col];
    for (auto& v : pivot_row) v /= pv;
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == row) continue;
      const double factor = rows_[i][col];
      if (std::abs(factor) < kEps) continue;
      for (std::size_t j = 0; j <= n_total_; ++j) {
        rows_[i][j] -= factor * pivot_row[j];
      }
    }
    // Keep the reduced-cost row in sync.
    if (!obj_.empty()) {
      const double factor = obj_[col];
      if (std::abs(factor) > kEps * kEps) {
        for (std::size_t j = 0; j <= n_total_; ++j) {
          obj_[j] -= factor * pivot_row[j];
        }
      }
    }
    basis_[row] = col;
  }

  /// After phase 1, replace any artificial still in the basis (at value 0)
  /// with a structural/slack column, or leave the degenerate row in place.
  void DriveOutArtificials() {
    const std::size_t art_begin = n_struct_ + n_slack_;
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < art_begin) continue;
      for (std::size_t j = 0; j < art_begin; ++j) {
        if (std::abs(rows_[i][j]) > kEps) {
          Pivot(i, j);
          break;
        }
      }
      // If no pivot column exists the row is redundant (all-zero with
      // zero rhs); the artificial stays basic at value 0, which is safe.
    }
  }

  const LpProblem& p_;
  std::size_t m_;
  std::size_t n_struct_ = 0, n_slack_ = 0, n_art_ = 0, n_total_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<std::size_t> basis_;
  std::vector<double> obj_;  // Reduced-cost row for the active phase.
};

}  // namespace

LpSolution SolveLp(const LpProblem& problem) {
  LpSolution sol;
  if (problem.constraints.empty()) {
    // Unconstrained non-negative minimization: 0 unless a negative cost
    // makes it unbounded.
    for (double c : problem.objective) {
      if (c < -kEps) {
        sol.status = SolveStatus::kUnbounded;
        return sol;
      }
    }
    sol.status = SolveStatus::kOptimal;
    sol.objective = 0;
    sol.values.assign(problem.num_vars, 0.0);
    return sol;
  }
  Tableau t(problem);
  sol.status = t.Solve();
  if (sol.status == SolveStatus::kOptimal) {
    sol.objective = t.ObjectiveValue();
    sol.values = t.Values();
  }
  return sol;
}

}  // namespace ecstore::lp
