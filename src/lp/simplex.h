// Dense two-phase primal simplex for small linear programs.
//
// This substrate replaces the paper's use of the SCIP solver. EC-Store's
// access-plan ILPs are small (tens of binary variables), so a dense
// tableau with Bland's anti-cycling rule is both simple and fast enough;
// branch-and-bound on top of it (ilp.h) yields proven-optimal plans.
#pragma once

#include <cstddef>
#include <vector>

namespace ecstore::lp {

enum class Relation { kLessEq, kGreaterEq, kEqual };

/// One linear constraint: sum_i coeffs[i] * x[i]  (relation)  rhs.
/// Sparse representation: only the listed variable indices participate.
struct Constraint {
  std::vector<std::pair<std::size_t, double>> terms;
  Relation relation = Relation::kLessEq;
  double rhs = 0;
};

/// Minimization LP over non-negative variables: min c·x s.t. constraints,
/// x >= 0. Upper bounds are expressed as explicit kLessEq constraints.
struct LpProblem {
  std::size_t num_vars = 0;
  std::vector<double> objective;  // size num_vars
  std::vector<Constraint> constraints;

  /// Appends a variable with the given objective coefficient; returns its
  /// index.
  std::size_t AddVariable(double cost);

  /// Appends a constraint and returns its index.
  std::size_t AddConstraint(Constraint c);
};

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded };

struct LpSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0;
  std::vector<double> values;  // size num_vars when kOptimal
};

/// Solves the LP with two-phase primal simplex. Deterministic; suitable
/// for problems up to a few hundred variables/constraints.
LpSolution SolveLp(const LpProblem& problem);

}  // namespace ecstore::lp
