// Branch-and-bound integer programming on top of the simplex LP solver.
//
// Supports binary (0/1) variables — the only integer kind EC-Store's
// access-plan formulation uses (Table I: s_ij and a_j are binary).
#pragma once

#include <cstdint>
#include <vector>

#include "lp/simplex.h"

namespace ecstore::lp {

/// A minimization ILP: the base LP plus a designation of which variables
/// must take values in {0, 1}. Branching fixes binaries via added
/// equality constraints on LP relaxations.
struct IlpProblem {
  LpProblem lp;
  std::vector<std::size_t> binary_vars;  // indices into lp variables

  /// Adds a binary variable with the given objective cost; also installs
  /// its x <= 1 bound constraint. Returns the variable index.
  std::size_t AddBinaryVariable(double cost);
};

struct IlpSolution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0;
  std::vector<double> values;      // relaxation values rounded to integers
  std::uint64_t nodes_explored = 0;  // B&B nodes, for diagnostics/benches
};

/// Solver options.
struct IlpOptions {
  /// Maximum branch-and-bound nodes before giving up and returning the
  /// incumbent (status stays kOptimal only if proven). 0 = unlimited.
  std::uint64_t max_nodes = 0;
  /// Integrality tolerance.
  double int_tolerance = 1e-6;
};

/// Solves the ILP with best-first branch-and-bound; returns a proven
/// optimum for feasible problems (given no node limit).
IlpSolution SolveIlp(const IlpProblem& problem, const IlpOptions& options = {});

}  // namespace ecstore::lp
