#include "erasure/linear_codec.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "gf/matrix.h"

namespace ecstore {
namespace {

std::vector<std::uint8_t> RandomBlock(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> block(n);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  return block;
}

std::vector<IndexedChunk> Pick(const std::vector<ChunkData>& chunks,
                               const std::vector<ChunkIndex>& indices) {
  std::vector<IndexedChunk> out;
  for (ChunkIndex i : indices) out.push_back({i, chunks[i]});
  return out;
}

TEST(LinearCodecTest, RejectsBadGenerators) {
  EXPECT_THROW(LinearCodec(gf::Matrix(0, 0)), std::invalid_argument);
  EXPECT_THROW(LinearCodec(gf::Matrix(2, 3)), std::invalid_argument);
}

TEST(LinearCodecTest, MdsGeneratorBehavesLikeReedSolomon) {
  // A systematic Cauchy generator is exactly our RS code; the general
  // codec must decode every k-subset.
  LinearCodec codec(gf::BuildSystematicCauchy(3, 2));
  Rng rng(1);
  const auto block = RandomBlock(999, rng);
  const auto chunks = codec.Encode(block);
  ASSERT_EQ(chunks.size(), 5u);

  for (ChunkIndex a = 0; a < 5; ++a) {
    for (ChunkIndex b = a + 1; b < 5; ++b) {
      for (ChunkIndex c = b + 1; c < 5; ++c) {
        const auto decoded = codec.TryDecode(Pick(chunks, {a, b, c}), block.size());
        ASSERT_TRUE(decoded.has_value()) << a << "," << b << "," << c;
        EXPECT_EQ(*decoded, block);
      }
    }
  }
}

TEST(LinearCodecTest, InsufficientChunksRejected) {
  LinearCodec codec(gf::BuildSystematicCauchy(3, 2));
  Rng rng(2);
  const auto block = RandomBlock(100, rng);
  const auto chunks = codec.Encode(block);
  EXPECT_FALSE(codec.TryDecode(Pick(chunks, {0, 4}), block.size()).has_value());
  const std::vector<ChunkIndex> two = {0, 4};
  EXPECT_FALSE(codec.CanDecode(two));
}

TEST(LinearCodecTest, DuplicateChunksDoNotInflateRank) {
  LinearCodec codec(gf::BuildSystematicCauchy(2, 1));
  Rng rng(3);
  const auto block = RandomBlock(64, rng);
  const auto chunks = codec.Encode(block);
  // The same chunk twice has rank 1.
  const std::vector<IndexedChunk> dup = {{0, chunks[0]}, {0, chunks[0]}};
  EXPECT_FALSE(codec.TryDecode(dup, block.size()).has_value());
}

TEST(LinearCodecTest, ReconstructChunkRebuildsAnyRow) {
  LinearCodec codec(gf::BuildSystematicCauchy(2, 2));
  Rng rng(4);
  const auto block = RandomBlock(512, rng);
  const auto chunks = codec.Encode(block);
  for (ChunkIndex target = 0; target < 4; ++target) {
    // Repair `target` from two other chunks.
    std::vector<ChunkIndex> sources;
    for (ChunkIndex i = 0; i < 4 && sources.size() < 2; ++i) {
      if (i != target) sources.push_back(i);
    }
    const auto rebuilt =
        codec.ReconstructChunk(Pick(chunks, sources), target, block.size());
    ASSERT_TRUE(rebuilt.has_value()) << "target " << target;
    EXPECT_EQ(*rebuilt, chunks[target]);
  }
}

// --- LRC -------------------------------------------------------------------

TEST(LrcTest, RejectsBadParameters) {
  EXPECT_THROW(LrcCodec(5, 2, 2), std::invalid_argument);  // k % l != 0.
  EXPECT_THROW(LrcCodec(4, 0, 2), std::invalid_argument);
  EXPECT_THROW(LrcCodec(4, 2, 0), std::invalid_argument);
}

TEST(LrcTest, ShapeAndOverhead) {
  const LrcCodec lrc(12, 2, 2);  // Azure's production parameters.
  EXPECT_EQ(lrc.TotalChunks(), 16u);
  EXPECT_EQ(lrc.GroupSize(), 6u);
  EXPECT_NEAR(lrc.StorageOverhead(), 16.0 / 12.0, 1e-12);
}

TEST(LrcTest, RoundTripsWithAllChunks) {
  const LrcCodec lrc(6, 2, 2);
  Rng rng(5);
  const auto block = RandomBlock(6000, rng);
  const auto chunks = lrc.Encode(block);
  ASSERT_EQ(chunks.size(), 10u);
  std::vector<ChunkIndex> all(10);
  std::iota(all.begin(), all.end(), 0u);
  const auto decoded = lrc.TryDecode(Pick(chunks, all), block.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, block);
}

TEST(LrcTest, GroupAssignment) {
  const LrcCodec lrc(6, 2, 2);  // Groups {0,1,2} and {3,4,5}.
  EXPECT_EQ(lrc.GroupOf(0), 0u);
  EXPECT_EQ(lrc.GroupOf(2), 0u);
  EXPECT_EQ(lrc.GroupOf(3), 1u);
  EXPECT_EQ(lrc.GroupOf(6), 0u);  // First local parity.
  EXPECT_EQ(lrc.GroupOf(7), 1u);
  EXPECT_FALSE(lrc.GroupOf(8).has_value());  // Global parity.
  EXPECT_FALSE(lrc.GroupOf(9).has_value());
}

TEST(LrcTest, LocalRepairSetIsSmall) {
  const LrcCodec lrc(12, 2, 2);
  const auto set = lrc.LocalRepairSet(3);
  ASSERT_TRUE(set.has_value());
  // Repair reads GroupSize() chunks (5 data siblings + local parity),
  // versus k = 12 for an RS code — the entire point of LRC.
  EXPECT_EQ(set->size(), 6u);
  EXPECT_FALSE(lrc.LocalRepairSet(15).has_value());  // Global parity.
}

TEST(LrcTest, SingleFailureRepairsLocally) {
  const LrcCodec lrc(6, 2, 2);
  Rng rng(6);
  const auto block = RandomBlock(3001, rng);
  const auto chunks = lrc.Encode(block);
  // Every data chunk and every local parity repairs from its group.
  for (ChunkIndex failed = 0; failed < 8; ++failed) {
    const auto set = lrc.LocalRepairSet(failed);
    ASSERT_TRUE(set.has_value());
    const auto rebuilt = lrc.RepairLocally(failed, Pick(chunks, *set), block.size());
    ASSERT_TRUE(rebuilt.has_value()) << "chunk " << failed;
    EXPECT_EQ(*rebuilt, chunks[failed]) << "chunk " << failed;
  }
}

TEST(LrcTest, RepairLocallyRejectsIncompleteGroup) {
  const LrcCodec lrc(6, 2, 2);
  Rng rng(7);
  const auto block = RandomBlock(600, rng);
  const auto chunks = lrc.Encode(block);
  auto set = *lrc.LocalRepairSet(0);
  set.pop_back();  // Drop one required chunk.
  EXPECT_FALSE(lrc.RepairLocally(0, Pick(chunks, set), block.size()).has_value());
}

TEST(LrcTest, SurvivesOneFailurePerGroupPlusGlobals) {
  // Erase one data chunk from each group; the locals + globals cover it.
  const LrcCodec lrc(6, 2, 2);
  Rng rng(8);
  const auto block = RandomBlock(2000, rng);
  const auto chunks = lrc.Encode(block);
  // Failed: chunks 0 and 3. Available: everything else.
  std::vector<ChunkIndex> available = {1, 2, 4, 5, 6, 7, 8, 9};
  const auto decoded = lrc.TryDecode(Pick(chunks, available), block.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, block);
}

TEST(LrcTest, SurvivesGlobalParityWorthOfDataFailures) {
  // LRC(6,2,2) tolerates: both failures in different groups handled
  // above; two failures in the SAME group need the globals.
  const LrcCodec lrc(6, 2, 2);
  Rng rng(9);
  const auto block = RandomBlock(2000, rng);
  const auto chunks = lrc.Encode(block);
  std::vector<ChunkIndex> available = {2, 3, 4, 5, 6, 7, 8, 9};  // Lost 0, 1.
  const auto decoded = lrc.TryDecode(Pick(chunks, available), block.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, block);
}

TEST(LrcTest, TooManyFailuresDetected) {
  // Losing a whole group's data + its parity + a global exceeds the
  // code's distance; TryDecode must refuse rather than corrupt.
  const LrcCodec lrc(6, 2, 2);
  Rng rng(10);
  const auto block = RandomBlock(2000, rng);
  const auto chunks = lrc.Encode(block);
  // Lost 0, 1, 2 (whole group 0) + 6 (its parity): 4 erasures, only 2
  // globals to help -> unrecoverable.
  const std::vector<ChunkIndex> available = {3, 4, 5, 7, 8, 9};
  EXPECT_FALSE(lrc.TryDecode(Pick(chunks, available), block.size()).has_value());
}

TEST(LrcTest, CanDecodeAgreesWithTryDecode) {
  const LrcCodec lrc(4, 2, 1);
  Rng rng(11);
  const auto block = RandomBlock(444, rng);
  const auto chunks = lrc.Encode(block);
  // Sweep all subsets of the 7 chunks; CanDecode and TryDecode agree.
  for (unsigned mask = 0; mask < (1u << 7); ++mask) {
    std::vector<ChunkIndex> subset;
    for (ChunkIndex i = 0; i < 7; ++i) {
      if (mask & (1u << i)) subset.push_back(i);
    }
    const bool can = lrc.codec().CanDecode(subset);
    const bool did =
        lrc.TryDecode(Pick(chunks, subset), block.size()).has_value();
    EXPECT_EQ(can, did) << "mask " << mask;
    if (did) {
      EXPECT_EQ(*lrc.TryDecode(Pick(chunks, subset), block.size()), block);
    }
  }
}

}  // namespace
}  // namespace ecstore
