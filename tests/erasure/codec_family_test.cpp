// Codec-family seam tests (DESIGN.md §11): exhaustive erasure-pattern
// decodability + bit-exactness for Azure-LRC and the piggybacked-RS
// regenerating family (every survivor subset), RepairPlan rebuilds that
// must be bit-identical to the encoder's chunks under every erasure
// pattern up to the family's fault tolerance, the families' repair-cost
// ordering (LRC local group < RS full-k; piggyback half-chunks < RS),
// and the CodecSpec parse/validate/name round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/codec_spec.h"
#include "common/rng.h"
#include "erasure/codec_family.h"

namespace ecstore {
namespace {

std::vector<std::uint8_t> RandomBlock(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> block(n);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  return block;
}

const CodecSpec kRs63{CodecFamilyId::kRs, 6, 3, 0};
const CodecSpec kLrc622{CodecFamilyId::kAzureLrc, 6, 2, 2};
const CodecSpec kPb63{CodecFamilyId::kPiggybackRs, 6, 3, 0};
const CodecSpec kRep2{CodecFamilyId::kReplication, 1, 2, 0};

/// Every subset of {0..n-1}, as index vectors.
std::vector<std::vector<ChunkIndex>> AllSubsets(std::uint32_t n) {
  std::vector<std::vector<ChunkIndex>> out;
  out.reserve(std::size_t{1} << n);
  for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<ChunkIndex> s;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) s.push_back(static_cast<ChunkIndex>(i));
    }
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// CodecSpec: parse / validate / name.

TEST(CodecSpecTest, ParseNameRoundTrip) {
  for (const char* name : {"rs(6,3)", "lrc(6,2,2)", "pb(6,3)", "rep(2)"}) {
    const CodecSpec spec = ParseCodecSpec(name);
    EXPECT_EQ(CodecSpecName(spec), name);
  }
  EXPECT_EQ(ParseCodecSpec("rs(6,3)"), kRs63);
  EXPECT_EQ(ParseCodecSpec("lrc(6,2,2)"), kLrc622);  // (k, l, g) argument order
  EXPECT_EQ(ParseCodecSpec("pb(6,3)"), kPb63);
  EXPECT_EQ(ParseCodecSpec("rep(2)"), kRep2);
}

TEST(CodecSpecTest, RejectsJunk) {
  EXPECT_THROW(ParseCodecSpec("xor(2)"), std::invalid_argument);
  EXPECT_THROW(ParseCodecSpec("rs(6)"), std::invalid_argument);
  EXPECT_THROW(ParseCodecSpec("lrc(5,2,2)"), std::invalid_argument);  // k % l
  EXPECT_THROW(ParseCodecSpec("pb(6,1)"), std::invalid_argument);  // needs r>=2
  EXPECT_THROW(ParseCodecSpec("rs(6,3"), std::invalid_argument);
}

TEST(CodecSpecTest, ShapeHelpers) {
  EXPECT_EQ(SpecTotalChunks(kRs63), 9u);
  EXPECT_EQ(SpecTotalChunks(kLrc622), 10u);  // 6 data + 2 local + 2 global
  EXPECT_EQ(SpecTotalChunks(kPb63), 9u);
  EXPECT_EQ(SpecTotalChunks(kRep2), 3u);
  EXPECT_EQ(SpecDataChunks(kRep2), 1u);

  // Piggyback chunks must split into two equal subchunks.
  EXPECT_EQ(SpecChunkBytes(kPb63, 12000), 2000u);  // two 1000 B subchunks
  EXPECT_EQ(SpecChunkBytes(kPb63, 12001) % 2, 0u);
  EXPECT_GE(SpecChunkBytes(kPb63, 12001) * 6, 12001u);

  // LRC placement groups: data split across l local groups, local parity
  // i guards group i, globals unconstrained.
  EXPECT_EQ(PlacementGroupOf(kLrc622, 0), PlacementGroupOf(kLrc622, 2));
  EXPECT_NE(PlacementGroupOf(kLrc622, 0), PlacementGroupOf(kLrc622, 3));
  EXPECT_EQ(PlacementGroupOf(kLrc622, 6), PlacementGroupOf(kLrc622, 0));
  EXPECT_EQ(PlacementGroupOf(kLrc622, 8), std::nullopt);
  EXPECT_FALSE(SpecAnyKDecodes(kLrc622));
  EXPECT_TRUE(SpecAnyKDecodes(kRs63));
  EXPECT_TRUE(SpecAnyKDecodes(kPb63));
}

TEST(CodecFamilyTest, RegistryMemoizesOneInstancePerSpec) {
  const auto a = GetCodecFamily(kLrc622);
  const auto b = GetCodecFamily(kLrc622);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), GetCodecFamily(kRs63).get());
}

// ---------------------------------------------------------------------------
// Exhaustive decodability + bit-exactness: for EVERY subset of the
// stripe's chunks, TryDecode must either reproduce the block exactly or
// return nullopt, and must agree with CanDecode.

void CheckEverySubset(const CodecSpec& spec, std::size_t block_size) {
  const auto family = GetCodecFamily(spec);
  const auto block = RandomBlock(block_size, 0xABCD ^ block_size);
  const auto chunks = family->Encode(block);
  ASSERT_EQ(chunks.size(), family->TotalChunks());
  for (const ChunkData& c : chunks) {
    EXPECT_EQ(c.size(), family->ChunkSize(block_size));
  }

  for (const auto& subset : AllSubsets(family->TotalChunks())) {
    std::vector<IndexedChunk> held;
    held.reserve(subset.size());
    for (const ChunkIndex c : subset) held.push_back({c, chunks[c]});
    const auto decoded = family->TryDecode(held, block_size);
    EXPECT_EQ(decoded.has_value(), family->CanDecode(subset))
        << family->Name() << " subset size " << subset.size();
    if (decoded) {
      EXPECT_EQ(*decoded, block) << family->Name();
    }
  }
}

TEST(CodecFamilyExhaustiveTest, LrcDecodesEverySpanningSubsetBitExact) {
  CheckEverySubset(kLrc622, 6 * 512 + 11);
}

TEST(CodecFamilyExhaustiveTest, PiggybackDecodesEveryKSubsetBitExact) {
  CheckEverySubset(kPb63, 6 * 512 + 11);
  CheckEverySubset(CodecSpec{CodecFamilyId::kPiggybackRs, 4, 2, 0}, 4096 + 3);
}

TEST(CodecFamilyExhaustiveTest, RsAndReplicationSubsets) {
  CheckEverySubset(CodecSpec{CodecFamilyId::kRs, 4, 2, 0}, 4096 + 3);
  CheckEverySubset(kRep2, 777);
}

// ---------------------------------------------------------------------------
// RepairPlan: under every erasure pattern up to the family's fault
// tolerance, every erased chunk must either rebuild bit-identically from
// exactly the plan's reads, or the plan must be absent AND the survivors
// genuinely undecodable.

void CheckRepairEveryPattern(const CodecSpec& spec, std::size_t block_size) {
  const auto family = GetCodecFamily(spec);
  const auto block = RandomBlock(block_size, 0x5EED ^ block_size);
  const auto chunks = family->Encode(block);
  const std::uint32_t n = family->TotalChunks();
  const std::uint32_t max_erased = family->FaultTolerance();
  ASSERT_GE(max_erased, 1u);

  std::size_t plans_checked = 0;
  for (const auto& erased : AllSubsets(n)) {
    if (erased.empty() || erased.size() > max_erased) continue;
    std::vector<ChunkIndex> avail;
    for (ChunkIndex c = 0; c < n; ++c) {
      if (std::find(erased.begin(), erased.end(), c) == erased.end()) {
        avail.push_back(c);
      }
    }
    for (const ChunkIndex target : erased) {
      const auto plan = family->PlanRepair(target, avail);
      ASSERT_TRUE(plan.has_value())
          << family->Name() << ": no plan for chunk " << target
          << " with " << erased.size() << " erased (within fault tolerance)";
      // The plan draws only on genuinely surviving chunks, reads at most
      // whole chunks, and never reads the target itself.
      std::vector<IndexedChunk> sources;
      for (const RepairRead& read : plan->reads) {
        ASSERT_NE(read.chunk, target);
        ASSERT_TRUE(std::find(avail.begin(), avail.end(), read.chunk) !=
                    avail.end());
        ASSERT_GE(read.subchunks, 1u);
        ASSERT_LE(read.subchunks, plan->chunk_subchunks);
        sources.push_back({read.chunk, chunks[read.chunk]});
      }
      EXPECT_LE(plan->BytesToRead(chunks[0].size()),
                std::uint64_t{plan->reads.size()} * chunks[0].size());
      const auto rebuilt = family->RepairChunk(target, sources, block_size);
      ASSERT_TRUE(rebuilt.has_value()) << family->Name();
      EXPECT_EQ(*rebuilt, chunks[target])
          << family->Name() << " target " << target << " erased set size "
          << erased.size();
      ++plans_checked;
    }
  }
  EXPECT_GT(plans_checked, 0u);
}

TEST(CodecFamilyRepairTest, RsRebuildsBitIdenticalUnderEveryPattern) {
  CheckRepairEveryPattern(CodecSpec{CodecFamilyId::kRs, 4, 2, 0}, 4096 + 3);
  CheckRepairEveryPattern(kRs63, 6 * 300 + 5);
}

TEST(CodecFamilyRepairTest, LrcRebuildsBitIdenticalUnderEveryPattern) {
  CheckRepairEveryPattern(kLrc622, 6 * 300 + 5);
}

TEST(CodecFamilyRepairTest, PiggybackRebuildsBitIdenticalUnderEveryPattern) {
  CheckRepairEveryPattern(kPb63, 6 * 300 + 5);
  CheckRepairEveryPattern(CodecSpec{CodecFamilyId::kPiggybackRs, 4, 2, 0},
                          4096 + 2);
}

TEST(CodecFamilyRepairTest, ReplicationRepairsFromOneCopy) {
  CheckRepairEveryPattern(kRep2, 999);
  const auto family = GetCodecFamily(kRep2);
  const std::vector<ChunkIndex> avail = {1, 2};
  const auto plan = family->PlanRepair(0, avail);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->reads.size(), 1u);
}

// ---------------------------------------------------------------------------
// Repair-cost ordering: the reason the families exist.

TEST(CodecFamilyRepairTest, LrcSingleChunkRepairReadsOnlyItsLocalGroup) {
  const auto lrc = GetCodecFamily(kLrc622);
  const auto rs = GetCodecFamily(kRs63);
  std::vector<ChunkIndex> all_but_0;
  for (ChunkIndex c = 1; c < lrc->TotalChunks(); ++c) all_but_0.push_back(c);
  const auto plan = lrc->PlanRepair(0, all_but_0);
  ASSERT_TRUE(plan.has_value());
  // Group 0 = data {0,1,2} + local parity 6: repairing 0 reads {1,2,6}.
  EXPECT_EQ(plan->Chunks(), (std::vector<ChunkIndex>{1, 2, 6}));

  const std::uint64_t chunk_bytes = 1000;
  all_but_0.clear();
  for (ChunkIndex c = 1; c < rs->TotalChunks(); ++c) all_but_0.push_back(c);
  const auto rs_plan = rs->PlanRepair(0, all_but_0);
  ASSERT_TRUE(rs_plan.has_value());
  // The acceptance ratio: 3 chunks vs 6 = 0.5x <= 0.55x.
  EXPECT_LE(plan->BytesToRead(chunk_bytes) * 100,
            rs_plan->BytesToRead(chunk_bytes) * 55);
}

TEST(CodecFamilyRepairTest, PiggybackDataRepairReadsFewerBytesThanFullK) {
  const auto pb = GetCodecFamily(kPb63);
  std::vector<ChunkIndex> all_but_0;
  for (ChunkIndex c = 1; c < pb->TotalChunks(); ++c) all_but_0.push_back(c);
  const auto plan = pb->PlanRepair(0, all_but_0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->chunk_subchunks, 2u);
  // 9 half-chunks = 0.75x of the 6 whole chunks a full-k rebuild reads.
  const std::uint64_t chunk_bytes = 1000;
  EXPECT_EQ(plan->BytesToRead(chunk_bytes), 4500u);

  // Parity chunks fall back to the whole-chunk MDS rebuild.
  std::vector<ChunkIndex> others;
  for (ChunkIndex c = 0; c < pb->TotalChunks(); ++c) {
    if (c != 7) others.push_back(c);
  }
  const auto parity_plan = pb->PlanRepair(7, others);
  ASSERT_TRUE(parity_plan.has_value());
  EXPECT_EQ(parity_plan->BytesToRead(chunk_bytes), 6000u);
}

TEST(CodecFamilyRepairTest, LrcFaultToleranceIsComputedNotAssumed) {
  const auto lrc = GetCodecFamily(kLrc622);
  // The punctured {data + globals} code is MDS with g = 2 parities, and
  // a local parity adds one more recoverable erasure per group.
  EXPECT_GE(lrc->FaultTolerance(), 2u);
  EXPECT_LE(lrc->FaultTolerance(), 4u);
}

// Degraded-read seam: any k of {data + globals} decode (the punctured
// MDS trick BuildDemands leans on), while a mixed set including locals
// can fail — exactly what IsPlanReadCandidate encodes.
TEST(CodecFamilyTest, LrcPlanReadCandidatesAlwaysDecode) {
  const auto family = GetCodecFamily(kLrc622);
  std::vector<ChunkIndex> candidates;
  for (ChunkIndex c = 0; c < family->TotalChunks(); ++c) {
    if (IsPlanReadCandidate(kLrc622, c)) candidates.push_back(c);
  }
  EXPECT_EQ(candidates.size(), 8u);  // 6 data + 2 globals; locals excluded.
  // Every 6-subset of the candidates decodes.
  std::vector<bool> pick(candidates.size(), false);
  std::fill(pick.begin(), pick.begin() + 6, true);
  do {
    std::vector<ChunkIndex> held;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (pick[i]) held.push_back(candidates[i]);
    }
    EXPECT_TRUE(family->CanDecode(held));
  } while (std::prev_permutation(pick.begin(), pick.end()));
}

}  // namespace
}  // namespace ecstore
