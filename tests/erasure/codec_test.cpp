#include "erasure/codec.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace ecstore {
namespace {

std::vector<std::uint8_t> RandomBlock(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> block(n);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  return block;
}

std::vector<IndexedChunk> Pick(const std::vector<ChunkData>& chunks,
                               const std::vector<ChunkIndex>& indices) {
  std::vector<IndexedChunk> out;
  for (ChunkIndex i : indices) out.push_back({i, chunks[i]});
  return out;
}

TEST(ReedSolomonTest, RejectsBadParameters) {
  EXPECT_THROW(ReedSolomonCodec(1, 2), std::invalid_argument);
  EXPECT_THROW(ReedSolomonCodec(2, 0), std::invalid_argument);
  EXPECT_THROW(ReedSolomonCodec(200, 57), std::invalid_argument);
}

TEST(ReedSolomonTest, BasicShape) {
  ReedSolomonCodec codec(2, 2);
  EXPECT_EQ(codec.RequiredChunks(), 2u);
  EXPECT_EQ(codec.TotalChunks(), 4u);
  EXPECT_EQ(codec.FaultTolerance(), 2u);
  EXPECT_DOUBLE_EQ(codec.StorageOverhead(), 2.0);
  EXPECT_EQ(codec.ChunkSize(100), 50u);
  EXPECT_EQ(codec.ChunkSize(101), 51u);  // Rounds up.
}

TEST(ReedSolomonTest, EncodeProducesEqualSizedChunks) {
  ReedSolomonCodec codec(3, 2);
  Rng rng(1);
  const auto block = RandomBlock(1000, rng);
  const auto chunks = codec.Encode(block);
  ASSERT_EQ(chunks.size(), 5u);
  for (const auto& c : chunks) EXPECT_EQ(c.size(), codec.ChunkSize(1000));
}

TEST(ReedSolomonTest, SystematicChunksAreDataSplits) {
  ReedSolomonCodec codec(2, 1);
  std::vector<std::uint8_t> block = {1, 2, 3, 4, 5, 6};
  const auto chunks = codec.Encode(block);
  EXPECT_EQ(chunks[0], (ChunkData{1, 2, 3}));
  EXPECT_EQ(chunks[1], (ChunkData{4, 5, 6}));
}

TEST(ReedSolomonTest, DecodeFromSystematicChunks) {
  ReedSolomonCodec codec(2, 2);
  Rng rng(2);
  const auto block = RandomBlock(100 * 1024, rng);  // Paper's 100 KB default.
  const auto chunks = codec.Encode(block);
  EXPECT_EQ(codec.Decode(Pick(chunks, {0, 1}), block.size()), block);
}

// The MDS property, exhaustively: any k of k+r chunks reconstruct.
TEST(ReedSolomonTest, AnyKSubsetDecodesRs22) {
  ReedSolomonCodec codec(2, 2);
  Rng rng(3);
  const auto block = RandomBlock(1003, rng);  // Odd size exercises padding.
  const auto chunks = codec.Encode(block);
  for (ChunkIndex a = 0; a < 4; ++a) {
    for (ChunkIndex b = a + 1; b < 4; ++b) {
      EXPECT_EQ(codec.Decode(Pick(chunks, {a, b}), block.size()), block)
          << "chunks " << a << "," << b;
    }
  }
}

TEST(ReedSolomonTest, DecodeOrderDoesNotMatter) {
  ReedSolomonCodec codec(2, 2);
  Rng rng(4);
  const auto block = RandomBlock(512, rng);
  const auto chunks = codec.Encode(block);
  EXPECT_EQ(codec.Decode(Pick(chunks, {3, 0}), block.size()), block);
  EXPECT_EQ(codec.Decode(Pick(chunks, {0, 3}), block.size()), block);
  EXPECT_EQ(codec.Decode(Pick(chunks, {3, 2}), block.size()), block);
}

TEST(ReedSolomonTest, ExtraChunksIgnored) {
  ReedSolomonCodec codec(2, 2);
  Rng rng(5);
  const auto block = RandomBlock(256, rng);
  const auto chunks = codec.Encode(block);
  // Late binding delivers more than k chunks; decode uses the first k.
  EXPECT_EQ(codec.Decode(Pick(chunks, {1, 2, 3}), block.size()), block);
  EXPECT_EQ(codec.Decode(Pick(chunks, {0, 1, 2, 3}), block.size()), block);
}

TEST(ReedSolomonTest, DuplicateChunksRejected) {
  ReedSolomonCodec codec(2, 2);
  Rng rng(6);
  const auto block = RandomBlock(64, rng);
  const auto chunks = codec.Encode(block);
  EXPECT_THROW(codec.Decode(Pick(chunks, {1, 1}), block.size()),
               std::invalid_argument);
}

TEST(ReedSolomonTest, TooFewChunksRejected) {
  ReedSolomonCodec codec(3, 2);
  Rng rng(7);
  const auto block = RandomBlock(64, rng);
  const auto chunks = codec.Encode(block);
  EXPECT_THROW(codec.Decode(Pick(chunks, {0, 1}), block.size()),
               std::invalid_argument);
}

TEST(ReedSolomonTest, OutOfRangeIndexRejected) {
  ReedSolomonCodec codec(2, 1);
  std::vector<IndexedChunk> bad = {{7, ChunkData(10)}, {0, ChunkData(10)}};
  EXPECT_THROW(codec.Decode(bad, 20), std::invalid_argument);
}

TEST(ReedSolomonTest, WrongChunkSizeRejected) {
  ReedSolomonCodec codec(2, 1);
  Rng rng(8);
  const auto block = RandomBlock(100, rng);
  auto chunks = codec.Encode(block);
  chunks[0].pop_back();
  EXPECT_THROW(codec.Decode(Pick(chunks, {0, 1}), block.size()),
               std::invalid_argument);
}

TEST(ReedSolomonTest, EmptyBlockRoundTrips) {
  ReedSolomonCodec codec(2, 2);
  const std::vector<std::uint8_t> empty;
  const auto chunks = codec.Encode(empty);
  EXPECT_EQ(codec.Decode(Pick(chunks, {2, 3}), 0).size(), 0u);
}

TEST(ReedSolomonTest, OneByteBlockRoundTrips) {
  ReedSolomonCodec codec(2, 2);
  const std::vector<std::uint8_t> one = {0xAB};
  const auto chunks = codec.Encode(one);
  for (ChunkIndex a = 0; a < 4; ++a) {
    for (ChunkIndex b = a + 1; b < 4; ++b) {
      EXPECT_EQ(codec.Decode(Pick(chunks, {a, b}), 1), one);
    }
  }
}

TEST(ReedSolomonTest, IsTrivialDecodeDetectsSystematic) {
  ReedSolomonCodec codec(2, 2);
  const std::vector<ChunkIndex> sys = {0, 1};
  const std::vector<ChunkIndex> mixed = {0, 2};
  const std::vector<ChunkIndex> parity = {2, 3};
  EXPECT_TRUE(codec.IsTrivialDecode(sys));
  EXPECT_FALSE(codec.IsTrivialDecode(mixed));
  EXPECT_FALSE(codec.IsTrivialDecode(parity));
}

// Parameterized sweep across (k, r) configurations and block sizes:
// property-test the MDS guarantee with randomly chosen chunk subsets.
class RsParamTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t, std::size_t>> {};

TEST_P(RsParamTest, RandomKSubsetsDecode) {
  const auto [k, r, size] = GetParam();
  ReedSolomonCodec codec(k, r);
  Rng rng(1000 + k * 31 + r * 7 + size);
  const auto block = RandomBlock(size, rng);
  const auto chunks = codec.Encode(block);

  for (int trial = 0; trial < 10; ++trial) {
    // Random k-subset of [0, k+r).
    std::vector<ChunkIndex> all(k + r);
    std::iota(all.begin(), all.end(), 0u);
    for (std::size_t i = all.size(); i > 1; --i) {
      std::swap(all[i - 1], all[rng.NextBounded(i)]);
    }
    all.resize(k);
    EXPECT_EQ(codec.Decode(Pick(chunks, all), block.size()), block);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, RsParamTest,
    ::testing::Values(
        std::make_tuple(2u, 1u, 1000u), std::make_tuple(2u, 2u, 1000u),
        std::make_tuple(3u, 2u, 1000u), std::make_tuple(4u, 2u, 1000u),
        std::make_tuple(6u, 3u, 1000u), std::make_tuple(10u, 4u, 1000u),
        std::make_tuple(2u, 2u, 1u), std::make_tuple(2u, 2u, 17u),
        std::make_tuple(3u, 3u, 100001u), std::make_tuple(5u, 1u, 4097u)));

// --- Replication ------------------------------------------------------------

TEST(ReplicationTest, RejectsZeroFaults) {
  EXPECT_THROW(ReplicationCodec(0), std::invalid_argument);
}

TEST(ReplicationTest, Shape) {
  ReplicationCodec codec(2);
  EXPECT_EQ(codec.RequiredChunks(), 1u);
  EXPECT_EQ(codec.TotalChunks(), 3u);  // Paper: three copies.
  EXPECT_EQ(codec.FaultTolerance(), 2u);
  EXPECT_DOUBLE_EQ(codec.StorageOverhead(), 3.0);
  EXPECT_EQ(codec.ChunkSize(12345), 12345u);
}

TEST(ReplicationTest, EveryReplicaIsTheBlock) {
  ReplicationCodec codec(2);
  Rng rng(9);
  const auto block = RandomBlock(100, rng);
  const auto copies = codec.Encode(block);
  ASSERT_EQ(copies.size(), 3u);
  for (const auto& c : copies) EXPECT_EQ(c, block);
}

TEST(ReplicationTest, AnySingleReplicaDecodes) {
  ReplicationCodec codec(2);
  Rng rng(10);
  const auto block = RandomBlock(100, rng);
  const auto copies = codec.Encode(block);
  for (ChunkIndex i = 0; i < 3; ++i) {
    EXPECT_EQ(codec.Decode(Pick(copies, {i}), block.size()), block);
  }
}

TEST(ReplicationTest, NoChunksRejected) {
  ReplicationCodec codec(2);
  std::vector<IndexedChunk> none;
  EXPECT_THROW(codec.Decode(none, 10), std::invalid_argument);
}

TEST(ReplicationTest, DecodeIsAlwaysTrivial) {
  ReplicationCodec codec(2);
  const std::vector<ChunkIndex> any = {2};
  EXPECT_TRUE(codec.IsTrivialDecode(any));
}

// Storage-overhead comparison, the paper's core motivation: replication
// stores 50% more than RS(2,2) at equal fault tolerance.
TEST(CodecComparisonTest, PaperStorageOverheadClaim) {
  ReedSolomonCodec ec(2, 2);
  ReplicationCodec rep(2);
  EXPECT_EQ(ec.FaultTolerance(), rep.FaultTolerance());
  EXPECT_DOUBLE_EQ(rep.StorageOverhead() / ec.StorageOverhead(), 1.5);
}

}  // namespace
}  // namespace ecstore
