// Exhaustive Reed–Solomon round-trips: for (k, r) in {(4,2), (6,3),
// (10,4)}, decode from EVERY k-subset of the k+r chunks (every erasure
// pattern the code claims to tolerate) and require byte equality with
// the original block — under every dispatched GF kernel path, and with
// identical encodings across paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "erasure/codec.h"
#include "gf/gf256_kernels.h"

namespace ecstore {
namespace {

std::vector<std::uint8_t> RandomBlock(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> block(n);
  for (auto& b : block) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  return block;
}

std::vector<gf::KernelPath> SupportedPaths() {
  std::vector<gf::KernelPath> paths;
  for (gf::KernelPath p : {gf::KernelPath::kScalar, gf::KernelPath::kSsse3,
                           gf::KernelPath::kAvx2}) {
    if (gf::CpuSupports(p)) paths.push_back(p);
  }
  return paths;
}

struct Scheme {
  std::uint32_t k, r;
};
const Scheme kSchemes[] = {{4, 2}, {6, 3}, {10, 4}};

TEST(RsExhaustiveTest, RoundTripsEveryErasurePatternOnEveryKernelPath) {
  for (const gf::KernelPath path : SupportedPaths()) {
    ASSERT_TRUE(gf::ForceKernelPath(path));
    for (const Scheme s : kSchemes) {
      ReedSolomonCodec codec(s.k, s.r);
      // Not a multiple of k, so the last systematic chunk is padded.
      const std::size_t block_size = static_cast<std::size_t>(s.k) * 1000 + 17;
      const auto block = RandomBlock(block_size, 7 * s.k + s.r);
      const auto chunks = codec.Encode(block);
      ASSERT_EQ(chunks.size(), s.k + s.r);

      // Every k-subset of the k+r chunk indices.
      const std::uint32_t total = s.k + s.r;
      std::vector<bool> pick(total, false);
      std::fill(pick.begin(), pick.begin() + s.k, true);
      std::size_t patterns = 0;
      do {
        std::vector<IndexedChunk> held;
        for (std::uint32_t i = 0; i < total; ++i) {
          if (pick[i]) held.push_back({static_cast<ChunkIndex>(i), chunks[i]});
        }
        const auto decoded = codec.Decode(held, block_size);
        ASSERT_EQ(decoded, block)
            << "kernel=" << gf::KernelPathName(path) << " RS(" << s.k << ","
            << s.r << ") pattern #" << patterns;
        ++patterns;
      } while (std::prev_permutation(pick.begin(), pick.end()));
      // C(k+r, k) patterns must all have been exercised.
      std::size_t expect = 1;
      for (std::uint32_t i = 1; i <= s.r; ++i) {
        expect = expect * (total - s.r + i) / i;
      }
      EXPECT_EQ(patterns, expect);
    }
    gf::ResetKernelPath();
  }
}

TEST(RsExhaustiveTest, EncodingIsIdenticalAcrossKernelPaths) {
  const auto paths = SupportedPaths();
  for (const Scheme s : kSchemes) {
    ReedSolomonCodec codec(s.k, s.r);
    const auto block = RandomBlock(100 * 1024 + 3, 99);
    std::vector<std::vector<ChunkData>> encodings;
    for (const gf::KernelPath path : paths) {
      ASSERT_TRUE(gf::ForceKernelPath(path));
      encodings.push_back(codec.Encode(block));
      gf::ResetKernelPath();
    }
    for (std::size_t i = 1; i < encodings.size(); ++i) {
      EXPECT_EQ(encodings[i], encodings[0])
          << gf::KernelPathName(paths[i]) << " vs "
          << gf::KernelPathName(paths[0]) << " RS(" << s.k << "," << s.r
          << ")";
    }
  }
}

TEST(RsExhaustiveTest, DuplicateChunksAreIgnoredNotDoubleCounted) {
  // The seen-bitmap must skip duplicates even when they arrive
  // interleaved with fresh indices.
  ReedSolomonCodec codec(4, 2);
  const auto block = RandomBlock(4096, 5);
  const auto chunks = codec.Encode(block);
  const std::vector<IndexedChunk> held = {
      {5, chunks[5]}, {5, chunks[5]}, {1, chunks[1]}, {1, chunks[1]},
      {4, chunks[4]}, {5, chunks[5]}, {2, chunks[2]}, {0, chunks[0]},
  };
  EXPECT_EQ(codec.Decode(held, block.size()), block);
}

}  // namespace
}  // namespace ecstore
