// Tests for the batched storage-service request model: one dispatch
// overhead per site request, per-chunk media work in parallel server
// slots — the mechanism that makes co-located access cheap (Eq. 1's
// single o_j per accessed site).
#include <gtest/gtest.h>

#include <vector>

#include "sim/site.h"

namespace ecstore::sim {
namespace {

SiteParams FlatParams(std::uint32_t concurrency) {
  SiteParams p;
  p.jitter_sigma = 0.0;
  p.stall_probability = 0.0;
  p.load_sensitivity = 0.0;
  p.concurrency = concurrency;
  return p;
}

SimTime RunBatch(SiteParams params, const std::vector<std::uint64_t>& sizes) {
  EventQueue q;
  SimSite site(0, &q, params, Rng(1));
  SimTime done = -1;
  site.SubmitBatchRead(sizes, [&](SimTime t) { done = t; });
  q.RunAll();
  return done;
}

TEST(BatchReadTest, SingleChunkMatchesSubmitRead) {
  const SiteParams p = FlatParams(4);
  EventQueue q;
  SimSite site(0, &q, p, Rng(1));
  SimTime single = -1;
  site.SubmitRead(100 * 1024, [&](SimTime t) { single = t; });
  q.RunAll();
  const SimTime batch = RunBatch(p, {100 * 1024});
  EXPECT_EQ(batch, single);
}

TEST(BatchReadTest, ParallelChunksCostOneOverhead) {
  // With enough servers, a 4-chunk batch finishes in roughly the time of
  // one full-overhead chunk — not 4x.
  const SiteParams p = FlatParams(8);
  const std::uint64_t chunk = 512 * 1024;
  const SimTime one = RunBatch(p, {chunk});
  const SimTime four = RunBatch(p, {chunk, chunk, chunk, chunk});
  EXPECT_LT(four, 2 * one);
  EXPECT_GE(four, one);
}

TEST(BatchReadTest, SerializesWhenServersExhausted) {
  // One server: the batch's chunks run back-to-back.
  const SiteParams p = FlatParams(1);
  const std::uint64_t chunk = 512 * 1024;
  const SimTime one = RunBatch(p, {chunk});
  const SimTime three = RunBatch(p, {chunk, chunk, chunk});
  EXPECT_GT(three, 2 * one);
}

TEST(BatchReadTest, CompletionIsLastChunk) {
  // Mixed sizes: the big chunk dominates completion.
  const SiteParams p = FlatParams(8);
  const SimTime small_only = RunBatch(p, {10 * 1024});
  const SimTime mixed = RunBatch(p, {10 * 1024, 8 * 1024 * 1024});
  EXPECT_GT(mixed, 5 * small_only);
}

TEST(BatchReadTest, AllBytesCounted) {
  EventQueue q;
  SimSite site(0, &q, FlatParams(4), Rng(1));
  const std::vector<std::uint64_t> sizes = {1000, 2000, 3000};
  site.SubmitBatchRead(sizes, [](SimTime) {});
  q.RunAll();
  EXPECT_EQ(site.total_bytes_read(), 6000u);
}

TEST(BatchReadTest, OverheadSavingVsSeparateRequests) {
  // Two chunks in one batch beat two separate full-overhead requests in
  // total busy time (the co-location saving the cost model captures).
  const SiteParams p = FlatParams(1);  // Serial: compare total work.
  const std::uint64_t chunk = 50 * 1024;

  EventQueue q1;
  SimSite separate(0, &q1, p, Rng(1));
  SimTime sep_done = 0;
  separate.SubmitRead(chunk, [](SimTime) {});
  separate.SubmitRead(chunk, [&](SimTime t) { sep_done = t; });
  q1.RunAll();

  const SimTime batched = RunBatch(p, {chunk, chunk});
  EXPECT_LT(batched, sep_done);
  // The saving is roughly one (request_overhead - per_chunk_overhead).
  const SimTime saving = sep_done - batched;
  EXPECT_NEAR(static_cast<double>(saving),
              static_cast<double>(p.request_overhead - p.per_chunk_overhead),
              200.0);
}

}  // namespace
}  // namespace ecstore::sim
