#include "sim/site.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"

namespace ecstore::sim {
namespace {

SiteParams NoJitterParams() {
  SiteParams p;
  p.jitter_sigma = 0.0;  // Deterministic service times for exact checks.
  p.stall_probability = 0.0;
  p.concurrency = 1;  // Serial service makes queueing arithmetic exact.
  p.load_sensitivity = 0.0;
  return p;
}

TEST(SimSiteTest, SingleReadTakesOverheadPlusTransfer) {
  EventQueue q;
  SimSite site(0, &q, NoJitterParams(), Rng(1));
  SimTime done_at = -1;
  const std::uint64_t bytes = 50 * 1024;
  site.SubmitRead(bytes, [&](SimTime t) { done_at = t; });
  q.RunAll();
  const SiteParams p = NoJitterParams();
  const auto expected =
      p.request_overhead +
      static_cast<SimTime>((static_cast<double>(bytes) / p.disk_bytes_per_sec +
                            static_cast<double>(bytes) / p.net_bytes_per_sec) *
                           kSecond);
  EXPECT_NEAR(static_cast<double>(done_at), static_cast<double>(expected), 2.0);
}

TEST(SimSiteTest, RequestsQueueFifo) {
  EventQueue q;
  SimSite site(0, &q, NoJitterParams(), Rng(1));
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    site.SubmitRead(100 * 1024, [&](SimTime t) { completions.push_back(t); });
  }
  q.RunAll();
  ASSERT_EQ(completions.size(), 3u);
  // Each successive request completes one service time after the previous.
  const SimTime s1 = completions[0];
  EXPECT_NEAR(static_cast<double>(completions[1]), static_cast<double>(2 * s1), 3.0);
  EXPECT_NEAR(static_cast<double>(completions[2]), static_cast<double>(3 * s1), 4.0);
}

TEST(SimSiteTest, QueueingProducesStragglers) {
  // A site under load serves later requests much more slowly than an
  // idle site: the straggler mechanism of Section III.
  EventQueue q;
  SimSite hot(0, &q, NoJitterParams(), Rng(1));
  SimSite cold(1, &q, NoJitterParams(), Rng(2));
  for (int i = 0; i < 20; ++i) {
    hot.SubmitRead(100 * 1024, [](SimTime) {});
  }
  SimTime hot_done = 0, cold_done = 0;
  hot.SubmitRead(100 * 1024, [&](SimTime t) { hot_done = t; });
  cold.SubmitRead(100 * 1024, [&](SimTime t) { cold_done = t; });
  q.RunAll();
  EXPECT_GT(hot_done, 10 * cold_done);
}

TEST(SimSiteTest, ProbeMeasuresQueueingDelay) {
  EventQueue q;
  SimSite site(0, &q, NoJitterParams(), Rng(1));
  SimTime idle_probe = 0;
  site.SubmitProbe([&](SimTime t) { idle_probe = t; });
  q.RunAll();

  // Load the site, then probe again from t = idle_probe.
  for (int i = 0; i < 10; ++i) site.SubmitRead(1024 * 1024, [](SimTime) {});
  SimTime busy_probe_start = q.Now();
  SimTime busy_probe_done = 0;
  site.SubmitProbe([&](SimTime t) { busy_probe_done = t; });
  q.RunAll();
  EXPECT_GT(busy_probe_done - busy_probe_start, 5 * idle_probe);
}

TEST(SimSiteTest, JitterVariesServiceTimes) {
  EventQueue q;
  SiteParams p;
  p.jitter_sigma = 0.5;
  SimSite site(0, &q, p, Rng(42));
  // Sequential requests, one at a time, measuring isolated service times.
  std::vector<SimTime> services;
  SimTime prev = 0;
  for (int i = 0; i < 20; ++i) {
    SimTime done = 0;
    site.SubmitRead(100 * 1024, [&](SimTime t) { done = t; });
    q.RunAll();
    services.push_back(done - prev);
    prev = done;
  }
  SimTime min_s = services[0], max_s = services[0];
  for (SimTime s : services) {
    min_s = std::min(min_s, s);
    max_s = std::max(max_s, s);
  }
  EXPECT_GT(max_s, min_s);  // Heavy-tailed jitter actually applied.
}

TEST(SimSiteTest, ReportMeasuresUtilizationAndRate) {
  EventQueue q;
  SimSite site(0, &q, NoJitterParams(), Rng(1));
  // Consume the first (empty) interval.
  q.RunUntil(kSecond);
  (void)site.CollectReport();

  // Saturate for more than the whole next interval.
  for (int i = 0; i < 300; ++i) site.SubmitRead(1024 * 1024, [](SimTime) {});
  q.RunUntil(q.Now() + kSecond);
  const LoadReport report = site.CollectReport();
  EXPECT_GT(report.cpu_utilization, 0.9);
  EXPECT_GT(report.io_bytes_per_sec, 10.0 * 1024 * 1024);

  // After the queue drains and an idle interval passes, load drops to 0.
  q.RunAll();
  (void)site.CollectReport();
  q.RunUntil(q.Now() + kSecond);
  const LoadReport idle = site.CollectReport();
  EXPECT_EQ(idle.cpu_utilization, 0.0);
  EXPECT_EQ(idle.io_bytes_per_sec, 0.0);
}

TEST(SimSiteTest, WritesDoNotCountAsReadIo) {
  EventQueue q;
  SimSite site(0, &q, NoJitterParams(), Rng(1));
  site.SubmitWrite(10 * 1024 * 1024, [](SimTime) {});
  q.RunAll();
  EXPECT_EQ(site.total_bytes_read(), 0u);
  site.SubmitRead(1024, [](SimTime) {});
  q.RunAll();
  EXPECT_EQ(site.total_bytes_read(), 1024u);
}

TEST(SimSiteTest, AvailabilityFlag) {
  EventQueue q;
  SimSite site(0, &q, NoJitterParams(), Rng(1));
  EXPECT_TRUE(site.available());
  site.set_available(false);
  EXPECT_FALSE(site.available());
}

TEST(NetworkTest, ResponseDelayScalesWithPayload) {
  NetworkParams p;
  p.jitter_sigma = 0.0;
  Network net(p, Rng(1));
  const SimTime small = net.ResponseDelay(1024);
  const SimTime large = net.ResponseDelay(100 * 1024 * 1024);
  EXPECT_GT(large, small + 50 * kMillisecond / 2);
}

TEST(NetworkTest, DelaysArePositive) {
  Network net(NetworkParams{}, Rng(7));
  for (int i = 0; i < 100; ++i) {
    EXPECT_GT(net.RequestDelay(), 0);
    EXPECT_GT(net.ResponseDelay(0), 0);
  }
}

}  // namespace
}  // namespace ecstore::sim
