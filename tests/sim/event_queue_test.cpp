#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ecstore::sim {
namespace {

TEST(EventQueueTest, StartsAtZero) {
  EventQueue q;
  EXPECT_EQ(q.Now(), 0);
  EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now(), 30);
}

TEST(EventQueueTest, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(100, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, ScheduleAfterUsesNow) {
  EventQueue q;
  SimTime fired_at = -1;
  q.ScheduleAt(50, [&] {
    q.ScheduleAfter(25, [&] { fired_at = q.Now(); });
  });
  q.RunAll();
  EXPECT_EQ(fired_at, 75);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  SimTime fired_at = -1;
  q.ScheduleAt(100, [&] {
    q.ScheduleAt(10, [&] { fired_at = q.Now(); });  // In the past.
  });
  q.RunAll();
  EXPECT_EQ(fired_at, 100);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] { ++fired; });
  q.ScheduleAt(20, [&] { ++fired; });
  q.ScheduleAt(30, [&] { ++fired; });
  q.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.Now(), 20);
  EXPECT_EQ(q.pending(), 1u);
  q.RunUntil(100);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.Now(), 100);  // Clock advances to the deadline.
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int chain = 0;
  std::function<void()> tick = [&] {
    if (++chain < 10) q.ScheduleAfter(5, tick);
  };
  q.ScheduleAt(0, tick);
  q.RunAll();
  EXPECT_EQ(chain, 10);
  EXPECT_EQ(q.Now(), 45);
}

TEST(EventQueueTest, StepFiresOne) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1, [&] { ++fired; });
  q.ScheduleAt(2, [&] { ++fired; });
  EXPECT_TRUE(q.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(q.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(q.Step());
}

}  // namespace
}  // namespace ecstore::sim
