// Statistical checks of the cluster simulation model: the knobs
// (jitter, stalls, contention, concurrency) must do what their
// documentation claims, since every experiment's validity rests on them.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/site.h"

namespace ecstore::sim {
namespace {

/// Serves `n` isolated requests (one at a time) and returns service times.
std::vector<SimTime> IsolatedServices(SiteParams params, int n,
                                      std::uint64_t bytes, std::uint64_t seed) {
  EventQueue q;
  SimSite site(0, &q, params, Rng(seed));
  std::vector<SimTime> services;
  SimTime prev = 0;
  for (int i = 0; i < n; ++i) {
    q.RunUntil(q.Now() + kSecond);  // Idle gap: no queueing between them.
    const SimTime begin = q.Now();
    (void)begin;
    SimTime done = 0;
    site.SubmitRead(bytes, [&](SimTime t) { done = t; });
    q.RunAll();
    services.push_back(done - prev - kSecond);
    prev = done;
  }
  return services;
}

TEST(SimModelTest, StallFrequencyMatchesParameter) {
  SiteParams p;
  p.jitter_sigma = 0.05;
  p.stall_probability = 0.10;
  p.stall_multiplier = 10.0;
  p.load_sensitivity = 0;
  const auto services = IsolatedServices(p, 2000, 100 * 1024, 42);

  // A stalled request takes ~10x; classify by 3x median.
  std::vector<SimTime> sorted = services;
  std::sort(sorted.begin(), sorted.end());
  const SimTime median = sorted[sorted.size() / 2];
  int stalls = 0;
  for (SimTime s : services) stalls += (s > 3 * median);
  EXPECT_NEAR(static_cast<double>(stalls) / services.size(), 0.10, 0.03);
}

TEST(SimModelTest, JitterSigmaControlsSpread) {
  SiteParams narrow, wide;
  narrow.jitter_sigma = 0.1;
  narrow.stall_probability = 0;
  narrow.load_sensitivity = 0;
  wide = narrow;
  wide.jitter_sigma = 0.8;

  const auto a = IsolatedServices(narrow, 500, 1024 * 1024, 1);
  const auto b = IsolatedServices(wide, 500, 1024 * 1024, 1);
  const auto spread = [](const std::vector<SimTime>& v) {
    std::vector<SimTime> s = v;
    std::sort(s.begin(), s.end());
    return static_cast<double>(s[static_cast<std::size_t>(s.size() * 0.95)]) /
           static_cast<double>(s[s.size() / 2]);
  };
  EXPECT_GT(spread(b), spread(a) * 1.3);
}

TEST(SimModelTest, ContentionSlowsLoadedSite) {
  SiteParams p;
  p.jitter_sigma = 0;
  p.stall_probability = 0;
  p.concurrency = 8;
  p.load_sensitivity = 0.5;

  // Isolated request.
  EventQueue q1;
  SimSite idle(0, &q1, p, Rng(1));
  SimTime idle_done = 0;
  idle.SubmitRead(100 * 1024, [&](SimTime t) { idle_done = t; });
  q1.RunAll();

  // Same request while 6 others are in flight (servers NOT exhausted:
  // the slowdown is contention, not queueing).
  EventQueue q2;
  SimSite busy(0, &q2, p, Rng(1));
  for (int i = 0; i < 6; ++i) busy.SubmitRead(8 * 1024 * 1024, [](SimTime) {});
  SimTime busy_done_at = 0;
  const SimTime submit_at = q2.Now();
  busy.SubmitRead(100 * 1024, [&](SimTime t) { busy_done_at = t; });
  q2.RunAll();
  EXPECT_GT(busy_done_at - submit_at, idle_done);
}

TEST(SimModelTest, ConcurrencyBoundsParallelism) {
  // 12 equal requests on c=4 servers finish in ~3 service times.
  SiteParams p;
  p.jitter_sigma = 0;
  p.stall_probability = 0;
  p.load_sensitivity = 0;
  p.concurrency = 4;
  EventQueue q;
  SimSite site(0, &q, p, Rng(1));
  SimTime one_service = 0;
  site.SubmitRead(1024 * 1024, [&](SimTime t) { one_service = t; });
  q.RunAll();

  EventQueue q2;
  SimSite site2(0, &q2, p, Rng(1));
  SimTime last = 0;
  for (int i = 0; i < 12; ++i) {
    site2.SubmitRead(1024 * 1024, [&](SimTime t) { last = std::max(last, t); });
  }
  q2.RunAll();
  EXPECT_NEAR(static_cast<double>(last), 3.0 * static_cast<double>(one_service),
              0.15 * static_cast<double>(one_service));
}

TEST(SimModelTest, SiteIsDeterministicPerSeed) {
  const auto run = [](std::uint64_t seed) {
    SiteParams p;  // Full default randomness.
    EventQueue q;
    SimSite site(0, &q, p, Rng(seed));
    std::vector<SimTime> completions;
    for (int i = 0; i < 100; ++i) {
      site.SubmitRead(64 * 1024, [&](SimTime t) { completions.push_back(t); });
    }
    q.RunAll();
    return completions;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(SimModelTest, ProbeRespondsToQueueDepthMonotonically) {
  // Deeper backlogs yield larger probe RTTs — the property o_j relies on.
  SiteParams p;
  p.jitter_sigma = 0;
  p.stall_probability = 0;
  p.concurrency = 2;
  double last_rtt = -1;
  for (int backlog : {0, 4, 8, 16}) {
    EventQueue q;
    SimSite site(0, &q, p, Rng(1));
    for (int i = 0; i < backlog; ++i) {
      site.SubmitRead(2 * 1024 * 1024, [](SimTime) {});
    }
    const SimTime sent = q.Now();
    SimTime done = 0;
    site.SubmitProbe([&](SimTime t) { done = t; });
    q.RunAll();
    const double rtt = static_cast<double>(done - sent);
    EXPECT_GT(rtt, last_rtt);
    last_rtt = rtt;
  }
}

}  // namespace
}  // namespace ecstore::sim
