// Bit-exactness tests for the dispatched GF(2^8) kernels: every path the
// CPU supports (scalar, ssse3, avx2) must produce byte-identical output
// to an independent scalar reference built on gf::Mul, on random and
// adversarial buffers — unaligned offsets, every length in [0, 64], and
// megabyte regions that exercise the wide inner loops plus their tails.
#include "gf/gf256_kernels.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "gf/gf256.h"

namespace ecstore::gf {
namespace {

std::vector<KernelPath> SupportedPaths() {
  std::vector<KernelPath> paths;
  for (KernelPath p :
       {KernelPath::kScalar, KernelPath::kSsse3, KernelPath::kAvx2}) {
    if (CpuSupports(p)) paths.push_back(p);
  }
  return paths;
}

std::vector<Elem> RandomBytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Elem> v(n);
  for (auto& b : v) b = static_cast<Elem>(rng.NextBounded(256));
  return v;
}

// Constants that stress every kernel special case: 0 (annihilator),
// 1 (pure XOR), 2 (generator), high-bit values, and arbitrary ones.
const Elem kConstants[] = {0, 1, 2, 3, 0x1D, 0x57, 0x80, 0xFE, 0xFF};

class KernelPathTest : public ::testing::TestWithParam<KernelPath> {
 protected:
  void SetUp() override {
    ASSERT_TRUE(ForceKernelPath(GetParam()))
        << "path " << KernelPathName(GetParam()) << " unsupported";
    kernels_ = KernelsFor(GetParam());
    ASSERT_NE(kernels_, nullptr);
  }
  void TearDown() override { ResetKernelPath(); }

  const Kernels* kernels_ = nullptr;
};

TEST_P(KernelPathTest, MulTableMatchesFieldMul) {
  for (Elem c : kConstants) {
    MulTable t;
    BuildMulTable(c, t);
    EXPECT_EQ(t.c, c);
    for (unsigned v = 0; v < 256; ++v) {
      EXPECT_EQ(t.full[v], Mul(c, static_cast<Elem>(v))) << "c=" << int(c);
      EXPECT_EQ(t.full[v], static_cast<Elem>(t.lo[v & 0x0f] ^ t.hi[v >> 4]));
    }
  }
}

TEST_P(KernelPathTest, MulAddBitExactOnShortUnalignedBuffers) {
  // Backing stores are oversized so every (offset, length) pair fits;
  // offsets 0..15 cover every SIMD lane alignment.
  const auto src_store = RandomBytes(256, 1);
  const auto dst_store = RandomBytes(256, 2);
  for (std::size_t offset = 0; offset < 16; ++offset) {
    for (std::size_t len = 0; len <= 64; ++len) {
      for (Elem c : {Elem{0x57}, Elem{2}, Elem{0xFF}}) {
        MulTable t;
        BuildMulTable(c, t);
        std::vector<Elem> dst(dst_store.begin() + offset,
                              dst_store.begin() + offset + len);
        std::vector<Elem> expected = dst;
        for (std::size_t i = 0; i < len; ++i) {
          expected[i] ^= Mul(c, src_store[offset + i]);
        }
        kernels_->mul_add(t, src_store.data() + offset, dst.data(), len);
        EXPECT_EQ(dst, expected)
            << "offset=" << offset << " len=" << len << " c=" << int(c);
      }
    }
  }
}

TEST_P(KernelPathTest, MulAndMulAddBitExactOnMegabyteBuffer) {
  // 1 MB + 21: an odd tail after every vector width.
  const std::size_t n = (1u << 20) + 21;
  const auto src = RandomBytes(n, 3);
  for (Elem c : kConstants) {
    MulTable t;
    BuildMulTable(c, t);

    auto dst = RandomBytes(n, 4);
    std::vector<Elem> expected(n);
    for (std::size_t i = 0; i < n; ++i) expected[i] = dst[i] ^ Mul(c, src[i]);
    kernels_->mul_add(t, src.data(), dst.data(), n);
    ASSERT_EQ(dst, expected) << "mul_add c=" << int(c);

    std::vector<Elem> out(n, 0xAA);
    for (std::size_t i = 0; i < n; ++i) expected[i] = Mul(c, src[i]);
    kernels_->mul(t, src.data(), out.data(), n);
    ASSERT_EQ(out, expected) << "mul c=" << int(c);
  }
}

TEST_P(KernelPathTest, AddBitExact) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{17},
                        std::size_t{64}, std::size_t{100000}}) {
    const auto src = RandomBytes(n, 5);
    auto dst = RandomBytes(n, 6);
    std::vector<Elem> expected(n);
    for (std::size_t i = 0; i < n; ++i) expected[i] = dst[i] ^ src[i];
    kernels_->add(src.data(), dst.data(), n);
    EXPECT_EQ(dst, expected) << "n=" << n;
  }
}

TEST_P(KernelPathTest, MulAddMultiBitExact) {
  for (std::size_t nsrc : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                           std::size_t{5}, std::size_t{10}}) {
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{63},
                          std::size_t{64}, std::size_t{12345}}) {
      std::vector<std::vector<Elem>> bufs;
      std::vector<const Elem*> srcs;
      std::vector<MulTable> tabs(nsrc);
      for (std::size_t j = 0; j < nsrc; ++j) {
        bufs.push_back(RandomBytes(n, 100 + j));
        srcs.push_back(bufs.back().data());
        BuildMulTable(static_cast<Elem>(5 + 11 * j), tabs[j]);
      }
      for (bool accumulate : {false, true}) {
        auto dst = RandomBytes(n, 7);
        std::vector<Elem> expected(n);
        for (std::size_t i = 0; i < n; ++i) {
          Elem x = accumulate ? dst[i] : 0;
          for (std::size_t j = 0; j < nsrc; ++j) {
            x ^= Mul(tabs[j].c, bufs[j][i]);
          }
          expected[i] = x;
        }
        kernels_->mul_add_multi(tabs.data(), srcs.data(), nsrc, dst.data(), n,
                                accumulate);
        EXPECT_EQ(dst, expected)
            << "nsrc=" << nsrc << " n=" << n << " accumulate=" << accumulate;
      }
    }
  }
}

TEST_P(KernelPathTest, PublicRegionApiUsesForcedPath) {
  // The span-level API must behave identically regardless of path.
  const std::size_t n = 4097;
  const auto src = RandomBytes(n, 8);
  auto dst = RandomBytes(n, 9);
  std::vector<Elem> expected = dst;
  for (std::size_t i = 0; i < n; ++i) expected[i] ^= Mul(0x6B, src[i]);
  MulAddRegion(0x6B, src, dst);
  EXPECT_EQ(dst, expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllSupportedPaths, KernelPathTest, ::testing::ValuesIn(SupportedPaths()),
    [](const ::testing::TestParamInfo<KernelPath>& info) {
      return KernelPathName(info.param);
    });

TEST(KernelDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(CpuSupports(KernelPath::kScalar));
  EXPECT_NE(KernelsFor(KernelPath::kScalar), nullptr);
}

TEST(KernelDispatchTest, ActiveKernelsIsSupported) {
  const Kernels& k = ActiveKernels();
  EXPECT_TRUE(CpuSupports(k.path));
  EXPECT_STREQ(k.name, KernelPathName(k.path));
}

TEST(KernelDispatchTest, KernelsForUnsupportedPathIsNull) {
  for (KernelPath p : {KernelPath::kSsse3, KernelPath::kAvx2}) {
    if (!CpuSupports(p)) {
      EXPECT_EQ(KernelsFor(p), nullptr);
    }
  }
}

TEST(KernelDispatchTest, ForceAndResetRoundTrip) {
  const KernelPath original = ActiveKernels().path;
  ASSERT_TRUE(ForceKernelPath(KernelPath::kScalar));
  EXPECT_EQ(ActiveKernels().path, KernelPath::kScalar);
  ResetKernelPath();
  EXPECT_EQ(ActiveKernels().path, original);
}

TEST(KernelDispatchTest, AllPathsAgreeOnRandomRegions) {
  const auto paths = SupportedPaths();
  const std::size_t n = 65536 + 13;
  const auto src = RandomBytes(n, 10);
  const auto dst0 = RandomBytes(n, 11);
  MulTable t;
  BuildMulTable(0xC3, t);
  std::vector<std::vector<Elem>> results;
  for (KernelPath p : paths) {
    auto dst = dst0;
    KernelsFor(p)->mul_add(t, src.data(), dst.data(), n);
    results.push_back(std::move(dst));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0])
        << KernelPathName(paths[i]) << " vs " << KernelPathName(paths[0]);
  }
}

}  // namespace
}  // namespace ecstore::gf
