#include "gf/gf256.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace ecstore::gf {
namespace {

TEST(Gf256Test, AddIsXor) {
  EXPECT_EQ(Add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(Add(0, 7), 7);
  EXPECT_EQ(Add(7, 7), 0);  // Characteristic 2: x + x = 0.
}

TEST(Gf256Test, MulIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(Mul(static_cast<Elem>(a), 1), a);
    EXPECT_EQ(Mul(1, static_cast<Elem>(a)), a);
    EXPECT_EQ(Mul(static_cast<Elem>(a), 0), 0);
    EXPECT_EQ(Mul(0, static_cast<Elem>(a)), 0);
  }
}

TEST(Gf256Test, MulCommutative) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const Elem a = static_cast<Elem>(rng.NextBounded(256));
    const Elem b = static_cast<Elem>(rng.NextBounded(256));
    EXPECT_EQ(Mul(a, b), Mul(b, a));
  }
}

TEST(Gf256Test, MulAssociative) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const Elem a = static_cast<Elem>(rng.NextBounded(256));
    const Elem b = static_cast<Elem>(rng.NextBounded(256));
    const Elem c = static_cast<Elem>(rng.NextBounded(256));
    EXPECT_EQ(Mul(Mul(a, b), c), Mul(a, Mul(b, c)));
  }
}

TEST(Gf256Test, DistributesOverAdd) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const Elem a = static_cast<Elem>(rng.NextBounded(256));
    const Elem b = static_cast<Elem>(rng.NextBounded(256));
    const Elem c = static_cast<Elem>(rng.NextBounded(256));
    EXPECT_EQ(Mul(a, Add(b, c)), Add(Mul(a, b), Mul(a, c)));
  }
}

TEST(Gf256Test, MulMatchesSchoolbook) {
  // Carry-less polynomial multiply reduced mod 0x11D.
  const auto schoolbook = [](Elem a, Elem b) -> Elem {
    unsigned product = 0;
    unsigned aa = a;
    for (int bit = 0; bit < 8; ++bit) {
      if (b & (1 << bit)) product ^= aa << bit;
    }
    for (int bit = 15; bit >= 8; --bit) {
      if (product & (1u << bit)) product ^= kPrimitivePoly << (bit - 8);
    }
    return static_cast<Elem>(product);
  };
  for (int a = 0; a < 256; a += 3) {
    for (int b = 0; b < 256; b += 5) {
      EXPECT_EQ(Mul(static_cast<Elem>(a), static_cast<Elem>(b)),
                schoolbook(static_cast<Elem>(a), static_cast<Elem>(b)))
          << a << " * " << b;
    }
  }
}

TEST(Gf256Test, EveryNonZeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const Elem inv = Inverse(static_cast<Elem>(a));
    EXPECT_EQ(Mul(static_cast<Elem>(a), inv), 1) << "a=" << a;
  }
}

TEST(Gf256Test, DivIsMulByInverse) {
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const Elem a = static_cast<Elem>(rng.NextBounded(256));
    const Elem b = static_cast<Elem>(1 + rng.NextBounded(255));
    EXPECT_EQ(Div(a, b), Mul(a, Inverse(b)));
    EXPECT_EQ(Mul(Div(a, b), b), a);
  }
}

TEST(Gf256Test, PowBasics) {
  EXPECT_EQ(Pow(0, 0), 1);  // Convention: 0^0 = 1.
  EXPECT_EQ(Pow(0, 5), 0);
  EXPECT_EQ(Pow(7, 0), 1);
  EXPECT_EQ(Pow(7, 1), 7);
  EXPECT_EQ(Pow(3, 2), Mul(3, 3));
  EXPECT_EQ(Pow(3, 5), Mul(Mul(Mul(Mul(3, 3), 3), 3), 3));
}

TEST(Gf256Test, GeneratorHasFullOrder) {
  // alpha = 2 generates the multiplicative group: alpha^255 = 1 and no
  // smaller positive power equals 1.
  Elem x = 1;
  for (int i = 1; i < 255; ++i) {
    x = Mul(x, 2);
    EXPECT_NE(x, 1) << "order divides " << i;
  }
  EXPECT_EQ(Mul(x, 2), 1);
}

TEST(Gf256Test, ExpLogRoundTrip) {
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(Exp(Log(static_cast<Elem>(a))), a);
  }
}

TEST(Gf256Test, MulAddRegionMatchesScalar) {
  Rng rng(5);
  std::vector<Elem> src(257), dst(257), expected(257);
  for (auto& v : src) v = static_cast<Elem>(rng.NextBounded(256));
  for (auto& v : dst) v = static_cast<Elem>(rng.NextBounded(256));
  expected = dst;
  const Elem c = 0x37;
  for (std::size_t i = 0; i < src.size(); ++i) {
    expected[i] = Add(expected[i], Mul(c, src[i]));
  }
  MulAddRegion(c, src, dst);
  EXPECT_EQ(dst, expected);
}

TEST(Gf256Test, MulAddRegionZeroConstantIsNoop) {
  std::vector<Elem> src = {1, 2, 3}, dst = {4, 5, 6};
  MulAddRegion(0, src, dst);
  EXPECT_EQ(dst, (std::vector<Elem>{4, 5, 6}));
}

TEST(Gf256Test, MulAddRegionOneConstantIsXor) {
  std::vector<Elem> src = {1, 2, 3}, dst = {4, 5, 6};
  MulAddRegion(1, src, dst);
  EXPECT_EQ(dst, (std::vector<Elem>{5, 7, 5}));
}

TEST(Gf256Test, MulRegionMatchesScalar) {
  Rng rng(6);
  std::vector<Elem> src(100), dst(100);
  for (auto& v : src) v = static_cast<Elem>(rng.NextBounded(256));
  const Elem c = 0xAB;
  MulRegion(c, src, dst);
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(dst[i], Mul(c, src[i]));
}

TEST(Gf256Test, MulRegionZeroClears) {
  std::vector<Elem> src = {1, 2, 3}, dst = {9, 9, 9};
  MulRegion(0, src, dst);
  EXPECT_EQ(dst, (std::vector<Elem>{0, 0, 0}));
}

TEST(Gf256Test, AddRegionHandlesOddLengths) {
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 31u, 64u, 100u}) {
    std::vector<Elem> src(n), dst(n), expected(n);
    Rng rng(7 + n);
    for (std::size_t i = 0; i < n; ++i) {
      src[i] = static_cast<Elem>(rng.NextBounded(256));
      dst[i] = static_cast<Elem>(rng.NextBounded(256));
      expected[i] = src[i] ^ dst[i];
    }
    AddRegion(src, dst);
    EXPECT_EQ(dst, expected) << "n=" << n;
  }
}

}  // namespace
}  // namespace ecstore::gf
