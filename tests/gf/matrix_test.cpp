#include "gf/matrix.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace ecstore::gf {
namespace {

Matrix RandomMatrix(std::size_t n, Rng& rng) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      m.At(i, j) = static_cast<Elem>(rng.NextBounded(256));
    }
  }
  return m;
}

TEST(MatrixTest, IdentityTimesAnything) {
  Rng rng(1);
  const Matrix m = RandomMatrix(5, rng);
  const Matrix i = Matrix::Identity(5);
  EXPECT_EQ(i.Multiply(m), m);
  EXPECT_EQ(m.Multiply(i), m);
}

TEST(MatrixTest, MultiplyDimensions) {
  Matrix a(2, 3), b(3, 4);
  const Matrix c = a.Multiply(b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
}

TEST(MatrixTest, MultiplyKnownValues) {
  // Over GF(2^8): [[1,2],[3,4]] * [[5],[6]].
  Matrix a(2, 2);
  a.At(0, 0) = 1;
  a.At(0, 1) = 2;
  a.At(1, 0) = 3;
  a.At(1, 1) = 4;
  Matrix b(2, 1);
  b.At(0, 0) = 5;
  b.At(1, 0) = 6;
  const Matrix c = a.Multiply(b);
  EXPECT_EQ(c.At(0, 0), Add(Mul(1, 5), Mul(2, 6)));
  EXPECT_EQ(c.At(1, 0), Add(Mul(3, 5), Mul(4, 6)));
}

TEST(MatrixTest, InvertIdentity) {
  Matrix i = Matrix::Identity(4);
  ASSERT_TRUE(i.Invert());
  EXPECT_EQ(i, Matrix::Identity(4));
}

TEST(MatrixTest, InvertSingularFails) {
  Matrix m(2, 2);  // All zeros.
  EXPECT_FALSE(m.Invert());

  Matrix dup(2, 2);  // Duplicate rows.
  dup.At(0, 0) = 3;
  dup.At(0, 1) = 5;
  dup.At(1, 0) = 3;
  dup.At(1, 1) = 5;
  EXPECT_FALSE(dup.Invert());
}

TEST(MatrixTest, InverseTimesOriginalIsIdentity) {
  Rng rng(2);
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u}) {
    // Random matrices over a field are invertible with high probability;
    // retry until one is.
    for (int attempt = 0; attempt < 20; ++attempt) {
      Matrix m = RandomMatrix(n, rng);
      Matrix inv = m;
      if (!inv.Invert()) continue;
      EXPECT_EQ(inv.Multiply(m), Matrix::Identity(n)) << "n=" << n;
      EXPECT_EQ(m.Multiply(inv), Matrix::Identity(n)) << "n=" << n;
      break;
    }
  }
}

TEST(MatrixTest, SelectRowsPicksRows) {
  Matrix m(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      m.At(i, j) = static_cast<Elem>(10 * i + j);
    }
  }
  const Matrix s = m.SelectRows({2, 0});
  ASSERT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.At(0, 0), 20);
  EXPECT_EQ(s.At(0, 1), 21);
  EXPECT_EQ(s.At(1, 0), 0);
  EXPECT_EQ(s.At(1, 1), 1);
}

TEST(CauchyTest, TopIsIdentity) {
  const Matrix m = BuildSystematicCauchy(4, 2);
  ASSERT_EQ(m.rows(), 6u);
  ASSERT_EQ(m.cols(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(m.At(i, j), i == j ? 1 : 0);
    }
  }
}

TEST(CauchyTest, ParityRowsAreNonZero) {
  const Matrix m = BuildSystematicCauchy(3, 3);
  for (std::size_t i = 3; i < 6; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NE(m.At(i, j), 0);
    }
  }
}

// The MDS property: EVERY k-row subset of the coding matrix is invertible.
TEST(CauchyTest, AllKSubsetsInvertible) {
  constexpr std::size_t k = 3, r = 3;
  const Matrix m = BuildSystematicCauchy(k, r);
  std::vector<std::size_t> rows(k + r);
  std::iota(rows.begin(), rows.end(), 0u);
  // Enumerate all C(6,3) = 20 subsets via combinations.
  std::vector<std::size_t> pick(k);
  int checked = 0;
  for (std::size_t a = 0; a < k + r; ++a) {
    for (std::size_t b = a + 1; b < k + r; ++b) {
      for (std::size_t c = b + 1; c < k + r; ++c) {
        Matrix sub = m.SelectRows({a, b, c});
        EXPECT_TRUE(sub.Invert()) << a << "," << b << "," << c;
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, 20);
}

TEST(CauchyTest, RejectsOversizedField) {
  EXPECT_THROW(BuildSystematicCauchy(200, 100), std::invalid_argument);
}

TEST(CauchyTest, PaperDefaultParametersWork) {
  // RS(2,2), the paper's default (Section V-B3).
  const Matrix m = BuildSystematicCauchy(2, 2);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 2u);
  // Every 2-subset of 4 rows invertible.
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      Matrix sub = m.SelectRows({a, b});
      EXPECT_TRUE(sub.Invert());
    }
  }
}

}  // namespace
}  // namespace ecstore::gf
