// Unit tests for the fault subsystem (DESIGN.md §9): CRC32C, seeded fault
// schedules, the failure detector state machine, the bounded retry
// policy, and the schedule-expansion / injection-thread drivers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/crc32c.h"
#include "fault/detector.h"
#include "fault/fault_schedule.h"
#include "fault/injector.h"
#include "fault/retry.h"

namespace ecstore {
namespace {

// ---------------------------------------------------------------------------
// CRC32C (Castagnoli): standard check vectors (RFC 3720 / iSCSI).

TEST(Crc32cTest, StandardVectors) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);

  const char* check = "123456789";
  EXPECT_EQ(Crc32c(check, std::strlen(check)), 0xE3069283u);

  std::vector<std::uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::vector<std::uint8_t> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const std::uint32_t clean = Crc32c(data.data(), data.size());
  for (std::size_t pos : {std::size_t{0}, data.size() / 2, data.size() - 1}) {
    data[pos] ^= 0x01;
    EXPECT_NE(Crc32c(data.data(), data.size()), clean) << "flip at " << pos;
    data[pos] ^= 0x01;
  }
  EXPECT_EQ(Crc32c(data.data(), data.size()), clean);
}

TEST(Crc32cTest, SeedChainsIncrementalComputation) {
  // crc(a+b) == crc(b, seed=crc(a)): the slice-by-8 kernel must preserve
  // the streaming property across arbitrary split points.
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i ^ (i >> 3));
  }
  const std::uint32_t whole = Crc32c(data.data(), data.size());
  for (std::size_t split : {std::size_t{1}, std::size_t{7}, std::size_t{8},
                            std::size_t{493}, data.size() - 1}) {
    const std::uint32_t part = Crc32c(data.data(), split);
    EXPECT_EQ(Crc32c(data.data() + split, data.size() - split, part), whole)
        << "split at " << split;
  }
}

// ---------------------------------------------------------------------------
// Fault schedules.

TEST(FaultScheduleTest, DeterministicForSeed) {
  FaultScheduleParams params;
  const auto a = GenerateFaultSchedule(params, 7);
  const auto b = GenerateFaultSchedule(params, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at_ms, b[i].at_ms);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].site, b[i].site);
    EXPECT_EQ(a[i].duration_ms, b[i].duration_ms);
    EXPECT_EQ(a[i].magnitude, b[i].magnitude);
  }
  // A different seed perturbs the schedule.
  const auto c = GenerateFaultSchedule(params, 8);
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].at_ms != c[i].at_ms || a[i].site != c[i].site;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultScheduleTest, ShapeMatchesParams) {
  FaultScheduleParams params;
  params.num_sites = 10;
  params.horizon_ms = 5'000;
  params.crashes = 2;
  params.flaps = 2;
  params.slow_sites = 1;
  params.fetch_error_sites = 1;
  params.corrupt_sites = 1;
  const auto events = GenerateFaultSchedule(params, 123);

  std::map<FaultKind, std::size_t> counts;
  std::set<SiteId> unreachable_victims;
  double prev = 0;
  for (const FaultEvent& e : events) {
    ++counts[e.kind];
    EXPECT_GE(e.at_ms, prev) << "schedule not sorted";
    prev = e.at_ms;
    EXPECT_GE(e.at_ms, 0.0);
    EXPECT_LT(e.at_ms, params.horizon_ms);
    EXPECT_LT(e.site, params.num_sites);
    if (e.kind == FaultKind::kCrash || e.kind == FaultKind::kFlap) {
      // Crash/flap victims are distinct, bounding concurrent outages.
      EXPECT_TRUE(unreachable_victims.insert(e.site).second)
          << "site " << e.site << " drawn twice";
    }
    EXPECT_FALSE(DescribeFaultEvent(e).empty());
  }
  EXPECT_EQ(counts[FaultKind::kCrash], params.crashes);
  EXPECT_EQ(counts[FaultKind::kFlap], params.flaps);
  EXPECT_EQ(counts[FaultKind::kSlowSite], params.slow_sites);
  EXPECT_EQ(counts[FaultKind::kFetchError], params.fetch_error_sites);
  EXPECT_EQ(counts[FaultKind::kCorruptChunks], params.corrupt_sites);
}

// ---------------------------------------------------------------------------
// Failure detector.

TEST(FailureDetectorTest, SilenceEscalatesSuspectThenDead) {
  FailureDetector det({/*suspect_after_ms=*/100, /*dead_after_ms=*/250});
  det.Baseline(0, 1000.0);
  det.Baseline(1, 1000.0);

  EXPECT_TRUE(det.Tick(1050.0).empty());  // Within the suspect window.
  det.Heartbeat(1, 1080.0);

  auto t = det.Tick(1120.0);  // Site 0 silent 120ms, site 1 silent 40ms.
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].site, 0u);
  EXPECT_EQ(t[0].from, SiteHealth::kAlive);
  EXPECT_EQ(t[0].to, SiteHealth::kSuspect);
  EXPECT_EQ(det.Health(0), SiteHealth::kSuspect);
  EXPECT_EQ(det.Health(1), SiteHealth::kAlive);

  det.Heartbeat(1, 1290.0);   // Keep site 1 fresh throughout.
  t = det.Tick(1300.0);       // Site 0 silent 300ms: dead.
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].site, 0u);
  EXPECT_EQ(t[0].to, SiteHealth::kDead);

  // Dead sites emit no further transitions; revival is Heartbeat's job.
  det.Heartbeat(1, 1990.0);
  EXPECT_TRUE(det.Tick(2000.0).empty());
  EXPECT_TRUE(det.Heartbeat(0, 2100.0));  // revived
  EXPECT_EQ(det.Health(0), SiteHealth::kAlive);
  det.Heartbeat(1, 2140.0);
  EXPECT_TRUE(det.Tick(2150.0).empty());
}

TEST(FailureDetectorTest, BaselinePreventsInstantDeath) {
  FailureDetector det({100, 250});
  // A site first observed late is measured from that observation, not
  // from time zero.
  det.Baseline(3, 10'000.0);
  EXPECT_TRUE(det.Tick(10'050.0).empty());
  EXPECT_EQ(det.Health(3), SiteHealth::kAlive);
  // Baseline never overwrites fresh evidence.
  det.Baseline(3, 99'999.0);
  EXPECT_EQ(det.Tick(10'300.0).size(), 1u);  // suspect from the 10'000 base
}

TEST(FailureDetectorTest, HeartbeatOnUntrackedSiteIsNotRevival) {
  FailureDetector det({100, 250});
  EXPECT_FALSE(det.Heartbeat(5, 50.0));
  EXPECT_TRUE(det.Tracks(5));
  det.MarkDead(5);
  EXPECT_EQ(det.Health(5), SiteHealth::kDead);
  EXPECT_TRUE(det.Heartbeat(5, 60.0));
}

// ---------------------------------------------------------------------------
// Bounded retry.

TEST(RetryScheduleTest, DefaultsReproduceOneShotHedge) {
  RetrySchedule sched(RetryParams{}, 1);
  EXPECT_TRUE(sched.ShouldRetry(1, 10'000.0));   // one round, no budget cap
  EXPECT_FALSE(sched.ShouldRetry(2, 0.0));
  EXPECT_EQ(sched.WaitMs(1), 0.0);               // fires immediately
}

TEST(RetryScheduleTest, DeadlineBudgetStopsRetries) {
  RetryParams params;
  params.max_retries = 10;
  params.request_deadline_ms = 500;
  RetrySchedule sched(params, 1);
  EXPECT_TRUE(sched.ShouldRetry(3, 499.0));
  EXPECT_FALSE(sched.ShouldRetry(3, 500.0));
  EXPECT_FALSE(sched.ShouldRetry(11, 0.0));
}

TEST(RetryScheduleTest, RetryPastDeadlineEarliestCompletionIsNotIssued) {
  // Regression (DESIGN.md §14): a retry round whose *earliest possible*
  // completion — the backoff wait under maximum downward jitter, before
  // any service time — already lands past the request deadline must be
  // refused outright, not issued to deliver an answer nobody waits for.
  RetryParams params;
  params.max_retries = 4;
  params.backoff_base_ms = 10;
  params.jitter_frac = 0.2;
  params.request_deadline_ms = 100;
  RetrySchedule sched(params, 1);
  // MinWaitMs(1) = 10 * (1 - 0.2) = 8: the wait alone needs 8 ms.
  EXPECT_DOUBLE_EQ(sched.MinWaitMs(1), 8.0);
  EXPECT_TRUE(sched.ShouldRetry(1, 91.0));    // 91 + 8 < 100: may finish
  EXPECT_FALSE(sched.ShouldRetry(1, 93.0));   // 93 + 8 > 100: cannot
  EXPECT_FALSE(sched.ShouldRetry(1, 92.0));   // 92 + 8 = 100: boundary, late
  // Later rounds back off longer, so they are refused even earlier.
  EXPECT_DOUBLE_EQ(sched.MinWaitMs(2), 16.0);
  EXPECT_TRUE(sched.ShouldRetry(2, 83.0));
  EXPECT_FALSE(sched.ShouldRetry(2, 85.0));
  // The hard cap bounds MinWaitMs after jitter, like it bounds WaitMs:
  // round 3's nominal 40 ms jitters down to 32, then clamps to 12.
  params.max_backoff_ms = 12;
  RetrySchedule capped(params, 1);
  EXPECT_DOUBLE_EQ(capped.MinWaitMs(3), 12.0);
}

TEST(RetryScheduleTest, ExponentialBackoffWithJitterAndCap) {
  RetryParams params;
  params.max_retries = 8;
  params.backoff_base_ms = 10;
  params.backoff_multiplier = 2.0;
  params.max_backoff_ms = 50;
  params.jitter_frac = 0.2;
  RetrySchedule sched(params, 42);
  double prev = 0;
  for (int round = 1; round <= 8; ++round) {
    const double nominal = std::min(10.0 * (1 << (round - 1)), 50.0);
    const double w = sched.WaitMs(round);
    EXPECT_GE(w, nominal * 0.8 - 1e-9) << "round " << round;
    EXPECT_LE(w, nominal * 1.2 + 1e-9) << "round " << round;
    if (round <= 3) EXPECT_GT(w, prev * 1.2) << "not growing";  // 10,20,40
    prev = w;
  }
  // Identical seeds produce identical jitter streams.
  RetrySchedule a(params, 7), b(params, 7);
  for (int round = 1; round <= 4; ++round) {
    EXPECT_EQ(a.WaitMs(round), b.WaitMs(round));
  }
}

TEST(RetryScheduleTest, JitteredWaitNeverExceedsCap) {
  // Regression: jitter used to be applied *after* the max_backoff_ms
  // clamp, so once the exponential curve hit the cap every upward jitter
  // draw produced a wait above it (by up to jitter_frac). Sweep rounds x
  // jitter fractions x seeds and assert the cap is a hard ceiling.
  for (double jitter : {0.0, 0.1, 0.2, 0.5, 0.9}) {
    RetryParams params;
    params.max_retries = 12;
    params.backoff_base_ms = 5;
    params.backoff_multiplier = 2.0;
    params.max_backoff_ms = 40;
    params.jitter_frac = jitter;
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      RetrySchedule sched(params, seed);
      for (int round = 1; round <= 12; ++round) {
        const double w = sched.WaitMs(round);
        EXPECT_LE(w, params.max_backoff_ms)
            << "jitter=" << jitter << " seed=" << seed << " round=" << round;
        EXPECT_GE(w, 0.0);
      }
    }
  }
  // Below the cap the jitter range is preserved: round 1 at base 5 with
  // jitter 0.5 stays inside [2.5, 7.5] rather than being clamped early.
  RetryParams params;
  params.max_retries = 2;
  params.backoff_base_ms = 5;
  params.max_backoff_ms = 40;
  params.jitter_frac = 0.5;
  double lo = 1e9, hi = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    RetrySchedule sched(params, seed);
    const double w = sched.WaitMs(1);
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  EXPECT_GE(lo, 2.5);
  EXPECT_LE(hi, 7.5);
  EXPECT_GT(hi, 6.0);  // Upward jitter actually occurs.
  EXPECT_LT(lo, 4.0);  // Downward jitter actually occurs.
}

// ---------------------------------------------------------------------------
// Schedule expansion + injection thread.

TEST(InjectorTest, ExpandLowersEventsOntoHooks) {
  std::vector<FaultEvent> events;
  events.push_back({100, FaultKind::kCrash, 1, 0, 0});
  events.push_back({200, FaultKind::kFlap, 2, 50, 0});
  events.push_back({300, FaultKind::kSlowSite, 3, 100, 4.0});
  events.push_back({400, FaultKind::kFetchError, 4, 100, 0.25});
  events.push_back({500, FaultKind::kCorruptChunks, 5, 0, 0.02});

  std::vector<std::string> fired;
  FaultActions actions;
  actions.crash = [&](SiteId s) { fired.push_back("crash" + std::to_string(s)); };
  actions.heal = [&](SiteId s) { fired.push_back("heal" + std::to_string(s)); };
  actions.degrade = [&](SiteId s, double f) {
    fired.push_back("degrade" + std::to_string(s) + "x" + std::to_string(int(f)));
  };
  actions.set_fetch_error = [&](SiteId s, double p) {
    fired.push_back((p > 0 ? "err" : "noerr") + std::to_string(s));
  };
  actions.corrupt = [&](SiteId s, double) { fired.push_back("corrupt" + std::to_string(s)); };

  auto timed = ExpandFaultSchedule(events, actions);
  // crash=1, flap=2 (crash+heal), slow=2, fetch-error=2 (on+off), corrupt=1.
  ASSERT_EQ(timed.size(), 8u);
  double prev = 0;
  for (const TimedAction& a : timed) {
    EXPECT_GE(a.at_ms, prev);
    prev = a.at_ms;
    a.run();
  }
  const std::vector<std::string> want = {"crash1",     "crash2", "heal2",
                                         "degrade3x4", "degrade3x1",
                                         "err4",       "noerr4", "corrupt5"};
  // Execution order is by time; same-time pairs keep schedule order.
  ASSERT_EQ(fired.size(), want.size());
  EXPECT_TRUE(std::is_permutation(fired.begin(), fired.end(), want.begin()));

  // Empty hooks drop their fault class entirely.
  FaultActions crash_only;
  crash_only.crash = [](SiteId) {};
  EXPECT_EQ(ExpandFaultSchedule(events, crash_only).size(), 1u);
}

TEST(InjectorTest, InjectionThreadFiresActionsAndStopRunsRemainder) {
  std::atomic<int> fired{0};
  std::vector<TimedAction> actions;
  actions.push_back({1, [&] { ++fired; }});
  actions.push_back({2, [&] { ++fired; }});
  // Far in the future: must be executed inline by Stop(run_remaining).
  actions.push_back({60'000, [&] { ++fired; }});
  actions.push_back({60'001, [&] { ++fired; }});

  InjectionThread inj(std::move(actions));
  inj.Start();
  // Wait for the two near-term actions.
  for (int i = 0; i < 2000 && fired.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(fired.load(), 2);
  EXPECT_FALSE(inj.done());
  inj.Stop(/*run_remaining=*/true);
  EXPECT_EQ(fired.load(), 4);
  EXPECT_EQ(inj.actions_fired(), 4u);
  EXPECT_TRUE(inj.done());
}

TEST(InjectorTest, DestructorAbandonsRemainingActions) {
  std::atomic<int> fired{0};
  {
    std::vector<TimedAction> actions;
    actions.push_back({60'000, [&] { ++fired; }});
    InjectionThread inj(std::move(actions));
    inj.Start();
  }
  EXPECT_EQ(fired.load(), 0);
}

}  // namespace
}  // namespace ecstore
