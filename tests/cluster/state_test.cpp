#include "cluster/state.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ecstore {
namespace {

constexpr std::uint64_t kBlockBytes = 100 * 1024;
constexpr std::uint64_t kChunkBytes = 50 * 1024;

// ClusterState is neither copyable nor movable (it embeds per-stripe
// mutexes), so the fixture populates a caller-owned instance in place.
void AddTestBlock(ClusterState& state) {
  const std::vector<SiteId> sites = {0, 2, 4, 6};
  state.AddBlock(1, kBlockBytes, kChunkBytes, 2, 2, sites);
}

TEST(ClusterStateTest, RejectsZeroSites) {
  EXPECT_THROW(ClusterState(0), std::invalid_argument);
}

TEST(ClusterStateTest, AddBlockStoresCatalogEntry) {
  ClusterState state(8);
  AddTestBlock(state);
  EXPECT_EQ(state.num_blocks(), 1u);
  const BlockInfo& info = state.GetBlock(1);
  EXPECT_EQ(info.k, 2u);
  EXPECT_EQ(info.r, 2u);
  EXPECT_EQ(info.block_bytes, kBlockBytes);
  EXPECT_EQ(info.chunk_bytes, kChunkBytes);
  ASSERT_EQ(info.locations.size(), 4u);
  EXPECT_EQ(info.locations[0].site, 0u);
  EXPECT_EQ(info.locations[0].chunk, 0u);
  EXPECT_EQ(info.locations[3].site, 6u);
  EXPECT_EQ(info.locations[3].chunk, 3u);
}

TEST(ClusterStateTest, AddBlockValidation) {
  ClusterState state(4);
  const std::vector<SiteId> ok = {0, 1, 2, 3};
  state.AddBlock(1, 100, 50, 2, 2, ok);
  // Duplicate id.
  EXPECT_THROW(state.AddBlock(1, 100, 50, 2, 2, ok), std::invalid_argument);
  // Wrong count.
  const std::vector<SiteId> three = {0, 1, 2};
  EXPECT_THROW(state.AddBlock(2, 100, 50, 2, 2, three), std::invalid_argument);
  // Out of range site.
  const std::vector<SiteId> oob = {0, 1, 2, 9};
  EXPECT_THROW(state.AddBlock(2, 100, 50, 2, 2, oob), std::invalid_argument);
  // Duplicate sites violate fault tolerance.
  const std::vector<SiteId> dup = {0, 1, 2, 2};
  EXPECT_THROW(state.AddBlock(2, 100, 50, 2, 2, dup), std::invalid_argument);
}

TEST(ClusterStateTest, SiteAggregatesTrackInventory) {
  ClusterState state(8);
  AddTestBlock(state);
  EXPECT_EQ(state.site_chunk_counts()[0], 1u);
  EXPECT_EQ(state.site_chunk_counts()[1], 0u);
  EXPECT_EQ(state.site_bytes()[0], kChunkBytes);
  EXPECT_EQ(state.total_bytes(), 4 * kChunkBytes);
}

TEST(ClusterStateTest, HasChunkAt) {
  ClusterState state(8);
  AddTestBlock(state);
  EXPECT_TRUE(state.HasChunkAt(1, 0));
  EXPECT_TRUE(state.HasChunkAt(1, 6));
  EXPECT_FALSE(state.HasChunkAt(1, 1));
  EXPECT_FALSE(state.HasChunkAt(99, 0));  // Unknown block.
}

TEST(ClusterStateTest, MoveChunkRelocates) {
  ClusterState state(8);
  AddTestBlock(state);
  ASSERT_TRUE(state.MoveChunk(1, 0, 1));
  EXPECT_FALSE(state.HasChunkAt(1, 0));
  EXPECT_TRUE(state.HasChunkAt(1, 1));
  // Chunk index is preserved.
  const BlockInfo& info = state.GetBlock(1);
  const auto moved = std::find_if(info.locations.begin(), info.locations.end(),
                                  [](const ChunkLocation& l) { return l.site == 1; });
  ASSERT_NE(moved, info.locations.end());
  EXPECT_EQ(moved->chunk, 0u);
  // Aggregates follow.
  EXPECT_EQ(state.site_chunk_counts()[0], 0u);
  EXPECT_EQ(state.site_chunk_counts()[1], 1u);
  EXPECT_EQ(state.site_bytes()[1], kChunkBytes);
}

TEST(ClusterStateTest, MoveChunkRejectsInvalid) {
  ClusterState state(8);
  AddTestBlock(state);
  EXPECT_FALSE(state.MoveChunk(1, 1, 3));   // Source holds no chunk.
  EXPECT_FALSE(state.MoveChunk(1, 0, 2));   // Destination already has one.
  EXPECT_FALSE(state.MoveChunk(1, 0, 0));   // Self move.
  EXPECT_FALSE(state.MoveChunk(99, 0, 1));  // Unknown block.
  EXPECT_FALSE(state.MoveChunk(1, 0, 100)); // Out of range.
  // State unchanged by all rejections.
  EXPECT_TRUE(state.HasChunkAt(1, 0));
  EXPECT_EQ(state.site_chunk_counts()[0], 1u);
}

TEST(ClusterStateTest, RemoveBlockClearsInventory) {
  ClusterState state(8);
  AddTestBlock(state);
  EXPECT_TRUE(state.RemoveBlock(1));
  EXPECT_FALSE(state.Contains(1));
  EXPECT_EQ(state.total_bytes(), 0u);
  EXPECT_EQ(state.site_chunk_counts()[0], 0u);
  EXPECT_FALSE(state.RemoveBlock(1));  // Idempotent failure.
}

TEST(ClusterStateTest, ReplaceBlockSwapsLayoutInPlace) {
  ClusterState state(8);
  AddTestBlock(state);  // RS(2,2) on sites {0, 2, 4, 6}.
  const std::uint64_t v_before = state.BlockVersion(1);

  // Swap to rep(3) whole-block copies on disjoint sites: the id stays
  // resolvable throughout, the version bumps, and the site aggregates
  // move from the old layout's accounting to the new one's.
  const CodecSpec rep{CodecFamilyId::kReplication, 1, 2, 0};
  const std::vector<SiteId> sites = {1, 3, 5};
  ASSERT_TRUE(state.ReplaceBlock(1, kBlockBytes, kBlockBytes, rep, sites));
  EXPECT_TRUE(state.Contains(1));
  EXPECT_GT(state.BlockVersion(1), v_before);
  const BlockInfo& info = state.GetBlock(1);
  EXPECT_EQ(info.k, 1u);
  EXPECT_EQ(info.codec.family, CodecFamilyId::kReplication);
  ASSERT_EQ(info.locations.size(), 3u);
  EXPECT_EQ(info.locations[0].site, 1u);
  EXPECT_EQ(info.locations[2].site, 5u);
  EXPECT_EQ(state.site_chunk_counts()[0], 0u);
  EXPECT_EQ(state.site_chunk_counts()[1], 1u);
  EXPECT_EQ(state.site_bytes()[1], kBlockBytes);
  EXPECT_EQ(state.total_bytes(), 3 * kBlockBytes);

  // Unknown id: no-op. Validation matches AddBlock.
  EXPECT_FALSE(state.ReplaceBlock(99, kBlockBytes, kBlockBytes, rep, sites));
  const std::vector<SiteId> dup = {1, 1, 3};
  EXPECT_THROW(state.ReplaceBlock(1, kBlockBytes, kBlockBytes, rep, dup),
               std::invalid_argument);
}

TEST(ClusterStateTest, GetBlockThrowsForUnknown) {
  ClusterState state(4);
  EXPECT_THROW(state.GetBlock(42), std::out_of_range);
}

TEST(ClusterStateTest, AvailabilityFiltersLocations) {
  ClusterState state(8);
  AddTestBlock(state);
  EXPECT_EQ(state.num_available_sites(), 8u);
  state.SetSiteAvailable(0, false);
  state.SetSiteAvailable(2, false);
  EXPECT_EQ(state.num_available_sites(), 6u);
  const auto locs = state.AvailableLocations(1);
  ASSERT_EQ(locs.size(), 2u);
  EXPECT_EQ(locs[0].site, 4u);
  EXPECT_EQ(locs[1].site, 6u);
  state.SetSiteAvailable(0, true);
  EXPECT_EQ(state.AvailableLocations(1).size(), 3u);
}

TEST(ClusterStateTest, VersionBumpsOnMutation) {
  ClusterState state(4);
  const auto v0 = state.version();
  state.AddBlock(1, 100, 50, 2, 2, std::vector<SiteId>{0, 1, 2, 3});
  const auto v1 = state.version();
  EXPECT_GT(v1, v0);
  state.MoveChunk(1, 0, 0);  // Rejected: no bump.
  EXPECT_EQ(state.version(), v1);
  state.SetSiteAvailable(2, false);
  EXPECT_GT(state.version(), v1);
}

TEST(ClusterStateTest, PickRandomSitesDistinct) {
  ClusterState state(10);
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    auto sites = state.PickRandomSites(rng, 4);
    ASSERT_EQ(sites.size(), 4u);
    std::sort(sites.begin(), sites.end());
    EXPECT_TRUE(std::adjacent_find(sites.begin(), sites.end()) == sites.end());
    EXPECT_LT(sites.back(), 10u);
  }
  EXPECT_THROW(state.PickRandomSites(rng, 11), std::invalid_argument);
}

TEST(ClusterStateTest, PickRandomSitesCoversAllSites) {
  ClusterState state(6);
  Rng rng(9);
  std::vector<int> seen(6, 0);
  for (int trial = 0; trial < 300; ++trial) {
    for (SiteId s : state.PickRandomSites(rng, 3)) ++seen[s];
  }
  for (int count : seen) EXPECT_GT(count, 60);  // Roughly uniform coverage.
}

}  // namespace
}  // namespace ecstore
