// Randomized property test for ClusterState: after any sequence of adds,
// moves, removes, and availability flips, the per-site aggregates must
// equal what a from-scratch recount gives, and every block must keep
// exactly k+r chunks on distinct sites.
#include <gtest/gtest.h>

#include <map>

#include "cluster/state.h"
#include "common/rng.h"

namespace ecstore {
namespace {

void CheckInvariants(const ClusterState& state,
                     const std::map<BlockId, BlockInfo>& shadow) {
  std::vector<std::uint64_t> chunks(state.num_sites(), 0);
  std::vector<std::uint64_t> bytes(state.num_sites(), 0);
  std::uint64_t total = 0;

  for (const auto& [id, expected] : shadow) {
    ASSERT_TRUE(state.Contains(id));
    const BlockInfo& info = state.GetBlock(id);
    ASSERT_EQ(info.locations.size(), expected.k + expected.r);
    // Distinct sites (fault-tolerance invariant).
    std::set<SiteId> sites;
    for (const ChunkLocation& loc : info.locations) {
      ASSERT_TRUE(sites.insert(loc.site).second);
      ASSERT_LT(loc.site, state.num_sites());
      chunks[loc.site] += 1;
      bytes[loc.site] += info.chunk_bytes;
      total += info.chunk_bytes;
    }
    // Chunk indices are a permutation of [0, k+r).
    std::set<ChunkIndex> indices;
    for (const ChunkLocation& loc : info.locations) indices.insert(loc.chunk);
    ASSERT_EQ(indices.size(), info.locations.size());
    ASSERT_EQ(*indices.rbegin(), info.locations.size() - 1);
  }

  EXPECT_EQ(state.site_chunk_counts(), chunks);
  EXPECT_EQ(state.site_bytes(), bytes);
  EXPECT_EQ(state.total_bytes(), total);
  EXPECT_EQ(state.num_blocks(), shadow.size());
}

TEST(ClusterStateFuzzTest, AggregatesSurviveRandomOperations) {
  constexpr std::size_t kSites = 12;
  ClusterState state(kSites);
  std::map<BlockId, BlockInfo> shadow;
  Rng rng(2024);
  BlockId next_id = 0;

  for (int step = 0; step < 3000; ++step) {
    const std::uint64_t op = rng.NextBounded(10);
    if (op < 4) {  // Add.
      const std::uint32_t k = 2;
      const std::uint32_t r = 1 + static_cast<std::uint32_t>(rng.NextBounded(2));
      const std::uint64_t bytes = 100 + rng.NextBounded(10000);
      const auto sites = state.PickRandomSites(rng, k + r);
      state.AddBlock(next_id, bytes * k, bytes, k, r, sites);
      BlockInfo info;
      info.k = k;
      info.r = r;
      info.chunk_bytes = bytes;
      shadow[next_id] = info;
      ++next_id;
    } else if (op < 7 && !shadow.empty()) {  // Move.
      const auto it = std::next(shadow.begin(),
                                static_cast<std::ptrdiff_t>(
                                    rng.NextBounded(shadow.size())));
      const BlockInfo& info = state.GetBlock(it->first);
      const SiteId from =
          info.locations[rng.NextBounded(info.locations.size())].site;
      const SiteId to = static_cast<SiteId>(rng.NextBounded(kSites));
      // MoveChunk validates; we don't care whether it succeeded, only
      // that the state stays consistent either way.
      (void)state.MoveChunk(it->first, from, to);
    } else if (op < 8 && !shadow.empty()) {  // Remove.
      const auto it = std::next(shadow.begin(),
                                static_cast<std::ptrdiff_t>(
                                    rng.NextBounded(shadow.size())));
      ASSERT_TRUE(state.RemoveBlock(it->first));
      shadow.erase(it);
    } else {  // Availability flip.
      const SiteId site = static_cast<SiteId>(rng.NextBounded(kSites));
      state.SetSiteAvailable(site, rng.NextBernoulli(0.7));
    }

    if (step % 200 == 0) CheckInvariants(state, shadow);
  }
  CheckInvariants(state, shadow);
}

TEST(ClusterStateFuzzTest, AvailableLocationsAlwaysSubset) {
  ClusterState state(8);
  Rng rng(7);
  for (BlockId b = 0; b < 50; ++b) {
    state.AddBlock(b, 100, 50, 2, 2, state.PickRandomSites(rng, 4));
  }
  for (int step = 0; step < 200; ++step) {
    state.SetSiteAvailable(static_cast<SiteId>(rng.NextBounded(8)),
                           rng.NextBernoulli(0.5));
    const BlockId b = rng.NextBounded(50);
    const auto available = state.AvailableLocations(b);
    const BlockInfo& info = state.GetBlock(b);
    EXPECT_LE(available.size(), info.locations.size());
    for (const ChunkLocation& loc : available) {
      EXPECT_TRUE(state.IsSiteAvailable(loc.site));
      EXPECT_TRUE(state.HasChunkAt(b, loc.site));
    }
  }
}

TEST(ClusterStateFuzzTest, BlocksWithChunkAtMatchesScan) {
  ClusterState state(6);
  Rng rng(13);
  for (BlockId b = 0; b < 40; ++b) {
    state.AddBlock(b, 100, 50, 2, 1, state.PickRandomSites(rng, 3));
  }
  for (int step = 0; step < 30; ++step) {
    (void)state.MoveChunk(rng.NextBounded(40),
                          static_cast<SiteId>(rng.NextBounded(6)),
                          static_cast<SiteId>(rng.NextBounded(6)));
  }
  for (SiteId site = 0; site < 6; ++site) {
    const auto listed = state.BlocksWithChunkAt(site);
    std::vector<BlockId> expected;
    for (BlockId b = 0; b < 40; ++b) {
      if (state.HasChunkAt(b, site)) expected.push_back(b);
    }
    EXPECT_EQ(listed, expected) << "site " << site;
  }
}

}  // namespace
}  // namespace ecstore
