#include "workload/driver.h"

#include <gtest/gtest.h>

namespace ecstore {
namespace {

ECStoreConfig TinyConfig(Technique t) {
  ECStoreConfig c = ECStoreConfig::ForTechnique(t);
  c.num_sites = 8;
  c.seed = 11;
  return c;
}

YcsbEWorkload::Params TinyYcsb() {
  YcsbEWorkload::Params p;
  p.num_blocks = 500;
  p.block_bytes = 100 * 1024;
  return p;
}

TEST(DriverTest, CollectsMetricsOverMeasurementWindow) {
  SimECStore store(TinyConfig(Technique::kEc));
  YcsbEWorkload workload(TinyYcsb());
  for (const BlockSpec& b : workload.Blocks()) store.LoadBlock(b.id, b.bytes);

  ClosedLoopDriver::Params dp;
  dp.clients = 10;
  dp.warmup = 5 * kSecond;
  dp.measure = 10 * kSecond;
  ClosedLoopDriver driver(&store, &workload, dp);
  driver.Run();

  const PhaseMetrics& m = driver.metrics();
  EXPECT_GT(m.requests, 100u);
  EXPECT_EQ(m.failures, 0u);
  EXPECT_EQ(m.total.count(), m.requests);
  EXPECT_GT(m.total.Mean(), 0.0);
  // Breakdown parts sum to no more than the total on average.
  EXPECT_LE(m.metadata.Mean() + m.planning.Mean() + m.retrieval.Mean() +
                m.decode.Mean(),
            m.total.Mean() * 1.001);
}

TEST(DriverTest, WorkloadShiftHappensAtMeasurementStart) {
  SimECStore store(TinyConfig(Technique::kEc));
  YcsbEWorkload workload(TinyYcsb());
  for (const BlockSpec& b : workload.Blocks()) store.LoadBlock(b.id, b.bytes);
  ClosedLoopDriver::Params dp;
  dp.clients = 4;
  dp.warmup = 2 * kSecond;
  dp.measure = 2 * kSecond;
  ClosedLoopDriver driver(&store, &workload, dp);
  EXPECT_FALSE(workload.measuring());
  driver.Run();
  EXPECT_TRUE(workload.measuring());
}

TEST(DriverTest, TimelineCoversMeasurement) {
  SimECStore store(TinyConfig(Technique::kEc));
  YcsbEWorkload workload(TinyYcsb());
  for (const BlockSpec& b : workload.Blocks()) store.LoadBlock(b.id, b.bytes);
  ClosedLoopDriver::Params dp;
  dp.clients = 10;
  dp.warmup = 2 * kSecond;
  dp.measure = 30 * kSecond;
  dp.timeline_bucket = 10 * kSecond;
  ClosedLoopDriver driver(&store, &workload, dp);
  driver.Run();

  const auto timeline = driver.Timeline();
  ASSERT_EQ(timeline.size(), 3u);
  for (const auto& point : timeline) {
    EXPECT_GT(point.requests, 0u);
    EXPECT_GT(point.mean_ms, 0.0);
  }
  EXPECT_DOUBLE_EQ(timeline[0].minutes, 0.0);
  EXPECT_NEAR(timeline[1].minutes, 10.0 / 60.0, 1e-9);
}

TEST(DriverTest, MeasureStartBytesSnapshotTaken) {
  SimECStore store(TinyConfig(Technique::kEc));
  YcsbEWorkload workload(TinyYcsb());
  for (const BlockSpec& b : workload.Blocks()) store.LoadBlock(b.id, b.bytes);
  ClosedLoopDriver::Params dp;
  dp.clients = 5;
  dp.warmup = 3 * kSecond;
  dp.measure = 3 * kSecond;
  ClosedLoopDriver driver(&store, &workload, dp);
  driver.Run();
  // Warm-up traffic happened before the snapshot: baseline is non-zero,
  // and strictly less than the final counters.
  const auto& baseline = driver.measure_start_bytes();
  ASSERT_EQ(baseline.size(), 8u);
  std::uint64_t base_total = 0, final_total = 0;
  const auto final_bytes = store.SiteBytesRead();
  for (std::size_t j = 0; j < 8; ++j) {
    base_total += baseline[j];
    final_total += final_bytes[j];
  }
  EXPECT_GT(base_total, 0u);
  EXPECT_GT(final_total, base_total);
}

TEST(DriverTest, CacheHitRateHighForRepeatedScans) {
  // EC+C on a small keyspace: the same scans recur, so after the warmup
  // the plan cache should serve most requests (paper: ~90%).
  SimECStore store(TinyConfig(Technique::kEcC));
  YcsbEWorkload::Params wp = TinyYcsb();
  wp.num_blocks = 50;
  wp.max_scan_length = 4;
  YcsbEWorkload workload(wp);
  for (const BlockSpec& b : workload.Blocks()) store.LoadBlock(b.id, b.bytes);
  ClosedLoopDriver::Params dp;
  dp.clients = 8;
  dp.warmup = 20 * kSecond;
  dp.measure = 20 * kSecond;
  ClosedLoopDriver driver(&store, &workload, dp);
  driver.Run();
  const PhaseMetrics& m = driver.metrics();
  ASSERT_GT(m.cache_lookups, 0u);
  EXPECT_GT(static_cast<double>(m.cache_hits) / m.cache_lookups, 0.5);
}

}  // namespace
}  // namespace ecstore
