#include "workload/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace ecstore {
namespace {

TEST(YcsbETest, BlocksAreUniformFixedSize) {
  YcsbEWorkload::Params p;
  p.num_blocks = 100;
  p.block_bytes = 100 * 1024;
  YcsbEWorkload w(p);
  const auto blocks = w.Blocks();
  ASSERT_EQ(blocks.size(), 100u);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].id, i);
    EXPECT_EQ(blocks[i].bytes, 100u * 1024);
  }
}

TEST(YcsbETest, ScansAreContiguous) {
  YcsbEWorkload::Params p;
  p.num_blocks = 1000;
  YcsbEWorkload w(p);
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    const auto req = w.NextRequest(rng);
    ASSERT_FALSE(req.empty());
    ASSERT_LE(req.size(), 20u);
    for (std::size_t i = 1; i < req.size(); ++i) {
      EXPECT_EQ(req[i], req[i - 1] + 1);
    }
    EXPECT_LT(req.back(), 1000u);
  }
}

TEST(YcsbETest, WarmupIsUniform) {
  YcsbEWorkload::Params p;
  p.num_blocks = 10;
  p.max_scan_length = 1;
  YcsbEWorkload w(p);
  Rng rng(2);
  std::map<BlockId, int> counts;
  for (int trial = 0; trial < 10000; ++trial) ++counts[w.NextRequest(rng)[0]];
  for (const auto& [id, count] : counts) {
    EXPECT_NEAR(count, 1000, 150) << "key " << id;
  }
}

TEST(YcsbETest, MeasurementPhaseIsSkewed) {
  YcsbEWorkload::Params p;
  p.num_blocks = 10000;
  p.max_scan_length = 1;
  p.scramble = false;
  YcsbEWorkload w(p);
  w.OnMeasurementStart();
  EXPECT_TRUE(w.measuring());
  Rng rng(3);
  int hottest = 0;
  for (int trial = 0; trial < 10000; ++trial) {
    hottest += (w.NextRequest(rng)[0] == 0);  // Rank 1 key.
  }
  // Zipf(1) over 10k keys gives the top key ~10% of mass.
  EXPECT_GT(hottest, 500);
}

TEST(YcsbETest, ScrambleSpreadsHotKeys) {
  YcsbEWorkload::Params p;
  p.num_blocks = 10000;
  p.max_scan_length = 1;
  p.scramble = true;
  YcsbEWorkload w(p);
  w.OnMeasurementStart();
  Rng rng(4);
  std::set<BlockId> hot_keys;
  for (int trial = 0; trial < 1000; ++trial) hot_keys.insert(w.NextRequest(rng)[0]);
  // The hottest scrambled keys should not all be near key 0.
  bool any_far = false;
  for (BlockId k : hot_keys) {
    if (k > 5000) any_far = true;
  }
  EXPECT_TRUE(any_far);
}

TEST(YcsbETest, ScanTruncatesAtKeyspaceEnd) {
  YcsbEWorkload::Params p;
  p.num_blocks = 5;
  p.max_scan_length = 19;
  YcsbEWorkload w(p);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const auto req = w.NextRequest(rng);
    EXPECT_LE(req.size(), 5u);
    EXPECT_LT(req.back(), 5u);
  }
}

TEST(WikipediaTest, MediansMatchPublishedTrace) {
  WikipediaWorkload::Params p;
  p.num_pages = 5000;
  WikipediaWorkload w(p);
  // Paper Section VI-B: median page ~10 images, median image ~500 KB.
  EXPECT_NEAR(w.MedianImagesPerPage(), 10.0, 3.0);
  EXPECT_NEAR(w.MedianImageBytes(), 500.0 * 1024, 150.0 * 1024);
}

TEST(WikipediaTest, PagesPartitionTheBlocks) {
  WikipediaWorkload::Params p;
  p.num_pages = 200;
  WikipediaWorkload w(p);
  std::set<BlockId> seen;
  std::size_t total = 0;
  for (std::size_t i = 0; i < w.num_pages(); ++i) {
    for (BlockId b : w.page(i)) {
      EXPECT_TRUE(seen.insert(b).second) << "image on two pages";
      ++total;
    }
  }
  EXPECT_EQ(total, w.Blocks().size());
}

TEST(WikipediaTest, RequestsReturnWholePages) {
  WikipediaWorkload::Params p;
  p.num_pages = 100;
  WikipediaWorkload w(p);
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const auto req = w.NextRequest(rng);
    // Every request equals some page exactly.
    bool found = false;
    for (std::size_t i = 0; i < w.num_pages() && !found; ++i) {
      found = (w.page(i) == req);
    }
    EXPECT_TRUE(found);
  }
}

TEST(WikipediaTest, PopularityIsSkewed) {
  WikipediaWorkload::Params p;
  p.num_pages = 1000;
  WikipediaWorkload w(p);
  Rng rng(7);
  std::map<BlockId, int> first_block_count;
  for (int trial = 0; trial < 5000; ++trial) {
    ++first_block_count[w.NextRequest(rng)[0]];
  }
  // Zipf: the most popular page is requested far more than 1/1000 of the time.
  int max_count = 0;
  for (const auto& [id, count] : first_block_count) max_count = std::max(max_count, count);
  EXPECT_GT(max_count, 200);
}

TEST(WikipediaTest, DeterministicForSeed) {
  WikipediaWorkload::Params p;
  p.num_pages = 50;
  WikipediaWorkload a(p), b(p);
  EXPECT_EQ(a.Blocks().size(), b.Blocks().size());
  for (std::size_t i = 0; i < a.num_pages(); ++i) {
    EXPECT_EQ(a.page(i), b.page(i));
  }
}

}  // namespace
}  // namespace ecstore
