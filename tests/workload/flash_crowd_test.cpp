// FlashCrowdWorkload (DESIGN.md §13): the diurnal/flash-crowd schedule,
// hot-set concentration and rotation, phase alignment at measurement
// start, and determinism across generators.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "workload/workload.h"

namespace ecstore {
namespace {

FlashCrowdWorkload::Params SmallParams() {
  FlashCrowdWorkload::Params p;
  p.num_blocks = 1000;
  p.block_bytes = 64 * 1024;
  p.hot_blocks = 16;
  p.period_requests = 100;
  p.flash_duty = 0.5;
  return p;
}

TEST(FlashCrowdTest, BlocksCoverTheKeyspace) {
  FlashCrowdWorkload w(SmallParams());
  const auto blocks = w.Blocks();
  ASSERT_EQ(blocks.size(), 1000u);
  EXPECT_EQ(blocks.front().id, 0u);
  EXPECT_EQ(blocks.back().id, 999u);
  EXPECT_EQ(blocks.front().bytes, 64u * 1024);
}

TEST(FlashCrowdTest, ScheduleAlternatesFlashAndQuiet) {
  FlashCrowdWorkload w(SmallParams());
  // Duty 0.5 over a 100-request period: first half flash, second quiet.
  for (std::uint64_t n = 0; n < 50; ++n) EXPECT_TRUE(w.IsFlashRequest(n)) << n;
  for (std::uint64_t n = 50; n < 100; ++n) {
    EXPECT_FALSE(w.IsFlashRequest(n)) << n;
  }
  // The next cycle flashes again.
  EXPECT_TRUE(w.IsFlashRequest(100));
}

TEST(FlashCrowdTest, FlashRequestsConcentrateOnTheHotSet) {
  FlashCrowdWorkload::Params p = SmallParams();
  p.flash_fraction = 1.0;  // Every flash-phase request hits the hot set.
  FlashCrowdWorkload w(p);
  Rng rng(11);
  const std::uint64_t base = w.HotBase(0);
  for (int i = 0; i < 50; ++i) {  // Exactly the first cycle's flash phase.
    const auto req = w.NextRequest(rng);
    ASSERT_FALSE(req.empty());
    for (BlockId b : req) {
      EXPECT_GE(b, base);
      EXPECT_LT(b, base + p.hot_blocks);
    }
  }
}

TEST(FlashCrowdTest, QuietRequestsSpreadOverTheKeyspace) {
  FlashCrowdWorkload::Params p = SmallParams();
  p.flash_duty = 0.0;  // Never flash: pure Zipf-scan baseline.
  FlashCrowdWorkload w(p);
  Rng rng(12);
  std::set<BlockId> seen;
  for (int i = 0; i < 500; ++i) {
    const auto req = w.NextRequest(rng);
    ASSERT_FALSE(req.empty());
    ASSERT_LE(req.size(), p.max_scan_length);
    for (BlockId b : req) {
      ASSERT_LT(b, p.num_blocks);
      seen.insert(b);
    }
  }
  // Scrambled Zipf scans touch far more than one hot set's worth.
  EXPECT_GT(seen.size(), 10 * p.hot_blocks);
}

TEST(FlashCrowdTest, HotSetRotatesAcrossCycles) {
  FlashCrowdWorkload w(SmallParams());
  std::set<std::uint64_t> bases;
  for (std::uint64_t cycle = 0; cycle < 8; ++cycle) {
    const std::uint64_t base = w.HotBase(cycle);
    EXPECT_LE(base + SmallParams().hot_blocks, SmallParams().num_blocks);
    bases.insert(base);
  }
  // The multiplicative scramble makes collisions across a handful of
  // cycles effectively impossible.
  EXPECT_EQ(bases.size(), 8u);
}

TEST(FlashCrowdTest, MeasurementStartRealignsThePhase) {
  FlashCrowdWorkload::Params p = SmallParams();
  p.flash_fraction = 1.0;
  FlashCrowdWorkload w(p);
  Rng rng(13);
  // Burn an odd, mid-quiet-phase number of warm-up requests.
  for (int i = 0; i < 73; ++i) (void)w.NextRequest(rng);
  w.OnMeasurementStart();
  // The measured window restarts at cycle 0's flash phase.
  const std::uint64_t base = w.HotBase(0);
  const auto req = w.NextRequest(rng);
  ASSERT_FALSE(req.empty());
  for (BlockId b : req) {
    EXPECT_GE(b, base);
    EXPECT_LT(b, base + p.hot_blocks);
  }
}

TEST(FlashCrowdTest, DeterministicAcrossGenerators) {
  FlashCrowdWorkload a(SmallParams());
  FlashCrowdWorkload b(SmallParams());
  Rng ra(21), rb(21);
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(a.NextRequest(ra), b.NextRequest(rb)) << "request " << i;
  }
}

TEST(FlashCrowdTest, DegenerateParamsAreClamped) {
  FlashCrowdWorkload::Params p = SmallParams();
  p.hot_blocks = 0;        // Clamped up to 1.
  p.period_requests = 0;   // Clamped up to 1: always flash-phase pos 0.
  p.flash_fraction = 1.0;
  p.flash_duty = 1.0;
  FlashCrowdWorkload w(p);
  Rng rng(31);
  for (int i = 0; i < 20; ++i) {
    const auto req = w.NextRequest(rng);
    ASSERT_EQ(req.size(), 1u);
    EXPECT_LT(req[0], p.num_blocks);
  }
}

}  // namespace
}  // namespace ecstore
