#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace ecstore {
namespace {

Trace SampleTrace() {
  Trace t;
  t.blocks = {{1, 100}, {2, 200}, {7, 50}};
  t.requests = {{1, 2}, {7}, {2, 7, 1}};
  return t;
}

TEST(TraceIoTest, RoundTrips) {
  const Trace original = SampleTrace();
  std::stringstream buffer;
  WriteTrace(original, buffer);
  const Trace parsed = ReadTrace(buffer);
  EXPECT_EQ(parsed, original);
}

TEST(TraceIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# header\n"
      "\n"
      "B 1 100\n"
      "# a comment between sections\n"
      "1\n");
  const Trace t = ReadTrace(in);
  ASSERT_EQ(t.blocks.size(), 1u);
  ASSERT_EQ(t.requests.size(), 1u);
  EXPECT_EQ(t.requests[0], (std::vector<BlockId>{1}));
}

TEST(TraceIoTest, RejectsUndeclaredBlock) {
  std::stringstream in("B 1 100\n1 2\n");
  EXPECT_THROW(ReadTrace(in), std::runtime_error);
}

TEST(TraceIoTest, RejectsDuplicateDeclaration) {
  std::stringstream in("B 1 100\nB 1 200\n");
  EXPECT_THROW(ReadTrace(in), std::runtime_error);
}

TEST(TraceIoTest, RejectsMalformedDeclaration) {
  std::stringstream in("B oops\n");
  EXPECT_THROW(ReadTrace(in), std::runtime_error);
}

TEST(TraceIoTest, RejectsBadToken) {
  std::stringstream in("B 1 100\n1 xyz\n");
  EXPECT_THROW(ReadTrace(in), std::runtime_error);
}

TEST(TraceIoTest, EmptyTraceParses) {
  std::stringstream in("# nothing\n");
  const Trace t = ReadTrace(in);
  EXPECT_TRUE(t.blocks.empty());
  EXPECT_TRUE(t.requests.empty());
}

TEST(RecordTraceTest, CapturesGeneratorStream) {
  YcsbEWorkload::Params p;
  p.num_blocks = 100;
  YcsbEWorkload workload(p);
  Rng rng(1);
  const Trace t = RecordTrace(workload, rng, 25);
  EXPECT_EQ(t.blocks.size(), 100u);
  EXPECT_EQ(t.requests.size(), 25u);
  for (const auto& request : t.requests) {
    EXPECT_FALSE(request.empty());
    for (BlockId b : request) EXPECT_LT(b, 100u);
  }
}

TEST(TraceWorkloadTest, ReplaysInOrder) {
  TraceWorkload replay(SampleTrace(), /*loop=*/false);
  Rng rng(1);
  EXPECT_EQ(replay.NextRequest(rng), (std::vector<BlockId>{1, 2}));
  EXPECT_EQ(replay.NextRequest(rng), (std::vector<BlockId>{7}));
  EXPECT_EQ(replay.NextRequest(rng), (std::vector<BlockId>{2, 7, 1}));
  EXPECT_TRUE(replay.exhausted());
  EXPECT_THROW(replay.NextRequest(rng), std::out_of_range);
}

TEST(TraceWorkloadTest, LoopsByDefault) {
  TraceWorkload replay(SampleTrace());
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    const auto request = replay.NextRequest(rng);
    EXPECT_FALSE(request.empty());
  }
  EXPECT_FALSE(replay.exhausted());
}

TEST(TraceWorkloadTest, RejectsEmptyTrace) {
  Trace empty;
  empty.blocks = {{1, 10}};
  EXPECT_THROW(TraceWorkload{empty}, std::invalid_argument);
}

TEST(TraceWorkloadTest, RecordedReplayMatchesSource) {
  // Replaying a recorded trace reproduces the exact request stream.
  YcsbEWorkload::Params p;
  p.num_blocks = 50;
  YcsbEWorkload original(p);
  Rng record_rng(9);
  const Trace t = RecordTrace(original, record_rng, 10);

  YcsbEWorkload fresh(p);
  Rng replay_src_rng(9);
  TraceWorkload replay(t, /*loop=*/false);
  Rng unused(0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(replay.NextRequest(unused), fresh.NextRequest(replay_src_rng));
  }
}

}  // namespace
}  // namespace ecstore
