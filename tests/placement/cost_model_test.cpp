#include "placement/cost_model.h"

#include <gtest/gtest.h>

namespace ecstore {
namespace {

void PopulateSmallState(ClusterState& state) {
  // Block 1: chunks at sites 0,1,2,3 (RS(2,2)).
  state.AddBlock(1, 100, 50, 2, 2, std::vector<SiteId>{0, 1, 2, 3});
  // Block 2: chunks at sites 2,3,4,5.
  state.AddBlock(2, 200, 100, 2, 2, std::vector<SiteId>{2, 3, 4, 5});
}

TEST(CostParamsTest, HomogeneousFillsAllSites) {
  const CostParams p = CostParams::Homogeneous(4, 5.0, 0.01);
  ASSERT_EQ(p.site_overhead_ms.size(), 4u);
  ASSERT_EQ(p.media_ms_per_byte.size(), 4u);
  EXPECT_DOUBLE_EQ(p.site_overhead_ms[3], 5.0);
  EXPECT_DOUBLE_EQ(p.media_ms_per_byte[0], 0.01);
}

TEST(BuildDemandsTest, BuildsOnePerDistinctBlock) {
  ClusterState state(6);
  PopulateSmallState(state);
  const std::vector<BlockId> q = {1, 2, 1};
  const DemandResult result = BuildDemands(state, q, 0);
  ASSERT_EQ(result.demands.size(), 2u);
  EXPECT_EQ(result.demands[0].block, 1u);
  EXPECT_EQ(result.demands[0].needed, 2u);
  EXPECT_EQ(result.demands[0].chunk_bytes, 50u);
  EXPECT_EQ(result.demands[0].candidates.size(), 4u);
  EXPECT_EQ(result.readable, (std::vector<bool>{true, true, true}));
}

TEST(BuildDemandsTest, DeltaRaisesNeededUpToAvailability) {
  ClusterState state(6);
  PopulateSmallState(state);
  const std::vector<BlockId> q = {1};
  EXPECT_EQ(BuildDemands(state, q, 1).demands[0].needed, 3u);
  EXPECT_EQ(BuildDemands(state, q, 2).demands[0].needed, 4u);
  // delta beyond the available chunks clamps.
  EXPECT_EQ(BuildDemands(state, q, 5).demands[0].needed, 4u);
}

TEST(BuildDemandsTest, UnavailableSitesExcluded) {
  ClusterState state(6);
  PopulateSmallState(state);
  state.SetSiteAvailable(0, false);
  const std::vector<BlockId> q = {1};
  const DemandResult result = BuildDemands(state, q, 0);
  EXPECT_EQ(result.demands[0].candidates.size(), 3u);
  EXPECT_TRUE(result.readable[0]);
}

TEST(BuildDemandsTest, UnreadableBlockFlagged) {
  ClusterState state(6);
  PopulateSmallState(state);
  // Fail 3 of block 1's sites: only 1 chunk left < k = 2.
  state.SetSiteAvailable(0, false);
  state.SetSiteAvailable(1, false);
  state.SetSiteAvailable(2, false);
  const std::vector<BlockId> q = {1, 2};
  const DemandResult result = BuildDemands(state, q, 0);
  ASSERT_EQ(result.demands.size(), 1u);  // Only block 2 demandable.
  EXPECT_EQ(result.demands[0].block, 2u);
  EXPECT_EQ(result.readable, (std::vector<bool>{false, true}));
}

TEST(BuildDemandsTest, UnknownBlockThrows) {
  ClusterState state(6);
  PopulateSmallState(state);
  const std::vector<BlockId> q = {42};
  EXPECT_THROW(BuildDemands(state, q, 0), std::out_of_range);
}

TEST(PlanCostTest, EquationOneByHand) {
  ClusterState state(6);
  PopulateSmallState(state);
  const std::vector<BlockId> q = {1, 2};
  const DemandResult dr = BuildDemands(state, q, 0);
  CostParams params = CostParams::Homogeneous(6, 5.0, 0.01);

  // Plan: block 1 from sites 2,3; block 2 from sites 2,3. Two sites
  // accessed. Eq. 1: 2*5 (o_j) + 2*0.01*50 + 2*0.01*100 = 10 + 1 + 2 = 13.
  const std::vector<ChunkRead> reads = {
      {1, 2, 2}, {1, 3, 3}, {2, 2, 0}, {2, 3, 1}};
  EXPECT_DOUBLE_EQ(PlanCost(reads, dr.demands, params), 13.0);

  // Spread plan: 4 distinct sites => 4*5 + 1 + 2 = 23.
  const std::vector<ChunkRead> spread = {
      {1, 0, 0}, {1, 1, 1}, {2, 4, 2}, {2, 5, 3}};
  EXPECT_DOUBLE_EQ(PlanCost(spread, dr.demands, params), 23.0);
}

TEST(PlanCostTest, HeterogeneousParams) {
  ClusterState state(6);
  PopulateSmallState(state);
  const std::vector<BlockId> q = {1};
  const DemandResult dr = BuildDemands(state, q, 0);
  CostParams params = CostParams::Homogeneous(6, 5.0, 0.01);
  params.site_overhead_ms[0] = 50.0;  // Site 0 is overloaded.
  const std::vector<ChunkRead> uses_hot = {{1, 0, 0}, {1, 1, 1}};
  const std::vector<ChunkRead> avoids_hot = {{1, 2, 2}, {1, 1, 1}};
  EXPECT_GT(PlanCost(uses_hot, dr.demands, params),
            PlanCost(avoids_hot, dr.demands, params));
}

TEST(PlanCostTest, EmptyPlanIsFree) {
  const std::vector<ChunkRead> none;
  const std::vector<BlockDemand> demands;
  const CostParams params = CostParams::Homogeneous(2, 5.0, 0.01);
  EXPECT_DOUBLE_EQ(PlanCost(none, demands, params), 0.0);
}

TEST(PlanCostTest, ReadForUnknownBlockThrows) {
  const CostParams params = CostParams::Homogeneous(2, 5.0, 0.01);
  const std::vector<ChunkRead> reads = {{9, 0, 0}};
  const std::vector<BlockDemand> demands;
  EXPECT_THROW(PlanCost(reads, demands, params), std::invalid_argument);
}

}  // namespace
}  // namespace ecstore
