// Tests targeting the ILP's connected-component decomposition and the
// disaggregated Eq. 3 linking constraints.
#include <gtest/gtest.h>

#include <set>

#include "placement/planner.h"

namespace ecstore {
namespace {

TEST(PlannerDecomposeTest, DisjointBlocksSolveIndependently) {
  // Two blocks with entirely disjoint candidate sites: the combined plan
  // must equal the union of the individually optimal plans.
  ClusterState state(8);
  state.AddBlock(1, 100, 50, 2, 1, std::vector<SiteId>{0, 1, 2});
  state.AddBlock(2, 100, 50, 2, 1, std::vector<SiteId>{5, 6, 7});
  CostParams params = CostParams::Homogeneous(8, 5.0, 0.001);
  params.site_overhead_ms = {1, 9, 9, 5, 5, 9, 1, 9};

  const std::vector<BlockId> both = {1, 2};
  const DemandResult dr = BuildDemands(state, both, 0);
  const auto combined = IlpPlan(dr.demands, params);
  ASSERT_TRUE(combined.has_value());

  double separate_cost = 0;
  for (BlockId id : both) {
    const std::vector<BlockId> solo = {id};
    const DemandResult solo_dr = BuildDemands(state, solo, 0);
    separate_cost += IlpPlan(solo_dr.demands, params)->estimated_cost_ms;
  }
  EXPECT_NEAR(combined->estimated_cost_ms, separate_cost, 1e-9);
}

TEST(PlannerDecomposeTest, ChainComponentStaysCoupled) {
  // Blocks 1-2 overlap on site 3, blocks 2-3 overlap on site 5: one
  // chained component. Verify against exhaustive search.
  ClusterState state(10);
  state.AddBlock(1, 100, 50, 2, 1, std::vector<SiteId>{0, 1, 3});
  state.AddBlock(2, 100, 50, 2, 1, std::vector<SiteId>{3, 4, 5});
  state.AddBlock(3, 100, 50, 2, 1, std::vector<SiteId>{5, 6, 7});
  CostParams params = CostParams::Homogeneous(10, 5.0, 0.0001);

  const std::vector<BlockId> q = {1, 2, 3};
  const DemandResult dr = BuildDemands(state, q, 0);
  const auto ilp = IlpPlan(dr.demands, params);
  const AccessPlan brute = ExhaustivePlan(dr.demands, params);
  ASSERT_TRUE(ilp.has_value());
  EXPECT_NEAR(ilp->estimated_cost_ms, brute.estimated_cost_ms, 1e-9);
  // The shared sites 3 and 5 should carry the co-located reads.
  std::set<SiteId> sites;
  for (const ChunkRead& read : ilp->reads) sites.insert(read.site);
  EXPECT_TRUE(sites.count(3));
  EXPECT_TRUE(sites.count(5));
}

TEST(PlannerDecomposeTest, ManyIsolatedBlocksScale) {
  // 24 mutually disjoint single-block components must solve quickly and
  // exactly (each block alone on its own 3 sites would need 72 sites;
  // reuse sites across blocks but keep candidate sets disjoint per pair
  // by construction below).
  ClusterState state(72);
  std::vector<BlockId> q;
  for (BlockId b = 0; b < 24; ++b) {
    const SiteId s = static_cast<SiteId>(b * 3);
    state.AddBlock(b, 100, 50, 2, 1,
                   std::vector<SiteId>{s, static_cast<SiteId>(s + 1),
                                       static_cast<SiteId>(s + 2)});
    q.push_back(b);
  }
  const DemandResult dr = BuildDemands(state, q, 0);
  CostParams params = CostParams::Homogeneous(72, 5.0, 0.0001);
  const auto plan = IlpPlan(dr.demands, params);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->optimal);
  EXPECT_EQ(plan->reads.size(), 48u);  // 24 blocks x k=2.
  // Every block reads from exactly 2 of its own 3 sites.
  EXPECT_NEAR(plan->estimated_cost_ms, 24 * (2 * 5.0 + 2 * 50 * 0.0001), 1e-9);
}

TEST(PlannerDecomposeTest, DecompositionHandlesMixedDeltas) {
  // Late binding (delta=1) across two disjoint components.
  ClusterState state(8);
  state.AddBlock(1, 100, 50, 2, 2, std::vector<SiteId>{0, 1, 2, 3});
  state.AddBlock(2, 100, 50, 2, 2, std::vector<SiteId>{4, 5, 6, 7});
  const std::vector<BlockId> q = {1, 2};
  const DemandResult dr = BuildDemands(state, q, 1);
  const auto plan = IlpPlan(dr.demands, CostParams::Homogeneous(8, 5.0, 0.0001));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->reads.size(), 6u);  // (k + delta) per block.
}

TEST(PlannerDecomposeTest, SingleUnsatisfiableComponentFailsWhole) {
  ClusterState state(8);
  state.AddBlock(1, 100, 50, 2, 1, std::vector<SiteId>{0, 1, 2});
  state.AddBlock(2, 100, 50, 2, 1, std::vector<SiteId>{5, 6, 7});
  state.SetSiteAvailable(5, false);
  state.SetSiteAvailable(6, false);  // Block 2 left with 1 < k chunks.
  const std::vector<BlockId> q = {1, 2};
  // BuildDemands filters block 2 out entirely; construct demands manually
  // to exercise the planner's own failure path.
  DemandResult dr = BuildDemands(state, q, 0);
  ASSERT_EQ(dr.demands.size(), 1u);
  BlockDemand broken;
  broken.block = 2;
  broken.needed = 2;
  broken.chunk_bytes = 50;
  broken.candidates = {{7, 2}};
  dr.demands.push_back(broken);
  EXPECT_FALSE(IlpPlan(dr.demands, CostParams::Homogeneous(8, 5.0, 0.0001))
                   .has_value());
}

}  // namespace
}  // namespace ecstore
